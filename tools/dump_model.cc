// dump_model: inspect a compiled NeoCPU model from the command line.
//
//   dump_model --zoo tiny-cnn --dot model.dot --profile-runs 8
//   dump_model --module resnet18.neoc --dot - --metrics prometheus
//
// Loads a serialized module (--module) or compiles a zoo model in-process (--zoo),
// prints a compile/plan summary, and optionally:
//   --dot PATH           write the annotated Graphviz export ("-" = stdout); includes
//                        the profile heat overlay when --profile-runs ran
//   --profile-runs N     run N inferences with per-node profiling and print the
//                        hottest ops/nodes
//   --trace PATH         write a chrome://tracing JSON of the profiled runs
//   --metrics FORMAT     dump the process metrics registry (json | prometheus)
//   --batch N            batch size for --zoo compilation        (default 1)
//   --quantize           force-quantize the --zoo model (int8 serving path)
//   --policy P           calibration policy for --quantize: minmax | percentile |
//                        entropy                                 (default minmax)
//   --dtype D            forced quantized activation dtype: s8 | u8
//   --quantize-dense     also quantize dense layers (s8 GEMM epilogue)
//
// Exit status: 0 on success, 1 on bad usage or I/O failure.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "src/base/cycle_clock.h"
#include "src/base/rng.h"
#include "src/core/compiler.h"
#include "src/kernels/conv_nchwc_int8.h"
#include "src/core/serialization.h"
#include "src/models/model_zoo.h"
#include "src/obs/graph_dot.h"
#include "src/obs/metrics.h"
#include "src/obs/node_profiler.h"
#include "src/obs/trace.h"
#include "src/tensor/tensor.h"

namespace neocpu {
namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--module PATH | --zoo NAME) [--batch N] [--quantize]\n"
               "          [--dot PATH] [--profile-runs N] [--trace PATH]\n"
               "          [--metrics json|prometheus]\n",
               argv0);
  return 1;
}

// The graph's single input, as a deterministic random tensor.
Tensor MakeInput(const Graph& graph) {
  for (int id = 0; id < graph.num_nodes(); ++id) {
    const Node& node = graph.node(id);
    if (node.type == OpType::kInput) {
      Rng rng(7);
      return Tensor::Random(node.out_dims, rng, 0.0f, 1.0f, node.out_layout);
    }
  }
  LOG(FATAL) << "graph has no input node";
  return Tensor();
}

void PrintSummary(const CompiledModel& model) {
  const Graph& graph = model.graph();
  const CompileStats& stats = model.stats();
  int convs = 0, transforms = 0, constants = 0;
  for (int id = 0; id < graph.num_nodes(); ++id) {
    const Node& node = graph.node(id);
    convs += node.IsConv() ? 1 : 0;
    transforms += node.type == OpType::kLayoutTransform ? 1 : 0;
    constants += node.type == OpType::kConstant ? 1 : 0;
  }
  std::printf("model: %s\n", graph.name.empty() ? "(unnamed)" : graph.name.c_str());
  std::printf("  nodes: %d (%d convs, %d layout transforms, %d constants)\n",
              graph.num_nodes(), convs, transforms, constants);
  std::printf("  quantized convs: %d/%d\n", stats.num_quantized_convs, stats.num_convs);
  if (stats.num_dense > 0) {
    std::printf("  tuned dense: %d (%d int8)\n", stats.num_dense,
                stats.num_quantized_dense);
  }
  if (model.has_source() && model.config().quantize) {
    std::printf("  calibration policy: %s\n",
                CalibrationPolicyName(model.config().calibration_policy));
  }
  std::printf("  int8 kernel tier: %s; cycle clock: %s\n", ConvNCHWcS8IsaName(),
              CycleClock::Supported() ? "tsc" : "steady_clock");
  std::printf("  tuned batch: %lld%s\n", static_cast<long long>(stats.tuned_batch),
              stats.retuned ? " (retuned)" : "");
  if (model.plan() != nullptr && model.plan()->UsesArena()) {
    const ExecutionPlan& plan = *model.plan();
    std::printf("  memory plan: arena %zu B (naive %zu B), %d arena / %d alias / %d heap\n",
                plan.arena_bytes, plan.naive_bytes, plan.arena_nodes, plan.alias_nodes,
                plan.heap_nodes);
  } else {
    std::printf("  memory plan: none (allocating executor path)\n");
  }
  std::printf("  re-tunable: %s\n", model.has_source() ? "yes" : "no (no source graph)");
}

// Per-layer quantization detail: which dtype each quantized layer reads and writes,
// with the zero points that go with them (s8 is symmetric, zero point 0; u8 carries
// the affine offset the bias fold absorbed).
void PrintQuantLayers(const CompiledModel& model) {
  const Graph& graph = model.graph();
  bool any = false;
  for (int id = 0; id < graph.num_nodes(); ++id) {
    const Node& node = graph.node(id);
    if (!node.attrs.qconv.enabled) {
      continue;
    }
    if (!any) {
      std::printf("\nquantized layers (activation -> output):\n");
      any = true;
    }
    const ConvQuant& q = node.attrs.qconv;
    std::printf("  %-28s %s(zp=%d) -> %s(zp=%d)\n",
                node.name.empty() ? "(unnamed)" : node.name.c_str(),
                DTypeName(q.adtype), q.in_zero,
                q.requant ? DTypeName(q.out_dtype) : "f32",
                q.requant ? q.out_zero : 0);
  }
}

// Per-layer tuned-GEMM detail: the frozen M/N/K each dense was searched at and the
// winning (mc, nc, kc; mr x nr; dtype) schedule it executes.
void PrintDenseLayers(const CompiledModel& model) {
  const Graph& graph = model.graph();
  bool any = false;
  for (int id = 0; id < graph.num_nodes(); ++id) {
    const Node& node = graph.node(id);
    if (node.type != OpType::kDense || !node.attrs.has_gemm) {
      continue;
    }
    if (!any) {
      std::printf("\ntuned dense layers (M x N x K -> schedule):\n");
      any = true;
    }
    const DenseParams& d = node.attrs.dense;
    std::printf("  %-28s %lldx%lldx%lld -> %s\n",
                node.name.empty() ? "(unnamed)" : node.name.c_str(),
                static_cast<long long>(d.m), static_cast<long long>(d.n),
                static_cast<long long>(d.k), node.attrs.gemm.ToString().c_str());
  }
}

}  // namespace
}  // namespace neocpu

int main(int argc, char** argv) {
  using namespace neocpu;

  std::string module_path, zoo_name, dot_path, trace_path, metrics_format;
  long long batch = 1;
  int profile_runs = 0;
  bool quantize = false;
  bool quantize_dense = false;
  std::string policy, forced_dtype;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", arg.c_str());
        std::exit(Usage(argv[0]));
      }
      return argv[++i];
    };
    if (arg == "--module") {
      module_path = next();
    } else if (arg == "--zoo") {
      zoo_name = next();
    } else if (arg == "--batch") {
      batch = std::atoll(next());
    } else if (arg == "--quantize") {
      quantize = true;
    } else if (arg == "--policy") {
      policy = next();
    } else if (arg == "--dtype") {
      forced_dtype = next();
    } else if (arg == "--quantize-dense") {
      quantize_dense = true;
    } else if (arg == "--dot") {
      dot_path = next();
    } else if (arg == "--profile-runs") {
      profile_runs = std::atoi(next());
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--metrics") {
      metrics_format = next();
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }
  if (module_path.empty() == zoo_name.empty()) {  // exactly one source required
    return Usage(argv[0]);
  }

  CompiledModel model;
  if (!module_path.empty()) {
    if (!LoadModule(module_path, &model)) {
      std::fprintf(stderr, "failed to load module '%s'\n", module_path.c_str());
      return 1;
    }
  } else {
    CompileOptions options;
    if (quantize) {
      options.quantize = true;
      options.force_quantize = true;
      options.quantize_dense = quantize_dense;
      if (policy == "percentile") {
        options.calibration_policy = CalibrationPolicy::kPercentile;
      } else if (policy == "entropy") {
        options.calibration_policy = CalibrationPolicy::kEntropy;
      } else if (!policy.empty() && policy != "minmax") {
        std::fprintf(stderr, "unknown calibration policy: %s\n", policy.c_str());
        return Usage(argv[0]);
      }
      if (forced_dtype == "s8") {
        options.force_quant_dtype = DType::kS8;
      } else if (forced_dtype == "u8") {
        options.force_quant_dtype = DType::kU8;
      } else if (!forced_dtype.empty()) {
        std::fprintf(stderr, "unknown quantized dtype: %s\n", forced_dtype.c_str());
        return Usage(argv[0]);
      }
    }
    model = Compile(BuildModel(zoo_name, batch), options);
  }

  PrintSummary(model);
  PrintDenseLayers(model);
  PrintQuantLayers(model);

  NodeProfileSnapshot profile;
  TraceRecorder tracer;
  if (profile_runs > 0) {
    model.EnableProfiling(/*sample_rate=*/1);
    // A dedicated executor so the trace hook rides along with the profiler.
    Executor executor(&model.graph(), /*engine=*/nullptr, model.plan());
    executor.SetProfiler(model.profiler());
    if (!trace_path.empty()) {
      executor.SetTracer(&tracer);
    }
    const Tensor input = MakeInput(model.graph());
    for (int r = 0; r < profile_runs; ++r) {
      executor.Run(input);
    }
    profile = model.ProfileSnapshot();
    std::printf("\n%s", profile.ToString().c_str());
  }

  if (!dot_path.empty()) {
    const std::string dot =
        CompiledModelToDot(model, profile.empty() ? nullptr : &profile);
    if (dot_path == "-") {
      std::fputs(dot.c_str(), stdout);
    } else {
      std::ofstream out(dot_path);
      if (!out) {
        std::fprintf(stderr, "failed to open '%s'\n", dot_path.c_str());
        return 1;
      }
      out << dot;
      if (!out.flush()) {
        std::fprintf(stderr, "failed to write '%s'\n", dot_path.c_str());
        return 1;
      }
      std::printf("wrote %s\n", dot_path.c_str());
    }
  }

  if (!trace_path.empty()) {
    if (profile_runs <= 0) {
      std::fprintf(stderr, "--trace requires --profile-runs\n");
      return 1;
    }
    if (!tracer.WriteFile(trace_path)) {
      std::fprintf(stderr, "failed to write '%s'\n", trace_path.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu events)\n", trace_path.c_str(), tracer.size());
  }

  if (!metrics_format.empty()) {
    const MetricsFormat format = metrics_format == "prometheus"
                                     ? MetricsFormat::kPrometheus
                                     : MetricsFormat::kJson;
    std::fputs(MetricsExport(format).c_str(), stdout);
  }
  return 0;
}
