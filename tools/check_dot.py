#!/usr/bin/env python3
"""Structural validator for NeoCPU's annotated DOT exports.

Works without graphviz: the exporter's first line is a machine-readable header

    /* neocpu-dot nodes=N edges=M */

and this script re-counts the node statements ("  nI [label=..."), edge
statements ("  nA -> nB;") and brace balance in the body, failing on any
mismatch. Optionally asserts that annotation markers appear, which every
compiled zoo model must carry: a schedule marker ("algo=" on conv graphs,
"gemm dtype=" on dense/transformer graphs), "dtype=", and arena offsets.

Usage: check_dot.py <file.dot> [--require-annotations] [--min-nodes N]
"""

import re
import sys


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    path = argv[1]
    require_annotations = "--require-annotations" in argv
    min_nodes = 0
    if "--min-nodes" in argv:
        min_nodes = int(argv[argv.index("--min-nodes") + 1])

    with open(path, "r", encoding="utf-8") as f:
        text = f.read()

    header = re.match(r"/\* neocpu-dot nodes=(\d+) edges=(\d+) \*/", text)
    if not header:
        print(f"FAIL: {path}: missing '/* neocpu-dot nodes=N edges=M */' header")
        return 1
    declared_nodes, declared_edges = int(header.group(1)), int(header.group(2))

    node_lines = sum(
        1 for line in text.splitlines() if re.match(r"^  n\d+ \[label=", line)
    )
    edge_lines = sum(
        1 for line in text.splitlines() if re.match(r"^  n\d+ -> n\d+;", line)
    )
    braces = text.count("{") - text.count("}")

    failed = False
    if braces != 0:
        print(f"FAIL: {path}: unbalanced braces (delta {braces})")
        failed = True
    if node_lines != declared_nodes:
        print(f"FAIL: {path}: header declares {declared_nodes} nodes, body has {node_lines}")
        failed = True
    if edge_lines != declared_edges:
        print(f"FAIL: {path}: header declares {declared_edges} edges, body has {edge_lines}")
        failed = True
    if min_nodes and declared_nodes < min_nodes:
        print(f"FAIL: {path}: only {declared_nodes} nodes (expected >= {min_nodes})")
        failed = True
    if require_annotations:
        if "algo=" not in text and "gemm dtype=" not in text:
            print(f"FAIL: {path}: no schedule marker ('algo=' or 'gemm dtype=')")
            failed = True
        for marker in ("dtype=", "arena +"):
            if marker not in text:
                print(f"FAIL: {path}: annotation marker '{marker}' missing")
                failed = True

    if failed:
        return 1
    print(f"OK: {path}: {declared_nodes} nodes, {declared_edges} edges, braces balanced")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
