#!/usr/bin/env python3
"""Serving-throughput trend gate for CI.

Compares a freshly produced BENCH_serve.json against the committed baseline
(bench/BENCH_serve.baseline.json) and fails when throughput regressed by more
than the tolerance (default 20%, override with NEOCPU_TREND_TOLERANCE).

Two gates run:
  * peak gate — max throughput across configs (the original check);
  * per-config gate — each (pool_width x max_batch x dtype) config is compared
    against the baseline config with the same key, so a regression confined to
    one corner (say int8 at max_batch=8) cannot hide behind an unchanged peak.
    Configs present on only one side are reported but do not fail the gate
    (sweeps grow as the system grows).

Throughput only compares across identical hardware shapes. The baseline file
holds one report per runner class, keyed by physical core count:

    {"bench": "serve_throughput", "baselines": [<report for 1 core>, ...]}

(a bare single report — the pre-multi-shape format — still works). The gate
picks the entry matching the current host's physical_cores; when no entry
matches, the numeric gates downgrade to warnings (a 1-core dev-container
baseline says nothing about a 4-core CI runner) and only structural sanity is
enforced. To arm the gates for a new runner class, generate a report on that
hardware and append it to the "baselines" list:

    NEOCPU_SERVE_REQUESTS=16 NEOCPU_SERVE_CLIENTS=4 \
        NEOCPU_BENCH_JSON=shape.json ./build/bench_serve_throughput
    python3 tools/check_bench_trend.py --merge-baseline shape.json \
        bench/BENCH_serve.baseline.json   # inserts/replaces the matching shape

A second leg handles the tuned-GEMM micro-bench: pass a BENCH_gemm.json (the
"bench" field dispatches) and hardware-relative invariants are gated instead of
absolute throughput — the tuned f32 kernel must beat the legacy fixed-blocking
Gemm by NEOCPU_GEMM_SPEEDUP (default 2.0x) on at least one shape, and wherever
the VNNI tier ran, u8 must beat the best tuned f32 on at least one shape. An
optional baseline file compares per-cell GFLOP/s under the same tolerance.

A fourth leg handles the figure-4 scalability bench (BENCH_fig4.json): on hosts
with more than one NUMA node, the topology-aware partition plan must not lose to
the node-oblivious plan by more than NEOCPU_NUMA_TOLERANCE (default 10%) — NUMA
awareness that makes things slower is a bug, not noise. On single-node runners
(where the two plans coincide) the gate downgrades to a warning, so dev
containers and small CI shapes never fail on a comparison they cannot make.

A third leg gates the wire front end's overload behavior when the serve report
carries a "wire" section (closed-loop capacity + open-loop Poisson legs).
These are hardware-relative invariants, so they run even without a matching
baseline shape:
  * no transport/protocol errors on any leg;
  * the overload leg (target_ratio >= 2) MUST shed (shed_rate > 0) — a zero
    shed rate means admission is unbounded again — and must still accept work;
  * the overload leg's accepted p999 must stay within
    NEOCPU_WIRE_TAIL_FACTOR (default 100) x the closed-loop p99: bounded
    admission caps how long an *accepted* request can have waited.
With a matching baseline that also has a wire section, closed-loop accepted
throughput is additionally held to the regression tolerance.

Usage: check_bench_trend.py <current.json> [<baseline.json>]
       check_bench_trend.py --merge-baseline <report.json> [<baseline.json>]
"""

import json
import os
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def peak_rps(report):
    return max(c["throughput_rps"] for c in report["configs"])


def config_key(config):
    # dtype is absent from pre-int8 baselines; those configs were all fp32.
    return (config["pool_width"], config["max_batch"], config.get("dtype", "f32"))


def baseline_reports(baseline):
    """The per-runner-class reports in a baseline file (either format)."""
    if "baselines" in baseline:
        return baseline["baselines"]
    return [baseline]  # pre-multi-shape format: the file IS the report


def select_baseline(baseline, physical_cores):
    for report in baseline_reports(baseline):
        if report.get("physical_cores") == physical_cores:
            return report
    return None


def merge_baseline(report_path, baseline_path):
    """Inserts/replaces `report_path`'s runner shape in the baseline file."""
    report = load(report_path)
    cores = report.get("physical_cores")
    if not report.get("configs") or cores is None:
        print(f"FAIL: {report_path} is not a complete bench report")
        return 1
    try:
        existing = baseline_reports(load(baseline_path))
    except (OSError, json.JSONDecodeError):
        existing = []
    merged = [r for r in existing if r.get("physical_cores") != cores] + [report]
    merged.sort(key=lambda r: r.get("physical_cores") or 0)
    with open(baseline_path, "w", encoding="utf-8") as f:
        json.dump({"bench": "serve_throughput", "baselines": merged}, f, indent=1)
        f.write("\n")
    print(
        f"OK: {baseline_path} now holds {len(merged)} runner shape(s): "
        + ", ".join(str(r.get("physical_cores")) + " cores" for r in merged)
    )
    return 0


def gemm_cell_key(cell):
    return (cell["shape"], cell["kernel"], cell["isa"])


def gemm_gate(current, current_path, baseline_path, tolerance):
    """Invariant + trend gates for the gemm_micro bench report."""
    cells = current.get("cells")
    if not cells:
        print(f"FAIL: {current_path} has no benchmark cells")
        return 1
    speedup_floor = float(os.environ.get("NEOCPU_GEMM_SPEEDUP", "2.0"))

    by_shape = {}
    for cell in cells:
        by_shape.setdefault(cell["shape"], []).append(cell)

    failed = False
    tuned_beats_legacy = False
    vnni_ran = False
    vnni_beats_f32 = False
    for shape, shape_cells in by_shape.items():
        legacy = [c for c in shape_cells if c["kernel"] == "legacy"]
        f32 = [c for c in shape_cells if c["kernel"] == "tuned_f32"]
        vnni = [c for c in shape_cells
                if c["kernel"] == "tuned_u8" and c["isa"] == "avx512vnni"]
        if not legacy or not f32:
            print(f"FAIL: shape {shape} is missing legacy or tuned_f32 cells")
            failed = True
            continue
        best_f32 = min(c["ms"] for c in f32)
        speedup = legacy[0]["ms"] / best_f32 if best_f32 > 0 else float("inf")
        line = f"{shape}: tuned_f32 {speedup:.2f}x over legacy"
        if speedup >= speedup_floor:
            tuned_beats_legacy = True
        if vnni:
            vnni_ran = True
            ratio = best_f32 / vnni[0]["ms"] if vnni[0]["ms"] > 0 else float("inf")
            line += f", vnni u8 {ratio:.2f}x over tuned f32"
            if ratio > 1.0:
                vnni_beats_f32 = True
        print(line)
    if not tuned_beats_legacy:
        print(f"FAIL: no shape reached the {speedup_floor:.1f}x tuned-vs-legacy floor")
        failed = True
    if vnni_ran and not vnni_beats_f32:
        print("FAIL: the VNNI u8 tier never beat tuned f32")
        failed = True
    if not vnni_ran:
        print("WARN: no avx512vnni cells (host lacks the tier); dtype gate skipped")

    # Optional trend comparison against a committed gemm baseline.
    if baseline_path is not None:
        try:
            baseline = load(baseline_path)
        except (OSError, json.JSONDecodeError) as e:
            print(f"FAIL: cannot read baseline {baseline_path}: {e}")
            return 1
        if baseline.get("physical_cores") != current.get("physical_cores"):
            print("WARN: baseline is from a different hardware shape; trend skipped")
        else:
            base_by_key = {gemm_cell_key(c): c for c in baseline.get("cells", [])}
            for cell in cells:
                base = base_by_key.get(gemm_cell_key(cell))
                if base is None or base.get("gflops", 0) <= 0:
                    continue
                ratio = cell["gflops"] / base["gflops"]
                if ratio < 1.0 - tolerance:
                    print(
                        f"FAIL: {'/'.join(gemm_cell_key(cell))}: "
                        f"{cell['gflops']:.1f} vs {base['gflops']:.1f} GFLOP/s "
                        f"-> ratio {ratio:.3f}"
                    )
                    failed = True

    if failed:
        return 1
    print("OK: gemm invariants hold")
    return 0


def fig4_gate(current, current_path):
    """NUMA-placement invariants for the fig4_scalability bench report."""
    legs = {l.get("name"): l for l in current.get("legs") or []}
    aware = legs.get("numa_aware")
    oblivious = legs.get("numa_oblivious")
    if aware is None or oblivious is None:
        print(f"FAIL: {current_path} is missing the numa_aware/numa_oblivious legs")
        return 1
    if aware.get("throughput_ips", 0) <= 0 or oblivious.get("throughput_ips", 0) <= 0:
        print("FAIL: non-positive throughput in a NUMA leg")
        return 1
    nodes = current.get("numa_nodes", 1)
    ratio = aware["throughput_ips"] / oblivious["throughput_ips"]
    print(
        f"numa-aware {aware['throughput_ips']:.1f} vs oblivious "
        f"{oblivious['throughput_ips']:.1f} images/sec -> ratio {ratio:.3f} "
        f"({nodes} NUMA node(s))"
    )
    if nodes <= 1:
        print(
            "WARN: single NUMA node — the plans coincide, so the placement gate "
            "cannot arm on this runner; run on a multi-socket host to gate it"
        )
        return 0
    numa_tol = float(os.environ.get("NEOCPU_NUMA_TOLERANCE", "0.10"))
    if ratio < 1.0 - numa_tol:
        print(
            f"FAIL: the topology-aware plan lost {100 * (1 - ratio):.1f}% to the "
            f"oblivious plan (tolerance {100 * numa_tol:.0f}%)"
        )
        return 1
    print(f"OK: NUMA-aware placement holds within {100 * numa_tol:.0f}% tolerance")
    return 0


def wire_invariant_gate(wire):
    """Hardware-relative overload invariants on the wire section. Returns failed."""
    legs = wire.get("legs") or []
    closed = [l for l in legs if l.get("mode") == "closed"]
    overload = [l for l in legs if l.get("mode") == "open" and l.get("target_ratio", 0) >= 2.0]
    underload = [l for l in legs if l.get("mode") == "open" and l.get("target_ratio", 0) <= 0.5]
    failed = False
    if not closed or not overload:
        print("FAIL: wire section is missing the closed-loop or the 2x open-loop leg")
        return True
    for leg in legs:
        label = f"wire {leg.get('mode')}@{leg.get('target_ratio', 0):.2f}"
        if leg.get("errors", 0) > 0:
            print(f"FAIL: {label}: {leg['errors']} transport/protocol errors")
            failed = True
    cap = closed[0]
    if cap.get("accepted_rps", 0) <= 0 or cap.get("shed", 0) > 0:
        print(
            f"FAIL: closed-loop leg unusable as capacity: "
            f"{cap.get('accepted_rps', 0):.1f} rps, {cap.get('shed', 0)} sheds"
        )
        failed = True
    over = overload[0]
    print(
        f"wire overload ({over.get('target_ratio', 0):.1f}x): offered "
        f"{over.get('offered_rps', 0):.1f} rps, accepted {over.get('accepted', 0)}, "
        f"shed rate {over.get('shed_rate', 0):.3f}, "
        f"p999 {over.get('p999_ms', 0):.2f} ms (closed p99 {cap.get('p99_ms', 0):.2f} ms)"
    )
    if over.get("shed_rate", 0) <= 0:
        print("FAIL: the overload leg never shed — bounded admission is not biting")
        failed = True
    if over.get("accepted", 0) <= 0:
        print("FAIL: the overload leg accepted nothing — shedding everything is an outage")
        failed = True
    tail_factor = float(os.environ.get("NEOCPU_WIRE_TAIL_FACTOR", "100"))
    tail_bound = tail_factor * max(cap.get("p99_ms", 0), 1.0)
    if over.get("p999_ms", 0) > tail_bound:
        print(
            f"FAIL: overload accepted p999 {over['p999_ms']:.2f} ms exceeds "
            f"{tail_factor:.0f}x closed-loop p99 bound ({tail_bound:.2f} ms)"
        )
        failed = True
    for leg in underload:
        if leg.get("shed_rate", 0) > 0.1:
            print(
                f"WARN: underload leg ({leg.get('target_ratio', 0):.2f}x) shed "
                f"{100 * leg['shed_rate']:.1f}% — queue_limit may be too small for "
                "this host"
            )
    if not failed:
        print("OK: wire overload invariants hold")
    return failed


def wire_trend_gate(current_wire, baseline_wire, tolerance):
    """Closed-loop throughput trend on matching hardware. Returns failed."""
    cur = [l for l in current_wire.get("legs", []) if l.get("mode") == "closed"]
    base = [l for l in baseline_wire.get("legs", []) if l.get("mode") == "closed"]
    if not cur or not base or base[0].get("accepted_rps", 0) <= 0:
        print("NOTE: wire trend skipped (no comparable closed-loop legs)")
        return False
    ratio = cur[0]["accepted_rps"] / base[0]["accepted_rps"]
    # Socket-path throughput is noisier than the in-process sweep (kernel scheduling,
    # loopback buffering), so the wire trend gets its own floor-ed tolerance.
    wire_tol = max(tolerance, float(os.environ.get("NEOCPU_WIRE_TOLERANCE", "0.35")))
    print(
        f"wire closed-loop: {cur[0]['accepted_rps']:.1f} vs "
        f"{base[0]['accepted_rps']:.1f} rps -> ratio {ratio:.3f} "
        f"(tolerance {100 * wire_tol:.0f}%)"
    )
    if ratio < 1.0 - wire_tol:
        print(f"FAIL: wire closed-loop throughput regressed beyond tolerance")
        return True
    return False


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    if argv[1] == "--merge-baseline":
        if len(argv) < 3:
            print(__doc__)
            return 2
        return merge_baseline(argv[2], argv[3] if len(argv) > 3 else "bench/BENCH_serve.baseline.json")
    current_path = argv[1]
    tolerance = float(os.environ.get("NEOCPU_TREND_TOLERANCE", "0.20"))

    try:
        current = load(current_path)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: cannot read current report {current_path}: {e}")
        return 1
    if current.get("bench") == "gemm_micro":
        return gemm_gate(current, current_path,
                         argv[2] if len(argv) > 2 else None, tolerance)
    if current.get("bench") == "fig4_scalability":
        return fig4_gate(current, current_path)
    baseline_path = argv[2] if len(argv) > 2 else "bench/BENCH_serve.baseline.json"
    try:
        baseline = load(baseline_path)
    except (OSError, json.JSONDecodeError) as e:
        print(
            f"FAIL: cannot read baseline {baseline_path}: {e}\n"
            "Regenerate and commit it per the protocol in this script's docstring."
        )
        return 1

    # Structural sanity: every report must carry real measurements.
    if not current.get("configs"):
        print(f"FAIL: {current_path} has no benchmark configs")
        return 1
    shapes = baseline_reports(baseline)
    if not shapes or any(not r.get("configs") for r in shapes):
        print(f"FAIL: baseline {baseline_path} has no benchmark configs")
        return 1
    cur_peak = peak_rps(current)
    if cur_peak <= 0:
        print(f"FAIL: non-positive peak throughput {cur_peak}")
        return 1

    # Wire overload invariants are hardware-relative: they gate regardless of whether
    # a baseline exists for this runner shape.
    wire_failed = False
    if current.get("wire"):
        wire_failed = wire_invariant_gate(current["wire"])
    elif os.environ.get("NEOCPU_REQUIRE_WIRE") == "1":
        print("FAIL: report has no wire section but NEOCPU_REQUIRE_WIRE=1")
        return 1

    cur_cores = current.get("physical_cores")
    matched = select_baseline(baseline, cur_cores)
    if matched is None:
        available = ", ".join(str(r.get("physical_cores")) for r in shapes)
        print(
            f"WARN: no baseline for this hardware shape ({cur_cores} physical cores; "
            f"baseline has {available}): throughput gates skipped; add this runner "
            "class with --merge-baseline to arm them"
        )
        return 1 if wire_failed else 0
    baseline = matched

    base_peak = peak_rps(baseline)
    base_cores = baseline.get("physical_cores")
    ratio = cur_peak / base_peak if base_peak > 0 else float("inf")
    print(
        f"peak throughput: current {cur_peak:.1f} rps ({cur_cores} cores) vs "
        f"baseline {base_peak:.1f} rps ({base_cores} cores) -> ratio {ratio:.3f}"
    )

    failed = wire_failed
    if current.get("wire") and baseline.get("wire"):
        failed = wire_trend_gate(current["wire"], baseline["wire"], tolerance) or failed
    if ratio < 1.0 - tolerance:
        print(
            f"FAIL: peak throughput regressed {100 * (1 - ratio):.1f}% "
            f"(tolerance {100 * tolerance:.0f}%)"
        )
        failed = True

    # Per-config gate.
    base_by_key = {config_key(c): c for c in baseline["configs"]}
    cur_by_key = {config_key(c): c for c in current["configs"]}
    for key, cur_cfg in sorted(cur_by_key.items()):
        base_cfg = base_by_key.get(key)
        label = f"pool={key[0]} max_batch={key[1]} dtype={key[2]}"
        if base_cfg is None:
            print(f"NOTE: config {label} has no baseline entry (new config)")
            continue
        base_rps = base_cfg["throughput_rps"]
        if base_rps <= 0:
            continue
        cfg_ratio = cur_cfg["throughput_rps"] / base_rps
        status = "ok"
        if cfg_ratio < 1.0 - tolerance:
            status = "FAIL"
            failed = True
        print(
            f"{status}: {label}: {cur_cfg['throughput_rps']:.1f} vs "
            f"{base_rps:.1f} rps -> ratio {cfg_ratio:.3f}"
        )
    for key in sorted(set(base_by_key) - set(cur_by_key)):
        print(
            f"NOTE: baseline config pool={key[0]} max_batch={key[1]} "
            f"dtype={key[2]} missing from the current run"
        )

    if failed:
        print(f"FAIL: regression beyond {100 * tolerance:.0f}% tolerance")
        return 1
    print(f"OK: within {100 * tolerance:.0f}% tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
