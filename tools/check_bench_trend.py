#!/usr/bin/env python3
"""Serving-throughput trend gate for CI.

Compares a freshly produced BENCH_serve.json against the committed baseline
(bench/BENCH_serve.baseline.json) and fails when peak throughput regressed by
more than the tolerance (default 20%, override with NEOCPU_TREND_TOLERANCE).

Throughput only compares across identical hardware shapes: when the current
host's physical core count differs from the baseline's, the numeric gate
downgrades to a warning (a 1-core dev-container baseline says nothing about a
4-core CI runner) and only structural sanity is enforced. To (re)arm the gate
for a runner class, regenerate the baseline on that hardware:

    NEOCPU_SERVE_REQUESTS=16 NEOCPU_SERVE_CLIENTS=4 \
        NEOCPU_BENCH_JSON=bench/BENCH_serve.baseline.json ./build/bench_serve_throughput

Usage: check_bench_trend.py <current.json> [<baseline.json>]
"""

import json
import os
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def peak_rps(report):
    return max(c["throughput_rps"] for c in report["configs"])


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    current_path = argv[1]
    baseline_path = argv[2] if len(argv) > 2 else "bench/BENCH_serve.baseline.json"
    tolerance = float(os.environ.get("NEOCPU_TREND_TOLERANCE", "0.20"))

    try:
        current = load(current_path)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: cannot read current report {current_path}: {e}")
        return 1
    try:
        baseline = load(baseline_path)
    except (OSError, json.JSONDecodeError) as e:
        print(
            f"FAIL: cannot read baseline {baseline_path}: {e}\n"
            "Regenerate and commit it per the protocol in this script's docstring."
        )
        return 1

    # Structural sanity: both reports must carry real measurements.
    if not current.get("configs"):
        print(f"FAIL: {current_path} has no benchmark configs")
        return 1
    if not baseline.get("configs"):
        print(f"FAIL: baseline {baseline_path} has no benchmark configs")
        return 1
    cur_peak = peak_rps(current)
    if cur_peak <= 0:
        print(f"FAIL: non-positive peak throughput {cur_peak}")
        return 1

    base_peak = peak_rps(baseline)
    cur_cores = current.get("physical_cores")
    base_cores = baseline.get("physical_cores")
    ratio = cur_peak / base_peak if base_peak > 0 else float("inf")
    print(
        f"peak throughput: current {cur_peak:.1f} rps ({cur_cores} cores) vs "
        f"baseline {base_peak:.1f} rps ({base_cores} cores) -> ratio {ratio:.3f}"
    )

    if cur_cores != base_cores:
        print(
            f"WARN: hardware shape mismatch ({cur_cores} vs {base_cores} physical "
            "cores): throughput gate skipped; regenerate the baseline on this runner "
            "class to arm it"
        )
        return 0

    if ratio < 1.0 - tolerance:
        print(
            f"FAIL: throughput regressed {100 * (1 - ratio):.1f}% "
            f"(tolerance {100 * tolerance:.0f}%)"
        )
        return 1
    print(f"OK: within {100 * tolerance:.0f}% tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
