#!/usr/bin/env python3
"""Serving-throughput trend gate for CI.

Compares a freshly produced BENCH_serve.json against the committed baseline
(bench/BENCH_serve.baseline.json) and fails when throughput regressed by more
than the tolerance (default 20%, override with NEOCPU_TREND_TOLERANCE).

Two gates run:
  * peak gate — max throughput across configs (the original check);
  * per-config gate — each (pool_width x max_batch x dtype) config is compared
    against the baseline config with the same key, so a regression confined to
    one corner (say int8 at max_batch=8) cannot hide behind an unchanged peak.
    Configs present on only one side are reported but do not fail the gate
    (sweeps grow as the system grows).

Throughput only compares across identical hardware shapes: when the current
host's physical core count differs from the baseline's, the numeric gates
downgrade to warnings (a 1-core dev-container baseline says nothing about a
4-core CI runner) and only structural sanity is enforced. To (re)arm the gates
for a runner class, regenerate the baseline on that hardware:

    NEOCPU_SERVE_REQUESTS=16 NEOCPU_SERVE_CLIENTS=4 \
        NEOCPU_BENCH_JSON=bench/BENCH_serve.baseline.json ./build/bench_serve_throughput

Usage: check_bench_trend.py <current.json> [<baseline.json>]
"""

import json
import os
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def peak_rps(report):
    return max(c["throughput_rps"] for c in report["configs"])


def config_key(config):
    # dtype is absent from pre-int8 baselines; those configs were all fp32.
    return (config["pool_width"], config["max_batch"], config.get("dtype", "f32"))


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    current_path = argv[1]
    baseline_path = argv[2] if len(argv) > 2 else "bench/BENCH_serve.baseline.json"
    tolerance = float(os.environ.get("NEOCPU_TREND_TOLERANCE", "0.20"))

    try:
        current = load(current_path)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: cannot read current report {current_path}: {e}")
        return 1
    try:
        baseline = load(baseline_path)
    except (OSError, json.JSONDecodeError) as e:
        print(
            f"FAIL: cannot read baseline {baseline_path}: {e}\n"
            "Regenerate and commit it per the protocol in this script's docstring."
        )
        return 1

    # Structural sanity: both reports must carry real measurements.
    if not current.get("configs"):
        print(f"FAIL: {current_path} has no benchmark configs")
        return 1
    if not baseline.get("configs"):
        print(f"FAIL: baseline {baseline_path} has no benchmark configs")
        return 1
    cur_peak = peak_rps(current)
    if cur_peak <= 0:
        print(f"FAIL: non-positive peak throughput {cur_peak}")
        return 1

    base_peak = peak_rps(baseline)
    cur_cores = current.get("physical_cores")
    base_cores = baseline.get("physical_cores")
    ratio = cur_peak / base_peak if base_peak > 0 else float("inf")
    print(
        f"peak throughput: current {cur_peak:.1f} rps ({cur_cores} cores) vs "
        f"baseline {base_peak:.1f} rps ({base_cores} cores) -> ratio {ratio:.3f}"
    )

    if cur_cores != base_cores:
        print(
            f"WARN: hardware shape mismatch ({cur_cores} vs {base_cores} physical "
            "cores): throughput gates skipped; regenerate the baseline on this runner "
            "class to arm them"
        )
        return 0

    failed = False
    if ratio < 1.0 - tolerance:
        print(
            f"FAIL: peak throughput regressed {100 * (1 - ratio):.1f}% "
            f"(tolerance {100 * tolerance:.0f}%)"
        )
        failed = True

    # Per-config gate.
    base_by_key = {config_key(c): c for c in baseline["configs"]}
    cur_by_key = {config_key(c): c for c in current["configs"]}
    for key, cur_cfg in sorted(cur_by_key.items()):
        base_cfg = base_by_key.get(key)
        label = f"pool={key[0]} max_batch={key[1]} dtype={key[2]}"
        if base_cfg is None:
            print(f"NOTE: config {label} has no baseline entry (new config)")
            continue
        base_rps = base_cfg["throughput_rps"]
        if base_rps <= 0:
            continue
        cfg_ratio = cur_cfg["throughput_rps"] / base_rps
        status = "ok"
        if cfg_ratio < 1.0 - tolerance:
            status = "FAIL"
            failed = True
        print(
            f"{status}: {label}: {cur_cfg['throughput_rps']:.1f} vs "
            f"{base_rps:.1f} rps -> ratio {cfg_ratio:.3f}"
        )
    for key in sorted(set(base_by_key) - set(cur_by_key)):
        print(
            f"NOTE: baseline config pool={key[0]} max_batch={key[1]} "
            f"dtype={key[2]} missing from the current run"
        )

    if failed:
        print(f"FAIL: regression beyond {100 * tolerance:.0f}% tolerance")
        return 1
    print(f"OK: within {100 * tolerance:.0f}% tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
