// Table 3 reproduction: individual speedup of each optimization stage, relative to the
// NCHW baseline (speedup of row n includes all techniques up to that row):
//   Baseline        — NCHW layout, vectorized direct convolution, fusion/simplification
//                     on (the "original TVM stack" graph optimizations)
//   Layout Opt.     — NCHW[x]c template per conv, transforms around every conv
//   Transform Elim. — blocked layout propagated; transforms only at boundaries
//   Global Search   — per-conv schemes from the DP/PBQP global search
// One network per family, as in the paper.
#include "bench/bench_util.h"

namespace neocpu {
namespace bench {
namespace {

int Main() {
  PrintHeader("Table 3: speedup of each optimization stage vs NCHW baseline");
  const std::vector<std::string> models = {"resnet50", "vgg19", "densenet201",
                                           "inception-v3", "ssd-resnet50"};
  struct Row {
    const char* name;
    CompileOptions (*options)(const Target&);
  };
  const Row rows[] = {
      {"Baseline", &AblationBaselineNchw},
      {"Layout Opt.", &AblationLayoutOpt},
      {"Transform Elim.", &AblationTransformElim},
      {"Global Search", &AblationGlobalSearch},
  };
  const Target target = Target::Host();
  auto tuning_cache = std::make_shared<TuningCache>();
  NeoThreadPool pool;

  std::printf("%-16s", "Speedup");
  for (const std::string& m : models) {
    std::printf(" | %13s", m.c_str());
  }
  std::printf("\n");

  std::vector<double> baseline_ms(models.size(), 0.0);
  for (const Row& row : rows) {
    std::printf("%-16s", row.name);
    for (std::size_t m = 0; m < models.size(); ++m) {
      Graph model = BuildModel(models[m]);
      Tensor input = ModelInput(models[m]);
      CompileOptions opts = row.options(target);
      opts.cost_mode = BenchCostMode();
      opts.tuning_cache = tuning_cache;
      CompiledModel compiled = Compile(model, opts);
      const RunStats stats = MeasureModel(compiled, input, &pool);
      if (row.name == rows[0].name) {
        baseline_ms[m] = stats.mean;
        std::printf(" | %8.2f ms  ", stats.mean);
      } else {
        std::printf(" | %9.2fx   ", baseline_ms[m] / stats.mean);
      }
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper-shape checks: Layout Opt. is the dominant jump (paper: 4-8x), Transform\n"
      "Elim. adds 1.1-1.5x on top, Global Search adds a further 1.1-1.5x; ResNet-50\n"
      "gains more from Global Search than VGG-19 (more complex structure).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace neocpu

int main() { return neocpu::bench::Main(); }
