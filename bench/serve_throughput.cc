// Serving-performance baseline: throughput and latency percentiles versus dynamic-batch
// size and executor-pool width.
//
//   ./bench_serve_throughput
//
// The sweep crosses pool width {1, 2, 4 (when cores allow)} with max_batch {1, 4, 8} on
// batch-1 traffic, reproducing the Figure-4-style comparison at the serving layer: on a
// multi-core host, two executors on half the cores each should beat one executor
// spanning every core for small-input traffic, and batching should lift throughput
// further at some p99 cost. Knobs:
//   NEOCPU_SERVE_MODEL     model to serve                     (default tiny-cnn)
//   NEOCPU_SERVE_REQUESTS  requests per configuration         (default 64)
//   NEOCPU_SERVE_CLIENTS   client threads generating traffic  (default 8)
//   NEOCPU_BENCH_JSON      machine-readable output path       (default BENCH_serve.json)
//   NEOCPU_SERVE_PROFILE   per-node profile sample rate, 0=off (default 0); the last
//                          configuration's per-op breakdown is printed
//   NEOCPU_SERVE_DOT       with profiling on: write the annotated DOT (heat overlay
//                          from the last configuration's profile) to this path
//   NEOCPU_SERVE_TRACE     write a chrome://tracing JSON of the whole sweep here
//   NEOCPU_SERVE_METRICS   dump the metrics registry on exit ("json" | "prometheus")
//
// A second section exercises the wire front end (src/serve/frontend) end to end over
// loopback TCP: a closed-loop leg (fixed client concurrency, zero think time) that
// establishes the socket-path capacity, then open-loop legs with Poisson arrivals at
// 0.5x and 2.0x that capacity against a small admission queue — the overload leg is
// where shedding and the accepted-tail bound are measured (p50/p99/p999 + shed rate,
// gated by tools/check_bench_trend.py). Knobs:
//   NEOCPU_WIRE            "0" skips the wire section          (default on)
//   NEOCPU_WIRE_REQUESTS   requests per wire leg               (default 240)
//   NEOCPU_WIRE_CONNS      concurrent client connections       (default 6)
//   NEOCPU_WIRE_QUEUE      admission queue_limit for the legs  (default 8)
//
// Besides the human-readable table, every run writes the full sweep as JSON (one record
// per configuration: throughput, p50/p99/mean latency, batching counters, background
// re-tunes and the tuning-cache hit rate) so CI can track the perf trajectory across
// PRs.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <thread>

#include "bench/bench_util.h"
#include "src/serve/frontend/frontend_server.h"
#include "src/serve/frontend/wire_client.h"

namespace neocpu {
namespace {

struct ConfigResult {
  int pool_width = 0;
  std::int64_t max_batch = 0;
  const char* dtype = "f32";  // execution dtype of the served model ("f32" / "int8")
  double throughput_rps = 0.0;
  ServerStats stats;
  // Cache traffic attributable to THIS configuration: a before/after delta on the
  // registry-wide shared TuningCache (registration re-points every model at it, so
  // that cache — not the caller's compile-time one — sees all serving-side lookups).
  TuningCacheStats cache_delta;
  // Memory-planner observability: owning tensor-buffer heap allocations per inference
  // during the timed section (the planned path collapses this to ~1 — the escaping
  // output — plus batch staging), and the plan's arena footprint.
  double heap_allocs_per_request = 0.0;
  // Per-node profile of this configuration's serving (empty unless profiling is on).
  NodeProfileSnapshot profile;
};

ConfigResult RunConfig(const CompiledModel& model, const std::string& model_name,
                       int pool_width, std::int64_t max_batch, int num_clients,
                       int num_requests, std::uint32_t profile_rate,
                       TraceRecorder* tracer) {
  ServerOptions options;
  options.num_executors = pool_width;
  options.batching.max_batch_size = max_batch;
  options.batching.max_delay_ms = 2.0;
  options.profile_sample_rate = profile_rate;
  options.tracer = tracer;
  InferenceServer server(options);
  ModelEntry* entry = server.RegisterModel(model_name, model);
  const std::shared_ptr<TuningCache> cache = server.registry().shared_tuning_cache();
  const TuningCacheStats cache_before = cache != nullptr ? cache->Stats() : TuningCacheStats{};

  Rng rng(99);
  Tensor input = Tensor::Random(ModelInputDims(model_name), rng, 0.0f, 1.0f, Layout::NCHW());

  // Warm-up: fault in weights, materialize the dominant batch variant, and let its
  // background re-tune land, so the timed section measures the per-batch-tuned steady
  // state rather than racing a re-tune. (Partial batches below max_batch can still
  // materialize mid-run; they are stragglers, not the steady state.)
  server.Submit(model_name, input).wait();
  if (entry->batchable() && max_batch > 1) {
    entry->VariantFor(max_batch);
  }
  server.WaitForRetunes();
  // Freeze re-tuning for the timed section: a straggler partial batch (1 < n <
  // max_batch) materializing mid-run would otherwise kick off a background re-tune
  // whose search allocations land inside the heap_allocs_per_request window and whose
  // compute competes with serving.
  RetuneOptions frozen;
  frozen.enabled = false;
  server.registry().ConfigureRetune(frozen);

  std::vector<std::thread> clients;
  std::vector<std::vector<std::future<Tensor>>> futures(
      static_cast<std::size_t>(num_clients));
  const std::uint64_t allocs_before = TensorHeapAllocCount();
  Timer timer;
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      const int share = num_requests / num_clients + (c < num_requests % num_clients);
      for (int r = 0; r < share; ++r) {
        futures[static_cast<std::size_t>(c)].push_back(server.Submit(model_name, input));
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  for (auto& client_futures : futures) {
    for (std::future<Tensor>& f : client_futures) {
      f.wait();
    }
  }
  const double seconds = timer.Seconds();
  const std::uint64_t allocs_after = TensorHeapAllocCount();

  ConfigResult result;
  result.pool_width = pool_width;
  result.max_batch = max_batch;
  result.throughput_rps = static_cast<double>(num_requests) / seconds;
  result.stats = server.Stats();
  result.heap_allocs_per_request =
      static_cast<double>(allocs_after - allocs_before) / num_requests;
  if (profile_rate > 0) {
    result.profile = entry->ProfileSnapshot();
  }
  if (cache != nullptr) {
    const TuningCacheStats cache_after = cache->Stats();
    result.cache_delta.hits = cache_after.hits - cache_before.hits;
    result.cache_delta.misses = cache_after.misses - cache_before.misses;
  }
  return result;
}

// ---------------------------------------------------------------------------
// Wire front-end load generation (closed-loop and open-loop Poisson).
// ---------------------------------------------------------------------------

struct WireLegResult {
  const char* mode = "closed";  // "closed" | "open"
  double target_ratio = 0.0;    // open-loop offered rate as a multiple of capacity
  double offered_rps = 0.0;     // arrival rate actually generated
  double accepted_rps = 0.0;    // successful completions per second of wall time
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;
  std::uint64_t errors = 0;  // transport or non-overload protocol errors
  double shed_rate = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
};

double WirePercentile(std::vector<double>* values, double pct) {
  if (values->empty()) {
    return 0.0;
  }
  std::sort(values->begin(), values->end());
  const double rank = pct / 100.0 * static_cast<double>(values->size() - 1);
  return (*values)[static_cast<std::size_t>(rank + 0.5)];
}

// Closed loop: `conns` clients, zero think time. Measures the socket path's capacity.
WireLegResult RunWireClosedLoop(int port, const std::string& model_name,
                                const Tensor& input, int conns, int total_requests) {
  std::atomic<std::uint64_t> accepted{0}, shed{0}, errors{0};
  std::mutex mutex;
  std::vector<double> latencies;
  Timer wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < conns; ++c) {
    threads.emplace_back([&, c] {
      WireClient client;
      if (!client.Connect("127.0.0.1", port)) {
        errors.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      const int share = total_requests / conns + (c < total_requests % conns);
      for (int i = 0; i < share; ++i) {
        Timer timer;
        WireResponse response =
            client.Call({model_name, RequestLane::kLatency, input.Clone()});
        const double ms = timer.Millis();
        if (response.ok()) {
          accepted.fetch_add(1, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(mutex);
          latencies.push_back(ms);
        } else if (response.error.code == WireErrorCode::kOverloaded) {
          shed.fetch_add(1, std::memory_order_relaxed);
        } else {
          errors.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const double seconds = wall.Seconds();
  WireLegResult result;
  result.mode = "closed";
  result.accepted = accepted.load();
  result.shed = shed.load();
  result.errors = errors.load();
  const std::uint64_t answered = result.accepted + result.shed;
  result.offered_rps = seconds > 0 ? static_cast<double>(answered) / seconds : 0.0;
  result.accepted_rps =
      seconds > 0 ? static_cast<double>(result.accepted) / seconds : 0.0;
  result.shed_rate =
      answered > 0 ? static_cast<double>(result.shed) / static_cast<double>(answered)
                   : 0.0;
  result.p50_ms = WirePercentile(&latencies, 50.0);
  result.p99_ms = WirePercentile(&latencies, 99.0);
  result.p999_ms = WirePercentile(&latencies, 99.9);
  return result;
}

// Open loop: Poisson arrivals at `rate_rps` spread across `conns` independent
// connections. Latency is measured from each request's INTENDED arrival instant, so a
// sender running late (its previous call still in flight) charges the delay to the
// request instead of silently thinning the offered load (coordination-omission
// correction); a closed-loop-style measurement under overload would hide exactly the
// tail this leg exists to expose.
WireLegResult RunWireOpenLoop(int port, const std::string& model_name,
                              const Tensor& input, int conns, int total_requests,
                              double rate_rps, double target_ratio) {
  std::atomic<std::uint64_t> accepted{0}, shed{0}, errors{0};
  std::mutex mutex;
  std::vector<double> latencies;
  const double per_conn_rate = rate_rps / conns;
  Timer wall;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < conns; ++c) {
    threads.emplace_back([&, c] {
      WireClient client;
      if (!client.Connect("127.0.0.1", port)) {
        errors.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      Rng rng(0xC0FFEE + static_cast<std::uint64_t>(c));
      const int share = total_requests / conns + (c < total_requests % conns);
      double next_arrival_s = 0.0;
      for (int i = 0; i < share; ++i) {
        // Exponential inter-arrival: -ln(U)/rate with U in (0, 1].
        const double u =
            (static_cast<double>(rng.NextU64() >> 11) + 1.0) / 9007199254740993.0;
        next_arrival_s += -std::log(u) / per_conn_rate;
        const auto intended =
            start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(next_arrival_s));
        std::this_thread::sleep_until(intended);
        WireResponse response =
            client.Call({model_name, RequestLane::kLatency, input.Clone()});
        const double ms =
            std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                      intended)
                .count();
        if (response.ok()) {
          accepted.fetch_add(1, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(mutex);
          latencies.push_back(ms);
        } else if (response.error.code == WireErrorCode::kOverloaded) {
          shed.fetch_add(1, std::memory_order_relaxed);
        } else {
          errors.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const double seconds = wall.Seconds();
  WireLegResult result;
  result.mode = "open";
  result.target_ratio = target_ratio;
  result.accepted = accepted.load();
  result.shed = shed.load();
  result.errors = errors.load();
  const std::uint64_t answered = result.accepted + result.shed;
  result.offered_rps = seconds > 0 ? static_cast<double>(answered) / seconds : 0.0;
  result.accepted_rps =
      seconds > 0 ? static_cast<double>(result.accepted) / seconds : 0.0;
  result.shed_rate =
      answered > 0 ? static_cast<double>(result.shed) / static_cast<double>(answered)
                   : 0.0;
  result.p50_ms = WirePercentile(&latencies, 50.0);
  result.p99_ms = WirePercentile(&latencies, 99.0);
  result.p999_ms = WirePercentile(&latencies, 99.9);
  return result;
}

}  // namespace
}  // namespace neocpu

int main() {
  using namespace neocpu;
  const char* model_env = std::getenv("NEOCPU_SERVE_MODEL");
  const std::string model_name = model_env != nullptr ? model_env : "tiny-cnn";
  const int num_requests = static_cast<int>(EnvSizeT("NEOCPU_SERVE_REQUESTS", 64));
  const int num_clients = static_cast<int>(EnvSizeT("NEOCPU_SERVE_CLIENTS", 8));
  const std::uint32_t profile_rate =
      static_cast<std::uint32_t>(EnvSizeT("NEOCPU_SERVE_PROFILE", 0));
  const char* trace_env = std::getenv("NEOCPU_SERVE_TRACE");
  TraceRecorder tracer;
  TraceRecorder* tracer_ptr = trace_env != nullptr ? &tracer : nullptr;

  bench::PrintHeader("Serving throughput: pool width x dynamic batch size");
  std::printf("model=%s requests=%d clients=%d\n\n", model_name.c_str(), num_requests,
              num_clients);

  CompileOptions copts;
  copts.cost_mode = bench::BenchCostMode();
  CompiledModel model = Compile(BuildModel(model_name), copts);
  const std::size_t arena_bytes = model.stats().arena_bytes;
  const std::size_t naive_arena_bytes = model.stats().naive_arena_bytes;
  std::printf("memory plan: arena %zu B (naive sum-of-intermediates %zu B, %.1f%% saved)\n",
              arena_bytes, naive_arena_bytes,
              naive_arena_bytes == 0
                  ? 0.0
                  : 100.0 * (1.0 - static_cast<double>(arena_bytes) /
                                       static_cast<double>(naive_arena_bytes)));

  // int8 leg: the same model force-quantized (every int8-legal conv takes its best s8
  // schedule), served side-by-side so the perf record tracks the quantized serving
  // path per (pool_width x max_batch x dtype) config. NEOCPU_SERVE_INT8=0 disables.
  const char* int8_env = std::getenv("NEOCPU_SERVE_INT8");
  const bool serve_int8 = int8_env == nullptr || std::string(int8_env) != "0";
  CompiledModel model_q;
  if (serve_int8) {
    CompileOptions qopts = copts;
    qopts.quantize = true;
    qopts.force_quantize = true;
    model_q = Compile(BuildModel(model_name), qopts);
    std::printf("int8 model: %d/%d convs quantized, arena %zu B\n",
                model_q.stats().num_quantized_convs, model_q.stats().num_convs,
                model_q.stats().arena_bytes);
  }

  std::vector<int> widths = {1, 2};
  if (HostCpuInfo().physical_cores >= 8) {
    widths.push_back(4);
  }
  const std::vector<std::int64_t> batches = {1, 4, 8};

  std::printf("%-6s %-10s %-5s %12s %10s %10s %10s %11s %11s\n", "pool", "max_batch",
              "dtype", "thruput r/s", "p50 ms", "p99 ms", "mean ms", "mean batch",
              "allocs/req");
  std::vector<ConfigResult> results;
  for (int width : widths) {
    for (std::int64_t max_batch : batches) {
      for (int leg = 0; leg < (serve_int8 ? 2 : 1); ++leg) {
        const bool int8_leg = leg == 1;
        ConfigResult r = RunConfig(int8_leg ? model_q : model, model_name, width,
                                   max_batch, num_clients, num_requests, profile_rate,
                                   tracer_ptr);
        r.dtype = int8_leg ? "int8" : "f32";
        std::printf("%-6d %-10lld %-5s %12.1f %10.3f %10.3f %10.3f %11.2f %11.2f\n",
                    r.pool_width, static_cast<long long>(r.max_batch), r.dtype,
                    r.throughput_rps, r.stats.latency.p50_ms, r.stats.latency.p99_ms,
                    r.stats.latency.mean_ms, r.stats.mean_batch_size,
                    r.heap_allocs_per_request);
        results.push_back(r);
      }
    }
  }

  // The Figure-4-at-the-serving-layer headline: pool of 2 vs 1 on unbatched traffic.
  const ConfigResult* one = nullptr;
  const ConfigResult* two = nullptr;
  for (const ConfigResult& r : results) {
    if (std::string(r.dtype) != "f32") {
      continue;
    }
    if (r.max_batch == 1 && r.pool_width == 1) {
      one = &r;
    }
    if (r.max_batch == 1 && r.pool_width == 2) {
      two = &r;
    }
  }
  if (one != nullptr && two != nullptr) {
    std::printf("\nbatch-1 traffic: pool=2 %.1f r/s vs pool=1 %.1f r/s (%+.1f%%)\n",
                two->throughput_rps, one->throughput_rps,
                100.0 * (two->throughput_rps / one->throughput_rps - 1.0));
  }

  // Wire front-end legs: closed-loop capacity, then open-loop Poisson at 0.5x and
  // 2.0x of it against a deliberately small admission queue. The 2x leg is the
  // overload acceptance measurement: it must shed (bounded queue) while the accepted
  // tail stays a small multiple of the closed-loop latency.
  const char* wire_env = std::getenv("NEOCPU_WIRE");
  const bool run_wire = wire_env == nullptr || std::string(wire_env) != "0";
  std::vector<WireLegResult> wire_legs;
  const std::size_t wire_queue_limit = EnvSizeT("NEOCPU_WIRE_QUEUE", 8);
  if (run_wire) {
    const int wire_requests = static_cast<int>(EnvSizeT("NEOCPU_WIRE_REQUESTS", 240));
    const int wire_conns = static_cast<int>(EnvSizeT("NEOCPU_WIRE_CONNS", 6));
    ServerOptions options;
    options.num_executors = 1;
    options.background_retune = false;
    options.batching.max_batch_size = 4;
    options.batching.max_delay_ms = 1.0;
    options.batching.queue_limit = wire_queue_limit;
    options.batching.shed_retry_after_ms = 5.0;
    InferenceServer server(options);
    server.RegisterModel(model_name, model);
    FrontendServer frontend(&server);
    if (!frontend.Start()) {
      std::fprintf(stderr, "wire front end failed to start: %s\n",
                   frontend.last_error().c_str());
      return 1;
    }
    Rng wire_rng(7);
    Tensor wire_input =
        Tensor::Random(ModelInputDims(model_name), wire_rng, 0.0f, 1.0f, Layout::NCHW());
    // Warm-up through the socket path.
    {
      WireClient warm;
      if (warm.Connect("127.0.0.1", frontend.port())) {
        warm.Call({model_name, RequestLane::kLatency, wire_input.Clone()});
      }
    }
    std::printf("\nwire front end (port %d, queue_limit %zu, %d conns):\n",
                frontend.port(), wire_queue_limit, wire_conns);
    std::printf("%-8s %-7s %12s %12s %9s %8s %8s %9s %9s\n", "mode", "ratio",
                "offered r/s", "accepted r/s", "shed", "p50 ms", "p99 ms", "p999 ms",
                "shed rate");
    WireLegResult closed = RunWireClosedLoop(frontend.port(), model_name, wire_input,
                                             wire_conns, wire_requests);
    auto print_leg = [](const WireLegResult& leg) {
      std::printf("%-8s %-7.2f %12.1f %12.1f %9llu %8.3f %8.3f %9.3f %9.4f\n", leg.mode,
                  leg.target_ratio, leg.offered_rps, leg.accepted_rps,
                  static_cast<unsigned long long>(leg.shed), leg.p50_ms, leg.p99_ms,
                  leg.p999_ms, leg.shed_rate);
    };
    print_leg(closed);
    wire_legs.push_back(closed);
    const double capacity_rps = closed.accepted_rps;
    // Open-loop legs need enough connections that the arrival process — not the
    // per-connection round trip — limits server-side concurrency; otherwise the
    // admission queue can never fill and the overload leg measures nothing.
    const int open_conns =
        std::max(wire_conns, static_cast<int>(2 * wire_queue_limit + 2));
    for (const double ratio : {0.5, 2.0}) {
      WireLegResult leg =
          RunWireOpenLoop(frontend.port(), model_name, wire_input, open_conns,
                          wire_requests, ratio * capacity_rps, ratio);
      print_leg(leg);
      wire_legs.push_back(leg);
    }
    frontend.Stop();
    const ServerStats wire_stats = server.Stats();
    std::printf("server view: shed %llu (queue %llu, arena %llu) of %llu submitted\n",
                static_cast<unsigned long long>(wire_stats.requests_shed),
                static_cast<unsigned long long>(wire_stats.requests_shed_queue_full),
                static_cast<unsigned long long>(wire_stats.requests_shed_arena),
                static_cast<unsigned long long>(wire_stats.submitted));
  }

  // Observability artifacts (opt-in; see the env knobs above).
  if (profile_rate > 0 && !results.empty() && !results.back().profile.empty()) {
    const NodeProfileSnapshot& profile = results.back().profile;
    std::printf("\nper-node profile (last config, sample rate %u):\n%s", profile_rate,
                profile.ToString().c_str());
    const char* dot_env = std::getenv("NEOCPU_SERVE_DOT");
    if (dot_env != nullptr) {
      std::ofstream dot(dot_env);
      dot << CompiledModelToDot(serve_int8 ? model_q : model, &profile);
      std::printf("wrote %s\n", dot_env);
    }
  }
  if (tracer_ptr != nullptr) {
    if (tracer.WriteFile(trace_env)) {
      std::printf("wrote %s (%zu trace events, %llu dropped)\n", trace_env, tracer.size(),
                  static_cast<unsigned long long>(tracer.dropped()));
    }
  }
  const char* metrics_env = std::getenv("NEOCPU_SERVE_METRICS");
  if (metrics_env != nullptr) {
    const MetricsFormat format = std::string(metrics_env) == "prometheus"
                                     ? MetricsFormat::kPrometheus
                                     : MetricsFormat::kJson;
    std::printf("\nmetrics registry:\n%s", MetricsExport(format).c_str());
  }

  // Machine-readable record for cross-PR perf tracking.
  const char* json_env = std::getenv("NEOCPU_BENCH_JSON");
  const std::string json_path = json_env != nullptr ? json_env : "BENCH_serve.json";
  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "failed to open %s for writing\n", json_path.c_str());
    return 1;
  }
  json << "{\n";
  json << "  \"bench\": \"serve_throughput\",\n";
  json << "  \"model\": \"" << model_name << "\",\n";
  json << "  \"requests\": " << num_requests << ",\n";
  json << "  \"clients\": " << num_clients << ",\n";
  json << "  \"physical_cores\": " << HostCpuInfo().physical_cores << ",\n";
  json << "  \"arena_bytes\": " << arena_bytes << ",\n";
  json << "  \"naive_arena_bytes\": " << naive_arena_bytes << ",\n";
  json << "  \"configs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    const ServerStats& s = r.stats;
    json << "    {\"pool_width\": " << r.pool_width << ", \"max_batch\": " << r.max_batch
         << ", \"dtype\": \"" << r.dtype << "\""
         << ", \"throughput_rps\": " << r.throughput_rps
         << ", \"p50_ms\": " << s.latency.p50_ms << ", \"p99_ms\": " << s.latency.p99_ms
         << ", \"mean_ms\": " << s.latency.mean_ms
         << ", \"mean_batch_size\": " << s.mean_batch_size
         << ", \"max_batch_size\": " << s.max_batch_size
         << ", \"batch_runs\": " << s.batch_runs
         << ", \"retunes_completed\": " << s.retunes_completed
         << ", \"tuning_cache_hits\": " << r.cache_delta.hits
         << ", \"tuning_cache_misses\": " << r.cache_delta.misses
         << ", \"tuning_cache_hit_rate\": " << r.cache_delta.HitRate()
         << ", \"heap_allocs_per_request\": " << r.heap_allocs_per_request << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]";
  if (!wire_legs.empty()) {
    json << ",\n  \"wire\": {\n";
    json << "    \"queue_limit\": " << wire_queue_limit << ",\n";
    json << "    \"legs\": [\n";
    for (std::size_t i = 0; i < wire_legs.size(); ++i) {
      const WireLegResult& leg = wire_legs[i];
      json << "      {\"mode\": \"" << leg.mode << "\""
           << ", \"target_ratio\": " << leg.target_ratio
           << ", \"offered_rps\": " << leg.offered_rps
           << ", \"accepted_rps\": " << leg.accepted_rps
           << ", \"accepted\": " << leg.accepted << ", \"shed\": " << leg.shed
           << ", \"errors\": " << leg.errors << ", \"shed_rate\": " << leg.shed_rate
           << ", \"p50_ms\": " << leg.p50_ms << ", \"p99_ms\": " << leg.p99_ms
           << ", \"p999_ms\": " << leg.p999_ms << "}"
           << (i + 1 < wire_legs.size() ? "," : "") << "\n";
    }
    json << "    ]\n";
    json << "  }";
  }
  json << "\n}\n";
  std::printf("wrote %s (%zu configs, %zu wire legs)\n", json_path.c_str(),
              results.size(), wire_legs.size());
  return 0;
}
