// §3.1.2 / §4.2.4 micro-benchmarks: per-region fork/join overhead of the custom thread
// pool vs the OpenMP-style pool — the mechanism behind Figure 4's scalability gap — plus
// the SPSC queue primitive.
#include <benchmark/benchmark.h>

#include <atomic>

#include "src/runtime/omp_pool.h"
#include "src/runtime/spsc_queue.h"
#include "src/runtime/thread_pool.h"

namespace neocpu {
namespace {

void BM_ForkJoin_NeoPool(benchmark::State& state) {
  NeoThreadPool pool(static_cast<int>(state.range(0)), /*bind_threads=*/false);
  std::atomic<int> sink{0};
  for (auto _ : state) {
    pool.ParallelRun(pool.NumWorkers(),
                     [&](int task, int) { sink.fetch_add(task, std::memory_order_relaxed); });
  }
}
BENCHMARK(BM_ForkJoin_NeoPool)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_ForkJoin_OmpPool(benchmark::State& state) {
  OmpStylePool pool(static_cast<int>(state.range(0)));
  std::atomic<int> sink{0};
  for (auto _ : state) {
    pool.ParallelRun(pool.NumWorkers(),
                     [&](int task, int) { sink.fetch_add(task, std::memory_order_relaxed); });
  }
}
BENCHMARK(BM_ForkJoin_OmpPool)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// A realistic region: parallel sum over 256 KiB, the size of a small fused op.
void BM_Region_NeoPool(benchmark::State& state) {
  NeoThreadPool pool(static_cast<int>(state.range(0)), /*bind_threads=*/false);
  std::vector<float> data(65536, 1.0f);
  std::vector<double> partial(static_cast<std::size_t>(pool.NumWorkers()));
  for (auto _ : state) {
    ParallelFor(pool, static_cast<std::int64_t>(data.size()),
                [&](std::int64_t begin, std::int64_t end) {
                  double s = 0;
                  for (std::int64_t i = begin; i < end; ++i) {
                    s += data[static_cast<std::size_t>(i)];
                  }
                  benchmark::DoNotOptimize(s);
                });
  }
}
BENCHMARK(BM_Region_NeoPool)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_Region_OmpPool(benchmark::State& state) {
  OmpStylePool pool(static_cast<int>(state.range(0)));
  std::vector<float> data(65536, 1.0f);
  for (auto _ : state) {
    ParallelFor(pool, static_cast<std::int64_t>(data.size()),
                [&](std::int64_t begin, std::int64_t end) {
                  double s = 0;
                  for (std::int64_t i = begin; i < end; ++i) {
                    s += data[static_cast<std::size_t>(i)];
                  }
                  benchmark::DoNotOptimize(s);
                });
  }
}
BENCHMARK(BM_Region_OmpPool)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_SpscQueue_PushPop(benchmark::State& state) {
  SpscQueue<int> queue(256);
  int value = 0;
  for (auto _ : state) {
    queue.TryPush(42);
    queue.TryPop(value);
    benchmark::DoNotOptimize(value);
  }
}
BENCHMARK(BM_SpscQueue_PushPop);

}  // namespace
}  // namespace neocpu

BENCHMARK_MAIN();
