// Tuned GEMM micro-benchmark: the blocked, packed kernel family on transformer-shaped
// workloads, ablated three ways —
//   * tuned f32 vs the fixed-blocking legacy Gemm() (the vendor-library stand-in);
//   * ISA tier (baseline / avx2 / avx512 [/ avx512vnni for int8]) via the dispatch
//     override hooks, so the register-blocking win and the ISA win separate;
//   * dtype: tuned f32 vs the u8·s8→s32 integer pipeline with its fused epilogue.
//
//   ./bench_gemm_micro
//
// Shapes are the transformer-encoder zoo model's GEMMs at serving batch 8 (M = B*S)
// plus BERT-base-sized projections/FFNs. Schedules come from the same analytic local
// search the compiler runs, so the bench measures what a compiled model would execute.
// Knobs:
//   NEOCPU_BENCH_RUNS    timed repetitions per cell   (default 2; min is reported)
//   NEOCPU_BENCH_WARMUP  warm-up repetitions          (default 1)
//   NEOCPU_BENCH_JSON    output path                  (default BENCH_gemm.json)
//
// Every run writes the sweep as JSON (one record per shape x kernel x isa) so CI can
// track the perf trajectory across PRs (tools/check_bench_trend.py, gemm leg).
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/kernels/gemm.h"
#include "src/kernels/gemm_packed.h"
#include "src/kernels/gemm_packed_int8.h"
#include "src/tuning/local_search.h"

namespace neocpu {
namespace {

struct Shape {
  const char* name;
  std::int64_t m, n, k;
};

// Batch-8 transformer-encoder GEMMs (M = 8 * S = 64) and BERT-base at seq 128.
const Shape kShapes[] = {
    {"enc.qkv", 64, 64, 64},        {"enc.ffn1", 64, 256, 64},
    {"enc.ffn2", 64, 64, 256},      {"bert.proj", 128, 768, 768},
    {"bert.ffn1", 128, 3072, 768},  {"bert.ffn2", 128, 768, 3072},
};

struct Cell {
  const char* shape;
  std::int64_t m, n, k;
  std::string kernel;  // "legacy" | "tuned_f32" | "tuned_u8"
  std::string isa;     // "fixed" for legacy, else the dispatch tier
  double ms = 0.0;
  double gflops = 0.0;
};

double BestMs(const std::vector<double>& samples) {
  double best = samples.front();
  for (double s : samples) {
    best = best < s ? best : s;
  }
  return best;
}

template <typename Fn>
double TimeMs(Fn&& fn) {
  for (std::size_t i = 0; i < bench::Warmup(); ++i) {
    fn();
  }
  std::vector<double> samples;
  for (std::size_t i = 0; i < bench::Runs(); ++i) {
    Timer t;
    fn();
    samples.push_back(t.Millis());
  }
  return BestMs(samples);
}

GemmSchedule TunedSchedule(const Shape& shape, DType dtype) {
  const DenseParams params{shape.m, shape.n, shape.k};
  auto result = LocalSearchDenseShared(params, Target::SkylakeAvx512(),
                                       CostMode::kAnalytic, /*quick_space=*/true,
                                       nullptr, nullptr, nullptr, dtype);
  const DenseScheduleCost* best = result->BestDense(dtype);
  NEOCPU_CHECK(best != nullptr);
  return best->schedule;
}

}  // namespace
}  // namespace neocpu

int main() {
  using namespace neocpu;
  NeoThreadPool pool(HostCpuInfo().physical_cores, false);
  Rng rng(7);
  std::vector<Cell> cells;

  const char* f32_tiers[] = {"baseline", "avx2", "avx512"};
  const char* s8_tiers[] = {"baseline", "avx2", "avx512", "avx512vnni"};

  std::printf("%-10s %-10s %-11s %10s %10s\n", "shape", "kernel", "isa", "ms",
              "GFLOP/s");
  for (const Shape& shape : kShapes) {
    const double flops = 2.0 * static_cast<double>(shape.m) *
                         static_cast<double>(shape.n) * static_cast<double>(shape.k);
    auto record = [&](const char* kernel, const char* isa, double ms) {
      cells.push_back({shape.name, shape.m, shape.n, shape.k, kernel, isa, ms,
                       flops / (ms * 1e6)});
      std::printf("%-10s %-10s %-11s %10.4f %10.1f\n", shape.name, kernel, isa, ms,
                  flops / (ms * 1e6));
    };

    // Legacy fixed-blocking Gemm (row-major B, no packing).
    {
      Tensor a = Tensor::Random({shape.m, shape.k}, rng, -1.0f, 1.0f);
      Tensor b = Tensor::Random({shape.k, shape.n}, rng, -0.5f, 0.5f);
      Tensor c = Tensor::Empty({shape.m, shape.n});
      record("legacy", "fixed", TimeMs([&] {
               Gemm(shape.m, shape.n, shape.k, a.data(), b.data(), c.data(), false,
                    &pool);
             }));
    }

    // Tuned f32, per ISA tier.
    {
      const GemmSchedule s = TunedSchedule(shape, DType::kF32);
      Tensor a = Tensor::Random({shape.m, shape.k}, rng, -1.0f, 1.0f);
      Tensor w = Tensor::Random({shape.n, shape.k}, rng, -0.5f, 0.5f);
      Tensor packed_b = Tensor::Empty(
          {static_cast<std::int64_t>(PackedBF32Elems(shape.n, shape.k, s))});
      PackBF32FromTransposed(w.data(), shape.n, shape.k, s, packed_b.data());
      Tensor workspace = Tensor::Empty(
          {static_cast<std::int64_t>(PackedAF32Elems(shape.m, shape.k, s))});
      Tensor c = Tensor::Empty({shape.m, shape.n});
      for (const char* tier : f32_tiers) {
        if (!SetGemmPackedIsaOverride(tier)) {
          continue;  // host cannot execute this tier
        }
        record("tuned_f32", tier, TimeMs([&] {
                 GemmPackedF32(shape.m, shape.n, shape.k, a.data(), packed_b.data(),
                               nullptr, false, c.data(), s, workspace.data(), &pool);
               }));
      }
      SetGemmPackedIsaOverride(nullptr);
    }

    // Tuned u8·s8, per ISA tier (f32 output epilogue, mult = 1).
    {
      const GemmSchedule s = TunedSchedule(shape, DType::kU8);
      Tensor a = Tensor::Empty({shape.m, shape.k}, Layout::Flat(), DType::kU8);
      Tensor w = Tensor::Empty({shape.n, shape.k}, Layout::Flat(), DType::kS8);
      for (std::int64_t i = 0; i < a.NumElements(); ++i) {
        a.data_as<std::uint8_t>()[i] = static_cast<std::uint8_t>(rng.NextU64() % 255);
      }
      for (std::int64_t i = 0; i < w.NumElements(); ++i) {
        w.data_as<std::int8_t>()[i] = static_cast<std::int8_t>(rng.NextU64() % 255) - 127;
      }
      std::vector<float> mult(static_cast<std::size_t>(shape.n), 1.0f);
      Tensor packed_b = Tensor::Empty(
          {static_cast<std::int64_t>(PackedBS8Bytes(shape.n, shape.k, s))},
          Layout::Flat(), DType::kS8);
      PackBS8FromTransposed(w.data_as<std::int8_t>(), shape.n, shape.k, s,
                            packed_b.data_as<std::int8_t>());
      Tensor workspace = Tensor::Empty(
          {static_cast<std::int64_t>(PackedAU8Bytes(shape.m, shape.k, s))},
          Layout::Flat(), DType::kU8);
      Tensor c = Tensor::Empty({shape.m, shape.n});
      for (const char* tier : s8_tiers) {
        if (!SetGemmPackedS8IsaOverride(tier)) {
          continue;
        }
        record("tuned_u8", tier, TimeMs([&] {
                 GemmPackedU8S8(shape.m, shape.n, shape.k, a.data_as<std::uint8_t>(),
                                packed_b.data_as<std::int8_t>(), nullptr, mult.data(),
                                false, false, false, 0, c.data(), s,
                                workspace.data_as<std::uint8_t>(), &pool);
               }));
      }
      SetGemmPackedS8IsaOverride(nullptr);
    }
  }

  const char* json_env = std::getenv("NEOCPU_BENCH_JSON");
  const std::string json_path = json_env != nullptr ? json_env : "BENCH_gemm.json";
  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "failed to open %s for writing\n", json_path.c_str());
    return 1;
  }
  json << "{\n";
  json << "  \"bench\": \"gemm_micro\",\n";
  json << "  \"physical_cores\": " << HostCpuInfo().physical_cores << ",\n";
  json << "  \"f32_isa\": \"" << GemmPackedIsaName() << "\",\n";
  json << "  \"int8_isa\": \"" << GemmPackedS8IsaName() << "\",\n";
  json << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    json << "    {\"shape\": \"" << c.shape << "\", \"m\": " << c.m
         << ", \"n\": " << c.n << ", \"k\": " << c.k << ", \"kernel\": \"" << c.kernel
         << "\", \"isa\": \"" << c.isa << "\", \"ms\": " << c.ms
         << ", \"gflops\": " << c.gflops << "}" << (i + 1 < cells.size() ? "," : "")
         << "\n";
  }
  json << "  ]\n";
  json << "}\n";
  std::printf("wrote %s (%zu cells)\n", json_path.c_str(), cells.size());
  return 0;
}
