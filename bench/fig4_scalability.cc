// Figure 4 reproduction: inference throughput (images/second) as a function of thread
// count, comparing the paper's custom thread pool against the OpenMP-style pool (and the
// framework baselines, which all multi-thread through OpenMP).
//
// Curves (per the paper): (a) ResNet-50 on the avx512 profile, threads 1..18;
// (b) VGG-19 on avx2, threads 1..24; (c) Inception-v3 on neon, threads 1..16.
//
// Substitution note (DESIGN.md §1): this host may have fewer cores than the paper's
// machines, and fork/join overhead cannot be measured directly on an oversubscribed
// core (the scheduler, not the pool, dominates). Instead the harness measures the
// *mechanism* cost of each pool with single-core-safe experiments —
//   * custom pool: one SPSC task handoff + the atomic join decrement (workers spin, so
//     no wake-up is ever paid);
//   * OpenMP-style pool: a mutex/condition-variable wake round trip (every region must
//     wake each parked worker and park it again);
// — and projects the per-region overhead as (t-1) x per-worker cost. Reported
// throughput is the strong-scaling projection
//     latency(t) = compute_1 / t + regions_per_inference * overhead(t),
// which isolates exactly the quantity Figure 4 attributes the gap to ("the overhead of
// OpenMP to launch and suppress threads before and after a region"). When the host has
// >= t physical cores the harness instead prints directly measured throughput.
//
// NUMA leg (PR 10): beyond the pool-mechanism curves, the harness runs one partition
// per NUMA node with node-homed arenas against the same partition count planned
// node-obliviously (contiguous cpu slices, unbound arenas) and reports both
// throughputs. On single-node hosts the two plans coincide, so the leg degenerates to
// a sanity check; the JSON record (NEOCPU_BENCH_JSON, default BENCH_fig4.json) carries
// numa_nodes so the trend checker knows which case it is looking at.
//
// Extra knobs: NEOCPU_FIG4_CURVES=0 skips the projection curves (CI smoke runs just
// the NUMA leg), NEOCPU_FIG4_MODEL picks the leg's model (default resnet50; CI uses
// tiny-cnn), NEOCPU_FIG4_NUMA_REPS sets timed inferences per partition (default 8).
#include <atomic>
#include <condition_variable>
#include <fstream>
#include <memory>
#include <mutex>
#include <thread>

#include "bench/bench_util.h"
#include "src/runtime/spsc_queue.h"

namespace neocpu {
namespace bench {
namespace {

// Cost of one scheduler->worker task handoff in the custom pool: SPSC push + pop plus
// the fork/join atomic pair. Measured single-threaded; real cross-core handoffs add one
// cache-line transfer (~0.1 us), which we add as a constant.
double MeasureSpscHandoffMs() {
  SpscQueue<int> queue(64);
  std::atomic<std::uint64_t> pending{0};
  int value = 0;
  const int iters = 200000;
  const RunStats stats = MeasureMillis(
      [&] {
        for (int i = 0; i < iters; ++i) {
          queue.TryPush(i);
          pending.fetch_add(1, std::memory_order_acq_rel);
          queue.TryPop(value);
          pending.fetch_sub(1, std::memory_order_acq_rel);
          asm volatile("" : : "r"(value) : "memory");
        }
      },
      /*runs=*/3, /*warmup=*/1);
  const double cacheline_transfer_ms = 1.5e-7;
  return stats.min / iters + cacheline_transfer_ms;
}

// Wake-from-parked latency of a mutex + condition-variable handoff (what an OpenMP
// passive-wait runtime pays per worker per region): a two-thread ping-pong, one wake
// per half round trip. Valid on a single core — the measured quantity is the futex
// wake + context switch, which is what a multi-core wake costs too.
double MeasureCondvarWakeMs() {
  std::mutex mutex;
  std::condition_variable cv;
  int turn = 0;
  bool done = false;
  const int rounds = 4000;
  std::thread pong([&] {
    std::unique_lock<std::mutex> lock(mutex);
    while (!done) {
      cv.wait(lock, [&] { return turn == 1 || done; });
      if (done) {
        return;
      }
      turn = 0;
      cv.notify_one();
    }
  });
  Timer timer;
  for (int i = 0; i < rounds; ++i) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      turn = 1;
    }
    cv.notify_one();
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return turn == 0; });
  }
  const double total_ms = timer.Millis();
  {
    std::lock_guard<std::mutex> lock(mutex);
    done = true;
  }
  cv.notify_one();
  pong.join();
  return total_ms / (2.0 * rounds);  // one wake per half round trip
}

// Number of fork/join regions one inference executes (~one per compute node).
int CountRegions(const Graph& graph) {
  int regions = 0;
  for (int i = 0; i < graph.num_nodes(); ++i) {
    const OpType t = graph.node(i).type;
    if (t != OpType::kInput && t != OpType::kConstant) {
      ++regions;
    }
  }
  return regions;
}

struct Curve {
  const char* model;
  const char* arch;
  int max_threads;
};

// One serving-shaped partition fleet: a thread per partition, each with its own
// engine and arena, all released together and timed until the slowest finishes.
// `numa_aware` homes every arena on its partition's node so activations are
// first-touched node-locally; oblivious runs leave arenas unbound (legacy behavior).
double MeasureNumaLeg(const CompiledModel& compiled, const Tensor& input,
                      const std::vector<CorePartition>& plan, bool numa_aware,
                      bool bind, int reps) {
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(plan.size());
  for (const CorePartition& partition : plan) {
    threads.emplace_back([&, partition] {
      std::unique_ptr<ThreadEngine> engine = MakePartitionEngine(partition, bind);
      Arena arena;
      if (numa_aware) {
        arena.set_home_node(partition.home_node);
      }
      Executor exec(&compiled.graph(), nullptr, compiled.plan());
      exec.Run(input, engine.get(), &arena);  // warm-up: faults the arena on-node
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      for (int r = 0; r < reps; ++r) {
        exec.Run(input, engine.get(), &arena);
      }
    });
  }
  while (ready.load(std::memory_order_acquire) < static_cast<int>(plan.size())) {
    std::this_thread::yield();
  }
  Timer timer;
  go.store(true, std::memory_order_release);
  for (std::thread& t : threads) {
    t.join();
  }
  const double total_ms = timer.Millis();
  return 1000.0 * static_cast<double>(plan.size()) * reps / total_ms;
}

int Main() {
  PrintHeader("Figure 4: throughput vs #threads - custom thread pool vs OpenMP-style");
  const Curve curves[] = {
      {"resnet50", "avx512", 18},
      {"vgg19", "avx2", 24},
      {"inception-v3", "neon", 16},
  };
  const int host_cores = HostCpuInfo().physical_cores;
  auto tuning_cache = std::make_shared<TuningCache>();

  const double spsc_ms = MeasureSpscHandoffMs();
  const double wake_ms = MeasureCondvarWakeMs();
  std::printf("measured mechanism costs: SPSC handoff %.3f us/worker, cond-var wake %.3f "
              "us/worker\n",
              spsc_ms * 1e3, wake_ms * 1e3);
  // Per-region overhead at t workers: the scheduler hands work to (t-1) others.
  auto overhead_neo = [&](int t) { return (t - 1) * spsc_ms; };
  auto overhead_omp = [&](int t) { return (t - 1) * wake_ms + (t > 1 ? wake_ms : 0.0); };

  const bool run_curves = EnvSizeT("NEOCPU_FIG4_CURVES", 1) != 0;
  if (!run_curves) {
    std::printf("NEOCPU_FIG4_CURVES=0: skipping the projection curves\n");
  }
  for (const Curve& curve : curves) {
    if (!run_curves) {
      break;
    }
    const Target target = Target::ByName(curve.arch);
    std::printf("\n--- Figure 4%c: %s on %s profile ---\n",
                static_cast<char>('a' + (&curve - curves)), curve.model, curve.arch);

    Graph model = BuildModel(curve.model);
    Tensor input = ModelInput(curve.model);

    struct Config {
      const char* name;
      CompileOptions opts;
      bool custom_pool;
    };
    CompileOptions neo = NeoCpuOptions(target);
    CompileOptions lib = FrameworkLibOptions(target);
    CompileOptions def = FrameworkDefaultOptions(target);
    for (CompileOptions* o : {&neo, &lib, &def}) {
      o->cost_mode = BenchCostMode();
      o->tuning_cache = tuning_cache;
    }
    const Config configs[] = {
        {"neocpu w/ thread pool", neo, true},
        {"neocpu w/ OMP", neo, false},
        {"mxnet-like (OMP)", lib, false},
        {"tf-like (OMP)", def, false},
    };

    // Single-thread compute time and region count per configuration.
    double compute_ms[4];
    int regions[4];
    for (std::size_t c = 0; c < std::size(configs); ++c) {
      CompiledModel compiled = Compile(model, configs[c].opts);
      compute_ms[c] = MeasureModel(compiled, input, nullptr).min;
      regions[c] = CountRegions(compiled.graph());
    }

    std::printf("%8s", "#threads");
    for (const Config& c : configs) {
      std::printf(" | %22s", c.name);
    }
    std::printf("   (images/sec, strong-scaling projection%s)\n",
                host_cores > 1 ? "; '*' = directly measured" : "");

    for (int t = 1; t <= curve.max_threads; ++t) {
      std::printf("%8d", t);
      for (std::size_t c = 0; c < std::size(configs); ++c) {
        const double overhead_ms =
            configs[c].custom_pool ? overhead_neo(t) : overhead_omp(t);
        const double latency = compute_ms[c] / t + regions[c] * overhead_ms;
        const double ips = 1000.0 / latency;
        if (t <= host_cores && t > 1) {
          // Direct measurement is possible: report it instead of the projection.
          CompiledModel compiled = Compile(model, configs[c].opts);
          if (configs[c].custom_pool) {
            NeoThreadPool pool(t);
            std::printf(" | %20.2f *", 1000.0 / MeasureModel(compiled, input, &pool).min);
          } else {
            OmpStylePool pool(t);
            std::printf(" | %20.2f *", 1000.0 / MeasureModel(compiled, input, &pool).min);
          }
        } else {
          std::printf(" | %22.2f", ips);
        }
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  if (run_curves) {
    std::printf(
        "\nPaper-shape checks: the custom thread pool curve stays above the OMP curves "
        "and\nkeeps scaling at high thread counts, where per-region OpenMP launch "
        "overhead\nflattens (or dips) the other curves.\n");
  }

  // ---- NUMA leg: topology-aware partition placement vs node-oblivious ----
  const CpuTopology& topo = HostTopology();
  const char* numa_model_env = std::getenv("NEOCPU_FIG4_MODEL");
  const std::string numa_model = numa_model_env != nullptr ? numa_model_env : "resnet50";
  const int numa_reps = static_cast<int>(EnvSizeT("NEOCPU_FIG4_NUMA_REPS", 8));
  const int total_workers =
      topo.num_online_cpus() > 0 ? topo.num_online_cpus() : host_cores;
  const int num_partitions = topo.num_nodes() > 1 ? topo.num_nodes() : 2;

  std::printf("\n--- NUMA placement: %s, %d node(s), %d cpu(s), %d partition(s) ---\n",
              numa_model.c_str(), topo.num_nodes(), total_workers, num_partitions);
  CompileOptions numa_opts = NeoCpuOptions(Target::Host());
  numa_opts.cost_mode = BenchCostMode();
  numa_opts.tuning_cache = tuning_cache;
  CompiledModel numa_compiled = Compile(BuildModel(numa_model), numa_opts);
  Tensor numa_input = ModelInput(numa_model);

  const bool bind = topo.num_nodes() > 1;
  const std::vector<CorePartition> aware_plan =
      PlanCorePartitions(num_partitions, total_workers, topo);
  const std::vector<CorePartition> oblivious_plan = PlanCorePartitions(
      num_partitions, total_workers, CpuTopology::SingleNode(total_workers));
  const double aware_ips =
      MeasureNumaLeg(numa_compiled, numa_input, aware_plan, /*numa_aware=*/true, bind,
                     numa_reps);
  const double oblivious_ips = MeasureNumaLeg(numa_compiled, numa_input, oblivious_plan,
                                              /*numa_aware=*/false, bind, numa_reps);
  std::printf("  numa-aware:     %10.2f images/sec  (%zu partitions, node-homed arenas)\n",
              aware_ips, aware_plan.size());
  std::printf("  numa-oblivious: %10.2f images/sec  (%zu partitions, contiguous slices)\n",
              oblivious_ips, oblivious_plan.size());
  if (topo.num_nodes() <= 1) {
    std::printf("  single NUMA node: both plans coincide; treat the delta as noise\n");
  }

  // Machine-readable record for cross-PR perf tracking (tools/check_bench_trend.py).
  const char* json_env = std::getenv("NEOCPU_BENCH_JSON");
  const std::string json_path = json_env != nullptr ? json_env : "BENCH_fig4.json";
  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "failed to open %s for writing\n", json_path.c_str());
    return 1;
  }
  json << "{\n";
  json << "  \"bench\": \"fig4_scalability\",\n";
  json << "  \"model\": \"" << numa_model << "\",\n";
  json << "  \"physical_cores\": " << host_cores << ",\n";
  json << "  \"numa_nodes\": " << topo.num_nodes() << ",\n";
  json << "  \"spsc_handoff_us\": " << spsc_ms * 1e3 << ",\n";
  json << "  \"condvar_wake_us\": " << wake_ms * 1e3 << ",\n";
  json << "  \"legs\": [\n";
  json << "    {\"name\": \"numa_aware\", \"partitions\": " << aware_plan.size()
       << ", \"throughput_ips\": " << aware_ips << "},\n";
  json << "    {\"name\": \"numa_oblivious\", \"partitions\": " << oblivious_plan.size()
       << ", \"throughput_ips\": " << oblivious_ips << "}\n";
  json << "  ]\n";
  json << "}\n";
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace neocpu

int main() { return neocpu::bench::Main(); }
