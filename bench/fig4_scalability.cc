// Figure 4 reproduction: inference throughput (images/second) as a function of thread
// count, comparing the paper's custom thread pool against the OpenMP-style pool (and the
// framework baselines, which all multi-thread through OpenMP).
//
// Curves (per the paper): (a) ResNet-50 on the avx512 profile, threads 1..18;
// (b) VGG-19 on avx2, threads 1..24; (c) Inception-v3 on neon, threads 1..16.
//
// Substitution note (DESIGN.md §1): this host may have fewer cores than the paper's
// machines, and fork/join overhead cannot be measured directly on an oversubscribed
// core (the scheduler, not the pool, dominates). Instead the harness measures the
// *mechanism* cost of each pool with single-core-safe experiments —
//   * custom pool: one SPSC task handoff + the atomic join decrement (workers spin, so
//     no wake-up is ever paid);
//   * OpenMP-style pool: a mutex/condition-variable wake round trip (every region must
//     wake each parked worker and park it again);
// — and projects the per-region overhead as (t-1) x per-worker cost. Reported
// throughput is the strong-scaling projection
//     latency(t) = compute_1 / t + regions_per_inference * overhead(t),
// which isolates exactly the quantity Figure 4 attributes the gap to ("the overhead of
// OpenMP to launch and suppress threads before and after a region"). When the host has
// >= t physical cores the harness instead prints directly measured throughput.
#include <condition_variable>
#include <mutex>
#include <thread>

#include "bench/bench_util.h"
#include "src/runtime/spsc_queue.h"

namespace neocpu {
namespace bench {
namespace {

// Cost of one scheduler->worker task handoff in the custom pool: SPSC push + pop plus
// the fork/join atomic pair. Measured single-threaded; real cross-core handoffs add one
// cache-line transfer (~0.1 us), which we add as a constant.
double MeasureSpscHandoffMs() {
  SpscQueue<int> queue(64);
  std::atomic<std::uint64_t> pending{0};
  int value = 0;
  const int iters = 200000;
  const RunStats stats = MeasureMillis(
      [&] {
        for (int i = 0; i < iters; ++i) {
          queue.TryPush(i);
          pending.fetch_add(1, std::memory_order_acq_rel);
          queue.TryPop(value);
          pending.fetch_sub(1, std::memory_order_acq_rel);
          asm volatile("" : : "r"(value) : "memory");
        }
      },
      /*runs=*/3, /*warmup=*/1);
  const double cacheline_transfer_ms = 1.5e-7;
  return stats.min / iters + cacheline_transfer_ms;
}

// Wake-from-parked latency of a mutex + condition-variable handoff (what an OpenMP
// passive-wait runtime pays per worker per region): a two-thread ping-pong, one wake
// per half round trip. Valid on a single core — the measured quantity is the futex
// wake + context switch, which is what a multi-core wake costs too.
double MeasureCondvarWakeMs() {
  std::mutex mutex;
  std::condition_variable cv;
  int turn = 0;
  bool done = false;
  const int rounds = 4000;
  std::thread pong([&] {
    std::unique_lock<std::mutex> lock(mutex);
    while (!done) {
      cv.wait(lock, [&] { return turn == 1 || done; });
      if (done) {
        return;
      }
      turn = 0;
      cv.notify_one();
    }
  });
  Timer timer;
  for (int i = 0; i < rounds; ++i) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      turn = 1;
    }
    cv.notify_one();
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return turn == 0; });
  }
  const double total_ms = timer.Millis();
  {
    std::lock_guard<std::mutex> lock(mutex);
    done = true;
  }
  cv.notify_one();
  pong.join();
  return total_ms / (2.0 * rounds);  // one wake per half round trip
}

// Number of fork/join regions one inference executes (~one per compute node).
int CountRegions(const Graph& graph) {
  int regions = 0;
  for (int i = 0; i < graph.num_nodes(); ++i) {
    const OpType t = graph.node(i).type;
    if (t != OpType::kInput && t != OpType::kConstant) {
      ++regions;
    }
  }
  return regions;
}

struct Curve {
  const char* model;
  const char* arch;
  int max_threads;
};

int Main() {
  PrintHeader("Figure 4: throughput vs #threads - custom thread pool vs OpenMP-style");
  const Curve curves[] = {
      {"resnet50", "avx512", 18},
      {"vgg19", "avx2", 24},
      {"inception-v3", "neon", 16},
  };
  const int host_cores = HostCpuInfo().physical_cores;
  auto tuning_cache = std::make_shared<TuningCache>();

  const double spsc_ms = MeasureSpscHandoffMs();
  const double wake_ms = MeasureCondvarWakeMs();
  std::printf("measured mechanism costs: SPSC handoff %.3f us/worker, cond-var wake %.3f "
              "us/worker\n",
              spsc_ms * 1e3, wake_ms * 1e3);
  // Per-region overhead at t workers: the scheduler hands work to (t-1) others.
  auto overhead_neo = [&](int t) { return (t - 1) * spsc_ms; };
  auto overhead_omp = [&](int t) { return (t - 1) * wake_ms + (t > 1 ? wake_ms : 0.0); };

  for (const Curve& curve : curves) {
    const Target target = Target::ByName(curve.arch);
    std::printf("\n--- Figure 4%c: %s on %s profile ---\n",
                static_cast<char>('a' + (&curve - curves)), curve.model, curve.arch);

    Graph model = BuildModel(curve.model);
    Tensor input = ModelInput(curve.model);

    struct Config {
      const char* name;
      CompileOptions opts;
      bool custom_pool;
    };
    CompileOptions neo = NeoCpuOptions(target);
    CompileOptions lib = FrameworkLibOptions(target);
    CompileOptions def = FrameworkDefaultOptions(target);
    for (CompileOptions* o : {&neo, &lib, &def}) {
      o->cost_mode = BenchCostMode();
      o->tuning_cache = tuning_cache;
    }
    const Config configs[] = {
        {"neocpu w/ thread pool", neo, true},
        {"neocpu w/ OMP", neo, false},
        {"mxnet-like (OMP)", lib, false},
        {"tf-like (OMP)", def, false},
    };

    // Single-thread compute time and region count per configuration.
    double compute_ms[4];
    int regions[4];
    for (std::size_t c = 0; c < std::size(configs); ++c) {
      CompiledModel compiled = Compile(model, configs[c].opts);
      compute_ms[c] = MeasureModel(compiled, input, nullptr).min;
      regions[c] = CountRegions(compiled.graph());
    }

    std::printf("%8s", "#threads");
    for (const Config& c : configs) {
      std::printf(" | %22s", c.name);
    }
    std::printf("   (images/sec, strong-scaling projection%s)\n",
                host_cores > 1 ? "; '*' = directly measured" : "");

    for (int t = 1; t <= curve.max_threads; ++t) {
      std::printf("%8d", t);
      for (std::size_t c = 0; c < std::size(configs); ++c) {
        const double overhead_ms =
            configs[c].custom_pool ? overhead_neo(t) : overhead_omp(t);
        const double latency = compute_ms[c] / t + regions[c] * overhead_ms;
        const double ips = 1000.0 / latency;
        if (t <= host_cores && t > 1) {
          // Direct measurement is possible: report it instead of the projection.
          CompiledModel compiled = Compile(model, configs[c].opts);
          if (configs[c].custom_pool) {
            NeoThreadPool pool(t);
            std::printf(" | %20.2f *", 1000.0 / MeasureModel(compiled, input, &pool).min);
          } else {
            OmpStylePool pool(t);
            std::printf(" | %20.2f *", 1000.0 / MeasureModel(compiled, input, &pool).min);
          }
        } else {
          std::printf(" | %22.2f", ips);
        }
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nPaper-shape checks: the custom thread pool curve stays above the OMP curves and\n"
      "keeps scaling at high thread counts, where per-region OpenMP launch overhead\n"
      "flattens (or dips) the other curves.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace neocpu

int main() { return neocpu::bench::Main(); }
