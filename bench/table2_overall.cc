// Table 2 reproduction: end-to-end inference latency of the 15-model zoo under NeoCPU
// and the two framework-baseline configurations, on the three architecture profiles
// (2a: Skylake/AVX-512, 2b: EPYC/AVX2, 2c: Cortex-A72/NEON).
//
// Columns map to the paper as follows (see DESIGN.md §1 for the substitution argument):
//   mxnet-like   = per-op blocked library kernels + OpenMP-style pool
//                  (MXNet + MKL-DNN on x86; on the NEON profile the vendor library does
//                   not exist, so the column runs im2col + GEMM like MXNet + OpenBLAS)
//   tf-like      = default-layout im2col + GEMM + OpenMP-style pool (TensorFlow + Eigen)
//   neocpu       = global-search NCHW[x]c + transform elimination + custom thread pool
// The OpenVINO column is not reproducible (closed source) and is omitted.
//
// Cells print "mean ms, stderr" exactly like the paper. Absolute values are host
// specific; the claims under reproduction are the per-row winners and speedup ratios.
#include "bench/bench_util.h"

namespace neocpu {
namespace bench {
namespace {

struct Column {
  const char* name;
  CompileOptions (*options)(const Target&);
  bool custom_pool;  // NeoThreadPool vs OmpStylePool at run time
};

CompileOptions MxnetLike(const Target& target) {
  if (target.name == "neon") {
    CompileOptions opts = FrameworkDefaultOptions(target);  // OpenBLAS-style im2col
    return opts;
  }
  return FrameworkLibOptions(target);
}

CompileOptions TfLike(const Target& target) {
  CompileOptions opts = FrameworkDefaultOptions(target);
  if (target.name == "neon") {
    opts.nchw_kernel = ConvKernelKind::kDirectNCHW;  // Eigen-style default path
  }
  return opts;
}

CompileOptions NeoCpu(const Target& target) { return NeoCpuOptions(target); }

int Main() {
  PrintHeader(
      "Table 2: overall performance (ms; mean, stderr) - 15 CNN models, 3 CPU profiles");
  const Column columns[] = {
      {"mxnet-like", &MxnetLike, false},
      {"tf-like", &TfLike, false},
      {"neocpu", &NeoCpu, true},
  };
  const std::vector<std::string> archs = {"avx512", "avx2", "neon"};
  const std::vector<std::string> models = BenchModels();
  auto tuning_cache = std::make_shared<TuningCache>();

  NeoThreadPool neo_pool;
  OmpStylePool omp_pool;

  for (const std::string& arch : archs) {
    const Target target = Target::ByName(arch);
    std::printf("\n--- Table 2%c: profile %s (%d lanes fp32; paper platform: %s) ---\n",
                static_cast<char>('a' + (&arch - archs.data())), arch.c_str(),
                target.vector_lanes,
                arch == "avx512" ? "18-core Intel Skylake"
                                 : (arch == "avx2" ? "24-core AMD EPYC"
                                                   : "16-core ARM Cortex A72"));
    std::printf("%-14s", "model");
    for (const Column& col : columns) {
      std::printf(" | %16s", col.name);
    }
    std::printf(" | best\n");

    for (const std::string& name : models) {
      Graph model = BuildModel(name);
      Tensor input = ModelInput(name);
      std::printf("%-14s", name.c_str());
      double best_ms = 1e30;
      std::size_t best_col = 0;
      std::vector<RunStats> stats(std::size(columns));
      for (std::size_t c = 0; c < std::size(columns); ++c) {
        CompileOptions opts = columns[c].options(target);
        opts.cost_mode = BenchCostMode();
        opts.tuning_cache = tuning_cache;
        CompiledModel compiled = Compile(model, opts);
        ThreadEngine* engine = columns[c].custom_pool
                                   ? static_cast<ThreadEngine*>(&neo_pool)
                                   : static_cast<ThreadEngine*>(&omp_pool);
        stats[c] = MeasureModel(compiled, input, engine);
        std::printf(" | %16s", Cell(stats[c]).c_str());
        std::fflush(stdout);
        if (stats[c].mean < best_ms) {
          best_ms = stats[c].mean;
          best_col = c;
        }
      }
      std::printf(" | %s (%.2fx vs next)\n", columns[best_col].name,
                  [&] {
                    double next = 1e30;
                    for (std::size_t c = 0; c < std::size(columns); ++c) {
                      if (c != best_col) {
                        next = std::min(next, stats[c].mean);
                      }
                    }
                    return next / best_ms;
                  }());
    }
  }
  std::printf(
      "\nPaper-shape checks: neocpu should win most rows on every profile, with the\n"
      "largest margins on the neon profile (the paper's 2.05-3.45x ARM speedups).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace neocpu

int main() { return neocpu::bench::Main(); }
