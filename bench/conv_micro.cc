// Figure 1 / §3.1 micro-benchmarks: the NCHW[x]c direct-convolution template against
// the NCHW baselines on real ResNet-50 workloads, plus schedule-parameter ablations
// (reg_n register blocking, oc_bn ISA blocking, unroll_ker) — the knobs DESIGN.md calls
// out as design-choice ablations.
#include <benchmark/benchmark.h>

#include "src/base/rng.h"
#include "src/kernels/conv_im2col.h"
#include "src/kernels/conv_nchwc.h"
#include "src/kernels/conv_nchwc_int8.h"
#include "src/kernels/conv_ref.h"
#include "src/kernels/conv_winograd.h"
#include "src/kernels/quantize.h"
#include "src/tensor/layout_transform.h"

namespace neocpu {
namespace {

// Representative ResNet-50 convolution workloads (batch 1, 224x224 input).
const Conv2dParams kWorkloads[] = {
    {1, 3, 224, 224, 64, 7, 7, 2, 2, 3, 3},     // stem
    {1, 64, 56, 56, 64, 1, 1, 1, 1, 0, 0},      // stage1 1x1
    {1, 64, 56, 56, 64, 3, 3, 1, 1, 1, 1},      // stage1 3x3
    {1, 256, 56, 56, 128, 1, 1, 2, 2, 0, 0},    // stage2 downsample
    {1, 512, 7, 7, 512, 3, 3, 1, 1, 1, 1},      // stage4 3x3
};

struct BlockedSetup {
  Conv2dParams p;
  ConvSchedule s;
  Tensor in, w, out;
};

BlockedSetup MakeBlocked(const Conv2dParams& p, const ConvSchedule& s) {
  Rng rng(1);
  BlockedSetup setup{p, s, {}, {}, {}};
  setup.in = Tensor::Random({p.batch, p.in_c / s.ic_bn, p.in_h, p.in_w, s.ic_bn}, rng, -1, 1,
                            Layout::NCHWc(s.ic_bn));
  setup.w = Tensor::Random(
      {p.out_c / s.oc_bn, p.in_c / s.ic_bn, p.kernel_h, p.kernel_w, s.ic_bn, s.oc_bn}, rng,
      -0.5f, 0.5f, Layout::OIHWio(s.ic_bn, s.oc_bn));
  setup.out = Tensor::Empty({p.batch, p.out_c / s.oc_bn, p.OutH(), p.OutW(), s.oc_bn},
                            Layout::NCHWc(s.oc_bn));
  return setup;
}

ConvSchedule DefaultSchedule(const Conv2dParams& p) {
  auto factor = [](std::int64_t c, std::int64_t want) {
    std::int64_t best = 1;
    for (std::int64_t f = 1; f <= want && f <= c; ++f) {
      if (c % f == 0) {
        best = f;
      }
    }
    return best;
  };
  return ConvSchedule{factor(p.in_c, 16), factor(p.out_c, 16), 8, true};
}

void BM_ConvNCHWc(benchmark::State& state) {
  const Conv2dParams& p = kWorkloads[state.range(0)];
  BlockedSetup setup = MakeBlocked(p, DefaultSchedule(p));
  for (auto _ : state) {
    ConvNCHWc(setup.p, setup.s, setup.in, setup.w, nullptr, nullptr, {}, &setup.out);
  }
  state.counters["GFLOPS"] =
      benchmark::Counter(2.0 * p.Macs(), benchmark::Counter::kIsIterationInvariantRate,
                         benchmark::Counter::kIs1000);
}
BENCHMARK(BM_ConvNCHWc)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

void BM_ConvDirectNCHW(benchmark::State& state) {
  const Conv2dParams& p = kWorkloads[state.range(0)];
  Rng rng(2);
  Tensor in = Tensor::Random({p.batch, p.in_c, p.in_h, p.in_w}, rng, -1, 1, Layout::NCHW());
  Tensor w = Tensor::Random({p.out_c, p.in_c, p.kernel_h, p.kernel_w}, rng, -0.5f, 0.5f,
                            Layout::OIHW());
  Tensor out = Tensor::Empty({p.batch, p.out_c, p.OutH(), p.OutW()}, Layout::NCHW());
  for (auto _ : state) {
    ConvRefNCHW(p, in, w, nullptr, nullptr, {}, &out);
  }
  state.counters["GFLOPS"] =
      benchmark::Counter(2.0 * p.Macs(), benchmark::Counter::kIsIterationInvariantRate,
                         benchmark::Counter::kIs1000);
}
BENCHMARK(BM_ConvDirectNCHW)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

void BM_ConvIm2col(benchmark::State& state) {
  const Conv2dParams& p = kWorkloads[state.range(0)];
  Rng rng(3);
  Tensor in = Tensor::Random({p.batch, p.in_c, p.in_h, p.in_w}, rng, -1, 1, Layout::NCHW());
  Tensor w = Tensor::Random({p.out_c, p.in_c, p.kernel_h, p.kernel_w}, rng, -0.5f, 0.5f,
                            Layout::OIHW());
  Tensor out = Tensor::Empty({p.batch, p.out_c, p.OutH(), p.OutW()}, Layout::NCHW());
  for (auto _ : state) {
    ConvIm2col(p, in, w, nullptr, nullptr, {}, &out);
  }
  state.counters["GFLOPS"] =
      benchmark::Counter(2.0 * p.Macs(), benchmark::Counter::kIsIterationInvariantRate,
                         benchmark::Counter::kIs1000);
}
BENCHMARK(BM_ConvIm2col)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

// Ablation: reg_n register blocking (Figure 1's claim that reusing one kernel vector
// across reg_n output positions is what buys the FMA throughput).
void BM_Ablation_RegN(benchmark::State& state) {
  Conv2dParams p{1, 64, 56, 56, 64, 3, 3, 1, 1, 1, 1};
  ConvSchedule s{16, 16, state.range(0), true};
  BlockedSetup setup = MakeBlocked(p, s);
  for (auto _ : state) {
    ConvNCHWc(setup.p, setup.s, setup.in, setup.w, nullptr, nullptr, {}, &setup.out);
  }
}
BENCHMARK(BM_Ablation_RegN)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

// Ablation: channel block = ISA vector width (4 = NEON, 8 = AVX2, 16/32 = AVX-512).
void BM_Ablation_Block(benchmark::State& state) {
  Conv2dParams p{1, 64, 56, 56, 64, 3, 3, 1, 1, 1, 1};
  const std::int64_t block = state.range(0);
  ConvSchedule s{block, block, 8, true};
  BlockedSetup setup = MakeBlocked(p, s);
  for (auto _ : state) {
    ConvNCHWc(setup.p, setup.s, setup.in, setup.w, nullptr, nullptr, {}, &setup.out);
  }
}
BENCHMARK(BM_Ablation_Block)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

// Ablation: unroll_ker on/off (the boolean in the paper's schedule tuple).
void BM_Ablation_UnrollKer(benchmark::State& state) {
  Conv2dParams p{1, 64, 56, 56, 64, 3, 3, 1, 1, 1, 1};
  ConvSchedule s{16, 16, 8, state.range(0) != 0};
  BlockedSetup setup = MakeBlocked(p, s);
  for (auto _ : state) {
    ConvNCHWc(setup.p, setup.s, setup.in, setup.w, nullptr, nullptr, {}, &setup.out);
  }
}
BENCHMARK(BM_Ablation_UnrollKer)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------- int8
// s8-vs-f32 sweep: the quantized direct template against the fp32 one on the same
// workloads and block sizes. Two uses: (a) the headline comparison — on a multi-lane
// profile with a full s8 vector block (oc_bn=64) the s8 kernel should clear ~2x over
// the fp32 template on a resnet-style 3x3 layer; (b) calibration data for the
// analytic s8 cost model (AnalyticDirectNchwcS8Ms models efficiency as the filled
// fraction of the s8 vector — the block sweep below measures exactly that curve).
// The reported "isa" counter-label shows which runtime-dispatched variant executed.

struct BlockedS8Setup {
  Conv2dParams p;
  ConvSchedule s;
  Tensor in, w, mult, out;
};

BlockedS8Setup MakeBlockedS8(const Conv2dParams& p, std::int64_t block, std::int64_t reg_n) {
  auto factor = [](std::int64_t c, std::int64_t want) {
    std::int64_t best = 1;
    for (std::int64_t f = 1; f <= want && f <= c; ++f) {
      if (c % f == 0) {
        best = f;
      }
    }
    return best;
  };
  BlockedS8Setup setup;
  setup.p = p;
  setup.s = ConvSchedule{factor(p.in_c, block), factor(p.out_c, block), reg_n, true};
  setup.s.dtype = DType::kS8;
  const ConvSchedule& s = setup.s;
  setup.in = Tensor::Empty({p.batch, p.in_c / s.ic_bn, p.in_h, p.in_w, s.ic_bn},
                           Layout::NCHWc(s.ic_bn), DType::kS8);
  setup.w = Tensor::Empty(
      {p.out_c / s.oc_bn, p.in_c / s.ic_bn, p.kernel_h, p.kernel_w, s.ic_bn, s.oc_bn},
      Layout::OIHWio(s.ic_bn, s.oc_bn), DType::kS8);
  std::int8_t* in = setup.in.data_as<std::int8_t>();
  for (std::int64_t i = 0; i < setup.in.NumElements(); ++i) {
    in[i] = static_cast<std::int8_t>(i % 251 - 125);
  }
  std::int8_t* w = setup.w.data_as<std::int8_t>();
  for (std::int64_t i = 0; i < setup.w.NumElements(); ++i) {
    w[i] = static_cast<std::int8_t>(i % 241 - 120);
  }
  setup.mult = Tensor::Full({p.out_c}, 1e-3f);
  setup.out = Tensor::Empty({p.batch, p.out_c / s.oc_bn, p.OutH(), p.OutW(), s.oc_bn},
                            Layout::NCHWc(s.oc_bn), DType::kS8);
  return setup;
}

void BM_ConvNCHWcS8(benchmark::State& state) {
  const Conv2dParams& p = kWorkloads[state.range(0)];
  // Full s8 vector block on the avx512 profile (Target::PreferredBlockS8() == 64).
  BlockedS8Setup setup = MakeBlockedS8(p, 64, 8);
  for (auto _ : state) {
    ConvNCHWcS8(setup.p, setup.s, setup.in, setup.w, nullptr, setup.mult, {}, true,
                &setup.out);
  }
  state.SetLabel(ConvNCHWcS8IsaName());
  state.counters["GMACS"] =
      benchmark::Counter(p.Macs(), benchmark::Counter::kIsIterationInvariantRate,
                         benchmark::Counter::kIs1000);
}
BENCHMARK(BM_ConvNCHWcS8)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

// Block sweep on the resnet-style 3x3 layer: the vector-fill efficiency curve the s8
// analytic cost model is calibrated against (compare with BM_Ablation_Block's fp32
// numbers at the same blocks).
void BM_Ablation_S8Block(benchmark::State& state) {
  Conv2dParams p{1, 128, 28, 28, 128, 3, 3, 1, 1, 1, 1};
  BlockedS8Setup setup = MakeBlockedS8(p, state.range(0), 8);
  for (auto _ : state) {
    ConvNCHWcS8(setup.p, setup.s, setup.in, setup.w, nullptr, setup.mult, {}, true,
                &setup.out);
  }
  state.SetLabel(ConvNCHWcS8IsaName());
}
BENCHMARK(BM_Ablation_S8Block)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

// The acceptance comparison, in one benchmark pair: fp32 direct NCHWc vs s8 direct
// NCHWc on the same resnet-style 3x3 layer (batch 1, 128c, 28x28), each at its
// profile-preferred block (fp32: one fp32 vector = 16; s8: one s8 vector = 64).
void BM_S8VsF32_Resnet3x3_F32(benchmark::State& state) {
  Conv2dParams p{1, 128, 28, 28, 128, 3, 3, 1, 1, 1, 1};
  BlockedSetup setup = MakeBlocked(p, ConvSchedule{16, 16, 8, true});
  for (auto _ : state) {
    ConvNCHWc(setup.p, setup.s, setup.in, setup.w, nullptr, nullptr, {}, &setup.out);
  }
  state.counters["GMACS"] =
      benchmark::Counter(p.Macs(), benchmark::Counter::kIsIterationInvariantRate,
                         benchmark::Counter::kIs1000);
}
BENCHMARK(BM_S8VsF32_Resnet3x3_F32)->Unit(benchmark::kMillisecond);

void BM_S8VsF32_Resnet3x3_S8(benchmark::State& state) {
  Conv2dParams p{1, 128, 28, 28, 128, 3, 3, 1, 1, 1, 1};
  BlockedS8Setup setup = MakeBlockedS8(p, 64, 8);
  for (auto _ : state) {
    ConvNCHWcS8(setup.p, setup.s, setup.in, setup.w, nullptr, setup.mult, {}, true,
                &setup.out);
  }
  state.SetLabel(ConvNCHWcS8IsaName());
  state.counters["GMACS"] =
      benchmark::Counter(p.Macs(), benchmark::Counter::kIsIterationInvariantRate,
                         benchmark::Counter::kIs1000);
}
BENCHMARK(BM_S8VsF32_Resnet3x3_S8)->Unit(benchmark::kMillisecond);

// u8-activation variant of the blocked setup: u8 input with a 128 zero point,
// VNNI-packed s8 weights (the u8 kernels read the [ic_bn/4][oc_bn][4] inner tile),
// u8 requantized output. Requires ic_bn % 4 == 0, which every block the sweeps use
// satisfies (8/16/32/64).
BlockedS8Setup MakeBlockedU8(const Conv2dParams& p, std::int64_t block,
                             std::int64_t reg_n) {
  BlockedS8Setup setup = MakeBlockedS8(p, block, reg_n);
  setup.s.dtype = DType::kU8;
  setup.in = Tensor::Empty(setup.in.dims(), setup.in.layout(), DType::kU8);
  std::uint8_t* in = setup.in.data_as<std::uint8_t>();
  for (std::int64_t i = 0; i < setup.in.NumElements(); ++i) {
    in[i] = static_cast<std::uint8_t>(i % 251);
  }
  setup.w = PackWeightsVnni(setup.w);
  setup.out = Tensor::Empty(setup.out.dims(), setup.out.layout(), DType::kU8);
  return setup;
}

// u8 counterpart of the BM_ConvNCHWcS8 workload sweep: same shapes, same block, the
// u8 row drivers (vpdpbusd on the VNNI tier, s16 pairwise widening below it). The
// stem (workload 0, ic=3) has no quad-divisible ic_bn, so it falls to ic_bn=1 blocks
// in real compiles — skip it here rather than bench an illegal packing.
//
// reg_n differs from the s8 sweep on purpose: the VNNI micro-kernel keeps
// reg_n * oc_bn/16 zmm accumulators live plus oc_bn/16 weight vectors, so at
// oc_bn=64 only reg_n=2 fits the 32-register file (2*4 + 4 + 1 broadcast = 13);
// reg_n=8 spills every accumulator and runs ~2x slower. The tuner's measured mode
// lands on the same point (reg_n=2 is in RegNCandidates()).
void BM_ConvNCHWcU8(benchmark::State& state) {
  const Conv2dParams& p = kWorkloads[state.range(0)];
  BlockedS8Setup setup = MakeBlockedU8(p, 64, 2);
  for (auto _ : state) {
    ConvNCHWcS8(setup.p, setup.s, setup.in, setup.w, nullptr, setup.mult, {}, true,
                &setup.out, nullptr, /*out_zero=*/128, /*in_zero=*/128);
  }
  state.SetLabel(ConvNCHWcS8IsaName());
  state.counters["GMACS"] =
      benchmark::Counter(p.Macs(), benchmark::Counter::kIsIterationInvariantRate,
                         benchmark::Counter::kIs1000);
}
BENCHMARK(BM_ConvNCHWcU8)->DenseRange(1, 4)->Unit(benchmark::kMillisecond);

// Third leg of the acceptance comparison: u8 activations on the same resnet-style
// 3x3 layer as BM_S8VsF32_Resnet3x3_{F32,S8}, each dtype at its preferred schedule
// (s8: reg_n=8 for the autovectorized pairwise path; u8: reg_n=2 to keep the VNNI
// accumulator tile in registers). On a VNNI host vpdpbusd does 4 MACs/byte-lane in
// one op vs the s8 path's widen+pairwise sequence, so u8 should match or beat s8.
void BM_S8VsF32_Resnet3x3_U8(benchmark::State& state) {
  Conv2dParams p{1, 128, 28, 28, 128, 3, 3, 1, 1, 1, 1};
  BlockedS8Setup setup = MakeBlockedU8(p, 64, 2);
  for (auto _ : state) {
    ConvNCHWcS8(setup.p, setup.s, setup.in, setup.w, nullptr, setup.mult, {}, true,
                &setup.out, nullptr, /*out_zero=*/128, /*in_zero=*/128);
  }
  state.SetLabel(ConvNCHWcS8IsaName());
  state.counters["GMACS"] =
      benchmark::Counter(p.Macs(), benchmark::Counter::kIsIterationInvariantRate,
                         benchmark::Counter::kIs1000);
}
BENCHMARK(BM_S8VsF32_Resnet3x3_U8)->Unit(benchmark::kMillisecond);

// VNNI-vs-pairwise ablation: the same u8 workload pinned to each compiled ISA tier
// via SetConvNCHWcS8IsaOverride. Arg indexes kIsaTiers; tiers the binary/CPU lacks
// are skipped (the override refuses them). On VNNI hardware the avx512vnni row is
// the vpdpbusd driver and avx512 is the s16-pairwise fallback — the delta between
// those two rows is the headline "VNNI beats pairwise" number.
const char* const kIsaTiers[] = {"baseline", "avx2", "avx512", "avx512vnni"};

void BM_Ablation_U8Isa(benchmark::State& state) {
  const char* tier = kIsaTiers[state.range(0)];
  if (!SetConvNCHWcS8IsaOverride(tier)) {
    state.SkipWithError("isa tier not available on this host");
    return;
  }
  Conv2dParams p{1, 128, 28, 28, 128, 3, 3, 1, 1, 1, 1};
  BlockedS8Setup setup = MakeBlockedU8(p, 64, 2);
  for (auto _ : state) {
    ConvNCHWcS8(setup.p, setup.s, setup.in, setup.w, nullptr, setup.mult, {}, true,
                &setup.out, nullptr, /*out_zero=*/128, /*in_zero=*/128);
  }
  state.SetLabel(tier);
  state.counters["GMACS"] =
      benchmark::Counter(p.Macs(), benchmark::Counter::kIsIterationInvariantRate,
                         benchmark::Counter::kIs1000);
  SetConvNCHWcS8IsaOverride(nullptr);
}
BENCHMARK(BM_Ablation_U8Isa)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

// Same ablation for s8 activations (no VNNI benefit expected — vpdpbusd wants u8·s8,
// so the s8 path stays on the pairwise driver at every tier; this row pair documents
// that u8 is where the VNNI win lives).
void BM_Ablation_S8Isa(benchmark::State& state) {
  const char* tier = kIsaTiers[state.range(0)];
  if (!SetConvNCHWcS8IsaOverride(tier)) {
    state.SkipWithError("isa tier not available on this host");
    return;
  }
  Conv2dParams p{1, 128, 28, 28, 128, 3, 3, 1, 1, 1, 1};
  BlockedS8Setup setup = MakeBlockedS8(p, 64, 8);
  for (auto _ : state) {
    ConvNCHWcS8(setup.p, setup.s, setup.in, setup.w, nullptr, setup.mult, {}, true,
                &setup.out);
  }
  state.SetLabel(tier);
  state.counters["GMACS"] =
      benchmark::Counter(p.Macs(), benchmark::Counter::kIsIterationInvariantRate,
                         benchmark::Counter::kIs1000);
  SetConvNCHWcS8IsaOverride(nullptr);
}
BENCHMARK(BM_Ablation_S8Isa)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

// Winograd F(2x2,3x3) vs the direct template on the same workload (the paper's named
// future-work algorithm; arithmetic drops 2.25x, transforms eat part of it back).
void BM_ConvWinograd(benchmark::State& state) {
  const Conv2dParams& p = kWorkloads[state.range(0)];
  if (!WinogradApplicable(p)) {
    state.SkipWithError("not a 3x3/s1 workload");
    return;
  }
  Rng rng(5);
  Tensor in = Tensor::Random({p.batch, p.in_c, p.in_h, p.in_w}, rng, -1, 1, Layout::NCHW());
  Tensor w = Tensor::Random({p.out_c, p.in_c, 3, 3}, rng, -0.5f, 0.5f, Layout::OIHW());
  Tensor u = WinogradTransformWeights(w);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ConvWinograd(p, in, u, nullptr, {}));
  }
  state.counters["GFLOPS(direct-equiv)"] =
      benchmark::Counter(2.0 * p.Macs(), benchmark::Counter::kIsIterationInvariantRate,
                         benchmark::Counter::kIs1000);
}
BENCHMARK(BM_ConvWinograd)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

// Fused epilogue vs separate passes (the fusion half of the joint optimization).
void BM_FusedEpilogue(benchmark::State& state) {
  Conv2dParams p{1, 64, 56, 56, 64, 3, 3, 1, 1, 1, 1};
  ConvSchedule s{16, 16, 8, true};
  BlockedSetup setup = MakeBlocked(p, s);
  Rng rng(4);
  Tensor bias = Tensor::Random({p.out_c}, rng, -0.1f, 0.1f);
  Tensor residual = Tensor::Random(setup.out.dims(), rng, -1, 1, setup.out.layout());
  ConvEpilogue epi{true, true, true};
  for (auto _ : state) {
    ConvNCHWc(setup.p, setup.s, setup.in, setup.w, &bias, &residual, epi, &setup.out);
  }
}
BENCHMARK(BM_FusedEpilogue)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace neocpu

BENCHMARK_MAIN();
