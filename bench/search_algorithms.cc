// §3.3.2 / Figure 3 reproduction: global-search algorithm comparison on the real
// layout-choice problems of every zoo model.
//
// The paper reports: exact DP completes within 1 minute for most models; the PBQP
// approximation completes in ~10 seconds and reaches >= 88% of the DP optimum; only SSD
// required the approximation in their implementation.
//
// This implementation's exact solver is a variable-elimination generalization of the
// paper's Algorithm 2, so it stays tractable even on SSD's concatenation-rich graph
// (noted in EXPERIMENTS.md); the DP-vs-PBQP quality/time comparison is reproduced on
// every model regardless.
#include "bench/bench_util.h"
#include "src/graph/passes/passes.h"

namespace neocpu {
namespace bench {
namespace {

int Main() {
  PrintHeader("Global search: exact DP (Algorithm 2 generalized) vs PBQP approximation");
  std::printf("%-14s %6s %8s %8s | %10s %12s | %10s %12s | %8s %6s\n", "model", "convs",
              "options", "edges", "dp_sec", "dp_cost", "pbqp_sec", "pbqp_cost", "quality",
              "policy");
  TuningCache cache;
  const Target target = Target::Host();

  for (const std::string& name : BenchModels()) {
    Graph model = BuildModel(name);
    Graph g = FuseOps(SimplifyInference(model));
    LocalSearchMap locals;
    for (int i = 0; i < g.num_nodes(); ++i) {
      if (g.node(i).IsConv()) {
        locals[i] = LocalSearchConvShared(g.node(i).attrs.conv, target, BenchCostMode(),
                                          /*quick_space=*/false, nullptr, &cache);
      }
    }
    GlobalProblem problem = ExtractGlobalProblem(g, locals);
    std::size_t total_options = 0;
    for (const auto& o : problem.options) {
      total_options += o.size();
    }

    bool dp_ok = false;
    GlobalSolution dp = SolveGlobalExactOnly(problem, /*max_dp_table_entries=*/1 << 22,
                                             &dp_ok);
    GlobalSolution pbqp = SolveGlobalPbqpOnly(problem);
    GlobalSolution policy = SolveGlobal(problem);

    std::printf("%-14s %6zu %8.1f %8zu | %10s %12s | %10.3f %12.3f | %8s %6s\n",
                name.c_str(), problem.conv_ids.size(),
                static_cast<double>(total_options) /
                    static_cast<double>(std::max<std::size_t>(problem.conv_ids.size(), 1)),
                problem.edges.size(),
                dp_ok ? StrFormat("%.3f", dp.solve_seconds).c_str() : "intract.",
                dp_ok ? StrFormat("%.3f", dp.cost_ms).c_str() : "-",
                pbqp.solve_seconds, pbqp.cost_ms,
                dp_ok ? StrFormat("%.1f%%", 100.0 * dp.cost_ms / pbqp.cost_ms).c_str()
                      : "n/a",
                policy.exact ? "DP" : "PBQP");
    std::fflush(stdout);
  }
  std::printf(
      "\nPaper-shape checks: DP seconds well under 60; PBQP well under 10s; quality\n"
      "(DP optimum / PBQP cost) >= 88%% on every DP-tractable model.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace neocpu

int main() { return neocpu::bench::Main(); }
