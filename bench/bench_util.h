// Shared helpers for the table/figure reproduction harnesses.
//
// Every harness honours the same environment knobs so the full paper protocol (1000
// timed runs) can be requested on capable hardware while CI-class machines default to a
// quick pass:
//   NEOCPU_BENCH_RUNS    timed runs per measurement            (default 2)
//   NEOCPU_BENCH_WARMUP  untimed warm-up runs                  (default 1)
//   NEOCPU_BENCH_MODELS  comma-separated subset of zoo models  (default: all)
//   NEOCPU_COST_MODE     "analytic" (default) or "measured" local search
#ifndef NEOCPU_BENCH_BENCH_UTIL_H_
#define NEOCPU_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/neocpu.h"

namespace neocpu {
namespace bench {

inline std::size_t Runs() { return EnvSizeT("NEOCPU_BENCH_RUNS", 2); }
inline std::size_t Warmup() { return EnvSizeT("NEOCPU_BENCH_WARMUP", 1); }

inline CostMode BenchCostMode() {
  const char* v = std::getenv("NEOCPU_COST_MODE");
  return (v != nullptr && std::strcmp(v, "measured") == 0) ? CostMode::kMeasured
                                                           : CostMode::kAnalytic;
}

inline std::vector<std::string> BenchModels() {
  const char* v = std::getenv("NEOCPU_BENCH_MODELS");
  if (v == nullptr) {
    return ModelZooNames();
  }
  std::vector<std::string> out;
  std::string s(v);
  std::size_t pos = 0;
  while (pos != std::string::npos) {
    const std::size_t comma = s.find(',', pos);
    out.push_back(s.substr(pos, comma == std::string::npos ? comma : comma - pos));
    pos = comma == std::string::npos ? comma : comma + 1;
  }
  return out;
}

inline Tensor ModelInput(const std::string& name) {
  Rng rng(2024);
  return Tensor::Random(ModelInputDims(name), rng, 0.0f, 1.0f, Layout::NCHW());
}

// Measures end-to-end inference latency (paper protocol: batch 1, one image at a time).
inline RunStats MeasureModel(const CompiledModel& model, const Tensor& input,
                             ThreadEngine* engine) {
  return MeasureMillis([&] { model.Run(input, engine); }, Runs(), Warmup());
}

// "mean, stderr" cell in the format of the paper's Table 2.
inline std::string Cell(const RunStats& stats) {
  return StrFormat("%9.2f, %.2f", stats.mean, stats.stderr_);
}

inline void PrintHeader(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("runs=%zu warmup=%zu cost_mode=%s host=%s (%d core(s), %s)\n", Runs(), Warmup(),
              CostModeName(BenchCostMode()), HostCpuInfo().brand.c_str(),
              HostCpuInfo().physical_cores, SimdIsaName(HostCpuInfo().isa));
  std::printf("================================================================\n");
}

}  // namespace bench
}  // namespace neocpu

#endif  // NEOCPU_BENCH_BENCH_UTIL_H_
