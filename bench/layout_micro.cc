// Layout-transformation cost micro-benchmarks: the runtime price the graph-level
// optimization (§3.2/§3.3) eliminates or trades against better convolution schedules.
#include <benchmark/benchmark.h>

#include "src/base/rng.h"
#include "src/tensor/layout_transform.h"
#include "src/tuning/cost_model.h"

namespace neocpu {
namespace {

// NCHW -> NCHW16c for feature maps of growing size (the per-conv boundary transform the
// "Layout Opt." ablation row pays twice per convolution).
void BM_NCHWToNCHWc(benchmark::State& state) {
  const std::int64_t c = 64;
  const std::int64_t hw = state.range(0);
  Rng rng(1);
  Tensor src = Tensor::Random({1, c, hw, hw}, rng, -1, 1, Layout::NCHW());
  for (auto _ : state) {
    benchmark::DoNotOptimize(NCHWToNCHWc(src, 16));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(src.SizeBytes()));
}
BENCHMARK(BM_NCHWToNCHWc)->Arg(14)->Arg(28)->Arg(56)->Arg(112)->Unit(benchmark::kMicrosecond);

void BM_NCHWcToNCHW(benchmark::State& state) {
  const std::int64_t hw = state.range(0);
  Rng rng(2);
  Tensor src = Tensor::Random({1, 4, hw, hw, 16}, rng, -1, 1, Layout::NCHWc(16));
  for (auto _ : state) {
    benchmark::DoNotOptimize(NCHWcToNCHW(src));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(src.SizeBytes()));
}
BENCHMARK(BM_NCHWcToNCHW)->Arg(14)->Arg(28)->Arg(56)->Arg(112)->Unit(benchmark::kMicrosecond);

// Re-blocking between two blocked layouts: the mismatch cost the global search's edge
// matrices price (Figure 3's yellow boxes).
void BM_Reblock16To8(benchmark::State& state) {
  const std::int64_t hw = state.range(0);
  Rng rng(3);
  Tensor src = Tensor::Random({1, 4, hw, hw, 16}, rng, -1, 1, Layout::NCHWc(16));
  for (auto _ : state) {
    benchmark::DoNotOptimize(NCHWcToNCHWc(src, 8));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(src.SizeBytes()));
}
BENCHMARK(BM_Reblock16To8)->Arg(14)->Arg(28)->Arg(56)->Unit(benchmark::kMicrosecond);

// Weight pre-transformation (compile-time in NeoCPU; per-inference cost in systems that
// cannot hoist it).
void BM_WeightOIHWio(benchmark::State& state) {
  Rng rng(4);
  Tensor w = Tensor::Random({256, 256, 3, 3}, rng, -1, 1, Layout::OIHW());
  for (auto _ : state) {
    benchmark::DoNotOptimize(OIHWToOIHWio(w, 16, 16));
  }
}
BENCHMARK(BM_WeightOIHWio)->Unit(benchmark::kMillisecond);

// The calibrated bandwidth model against the real transform (sanity for the cost model).
void BM_TransformModelAccuracy(benchmark::State& state) {
  Rng rng(5);
  Tensor src = Tensor::Random({1, 64, 56, 56}, rng, -1, 1, Layout::NCHW());
  const double predicted_ms = TransformMs(static_cast<std::int64_t>(src.SizeBytes()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(NCHWToNCHWc(src, 16));
  }
  state.counters["model_ms"] = predicted_ms;
}
BENCHMARK(BM_TransformModelAccuracy)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace neocpu

BENCHMARK_MAIN();
