// Object detection with SSD-ResNet-50: the paper's detection workload, end to end —
// backbone, multibox heads, box decoding and NMS are all part of the compiled graph
// (the paper notes OpenVINO skips the post-processing; NeoCPU times all of it).
//
//   ./object_detection_ssd [image_size] [num_classes]
//
// Defaults to 256x256 / 21 classes so the demo runs in seconds; 512 reproduces the
// paper's configuration.
#include <cstdio>

#include "src/neocpu.h"

int main(int argc, char** argv) {
  using namespace neocpu;
  const std::int64_t image = argc > 1 ? std::atoll(argv[1]) : 256;
  const std::int64_t classes = argc > 2 ? std::atoll(argv[2]) : 21;

  std::printf("Building SSD-ResNet-50 at %lldx%lld with %lld classes...\n",
              static_cast<long long>(image), static_cast<long long>(image),
              static_cast<long long>(classes));
  Graph model = BuildSsdResNet50(1, image, classes);

  CompiledModel compiled = Compile(model, NeoCpuOptions(Target::Host()));
  std::printf("Compiled: %d convs, %d runtime layout transforms, search=%s\n",
              compiled.stats().num_convs, compiled.stats().num_layout_transforms,
              compiled.stats().used_exact_dp ? "exact DP" : "PBQP");

  Rng rng(99);
  Tensor frame = Tensor::Random({1, 3, image, image}, rng, 0.0f, 1.0f, Layout::NCHW());

  NeoThreadPool pool;
  Timer timer;
  Tensor detections = compiled.Run(frame, &pool);
  std::printf("Detection pass: %.2f ms (backbone + heads + decode + NMS)\n", timer.Millis());

  std::printf("Detections (class, score, x1, y1, x2, y2) above score 0.02:\n");
  int shown = 0;
  for (std::int64_t i = 0; i < detections.dim(0) && shown < 10; ++i) {
    const float* row = detections.data() + i * 6;
    if (row[0] < 0.0f || row[1] < 0.02f) {
      continue;
    }
    std::printf("  class %2d  score %.3f  box (%.3f, %.3f) - (%.3f, %.3f)\n",
                static_cast<int>(row[0]), row[1], row[2], row[3], row[4], row[5]);
    ++shown;
  }
  if (shown == 0) {
    std::printf("  (random weights produce few confident boxes - expected)\n");
  }
  return 0;
}
