// Quickstart: compile a zoo model with the full NeoCPU pipeline and run one inference.
//
//   ./quickstart [model] [image_size]
//
// Defaults to ResNet-18 at a reduced 128x128 resolution so the example finishes in a
// couple of seconds on any machine; pass 224 for the paper's configuration.
#include <algorithm>
#include <cstdio>

#include "src/neocpu.h"

int main(int argc, char** argv) {
  using namespace neocpu;
  const std::string model_name = argc > 1 ? argv[1] : "resnet18";
  const std::int64_t image = argc > 2 ? std::atoll(argv[2]) : 128;

  std::printf("Building %s (%lldx%lld input)...\n", model_name.c_str(),
              static_cast<long long>(image), static_cast<long long>(image));
  Graph model = model_name.rfind("resnet", 0) == 0
                    ? BuildResNet(std::atoi(model_name.c_str() + 6), 1, image)
                    : BuildModel(model_name);

  std::printf("Compiling with the full NeoCPU pipeline (global layout search)...\n");
  CompiledModel compiled = Compile(model, NeoCpuOptions(Target::Host()));
  const CompileStats& stats = compiled.stats();
  std::printf("  %d convolutions, %d runtime layout transforms left in the graph\n",
              stats.num_convs, stats.num_layout_transforms);
  std::printf("  tuning %.2fs, global search %.3fs (%s)\n", stats.tuning_seconds,
              stats.search_seconds, stats.used_exact_dp ? "exact DP" : "PBQP approximation");

  // A synthetic image; in deployment this is your preprocessed NCHW frame.
  Rng rng(1234);
  Tensor input = Tensor::Random(model.node(0).out_dims, rng, 0.0f, 1.0f, Layout::NCHW());

  NeoThreadPool pool;  // the paper's custom fork-join thread pool
  Timer timer;
  Tensor probs = compiled.Run(input, &pool);
  std::printf("Inference: %.2f ms on %d worker(s)\n", timer.Millis(), pool.NumWorkers());

  // Top-5 classes.
  std::vector<std::pair<float, int>> scored;
  for (std::int64_t i = 0; i < probs.NumElements(); ++i) {
    scored.push_back({probs.data()[i], static_cast<int>(i)});
  }
  std::partial_sort(scored.begin(), scored.begin() + 5, scored.end(),
                    [](auto& a, auto& b) { return a.first > b.first; });
  std::printf("Top-5 classes (random weights, so arbitrary but deterministic):\n");
  for (int i = 0; i < 5; ++i) {
    std::printf("  class %4d  p=%.5f\n", scored[i].second, scored[i].first);
  }
  return 0;
}
