// Serving quickstart: compile once, serve concurrent traffic, verify bit-exactness.
//
//   ./serving_demo [model] [clients] [requests_per_client]
//
// Four (or more) client threads submit single-image requests through
// InferenceServer::Submit while the dynamic batcher merges compatible requests and an
// executor pool runs them on disjoint core partitions. Every served result is compared
// against a serial Executor::Run of the same input — the demo prints whether all
// results were bit-identical, then the serving stats (throughput, batching, p50/p99).
//
// Observability (opt-in via environment):
//   NEOCPU_DEMO_PROFILE  per-node profile sample rate (0=off); prints the hottest ops
//   NEOCPU_DEMO_DOT      write the annotated DOT graph (heat overlay when profiling)
//   NEOCPU_DEMO_TRACE    write a chrome://tracing JSON of the run
//   NEOCPU_DEMO_METRICS  dump the metrics registry ("json" | "prometheus")
#include <cstdio>
#include <fstream>
#include <thread>

#include "src/neocpu.h"

int main(int argc, char** argv) {
  using namespace neocpu;
  const std::string model_name = argc > 1 ? argv[1] : "tiny-cnn";
  const int num_clients = argc > 2 ? std::atoi(argv[2]) : 4;
  const int per_client = argc > 3 ? std::atoi(argv[3]) : 8;
  const char* profile_env = std::getenv("NEOCPU_DEMO_PROFILE");
  const std::uint32_t profile_rate =
      profile_env != nullptr ? static_cast<std::uint32_t>(std::atoi(profile_env)) : 0;
  const char* trace_env = std::getenv("NEOCPU_DEMO_TRACE");
  TraceRecorder tracer;

  std::printf("Compiling %s...\n", model_name.c_str());
  CompiledModel compiled = Compile(BuildModel(model_name));

  // Pre-compute every request input and its serial reference output.
  std::vector<std::vector<Tensor>> inputs(static_cast<std::size_t>(num_clients));
  std::vector<std::vector<Tensor>> expected(static_cast<std::size_t>(num_clients));
  for (int c = 0; c < num_clients; ++c) {
    for (int r = 0; r < per_client; ++r) {
      Rng rng(static_cast<std::uint64_t>(1 + c * 1000 + r));
      Tensor input =
          Tensor::Random(ModelInputDims(model_name), rng, 0.0f, 1.0f, Layout::NCHW());
      expected[static_cast<std::size_t>(c)].push_back(compiled.Run(input));
      inputs[static_cast<std::size_t>(c)].push_back(std::move(input));
    }
  }

  ServerOptions options;
  options.batching.max_batch_size = 8;
  options.batching.max_delay_ms = 2.0;
  options.profile_sample_rate = profile_rate;
  options.tracer = trace_env != nullptr ? &tracer : nullptr;
  InferenceServer server(options);
  ModelEntry* entry = server.RegisterModel(model_name, std::move(compiled));
  std::printf("Serving with %d executor partition(s) on %d core(s); %d clients x %d "
              "requests...\n",
              server.num_executors(), HostCpuInfo().physical_cores, num_clients,
              per_client);

  std::vector<std::vector<std::future<Tensor>>> futures(
      static_cast<std::size_t>(num_clients));
  std::vector<std::thread> clients;
  Timer timer;
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < per_client; ++r) {
        futures[static_cast<std::size_t>(c)].push_back(server.Submit(
            model_name, inputs[static_cast<std::size_t>(c)][static_cast<std::size_t>(r)]));
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }

  int mismatches = 0;
  for (int c = 0; c < num_clients; ++c) {
    for (int r = 0; r < per_client; ++r) {
      Tensor got = futures[static_cast<std::size_t>(c)][static_cast<std::size_t>(r)].get();
      if (Tensor::MaxAbsDiff(
              got, expected[static_cast<std::size_t>(c)][static_cast<std::size_t>(r)]) !=
          0.0) {
        ++mismatches;
      }
    }
  }
  const double seconds = timer.Seconds();
  const int total = num_clients * per_client;

  const ServerStats stats = server.Stats();
  std::printf("\n%d requests in %.1f ms  (%.1f req/s)\n", total, seconds * 1e3,
              static_cast<double>(total) / seconds);
  std::printf("%s\n", stats.ToString().c_str());
  std::printf("bit-identical to serial Executor::Run: %s\n",
              mismatches == 0 ? "YES (all requests)" : "NO");

  if (profile_rate > 0) {
    const NodeProfileSnapshot profile = entry->ProfileSnapshot();
    std::printf("\nper-node profile (sample rate %u):\n%s", profile_rate,
                profile.ToString().c_str());
    const char* dot_env = std::getenv("NEOCPU_DEMO_DOT");
    if (dot_env != nullptr) {
      std::ofstream dot(dot_env);
      dot << CompiledModelToDot(*entry->VariantFor(1)->model, &profile);
      std::printf("wrote %s\n", dot_env);
    }
  }
  if (trace_env != nullptr && tracer.WriteFile(trace_env)) {
    std::printf("wrote %s (%zu trace events)\n", trace_env, tracer.size());
  }
  const char* metrics_env = std::getenv("NEOCPU_DEMO_METRICS");
  if (metrics_env != nullptr) {
    const MetricsFormat format = std::string(metrics_env) == "prometheus"
                                     ? MetricsFormat::kPrometheus
                                     : MetricsFormat::kJson;
    std::printf("\nmetrics registry:\n%s", MetricsExport(format).c_str());
  }
  return mismatches == 0 ? 0 : 1;
}
