// Image-classification latency study: the scenario of the paper's introduction — a
// service that must squeeze the best batch-1 latency out of a CPU host.
//
//   ./image_classification [model] [image_size]
//
// Compiles the same network under every optimization level (the Table 3 ablation rows
// plus the framework baselines) and reports latency side by side, demonstrating how to
// pick configurations through the public API.
#include <cstdio>

#include "src/neocpu.h"

int main(int argc, char** argv) {
  using namespace neocpu;
  const std::string model_name = argc > 1 ? argv[1] : "resnet18";
  const std::int64_t image = argc > 2 ? std::atoll(argv[2]) : 128;

  Graph model = model_name.rfind("resnet", 0) == 0
                    ? BuildResNet(std::atoi(model_name.c_str() + 6), 1, image)
                    : BuildModel(model_name);
  Rng rng(7);
  Tensor input = Tensor::Random(model.node(0).out_dims, rng, 0.0f, 1.0f, Layout::NCHW());

  struct Config {
    const char* label;
    CompileOptions opts;
    bool custom_pool;
  };
  const Target host = Target::Host();
  const Config configs[] = {
      {"tf-like (im2col NCHW, OMP-style pool)", FrameworkDefaultOptions(host), false},
      {"mxnet-like (per-op NCHWc, OMP-style pool)", FrameworkLibOptions(host), false},
      {"neocpu fixed-x (transform elimination)", AblationTransformElim(host), true},
      {"neocpu global search (full pipeline)", NeoCpuOptions(host), true},
  };

  NeoThreadPool neo_pool;
  OmpStylePool omp_pool;
  auto cache = std::make_shared<TuningCache>();

  std::printf("%-44s | %10s | %6s | %s\n", "configuration", "latency", "conv", "transforms");
  double reference_ms = 0.0;
  for (const Config& config : configs) {
    CompileOptions opts = config.opts;
    opts.tuning_cache = cache;
    CompiledModel compiled = Compile(model, opts);
    ThreadEngine* engine = config.custom_pool ? static_cast<ThreadEngine*>(&neo_pool)
                                              : static_cast<ThreadEngine*>(&omp_pool);
    const RunStats stats = MeasureMillis([&] { compiled.Run(input, engine); }, 3, 1);
    if (reference_ms == 0.0) {
      reference_ms = stats.mean;
    }
    std::printf("%-44s | %7.2f ms | %5.2fx | %d\n", config.label, stats.mean,
                reference_ms / stats.mean, compiled.stats().num_layout_transforms);
  }
  std::printf("\nThe 'speedup vs first row' column is this host's version of Table 3.\n");
  return 0;
}
