// Tuning explorer: walk the §3.3.1 schedule space for one convolution workload, compare
// the analytic cost model against real measurements, and demonstrate the persistent
// tuning database ("maintain a database ... to prevent repeating search").
//
//   ./tuning_explorer [db_path]
#include <cstdio>

#include "src/neocpu.h"

int main(int argc, char** argv) {
  using namespace neocpu;
  const std::string db_path = argc > 1 ? argv[1] : "/tmp/neocpu_tuning.db";

  // A ResNet-50 stage-2 workload.
  Conv2dParams workload{1, 128, 28, 28, 128, 3, 3, 1, 1, 1, 1};
  const Target target = Target::Host();
  std::printf("Workload: %s on target '%s'\n", workload.ToString().c_str(),
              target.name.c_str());

  TuningDatabase db;
  if (db.LoadFromFile(db_path)) {
    std::printf("Loaded tuning database from %s (%zu entries)\n", db_path.c_str(), db.size());
  }

  Timer timer;
  LocalSearchResult measured =
      LocalSearchConv(workload, target, CostMode::kMeasured, /*quick_space=*/true, nullptr,
                      &db);
  std::printf("Measured local search over %zu schedules took %.2fs\n", measured.ranked.size(),
              timer.Seconds());

  LocalSearchResult analytic =
      LocalSearchConv(workload, target, CostMode::kAnalytic, /*quick_space=*/true, nullptr,
                      &db);

  std::printf("\nTop-8 schedules by measurement (analytic model estimate alongside):\n");
  std::printf("%-40s | %12s | %12s\n", "schedule", "measured", "analytic");
  for (std::size_t i = 0; i < std::min<std::size_t>(8, measured.ranked.size()); ++i) {
    const ScheduleCost& sc = measured.ranked[i];
    double analytic_ms = 0.0;
    for (const ScheduleCost& a : analytic.ranked) {
      if (a.schedule == sc.schedule) {
        analytic_ms = a.ms;
        break;
      }
    }
    std::printf("%-40s | %9.3f ms | %9.3f ms\n", sc.schedule.ToString().c_str(), sc.ms,
                analytic_ms);
  }

  std::printf("\nWorst measured schedule: %s at %.3f ms (%.1fx slower than best)\n",
              measured.ranked.back().schedule.ToString().c_str(), measured.ranked.back().ms,
              measured.ranked.back().ms / measured.best().ms);

  if (db.SaveToFile(db_path)) {
    std::printf("Saved tuning database to %s (%zu entries); rerun to hit the cache.\n",
                db_path.c_str(), db.size());
  }
  return 0;
}
