// Tuning explorer: walk the §3.3.1 schedule space for one convolution workload, compare
// the analytic cost model against real measurements, and demonstrate the persistent
// tuning cache ("maintain a database ... to prevent repeating search") — including how
// the batch size is part of the workload identity, so batch-1 and batch-8 tunings
// coexist as distinct cache entries.
//
//   ./tuning_explorer [cache_path] [batch]
#include <cstdio>

#include "src/neocpu.h"

int main(int argc, char** argv) {
  using namespace neocpu;
  const std::string cache_path = argc > 1 ? argv[1] : "/tmp/neocpu_tuning.cache";
  const std::int64_t batch = argc > 2 ? std::atoll(argv[2]) : 1;
  if (batch < 1) {
    std::fprintf(stderr, "usage: %s [cache_path] [batch >= 1] (got batch '%s')\n", argv[0],
                 argv[2]);
    return 1;
  }

  // A ResNet-50 stage-2 workload at the requested batch size.
  Conv2dParams workload{batch, 128, 28, 28, 128, 3, 3, 1, 1, 1, 1};
  const Target target = Target::Host();
  std::printf("Workload: %s on target '%s'\n", workload.ToString().c_str(),
              target.name.c_str());
  std::printf("WorkloadKey: %s\n",
              WorkloadKey::Of(workload, target, CostMode::kMeasured, true).ToString().c_str());

  TuningCache cache;
  if (cache.LoadFromFile(cache_path)) {
    std::printf("Loaded tuning cache from %s (%zu entries)\n", cache_path.c_str(),
                cache.size());
  }

  Timer timer;
  LocalSearchResult measured =
      LocalSearchConv(workload, target, CostMode::kMeasured, /*quick_space=*/true, nullptr,
                      &cache);
  std::printf("Measured local search over %zu schedules took %.2fs\n", measured.ranked.size(),
              timer.Seconds());

  LocalSearchResult analytic =
      LocalSearchConv(workload, target, CostMode::kAnalytic, /*quick_space=*/true, nullptr,
                      &cache);

  std::printf("\nTop-8 schedules by measurement (analytic model estimate alongside):\n");
  std::printf("%-40s | %12s | %12s\n", "schedule", "measured", "analytic");
  for (std::size_t i = 0; i < std::min<std::size_t>(8, measured.ranked.size()); ++i) {
    const ScheduleCost& sc = measured.ranked[i];
    double analytic_ms = 0.0;
    for (const ScheduleCost& a : analytic.ranked) {
      if (a.schedule == sc.schedule) {
        analytic_ms = a.ms;
        break;
      }
    }
    std::printf("%-40s | %9.3f ms | %9.3f ms\n", sc.schedule.ToString().c_str(), sc.ms,
                analytic_ms);
  }

  std::printf("\nWorst measured schedule: %s at %.3f ms (%.1fx slower than best)\n",
              measured.ranked.back().schedule.ToString().c_str(), measured.ranked.back().ms,
              measured.ranked.back().ms / measured.best().ms);

  const TuningCacheStats stats = cache.Stats();
  std::printf("\nCache traffic this run: %llu hits, %llu misses; entries now:\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses));
  for (const WorkloadKey& key : cache.Keys()) {
    std::printf("  %s\n", key.ToString().c_str());
  }
  if (cache.SaveToFile(cache_path)) {
    std::printf("Saved tuning cache to %s (%zu entries); rerun (or change the batch "
                "argument) to see cache hits.\n",
                cache_path.c_str(), cache.size());
  }
  return 0;
}
