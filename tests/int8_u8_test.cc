// The u8-activation half of the int8 path: kernel-level exactness with zero points
// and virtual padding, cross-ISA bitwise parity via the dispatch override, VNNI
// weight packing and the zero-point bias fold, u8 graph-pass structure (integer
// pooling, sum fusion, forced-dtype selection), zoo accuracy under forced u8, the
// quantized dense path, and the v6 module / u8 cache round trips.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/core/compiler.h"
#include "src/core/memory_plan.h"
#include "src/core/presets.h"
#include "src/core/serialization.h"
#include "src/graph/builder.h"
#include "src/kernels/conv_nchwc_int8.h"
#include "src/kernels/dense.h"
#include "src/kernels/quantize.h"
#include "src/models/model_zoo.h"
#include "src/tensor/layout_transform.h"
#include "src/tuning/schedule_space.h"
#include "src/tuning/tuning_cache.h"

namespace neocpu {
namespace {

Tensor InputFor(const Graph& model, std::uint64_t seed = 17) {
  Rng rng(seed);
  for (int i = 0; i < model.num_nodes(); ++i) {
    if (model.node(i).type == OpType::kInput) {
      return Tensor::Random(model.node(i).out_dims, rng, -1.0f, 1.0f, Layout::NCHW());
    }
  }
  ADD_FAILURE() << "no input node";
  return {};
}

CompileOptions QuantizedOptions(DType forced = DType::kF32) {
  CompileOptions opts = NeoCpuOptions(Target::SkylakeAvx512());
  opts.quantize = true;
  opts.force_quantize = true;
  opts.force_quant_dtype = forced;
  return opts;
}

// A u8-activation conv problem with horizontal+vertical padding, a nontrivial zero
// point, bias and ReLU — everything the zero-point fold must get right on borders.
struct U8Case {
  Conv2dParams p;
  ConvSchedule s;
  Tensor in, w_blocked, w_packed, bias, mult;
  std::int32_t in_zero = 131;  // deliberately != 128 to catch hardcoded midpoints
};

U8Case MakeU8Case() {
  U8Case c;
  c.p = Conv2dParams{2, 8, 9, 11, 16, 3, 3, 1, 1, 1, 1};
  c.s = ConvSchedule{8, 16, 8, true};
  c.s.dtype = DType::kU8;
  Rng rng(11);
  c.in = Tensor::Empty({c.p.batch, c.p.in_c / c.s.ic_bn, c.p.in_h, c.p.in_w, c.s.ic_bn},
                       Layout::NCHWc(c.s.ic_bn), DType::kU8);
  for (std::int64_t i = 0; i < c.in.NumElements(); ++i) {
    c.in.data_as<std::uint8_t>()[i] = static_cast<std::uint8_t>(rng.NextBounded(256));
  }
  c.w_blocked = Tensor::Empty({c.p.out_c / c.s.oc_bn, c.p.in_c / c.s.ic_bn, c.p.kernel_h,
                               c.p.kernel_w, c.s.ic_bn, c.s.oc_bn},
                              Layout::OIHWio(c.s.ic_bn, c.s.oc_bn), DType::kS8);
  for (std::int64_t i = 0; i < c.w_blocked.NumElements(); ++i) {
    c.w_blocked.data_as<std::int8_t>()[i] =
        static_cast<std::int8_t>(rng.NextBounded(255)) - 127;
  }
  c.bias = Tensor::Empty({c.p.out_c}, Layout::Flat(), DType::kS32);
  for (std::int64_t o = 0; o < c.p.out_c; ++o) {
    c.bias.data_as<std::int32_t>()[o] =
        static_cast<std::int32_t>(rng.NextBounded(2000)) - 1000;
  }
  // The lowering order AlterConvLayout uses: fold the zero-point correction against
  // the standard tile order, THEN pack for VNNI.
  FoldZeroPointIntoBias(c.w_blocked, c.in_zero, &c.bias);
  c.w_packed = PackWeightsVnni(c.w_blocked);
  c.mult = Tensor::Empty({c.p.out_c}, Layout::Flat());
  for (std::int64_t o = 0; o < c.p.out_c; ++o) {
    c.mult.data()[o] = 1e-4f * (1.0f + static_cast<float>(o));
  }
  return c;
}

// ------------------------------------------------------------------ kernel level

// The u8 kernel against a scalar reference computing sum((u8 - zp) * w) over ALL
// kernel taps (padded positions read a virtual `zp` byte, contributing zero): with
// the zero-point correction pre-folded into the bias the two must agree BIT FOR BIT.
TEST(ConvNCHWcU8, MatchesScalarReferenceWithZeroPointAndPadding) {
  U8Case c = MakeU8Case();
  ConvEpilogue epi;
  epi.bias = true;
  epi.relu = true;
  Tensor out = Tensor::Empty(
      {c.p.batch, c.p.out_c / c.s.oc_bn, c.p.OutH(), c.p.OutW(), c.s.oc_bn},
      Layout::NCHWc(c.s.oc_bn), DType::kF32);
  ConvNCHWcS8(c.p, c.s, c.in, c.w_packed, &c.bias, c.mult, epi, /*requant=*/false,
              &out, nullptr, /*out_zero=*/0, c.in_zero);

  const std::int64_t icb = c.s.ic_bn, ocb = c.s.oc_bn;
  for (std::int64_t n = 0; n < c.p.batch; ++n) {
    for (std::int64_t oc = 0; oc < c.p.out_c; ++oc) {
      for (std::int64_t oh = 0; oh < c.p.OutH(); ++oh) {
        for (std::int64_t ow = 0; ow < c.p.OutW(); ++ow) {
          std::int64_t acc = 0;
          for (std::int64_t ic = 0; ic < c.p.in_c; ++ic) {
            for (std::int64_t kh = 0; kh < c.p.kernel_h; ++kh) {
              for (std::int64_t kw = 0; kw < c.p.kernel_w; ++kw) {
                const std::int64_t ih = oh * c.p.stride_h - c.p.pad_h + kh;
                const std::int64_t iw = ow * c.p.stride_w - c.p.pad_w + kw;
                const bool pad = ih < 0 || ih >= c.p.in_h || iw < 0 || iw >= c.p.in_w;
                const std::int64_t in_at =
                    ((((n * (c.p.in_c / icb) + ic / icb) * c.p.in_h + ih) * c.p.in_w +
                      iw) *
                     icb) +
                    ic % icb;
                const std::int32_t val =
                    pad ? c.in_zero
                        : static_cast<std::int32_t>(c.in.data_as<std::uint8_t>()[in_at]);
                const std::int64_t w_at =
                    ((((((oc / ocb) * (c.p.in_c / icb) + ic / icb) * c.p.kernel_h + kh) *
                           c.p.kernel_w +
                       kw) *
                          icb +
                      ic % icb) *
                     ocb) +
                    oc % ocb;
                acc += (val - c.in_zero) *
                       static_cast<std::int32_t>(c.w_blocked.data_as<std::int8_t>()[w_at]);
              }
            }
          }
          // The kernel computes sum(val*w) + folded_bias where folded = raw -
          // zp*sum(w); the reference computed sum((val-zp)*w) = sum(val*w) -
          // zp*sum(w), so adding folded + zp*sum(w) (= the raw bias) makes the two
          // sides identical.
          acc += c.bias.data_as<std::int32_t>()[oc] +
                 [&] {
                   std::int64_t wsum = 0;
                   for (std::int64_t ic = 0; ic < c.p.in_c; ++ic) {
                     for (std::int64_t kh = 0; kh < c.p.kernel_h; ++kh) {
                       for (std::int64_t kw = 0; kw < c.p.kernel_w; ++kw) {
                         const std::int64_t w_at =
                             ((((((oc / ocb) * (c.p.in_c / icb) + ic / icb) *
                                     c.p.kernel_h +
                                 kh) *
                                    c.p.kernel_w +
                                kw) *
                                   icb +
                               ic % icb) *
                              ocb) +
                             oc % ocb;
                         wsum += c.w_blocked.data_as<std::int8_t>()[w_at];
                       }
                     }
                   }
                   return static_cast<std::int64_t>(c.in_zero) * wsum;
                 }();
          if (acc < 0) {
            acc = 0;
          }
          const float expect = static_cast<float>(acc) * c.mult.data()[oc];
          const std::int64_t out_at =
              ((((n * (c.p.out_c / ocb) + oc / ocb) * c.p.OutH() + oh) * c.p.OutW() +
                ow) *
               ocb) +
              oc % ocb;
          ASSERT_EQ(out.data()[out_at], expect)
              << "n=" << n << " oc=" << oc << " oh=" << oh << " ow=" << ow;
        }
      }
    }
  }
}

// Every compiled-in ISA tier the host supports must produce byte-identical
// requantized output — the cross-ISA parity contract that makes tuning results and
// serialized modules portable across deployment hosts.
TEST(ConvNCHWcU8, CrossIsaBitwiseParity) {
  U8Case c = MakeU8Case();
  ConvEpilogue epi;
  epi.bias = true;
  epi.relu = true;
  auto run = [&]() {
    Tensor out = Tensor::Empty(
        {c.p.batch, c.p.out_c / c.s.oc_bn, c.p.OutH(), c.p.OutW(), c.s.oc_bn},
        Layout::NCHWc(c.s.oc_bn), DType::kU8);
    ConvNCHWcS8(c.p, c.s, c.in, c.w_packed, &c.bias, c.mult, epi, /*requant=*/true,
                &out, nullptr, /*out_zero=*/128, c.in_zero);
    return out;
  };
  const Tensor reference = run();  // auto dispatch
  int tiers_run = 0;
  for (const char* tier : {"baseline", "avx2", "avx512", "avx512vnni"}) {
    if (!SetConvNCHWcS8IsaOverride(tier)) {
      continue;  // tier not compiled in or CPU lacks it
    }
    EXPECT_STREQ(ConvNCHWcS8IsaName(), tier);
    const Tensor out = run();
    EXPECT_EQ(std::memcmp(out.data_as<std::uint8_t>(),
                          reference.data_as<std::uint8_t>(),
                          static_cast<std::size_t>(out.NumElements())),
              0)
        << "tier " << tier << " diverged from auto dispatch";
    ++tiers_run;
  }
  SetConvNCHWcS8IsaOverride(nullptr);
  EXPECT_GE(tiers_run, 1) << "at least the baseline tier must always be available";
}

// Same parity contract for the s8 path (no zero point, unpacked weights).
TEST(ConvNCHWcS8, CrossIsaBitwiseParity) {
  const Conv2dParams p{1, 16, 13, 15, 32, 3, 3, 1, 1, 1, 1};
  ConvSchedule s{16, 32, 8, true};
  s.dtype = DType::kS8;
  Tensor in = Tensor::Empty({1, 1, 13, 15, 16}, Layout::NCHWc(16), DType::kS8);
  Tensor w = Tensor::Empty({1, 1, 3, 3, 16, 32}, Layout::OIHWio(16, 32), DType::kS8);
  for (std::int64_t i = 0; i < in.NumElements(); ++i) {
    in.data_as<std::int8_t>()[i] = static_cast<std::int8_t>((i * 7) % 200 - 100);
  }
  for (std::int64_t i = 0; i < w.NumElements(); ++i) {
    w.data_as<std::int8_t>()[i] = static_cast<std::int8_t>((i * 13) % 180 - 90);
  }
  Tensor mult = Tensor::Full({32}, 3e-4f);
  auto run = [&]() {
    Tensor out = Tensor::Empty({1, 1, 13, 15, 32}, Layout::NCHWc(32), DType::kS8);
    ConvNCHWcS8(p, s, in, w, nullptr, mult, {}, /*requant=*/true, &out);
    return out;
  };
  const Tensor reference = run();
  for (const char* tier : {"baseline", "avx2", "avx512", "avx512vnni"}) {
    if (!SetConvNCHWcS8IsaOverride(tier)) {
      continue;
    }
    const Tensor out = run();
    EXPECT_EQ(std::memcmp(out.data_as<std::int8_t>(), reference.data_as<std::int8_t>(),
                          static_cast<std::size_t>(out.NumElements())),
              0)
        << "tier " << tier;
  }
  SetConvNCHWcS8IsaOverride(nullptr);
}

// PackWeightsVnni is a pure intra-tile permutation: element (o, i, kh, kw, ici, ocj)
// moves to packed offset [ici/4][ocj][4] within the same tile.
TEST(PackWeightsVnni, ReordersInnerTileOnly) {
  const std::int64_t icb = 8, ocb = 4;
  Tensor w = Tensor::Empty({2, 3, 1, 1, icb, ocb}, Layout::OIHWio(icb, ocb), DType::kS8);
  for (std::int64_t i = 0; i < w.NumElements(); ++i) {
    w.data_as<std::int8_t>()[i] = static_cast<std::int8_t>(i % 127);
  }
  Tensor packed = PackWeightsVnni(w);
  ASSERT_EQ(packed.NumElements(), w.NumElements());
  const std::int64_t tile = icb * ocb;
  for (std::int64_t t = 0; t < w.NumElements() / tile; ++t) {
    for (std::int64_t ici = 0; ici < icb; ++ici) {
      for (std::int64_t ocj = 0; ocj < ocb; ++ocj) {
        const std::int8_t orig = w.data_as<std::int8_t>()[t * tile + ici * ocb + ocj];
        const std::int64_t packed_at =
            t * tile + (ici / 4) * ocb * 4 + ocj * 4 + (ici % 4);
        ASSERT_EQ(packed.data_as<std::int8_t>()[packed_at], orig)
            << "tile " << t << " ici " << ici << " ocj " << ocj;
      }
    }
  }
}

// The s8 GEMM epilogue against a scalar integer reference.
TEST(DenseS8, MatchesScalarIntegerReference) {
  const std::int64_t batch = 3, in_f = 17, units = 5;
  Tensor in = Tensor::Empty({batch, in_f}, Layout::Flat(), DType::kS8);
  Tensor w = Tensor::Empty({units, in_f}, Layout::Flat(), DType::kS8);
  Tensor bias = Tensor::Empty({units}, Layout::Flat(), DType::kS32);
  Tensor mult = Tensor::Empty({units}, Layout::Flat());
  for (std::int64_t i = 0; i < in.NumElements(); ++i) {
    in.data_as<std::int8_t>()[i] = static_cast<std::int8_t>((i * 5) % 250 - 125);
  }
  for (std::int64_t i = 0; i < w.NumElements(); ++i) {
    w.data_as<std::int8_t>()[i] = static_cast<std::int8_t>((i * 11) % 240 - 120);
  }
  for (std::int64_t u = 0; u < units; ++u) {
    bias.data_as<std::int32_t>()[u] = static_cast<std::int32_t>(u * 37 - 70);
    mult.data()[u] = 2e-4f * (1.0f + static_cast<float>(u));
  }
  const Tensor out = DenseS8(in, w, &bias, mult, /*relu=*/true);
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t u = 0; u < units; ++u) {
      std::int64_t acc = bias.data_as<std::int32_t>()[u];
      for (std::int64_t f = 0; f < in_f; ++f) {
        acc += static_cast<std::int32_t>(in.data_as<std::int8_t>()[b * in_f + f]) *
               static_cast<std::int32_t>(w.data_as<std::int8_t>()[u * in_f + f]);
      }
      if (acc < 0) {
        acc = 0;
      }
      ASSERT_EQ(out.data()[b * units + u], static_cast<float>(acc) * mult.data()[u])
          << "b=" << b << " u=" << u;
    }
  }
}

// u8 feature maps relayout exactly like s8 ones (same byte-permutation path).
TEST(LayoutTransformU8, BlockedRoundTrip) {
  Tensor x = Tensor::Empty({2, 8, 5, 5}, Layout::NCHW(), DType::kU8);
  for (std::int64_t i = 0; i < x.NumElements(); ++i) {
    x.data_as<std::uint8_t>()[i] = static_cast<std::uint8_t>(i % 251);
  }
  Tensor blocked = NCHWToNCHWc(x, 4);
  EXPECT_EQ(blocked.dtype(), DType::kU8);
  Tensor back = NCHWcToNCHW(NCHWcToNCHWc(blocked, 8));
  ASSERT_EQ(back.NumElements(), x.NumElements());
  for (std::int64_t i = 0; i < x.NumElements(); ++i) {
    ASSERT_EQ(back.data_as<std::uint8_t>()[i], x.data_as<std::uint8_t>()[i]) << i;
  }
}

// ------------------------------------------------------------------ schedule space

// u8 admission: only quad-divisible ic blocks are legal (4 input channels per
// dot-product group), so a 3-channel stem has no u8 space at all.
TEST(U8ScheduleSpace, RequiresQuadDivisibleIcBlocks) {
  const Target t = Target::SkylakeAvx512();
  const Conv2dParams stem{1, 3, 32, 32, 64, 7, 7, 2, 2, 3, 3};
  EXPECT_TRUE(EnumerateS8Schedules(stem, t, false, DType::kU8).empty());
  EXPECT_FALSE(EnumerateS8Schedules(stem, t, false, DType::kS8).empty());

  const Conv2dParams wide{1, 64, 14, 14, 64, 3, 3, 1, 1, 1, 1};
  const auto u8_space = EnumerateS8Schedules(wide, t, false, DType::kU8);
  ASSERT_FALSE(u8_space.empty());
  for (const ConvSchedule& s : u8_space) {
    EXPECT_EQ(s.dtype, DType::kU8);
    EXPECT_EQ(s.ic_bn % 4, 0) << s.ic_bn;
  }
}

// ------------------------------------------------------------------ pass structure

// conv -> maxpool -> conv stays one integer region: the pool runs natively on the
// quantized dtype, so there is exactly one entry quantize and no dequantize at all
// (the exit fuses into the last conv).
TEST(QuantizeGraphU8, PoolingStaysInsideIntegerRegion) {
  GraphBuilder b("pool_chain");
  int x = b.Input({1, 32, 16, 16});
  x = b.Conv(x, 32, 3, 1, 1, /*bias=*/true, "c1");
  x = b.Relu(x);
  x = b.MaxPool(x, 2, 2, 0);
  x = b.Conv(x, 32, 3, 1, 1, /*bias=*/true, "c2");
  Graph model = b.Finish({x});

  CompiledModel compiled = Compile(model, QuantizedOptions());
  EXPECT_EQ(compiled.stats().num_quantized_convs, 2);
  const Graph& g = compiled.graph();
  EXPECT_EQ(g.CountNodes(OpType::kQuantize), 1);
  EXPECT_EQ(g.CountNodes(OpType::kDequantize), 0);
  bool integer_pool = false;
  for (int id = 0; id < g.num_nodes(); ++id) {
    if (g.node(id).type == OpType::kMaxPool && g.node(id).out_dtype != DType::kF32) {
      integer_pool = true;
    }
  }
  EXPECT_TRUE(integer_pool) << "maxpool should execute on the quantized dtype";

  Tensor input = InputFor(model);
  const Tensor expected = Executor(&model).Run(input);
  EXPECT_LE(Tensor::MaxAbsDiff(compiled.Run(input), expected), 0.05);
}

// Forcing u8 rewires every conv with a legal quad blocking to u8 activations with a
// nonzero zero point; the requantized outputs feeding them are u8 too.
TEST(QuantizeGraphU8, ForcedU8SelectsU8Schedules) {
  GraphBuilder b("u8_chain");
  int x = b.Input({1, 32, 16, 16});
  x = b.Conv(x, 32, 3, 1, 1, /*bias=*/true, "c1");
  x = b.Relu(x);
  x = b.Conv(x, 32, 3, 1, 1, /*bias=*/true, "c2");
  x = b.Relu(x);
  x = b.Conv(x, 32, 1, 1, 0, /*bias=*/true, "c3");
  Graph model = b.Finish({x});

  CompiledModel compiled = Compile(model, QuantizedOptions(DType::kU8));
  EXPECT_EQ(compiled.stats().num_quantized_convs, 3);
  int u8_convs = 0;
  for (int id = 0; id < compiled.graph().num_nodes(); ++id) {
    const Node& node = compiled.graph().node(id);
    if (node.IsConv() && node.attrs.qconv.enabled) {
      EXPECT_EQ(node.attrs.qconv.adtype, DType::kU8) << node.name;
      EXPECT_EQ(node.attrs.schedule.dtype, DType::kU8) << node.name;
      EXPECT_EQ(node.attrs.schedule.ic_bn % 4, 0) << node.name;
      if (node.attrs.qconv.requant) {
        EXPECT_EQ(node.attrs.qconv.out_dtype, DType::kU8) << node.name;
      }
      ++u8_convs;
    }
  }
  EXPECT_EQ(u8_convs, 3);

  Tensor input = InputFor(model);
  const Tensor expected = Executor(&model).Run(input);
  EXPECT_LE(Tensor::MaxAbsDiff(compiled.Run(input), expected), 0.05);
}

// resnet18's quantized boundary structure: the integer maxpool and the sum-fused
// residual conv keep the stem's integer region intact, so the whole net needs 8
// quantizes and ZERO standalone dequantizes — strictly fewer boundary nodes than the
// 9 the pre-u8 pass emitted (where the residual read forced a dequantize).
TEST(QuantizeGraphU8, ResNet18BoundaryStructure) {
  Graph model = BuildResNet(18, 1, 64);
  CompiledModel compiled = Compile(model, QuantizedOptions());
  EXPECT_EQ(compiled.stats().num_quantized_convs, 12);
  const Graph& g = compiled.graph();
  const int q = g.CountNodes(OpType::kQuantize);
  const int dq = g.CountNodes(OpType::kDequantize);
  EXPECT_EQ(q, 8);
  EXPECT_EQ(dq, 0);
  EXPECT_LT(q + dq, 9);  // the acceptance bar: strictly fewer than before sum fusion

  // The fused-residual conv reads the integer tensor directly, carrying its rescale
  // params; the stem maxpool runs integer.
  int fused_residual = 0, integer_pools = 0;
  for (int id = 0; id < g.num_nodes(); ++id) {
    const Node& node = g.node(id);
    if (node.IsConv() && node.attrs.epilogue.residual_add &&
        !node.attrs.qin_scales.empty()) {
      ASSERT_FALSE(node.inputs.empty());
      EXPECT_NE(g.node(node.inputs.back()).out_dtype, DType::kF32) << node.name;
      EXPECT_EQ(node.attrs.qin_scales.size(), node.attrs.qin_zeros.size());
      ++fused_residual;
    }
    if ((node.type == OpType::kMaxPool || node.type == OpType::kAvgPool) &&
        node.out_dtype != DType::kF32) {
      ++integer_pools;
    }
  }
  EXPECT_GE(fused_residual, 1);
  EXPECT_GE(integer_pools, 1);

  Tensor input = InputFor(model);
  const Tensor expected = Executor(&model).Run(input);
  EXPECT_LE(Tensor::MaxAbsDiff(compiled.Run(input), expected), 0.05);
}

// ------------------------------------------------------------------ zoo accuracy

struct ZooCase {
  std::string label;
  Graph (*build)();
};

Graph TinyCnn() { return BuildTinyCnn(1, 32); }
Graph TinyResNet18() { return BuildResNet(18, 1, 64); }
Graph TinyInception() { return BuildInceptionV3(1, 139); }

class ZooForcedU8 : public ::testing::TestWithParam<ZooCase> {};

// Forced-u8 compiles: accuracy within the documented tolerance, at least one u8
// conv actually selected (the stem may stay s8 — 3 channels have no quad blocking),
// planned-vs-allocating bitwise equality and the zero-heap-alloc steady state.
// Inception exercises the integer concat (per-input rescale) and 4-D pooling paths.
TEST_P(ZooForcedU8, TracksFp32WithinToleranceAndStaysZeroAlloc) {
  Graph model = GetParam().build();
  Tensor input = InputFor(model);
  const Tensor expected = Executor(&model).Run(input);

  CompiledModel compiled = Compile(model, QuantizedOptions(DType::kU8));
  EXPECT_GT(compiled.stats().num_quantized_convs, 0) << GetParam().label;
  int u8_convs = 0;
  for (int id = 0; id < compiled.graph().num_nodes(); ++id) {
    const Node& node = compiled.graph().node(id);
    u8_convs += node.IsConv() && node.attrs.qconv.enabled &&
                node.attrs.qconv.adtype == DType::kU8;
  }
  EXPECT_GT(u8_convs, 0) << GetParam().label;

  const Tensor got = compiled.Run(input);
  EXPECT_LE(Tensor::MaxAbsDiff(got, expected), 0.05) << GetParam().label;

  ASSERT_NE(compiled.plan(), nullptr) << GetParam().label;
  std::vector<std::string> errors;
  EXPECT_TRUE(ValidatePlan(compiled.graph(), *compiled.plan(), &errors))
      << GetParam().label << ": " << (errors.empty() ? "" : errors.front());
  const Executor allocating(&compiled.graph());
  EXPECT_EQ(Tensor::MaxAbsDiff(allocating.Run(input), got), 0.0) << GetParam().label;

  const Executor planned(&compiled.graph(), nullptr, compiled.plan());
  planned.Run(input);
  const std::uint64_t before = TensorHeapAllocCount();
  planned.Run(input);
  EXPECT_EQ(TensorHeapAllocCount() - before,
            static_cast<std::uint64_t>(compiled.plan()->heap_nodes))
      << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(Zoo, ZooForcedU8,
                         ::testing::Values(ZooCase{"tiny_cnn", &TinyCnn},
                                           ZooCase{"resnet18", &TinyResNet18},
                                           ZooCase{"inception", &TinyInception}),
                         [](const ::testing::TestParamInfo<ZooCase>& info) {
                           return info.param.label;
                         });

// ------------------------------------------------------------------ dense path

// quantize_dense routes constant-weight dense layers through the s8 GEMM epilogue.
TEST(QuantizeDense, DenseLayersQuantizeWithinTolerance) {
  Graph model = BuildTinyCnn(1, 32);
  Tensor input = InputFor(model);
  const Tensor expected = Executor(&model).Run(input);

  CompileOptions opts = QuantizedOptions();
  opts.quantize_dense = true;
  CompiledModel compiled = Compile(model, opts);
  int quantized_dense = 0;
  for (int id = 0; id < compiled.graph().num_nodes(); ++id) {
    const Node& node = compiled.graph().node(id);
    quantized_dense += node.type == OpType::kDense && node.attrs.qconv.enabled;
  }
  EXPECT_GT(quantized_dense, 0);
  EXPECT_LE(Tensor::MaxAbsDiff(compiled.Run(input), expected), 0.05);
}

// ------------------------------------------------------------------ persistence

// Module format v6: a forced-u8 model (activation dtypes, zero points, per-input
// rescale params, the new config fields) round-trips bit-exactly.
TEST(U8Serialization, ModuleV6RoundTripsU8State) {
  Graph model = BuildResNet(18, 1, 64);
  Tensor input = InputFor(model);
  CompileOptions opts = QuantizedOptions(DType::kU8);
  opts.calibration_policy = CalibrationPolicy::kPercentile;
  CompiledModel compiled = Compile(model, opts);
  ASSERT_GT(compiled.stats().num_quantized_convs, 0);
  const Tensor expected = compiled.Run(input);

  const std::string path = ::testing::TempDir() + "/u8_module.neoc";
  ASSERT_TRUE(SaveModule(compiled, path));
  CompiledModel loaded;
  ASSERT_TRUE(LoadModule(path, &loaded));
  EXPECT_EQ(loaded.config().force_quant_dtype, DType::kU8);
  EXPECT_EQ(loaded.config().calibration_policy, CalibrationPolicy::kPercentile);
  EXPECT_EQ(loaded.config().quantize_dense, false);
  ASSERT_EQ(loaded.graph().num_nodes(), compiled.graph().num_nodes());
  for (int id = 0; id < compiled.graph().num_nodes(); ++id) {
    const Node& a = compiled.graph().node(id);
    const Node& b = loaded.graph().node(id);
    EXPECT_EQ(a.attrs.qconv.adtype, b.attrs.qconv.adtype) << a.name;
    EXPECT_EQ(a.attrs.qconv.in_zero, b.attrs.qconv.in_zero) << a.name;
    EXPECT_EQ(a.attrs.qconv.out_dtype, b.attrs.qconv.out_dtype) << a.name;
    EXPECT_EQ(a.attrs.qconv.out_zero, b.attrs.qconv.out_zero) << a.name;
    EXPECT_EQ(a.attrs.qin_scales, b.attrs.qin_scales) << a.name;
    EXPECT_EQ(a.attrs.qin_zeros, b.attrs.qin_zeros) << a.name;
    EXPECT_EQ(a.out_dtype, b.out_dtype) << a.name;
  }
  EXPECT_EQ(Tensor::MaxAbsDiff(loaded.Run(input), expected), 0.0);
}

// u8 tuning-cache entries persist under u8-tagged workload keys, next to the s8 and
// fp32 entries of the same shape.
TEST(U8Serialization, TuningCacheRoundTripsU8Entries) {
  const Conv2dParams conv{1, 64, 14, 14, 64, 3, 3, 1, 1, 1, 1};
  const Target target = Target::SkylakeAvx512();
  TuningCache cache;
  LocalSearchConv(conv, target, CostMode::kAnalytic, true, nullptr, &cache);
  LocalSearchConv(conv, target, CostMode::kAnalytic, true, nullptr, &cache, nullptr,
                  DType::kS8);
  LocalSearchConv(conv, target, CostMode::kAnalytic, true, nullptr, &cache, nullptr,
                  DType::kU8);
  EXPECT_EQ(cache.size(), 3u);

  const std::string path = ::testing::TempDir() + "/u8_cache.v4";
  ASSERT_TRUE(cache.SaveToFile(path));
  TuningCache reloaded;
  ASSERT_TRUE(reloaded.LoadFromFile(path));
  EXPECT_EQ(reloaded.size(), 3u);

  const WorkloadKey u8_key =
      WorkloadKey::Of(conv, target, CostMode::kAnalytic, true, DType::kU8);
  auto u8_entry = reloaded.Find(u8_key);
  ASSERT_NE(u8_entry, nullptr);
  EXPECT_EQ(u8_entry->best().schedule.dtype, DType::kU8);
  EXPECT_EQ(u8_entry->best().schedule.ic_bn % 4, 0);

  WorkloadKey parsed;
  ASSERT_TRUE(WorkloadKey::Parse(u8_key.ToString(), &parsed));
  EXPECT_EQ(parsed, u8_key);
}

}  // namespace
}  // namespace neocpu
