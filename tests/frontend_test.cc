// Wire-protocol conformance tests for the socket front end (src/serve/frontend/).
//
// Two layers: pure codec tests that drive the frame encoders/decoders on crafted byte
// strings (no sockets), and loopback tests that run a real FrontendServer over
// 127.0.0.1 — happy-path round trips, every typed error the server can emit, the
// HTTP surface, many concurrent clients, and clean shutdown with requests in flight.
// The invariant throughout: hostile or ill-timed input produces a typed error or a
// closed connection, never a hang and never a crash.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "src/base/rng.h"
#include "src/models/model_zoo.h"
#include "src/neocpu.h"
#include "src/serve/frontend/frontend_server.h"
#include "src/serve/frontend/wire_client.h"
#include "src/serve/frontend/wire_protocol.h"

namespace neocpu {
namespace {

Tensor SampleInput(std::uint64_t seed, std::vector<std::int64_t> dims = {1, 3, 32, 32}) {
  Rng rng(seed);
  return Tensor::Random(std::move(dims), rng, 0.0f, 1.0f, Layout::NCHW());
}

std::vector<std::uint8_t> Body(const std::vector<std::uint8_t>& frame) {
  return std::vector<std::uint8_t>(frame.begin() + 4, frame.end());
}

// ---------------------------------------------------------------------------
// Codec layer (no sockets).
// ---------------------------------------------------------------------------

TEST(WireProtocol, RequestFrameRoundTrips) {
  WireRequest request;
  request.model = "tiny";
  request.lane = RequestLane::kThroughput;
  request.input = SampleInput(7, {1, 3, 8, 8});
  const std::vector<std::uint8_t> frame = EncodeRequestFrame(request);
  // Length prefix covers exactly the body.
  std::uint32_t body_len = 0;
  std::memcpy(&body_len, frame.data(), 4);
  ASSERT_EQ(static_cast<std::size_t>(body_len), frame.size() - 4);

  const std::vector<std::uint8_t> body = Body(frame);
  WireRequest decoded;
  const WireError err = DecodeRequestBody(body.data(), body.size(), &decoded);
  ASSERT_TRUE(err.ok()) << err.message;
  EXPECT_EQ(decoded.model, "tiny");
  EXPECT_EQ(decoded.lane, RequestLane::kThroughput);
  EXPECT_EQ(decoded.input.dims(), request.input.dims());
  EXPECT_EQ(Tensor::MaxAbsDiff(decoded.input, request.input), 0.0);
}

TEST(WireProtocol, ResultFrameRoundTrips) {
  Tensor result = SampleInput(9, {1, 10});
  const std::vector<std::uint8_t> body = Body(EncodeResultFrame(result));
  WireResponse decoded;
  const WireError err = DecodeResponseBody(body.data(), body.size(), &decoded);
  ASSERT_TRUE(err.ok()) << err.message;
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.result.dims(), result.dims());
  EXPECT_EQ(Tensor::MaxAbsDiff(decoded.result, result), 0.0);
}

TEST(WireProtocol, ErrorFrameRoundTrips) {
  WireError error;
  error.code = WireErrorCode::kOverloaded;
  error.retry_after_ms = 25;
  error.message = "shed: admission queue full";
  const std::vector<std::uint8_t> body = Body(EncodeErrorFrame(error));
  WireResponse decoded;
  const WireError err = DecodeResponseBody(body.data(), body.size(), &decoded);
  ASSERT_TRUE(err.ok()) << err.message;
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error.code, WireErrorCode::kOverloaded);
  EXPECT_EQ(decoded.error.retry_after_ms, 25u);
  EXPECT_EQ(decoded.error.message, "shed: admission queue full");
}

TEST(WireProtocol, DecodeRejectsBadMagic) {
  WireRequest request{"m", RequestLane::kLatency, SampleInput(1, {1, 4})};
  std::vector<std::uint8_t> body = Body(EncodeRequestFrame(request));
  body[0] ^= 0xFF;
  WireRequest decoded;
  EXPECT_EQ(DecodeRequestBody(body.data(), body.size(), &decoded).code,
            WireErrorCode::kBadMagic);
}

TEST(WireProtocol, DecodeRejectsBadVersion) {
  WireRequest request{"m", RequestLane::kLatency, SampleInput(1, {1, 4})};
  std::vector<std::uint8_t> body = Body(EncodeRequestFrame(request));
  body[4] = 99;
  WireRequest decoded;
  EXPECT_EQ(DecodeRequestBody(body.data(), body.size(), &decoded).code,
            WireErrorCode::kBadVersion);
}

TEST(WireProtocol, DecodeRejectsTruncationAtEveryLength) {
  WireRequest request{"tiny", RequestLane::kLatency, SampleInput(2, {1, 3, 4, 4})};
  const std::vector<std::uint8_t> body = Body(EncodeRequestFrame(request));
  // Every proper prefix must come back as a typed error — never OOB, never success.
  for (std::size_t len = 0; len < body.size(); ++len) {
    WireRequest decoded;
    const WireError err = DecodeRequestBody(body.data(), len, &decoded);
    EXPECT_FALSE(err.ok()) << "prefix of " << len << " bytes decoded successfully";
  }
}

TEST(WireProtocol, DecodeRejectsPayloadDimsMismatch) {
  WireRequest request{"tiny", RequestLane::kLatency, SampleInput(3, {1, 8})};
  std::vector<std::uint8_t> body = Body(EncodeRequestFrame(request));
  body.push_back(0);  // one trailing byte the dims don't account for
  WireRequest decoded;
  EXPECT_EQ(DecodeRequestBody(body.data(), body.size(), &decoded).code,
            WireErrorCode::kMalformedFrame);
}

TEST(WireProtocol, DecodeRejectsHugeDimsWithoutOverflow) {
  // ndim=2 with dims that would overflow a naive i64 product. Bytes: preamble + lane +
  // dtype + model_len=1 + ndim=2 + two huge dims + 'm'.
  std::vector<std::uint8_t> body;
  auto u32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) body.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  auto u64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) body.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  u32(kWireMagic);
  body.push_back(kWireVersion);
  body.push_back(static_cast<std::uint8_t>(WireType::kInferRequest));
  body.push_back(0);  // lane
  body.push_back(0);  // dtype f32
  body.push_back(1);  // model_len lo
  body.push_back(0);  // model_len hi
  body.push_back(2);  // ndim lo
  body.push_back(0);  // ndim hi
  u64(0xFFFFFFFFFFFFull);
  u64(0xFFFFFFFFFFFFull);
  body.push_back('m');
  WireRequest decoded;
  EXPECT_EQ(DecodeRequestBody(body.data(), body.size(), &decoded).code,
            WireErrorCode::kMalformedFrame);
}

TEST(WireProtocol, RecoverabilityClassification) {
  EXPECT_TRUE(WireErrorIsRecoverable(WireErrorCode::kUnknownModel));
  EXPECT_TRUE(WireErrorIsRecoverable(WireErrorCode::kShapeMismatch));
  EXPECT_TRUE(WireErrorIsRecoverable(WireErrorCode::kOverloaded));
  EXPECT_FALSE(WireErrorIsRecoverable(WireErrorCode::kBadMagic));
  EXPECT_FALSE(WireErrorIsRecoverable(WireErrorCode::kBadVersion));
  EXPECT_FALSE(WireErrorIsRecoverable(WireErrorCode::kMalformedFrame));
  EXPECT_FALSE(WireErrorIsRecoverable(WireErrorCode::kFrameTooLarge));
  EXPECT_FALSE(WireErrorIsRecoverable(WireErrorCode::kShuttingDown));
}

// ---------------------------------------------------------------------------
// Loopback server.
// ---------------------------------------------------------------------------

class FrontendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CompiledModel compiled = Compile(BuildTinyCnn());
    reference_ = std::make_unique<CompiledModel>(Compile(BuildTinyCnn()));
    ServerOptions options;
    options.num_executors = 1;
    options.bind_threads = false;
    options.background_retune = false;
    options.batching.max_batch_size = 4;
    options.batching.max_delay_ms = 1.0;
    server_ = std::make_unique<InferenceServer>(options);
    server_->RegisterModel("tiny", std::move(compiled));
    frontend_ = std::make_unique<FrontendServer>(server_.get());
    ASSERT_TRUE(frontend_->Start()) << frontend_->last_error();
    ASSERT_GT(frontend_->port(), 0);
  }

  WireClient Connected() {
    WireClient client;
    EXPECT_TRUE(client.Connect("127.0.0.1", frontend_->port()))
        << client.last_error();
    return client;
  }

  std::string HttpGet(const std::string& path) {
    WireClient client = Connected();
    const std::string request = "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n";
    EXPECT_TRUE(client.SendRaw(reinterpret_cast<const std::uint8_t*>(request.data()),
                               request.size()));
    std::string response;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(client.fd(), buf, sizeof(buf), 0);
      if (n <= 0) {
        break;
      }
      response.append(buf, static_cast<std::size_t>(n));
    }
    return response;
  }

  std::unique_ptr<CompiledModel> reference_;
  std::unique_ptr<InferenceServer> server_;
  std::unique_ptr<FrontendServer> frontend_;
};

TEST_F(FrontendTest, LoopbackRoundTripMatchesDirectRun) {
  WireClient client = Connected();
  Tensor input = SampleInput(42);
  const Tensor expected = reference_->Run(input);
  WireResponse response = client.Call({"tiny", RequestLane::kLatency, std::move(input)});
  ASSERT_TRUE(response.ok()) << response.error.message;
  EXPECT_EQ(response.result.dims(), expected.dims());
  EXPECT_EQ(Tensor::MaxAbsDiff(response.result, expected), 0.0);
}

TEST_F(FrontendTest, ManyFramesOnOneConnection) {
  WireClient client = Connected();
  for (std::uint64_t i = 0; i < 4; ++i) {
    Tensor input = SampleInput(100 + i);
    const Tensor expected = reference_->Run(input);
    WireResponse response =
        client.Call({"tiny", RequestLane::kLatency, std::move(input)});
    ASSERT_TRUE(response.ok()) << response.error.message;
    EXPECT_EQ(Tensor::MaxAbsDiff(response.result, expected), 0.0);
  }
}

TEST_F(FrontendTest, BadMagicGetsTypedErrorAndCloses) {
  WireClient client = Connected();
  std::vector<std::uint8_t> frame =
      EncodeRequestFrame({"tiny", RequestLane::kLatency, SampleInput(1)});
  frame[4] ^= 0xFF;  // corrupt the magic inside the body
  ASSERT_TRUE(client.SendRaw(frame));
  WireResponse response = client.ReceiveResponse();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.error.code, WireErrorCode::kBadMagic);
  // The stream is poisoned: the server must close; the next read sees EOF.
  WireResponse after = client.ReceiveResponse();
  EXPECT_EQ(after.error.code, WireErrorCode::kInternal);
}

TEST_F(FrontendTest, BadVersionGetsTypedError) {
  WireClient client = Connected();
  std::vector<std::uint8_t> frame =
      EncodeRequestFrame({"tiny", RequestLane::kLatency, SampleInput(1)});
  frame[8] = 99;  // version byte (after 4-byte prefix + 4-byte magic)
  ASSERT_TRUE(client.SendRaw(frame));
  WireResponse response = client.ReceiveResponse();
  EXPECT_EQ(response.error.code, WireErrorCode::kBadVersion);
}

TEST_F(FrontendTest, OversizedFrameRejectedWithoutReadingBody) {
  WireClient client = Connected();
  // Prefix claims a body far over the cap; no body follows. The server must answer
  // from the prefix alone.
  const std::uint64_t huge = kWireMaxFrameBytes + 1;
  std::uint8_t prefix[4];
  for (int i = 0; i < 4; ++i) {
    prefix[i] = static_cast<std::uint8_t>(huge >> (8 * i));
  }
  ASSERT_TRUE(client.SendRaw(prefix, sizeof(prefix)));
  WireResponse response = client.ReceiveResponse();
  EXPECT_EQ(response.error.code, WireErrorCode::kFrameTooLarge);
}

TEST_F(FrontendTest, ZeroLengthFrameRejected) {
  WireClient client = Connected();
  const std::uint8_t prefix[4] = {0, 0, 0, 0};
  ASSERT_TRUE(client.SendRaw(prefix, sizeof(prefix)));
  WireResponse response = client.ReceiveResponse();
  EXPECT_EQ(response.error.code, WireErrorCode::kMalformedFrame);
}

TEST_F(FrontendTest, TruncatedFrameThenDisconnectIsHarmless) {
  {
    WireClient client = Connected();
    // Prefix promises 1000 bytes; send 10 and vanish.
    const std::uint8_t prefix[4] = {0xE8, 0x03, 0, 0};
    ASSERT_TRUE(client.SendRaw(prefix, sizeof(prefix)));
    const std::uint8_t junk[10] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    ASSERT_TRUE(client.SendRaw(junk, sizeof(junk)));
  }
  // The server must survive and keep serving fresh connections.
  WireClient client = Connected();
  WireResponse response = client.Call({"tiny", RequestLane::kLatency, SampleInput(5)});
  EXPECT_TRUE(response.ok()) << response.error.message;
}

TEST_F(FrontendTest, UnknownModelIsRecoverable) {
  WireClient client = Connected();
  WireResponse bad = client.Call({"no-such-model", RequestLane::kLatency, SampleInput(1)});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error.code, WireErrorCode::kUnknownModel);
  // Same connection keeps working — the error was semantic, not framing.
  WireResponse good = client.Call({"tiny", RequestLane::kLatency, SampleInput(2)});
  EXPECT_TRUE(good.ok()) << good.error.message;
}

TEST_F(FrontendTest, ShapeMismatchIsRecoverable) {
  WireClient client = Connected();
  WireResponse bad =
      client.Call({"tiny", RequestLane::kLatency, SampleInput(1, {1, 3, 16, 16})});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error.code, WireErrorCode::kShapeMismatch);
  WireResponse good = client.Call({"tiny", RequestLane::kLatency, SampleInput(2)});
  EXPECT_TRUE(good.ok()) << good.error.message;
}

TEST_F(FrontendTest, HttpSurface) {
  EXPECT_NE(HttpGet("/healthz").find("200 OK"), std::string::npos);
  const std::string metrics = HttpGet("/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("neocpu_serve_queue_depth"), std::string::npos);
  const std::string stats = HttpGet("/stats");
  EXPECT_NE(stats.find("200 OK"), std::string::npos);
  EXPECT_NE(stats.find("\"requests_shed\""), std::string::npos);
  EXPECT_NE(HttpGet("/nope").find("404"), std::string::npos);
}

TEST_F(FrontendTest, ConcurrentClients) {
  constexpr int kClients = 4;
  constexpr int kCallsPerClient = 3;
  std::vector<Tensor> inputs;
  std::vector<Tensor> expected;
  for (int i = 0; i < kClients * kCallsPerClient; ++i) {
    inputs.push_back(SampleInput(static_cast<std::uint64_t>(500 + i)));
    expected.push_back(reference_->Run(inputs.back()));
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      WireClient client;
      if (!client.Connect("127.0.0.1", frontend_->port())) {
        failures.fetch_add(1);
        return;
      }
      for (int r = 0; r < kCallsPerClient; ++r) {
        const int i = c * kCallsPerClient + r;
        WireResponse response = client.Call(
            {"tiny", RequestLane::kLatency,
             inputs[static_cast<std::size_t>(i)].Clone()});
        if (!response.ok() ||
            Tensor::MaxAbsDiff(response.result,
                               expected[static_cast<std::size_t>(i)]) != 0.0) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  const FrontendStats stats = frontend_->Stats();
  EXPECT_GE(stats.connections_accepted, static_cast<std::uint64_t>(kClients));
  EXPECT_GE(stats.frames_ok, static_cast<std::uint64_t>(kClients * kCallsPerClient));
}

TEST_F(FrontendTest, CleanShutdownWithClientsInFlight) {
  // Clients hammer the server while Stop() lands. Every call must resolve — a valid
  // result, a typed error, or a closed connection — and nothing may hang or crash.
  std::atomic<bool> go{true};
  std::atomic<int> completed{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&, c] {
      WireClient client;
      if (!client.Connect("127.0.0.1", frontend_->port())) {
        return;
      }
      std::uint64_t seed = static_cast<std::uint64_t>(c) * 1000;
      while (go.load(std::memory_order_relaxed)) {
        WireResponse response =
            client.Call({"tiny", RequestLane::kLatency, SampleInput(seed++)});
        completed.fetch_add(1, std::memory_order_relaxed);
        if (!response.ok() && !WireErrorIsRecoverable(response.error.code)) {
          return;  // shutdown reached this connection
        }
      }
    });
  }
  // Let traffic build, then stop the front end under the clients' feet.
  while (completed.load(std::memory_order_relaxed) < 3) {
    std::this_thread::yield();
  }
  frontend_->Stop();
  go.store(false, std::memory_order_relaxed);
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_FALSE(frontend_->running());
  // The inference server behind the front end is still healthy.
  server_->Submit("tiny", SampleInput(9999)).get();
}

TEST_F(FrontendTest, StopIsIdempotentAndRestartable) {
  frontend_->Stop();
  frontend_->Stop();
  EXPECT_TRUE(frontend_->Start()) << frontend_->last_error();
  WireClient client = Connected();
  WireResponse response = client.Call({"tiny", RequestLane::kLatency, SampleInput(1)});
  EXPECT_TRUE(response.ok()) << response.error.message;
}

}  // namespace
}  // namespace neocpu
