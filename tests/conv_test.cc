// Convolution kernel correctness: the NCHW[x]c template (Algorithm 1) and the im2col
// path are validated against the naive NCHW reference across a broad parameterized sweep
// of workloads, schedules and fused epilogues.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "src/base/rng.h"
#include "src/kernels/conv_im2col.h"
#include "src/kernels/conv_nchwc.h"
#include "src/kernels/conv_ref.h"
#include "src/runtime/thread_pool.h"
#include "src/tensor/layout_transform.h"

namespace neocpu {
namespace {

// fp32 summation-order tolerance: abs + rel (numpy.allclose semantics).
constexpr double kRtol = 1e-3;
constexpr double kAtol = 2e-3;

struct ConvCase {
  Conv2dParams p;
  ConvSchedule s;
  ConvEpilogue e;
  std::string label;
};

Tensor RunReference(const ConvCase& c, const Tensor& in, const Tensor& w, const Tensor& bias,
                    const Tensor& res) {
  return ConvRefNCHW(c.p, in, w, c.e.bias ? &bias : nullptr, c.e.residual_add ? &res : nullptr,
                     c.e);
}

class ConvNCHWcVsRef : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvNCHWcVsRef, MatchesReference) {
  const ConvCase& c = GetParam();
  Rng rng(11);
  Tensor in = Tensor::Random({c.p.batch, c.p.in_c, c.p.in_h, c.p.in_w}, rng, -1, 1,
                             Layout::NCHW());
  Tensor w = Tensor::Random({c.p.out_c, c.p.in_c, c.p.kernel_h, c.p.kernel_w}, rng, -0.5f,
                            0.5f, Layout::OIHW());
  Tensor bias = Tensor::Random({c.p.out_c}, rng, -0.2f, 0.2f);
  Tensor res = Tensor::Random({c.p.batch, c.p.out_c, c.p.OutH(), c.p.OutW()}, rng, -1, 1,
                              Layout::NCHW());

  Tensor expected = RunReference(c, in, w, bias, res);
  Tensor got = ConvNCHWcWithTransforms(c.p, c.s, in, w, c.e.bias ? &bias : nullptr,
                                       c.e.residual_add ? &res : nullptr, c.e);
  EXPECT_LE(Tensor::AllCloseViolation(got, expected, kRtol, kAtol), 0.0)
      << c.label << " " << c.s.ToString();
}

std::vector<ConvCase> MakeWorkloadSweep() {
  std::vector<ConvCase> cases;
  auto add = [&](Conv2dParams p, ConvSchedule s, ConvEpilogue e, std::string label) {
    cases.push_back(ConvCase{p, s, e, std::move(label)});
  };
  // Square kernels, strides, padding.
  add({1, 16, 12, 12, 32, 3, 3, 1, 1, 1, 1}, {16, 16, 8, true}, {}, "3x3_s1_p1");
  add({1, 16, 12, 12, 32, 3, 3, 2, 2, 1, 1}, {16, 16, 4, true}, {}, "3x3_s2_p1");
  add({1, 16, 13, 13, 32, 3, 3, 2, 2, 1, 1}, {16, 16, 4, false}, {}, "3x3_s2_odd");
  add({1, 8, 9, 9, 16, 5, 5, 1, 1, 2, 2}, {8, 16, 2, true}, {}, "5x5_s1_p2");
  add({1, 8, 17, 17, 8, 7, 7, 2, 2, 3, 3}, {8, 8, 4, true}, {}, "7x7_s2_p3");
  add({1, 32, 8, 8, 64, 1, 1, 1, 1, 0, 0}, {16, 16, 8, false}, {}, "1x1");
  add({1, 32, 9, 9, 64, 1, 1, 2, 2, 0, 0}, {16, 16, 4, true}, {}, "1x1_s2");
  // Rectangular kernels (Inception's factorized convolutions).
  add({1, 16, 9, 9, 16, 1, 7, 1, 1, 0, 3}, {16, 16, 2, true}, {}, "1x7");
  add({1, 16, 9, 9, 16, 7, 1, 1, 1, 3, 0}, {16, 16, 8, false}, {}, "7x1");
  // First-layer style: 3 input channels.
  add({1, 3, 20, 20, 16, 7, 7, 2, 2, 3, 3}, {3, 16, 4, true}, {}, "stem_ic3");
  // Non-power-of-two and non-fast blocks (SSD heads: 84 = 4*21 channels).
  add({1, 16, 10, 10, 84, 3, 3, 1, 1, 1, 1}, {16, 21, 8, true}, {}, "oc84_block21");
  add({1, 16, 10, 10, 84, 3, 3, 1, 1, 1, 1}, {16, 4, 8, true}, {}, "oc84_block4");
  add({1, 24, 8, 8, 24, 3, 3, 1, 1, 1, 1}, {12, 12, 4, true}, {}, "block12_generic");
  // Width smaller than reg_n (tail-only path).
  add({1, 16, 5, 5, 16, 3, 3, 1, 1, 1, 1}, {16, 16, 16, true}, {}, "ow_smaller_than_regn");
  // Batch > 1.
  add({2, 16, 8, 8, 16, 3, 3, 1, 1, 1, 1}, {16, 16, 8, true}, {}, "batch2");
  // Epilogues.
  add({1, 16, 10, 10, 32, 3, 3, 1, 1, 1, 1}, {16, 16, 8, true}, {true, false, false},
      "bias");
  add({1, 16, 10, 10, 32, 3, 3, 1, 1, 1, 1}, {16, 16, 8, true}, {false, false, true},
      "relu");
  add({1, 16, 10, 10, 32, 3, 3, 1, 1, 1, 1}, {16, 16, 8, true}, {true, true, true},
      "bias_residual_relu");
  add({1, 16, 10, 10, 32, 1, 1, 1, 1, 0, 0}, {16, 16, 4, false}, {false, true, false},
      "residual_only");
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Workloads, ConvNCHWcVsRef, ::testing::ValuesIn(MakeWorkloadSweep()),
                         [](const ::testing::TestParamInfo<ConvCase>& info) {
                           return info.param.label;
                         });

// Schedule sweep on one fixed workload: every (ic_bn, oc_bn, reg_n, unroll) combination
// from the paper's candidate lists must produce identical math.
class ConvScheduleSweep
    : public ::testing::TestWithParam<
          std::tuple<std::int64_t, std::int64_t, std::int64_t, bool>> {};

TEST_P(ConvScheduleSweep, AllSchedulesAgree) {
  const auto [ic_bn, oc_bn, reg_n, unroll] = GetParam();
  Conv2dParams p{1, 32, 14, 14, 32, 3, 3, 1, 1, 1, 1};
  ConvSchedule s{ic_bn, oc_bn, reg_n, unroll};
  Rng rng(21);
  Tensor in = Tensor::Random({1, p.in_c, p.in_h, p.in_w}, rng, -1, 1, Layout::NCHW());
  Tensor w = Tensor::Random({p.out_c, p.in_c, 3, 3}, rng, -0.5f, 0.5f, Layout::OIHW());
  Tensor expected = ConvRefNCHW(p, in, w);
  Tensor got = ConvNCHWcWithTransforms(p, s, in, w, nullptr, nullptr, {});
  EXPECT_LE(Tensor::AllCloseViolation(got, expected, kRtol, kAtol), 0.0) << s.ToString();
}

INSTANTIATE_TEST_SUITE_P(PaperCandidates, ConvScheduleSweep,
                         ::testing::Combine(::testing::Values<std::int64_t>(8, 16, 32),
                                            ::testing::Values<std::int64_t>(8, 16, 32),
                                            ::testing::Values<std::int64_t>(2, 4, 8, 16, 32),
                                            ::testing::Bool()));

TEST(ConvNCHWc, ThreadedMatchesSerial) {
  Conv2dParams p{1, 32, 28, 28, 64, 3, 3, 1, 1, 1, 1};
  ConvSchedule s{16, 16, 8, true};
  Rng rng(31);
  Tensor in = Tensor::Random({1, 2, 28, 28, 16}, rng, -1, 1, Layout::NCHWc(16));
  Tensor w = Tensor::Random({4, 2, 3, 3, 16, 16}, rng, -0.5f, 0.5f, Layout::OIHWio(16, 16));
  Tensor out_serial = Tensor::Empty({1, 4, 28, 28, 16}, Layout::NCHWc(16));
  Tensor out_threaded = Tensor::Empty({1, 4, 28, 28, 16}, Layout::NCHWc(16));
  ConvNCHWc(p, s, in, w, nullptr, nullptr, {}, &out_serial, nullptr);
  NeoThreadPool pool(3, /*bind_threads=*/false);
  ConvNCHWc(p, s, in, w, nullptr, nullptr, {}, &out_threaded, &pool);
  // The partition only splits independent output rows: results must be bit-identical.
  EXPECT_EQ(Tensor::MaxAbsDiff(out_serial, out_threaded), 0.0);
}

TEST(ConvNCHWc, RejectsMismatchedBlocks) {
  Conv2dParams p{1, 16, 8, 8, 16, 3, 3, 1, 1, 1, 1};
  ConvSchedule s{16, 16, 8, true};
  Rng rng(41);
  Tensor in = Tensor::Random({1, 2, 8, 8, 8}, rng, -1, 1, Layout::NCHWc(8));  // wrong block
  Tensor w = Tensor::Random({1, 1, 3, 3, 16, 16}, rng, -1, 1, Layout::OIHWio(16, 16));
  Tensor out = Tensor::Empty({1, 1, 8, 8, 16}, Layout::NCHWc(16));
  EXPECT_DEATH(ConvNCHWc(p, s, in, w, nullptr, nullptr, {}, &out), "Check failed");
}

class ConvIm2colVsRef : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvIm2colVsRef, MatchesReference) {
  const ConvCase& c = GetParam();
  Rng rng(51);
  Tensor in = Tensor::Random({c.p.batch, c.p.in_c, c.p.in_h, c.p.in_w}, rng, -1, 1,
                             Layout::NCHW());
  Tensor w = Tensor::Random({c.p.out_c, c.p.in_c, c.p.kernel_h, c.p.kernel_w}, rng, -0.5f,
                            0.5f, Layout::OIHW());
  Tensor bias = Tensor::Random({c.p.out_c}, rng, -0.2f, 0.2f);
  Tensor res = Tensor::Random({c.p.batch, c.p.out_c, c.p.OutH(), c.p.OutW()}, rng, -1, 1,
                              Layout::NCHW());
  Tensor expected = RunReference(c, in, w, bias, res);
  Tensor got = ConvIm2col(c.p, in, w, c.e.bias ? &bias : nullptr,
                          c.e.residual_add ? &res : nullptr, c.e);
  EXPECT_LE(Tensor::AllCloseViolation(got, expected, kRtol, kAtol), 0.0) << c.label;
}

std::vector<ConvCase> MakeIm2colSweep() {
  std::vector<ConvCase> cases;
  cases.push_back({{1, 8, 10, 10, 16, 3, 3, 1, 1, 1, 1}, {}, {}, "im2col_3x3"});
  cases.push_back({{1, 8, 11, 11, 16, 3, 3, 2, 2, 1, 1}, {}, {}, "im2col_3x3_s2"});
  cases.push_back({{2, 3, 14, 14, 8, 7, 7, 2, 2, 3, 3}, {}, {}, "im2col_stem"});
  cases.push_back({{1, 8, 10, 10, 16, 1, 1, 1, 1, 0, 0}, {}, {}, "im2col_1x1"});
  cases.push_back(
      {{1, 8, 10, 10, 16, 3, 3, 1, 1, 1, 1}, {}, {true, true, true}, "im2col_epilogue"});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Workloads, ConvIm2colVsRef, ::testing::ValuesIn(MakeIm2colSweep()),
                         [](const ::testing::TestParamInfo<ConvCase>& info) {
                           return info.param.label;
                         });

TEST(ConvRef, KnownTinyExample) {
  // 1x1x3x3 input, 1x1x2x2 kernel of ones, stride 1, no pad: each output = sum of the
  // 2x2 window.
  Conv2dParams p{1, 1, 3, 3, 1, 2, 2, 1, 1, 0, 0};
  Tensor in = Tensor::Empty({1, 1, 3, 3}, Layout::NCHW());
  for (int i = 0; i < 9; ++i) {
    in.data()[i] = static_cast<float>(i + 1);
  }
  Tensor w = Tensor::Full({1, 1, 2, 2}, 1.0f, Layout::OIHW());
  Tensor out = ConvRefNCHW(p, in, w);
  ASSERT_EQ(out.NumElements(), 4);
  EXPECT_FLOAT_EQ(out.data()[0], 1 + 2 + 4 + 5);
  EXPECT_FLOAT_EQ(out.data()[1], 2 + 3 + 5 + 6);
  EXPECT_FLOAT_EQ(out.data()[2], 4 + 5 + 7 + 8);
  EXPECT_FLOAT_EQ(out.data()[3], 5 + 6 + 8 + 9);
}

TEST(Conv2dParams, OutputDimsAndMacs) {
  Conv2dParams p{1, 64, 56, 56, 64, 3, 3, 1, 1, 1, 1};
  EXPECT_EQ(p.OutH(), 56);
  EXPECT_EQ(p.OutW(), 56);
  EXPECT_DOUBLE_EQ(p.Macs(), 1.0 * 64 * 56 * 56 * 64 * 9);
  Conv2dParams strided{1, 3, 224, 224, 64, 7, 7, 2, 2, 3, 3};
  EXPECT_EQ(strided.OutH(), 112);
  EXPECT_EQ(strided.OutW(), 112);
  EXPECT_FALSE(p.CacheKey().empty());
  EXPECT_NE(p.CacheKey(), strided.CacheKey());
}

}  // namespace
}  // namespace neocpu
