// Standalone-module serialization round trips: the deployment artifact (paper §1's
// "standalone module with minimal size") must reload and produce identical outputs
// without recompiling or retuning.
#include <gtest/gtest.h>

#include <cstdio>

#include "src/base/rng.h"
#include "src/core/presets.h"
#include "src/core/serialization.h"
#include "src/graph/builder.h"
#include "src/models/model_zoo.h"

namespace neocpu {
namespace {

std::string TempPath(const char* name) { return ::testing::TempDir() + "/" + name; }

Graph SmallNet() {
  GraphBuilder b("small");
  int x = b.Input({1, 8, 16, 16});
  x = b.ConvBnRelu(x, 16, 3, 1, 1, "c1");
  int shortcut = x;
  x = b.Conv(x, 16, 3, 1, 1, false, "c2");
  x = b.BatchNorm(x);
  x = b.Add(x, shortcut);
  x = b.Relu(x);
  x = b.MaxPool(x, 2, 2, 0);
  x = b.GlobalAvgPool(x);
  x = b.Flatten(x);
  x = b.Dense(x, 10);
  x = b.Softmax(x);
  return b.Finish({x});
}

TEST(Serialization, RoundTripPreservesOutputsExactly) {
  Graph model = SmallNet();
  CompiledModel compiled = Compile(model, NeoCpuOptions(Target::Host()));
  Rng rng(1);
  Tensor input = Tensor::Random({1, 8, 16, 16}, rng, -1, 1, Layout::NCHW());
  Tensor expected = compiled.Run(input);

  const std::string path = TempPath("module_roundtrip.neoc");
  ASSERT_TRUE(SaveModule(compiled, path));
  CompiledModel loaded;
  ASSERT_TRUE(LoadModule(path, &loaded));
  Tensor got = loaded.Run(input);
  // Same kernels, same schedules, same weights: bit-identical.
  EXPECT_EQ(Tensor::MaxAbsDiff(expected, got), 0.0);
  std::remove(path.c_str());
}

TEST(Serialization, PreservesGraphStructureAndSchedules) {
  Graph model = SmallNet();
  CompiledModel compiled = Compile(model, NeoCpuOptions(Target::Host()));
  const std::string path = TempPath("module_structure.neoc");
  ASSERT_TRUE(SaveModule(compiled, path));
  CompiledModel loaded;
  ASSERT_TRUE(LoadModule(path, &loaded));

  const Graph& a = compiled.graph();
  const Graph& b = loaded.graph();
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.outputs(), b.outputs());
  for (int i = 0; i < a.num_nodes(); ++i) {
    EXPECT_EQ(a.node(i).type, b.node(i).type) << i;
    EXPECT_EQ(a.node(i).inputs, b.node(i).inputs) << i;
    EXPECT_EQ(a.node(i).out_dims, b.node(i).out_dims) << i;
    EXPECT_EQ(a.node(i).out_layout, b.node(i).out_layout) << i;
    if (a.node(i).IsConv()) {
      EXPECT_EQ(a.node(i).attrs.schedule, b.node(i).attrs.schedule) << i;
      EXPECT_EQ(a.node(i).attrs.kernel, b.node(i).attrs.kernel) << i;
      EXPECT_EQ(a.node(i).attrs.epilogue, b.node(i).attrs.epilogue) << i;
    }
    if (a.node(i).type == OpType::kConstant) {
      EXPECT_EQ(Tensor::MaxAbsDiff(a.node(i).payload, b.node(i).payload), 0.0) << i;
    }
  }
  EXPECT_EQ(loaded.stats().num_convs, compiled.stats().num_convs);
  std::remove(path.c_str());
}

TEST(Serialization, RoundTripsZooModelWithDetectionHead) {
  // SSD exercises every serialized attribute family: multibox params, reshape dims,
  // flatten variants, and flat concats.
  Graph model = BuildSsdResNet50(1, 128, 5);
  CompiledModel compiled = Compile(model, NeoCpuOptions(Target::Host()));
  Rng rng(2);
  Tensor input = Tensor::Random({1, 3, 128, 128}, rng, 0.f, 1.f, Layout::NCHW());
  Tensor expected = compiled.Run(input);
  const std::string path = TempPath("module_ssd.neoc");
  ASSERT_TRUE(SaveModule(compiled, path));
  CompiledModel loaded;
  ASSERT_TRUE(LoadModule(path, &loaded));
  EXPECT_EQ(Tensor::MaxAbsDiff(expected, loaded.Run(input)), 0.0);
  std::remove(path.c_str());
}

TEST(Serialization, MissingFileReturnsFalse) {
  CompiledModel model;
  EXPECT_FALSE(LoadModule("/nonexistent/path/module.neoc", &model));
}

TEST(Serialization, RejectsForeignFiles) {
  const std::string path = TempPath("not_a_module.neoc");
  {
    FILE* f = std::fopen(path.c_str(), "wb");
    std::fwrite("JUNKJUNKJUNK", 1, 12, f);
    std::fclose(f);
  }
  CompiledModel model;
  EXPECT_DEATH(LoadModule(path, &model), "not a NeoCPU module");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace neocpu
