// The int8 quantized inference path: kernel-level exactness, graph-pass structure
// (Q/DQ insertion and cancellation), zoo-wide accuracy vs fp32, planned-vs-allocating
// bitwise equality, module v5 + tuning-cache round trips, serving re-tunes, and the
// Target::int8_dot gating. All tuning-dependent tests pin explicit Target profiles
// (CI hosts can be 1-core/4-lane).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/core/compiler.h"
#include "src/core/memory_plan.h"
#include "src/core/presets.h"
#include "src/core/serialization.h"
#include "src/graph/builder.h"
#include "src/kernels/conv_nchwc_int8.h"
#include "src/kernels/conv_ref.h"
#include "src/kernels/quantize.h"
#include "src/models/model_zoo.h"
#include "src/tensor/layout_transform.h"
#include "src/tuning/schedule_space.h"
#include "src/tuning/tuning_cache.h"

namespace neocpu {
namespace {

Tensor InputFor(const Graph& model, std::uint64_t seed = 17) {
  Rng rng(seed);
  for (int i = 0; i < model.num_nodes(); ++i) {
    if (model.node(i).type == OpType::kInput) {
      return Tensor::Random(model.node(i).out_dims, rng, -1.0f, 1.0f, Layout::NCHW());
    }
  }
  ADD_FAILURE() << "no input node";
  return {};
}

CompileOptions QuantizedOptions(const Target& target, bool force = true) {
  CompileOptions opts = NeoCpuOptions(target);
  opts.quantize = true;
  opts.force_quantize = force;
  return opts;
}

// ------------------------------------------------------------------ kernel level

// The s8 NCHWc kernel against a scalar integer reference: identical s32 accumulation
// and identical epilogue arithmetic must agree BIT FOR BIT (integer math is exact).
TEST(ConvNCHWcS8, MatchesScalarIntegerReference) {
  const Conv2dParams p{2, 8, 9, 11, 12, 3, 3, 1, 1, 1, 1};
  ConvSchedule s{4, 4, 8, true};
  s.dtype = DType::kS8;
  Rng rng(5);

  Tensor in = Tensor::Empty({p.batch, p.in_c / s.ic_bn, p.in_h, p.in_w, s.ic_bn},
                            Layout::NCHWc(s.ic_bn), DType::kS8);
  Tensor w = Tensor::Empty(
      {p.out_c / s.oc_bn, p.in_c / s.ic_bn, p.kernel_h, p.kernel_w, s.ic_bn, s.oc_bn},
      Layout::OIHWio(s.ic_bn, s.oc_bn), DType::kS8);
  for (std::int64_t i = 0; i < in.NumElements(); ++i) {
    in.data_as<std::int8_t>()[i] = static_cast<std::int8_t>(rng.NextBounded(255)) - 127;
  }
  for (std::int64_t i = 0; i < w.NumElements(); ++i) {
    w.data_as<std::int8_t>()[i] = static_cast<std::int8_t>(rng.NextBounded(255)) - 127;
  }
  Tensor bias = Tensor::Empty({p.out_c}, Layout::Flat(), DType::kS32);
  for (std::int64_t o = 0; o < p.out_c; ++o) {
    bias.data_as<std::int32_t>()[o] = static_cast<std::int32_t>(rng.NextBounded(2000)) - 1000;
  }
  Tensor mult = Tensor::Empty({p.out_c}, Layout::Flat());
  for (std::int64_t o = 0; o < p.out_c; ++o) {
    mult.data()[o] = 1e-4f * (1.0f + static_cast<float>(o));
  }

  ConvEpilogue epi;
  epi.bias = true;
  epi.relu = true;
  Tensor out = Tensor::Empty({p.batch, p.out_c / s.oc_bn, p.OutH(), p.OutW(), s.oc_bn},
                             Layout::NCHWc(s.oc_bn), DType::kF32);
  ConvNCHWcS8(p, s, in, w, &bias, mult, epi, /*requant=*/false, &out);

  // Scalar reference: dequantize nothing, accumulate in s32 exactly.
  const std::int64_t icb = s.ic_bn, ocb = s.oc_bn;
  const std::int64_t oh_n = p.OutH(), ow_n = p.OutW();
  for (std::int64_t n = 0; n < p.batch; ++n) {
    for (std::int64_t oc = 0; oc < p.out_c; ++oc) {
      for (std::int64_t oh = 0; oh < oh_n; ++oh) {
        for (std::int64_t ow = 0; ow < ow_n; ++ow) {
          std::int64_t acc = 0;
          for (std::int64_t ic = 0; ic < p.in_c; ++ic) {
            for (std::int64_t kh = 0; kh < p.kernel_h; ++kh) {
              for (std::int64_t kw = 0; kw < p.kernel_w; ++kw) {
                const std::int64_t ih = oh * p.stride_h - p.pad_h + kh;
                const std::int64_t iw = ow * p.stride_w - p.pad_w + kw;
                if (ih < 0 || ih >= p.in_h || iw < 0 || iw >= p.in_w) {
                  continue;
                }
                const std::int64_t in_at =
                    ((((n * (p.in_c / icb) + ic / icb) * p.in_h + ih) * p.in_w + iw) * icb) +
                    ic % icb;
                const std::int64_t w_at =
                    ((((((oc / ocb) * (p.in_c / icb) + ic / icb) * p.kernel_h + kh) *
                           p.kernel_w +
                       kw) *
                          icb +
                      ic % icb) *
                     ocb) +
                    oc % ocb;
                acc += static_cast<std::int32_t>(in.data_as<std::int8_t>()[in_at]) *
                       static_cast<std::int32_t>(w.data_as<std::int8_t>()[w_at]);
              }
            }
          }
          acc += bias.data_as<std::int32_t>()[oc];
          if (acc < 0) {
            acc = 0;  // integer-domain ReLU
          }
          const float expect = static_cast<float>(acc) * mult.data()[oc];
          const std::int64_t out_at =
              ((((n * (p.out_c / ocb) + oc / ocb) * oh_n + oh) * ow_n + ow) * ocb) +
              oc % ocb;
          ASSERT_EQ(out.data()[out_at], expect)
              << "n=" << n << " oc=" << oc << " oh=" << oh << " ow=" << ow;
        }
      }
    }
  }
}

// Every ISA variant must compute the same integers; at minimum the dispatcher must
// name a variant and produce requantized output consistent with the fused dequant one.
TEST(ConvNCHWcS8, RequantAndDequantOutputsAgree) {
  const Conv2dParams p{1, 16, 14, 14, 32, 3, 3, 1, 1, 1, 1};
  ConvSchedule s{16, 32, 8, true};
  s.dtype = DType::kS8;
  Tensor in = Tensor::Empty({1, 1, 14, 14, 16}, Layout::NCHWc(16), DType::kS8);
  Tensor w = Tensor::Empty({1, 1, 3, 3, 16, 32}, Layout::OIHWio(16, 32), DType::kS8);
  for (std::int64_t i = 0; i < in.NumElements(); ++i) {
    in.data_as<std::int8_t>()[i] = static_cast<std::int8_t>((i * 7) % 200 - 100);
  }
  for (std::int64_t i = 0; i < w.NumElements(); ++i) {
    w.data_as<std::int8_t>()[i] = static_cast<std::int8_t>((i * 13) % 180 - 90);
  }
  const float out_scale = 0.37f;
  Tensor mult_deq = Tensor::Full({32}, 1e-4f);
  Tensor mult_req = Tensor::Full({32}, 1e-4f / out_scale);

  Tensor out_f32 = Tensor::Empty({1, 1, 14, 14, 32}, Layout::NCHWc(32), DType::kF32);
  ConvNCHWcS8(p, s, in, w, nullptr, mult_deq, {}, /*requant=*/false, &out_f32);
  Tensor out_s8 = Tensor::Empty({1, 1, 14, 14, 32}, Layout::NCHWc(32), DType::kS8);
  ConvNCHWcS8(p, s, in, w, nullptr, mult_req, {}, /*requant=*/true, &out_s8);

  Tensor dequant = Dequantize(out_s8, out_scale, 0);
  // The requantized value is the f32 value snapped to the s8 grid (within clamping).
  EXPECT_LE(Tensor::MaxAbsDiff(out_f32, dequant), out_scale * 0.5 + 1e-6);
  EXPECT_STRNE(ConvNCHWcS8IsaName(), "");
}

// s8 feature maps relayout exactly like fp32 ones (pure index permutation).
TEST(LayoutTransformS8, BlockedRoundTrip) {
  Tensor x = Tensor::Empty({2, 8, 5, 5}, Layout::NCHW(), DType::kS8);
  for (std::int64_t i = 0; i < x.NumElements(); ++i) {
    x.data_as<std::int8_t>()[i] = static_cast<std::int8_t>(i % 251 - 125);
  }
  Tensor blocked = NCHWToNCHWc(x, 4);
  EXPECT_EQ(blocked.dtype(), DType::kS8);
  Tensor reblocked = NCHWcToNCHWc(blocked, 8);
  Tensor back = NCHWcToNCHW(reblocked);
  ASSERT_EQ(back.NumElements(), x.NumElements());
  for (std::int64_t i = 0; i < x.NumElements(); ++i) {
    ASSERT_EQ(back.data_as<std::int8_t>()[i], x.data_as<std::int8_t>()[i]) << i;
  }
}

// ------------------------------------------------------------------ pass structure

// A chain of quantizable convs stays in int8: exactly one kQuantize at entry, one
// fp32 exit (fused dequant), and NO Q/DQ pair between the convs.
TEST(QuantizeGraph, ChainStaysInInt8) {
  GraphBuilder b("chain");
  int x = b.Input({1, 32, 16, 16});
  x = b.Conv(x, 32, 3, 1, 1, /*bias=*/true, "c1");
  x = b.Relu(x);
  x = b.Conv(x, 32, 3, 1, 1, /*bias=*/true, "c2");
  x = b.Relu(x);
  x = b.Conv(x, 32, 1, 1, 0, /*bias=*/true, "c3");
  Graph model = b.Finish({x});

  CompiledModel compiled = Compile(model, QuantizedOptions(Target::SkylakeAvx512()));
  EXPECT_EQ(compiled.stats().num_quantized_convs, 3);
  const Graph& g = compiled.graph();
  EXPECT_EQ(g.CountNodes(OpType::kQuantize), 1);
  EXPECT_EQ(g.CountNodes(OpType::kDequantize), 0);  // exit dequant fuses into c3
  int requant_convs = 0;
  for (int id = 0; id < g.num_nodes(); ++id) {
    const Node& node = g.node(id);
    if (node.IsConv() && node.attrs.qconv.enabled) {
      EXPECT_EQ(node.attrs.kernel, ConvKernelKind::kNCHWcS8) << node.name;
      requant_convs += node.attrs.qconv.requant ? 1 : 0;
    }
  }
  EXPECT_EQ(requant_convs, 2);  // c1, c2 feed s8 consumers; c3 dequantizes

  Tensor input = InputFor(model);
  const Tensor expected = Executor(&model).Run(input);
  EXPECT_LE(Tensor::AllCloseViolation(compiled.Run(input), expected, 0.05, 0.05), 0.0);
}

// A conv with both an s8 consumer and an fp32 consumer requantizes AND emits one
// explicit dequantize for the fp32 side.
TEST(QuantizeGraph, MixedConsumersEmitOneDequantize) {
  GraphBuilder b("mixed");
  int x = b.Input({1, 32, 16, 16});
  int c1 = b.Conv(x, 32, 3, 1, 1, /*bias=*/true, "c1");
  int c2 = b.Conv(c1, 32, 3, 1, 1, /*bias=*/true, "c2");  // s8 consumer of c1
  int pool = b.GlobalAvgPool(c1);                          // fp32 consumer of c1
  int flat = b.Flatten(pool);
  int flat2 = b.Flatten(b.GlobalAvgPool(c2));
  int cat = b.Concat({flat, flat2});
  Graph model = b.Finish({cat});

  CompiledModel compiled = Compile(model, QuantizedOptions(Target::SkylakeAvx512()));
  EXPECT_EQ(compiled.stats().num_quantized_convs, 2);
  EXPECT_EQ(compiled.graph().CountNodes(OpType::kDequantize), 1);

  Tensor input = InputFor(model);
  const Tensor expected = Executor(&model).Run(input);
  EXPECT_LE(Tensor::AllCloseViolation(compiled.Run(input), expected, 0.05, 0.05), 0.0);
}

// Two quantized convs reading the SAME fp32 tensor share one kQuantize (and one s8
// buffer) instead of re-converting the feature map per branch.
TEST(QuantizeGraph, BranchesShareOneQuantizeNode) {
  GraphBuilder b("branches");
  int x = b.Input({1, 32, 16, 16});
  int a = b.Conv(x, 32, 1, 1, 0, /*bias=*/true, "a");
  int c = b.Conv(x, 32, 3, 1, 1, /*bias=*/true, "c");
  int cat = b.Concat({a, c});
  Graph model = b.Finish({cat});

  CompiledModel compiled = Compile(model, QuantizedOptions(Target::SkylakeAvx512()));
  EXPECT_EQ(compiled.stats().num_quantized_convs, 2);
  EXPECT_EQ(compiled.graph().CountNodes(OpType::kQuantize), 1);

  Tensor input = InputFor(model);
  const Tensor expected = Executor(&model).Run(input);
  EXPECT_LE(Tensor::AllCloseViolation(compiled.Run(input), expected, 0.05, 0.05), 0.0);
}

// Residual-add epilogues are outside int8's legality window: those convs stay fp32
// even under force_quantize (exactly like Winograd's legality filtering).
TEST(QuantizeGraph, ResidualConvsStayFp32) {
  Graph model = BuildResNet(18, 1, 32);
  CompiledModel compiled = Compile(model, QuantizedOptions(Target::SkylakeAvx512()));
  EXPECT_GT(compiled.stats().num_quantized_convs, 0);
  EXPECT_LT(compiled.stats().num_quantized_convs, compiled.stats().num_convs);
  for (int id = 0; id < compiled.graph().num_nodes(); ++id) {
    const Node& node = compiled.graph().node(id);
    if (node.IsConv() && node.attrs.epilogue.residual_add) {
      EXPECT_FALSE(node.attrs.qconv.enabled) << node.name;
      EXPECT_NE(node.attrs.kernel, ConvKernelKind::kNCHWcS8) << node.name;
    }
  }
}

// "ISA gated by Target": a profile with int8_dot disabled never quantizes.
TEST(QuantizeGraph, Int8DisabledTargetStaysFp32) {
  Target no_int8 = Target::SkylakeAvx512();
  no_int8.int8_dot = false;
  EXPECT_TRUE(EnumerateS8Schedules({1, 64, 28, 28, 64, 3, 3, 1, 1, 1, 1}, no_int8).empty());
  Graph model = BuildTinyCnn(1, 32);
  CompiledModel compiled = Compile(model, QuantizedOptions(no_int8));
  EXPECT_EQ(compiled.stats().num_quantized_convs, 0);
  EXPECT_EQ(compiled.graph().CountNodes(OpType::kQuantize), 0);
}

// Cost-chosen (non-forced) selection: on a resnet-style model with wide channels the
// DP assigns int8 to part of the net; on targets it never helps, nothing breaks.
TEST(QuantizeGraph, GlobalSearchChoosesInt8WhereItPays) {
  Graph model = BuildResNet(18, 1, 64);
  CompiledModel compiled =
      Compile(model, QuantizedOptions(Target::SkylakeAvx512(), /*force=*/false));
  EXPECT_TRUE(compiled.stats().used_global_search);
  EXPECT_GT(compiled.stats().num_quantized_convs, 0);

  Tensor input = InputFor(model);
  const Tensor expected = Executor(&model).Run(input);
  EXPECT_LE(Tensor::AllCloseViolation(compiled.Run(input), expected, 0.05, 0.05), 0.0);
}

// ------------------------------------------------------------------ zoo accuracy

struct ZooCase {
  std::string label;
  Graph (*build)();
};

Graph TinyResNet18() { return BuildResNet(18, 1, 64); }
Graph TinyResNet50() { return BuildResNet(50, 1, 64); }
Graph TinyVgg11() { return BuildVgg(11, 1, 64); }
Graph TinyDenseNet121() { return BuildDenseNet(121, 1, 64); }
Graph TinyInception() { return BuildInceptionV3(1, 139); }
Graph TinyCnn() { return BuildTinyCnn(1, 32); }

class ZooQuantized : public ::testing::TestWithParam<ZooCase> {};

// Forced-int8 compiles across the zoo: output within the documented max-abs-error
// tolerance of the fp32 reference, bitwise-identical planned-vs-allocating execution,
// and the zero-heap-alloc planned steady state.
TEST_P(ZooQuantized, TracksFp32WithinToleranceAndStaysZeroAlloc) {
  Graph model = GetParam().build();
  Tensor input = InputFor(model);
  const Tensor expected = Executor(&model).Run(input);

  CompiledModel compiled = Compile(model, QuantizedOptions(Target::SkylakeAvx512()));
  EXPECT_GT(compiled.stats().num_quantized_convs, 0) << GetParam().label;

  // Documented int8 accuracy bound: 0.05 max-abs-error against fp32 for the zoo's
  // softmax/flat outputs (per-layer symmetric calibration, s32 accumulation).
  const Tensor got = compiled.Run(input);
  EXPECT_LE(Tensor::MaxAbsDiff(got, expected), 0.05) << GetParam().label;

  // Planned-vs-allocating bitwise equality for the int8 graph.
  ASSERT_NE(compiled.plan(), nullptr) << GetParam().label;
  std::vector<std::string> errors;
  EXPECT_TRUE(ValidatePlan(compiled.graph(), *compiled.plan(), &errors))
      << GetParam().label << ": " << (errors.empty() ? "" : errors.front());
  const Executor allocating(&compiled.graph());
  const Tensor alloc_out = allocating.Run(input);
  EXPECT_EQ(Tensor::MaxAbsDiff(alloc_out, got), 0.0) << GetParam().label;

  // Zero-heap-alloc planned steady state (TensorHeapAllocCount delta == escaping
  // outputs only).
  const Executor planned(&compiled.graph(), nullptr, compiled.plan());
  planned.Run(input);  // warm the pooled arena
  const std::uint64_t before = TensorHeapAllocCount();
  planned.Run(input);
  EXPECT_EQ(TensorHeapAllocCount() - before,
            static_cast<std::uint64_t>(compiled.plan()->heap_nodes))
      << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(Zoo, ZooQuantized,
                         ::testing::Values(ZooCase{"tiny_cnn", &TinyCnn},
                                           ZooCase{"resnet18", &TinyResNet18},
                                           ZooCase{"resnet50", &TinyResNet50},
                                           ZooCase{"vgg11", &TinyVgg11},
                                           ZooCase{"densenet121", &TinyDenseNet121},
                                           ZooCase{"inception", &TinyInception}),
                         [](const ::testing::TestParamInfo<ZooCase>& info) {
                           return info.param.label;
                         });

// ------------------------------------------------------------------ persistence

// Module format v5: a quantized model (s8 weight constants, s32 biases, quant attrs,
// calibration table, dtype-tagged cache entries) round-trips bit-exactly and the
// loaded model can re-tune new batch sizes with int8 re-selected.
TEST(QuantizeSerialization, ModuleV5RoundTripsAndRetunes) {
  Graph model = BuildTinyCnn(1, 32);
  Tensor input = InputFor(model);
  CompiledModel compiled = Compile(model, QuantizedOptions(Target::SkylakeAvx512()));
  ASSERT_GT(compiled.stats().num_quantized_convs, 0);
  const Tensor expected = compiled.Run(input);

  const std::string path = ::testing::TempDir() + "/quantized_module.neoc";
  ASSERT_TRUE(SaveModule(compiled, path));
  CompiledModel loaded;
  ASSERT_TRUE(LoadModule(path, &loaded));
  EXPECT_TRUE(loaded.config().quantize);
  EXPECT_TRUE(loaded.config().force_quantize);
  EXPECT_EQ(loaded.stats().num_quantized_convs, compiled.stats().num_quantized_convs);
  EXPECT_EQ(loaded.calibration().size(), compiled.calibration().size());
  EXPECT_EQ(Tensor::MaxAbsDiff(loaded.Run(input), expected), 0.0);

  // Warm re-tune at a new batch size keeps the quantized path (calibration rides in
  // the artifact; ranges are batch-independent).
  CompiledModel retuned;
  ASSERT_TRUE(RetuneForBatch(loaded, 3, nullptr, &retuned));
  EXPECT_EQ(retuned.stats().tuned_batch, 3);
  EXPECT_GT(retuned.stats().num_quantized_convs, 0);
  Rng rng(23);
  Tensor batch3 = Tensor::Random({3, 3, 32, 32}, rng, -1.0f, 1.0f, Layout::NCHW());
  const Tensor ref = Executor(&retuned.graph()).Run(batch3);
  EXPECT_EQ(Tensor::MaxAbsDiff(retuned.Run(batch3), ref), 0.0);
}

// Tuning-cache format v4: s8 entries persist under dtype-tagged keys and reload next
// to the fp32 entries of the same shape.
TEST(QuantizeSerialization, TuningCacheV4RoundTripsDtypeEntries) {
  const Conv2dParams conv{1, 64, 14, 14, 64, 3, 3, 1, 1, 1, 1};
  const Target target = Target::SkylakeAvx512();
  TuningCache cache;
  LocalSearchConv(conv, target, CostMode::kAnalytic, true, nullptr, &cache);
  LocalSearchConv(conv, target, CostMode::kAnalytic, true, nullptr, &cache, nullptr,
                  DType::kS8);
  EXPECT_EQ(cache.size(), 2u);

  const std::string path = ::testing::TempDir() + "/quantized_cache.v4";
  ASSERT_TRUE(cache.SaveToFile(path));
  TuningCache reloaded;
  ASSERT_TRUE(reloaded.LoadFromFile(path));
  EXPECT_EQ(reloaded.size(), 2u);

  const WorkloadKey f32_key =
      WorkloadKey::Of(conv, target, CostMode::kAnalytic, true);
  const WorkloadKey s8_key =
      WorkloadKey::Of(conv, target, CostMode::kAnalytic, true, DType::kS8);
  auto f32_entry = reloaded.Find(f32_key);
  auto s8_entry = reloaded.Find(s8_key);
  ASSERT_NE(f32_entry, nullptr);
  ASSERT_NE(s8_entry, nullptr);
  EXPECT_EQ(f32_entry->best().schedule.dtype, DType::kF32);
  EXPECT_EQ(s8_entry->best().schedule.dtype, DType::kS8);
  // The s8 space leans on the full s8 vector: its best block exceeds the fp32 cap.
  EXPECT_EQ(s8_entry->best().schedule.oc_bn, target.PreferredBlockS8());

  // Key text round trip, including the dtype token.
  WorkloadKey parsed;
  ASSERT_TRUE(WorkloadKey::Parse(s8_key.ToString(), &parsed));
  EXPECT_EQ(parsed, s8_key);
  ASSERT_TRUE(WorkloadKey::Parse(f32_key.ToString(), &parsed));
  EXPECT_EQ(parsed, f32_key);
}

// ------------------------------------------------------------------ batch rebinding

// RebindBatch on a quantized model preserves the int8 graph structure and executes
// exactly (the derivative reuses pre-quantized weights; only shapes re-infer).
TEST(QuantizeBatch, RebindKeepsInt8AndMatchesAllocating) {
  Graph model = BuildTinyCnn(1, 32);
  CompiledModel compiled = Compile(model, QuantizedOptions(Target::SkylakeAvx512()));
  ASSERT_GT(compiled.stats().num_quantized_convs, 0);

  CompiledModel rebound;
  ASSERT_TRUE(RebindBatch(compiled, 4, &rebound));
  int quantized = 0;
  for (int id = 0; id < rebound.graph().num_nodes(); ++id) {
    quantized += rebound.graph().node(id).attrs.kernel == ConvKernelKind::kNCHWcS8;
  }
  EXPECT_EQ(quantized, compiled.stats().num_quantized_convs);

  Rng rng(29);
  Tensor input = Tensor::Random({4, 3, 32, 32}, rng, -1.0f, 1.0f, Layout::NCHW());
  const Tensor expected = Executor(&rebound.graph()).Run(input);
  EXPECT_EQ(Tensor::MaxAbsDiff(rebound.Run(input), expected), 0.0);
}

}  // namespace
}  // namespace neocpu
