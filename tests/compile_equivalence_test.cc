// Cross-configuration equivalence: every compiler configuration (Table 3 rows, both
// framework baselines, all three architecture profiles) must produce outputs equal to
// the unoptimized reference execution — the repository's replacement for the paper's
// model-accuracy sanity check (§4, "we do not expect any change of the model output").
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "src/base/rng.h"
#include "src/core/compiler.h"
#include "src/core/presets.h"
#include "src/graph/builder.h"
#include "src/models/model_zoo.h"
#include "src/runtime/thread_pool.h"

namespace neocpu {
namespace {

constexpr double kRtol = 5e-3;  // deep fp32 chains with reassociation
constexpr double kAtol = 5e-3;

Tensor ReferenceRun(const Graph& model, const Tensor& input) {
  return Executor(&model).Run(input);  // unoptimized graph, reference kernels
}

Tensor InputFor(const Graph& model, std::uint64_t seed = 9) {
  Rng rng(seed);
  for (int i = 0; i < model.num_nodes(); ++i) {
    if (model.node(i).type == OpType::kInput) {
      return Tensor::Random(model.node(i).out_dims, rng, -1.0f, 1.0f, Layout::NCHW());
    }
  }
  ADD_FAILURE() << "no input node";
  return {};
}

// A compact CNN that still exercises every structural feature: residual adds, concat,
// pre-activation BN, pooling, dense head.
Graph MiniNet() {
  GraphBuilder b("mini");
  int x = b.Input({1, 3, 32, 32});
  x = b.ConvBnRelu(x, 16, 3, 2, 1, "stem");
  int shortcut = x;
  int y = b.ConvBnRelu(x, 16, 3, 1, 1, "res.c1");
  y = b.Conv(y, 16, 3, 1, 1, false, "res.c2");
  y = b.BatchNorm(y);
  y = b.Add(y, shortcut);
  y = b.Relu(y);
  int br1 = b.ConvBnRelu(y, 32, 1, 1, 0, "br1");
  int br2 = b.ConvBnRelu(y, 16, 3, 1, 1, "br2");
  int cat = b.Concat({br1, br2});
  int bn = b.BatchNorm(cat);
  int relu = b.Relu(bn);
  int conv = b.Conv(relu, 32, 3, 2, 1, false, "post");
  int gap = b.GlobalAvgPool(conv);
  int flat = b.Flatten(gap);
  int fc = b.Dense(flat, 10);
  return b.Finish({b.Softmax(fc)});
}

class LayoutModeEquivalence : public ::testing::TestWithParam<LayoutMode> {};

TEST_P(LayoutModeEquivalence, MiniNetMatchesReference) {
  Graph model = MiniNet();
  Tensor input = InputFor(model);
  Tensor expected = ReferenceRun(model, input);
  CompileOptions opts;
  opts.layout_mode = GetParam();
  opts.target = Target::Host();
  CompiledModel compiled = Compile(model, opts);
  Tensor got = compiled.Run(input);
  EXPECT_LE(Tensor::AllCloseViolation(got, expected, kRtol, kAtol), 0.0)
      << LayoutModeName(GetParam()) << "\n"
      << compiled.graph().ToString();
}

INSTANTIATE_TEST_SUITE_P(AllModes, LayoutModeEquivalence,
                         ::testing::Values(LayoutMode::kNCHW, LayoutMode::kNCHWcPerOp,
                                           LayoutMode::kNCHWcFixed, LayoutMode::kNCHWcLocal,
                                           LayoutMode::kNCHWcGlobal),
                         [](const ::testing::TestParamInfo<LayoutMode>& info) {
                           std::string name = LayoutModeName(info.param);
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

class TargetEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(TargetEquivalence, ArchProfilesPreserveSemantics) {
  Graph model = MiniNet();
  Tensor input = InputFor(model);
  Tensor expected = ReferenceRun(model, input);
  CompiledModel compiled = Compile(model, NeoCpuOptions(Target::ByName(GetParam())));
  Tensor got = compiled.Run(input);
  EXPECT_LE(Tensor::AllCloseViolation(got, expected, kRtol, kAtol), 0.0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Profiles, TargetEquivalence,
                         ::testing::Values("avx512", "avx2", "neon"));

TEST(CompileEquivalence, FrameworkPresetsMatchReference) {
  Graph model = MiniNet();
  Tensor input = InputFor(model);
  Tensor expected = ReferenceRun(model, input);
  for (const CompileOptions& opts :
       {FrameworkLibOptions(Target::Host()), FrameworkDefaultOptions(Target::Host())}) {
    CompiledModel compiled = Compile(model, opts);
    EXPECT_LE(Tensor::AllCloseViolation(compiled.Run(input), expected, kRtol, kAtol), 0.0);
  }
}

TEST(CompileEquivalence, ThreadedExecutionMatchesSerial) {
  Graph model = MiniNet();
  Tensor input = InputFor(model);
  CompiledModel compiled = Compile(model, NeoCpuOptions(Target::Host()));
  Tensor serial = compiled.Run(input);
  NeoThreadPool pool(3, /*bind_threads=*/false);
  Tensor threaded = compiled.Run(input, &pool);
  EXPECT_EQ(Tensor::MaxAbsDiff(serial, threaded), 0.0);
}

TEST(CompileEquivalence, StatsAreCoherent) {
  Graph model = MiniNet();
  CompiledModel compiled = Compile(model, NeoCpuOptions(Target::Host()));
  const CompileStats& stats = compiled.stats();
  EXPECT_EQ(stats.num_convs, 6);
  EXPECT_TRUE(stats.used_global_search);
  EXPECT_TRUE(stats.used_exact_dp);  // MiniNet is small: DP must not bail to PBQP
  EXPECT_GT(stats.compile_seconds, 0.0);
  // Since the search also picks the conv *algorithm*, a graph whose convs all go to an
  // NCHW-layout algorithm (im2col/Winograd) legitimately needs zero runtime layout
  // transforms; blocked-template convs still imply at least one boundary transform.
  int blocked_convs = 0;
  for (int id = 0; id < compiled.graph().num_nodes(); ++id) {
    const Node& node = compiled.graph().node(id);
    blocked_convs += node.IsConv() && node.attrs.kernel == ConvKernelKind::kNCHWc;
  }
  if (blocked_convs > 0) {
    EXPECT_GE(stats.num_layout_transforms, 1);
  }
}

TEST(CompileEquivalence, TransformEliminationReducesTransformCount) {
  Graph model = MiniNet();
  CompiledModel per_op = Compile(model, FrameworkLibOptions(Target::Host()));
  CompiledModel fixed = Compile(model, AblationTransformElim(Target::Host()));
  EXPECT_GT(per_op.stats().num_layout_transforms, fixed.stats().num_layout_transforms);
}

// Zoo models at reduced resolution: full structural coverage at test-friendly cost.
struct ZooCase {
  std::string label;
  Graph (*build)();
};

Graph TinyResNet18() { return BuildResNet(18, 1, 64); }
Graph TinyResNet50() { return BuildResNet(50, 1, 64); }
Graph TinyVgg11() { return BuildVgg(11, 1, 64); }
Graph TinyDenseNet121() { return BuildDenseNet(121, 1, 64); }
Graph TinyInception() { return BuildInceptionV3(1, 139); }
Graph TinySsd() { return BuildSsdResNet50(1, 128, 5); }

class ZooEquivalence : public ::testing::TestWithParam<ZooCase> {};

TEST_P(ZooEquivalence, OptimizedMatchesReference) {
  Graph model = GetParam().build();
  Tensor input = InputFor(model, 13);
  Tensor expected = ReferenceRun(model, input);
  CompiledModel compiled = Compile(model, NeoCpuOptions(Target::Host()));
  Tensor got = compiled.Run(input);
  // SSD outputs contain exact -1 sentinel rows and thresholded sets; a small absolute
  // tolerance on the detection tensor is the right comparison there.
  if (GetParam().label == "ssd") {
    EXPECT_LT(Tensor::MaxAbsDiff(expected, got), 5e-2) << GetParam().label;
  } else {
    EXPECT_LE(Tensor::AllCloseViolation(got, expected, kRtol, kAtol), 0.0)
        << GetParam().label;
  }
}

INSTANTIATE_TEST_SUITE_P(Zoo, ZooEquivalence,
                         ::testing::Values(ZooCase{"resnet18", &TinyResNet18},
                                           ZooCase{"resnet50", &TinyResNet50},
                                           ZooCase{"vgg11", &TinyVgg11},
                                           ZooCase{"densenet121", &TinyDenseNet121},
                                           ZooCase{"inception", &TinyInception},
                                           ZooCase{"ssd", &TinySsd}),
                         [](const ::testing::TestParamInfo<ZooCase>& info) {
                           return info.param.label;
                         });

}  // namespace
}  // namespace neocpu
