// Serving-subsystem tests: batch stacking/splitting, core partition planning, the
// dynamic batcher's flush rules, compiled-model batch rebinding, and the end-to-end
// concurrent server (many client threads, results bit-identical to serial execution).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <thread>

#include "src/base/rng.h"
#include "src/base/timer.h"
#include "src/core/serialization.h"
#include "src/models/model_zoo.h"
#include "src/neocpu.h"

namespace neocpu {
namespace {

Tensor SampleInput(std::uint64_t seed, std::vector<std::int64_t> dims = {1, 3, 32, 32}) {
  Rng rng(seed);
  return Tensor::Random(std::move(dims), rng, 0.0f, 1.0f, Layout::NCHW());
}

ServeRequest MakeRequest(const std::string& model, Tensor input, bool batchable = true) {
  ServeRequest r;
  r.model = model;
  r.input = std::move(input);
  r.batchable = batchable;
  r.enqueue_time = std::chrono::steady_clock::now();
  return r;
}

TEST(BatchUtil, StackSplitRoundTrip) {
  std::vector<Tensor> samples;
  for (int i = 0; i < 3; ++i) {
    samples.push_back(SampleInput(static_cast<std::uint64_t>(i), {1, 2, 4, 4}));
  }
  Tensor stacked = StackBatch(samples);
  EXPECT_EQ(stacked.dims(), (std::vector<std::int64_t>{3, 2, 4, 4}));
  std::vector<Tensor> parts = SplitBatch(stacked, 3);
  ASSERT_EQ(parts.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(parts[static_cast<std::size_t>(i)].dims(),
              (std::vector<std::int64_t>{1, 2, 4, 4}));
    EXPECT_EQ(Tensor::MaxAbsDiff(parts[static_cast<std::size_t>(i)],
                                 samples[static_cast<std::size_t>(i)]),
              0.0);
  }
}

TEST(BatchUtil, StackRejectsMismatchedSampleDims) {
  std::vector<Tensor> samples;
  samples.push_back(SampleInput(1, {1, 2, 4, 4}));
  samples.push_back(SampleInput(2, {1, 2, 4, 5}));
  EXPECT_DEATH(StackBatch(samples), "mismatch");
}

TEST(Partition, PlanSplitsCoresDisjointly) {
  const std::vector<CorePartition> plan = PlanCorePartitions(3, 8);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0].core_offset, 0);
  EXPECT_EQ(plan[0].num_workers, 3);
  EXPECT_EQ(plan[1].core_offset, 3);
  EXPECT_EQ(plan[1].num_workers, 3);
  EXPECT_EQ(plan[2].core_offset, 6);
  EXPECT_EQ(plan[2].num_workers, 2);
}

TEST(Partition, PlanClampsToCoreCount) {
  const std::vector<CorePartition> plan = PlanCorePartitions(4, 2);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].num_workers, 1);
  EXPECT_EQ(plan[1].core_offset, 1);
}

TEST(Partition, MakeEnginePartitionsBoundsWorkers) {
  auto engines = MakeEnginePartitions(2, 4, /*bind_threads=*/false);
  ASSERT_EQ(engines.size(), 2u);
  EXPECT_EQ(engines[0]->NumWorkers(), 2);
  EXPECT_EQ(engines[1]->NumWorkers(), 2);
}

TEST(DynamicBatcher, FullBatchFlushesWithoutDelay) {
  DynamicBatcher batcher({/*max_batch_size=*/3, /*max_delay_ms=*/60000.0});
  for (int i = 0; i < 3; ++i) {
    batcher.Push(MakeRequest("m", SampleInput(static_cast<std::uint64_t>(i))));
  }
  std::vector<ServeRequest> batch;
  ASSERT_TRUE(batcher.PopBatch(&batch));  // would block for a minute if delay applied
  EXPECT_EQ(batch.size(), 3u);
  EXPECT_EQ(batcher.PendingCount(), 0u);
}

TEST(DynamicBatcher, MaxDelayFlushesPartialBatch) {
  const double delay_ms = 50.0;
  DynamicBatcher batcher({/*max_batch_size=*/8, delay_ms});
  batcher.Push(MakeRequest("m", SampleInput(1)));
  Timer timer;
  std::vector<ServeRequest> batch;
  ASSERT_TRUE(batcher.PopBatch(&batch));
  EXPECT_EQ(batch.size(), 1u);
  // The single request cannot flush before its deadline.
  EXPECT_GE(timer.Millis(), delay_ms * 0.8);
}

TEST(DynamicBatcher, IncompatibleShapeBypassesImmediately) {
  DynamicBatcher batcher({/*max_batch_size=*/8, /*max_delay_ms=*/60000.0});
  batcher.Push(MakeRequest("m", SampleInput(1, {1, 3, 32, 32})));
  batcher.Push(MakeRequest("m", SampleInput(2, {1, 3, 24, 24})));
  std::vector<ServeRequest> batch;
  // The front run is blocked by the incompatible successor, so it flushes immediately
  // as a singleton despite the minute-long delay budget; FIFO order is preserved. The
  // remaining request then waits for mates of its own shape (it flushes on shutdown).
  ASSERT_TRUE(batcher.PopBatch(&batch));
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].input.dim(2), 32);
  EXPECT_EQ(batcher.PendingCount(), 1u);
  batcher.Shutdown();
  ASSERT_TRUE(batcher.PopBatch(&batch));
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].input.dim(2), 24);
}

TEST(DynamicBatcher, NonBatchableRequestsRunAlone) {
  DynamicBatcher batcher({/*max_batch_size=*/8, /*max_delay_ms=*/60000.0});
  batcher.Push(MakeRequest("m", SampleInput(1), /*batchable=*/false));
  batcher.Push(MakeRequest("m", SampleInput(2), /*batchable=*/false));
  std::vector<ServeRequest> batch;
  ASSERT_TRUE(batcher.PopBatch(&batch));
  EXPECT_EQ(batch.size(), 1u);
  ASSERT_TRUE(batcher.PopBatch(&batch));
  EXPECT_EQ(batch.size(), 1u);
}

TEST(DynamicBatcher, ShutdownFlushesAndDrains) {
  DynamicBatcher batcher({/*max_batch_size=*/8, /*max_delay_ms=*/60000.0});
  batcher.Push(MakeRequest("m", SampleInput(1)));
  batcher.Push(MakeRequest("m", SampleInput(2)));
  batcher.Shutdown();
  std::vector<ServeRequest> batch;
  ASSERT_TRUE(batcher.PopBatch(&batch));
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_FALSE(batcher.PopBatch(&batch));
}

TEST(RebindBatch, BatchedRunMatchesSerialRuns) {
  CompiledModel compiled = Compile(BuildTinyCnn());
  CompiledModel batched;
  ASSERT_TRUE(RebindBatch(compiled, 3, &batched));
  EXPECT_EQ(batched.graph().node(0).out_dims[0], 3);

  std::vector<Tensor> samples;
  std::vector<Tensor> expected;
  for (int i = 0; i < 3; ++i) {
    samples.push_back(SampleInput(100 + static_cast<std::uint64_t>(i)));
    expected.push_back(compiled.Run(samples.back()));
  }
  Tensor out = batched.Run(StackBatch(samples));
  std::vector<Tensor> parts = SplitBatch(out, 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(Tensor::MaxAbsDiff(parts[static_cast<std::size_t>(i)],
                                 expected[static_cast<std::size_t>(i)]),
              0.0)
        << "sample " << i;
  }
}

TEST(RebindBatch, RejectsInvalidBatch) {
  CompiledModel compiled = Compile(BuildTinyCnn());
  CompiledModel out;
  EXPECT_FALSE(RebindBatch(compiled, 0, &out));
}

TEST(ModelRegistry, WarmStartFromSerializedModule) {
  CompiledModel compiled = Compile(BuildTinyCnn());
  const std::string path = ::testing::TempDir() + "/tiny_cnn_serve.neoc";
  ASSERT_TRUE(SaveModule(compiled, path));

  ModelRegistry registry;
  ModelEntry* entry = registry.RegisterFromFile("tiny", path);
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->batchable());
  EXPECT_EQ(entry->sample_dims(), (std::vector<std::int64_t>{1, 3, 32, 32}));

  Tensor input = SampleInput(7);
  Tensor expected = compiled.Run(input);
  Tensor served = entry->VariantFor(1)->executor->Run(input, nullptr);
  EXPECT_EQ(Tensor::MaxAbsDiff(served, expected), 0.0);
  std::remove(path.c_str());
}

TEST(RebindBatch, ScalesBatchMergingReshape) {
  // A reshape that merges the batch into its leading dim ({B, 3, 4, 4} -> {3B, 16})
  // rebinds by scaling that dim proportionally: the flat buffer is batch-major, so
  // per-sample row blocks stay contiguous and rowwise downstream ops see the same
  // data as B independent runs. This is the shape the transformer encoder relies on
  // ({B, S*D} -> {B*S, D}).
  GraphBuilder b("odd_reshape");
  int in = b.Input({1, 3, 4, 4});
  int r = b.Reshape(in, {3, 16});
  Graph g = b.Finish({b.Softmax(r)});
  CompiledModel compiled = Compile(g);

  CompiledModel rebound;
  ASSERT_TRUE(RebindBatch(compiled, 2, &rebound));
  Rng rng(11);
  Tensor one_a = Tensor::Random({1, 3, 4, 4}, rng, -1.0f, 1.0f, Layout::NCHW());
  Tensor one_b = Tensor::Random({1, 3, 4, 4}, rng, -1.0f, 1.0f, Layout::NCHW());
  Tensor both = Tensor::Empty({2, 3, 4, 4}, Layout::NCHW());
  std::copy_n(one_a.data(), one_a.NumElements(), both.data());
  std::copy_n(one_b.data(), one_b.NumElements(), both.data() + one_a.NumElements());
  Tensor batched = rebound.Run(both);
  Tensor ref_a = compiled.Run(one_a);
  Tensor ref_b = compiled.Run(one_b);
  ASSERT_EQ(batched.NumElements(), ref_a.NumElements() + ref_b.NumElements());
  for (std::int64_t i = 0; i < ref_a.NumElements(); ++i) {
    EXPECT_FLOAT_EQ(batched.data()[i], ref_a.data()[i]);
    EXPECT_FLOAT_EQ(batched.data()[ref_a.NumElements() + i], ref_b.data()[i]);
  }
}

TEST(RebindBatch, RefusesIndivisibleReshape) {
  // When the leading reshape dim is not a multiple of the batch there is no
  // proportional scaling that preserves per-sample blocks; the registry must mark
  // such a model non-batchable instead of crashing mid-serve when the first
  // multi-request batch forms.
  GraphBuilder b("indivisible_reshape");
  int in = b.Input({2, 3, 4, 4});
  int r = b.Reshape(in, {3, 32});
  Graph g = b.Finish({b.Softmax(r)});
  CompiledModel compiled = Compile(g);

  CompiledModel out;
  EXPECT_FALSE(RebindBatch(compiled, 4, &out));
  EXPECT_FALSE(RebindBatch(compiled, 1, &out));
}

TEST(ServingStats, ReservoirKeepsCountAndBoundsMemory) {
  LatencyRecorder recorder;
  const std::size_t total = LatencyRecorder::kMaxSamples + 5000;
  for (std::size_t i = 0; i < total; ++i) {
    recorder.Record(1.0);
  }
  const LatencySnapshot snap = recorder.Snapshot();
  EXPECT_EQ(snap.count, total);  // every request counted, even displaced ones
  EXPECT_EQ(snap.p50_ms, 1.0);
  EXPECT_EQ(snap.p99_ms, 1.0);
  EXPECT_EQ(snap.max_ms, 1.0);
}

TEST(ModelRegistry, MissingFileReturnsNull) {
  ModelRegistry registry;
  EXPECT_EQ(registry.RegisterFromFile("nope", "/nonexistent/path.neoc"), nullptr);
}

TEST(ModelEntry, ServesReboundVariantThenHotSwapsBatchTunedOne) {
  // The acceptance scenario: compiled at batch 1, first served at batch 8 via the
  // instant rebound variant (still batch-1-tuned), then hot-swapped to a variant whose
  // schedules were searched for batch 8.
  ModelRegistry registry;
  ModelEntry* entry = registry.Register("tiny", Compile(BuildTinyCnn()));

  ModelEntry::VariantPtr first = entry->VariantFor(8);
  EXPECT_EQ(first->model->graph().node(0).out_dims[0], 8);
  EXPECT_EQ(first->model->stats().tuned_batch, 1);  // rebound stopgap

  entry->WaitForRetunes();
  ModelEntry::VariantPtr tuned = entry->VariantFor(8);
  EXPECT_EQ(tuned->model->stats().tuned_batch, 8);
  EXPECT_TRUE(tuned->model->stats().retuned);

  const EntryTuningStats stats = entry->TuningStats();
  EXPECT_EQ(stats.retunes_started, 1u);
  EXPECT_EQ(stats.retunes_completed, 1u);
  EXPECT_EQ(stats.retunes_failed, 0u);

  // The pinned first variant stays usable after the hot swap, and both variants
  // compute the same function.
  Tensor input = SampleInput(55);
  std::vector<Tensor> batch_in(8, input);
  Tensor stacked = StackBatch(batch_in);
  Tensor from_old = first->executor->Run(stacked, nullptr);
  Tensor from_new = tuned->executor->Run(stacked, nullptr);
  EXPECT_LT(Tensor::MaxAbsDiff(from_old, from_new), 1e-4f);
}

TEST(ModelEntry, ConcurrentFirstUseOfOneBatchYieldsOneVariant) {
  ModelRegistry registry;
  ModelEntry* entry = registry.Register("tiny", Compile(BuildTinyCnn()));

  constexpr int kThreads = 8;
  std::vector<ModelEntry::VariantPtr> seen(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([entry, &seen, i] { seen[static_cast<std::size_t>(i)] = entry->VariantFor(4); });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  // Every thread got a batch-4 variant, and the slot was materialized once: the only
  // distinct pointers possible are the one rebound variant and (if the background
  // re-tune already landed mid-test) the one tuned replacement.
  std::set<const ModelEntry::Variant*> distinct;
  for (int i = 0; i < kThreads; ++i) {
    ASSERT_NE(seen[static_cast<std::size_t>(i)], nullptr);
    EXPECT_EQ(seen[static_cast<std::size_t>(i)]->model->graph().node(0).out_dims[0], 4);
    distinct.insert(seen[static_cast<std::size_t>(i)].get());
  }
  EXPECT_LE(distinct.size(), 2u);
  entry->WaitForRetunes();
  EXPECT_LE(entry->TuningStats().retunes_started, 1u);
  EXPECT_EQ(entry->TuningStats().retunes_completed, entry->TuningStats().retunes_started);
  EXPECT_EQ(entry->VariantFor(4)->model->stats().tuned_batch, 4);
}

TEST(ModelEntry, WarmStartRestoresBatchTuningsWithoutResearch) {
  // Serve batch 8 once (forcing its re-tune), save the module, restart into a fresh
  // registry: the restored cache must satisfy the batch-8 re-tune without a single
  // local-search miss.
  ModelRegistry registry;
  ModelEntry* entry = registry.Register("tiny", Compile(BuildTinyCnn()));
  entry->VariantFor(8);
  entry->WaitForRetunes();
  ASSERT_EQ(entry->VariantFor(8)->model->stats().tuned_batch, 8);

  const std::string path = ::testing::TempDir() + "/tiny_cnn_warm_tuned.neoc";
  ASSERT_TRUE(SaveModule(*entry->VariantFor(1)->model, path));

  ModelRegistry restarted;
  ModelEntry* warm = restarted.RegisterFromFile("tiny", path);
  ASSERT_NE(warm, nullptr);
  const TuningCacheStats before = warm->tuning_cache()->Stats();
  warm->VariantFor(8);
  warm->WaitForRetunes();
  ModelEntry::VariantPtr tuned = warm->VariantFor(8);
  EXPECT_EQ(tuned->model->stats().tuned_batch, 8);
  const TuningCacheStats after = warm->tuning_cache()->Stats();
  EXPECT_EQ(after.misses, before.misses);  // no re-search: every workload was restored
  EXPECT_GT(after.hits, before.hits);
  std::remove(path.c_str());
}

TEST(ModelRegistry, SharesOneTuningCacheAcrossModels) {
  // Two models with identical conv workloads: after registration both entries serve
  // from the registry-wide cache, so a batch one model already re-tuned is a pure
  // lookup for the other.
  ModelRegistry registry;
  ModelEntry* a = registry.Register("tiny-a", Compile(BuildTinyCnn()));
  ModelEntry* b = registry.Register("tiny-b", Compile(BuildTinyCnn()));
  ASSERT_NE(a->tuning_cache(), nullptr);
  EXPECT_EQ(a->tuning_cache().get(), registry.shared_tuning_cache().get());
  EXPECT_EQ(b->tuning_cache().get(), registry.shared_tuning_cache().get());

  a->VariantFor(8);
  a->WaitForRetunes();
  ASSERT_EQ(a->VariantFor(8)->model->stats().tuned_batch, 8);

  const TuningCacheStats before = registry.shared_tuning_cache()->Stats();
  b->VariantFor(8);
  b->WaitForRetunes();
  EXPECT_EQ(b->VariantFor(8)->model->stats().tuned_batch, 8);
  const TuningCacheStats after = registry.shared_tuning_cache()->Stats();
  EXPECT_EQ(after.misses, before.misses)  // model A already searched every workload
      << "cross-model re-tune should be pure cache hits";
  EXPECT_GT(after.hits, before.hits);

  // Aggregate stats count the shared cache once, not per entry.
  EXPECT_EQ(registry.AggregateTuningStats().cache.entries, after.entries);
}

TEST(InferenceServer, PlannedServingAllocatesOnlyOutputs) {
  // Steady-state serving on the planned path: per-request heap allocations collapse to
  // the escaping output tensor plus the batch staging the serving tier itself does.
  CompiledModel compiled = Compile(BuildTinyCnn());
  ASSERT_NE(compiled.plan(), nullptr);
  ServerOptions options;
  options.num_executors = 1;
  options.batching.max_batch_size = 1;
  options.bind_threads = false;
  options.background_retune = false;
  InferenceServer server(options);
  server.RegisterModel("tiny", compiled);
  Tensor input = SampleInput(3);
  server.Submit("tiny", input).get();  // warm-up: faults the worker's arena

  const std::uint64_t before = TensorHeapAllocCount();
  constexpr std::uint64_t kRequests = 8;
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    server.Submit("tiny", input).get();
  }
  // At most one owning allocation per request — the escaping model output; nothing for
  // intermediates or workspaces. (Single-sample requests skip StackBatch/SplitBatch
  // staging.) Asserted on the total so a single stray allocation anywhere fails.
  EXPECT_LE(TensorHeapAllocCount() - before, kRequests);
}

TEST(ModelEntry, RetuneDisabledKeepsReboundVariant) {
  ModelRegistry registry;
  RetuneOptions retune;
  retune.enabled = false;
  registry.ConfigureRetune(retune);
  ModelEntry* entry = registry.Register("tiny", Compile(BuildTinyCnn()));
  entry->VariantFor(8);
  entry->WaitForRetunes();
  EXPECT_EQ(entry->TuningStats().retunes_started, 0u);
  EXPECT_EQ(entry->VariantFor(8)->model->stats().tuned_batch, 1);
}

// The acceptance-criteria test: many client threads submit concurrently; every result
// must be bit-identical to a serial Executor::Run of the same input.
TEST(InferenceServer, ConcurrentSubmitsMatchSerialExactly) {
  CompiledModel compiled = Compile(BuildTinyCnn());

  constexpr int kClients = 5;
  constexpr int kRequestsPerClient = 6;
  std::vector<std::vector<Tensor>> inputs(kClients);
  std::vector<std::vector<Tensor>> expected(kClients);
  for (int c = 0; c < kClients; ++c) {
    for (int r = 0; r < kRequestsPerClient; ++r) {
      inputs[static_cast<std::size_t>(c)].push_back(
          SampleInput(static_cast<std::uint64_t>(1000 + c * 100 + r)));
      expected[static_cast<std::size_t>(c)].push_back(
          compiled.Run(inputs[static_cast<std::size_t>(c)].back()));
    }
  }

  ServerOptions options;
  options.num_executors = 3;
  options.bind_threads = false;  // CI hosts are often core-restricted
  options.batching.max_batch_size = 4;
  options.batching.max_delay_ms = 2.0;
  InferenceServer server(options);
  server.RegisterModel("tiny", std::move(compiled));

  std::vector<std::vector<std::future<Tensor>>> futures(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        futures[static_cast<std::size_t>(c)].push_back(server.Submit(
            "tiny", inputs[static_cast<std::size_t>(c)][static_cast<std::size_t>(r)]));
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  for (int c = 0; c < kClients; ++c) {
    for (int r = 0; r < kRequestsPerClient; ++r) {
      Tensor got = futures[static_cast<std::size_t>(c)][static_cast<std::size_t>(r)].get();
      EXPECT_EQ(Tensor::MaxAbsDiff(
                    got, expected[static_cast<std::size_t>(c)][static_cast<std::size_t>(r)]),
                0.0)
          << "client " << c << " request " << r;
    }
  }

  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kClients * kRequestsPerClient));
  EXPECT_EQ(stats.completed, stats.submitted);
  EXPECT_EQ(stats.latency.count, static_cast<std::size_t>(kClients * kRequestsPerClient));
  EXPECT_GE(stats.batch_runs, 1u);
  EXPECT_LE(stats.max_batch_size, 4);
}

TEST(InferenceServer, ServesMultipleModelsConcurrently) {
  CompiledModel model_a = Compile(BuildTinyCnn(1, 32));
  CompiledModel model_b = Compile(BuildTinyCnn(1, 24));
  Tensor input_a = SampleInput(11, {1, 3, 32, 32});
  Tensor input_b = SampleInput(12, {1, 3, 24, 24});
  Tensor expected_a = model_a.Run(input_a);
  Tensor expected_b = model_b.Run(input_b);

  ServerOptions options;
  options.num_executors = 2;
  options.bind_threads = false;
  options.batching.max_delay_ms = 1.0;
  InferenceServer server(options);
  server.RegisterModel("a", std::move(model_a));
  server.RegisterModel("b", std::move(model_b));

  std::vector<std::future<Tensor>> futures_a;
  std::vector<std::future<Tensor>> futures_b;
  for (int i = 0; i < 4; ++i) {
    futures_a.push_back(server.Submit("a", input_a));
    futures_b.push_back(server.Submit("b", input_b));
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(Tensor::MaxAbsDiff(futures_a[static_cast<std::size_t>(i)].get(), expected_a),
              0.0);
    EXPECT_EQ(Tensor::MaxAbsDiff(futures_b[static_cast<std::size_t>(i)].get(), expected_b),
              0.0);
  }
}

TEST(InferenceServer, RejectsWrongShapeAndUnknownModel) {
  ServerOptions options;
  options.num_executors = 1;
  options.bind_threads = false;
  InferenceServer server(options);
  server.RegisterModel("tiny", Compile(BuildTinyCnn()));
  EXPECT_DEATH(server.Submit("tiny", SampleInput(1, {1, 3, 24, 24})), "axis");
  EXPECT_DEATH(server.Submit("absent", SampleInput(1)), "unregistered");
}

TEST(ModelEntry, RetuneBudgetCapsAndDefersUnderBatchChurn) {
  // Registry-wide re-tune rate limiting: with the one-slot budget held, a burst of new
  // batch sizes defers every background re-tune instead of spawning a thread per batch
  // — and once the slot frees, traffic-driven retries tune everything, never more than
  // one re-tune in flight.
  ModelRegistry registry;
  auto budget = std::make_shared<RetuneBudget>(1);
  RetuneOptions opts;
  opts.max_concurrent_retunes = 1;
  opts.budget = budget;
  registry.ConfigureRetune(opts);
  ModelEntry* entry = registry.Register("tiny", Compile(BuildTinyCnn()));

  ASSERT_TRUE(budget->TryAcquire());  // occupy the only slot
  const std::vector<std::int64_t> batches = {2, 3, 4, 5};
  for (std::int64_t b : batches) {
    entry->VariantFor(b);  // untuned rebind; its re-tune must defer
  }
  EntryTuningStats stats = entry->TuningStats();
  EXPECT_EQ(stats.retunes_started, 0u);
  EXPECT_EQ(stats.retunes_deferred, batches.size());
  EXPECT_EQ(budget->deferred(), batches.size());
  budget->Release();

  // Traffic retries until every batch is tuned; the budget proves <= 1 ran at a time.
  for (std::int64_t b : batches) {
    for (int attempt = 0; attempt < 100; ++attempt) {
      if (entry->VariantFor(b)->model->stats().tuned_batch == b) {
        break;
      }
      entry->WaitForRetunes();
    }
    EXPECT_EQ(entry->VariantFor(b)->model->stats().tuned_batch, b) << "batch " << b;
  }
  EXPECT_EQ(budget->peak_in_flight(), 1);
  EXPECT_EQ(budget->in_flight(), 0);

  stats = entry->TuningStats();
  EXPECT_EQ(stats.retunes_started, batches.size());
  EXPECT_EQ(stats.retunes_completed, batches.size());

  // Duplicate coalescing rides along: hammering ONE untuned batch from many threads
  // starts exactly one more re-tune.
  const std::uint64_t started_before = stats.retunes_started;
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([entry] { entry->VariantFor(16); });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  entry->WaitForRetunes();
  EXPECT_EQ(entry->TuningStats().retunes_started, started_before + 1);
}

TEST(NodeProfiler, SampledProfilingOverheadIsBounded) {
  // The obs overhead contract: profiling at a production sample rate must not move
  // throughput by more than 5%, and a model with no profiler attached records nothing.
  CompiledModel model = Compile(BuildTinyCnn());
  Tensor input = SampleInput(9);
  model.Run(input);  // warm-up: faults weights and the arena

  // Best-of-N timing of a fixed run block — the minimum is robust against scheduler
  // noise on shared CI hosts, which a mean/medium comparison at 5% is not.
  auto best_block_ms = [&](int reps) {
    double best = 1e100;
    for (int r = 0; r < reps; ++r) {
      Timer timer;
      for (int i = 0; i < 8; ++i) {
        model.Run(input);
      }
      best = std::min(best, timer.Millis());
    }
    return best;
  };

  const double off_ms = best_block_ms(12);
  EXPECT_TRUE(model.ProfileSnapshot().empty());  // detached profiler records nothing

  model.EnableProfiling(/*sample_rate=*/64);
  const double on_ms = best_block_ms(12);
  EXPECT_FALSE(model.ProfileSnapshot().empty());  // the sampled run was captured
  model.DisableProfiling();

  EXPECT_LT(on_ms, off_ms * 1.05)
      << "sampled profiling overhead above 5%: off=" << off_ms << "ms on=" << on_ms
      << "ms";
}

TEST(InferenceServer, ShutdownDrainsPendingRequests) {
  ServerOptions options;
  options.num_executors = 2;
  options.bind_threads = false;
  options.batching.max_delay_ms = 200.0;  // requests would otherwise wait for mates
  InferenceServer server(options);
  server.RegisterModel("tiny", Compile(BuildTinyCnn()));
  Tensor input = SampleInput(21);
  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(server.Submit("tiny", input));
  }
  server.Shutdown();  // must flush the delay-held batch, not strand it
  for (std::future<Tensor>& f : futures) {
    EXPECT_TRUE(f.get().defined());
  }
  EXPECT_EQ(server.Stats().completed, 3u);
}

TEST(ModelEntry, MeasuredRetunePromotesIntoSharedCache) {
  // The tuning-partition contract at the registry level: a measured-mode re-tune runs
  // on its own cpu slice, its winners land in the shared cache under kMeasured keys,
  // and the promotion is observable in the entry's stats.
  ModelRegistry registry;
  RetuneOptions retune;
  retune.measured = true;
  retune.cpus = {0};  // the (degenerate, one-cpu) tuning partition on this host
  registry.ConfigureRetune(retune);
  ModelEntry* entry = registry.Register("tiny", Compile(BuildTinyCnn()));

  entry->VariantFor(4);
  entry->WaitForRetunes();
  EXPECT_EQ(entry->VariantFor(4)->model->stats().tuned_batch, 4);

  const EntryTuningStats stats = entry->TuningStats();
  EXPECT_EQ(stats.retunes_completed, 1u);
  EXPECT_EQ(stats.measured_retunes_promoted, 1u);
  bool has_measured_key = false;
  for (const WorkloadKey& key : registry.shared_tuning_cache()->Keys()) {
    has_measured_key |= key.cost_mode == CostMode::kMeasured;
  }
  EXPECT_TRUE(has_measured_key)
      << "measured re-tune left no kMeasured entries in the shared cache";
}

TEST(InferenceServer, MeasuredTuningPartitionDegradesGracefullyAndReportsTopology) {
  // measured_tuning_partition on a small host must not break serving: either a
  // dedicated slice is carved (disjoint from every serving partition) or the server
  // falls back to sharing, and the topology stats stay coherent either way.
  ServerOptions options;
  options.num_executors = 1;
  options.batching.max_batch_size = 1;
  options.bind_threads = false;
  options.measured_tuning_partition = true;
  InferenceServer server(options);
  server.RegisterModel("tiny", Compile(BuildTinyCnn()));
  Tensor input = SampleInput(7);
  EXPECT_TRUE(server.Submit("tiny", input).get().defined());

  ASSERT_FALSE(server.partitions().empty());
  const ServerStats stats = server.Stats();
  EXPECT_GE(stats.num_nodes, 1);
  EXPECT_EQ(stats.num_partitions, static_cast<int>(server.partitions().size()));
  const CorePartition* tuning = server.tuning_partition();
  EXPECT_EQ(stats.has_tuning_partition, tuning != nullptr);
  if (tuning != nullptr) {
    // The dedicated slice never overlaps a serving partition's cpus.
    std::set<int> tuning_cpus(tuning->cpus.begin(), tuning->cpus.end());
    if (tuning_cpus.empty()) {
      tuning_cpus.insert(tuning->core_offset);
    }
    for (const CorePartition& serving : server.partitions()) {
      if (serving.cpus.empty()) {
        for (int c = serving.core_offset; c < serving.core_offset + serving.num_workers;
             ++c) {
          EXPECT_EQ(tuning_cpus.count(c), 0u) << "serving cpu " << c << " in tuning slice";
        }
      } else {
        for (int c : serving.cpus) {
          EXPECT_EQ(tuning_cpus.count(c), 0u) << "serving cpu " << c << " in tuning slice";
        }
      }
    }
  }
  // Single-node hosts never dispatch cross-node.
  if (stats.num_nodes == 1) {
    EXPECT_EQ(stats.cross_node_dispatches, 0u);
  }
}

TEST(ModelEntry, ReplicasServeNodeLocalExecutorsBitExactly) {
  // Forced two-node replication on a (possibly) one-node host: every configured node
  // gets its own executor over cloned weights, unknown/unhomed nodes fall back to the
  // base, and all of them compute bit-identical results.
  ModelRegistry registry;
  ModelEntry* entry = registry.Register("tiny", Compile(BuildTinyCnn()));
  registry.ConfigureReplicas({0, 1});

  ModelEntry::VariantPtr variant = entry->VariantFor(1);
  Executor* base = variant->executor.get();
  Executor* rep0 = variant->ExecutorFor(0);
  Executor* rep1 = variant->ExecutorFor(1);
  ASSERT_NE(rep0, nullptr);
  ASSERT_NE(rep1, nullptr);
  EXPECT_NE(rep0, base);
  EXPECT_NE(rep1, base);
  EXPECT_NE(rep0, rep1);
  EXPECT_EQ(variant->ExecutorFor(7), base);   // node nobody replicated onto
  EXPECT_EQ(variant->ExecutorFor(-1), base);  // unhomed partition

  Tensor input = SampleInput(11);
  Tensor from_base = base->Run(input);
  EXPECT_EQ(Tensor::MaxAbsDiff(rep0->Run(input), from_base), 0.0);
  EXPECT_EQ(Tensor::MaxAbsDiff(rep1->Run(input), from_base), 0.0);
}

TEST(ModelEntry, ReplicaExecutionStaysZeroAllocOnPlannedPath) {
  // The replica path must preserve the planned-serving allocation discipline: after
  // warm-up, a replica executor running against a warm arena allocates only the
  // escaping output tensor.
  ModelRegistry registry;
  ModelEntry* entry = registry.Register("tiny", Compile(BuildTinyCnn()));
  registry.ConfigureReplicas({0, 1});
  entry->WaitForRetunes();

  ModelEntry::VariantPtr variant = entry->VariantFor(1);
  ASSERT_NE(variant->model->plan(), nullptr);
  Executor* rep = variant->ExecutorFor(1);
  ASSERT_NE(rep, variant->executor.get());

  Arena arena;
  Tensor input = SampleInput(23);
  rep->Run(input, nullptr, &arena);  // warm-up: faults the arena pages

  const std::uint64_t before = TensorHeapAllocCount();
  constexpr std::uint64_t kRuns = 8;
  for (std::uint64_t i = 0; i < kRuns; ++i) {
    rep->Run(input, nullptr, &arena);
  }
  EXPECT_LE(TensorHeapAllocCount() - before, kRuns);
}

}  // namespace
}  // namespace neocpu
