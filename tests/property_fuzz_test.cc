// Property-based testing: randomly generated CNN graphs, compiled under every layout
// mode and architecture profile, must be numerically equivalent to the reference
// executor. This sweeps combinations of structure (branches, residuals, concats,
// pooling, pre/post-activation BN) that the hand-written tests cannot enumerate.
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "src/base/rng.h"
#include "src/base/string_util.h"
#include "src/core/compiler.h"
#include "src/core/presets.h"
#include "src/graph/builder.h"
#include "src/kernels/quantize.h"
#include "src/serve/frontend/wire_protocol.h"

namespace neocpu {
namespace {

// Generates a random CNN: a chain of feature-map stages with occasional residual
// diamonds and two-branch concats, closed by a classifier head. All channel counts are
// multiples of 4 so every ISA profile has valid blocks (the paper's divisibility rule).
Graph RandomCnn(std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(StrFormat("fuzz_%llu", static_cast<unsigned long long>(seed)), seed);
  std::int64_t channels = 4 * (1 + static_cast<std::int64_t>(rng.NextBounded(4)));  // 4..16
  int x = b.Input({1, channels, 24, 24});
  const int depth = 3 + static_cast<int>(rng.NextBounded(4));  // 3..6 structure steps

  for (int step = 0; step < depth; ++step) {
    const std::uint64_t kind = rng.NextBounded(6);
    const auto& dims = b.graph().node(x).out_dims;
    const std::int64_t h = dims[2];
    switch (kind) {
      case 0: {  // plain conv (+optional BN/ReLU)
        const std::int64_t out_c = 4 * (1 + static_cast<std::int64_t>(rng.NextBounded(8)));
        const std::int64_t k = rng.NextBounded(2) == 0 ? 1 : 3;
        x = b.Conv(x, out_c, k, 1, k / 2, rng.NextBounded(2) == 0);
        if (rng.NextBounded(2) == 0) {
          x = b.BatchNorm(x);
        }
        if (rng.NextBounded(2) == 0) {
          x = b.Relu(x);
        }
        break;
      }
      case 1: {  // residual diamond
        const std::int64_t c = dims[1];
        int main = b.Conv(x, c, 3, 1, 1);
        main = b.BatchNorm(main);
        if (rng.NextBounded(2) == 0) {
          main = b.Relu(main);
          main = b.Conv(main, c, 1, 1, 0);
        }
        x = b.Add(main, x);
        x = b.Relu(x);
        break;
      }
      case 2: {  // two-branch concat
        const std::int64_t c1 = 4 * (1 + static_cast<std::int64_t>(rng.NextBounded(4)));
        const std::int64_t c2 = 4 * (1 + static_cast<std::int64_t>(rng.NextBounded(4)));
        int a = b.Conv(x, c1, 1, 1, 0);
        int c = b.Conv(x, c2, 3, 1, 1);
        x = b.Concat({a, c});
        break;
      }
      case 3: {  // pooling (only while the map is big enough)
        if (h >= 8) {
          x = rng.NextBounded(2) == 0 ? b.MaxPool(x, 2, 2, 0) : b.AvgPool(x, 3, 2, 1);
        } else {
          x = b.Relu(x);
        }
        break;
      }
      case 4: {  // pre-activation stack (DenseNet style)
        x = b.BatchNorm(x);
        x = b.Relu(x);
        x = b.Conv(x, 4 * (1 + static_cast<std::int64_t>(rng.NextBounded(6))), 3, 1, 1);
        break;
      }
      default: {  // strided conv (downsample)
        if (h >= 8) {
          x = b.Conv(x, 4 * (1 + static_cast<std::int64_t>(rng.NextBounded(8))), 3, 2, 1);
        } else {
          x = b.Conv(x, dims[1], 1, 1, 0);
        }
        break;
      }
    }
  }
  x = b.GlobalAvgPool(x);
  x = b.Flatten(x);
  x = b.Dense(x, 10);
  x = b.Softmax(x);
  return b.Finish({x});
}

class FuzzEquivalence
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, LayoutMode>> {};

TEST_P(FuzzEquivalence, CompiledMatchesReference) {
  const auto [seed, mode] = GetParam();
  Graph model = RandomCnn(seed);
  Rng rng(seed ^ 0xabcdef);
  Tensor input = Tensor::Random(model.node(0).out_dims, rng, -1.0f, 1.0f, Layout::NCHW());
  Tensor expected = Executor(&model).Run(input);

  CompileOptions opts;
  opts.layout_mode = mode;
  opts.target = Target::Host();
  CompiledModel compiled = Compile(model, opts);
  Tensor got = compiled.Run(input);
  EXPECT_LE(Tensor::AllCloseViolation(got, expected, 5e-3, 5e-3), 0.0)
      << "seed=" << seed << " mode=" << LayoutModeName(mode) << "\n"
      << model.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FuzzEquivalence,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3, 5, 8, 13, 21, 34, 55, 89),
                       ::testing::Values(LayoutMode::kNCHW, LayoutMode::kNCHWcPerOp,
                                         LayoutMode::kNCHWcFixed, LayoutMode::kNCHWcLocal,
                                         LayoutMode::kNCHWcGlobal)));

class FuzzProfileEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzProfileEquivalence, NeonProfileMatchesReference) {
  // The most restrictive profile (4-lane blocks) on random structures.
  Graph model = RandomCnn(GetParam());
  Rng rng(GetParam() * 31);
  Tensor input = Tensor::Random(model.node(0).out_dims, rng, -1.0f, 1.0f, Layout::NCHW());
  Tensor expected = Executor(&model).Run(input);
  CompiledModel compiled = Compile(model, NeoCpuOptions(Target::ArmA72Neon()));
  Tensor got = compiled.Run(input);
  EXPECT_LE(Tensor::AllCloseViolation(got, expected, 5e-3, 5e-3), 0.0)
      << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzProfileEquivalence,
                         ::testing::Values<std::uint64_t>(7, 11, 17, 23, 29, 41));

// Quantize/dequantize round-trip properties on random tensors: the reconstruction
// error of one Q->DQ pass is bounded by half a quantization step (plus range clamping,
// which the scale choice rules out here), and a second pass is exact — DQ(Q(x)) is a
// fixed point, the property the graph-level DQ->Q cancellation relies on.
class FuzzQdqRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzQdqRoundTrip, ReconstructionWithinHalfStepAndIdempotent) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 977);
  const std::int64_t n = 64 + static_cast<std::int64_t>(rng.NextBounded(2000));
  const float amax = 0.05f + 8.0f * rng.NextFloat(0.0f, 1.0f);
  Tensor x = Tensor::Random({n}, rng, -amax, amax);
  const float scale = SymmetricScale(-amax, amax);

  for (DType dtype : {DType::kS8, DType::kU8}) {
    const std::int32_t zero_point = dtype == DType::kU8 ? 128 : 0;
    Tensor q = Quantize(x, scale, zero_point, dtype);
    EXPECT_EQ(q.dtype(), dtype);
    Tensor back = Dequantize(q, scale, zero_point);
    // |x - DQ(Q(x))| <= scale/2 everywhere (no clamping: scale covers [-amax, amax]).
    EXPECT_LE(Tensor::MaxAbsDiff(x, back), scale * 0.5 + 1e-7)
        << "seed=" << seed << " dtype=" << DTypeName(dtype);
    // Idempotence: re-quantizing the dequantized tensor reproduces q bit for bit.
    Tensor q2 = Quantize(back, scale, zero_point, dtype);
    EXPECT_EQ(std::memcmp(q.data(), q2.data(), static_cast<std::size_t>(n)), 0)
        << "seed=" << seed << " dtype=" << DTypeName(dtype);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzQdqRoundTrip,
                         ::testing::Values<std::uint64_t>(3, 9, 27, 81, 243, 729));

// Quantized compilation on random structures: forced-int8 compiles of random CNNs stay
// within a loose-but-meaningful tolerance of the fp32 reference (s8 error compounds
// through depth; the bound here is the per-layer-calibrated regime's, not fp32's).
class FuzzQuantized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzQuantized, ForcedInt8TracksReference) {
  Graph model = RandomCnn(GetParam());
  Rng rng(GetParam() * 131);
  Tensor input = Tensor::Random(model.node(0).out_dims, rng, -1.0f, 1.0f, Layout::NCHW());
  Tensor expected = Executor(&model).Run(input);

  CompileOptions opts = NeoCpuOptions(Target::SkylakeAvx512());
  opts.quantize = true;
  opts.force_quantize = true;
  opts.calibration_inputs = {input};
  CompiledModel compiled = Compile(model, opts);
  Tensor got = compiled.Run(input);
  // The classifier head ends in a softmax, so outputs are probabilities: an absolute
  // tolerance is the meaningful comparison.
  EXPECT_LE(Tensor::MaxAbsDiff(got, expected), 0.05)
      << "seed=" << GetParam() << " quantized " << compiled.stats().num_quantized_convs
      << "/" << compiled.stats().num_convs << "\n"
      << model.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzQuantized,
                         ::testing::Values<std::uint64_t>(1, 2, 5, 13, 34, 89));

// ---------------------------------------------------------------------------
// Wire-frame fuzzing: the front end's decoders on hostile bytes.
//
// The decoders (src/serve/frontend/wire_protocol) are the first thing untrusted
// network bytes hit, so the property here is absolute: ANY byte string produces
// either a successful parse with internally consistent output or a typed error —
// never UB, never a crash. The suite runs under the ASan CI job, so out-of-bounds
// reads and overflows in the length arithmetic fail loudly.
// ---------------------------------------------------------------------------

// Internal-consistency check on a successfully decoded request.
void CheckDecodedRequest(const WireRequest& decoded, std::uint64_t seed) {
  EXPECT_GE(decoded.model.size(), 1u) << "seed=" << seed;
  EXPECT_LE(decoded.model.size(), kWireMaxModelLen) << "seed=" << seed;
  EXPECT_GE(decoded.input.ndim(), 1) << "seed=" << seed;
  EXPECT_LE(static_cast<std::size_t>(decoded.input.ndim()), kWireMaxDims)
      << "seed=" << seed;
  EXPECT_LE(decoded.input.SizeBytes(), kWireMaxFrameBytes * 4u) << "seed=" << seed;
}

class FuzzWireDecoder : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzWireDecoder, RandomBytesDecodeOrTypedError) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 400; ++iter) {
    const std::size_t size = static_cast<std::size_t>(rng.NextBounded(512));
    std::vector<std::uint8_t> bytes(size);
    for (auto& b : bytes) {
      b = static_cast<std::uint8_t>(rng.NextBounded(256));
    }
    WireRequest request;
    const WireError req_err = DecodeRequestBody(bytes.data(), bytes.size(), &request);
    if (req_err.ok()) {
      CheckDecodedRequest(request, GetParam());
    }
    WireResponse response;
    const WireError resp_err = DecodeResponseBody(bytes.data(), bytes.size(), &response);
    if (resp_err.ok() && response.ok()) {
      EXPECT_GE(response.result.ndim(), 1);
    }
  }
}

TEST_P(FuzzWireDecoder, MutatedValidFramesDecodeOrTypedError) {
  Rng rng(GetParam() * 977);
  // Start from a valid frame so mutations explore the near-valid space where parsers
  // break: flipped length fields, corrupted dims, truncated payloads.
  WireRequest seed_request;
  seed_request.model = "fuzz-model";
  seed_request.lane = RequestLane::kThroughput;
  seed_request.input =
      Tensor::Random({1, 3, 6, 6}, rng, -1.0f, 1.0f, Layout::NCHW());
  const std::vector<std::uint8_t> valid = EncodeRequestFrame(seed_request);
  for (int iter = 0; iter < 400; ++iter) {
    // Drop the length prefix: the server reads it separately; decoders see the body.
    std::vector<std::uint8_t> body(valid.begin() + 4, valid.end());
    const std::uint64_t mutations = 1 + rng.NextBounded(8);
    for (std::uint64_t m = 0; m < mutations; ++m) {
      switch (rng.NextBounded(4)) {
        case 0:  // flip a byte
          body[static_cast<std::size_t>(rng.NextBounded(body.size()))] ^=
              static_cast<std::uint8_t>(1 + rng.NextBounded(255));
          break;
        case 1:  // truncate
          body.resize(static_cast<std::size_t>(rng.NextBounded(body.size() + 1)));
          break;
        case 2:  // extend with junk
          body.push_back(static_cast<std::uint8_t>(rng.NextBounded(256)));
          break;
        default:  // overwrite a random u16-aligned header field with an extreme value
          if (body.size() >= 12) {
            const std::size_t off = 8 + 2 * static_cast<std::size_t>(rng.NextBounded(2));
            body[off] = 0xFF;
            body[off + 1] = 0xFF;
          }
          break;
      }
      if (body.empty()) {
        break;
      }
    }
    WireRequest request;
    const WireError err = DecodeRequestBody(body.data(), body.size(), &request);
    if (err.ok()) {
      CheckDecodedRequest(request, GetParam());
    }
  }
}

TEST_P(FuzzWireDecoder, EncodeDecodeRoundTripIsExact) {
  Rng rng(GetParam() * 31337);
  for (int iter = 0; iter < 32; ++iter) {
    WireRequest request;
    request.model = StrFormat("m%llu", static_cast<unsigned long long>(rng.NextU64()));
    request.lane =
        rng.NextBounded(2) == 0 ? RequestLane::kLatency : RequestLane::kThroughput;
    std::vector<std::int64_t> dims;
    const std::uint64_t ndim = 1 + rng.NextBounded(4);
    for (std::uint64_t d = 0; d < ndim; ++d) {
      dims.push_back(1 + static_cast<std::int64_t>(rng.NextBounded(6)));
    }
    request.input = Tensor::Random(dims, rng, -1.0f, 1.0f, Layout::Flat());
    const std::vector<std::uint8_t> frame = EncodeRequestFrame(request);
    WireRequest decoded;
    const WireError err =
        DecodeRequestBody(frame.data() + 4, frame.size() - 4, &decoded);
    ASSERT_TRUE(err.ok()) << err.message;
    EXPECT_EQ(decoded.model, request.model);
    EXPECT_EQ(decoded.lane, request.lane);
    EXPECT_EQ(decoded.input.dims(), request.input.dims());
    EXPECT_EQ(Tensor::MaxAbsDiff(decoded.input, request.input), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzWireDecoder,
                         ::testing::Values<std::uint64_t>(7, 42, 1009, 65537));

}  // namespace
}  // namespace neocpu
