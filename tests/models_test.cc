// Structural tests for the 15-network zoo: construction succeeds, conv/output counts
// match the published architectures, and the factory agrees with the input-dim table.
#include <gtest/gtest.h>

#include "src/models/model_zoo.h"

namespace neocpu {
namespace {

std::vector<std::int64_t> OutputDims(const Graph& g) {
  return g.node(g.outputs()[0]).out_dims;
}

TEST(ModelZoo, FifteenModels) {
  EXPECT_EQ(ModelZooNames().size(), 15u);
}

TEST(ModelZoo, InputDimsFollowPaperConventions) {
  EXPECT_EQ(ModelInputDims("resnet50"), (std::vector<std::int64_t>{1, 3, 224, 224}));
  EXPECT_EQ(ModelInputDims("inception-v3"), (std::vector<std::int64_t>{1, 3, 299, 299}));
  EXPECT_EQ(ModelInputDims("ssd-resnet50"), (std::vector<std::int64_t>{1, 3, 512, 512}));
  EXPECT_EQ(ModelInputDims("vgg16", 4), (std::vector<std::int64_t>{4, 3, 224, 224}));
}

struct ConvCountCase {
  const char* name;
  int depth;
  int expected_convs;
};

class ResNetStructure : public ::testing::TestWithParam<ConvCountCase> {};

TEST_P(ResNetStructure, ConvCountMatchesArchitecture) {
  Graph g = BuildResNet(GetParam().depth, 1, 64);
  EXPECT_EQ(g.CountNodes(OpType::kConv2d), GetParam().expected_convs) << GetParam().name;
  EXPECT_EQ(OutputDims(g), (std::vector<std::int64_t>{1, 1000}));
}

// Conv counts include projection shortcuts: r18: 17+3=20, r34: 33+3=36,
// r50: 49+4=53, r101: 100+4=104, r152: 151+4=155.
INSTANTIATE_TEST_SUITE_P(Depths, ResNetStructure,
                         ::testing::Values(ConvCountCase{"r18", 18, 20},
                                           ConvCountCase{"r34", 34, 36},
                                           ConvCountCase{"r50", 50, 53},
                                           ConvCountCase{"r101", 101, 104},
                                           ConvCountCase{"r152", 152, 155}));

class VggStructure : public ::testing::TestWithParam<ConvCountCase> {};

TEST_P(VggStructure, ConvAndDenseCounts) {
  Graph g = BuildVgg(GetParam().depth, 1, 64);
  EXPECT_EQ(g.CountNodes(OpType::kConv2d), GetParam().expected_convs);
  EXPECT_EQ(g.CountNodes(OpType::kDense), 3);
  EXPECT_EQ(g.CountNodes(OpType::kBatchNorm), 0);  // original VGG has no BN
  EXPECT_EQ(OutputDims(g), (std::vector<std::int64_t>{1, 1000}));
}

INSTANTIATE_TEST_SUITE_P(Depths, VggStructure,
                         ::testing::Values(ConvCountCase{"v11", 11, 8},
                                           ConvCountCase{"v13", 13, 10},
                                           ConvCountCase{"v16", 16, 13},
                                           ConvCountCase{"v19", 19, 16}));

class DenseNetStructure : public ::testing::TestWithParam<ConvCountCase> {};

TEST_P(DenseNetStructure, ConvCountMatchesArchitecture) {
  Graph g = BuildDenseNet(GetParam().depth, 1, 64);
  EXPECT_EQ(g.CountNodes(OpType::kConv2d), GetParam().expected_convs);
  EXPECT_EQ(OutputDims(g), (std::vector<std::int64_t>{1, 1000}));
}

// stem + 2 convs per dense layer + 3 transitions:
// 121: 1 + 2*58 + 3 = 120; 161: 1 + 2*78 + 3 = 160; 169: 1+2*82+3 = 168;
// 201: 1 + 2*98 + 3 = 200.
INSTANTIATE_TEST_SUITE_P(Depths, DenseNetStructure,
                         ::testing::Values(ConvCountCase{"d121", 121, 120},
                                           ConvCountCase{"d161", 161, 160},
                                           ConvCountCase{"d169", 169, 168},
                                           ConvCountCase{"d201", 201, 200}));

TEST(InceptionStructure, ConvCountAndOutput) {
  Graph g = BuildInceptionV3(1, 139);
  // Canonical Inception-v3 has 94 convolutions (without the aux head).
  EXPECT_EQ(g.CountNodes(OpType::kConv2d), 94);
  EXPECT_EQ(g.CountNodes(OpType::kConcat), 15);  // 11 block concats + 2x2 inner C splits
  EXPECT_EQ(OutputDims(g), (std::vector<std::int64_t>{1, 1000}));
}

TEST(SsdStructure, HeadsAndDetection) {
  Graph g = BuildSsdResNet50(1, 128, 5);
  // Backbone (53 incl. projections) + 8 extra-feature convs + 6 cls + 6 loc heads = 73.
  EXPECT_EQ(g.CountNodes(OpType::kConv2d), 73);
  EXPECT_EQ(g.CountNodes(OpType::kMultiboxDetection), 1);
  EXPECT_EQ(g.CountNodes(OpType::kFlattenNHWC), 12);
  EXPECT_EQ(OutputDims(g), (std::vector<std::int64_t>{100, 6}));
}

TEST(ModelZoo, FactoryBuildsEveryName) {
  // Build the structural graphs at full resolution: this only allocates weights, it
  // does not execute, but it verifies every layer's shape arithmetic end to end.
  for (const std::string& name : ModelZooNames()) {
    if (name.rfind("vgg", 0) == 0 || name == "ssd-resnet50") {
      continue;  // skipped here to keep the test's memory footprint small (~GBs)
    }
    Graph g = BuildModel(name);
    EXPECT_GT(g.num_nodes(), 10) << name;
    EXPECT_EQ(g.outputs().size(), 1u) << name;
  }
}

TEST(ModelZoo, UnknownNameDies) { EXPECT_DEATH(BuildModel("alexnet"), "unknown model"); }

TEST(ModelZoo, DeterministicWeights) {
  Graph a = BuildResNet(18, 1, 64);
  Graph b = BuildResNet(18, 1, 64);
  // Same seed: first conv weight constants must match bit-for-bit.
  for (int i = 0; i < a.num_nodes(); ++i) {
    if (a.node(i).type == OpType::kConstant) {
      ASSERT_EQ(b.node(i).type, OpType::kConstant);
      EXPECT_EQ(Tensor::MaxAbsDiff(a.node(i).payload, b.node(i).payload), 0.0);
      break;
    }
  }
}

}  // namespace
}  // namespace neocpu
