// Topology parsing against committed sysfs fixture trees, and the NUMA-aware
// partition planner's invariants: node alignment, primary-before-sibling fill, the
// single-spanning-partition exception, the measured-mode tuning carve-out, and the
// single-socket plan staying bit-for-bit the legacy contiguous split.
#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/metrics.h"
#include "src/runtime/arena_pool.h"
#include "src/runtime/partition.h"
#include "src/runtime/topology.h"

namespace neocpu {
namespace {

std::string Fixture(const std::string& name) {
  return std::string(NEOCPU_SOURCE_DIR) + "/tests/fixtures/sysfs/" + name;
}

std::vector<int> NodeCpus(const CpuTopology& topo, int node) {
  for (const TopologyNode& record : topo.nodes()) {
    if (record.id == node) {
      return record.cpus;
    }
  }
  return {};
}

std::vector<int> PartitionCpus(const CorePartition& part) {
  if (!part.cpus.empty()) {
    return part.cpus;
  }
  std::vector<int> cpus;
  for (int c = 0; c < part.num_workers; ++c) {
    cpus.push_back(part.core_offset + c);
  }
  return cpus;
}

// Every plan must cover disjoint cpus, and every multi-node slice must stay inside
// its reported home node.
void CheckPlanInvariants(const std::vector<CorePartition>& plan,
                         const CpuTopology& topo) {
  std::set<int> seen;
  for (const CorePartition& part : plan) {
    EXPECT_GE(part.num_workers, 1);
    const std::vector<int> cpus = PartitionCpus(part);
    EXPECT_EQ(static_cast<int>(cpus.size()), part.num_workers);
    for (int cpu : cpus) {
      EXPECT_TRUE(seen.insert(cpu).second) << "cpu " << cpu << " in two partitions";
      if (!part.cpus.empty()) {
        EXPECT_EQ(topo.NodeOfCpu(cpu), part.home_node)
            << "cpu " << cpu << " strays off home node " << part.home_node;
      }
    }
  }
}

// ---------------------------------------------------------------- parsing

TEST(ParseCpuList, RangesCommasAndNoise) {
  EXPECT_EQ(ParseCpuList("0-3,8-11"),
            (std::vector<int>{0, 1, 2, 3, 8, 9, 10, 11}));
  EXPECT_EQ(ParseCpuList("7"), (std::vector<int>{7}));
  EXPECT_EQ(ParseCpuList(" 2 , 5 "), (std::vector<int>{2, 5}));
  EXPECT_EQ(ParseCpuList("1,1-2"), (std::vector<int>{1, 2}));  // dedup + sort
  EXPECT_EQ(ParseCpuList("x,7"), (std::vector<int>{7}));       // skip malformed chunk
  EXPECT_TRUE(ParseCpuList("").empty());
  EXPECT_TRUE(ParseCpuList("3-1").empty());  // inverted range produces nothing
}

TEST(TopologyParse, DualSocket) {
  const CpuTopology topo = CpuTopology::FromSysfs(Fixture("dual_socket"));
  EXPECT_EQ(topo.num_online_cpus(), 16);
  EXPECT_EQ(topo.num_nodes(), 2);
  EXPECT_EQ(topo.num_packages(), 2);
  EXPECT_TRUE(topo.multi_node());
  EXPECT_EQ(NodeCpus(topo, 0), (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(NodeCpus(topo, 1), (std::vector<int>{8, 9, 10, 11, 12, 13, 14, 15}));
  EXPECT_EQ(topo.NodeOfCpu(3), 0);
  EXPECT_EQ(topo.NodeOfCpu(12), 1);
  EXPECT_EQ(topo.FirstCpuOfNode(1), 8);
  // No hyperthreads: every cpu is the primary of its own core, LLC per socket.
  EXPECT_EQ(topo.num_primary_cpus(), 16);
  for (const LogicalCpu& cpu : topo.cpus()) {
    EXPECT_TRUE(cpu.primary);
    EXPECT_EQ(cpu.llc, cpu.id < 8 ? 0 : 8);
  }
}

TEST(TopologyParse, SingleSocket) {
  const CpuTopology topo = CpuTopology::FromSysfs(Fixture("single_socket"));
  EXPECT_EQ(topo.num_online_cpus(), 4);
  EXPECT_EQ(topo.num_nodes(), 1);
  EXPECT_FALSE(topo.multi_node());
  EXPECT_EQ(NodeCpus(topo, 0), (std::vector<int>{0, 1, 2, 3}));
}

TEST(TopologyParse, HyperthreadSiblings) {
  const CpuTopology topo = CpuTopology::FromSysfs(Fixture("ht_sibling"));
  EXPECT_EQ(topo.num_online_cpus(), 8);
  EXPECT_EQ(topo.num_primary_cpus(), 4);
  // Linux's split enumeration: primaries 0-3, their siblings 4-7.
  for (const LogicalCpu& cpu : topo.cpus()) {
    EXPECT_EQ(cpu.primary, cpu.id < 4) << "cpu " << cpu.id;
  }
  EXPECT_EQ(topo.nodes().front().primary_cpus, (std::vector<int>{0, 1, 2, 3}));
}

TEST(TopologyParse, HyperthreadDualSocket) {
  const CpuTopology topo = CpuTopology::FromSysfs(Fixture("ht_dual_socket"));
  EXPECT_EQ(topo.num_online_cpus(), 16);
  EXPECT_EQ(topo.num_nodes(), 2);
  EXPECT_EQ(topo.num_primary_cpus(), 8);
  EXPECT_EQ(NodeCpus(topo, 0), (std::vector<int>{0, 1, 2, 3, 8, 9, 10, 11}));
  EXPECT_EQ(NodeCpus(topo, 1), (std::vector<int>{4, 5, 6, 7, 12, 13, 14, 15}));
}

TEST(TopologyParse, OfflineCpuIsExcluded) {
  const CpuTopology topo = CpuTopology::FromSysfs(Fixture("offline_cpu"));
  EXPECT_EQ(topo.num_online_cpus(), 3);
  EXPECT_EQ(topo.NodeOfCpu(2), -1);  // offline cpu has no node
  EXPECT_EQ(NodeCpus(topo, 0), (std::vector<int>{0, 1, 3}));
}

TEST(TopologyParse, MissingNodeDirMeansOneNode) {
  const CpuTopology topo = CpuTopology::FromSysfs(Fixture("no_numa"));
  EXPECT_EQ(topo.num_online_cpus(), 4);
  EXPECT_EQ(topo.num_nodes(), 1);
  EXPECT_FALSE(topo.multi_node());
  EXPECT_EQ(topo.nodes().front().id, 0);
}

TEST(TopologyParse, MissingRootYieldsEmptyTopology) {
  const CpuTopology topo = CpuTopology::FromSysfs(Fixture("does_not_exist"));
  EXPECT_TRUE(topo.cpus().empty());
  EXPECT_EQ(topo.num_nodes(), 0);
}

TEST(TopologyParse, HostTopologyIsUsable) {
  // Whatever the host looks like, the cached topology must be non-degenerate: the
  // planner and the server build on these invariants.
  const CpuTopology& topo = HostTopology();
  EXPECT_GE(topo.num_online_cpus(), 1);
  EXPECT_GE(topo.num_nodes(), 1);
  for (const TopologyNode& node : topo.nodes()) {
    EXPECT_FALSE(node.cpus.empty());
  }
}

TEST(TopologyWithoutCpus, PromotesSiblingToPrimary) {
  const CpuTopology topo = CpuTopology::FromSysfs(Fixture("ht_sibling"));
  const CpuTopology carved = topo.WithoutCpus({0});
  EXPECT_EQ(carved.num_online_cpus(), 7);
  EXPECT_EQ(carved.NodeOfCpu(0), -1);
  // cpu 4 (core 0's sibling) inherits the primary slot cpu 0 vacated.
  const std::vector<int> primaries = carved.nodes().front().primary_cpus;
  EXPECT_NE(std::find(primaries.begin(), primaries.end(), 4), primaries.end());
  EXPECT_EQ(carved.num_primary_cpus(), 4);
}

// ---------------------------------------------------------------- planner

TEST(PlanCorePartitions, SingleSocketMatchesLegacyContiguousSplit) {
  // Regression pin: on a single-node topology the plan must be bit-for-bit the
  // pre-NUMA contiguous split (earlier partitions absorb the remainder, cpus list
  // empty, home node 0).
  struct Case {
    int partitions;
    int total;
    std::vector<std::pair<int, int>> expect;  // (core_offset, num_workers)
  };
  const Case cases[] = {
      {2, 8, {{0, 4}, {4, 4}}},
      {3, 8, {{0, 3}, {3, 3}, {6, 2}}},
      {1, 4, {{0, 4}}},
      {4, 4, {{0, 1}, {1, 1}, {2, 1}, {3, 1}}},
      {8, 4, {{0, 1}, {1, 1}, {2, 1}, {3, 1}}},  // clamped to one core each
      {2, 3, {{0, 2}, {2, 1}}},
  };
  for (const Case& c : cases) {
    const std::vector<CorePartition> plan =
        PlanCorePartitions(c.partitions, c.total, CpuTopology::SingleNode(c.total));
    ASSERT_EQ(plan.size(), c.expect.size()) << c.partitions << "x" << c.total;
    for (std::size_t i = 0; i < plan.size(); ++i) {
      EXPECT_EQ(plan[i].core_offset, c.expect[i].first);
      EXPECT_EQ(plan[i].num_workers, c.expect[i].second);
      EXPECT_EQ(plan[i].home_node, 0);
      EXPECT_TRUE(plan[i].cpus.empty()) << "single-node slices stay contiguous";
    }
  }
}

TEST(PlanCorePartitions, DualSocketOnePartitionPerNode) {
  const CpuTopology topo = CpuTopology::FromSysfs(Fixture("dual_socket"));
  const std::vector<CorePartition> plan = PlanCorePartitions(2, 16, topo);
  ASSERT_EQ(plan.size(), 2u);
  CheckPlanInvariants(plan, topo);
  EXPECT_EQ(plan[0].home_node, 0);
  EXPECT_EQ(plan[0].cpus, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(plan[1].home_node, 1);
  EXPECT_EQ(plan[1].cpus, (std::vector<int>{8, 9, 10, 11, 12, 13, 14, 15}));
}

TEST(PlanCorePartitions, MorePartitionsThanNodes) {
  const CpuTopology topo = CpuTopology::FromSysfs(Fixture("dual_socket"));
  // 4 partitions over 2 nodes: two per node, none straddling.
  std::vector<CorePartition> plan = PlanCorePartitions(4, 16, topo);
  ASSERT_EQ(plan.size(), 4u);
  CheckPlanInvariants(plan, topo);
  for (const CorePartition& part : plan) {
    EXPECT_EQ(part.num_workers, 4);
  }
  // An odd count still never straddles: 3 partitions land 2 on one node, 1 on the
  // other, and every slice keeps a single home node.
  plan = PlanCorePartitions(3, 16, topo);
  ASSERT_EQ(plan.size(), 3u);
  CheckPlanInvariants(plan, topo);
  int total_cpus = 0;
  for (const CorePartition& part : plan) {
    total_cpus += part.num_workers;
  }
  EXPECT_EQ(total_cpus, 16);
}

TEST(PlanCorePartitions, UnevenNodesSplitProportionally) {
  const CpuTopology topo = CpuTopology::FromSysfs(Fixture("dual_socket_uneven"));
  // Node 0 holds 6 cpus, node 1 holds 4: two partitions land one per node with the
  // node's full width.
  std::vector<CorePartition> plan = PlanCorePartitions(2, 10, topo);
  ASSERT_EQ(plan.size(), 2u);
  CheckPlanInvariants(plan, topo);
  EXPECT_EQ(plan[0].home_node, 0);
  EXPECT_EQ(plan[0].num_workers, 6);
  EXPECT_EQ(plan[1].home_node, 1);
  EXPECT_EQ(plan[1].num_workers, 4);
  // Five partitions apportion 3:2 by capacity.
  plan = PlanCorePartitions(5, 10, topo);
  ASSERT_EQ(plan.size(), 5u);
  CheckPlanInvariants(plan, topo);
  int on_node0 = 0;
  for (const CorePartition& part : plan) {
    on_node0 += part.home_node == 0 ? 1 : 0;
  }
  EXPECT_EQ(on_node0, 3);
}

TEST(PlanCorePartitions, SinglePartitionPrefersOneNodeThenSpans) {
  const CpuTopology topo = CpuTopology::FromSysfs(Fixture("dual_socket"));
  // Fits the largest node: stays node-local.
  std::vector<CorePartition> plan = PlanCorePartitions(1, 8, topo);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].cpus, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(plan[0].home_node, 0);
  // Needs the whole host: the documented exception — one partition may straddle.
  plan = PlanCorePartitions(1, 16, topo);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].num_workers, 16);
}

TEST(PlanCorePartitions, PrimariesBeforeHyperthreadSiblings) {
  const CpuTopology topo = CpuTopology::FromSysfs(Fixture("ht_dual_socket"));
  // 8 workers over 2 nodes: each partition takes its node's 4 physical cores and no
  // HT siblings.
  const std::vector<CorePartition> plan = PlanCorePartitions(2, 8, topo);
  ASSERT_EQ(plan.size(), 2u);
  CheckPlanInvariants(plan, topo);
  EXPECT_EQ(plan[0].cpus, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(plan[1].cpus, (std::vector<int>{4, 5, 6, 7}));
  // Oversubscribed past the primaries, siblings join their own node's slice.
  const std::vector<CorePartition> full = PlanCorePartitions(2, 16, topo);
  CheckPlanInvariants(full, topo);
  EXPECT_EQ(full[0].num_workers, 8);
  EXPECT_EQ(full[1].num_workers, 8);
}

TEST(PlanCorePartitions, WorkerBudgetClampsToCapacity) {
  const CpuTopology topo = CpuTopology::FromSysfs(Fixture("dual_socket"));
  const std::vector<CorePartition> plan = PlanCorePartitions(2, 64, topo);
  int total = 0;
  for (const CorePartition& part : plan) {
    total += part.num_workers;
  }
  EXPECT_EQ(total, 16) << "budget beyond the host clamps to online cpus";
}

// ---------------------------------------------------------------- tuning carve-out

TEST(PlanServingAndTuning, CarvesHyperthreadSiblings) {
  const CpuTopology topo = CpuTopology::FromSysfs(Fixture("ht_dual_socket"));
  const ServingPlan plan = PlanServingAndTuning(2, 8, topo);
  ASSERT_TRUE(plan.has_dedicated_tuning);
  // The two highest HT siblings of the last node — cycles the primary-first serving
  // fill would only reach under full subscription.
  EXPECT_EQ(plan.tuning.cpus, (std::vector<int>{14, 15}));
  EXPECT_EQ(plan.tuning.home_node, 1);
  std::set<int> tuning(plan.tuning.cpus.begin(), plan.tuning.cpus.end());
  for (const CorePartition& part : plan.serving) {
    for (int cpu : PartitionCpus(part)) {
      EXPECT_EQ(tuning.count(cpu), 0u) << "serving cpu " << cpu << " on tuning slice";
    }
  }
}

TEST(PlanServingAndTuning, NoHyperthreadsStealsLastCpu) {
  const CpuTopology topo = CpuTopology::FromSysfs(Fixture("dual_socket"));
  const ServingPlan plan = PlanServingAndTuning(2, 16, topo);
  ASSERT_TRUE(plan.has_dedicated_tuning);
  EXPECT_EQ(plan.tuning.cpus, (std::vector<int>{15}));
  EXPECT_EQ(plan.tuning.home_node, 1);
  int serving_cpus = 0;
  for (const CorePartition& part : plan.serving) {
    serving_cpus += part.num_workers;
    for (int cpu : PartitionCpus(part)) {
      EXPECT_NE(cpu, 15);
    }
  }
  EXPECT_EQ(serving_cpus, 15);
}

TEST(PlanServingAndTuning, OneCpuHostSharesInsteadOfCarving) {
  const ServingPlan plan = PlanServingAndTuning(1, 1, CpuTopology::SingleNode(1));
  EXPECT_FALSE(plan.has_dedicated_tuning);
  ASSERT_EQ(plan.serving.size(), 1u);
  EXPECT_EQ(plan.serving[0].num_workers, 1);
  EXPECT_EQ(plan.tuning.num_workers, 1);
}

TEST(PlanServingAndTuning, SingleSocketKeepsServingContiguous) {
  const CpuTopology topo = CpuTopology::FromSysfs(Fixture("single_socket"));
  const ServingPlan plan = PlanServingAndTuning(2, 4, topo);
  ASSERT_TRUE(plan.has_dedicated_tuning);
  EXPECT_EQ(plan.tuning.cpus, (std::vector<int>{3}));
  // Serving over the remaining prefix stays the legacy contiguous shape.
  ASSERT_EQ(plan.serving.size(), 2u);
  EXPECT_EQ(plan.serving[0].core_offset, 0);
  EXPECT_EQ(plan.serving[0].num_workers, 2);
  EXPECT_EQ(plan.serving[1].core_offset, 2);
  EXPECT_EQ(plan.serving[1].num_workers, 1);
  EXPECT_TRUE(plan.serving[0].cpus.empty());
}

// ---------------------------------------------------------------- engines + arena

TEST(MakePartitionEngine, SingleCoreSliceIsPinnedSerial) {
  CorePartition part;
  part.core_offset = 0;
  part.num_workers = 1;
  const std::unique_ptr<ThreadEngine> pinned = MakePartitionEngine(part, true);
  EXPECT_STREQ(pinned->Name(), "pinned-serial");
  EXPECT_EQ(pinned->NumWorkers(), 1);
  // The engine must actually run work on the calling thread.
  int ran = 0;
  pinned->ParallelRun(3, [&](int, int) { ++ran; });
  EXPECT_EQ(ran, 3);
  const std::unique_ptr<ThreadEngine> unpinned = MakePartitionEngine(part, false);
  EXPECT_STREQ(unpinned->Name(), "serial");
}

TEST(Arena, NodeBoundArenaReportsPerNodeGauge) {
  Gauge* gauge = MetricsRegistry::Global().GetGauge(
      "neocpu_arena_bytes_node_0", "Arena bytes resident on NUMA node 0");
  const double before = gauge->Value();
  {
    Arena arena;
    arena.set_home_node(0);
    arena.Reserve(1 << 16);
    EXPECT_GE(gauge->Value(), before + (1 << 16));
    // Growth moves the accounting, never double-counts.
    arena.Reserve(1 << 18);
    EXPECT_GE(gauge->Value(), before + (1 << 18));
  }
  EXPECT_DOUBLE_EQ(gauge->Value(), before);  // destructor returns the bytes
}

TEST(Arena, LateNodeBindMovesAccounting) {
  Gauge* node0 = MetricsRegistry::Global().GetGauge(
      "neocpu_arena_bytes_node_0", "Arena bytes resident on NUMA node 0");
  const double before = node0->Value();
  Arena arena;
  arena.Reserve(4096);  // unbound: no node gauge yet
  EXPECT_DOUBLE_EQ(node0->Value(), before);
  arena.set_home_node(0);
  arena.Reserve(8192);  // first bound growth claims the full capacity
  EXPECT_GE(node0->Value(), before + 8192);
}

}  // namespace
}  // namespace neocpu
