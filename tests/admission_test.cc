// Admission-control and overload-semantics tests.
//
// Three layers, increasingly end-to-end:
//   * DynamicBatcher alone: deterministic shedding at queue_limit, the arena-bytes
//     charge/release ledger, and latency-lane-first popping.
//   * InferenceServer::TrySubmit: typed verdicts (unknown model, shape mismatch,
//     arena shed with retry-after, shutdown) and the per-lane latency split under a
//     saturated single executor.
//   * The acceptance criterion from the wire front end: at an offered concurrency
//     well past saturation the server SHEDS (typed overloaded replies with a
//     retry-after hint) instead of queueing without bound, the accepted tail stays
//     bounded, the in-flight arena gauge never exceeds its cap, and GET /metrics
//     keeps answering while the storm runs.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "src/base/rng.h"
#include "src/base/timer.h"
#include "src/models/model_zoo.h"
#include "src/neocpu.h"
#include "src/serve/frontend/frontend_server.h"
#include "src/serve/frontend/wire_client.h"

namespace neocpu {
namespace {

Tensor SampleInput(std::uint64_t seed, std::vector<std::int64_t> dims = {1, 3, 32, 32}) {
  Rng rng(seed);
  return Tensor::Random(std::move(dims), rng, 0.0f, 1.0f, Layout::NCHW());
}

ServeRequest MakeRequest(RequestLane lane, std::size_t arena_bytes = 0) {
  ServeRequest r;
  r.model = "tiny";
  r.input = SampleInput(1, {1, 2, 4, 4});
  r.batchable = true;
  r.enqueue_time = std::chrono::steady_clock::now();
  r.lane = lane;
  r.arena_bytes = arena_bytes;
  return r;
}

double PercentileOf(std::vector<double> values, double pct) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const double rank = pct / 100.0 * static_cast<double>(values.size() - 1);
  return values[static_cast<std::size_t>(rank + 0.5)];
}

// ---------------------------------------------------------------------------
// DynamicBatcher admission (no server, fully deterministic).
// ---------------------------------------------------------------------------

TEST(Admission, TryPushShedsWhenQueueFull) {
  BatchingOptions options;
  options.max_batch_size = 8;
  options.max_delay_ms = 10000.0;  // nothing flushes by delay during the test
  options.queue_limit = 2;
  DynamicBatcher batcher(options);
  EXPECT_EQ(batcher.TryPush(MakeRequest(RequestLane::kLatency)), AdmitResult::kAccepted);
  EXPECT_EQ(batcher.TryPush(MakeRequest(RequestLane::kLatency)), AdmitResult::kAccepted);
  EXPECT_EQ(batcher.TryPush(MakeRequest(RequestLane::kLatency)),
            AdmitResult::kShedQueueFull);
  // Both lanes share the limit: a throughput push sheds too.
  EXPECT_EQ(batcher.TryPush(MakeRequest(RequestLane::kThroughput)),
            AdmitResult::kShedQueueFull);
  const AdmissionStats stats = batcher.GetAdmissionStats();
  EXPECT_EQ(stats.sheds_queue_full, 2u);
  EXPECT_EQ(stats.sheds_arena, 0u);
  EXPECT_EQ(batcher.PendingCount(), 2u);
  batcher.Shutdown();  // drain
  std::vector<ServeRequest> batch;
  while (batcher.PopBatch(&batch)) {
  }
}

TEST(Admission, ArenaLedgerChargesAndReleases) {
  BatchingOptions options;
  options.max_delay_ms = 10000.0;
  options.queue_limit = 100;
  options.arena_bytes_cap = 100;
  DynamicBatcher batcher(options);
  EXPECT_EQ(batcher.TryPush(MakeRequest(RequestLane::kLatency, 60)),
            AdmitResult::kAccepted);
  // 60 + 60 > 100: shed, and the ledger is untouched by the shed.
  EXPECT_EQ(batcher.TryPush(MakeRequest(RequestLane::kLatency, 60)),
            AdmitResult::kShedArenaBytes);
  EXPECT_EQ(batcher.GetAdmissionStats().inflight_arena_bytes, 60u);
  // 60 + 40 == 100: exactly at the cap is admissible.
  EXPECT_EQ(batcher.TryPush(MakeRequest(RequestLane::kLatency, 40)),
            AdmitResult::kAccepted);
  EXPECT_EQ(batcher.GetAdmissionStats().inflight_arena_bytes, 100u);
  // Releasing the first request's charge reopens headroom.
  batcher.ReleaseArena(60);
  EXPECT_EQ(batcher.GetAdmissionStats().inflight_arena_bytes, 40u);
  EXPECT_EQ(batcher.TryPush(MakeRequest(RequestLane::kLatency, 60)),
            AdmitResult::kAccepted);
  // A single request bigger than the whole cap can never be admitted — the cap is a
  // hard bound on the gauge, not a soft target.
  EXPECT_EQ(batcher.TryPush(MakeRequest(RequestLane::kLatency, 1000)),
            AdmitResult::kShedArenaBytes);
  EXPECT_EQ(batcher.GetAdmissionStats().sheds_arena, 2u);
  batcher.Shutdown();
  std::vector<ServeRequest> batch;
  while (batcher.PopBatch(&batch)) {
  }
}

TEST(Admission, LatencyLanePopsBeforeThroughputLane) {
  BatchingOptions options;
  options.max_batch_size = 4;
  options.max_delay_ms = 0.0;  // flush immediately
  DynamicBatcher batcher(options);
  // Throughput requests arrive FIRST, then a latency request. The latency lane must
  // still be served first.
  ServeRequest tp1 = MakeRequest(RequestLane::kThroughput);
  ServeRequest tp2 = MakeRequest(RequestLane::kThroughput);
  ServeRequest lat = MakeRequest(RequestLane::kLatency);
  ASSERT_EQ(batcher.TryPush(std::move(tp1)), AdmitResult::kAccepted);
  ASSERT_EQ(batcher.TryPush(std::move(tp2)), AdmitResult::kAccepted);
  ASSERT_EQ(batcher.TryPush(std::move(lat)), AdmitResult::kAccepted);
  std::vector<ServeRequest> batch;
  ASSERT_TRUE(batcher.PopBatch(&batch));
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].lane, RequestLane::kLatency);
  ASSERT_TRUE(batcher.PopBatch(&batch));
  ASSERT_EQ(batch.size(), 2u);  // the two throughput requests batch together
  EXPECT_EQ(batch[0].lane, RequestLane::kThroughput);
  batcher.Shutdown();
  while (batcher.PopBatch(&batch)) {
  }
}

// ---------------------------------------------------------------------------
// InferenceServer::TrySubmit verdicts.
// ---------------------------------------------------------------------------

TEST(Admission, TrySubmitTypedVerdicts) {
  ServerOptions options;
  options.num_executors = 1;
  options.bind_threads = false;
  options.background_retune = false;
  InferenceServer server(options);
  server.RegisterModel("tiny", Compile(BuildTinyCnn()));

  SubmitTicket unknown = server.TrySubmit("nope", SampleInput(1));
  EXPECT_EQ(unknown.status, SubmitStatus::kUnknownModel);
  EXPECT_FALSE(unknown.ok());

  SubmitTicket mismatch = server.TrySubmit("tiny", SampleInput(1, {1, 3, 16, 16}));
  EXPECT_EQ(mismatch.status, SubmitStatus::kShapeMismatch);

  SubmitTicket ok = server.TrySubmit("tiny", SampleInput(2));
  ASSERT_TRUE(ok.ok());
  ok.result.get();

  server.Shutdown();
  SubmitTicket late = server.TrySubmit("tiny", SampleInput(3));
  EXPECT_EQ(late.status, SubmitStatus::kShuttingDown);
}

TEST(Admission, ArenaCapShedsWithRetryAfterHint) {
  // A cap below one request's planned footprint sheds EVERY submit, deterministically.
  ServerOptions options;
  options.num_executors = 1;
  options.bind_threads = false;
  options.background_retune = false;
  options.batching.arena_bytes_cap = 1;
  options.batching.shed_retry_after_ms = 7.0;
  InferenceServer server(options);
  ModelEntry* entry = server.RegisterModel("tiny", Compile(BuildTinyCnn()));
  ASSERT_GT(entry->arena_bytes_per_sample(), 1u);

  SubmitTicket shed = server.TrySubmit("tiny", SampleInput(1));
  EXPECT_EQ(shed.status, SubmitStatus::kShedArenaBytes);
  EXPECT_EQ(shed.retry_after_ms, 7.0);

  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.requests_shed, 1u);
  EXPECT_EQ(stats.requests_shed_arena, 1u);
  EXPECT_EQ(stats.arena_bytes_cap, 1u);
  EXPECT_EQ(stats.inflight_arena_bytes, 0u);
  // The stats JSON used by GET /stats carries the admission fields.
  const std::string json = stats.ToJson();
  EXPECT_NE(json.find("\"requests_shed\": 1"), std::string::npos) << json;
}

TEST(Admission, ArenaGaugeNeverExceedsCapUnderConcurrency) {
  ServerOptions options;
  options.num_executors = 1;
  options.bind_threads = false;
  options.background_retune = false;
  options.batching.max_batch_size = 2;
  options.batching.queue_limit = 64;
  InferenceServer server(options);
  ModelEntry* entry = server.RegisterModel("tiny", Compile(BuildTinyCnn()));
  const std::size_t per_sample = entry->arena_bytes_per_sample();
  ASSERT_GT(per_sample, 0u);
  // Room for three in-flight requests; everything past that sheds.
  const std::size_t cap = 3 * per_sample;
  // Rebuild the server with the cap (options are taken at construction).
  options.batching.arena_bytes_cap = cap;
  InferenceServer capped(options);
  capped.RegisterModel("tiny", Compile(BuildTinyCnn()));

  Gauge* gauge = MetricsRegistry::Global().GetGauge("neocpu_serve_inflight_arena_bytes");
  std::atomic<bool> stop{false};
  std::atomic<bool> violated{false};
  std::thread watcher([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (gauge->Value() > static_cast<double>(cap)) {
        violated.store(true, std::memory_order_relaxed);
      }
      std::this_thread::yield();
    }
  });

  std::atomic<std::uint64_t> sheds{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      std::vector<std::future<Tensor>> pending;
      for (int i = 0; i < 40; ++i) {
        SubmitTicket ticket = capped.TrySubmit(
            "tiny", SampleInput(static_cast<std::uint64_t>(p * 100 + i)));
        if (ticket.ok()) {
          pending.push_back(std::move(ticket.result));
        } else {
          sheds.fetch_add(1, std::memory_order_relaxed);
        }
      }
      for (auto& f : pending) {
        f.get();
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  stop.store(true, std::memory_order_relaxed);
  watcher.join();

  EXPECT_FALSE(violated.load()) << "in-flight arena gauge exceeded its cap of " << cap;
  const ServerStats stats = capped.Stats();
  EXPECT_EQ(stats.requests_shed, sheds.load());
  EXPECT_GT(stats.requests_shed, 0u)
      << "4 producers against a 3-request arena cap never shed — not saturated";
  // Everything is released after completion, but the worker releases a batch's charge
  // just AFTER fulfilling its promises — drain that window before asserting zero.
  std::size_t inflight = stats.inflight_arena_bytes;
  for (int spin = 0; spin < 2000 && inflight != 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    inflight = capped.Stats().inflight_arena_bytes;
  }
  EXPECT_EQ(inflight, 0u);
}

TEST(Admission, LatencyLaneBeatsThroughputLaneUnderSaturation) {
  // One executor, batch of one: completion order IS pop order, so queue wait dominates
  // per-lane latency and the priority pop must put the latency lane's p99 below the
  // throughput lane's. Throughput requests are submitted FIRST so FIFO would favor
  // them; only the lane priority can invert that.
  ServerOptions options;
  options.num_executors = 1;
  options.bind_threads = false;
  options.background_retune = false;
  options.batching.max_batch_size = 1;
  options.batching.queue_limit = 4096;
  InferenceServer server(options);
  server.RegisterModel("tiny", Compile(BuildTinyCnn()));

  constexpr int kPerLane = 24;
  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < kPerLane; ++i) {
    SubmitTicket t = server.TrySubmit("tiny", SampleInput(static_cast<std::uint64_t>(i)),
                                      SubmitOptions{RequestLane::kThroughput});
    ASSERT_TRUE(t.ok());
    futures.push_back(std::move(t.result));
  }
  for (int i = 0; i < kPerLane; ++i) {
    SubmitTicket t =
        server.TrySubmit("tiny", SampleInput(static_cast<std::uint64_t>(1000 + i)),
                         SubmitOptions{RequestLane::kLatency});
    ASSERT_TRUE(t.ok());
    futures.push_back(std::move(t.result));
  }
  for (auto& f : futures) {
    f.get();
  }
  const ServerStats stats = server.Stats();
  const LatencySnapshot lat = stats.lane_latency[static_cast<int>(RequestLane::kLatency)];
  const LatencySnapshot tp =
      stats.lane_latency[static_cast<int>(RequestLane::kThroughput)];
  ASSERT_EQ(lat.count, static_cast<std::size_t>(kPerLane));
  ASSERT_EQ(tp.count, static_cast<std::size_t>(kPerLane));
  EXPECT_LT(lat.p99_ms, tp.p99_ms)
      << "latency lane p99 " << lat.p99_ms << "ms should undercut throughput lane p99 "
      << tp.p99_ms << "ms";
}

// ---------------------------------------------------------------------------
// End-to-end acceptance: overload through the wire front end.
// ---------------------------------------------------------------------------

TEST(Admission, OverloadShedsAndKeepsAcceptedTailBounded) {
  ServerOptions options;
  options.num_executors = 1;
  options.bind_threads = false;
  options.background_retune = false;
  options.batching.max_batch_size = 1;
  options.batching.queue_limit = 4;  // capacity: 1 executing + 4 waiting
  options.batching.shed_retry_after_ms = 5.0;
  InferenceServer server(options);
  server.RegisterModel("tiny", Compile(BuildTinyCnn()));
  FrontendServer frontend(&server);
  ASSERT_TRUE(frontend.Start()) << frontend.last_error();

  // Offered concurrency of 12 closed-loop clients against a capacity of 5 in-flight
  // requests: well past 2x saturation, so admission MUST shed.
  constexpr int kClients = 12;
  constexpr int kCallsPerClient = 60;
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> other{0};
  std::atomic<bool> bad_retry_hint{false};
  std::mutex latencies_mutex;
  std::vector<double> accepted_ms;

  std::atomic<bool> storm_done{false};
  // /metrics must keep answering while the storm runs.
  std::atomic<int> metrics_ok{0};
  std::thread scraper([&] {
    while (!storm_done.load(std::memory_order_relaxed)) {
      WireClient probe;
      if (!probe.Connect("127.0.0.1", frontend.port())) {
        continue;
      }
      const std::string get = "GET /metrics HTTP/1.1\r\n\r\n";
      probe.SendRaw(reinterpret_cast<const std::uint8_t*>(get.data()), get.size());
      std::string response;
      char buf[4096];
      ssize_t n;
      while ((n = ::recv(probe.fd(), buf, sizeof(buf), 0)) > 0) {
        response.append(buf, static_cast<std::size_t>(n));
      }
      if (response.find("200 OK") != std::string::npos &&
          response.find("neocpu_serve_requests_shed_total") != std::string::npos) {
        metrics_ok.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      WireClient client;
      if (!client.Connect("127.0.0.1", frontend.port())) {
        other.fetch_add(kCallsPerClient, std::memory_order_relaxed);
        return;
      }
      for (int i = 0; i < kCallsPerClient; ++i) {
        Timer timer;
        WireResponse response = client.Call(
            {"tiny", RequestLane::kLatency,
             SampleInput(static_cast<std::uint64_t>(c * 1000 + i))});
        const double ms = timer.Millis();
        if (response.ok()) {
          accepted.fetch_add(1, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(latencies_mutex);
          accepted_ms.push_back(ms);
        } else if (response.error.code == WireErrorCode::kOverloaded) {
          shed.fetch_add(1, std::memory_order_relaxed);
          if (response.error.retry_after_ms == 0) {
            bad_retry_hint.store(true, std::memory_order_relaxed);
          }
        } else {
          other.fetch_add(1, std::memory_order_relaxed);
          return;  // transport failure: stop this client
        }
      }
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  storm_done.store(true, std::memory_order_relaxed);
  scraper.join();
  frontend.Stop();

  // The acceptance criterion: under ~2x+ saturation the server sheds (with a usable
  // retry hint), still accepts real work, and the accepted tail stays bounded — the
  // p999/p50 ratio is capped by the queue, where an unbounded queue lets the tail
  // grow with the backlog.
  EXPECT_GT(shed.load(), 0u) << "no sheds at 12x offered concurrency vs capacity 5";
  EXPECT_GT(accepted.load(), 0u);
  EXPECT_FALSE(bad_retry_hint.load()) << "a shed reply carried no retry-after hint";
  EXPECT_EQ(other.load(), 0u) << "transport-level failures during the storm";
  EXPECT_GT(metrics_ok.load(), 0) << "/metrics never answered during the storm";
  {
    std::lock_guard<std::mutex> lock(latencies_mutex);
    ASSERT_GE(accepted_ms.size(), 60u);
    const double p50 = PercentileOf(accepted_ms, 50.0);
    const double p999 = PercentileOf(accepted_ms, 99.9);
    // Every accepted request waits behind at most queue_limit + 1 others, so the tail
    // is a small multiple of the median even on a timeshared single-core host. The
    // factor is deliberately generous; the property being gated is "bounded", not
    // "fast".
    EXPECT_LT(p999, 40.0 * (p50 + 1.0))
        << "accepted p999 " << p999 << "ms vs p50 " << p50 << "ms";
  }
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.requests_shed, shed.load());
  EXPECT_EQ(stats.queue_limit, 4u);
}

}  // namespace
}  // namespace neocpu
