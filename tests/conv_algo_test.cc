// Per-layer convolution algorithm selection (graph-dispatched Winograd).
//
// Covers the selection loop end to end: the analytic cost model ranks algorithms per
// shape (the Winograd-vs-direct winner flips with layer geometry), the global search
// assigns Winograd to real zoo layers, the choice round-trips through TuningCache and
// module serialization, forced-algo overrides work, and graph-dispatched Winograd is
// numerically faithful and bitwise identical between the planned (zero-allocation) and
// allocating execution paths.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/core/compiler.h"
#include "src/core/presets.h"
#include "src/core/serialization.h"
#include "src/graph/builder.h"
#include "src/models/model_zoo.h"
#include "src/tuning/local_search.h"
#include "src/tuning/tuning_cache.h"

namespace neocpu {
namespace {

constexpr double kRtol = 5e-3;  // deep fp32 chains with reassociation
constexpr double kAtol = 5e-3;

std::string TempPath(const char* name) { return ::testing::TempDir() + "/" + name; }

Tensor InputFor(const Graph& model, std::uint64_t seed = 23) {
  Rng rng(seed);
  for (int i = 0; i < model.num_nodes(); ++i) {
    if (model.node(i).type == OpType::kInput) {
      return Tensor::Random(model.node(i).out_dims, rng, -1.0f, 1.0f, Layout::NCHW());
    }
  }
  ADD_FAILURE() << "no input node";
  return {};
}

int CountConvKernels(const Graph& g, ConvKernelKind kind) {
  int n = 0;
  for (int id = 0; id < g.num_nodes(); ++id) {
    const Node& node = g.node(id);
    n += node.IsConv() && node.attrs.kernel == kind;
  }
  return n;
}

// The workhorse for "Winograd actually got picked by global search": VGG-11 at image 64
// on the EPYC AVX2 profile — its large-channel mid-spatial 3x3 layers are squarely in
// Winograd's modelled sweet spot, while the stem and the L3-overflowing 512-channel
// layers are not.
CompiledModel CompileVggAvx2() {
  Graph model = BuildVgg(11, 1, 64);
  return Compile(model, NeoCpuOptions(Target::EpycAvx2()));
}

TEST(ConvAlgoCost, WinnerFlipsWithLayerShape) {
  const Target t = Target::EpycAvx2();
  // Large channels, mid spatial extent: Winograd's 2.25x MAC saving dominates.
  Conv2dParams big{1, 256, 16, 16, 256, 3, 3, 1, 1, 1, 1};
  EXPECT_LT(AnalyticConvMs(big, AlgoSchedule(ConvAlgo::kWinograd), t),
            AnalyticConvMs(big, ConvSchedule{8, 8, 8, true}, t));
  // Tiny channel count: tile transforms dominate, the blocked template wins.
  Conv2dParams small{1, 3, 64, 64, 8, 3, 3, 1, 1, 1, 1};
  EXPECT_GT(AnalyticConvMs(small, AlgoSchedule(ConvAlgo::kWinograd), t),
            AnalyticConvMs(small, ConvSchedule{3, 8, 8, true}, t));
  // Huge channel count: U falls out of the L3, Winograd pays DRAM per tile.
  Conv2dParams huge{1, 512, 8, 8, 512, 3, 3, 1, 1, 1, 1};
  EXPECT_GT(AnalyticConvMs(huge, AlgoSchedule(ConvAlgo::kWinograd), t),
            AnalyticConvMs(huge, ConvSchedule{8, 8, 4, true}, t));
  // The reference loop nest never wins.
  EXPECT_GT(AnalyticConvMs(big, AlgoSchedule(ConvAlgo::kReference), t),
            AnalyticConvMs(big, ConvSchedule{8, 8, 8, true}, t));
}

TEST(ConvAlgoSearch, LocalSearchRanksAlgorithmsAlongsideBlockings) {
  Conv2dParams p{1, 64, 28, 28, 64, 3, 3, 1, 1, 1, 1};
  LocalSearchResult r =
      LocalSearchConv(p, Target::SkylakeAvx512(), CostMode::kAnalytic, true);
  EXPECT_NE(r.BestForAlgo(ConvAlgo::kWinograd), nullptr);
  EXPECT_NE(r.BestForAlgo(ConvAlgo::kIm2col), nullptr);
  EXPECT_NE(r.BestForAlgo(ConvAlgo::kDirectNCHWc), nullptr);
  // 1x1 convolutions are outside Winograd's domain and must not rank it.
  Conv2dParams pointwise{1, 64, 28, 28, 64, 1, 1, 1, 1, 0, 0};
  LocalSearchResult r1 =
      LocalSearchConv(pointwise, Target::SkylakeAvx512(), CostMode::kAnalytic, true);
  EXPECT_EQ(r1.BestForAlgo(ConvAlgo::kWinograd), nullptr);
  EXPECT_NE(r1.BestForAlgo(ConvAlgo::kIm2col), nullptr);
}

TEST(ConvAlgoSearch, StaleCacheEntriesRegainAlgorithmCandidatesOnHit) {
  // A cache warm-started from a pre-algorithm (format v2) file ranks only direct
  // blockings. A hit must widen the entry with the missing algorithm candidates —
  // otherwise a warm start would silently foreclose the algorithm choice forever.
  const Target t = Target::SkylakeAvx512();
  Conv2dParams p{1, 32, 14, 14, 32, 3, 3, 1, 1, 1, 1};
  const WorkloadKey key = WorkloadKey::Of(p, t, CostMode::kAnalytic, true);
  TuningCache cache;
  {
    LocalSearchResult direct_only;
    direct_only.ranked.push_back(
        ScheduleCost{ConvSchedule{16, 16, 8, true}, 1.0});  // v2-era entry
    cache.Insert(key, std::move(direct_only));
  }
  bool hit = false;
  LocalSearchResult widened =
      LocalSearchConv(p, t, CostMode::kAnalytic, true, nullptr, &cache, &hit);
  EXPECT_TRUE(hit);
  EXPECT_NE(widened.BestForAlgo(ConvAlgo::kWinograd), nullptr);
  EXPECT_NE(widened.BestForAlgo(ConvAlgo::kIm2col), nullptr);
  // The widened result replaced the cache entry: the next hit is complete as-is.
  auto cached = cache.Find(key);
  ASSERT_NE(cached, nullptr);
  EXPECT_NE(cached->BestForAlgo(ConvAlgo::kWinograd), nullptr);
}

TEST(ConvAlgoSearch, GlobalSearchSelectsWinogradOnVgg) {
  CompiledModel compiled = CompileVggAvx2();
  EXPECT_GE(CountConvKernels(compiled.graph(), ConvKernelKind::kWinograd), 1)
      << "no conv layer selected Winograd on the AVX2 profile";
  // Winograd convs carry the algorithm on their schedule and pre-transformed weights
  // {4, 4, OC, IC}.
  for (int id = 0; id < compiled.graph().num_nodes(); ++id) {
    const Node& node = compiled.graph().node(id);
    if (!node.IsConv() || node.attrs.kernel != ConvKernelKind::kWinograd) {
      continue;
    }
    EXPECT_EQ(node.attrs.schedule.algo, ConvAlgo::kWinograd);
    const Tensor& w = compiled.graph().node(node.inputs[1]).payload;
    ASSERT_EQ(w.ndim(), 4);
    EXPECT_EQ(w.dim(0), 4);
    EXPECT_EQ(w.dim(1), 4);
    EXPECT_EQ(w.dim(2), node.attrs.conv.out_c);
    EXPECT_EQ(w.dim(3), node.attrs.conv.in_c);
    EXPECT_EQ(node.out_layout, Layout::NCHW());
  }
  // And the compiled model still matches the unoptimized reference numerically.
  Graph model = BuildVgg(11, 1, 64);
  Tensor input = InputFor(model);
  Tensor expected = Executor(&model).Run(input);
  EXPECT_LE(Tensor::AllCloseViolation(compiled.Run(input), expected, kRtol, kAtol), 0.0);
}

TEST(ConvAlgoSearch, ChoiceRoundTripsThroughModuleSerialization) {
  CompiledModel compiled = CompileVggAvx2();
  const int wino = CountConvKernels(compiled.graph(), ConvKernelKind::kWinograd);
  ASSERT_GE(wino, 1);

  const std::string path = TempPath("algo_roundtrip.neoc");
  ASSERT_TRUE(SaveModule(compiled, path));
  CompiledModel loaded;
  ASSERT_TRUE(LoadModule(path, &loaded));
  std::remove(path.c_str());

  EXPECT_EQ(CountConvKernels(loaded.graph(), ConvKernelKind::kWinograd), wino);
  for (int id = 0; id < compiled.graph().num_nodes(); ++id) {
    const Node& a = compiled.graph().node(id);
    const Node& b = loaded.graph().node(id);
    if (a.IsConv()) {
      EXPECT_EQ(a.attrs.kernel, b.attrs.kernel) << a.name;
      EXPECT_EQ(a.attrs.schedule, b.attrs.schedule) << a.name;
    }
  }
  // Identical graphs + identical kernels: the loaded module reproduces the original
  // bit for bit.
  Tensor input = InputFor(compiled.graph());
  EXPECT_EQ(Tensor::MaxAbsDiff(compiled.Run(input), loaded.Run(input)), 0.0);
}

TEST(ConvAlgoSearch, ChoiceRoundTripsThroughTuningCache) {
  auto cache = std::make_shared<TuningCache>();
  Graph model = BuildVgg(11, 1, 64);
  CompileOptions opts = NeoCpuOptions(Target::EpycAvx2());
  opts.tuning_cache = cache;
  CompiledModel first = Compile(model, opts);
  const int wino = CountConvKernels(first.graph(), ConvKernelKind::kWinograd);
  ASSERT_GE(wino, 1);
  ASSERT_GT(first.stats().tuning_cache_misses, 0u);

  // Persist the algorithm-tagged entries and warm a fresh cache from disk.
  const std::string path = TempPath("algo_cache.tuning");
  ASSERT_TRUE(cache->SaveToFile(path));
  auto warmed = std::make_shared<TuningCache>();
  ASSERT_TRUE(warmed->LoadFromFile(path));
  std::remove(path.c_str());
  EXPECT_EQ(warmed->size(), cache->size());

  // A recompile against the warmed cache is pure hits and lands on the same kernels.
  CompileOptions opts2 = NeoCpuOptions(Target::EpycAvx2());
  opts2.tuning_cache = warmed;
  CompiledModel second = Compile(model, opts2);
  EXPECT_EQ(second.stats().tuning_cache_misses, 0u);
  EXPECT_EQ(second.stats().tuning_cache_hits, first.stats().tuning_cache_hits +
                                                  first.stats().tuning_cache_misses);
  EXPECT_EQ(CountConvKernels(second.graph(), ConvKernelKind::kWinograd), wino);
}

TEST(ConvAlgoSearch, PlannedWinogradExecutionStaysZeroAlloc) {
  CompiledModel compiled = CompileVggAvx2();
  ASSERT_GE(CountConvKernels(compiled.graph(), ConvKernelKind::kWinograd), 1);
  ASSERT_NE(compiled.plan(), nullptr);
  ASSERT_TRUE(compiled.stats().memory_planned);

  // Winograd convs must plan per-worker tile scratch in the arena.
  bool wino_workspace = false;
  for (int id = 0; id < compiled.graph().num_nodes(); ++id) {
    const Node& node = compiled.graph().node(id);
    if (node.IsConv() && node.attrs.kernel == ConvKernelKind::kWinograd) {
      wino_workspace |=
          compiled.plan()->nodes[static_cast<std::size_t>(id)].workspace_bytes > 0;
    }
  }
  EXPECT_TRUE(wino_workspace);

  Tensor input = InputFor(compiled.graph());
  const Executor planned(&compiled.graph(), nullptr, compiled.plan());
  const Tensor expected = Executor(&compiled.graph()).Run(input);
  planned.Run(input);  // warm-up: faults the pooled arena

  const std::uint64_t before = TensorHeapAllocCount();
  const Tensor got = planned.Run(input);
  EXPECT_EQ(TensorHeapAllocCount() - before,
            static_cast<std::uint64_t>(compiled.plan()->heap_nodes))
      << "winograd intermediates/workspaces must come from the arena\n"
      << compiled.plan()->ToString();
  EXPECT_EQ(Tensor::MaxAbsDiff(expected, got), 0.0);
}

TEST(ConvAlgoSearch, RetuneForBatchReselectsAlgorithms) {
  CompiledModel compiled = CompileVggAvx2();
  ASSERT_TRUE(compiled.has_source());
  CompiledModel retuned;
  ASSERT_TRUE(RetuneForBatch(compiled, 2, nullptr, &retuned));
  EXPECT_EQ(retuned.stats().tuned_batch, 2);
  // The batch-2 variant made its own algorithm decisions; whatever it picked, every
  // conv's schedule must be tagged consistently with its kernel binding...
  for (int id = 0; id < retuned.graph().num_nodes(); ++id) {
    const Node& node = retuned.graph().node(id);
    if (!node.IsConv()) {
      continue;
    }
    EXPECT_EQ(node.attrs.conv.batch, 2) << node.name;
    if (node.attrs.kernel == ConvKernelKind::kWinograd) {
      EXPECT_EQ(node.attrs.schedule.algo, ConvAlgo::kWinograd) << node.name;
    }
  }
  // ...and the variant must execute correctly at its batch size.
  Rng rng(31);
  Tensor input = Tensor::Random({2, 3, 64, 64}, rng, -1.0f, 1.0f, Layout::NCHW());
  EXPECT_EQ(retuned.Run(input).dim(0), 2);
}

// ---------------------------------------------------------------- forced overrides

Graph ResidualNet() {
  GraphBuilder b("residual");
  int x = b.Input({1, 16, 16, 16});
  int shortcut = x;
  int y = b.Conv(x, 16, 3, 1, 1, false, "c1");
  y = b.Relu(y);
  y = b.Conv(y, 16, 3, 1, 1, false, "c2");  // fuses the residual add below
  y = b.Add(y, shortcut);
  y = b.Relu(y);
  int post = b.Conv(y, 16, 3, 1, 1, false, "post");
  return b.Finish({post});
}

TEST(ForcedAlgo, ForcesLegalConvsAndSkipsIllegalOnes) {
  Graph model = ResidualNet();
  CompileOptions opts = NeoCpuOptions(Target::SkylakeAvx512());
  opts.force_algo = true;
  opts.forced_algo = ConvAlgo::kWinograd;
  CompiledModel compiled = Compile(model, opts);

  int wino = 0, residual_wino = 0;
  for (int id = 0; id < compiled.graph().num_nodes(); ++id) {
    const Node& node = compiled.graph().node(id);
    if (!node.IsConv()) {
      continue;
    }
    if (node.attrs.kernel == ConvKernelKind::kWinograd) {
      ++wino;
      residual_wino += node.attrs.epilogue.residual_add;
    }
  }
  EXPECT_EQ(wino, 2) << "both non-residual 3x3 convs must be forced to winograd";
  EXPECT_EQ(residual_wino, 0) << "the fused-residual conv cannot run winograd";

  // The forced compile still matches the reference numerically.
  Tensor input = InputFor(model);
  Tensor expected = Executor(&model).Run(input);
  EXPECT_LE(Tensor::AllCloseViolation(compiled.Run(input), expected, kRtol, kAtol), 0.0);
}

TEST(ForcedAlgo, ForcedIm2colBindsEveryConv) {
  Graph model = BuildTinyCnn(1, 32);
  CompileOptions opts = NeoCpuOptions(Target::Host());
  opts.force_algo = true;
  opts.forced_algo = ConvAlgo::kIm2col;
  CompiledModel compiled = Compile(model, opts);
  const int convs = compiled.graph().CountNodes(OpType::kConv2d);
  EXPECT_EQ(CountConvKernels(compiled.graph(), ConvKernelKind::kIm2col), convs);

  Tensor input = InputFor(model);
  Tensor expected = Executor(&model).Run(input);
  EXPECT_LE(Tensor::AllCloseViolation(compiled.Run(input), expected, kRtol, kAtol), 0.0);
}

TEST(ForcedAlgo, RoundTripsThroughModuleConfig) {
  Graph model = BuildTinyCnn(1, 32);
  CompileOptions opts = NeoCpuOptions(Target::Host());
  opts.force_algo = true;
  opts.forced_algo = ConvAlgo::kIm2col;
  CompiledModel compiled = Compile(model, opts);

  const std::string path = TempPath("forced_algo.neoc");
  ASSERT_TRUE(SaveModule(compiled, path));
  CompiledModel loaded;
  ASSERT_TRUE(LoadModule(path, &loaded));
  std::remove(path.c_str());
  EXPECT_TRUE(loaded.config().force_algo);
  EXPECT_EQ(loaded.config().forced_algo, ConvAlgo::kIm2col);
}

// ---------------------------------------------------------------- zoo-wide dispatch

struct AlgoZooCase {
  std::string label;
  Graph (*build)();
};

Graph TinyResNet18() { return BuildResNet(18, 1, 64); }
Graph TinyVgg11() { return BuildVgg(11, 1, 64); }
Graph TinyInception() { return BuildInceptionV3(1, 139); }
Graph TinyCnn() { return BuildTinyCnn(1, 32); }

class WinogradZooDispatch : public ::testing::TestWithParam<AlgoZooCase> {};

// Force Winograd onto every legal conv of real zoo graphs: the dispatched kernels must
// match the reference executor numerically, and the planned (zero-allocation) path must
// be bitwise identical to the allocating path — both executions run the same kernels in
// the same order, so any deviation is an arena placement or workspace bug.
TEST_P(WinogradZooDispatch, ForcedWinogradMatchesPlannedAndReference) {
  Graph model = GetParam().build();
  Tensor input = InputFor(model);
  CompileOptions opts = NeoCpuOptions(Target::Host());
  opts.force_algo = true;
  opts.forced_algo = ConvAlgo::kWinograd;
  CompiledModel compiled = Compile(model, opts);
  EXPECT_GE(CountConvKernels(compiled.graph(), ConvKernelKind::kWinograd), 1)
      << GetParam().label;

  const Executor allocating(&compiled.graph());
  const Tensor via_alloc = allocating.Run(input);

  ASSERT_NE(compiled.plan(), nullptr) << GetParam().label;
  const Executor planned(&compiled.graph(), nullptr, compiled.plan());
  const Tensor via_plan = planned.Run(input);
  EXPECT_EQ(Tensor::MaxAbsDiff(via_alloc, via_plan), 0.0)
      << GetParam().label << " (planned vs allocating)";
  const Tensor again = planned.Run(input);  // reused arena: stale bytes must not leak
  EXPECT_EQ(Tensor::MaxAbsDiff(via_alloc, again), 0.0)
      << GetParam().label << " (arena reuse)";

  Tensor expected = Executor(&model).Run(input);
  EXPECT_LE(Tensor::AllCloseViolation(via_alloc, expected, kRtol, kAtol), 0.0)
      << GetParam().label << " (vs reference)";
}

INSTANTIATE_TEST_SUITE_P(Zoo, WinogradZooDispatch,
                         ::testing::Values(AlgoZooCase{"tiny_cnn", &TinyCnn},
                                           AlgoZooCase{"resnet18", &TinyResNet18},
                                           AlgoZooCase{"vgg11", &TinyVgg11},
                                           AlgoZooCase{"inception", &TinyInception}),
                         [](const ::testing::TestParamInfo<AlgoZooCase>& info) {
                           return info.param.label;
                         });

}  // namespace
}  // namespace neocpu
