// Tests for the tuning stack: schedule space (paper §3.3.1 candidate lists), analytic
// cost model properties, measured search, and tuning-cache memoization. (The cache's
// own behaviour — keys, persistence, concurrency — lives in tuning_cache_test.cc.)
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "src/base/cpu_info.h"
#include "src/core/target.h"
#include "src/tuning/cost_model.h"
#include "src/tuning/local_search.h"
#include "src/tuning/schedule_space.h"
#include "src/tuning/tuning_cache.h"

namespace neocpu {
namespace {

TEST(Factors, AllFactorsAscending) {
  EXPECT_EQ(Factors(64, 64), (std::vector<std::int64_t>{1, 2, 4, 8, 16, 32, 64}));
  EXPECT_EQ(Factors(64, 16), (std::vector<std::int64_t>{1, 2, 4, 8, 16}));
  EXPECT_EQ(Factors(3, 64), (std::vector<std::int64_t>{1, 3}));
  EXPECT_EQ(Factors(1, 64), (std::vector<std::int64_t>{1}));
}

TEST(ScheduleSpace, MatchesPaperCandidateLists) {
  // Paper: "if the number of channels is 64, [32, 16, 8, 4, 2, 1] are listed as the
  // candidates" (plus 64 itself under our cap), reg_n from [32,16,8,4,2], unroll both.
  Conv2dParams p{1, 64, 28, 28, 64, 3, 3, 1, 1, 1, 1};
  const Target t = Target::SkylakeAvx512();
  auto schedules = EnumerateSchedules(p, t, /*quick_space=*/false);
  // 6 ic (cap 32 = MaxBlock of avx512) ... MaxBlock = 2*16 = 32: factors {1..32} = 6.
  EXPECT_EQ(schedules.size(), 6u * 6u * 5u * 2u);
  bool has_paper_tuple = false;
  for (const ConvSchedule& s : schedules) {
    EXPECT_EQ(64 % s.ic_bn, 0);
    EXPECT_EQ(64 % s.oc_bn, 0);
    EXPECT_LE(s.oc_bn, t.MaxBlock());
    if (s.ic_bn == 16 && s.oc_bn == 16 && s.reg_n == 8 && s.unroll_ker) {
      has_paper_tuple = true;
    }
  }
  EXPECT_TRUE(has_paper_tuple);
}

TEST(ScheduleSpace, QuickSpaceIsSubset) {
  Conv2dParams p{1, 256, 14, 14, 256, 3, 3, 1, 1, 1, 1};
  const Target t = Target::SkylakeAvx512();
  auto full = EnumerateSchedules(p, t, false);
  auto quick = EnumerateSchedules(p, t, true);
  EXPECT_LT(quick.size(), full.size());
  for (const ConvSchedule& s : quick) {
    EXPECT_NE(std::find(full.begin(), full.end(), s), full.end());
  }
}

TEST(ScheduleSpace, NeonProfileRestrictsBlocks) {
  Conv2dParams p{1, 256, 14, 14, 256, 3, 3, 1, 1, 1, 1};
  for (const ConvSchedule& s : EnumerateSchedules(p, Target::ArmA72Neon(), false)) {
    EXPECT_LE(s.oc_bn, 8);  // 2 * 4 lanes
    EXPECT_LE(s.ic_bn, 8);
  }
}

TEST(AnalyticCost, ScalesWithWork) {
  const Target t = Target::SkylakeAvx512();
  ConvSchedule s{16, 16, 8, true};
  Conv2dParams small{1, 64, 14, 14, 64, 3, 3, 1, 1, 1, 1};
  Conv2dParams big{1, 64, 28, 28, 64, 3, 3, 1, 1, 1, 1};
  EXPECT_GT(AnalyticConvMs(big, s, t), 2.0 * AnalyticConvMs(small, s, t));
}

TEST(AnalyticCost, PenalizesNonVectorBlocks) {
  const Target t = Target::SkylakeAvx512();
  Conv2dParams p{1, 84, 14, 14, 84, 3, 3, 1, 1, 1, 1};
  // 84 = 2*2*3*7: block 21 wastes lanes and misses the fast kernels; block 4 hits a
  // template but underfills the vector.
  const double ms21 = AnalyticConvMs(p, ConvSchedule{21, 21, 8, true}, t);
  const double ms4 = AnalyticConvMs(p, ConvSchedule{4, 4, 8, true}, t);
  const double ms_lane = AnalyticConvMs(p, ConvSchedule{12, 12, 8, true}, t);
  EXPECT_GT(ms21, ms_lane * 0.99);
  EXPECT_GT(ms4, 0.0);
}

TEST(AnalyticCost, PenalizesRegisterSpill) {
  const Target t = Target::EpycAvx2();  // 16 vector registers
  Conv2dParams p{1, 64, 28, 28, 64, 3, 3, 1, 1, 1, 1};
  // reg_n=32 with oc_bn=16 needs 32*2+2 = 66 vector registers on AVX2: heavy spill.
  const double spill = AnalyticConvMs(p, ConvSchedule{16, 16, 32, true}, t);
  const double fit = AnalyticConvMs(p, ConvSchedule{16, 16, 8, true}, t);
  EXPECT_GT(spill, fit);
}

TEST(AnalyticCost, FasterTargetsPredictLowerTime) {
  Conv2dParams p{1, 64, 28, 28, 64, 3, 3, 1, 1, 1, 1};
  ConvSchedule avx512_s{16, 16, 8, true};
  ConvSchedule neon_s{4, 4, 8, true};
  EXPECT_LT(AnalyticConvMs(p, avx512_s, Target::SkylakeAvx512()),
            AnalyticConvMs(p, neon_s, Target::ArmA72Neon()));
}

TEST(MeasuredCost, ReturnsPositiveAndRepeatable) {
  Conv2dParams p{1, 32, 14, 14, 32, 3, 3, 1, 1, 1, 1};
  ConvSchedule s{16, 16, 8, true};
  const double ms = MeasureConvMs(p, s, nullptr, /*runs=*/2);
  EXPECT_GT(ms, 0.0);
  EXPECT_LT(ms, 1000.0);
}

TEST(MeasuredCost, PrefersRegisterBlockingOverNone) {
  // reg_n=8 should comfortably beat reg_n=2's weight-reload-per-two-outputs on a
  // compute-bound workload. (Measured on the real kernel: this is the core Figure 1
  // claim that register blocking matters.)
  if (HostCpuInfo().physical_cores < 2) {
    // On a single-core host every concurrently running test perturbs the measurement;
    // the ranking claim is unverifiable noise there, not a kernel property.
    GTEST_SKIP() << "measured-cost ranking is unreliable on single-core hosts";
  }
  Conv2dParams p{1, 64, 28, 28, 64, 3, 3, 1, 1, 1, 1};
  // Best-of-N: each MeasureConvMs already takes the min over its runs, and repeating
  // the whole measurement N times shakes off scheduler noise bursts (ctest runs suites
  // in parallel).
  double blocked = 1e30;
  double minimal = 1e30;
  for (int trial = 0; trial < 5; ++trial) {
    blocked = std::min(blocked, MeasureConvMs(p, ConvSchedule{16, 16, 8, true}, nullptr, 3));
    minimal = std::min(minimal, MeasureConvMs(p, ConvSchedule{16, 16, 2, true}, nullptr, 3));
  }
  EXPECT_LT(blocked, minimal * 1.15);  // allow noise; blocked must not be slower
}

TEST(TransformCost, MonotonicInBytes) {
  EXPECT_GT(TransformMs(1 << 22), TransformMs(1 << 20));
  EXPECT_GT(CalibratedCopyBytesPerMs(), 0.0);
}

TEST(LocalSearch, RankedAscendingAndComplete) {
  Conv2dParams p{1, 64, 14, 14, 64, 3, 3, 1, 1, 1, 1};
  LocalSearchResult r = LocalSearchConv(p, Target::SkylakeAvx512(), CostMode::kAnalytic,
                                        /*quick_space=*/false);
  ASSERT_FALSE(r.ranked.empty());
  for (std::size_t i = 1; i < r.ranked.size(); ++i) {
    EXPECT_LE(r.ranked[i - 1].ms, r.ranked[i].ms);
  }
  const ScheduleCost* pair_best = r.BestForPair(16, 16);
  ASSERT_NE(pair_best, nullptr);
  EXPECT_EQ(pair_best->schedule.ic_bn, 16);
  EXPECT_EQ(pair_best->schedule.oc_bn, 16);
  EXPECT_EQ(r.BestForPair(5, 5), nullptr);
}

TEST(LocalSearch, AnalyticBestIsReasonableUnderMeasurement) {
  // The analytic model's top choice must be within 2.5x of the measured-best schedule —
  // a loose sanity bound that catches gross model breakage without flaky tightness.
  Conv2dParams p{1, 64, 28, 28, 64, 3, 3, 1, 1, 1, 1};
  const Target t = Target::Host();
  LocalSearchResult analytic = LocalSearchConv(p, t, CostMode::kAnalytic, true);
  LocalSearchResult measured = LocalSearchConv(p, t, CostMode::kMeasured, true);
  const double analytic_choice_measured_ms =
      MeasureConvMs(p, analytic.best().schedule, nullptr, 3);
  EXPECT_LT(analytic_choice_measured_ms, 2.5 * measured.best().ms)
      << "analytic pick " << analytic.best().schedule.ToString() << " vs measured best "
      << measured.best().schedule.ToString();
}

TEST(LocalSearch, MemoizesThroughTuningCache) {
  TuningCache cache;
  Conv2dParams p{1, 32, 14, 14, 32, 3, 3, 1, 1, 1, 1};
  const Target t = Target::SkylakeAvx512();
  LocalSearchResult first =
      LocalSearchConv(p, t, CostMode::kAnalytic, true, nullptr, &cache);
  EXPECT_EQ(cache.size(), 1u);
  LocalSearchResult second =
      LocalSearchConv(p, t, CostMode::kAnalytic, true, nullptr, &cache);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(first.ranked.size(), second.ranked.size());
  EXPECT_EQ(first.best().schedule, second.best().schedule);
  const TuningCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(LocalSearch, BatchIsPartOfTheWorkloadIdentity) {
  // The same conv shape at batch 1 and batch 8 must occupy two cache entries: batch
  // changes the parallelism grain and footprint, so the tunings are not interchangeable.
  TuningCache cache;
  const Target t = Target::SkylakeAvx512();
  Conv2dParams batch1{1, 32, 14, 14, 32, 3, 3, 1, 1, 1, 1};
  Conv2dParams batch8 = batch1;
  batch8.batch = 8;
  LocalSearchConv(batch1, t, CostMode::kAnalytic, true, nullptr, &cache);
  LocalSearchConv(batch8, t, CostMode::kAnalytic, true, nullptr, &cache);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Stats().misses, 2u);
}

TEST(Target, ByNameRoundTrip) {
  EXPECT_EQ(Target::ByName("avx512").vector_lanes, 16);
  EXPECT_EQ(Target::ByName("avx2").vector_lanes, 8);
  EXPECT_EQ(Target::ByName("neon").vector_lanes, 4);
  EXPECT_EQ(Target::ByName("host").name, "host");
  EXPECT_EQ(Target::ArmA72Neon().PreferredBlock(), 4);
  EXPECT_EQ(Target::SkylakeAvx512().MaxBlock(), 32);
}

}  // namespace
}  // namespace neocpu
