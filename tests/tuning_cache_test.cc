// Tests for the batch-aware tuning subsystem: WorkloadKey identity and text
// round-trips, TuningCache hit/miss accounting, versioned persistence, concurrent
// access, and the compiler-level per-batch plumbing (CompileStats, RetuneForBatch,
// module serialization of multi-batch caches).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "src/base/rng.h"
#include "src/core/compiler.h"
#include "src/core/serialization.h"
#include "src/models/model_zoo.h"
#include "src/serve/batch_util.h"
#include "src/tuning/local_search.h"
#include "src/tuning/tuning_cache.h"
#include "src/tuning/workload_key.h"

namespace neocpu {
namespace {

Conv2dParams TestConv(std::int64_t batch = 1) {
  return Conv2dParams{batch, 32, 14, 14, 64, 3, 3, 1, 1, 1, 1};
}

LocalSearchResult SearchFor(const Conv2dParams& params, const Target& target) {
  return LocalSearchConv(params, target, CostMode::kAnalytic, /*quick_space=*/true);
}

TEST(WorkloadKey, DistinguishesEveryIdentityField) {
  const WorkloadKey base =
      WorkloadKey::Of(TestConv(1), Target::SkylakeAvx512(), CostMode::kAnalytic, true);
  WorkloadKey batch = base;
  batch.conv.batch = 8;
  WorkloadKey target = base;
  target.target = Target::EpycAvx2().name;
  WorkloadKey mode = base;
  mode.cost_mode = CostMode::kMeasured;
  WorkloadKey space = base;
  space.quick_space = false;
  for (const WorkloadKey& other : {batch, target, mode, space}) {
    EXPECT_NE(base, other);
    EXPECT_NE(base.ToString(), other.ToString());
  }
}

TEST(WorkloadKey, ToStringParseRoundTrip) {
  const WorkloadKey key =
      WorkloadKey::Of(TestConv(8), Target::ArmA72Neon(), CostMode::kMeasured, false);
  WorkloadKey parsed;
  ASSERT_TRUE(WorkloadKey::Parse(key.ToString(), &parsed));
  EXPECT_EQ(key, parsed);
}

TEST(WorkloadKey, ParseRejectsMalformedText) {
  WorkloadKey parsed;
  EXPECT_FALSE(WorkloadKey::Parse("", &parsed));
  EXPECT_FALSE(WorkloadKey::Parse("avx512|garbage|analytic|quick", &parsed));
  EXPECT_FALSE(WorkloadKey::Parse("avx512|1_32_14x14_64_3x3_1x1_1x1|warp|quick", &parsed));
  EXPECT_FALSE(WorkloadKey::Parse("avx512|1_32_14x14_64_3x3_1x1_1x1|analytic|sideways",
                                  &parsed));
  EXPECT_FALSE(WorkloadKey::Parse("too|many|fields|in|here", &parsed));
  const WorkloadKey valid =
      WorkloadKey::Of(TestConv(), Target::SkylakeAvx512(), CostMode::kAnalytic, true);
  ASSERT_TRUE(WorkloadKey::Parse(valid.ToString(), &parsed));
}

TEST(TuningCache, HitMissAccounting) {
  TuningCache cache;
  const Target t = Target::SkylakeAvx512();
  const WorkloadKey key1 = WorkloadKey::Of(TestConv(1), t, CostMode::kAnalytic, true);
  const WorkloadKey key8 = WorkloadKey::Of(TestConv(8), t, CostMode::kAnalytic, true);

  EXPECT_EQ(cache.Find(key1), nullptr);
  cache.Insert(key1, SearchFor(TestConv(1), t));
  EXPECT_NE(cache.Find(key1), nullptr);
  EXPECT_EQ(cache.Find(key8), nullptr);  // batch 8 is a different workload

  const TuningCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_NEAR(stats.HitRate(), 1.0 / 3.0, 1e-12);
}

TEST(TuningCache, SaveLoadRoundTripAcrossBatches) {
  TuningCache cache;
  const Target t = Target::EpycAvx2();
  for (std::int64_t batch : {1, 4, 8}) {
    cache.Insert(WorkloadKey::Of(TestConv(batch), t, CostMode::kAnalytic, true),
                 SearchFor(TestConv(batch), t));
  }
  const std::string path = ::testing::TempDir() + "/neocpu_tuning_cache_test.txt";
  ASSERT_TRUE(cache.SaveToFile(path));

  TuningCache loaded;
  ASSERT_TRUE(loaded.LoadFromFile(path));
  EXPECT_EQ(loaded.size(), 3u);
  for (std::int64_t batch : {1, 4, 8}) {
    const WorkloadKey key = WorkloadKey::Of(TestConv(batch), t, CostMode::kAnalytic, true);
    auto original = cache.Find(key);
    auto restored = loaded.Find(key);
    ASSERT_NE(restored, nullptr) << "batch " << batch;
    EXPECT_EQ(restored->ranked.size(), original->ranked.size());
    EXPECT_EQ(restored->best().schedule, original->best().schedule);
    EXPECT_NEAR(restored->best().ms, original->best().ms, 1e-9);
  }
  std::remove(path.c_str());
}

TEST(TuningCache, SaveIsCrashConsistentAtEveryKillPoint) {
  const Target t = Target::EpycAvx2();
  const std::string path = ::testing::TempDir() + "/neocpu_tuning_cache_crash_test.txt";
  const WorkloadKey key1 = WorkloadKey::Of(TestConv(1), t, CostMode::kAnalytic, true);
  const WorkloadKey key8 = WorkloadKey::Of(TestConv(8), t, CostMode::kAnalytic, true);

  // Establish a good on-disk generation with one entry.
  TuningCache v1;
  v1.Insert(key1, SearchFor(TestConv(1), t));
  ASSERT_TRUE(v1.SaveToFile(path));

  // A save of a bigger cache "crashes" at each kill point in turn. The destination
  // must still hold the complete first generation afterwards — never a torn file.
  TuningCache v2;
  v2.Insert(key1, SearchFor(TestConv(1), t));
  v2.Insert(key8, SearchFor(TestConv(8), t));
  for (TuningCache::SaveKillPoint point : {TuningCache::SaveKillPoint::kAfterTempWrite,
                                           TuningCache::SaveKillPoint::kBeforeRename}) {
    TuningCache::SetSaveKillPointForTest(point);
    EXPECT_FALSE(v2.SaveToFile(path));
    TuningCache::SetSaveKillPointForTest(TuningCache::SaveKillPoint::kNone);

    TuningCache survivor;
    ASSERT_TRUE(survivor.LoadFromFile(path));
    EXPECT_EQ(survivor.size(), 1u);  // old generation, intact
    EXPECT_NE(survivor.Find(key1), nullptr);
    EXPECT_EQ(survivor.Find(key8), nullptr);
  }

  // The next clean save recovers: it overwrites the orphaned temp and commits.
  ASSERT_TRUE(v2.SaveToFile(path));
  TuningCache recovered;
  ASSERT_TRUE(recovered.LoadFromFile(path));
  EXPECT_EQ(recovered.size(), 2u);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST(TuningCache, RejectsWrongVersionAndGarbage) {
  TuningCache cache;
  std::istringstream wrong_version("neocpu-tuning-cache 1 0\n");
  EXPECT_FALSE(cache.Deserialize(wrong_version));
  std::istringstream garbage("not-a-cache at all\n");
  EXPECT_FALSE(cache.Deserialize(garbage));
  std::istringstream truncated(
      "neocpu-tuning-cache 2 1\nworkload avx512|1_32_14x14_64_3x3_1x1_1x1|analytic|quick "
      "3\n16 16 8 1 0.5\n");
  EXPECT_FALSE(cache.Deserialize(truncated));
  EXPECT_EQ(cache.size(), 0u);  // failures leave the cache untouched
}

TEST(TuningCache, CapacityBoundHoldsUnderChurn) {
  TuningCache cache;
  const Target t = Target::SkylakeAvx512();
  cache.SetCapacity(8);
  const LocalSearchResult result = SearchFor(TestConv(1), t);
  for (std::int64_t batch = 1; batch <= 100; ++batch) {
    cache.Insert(WorkloadKey::Of(TestConv(batch), t, CostMode::kAnalytic, true), result);
    ASSERT_LE(cache.size(), 8u) << "cap must hold at every step, batch " << batch;
  }
  const TuningCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 8u);
  EXPECT_EQ(stats.capacity, 8u);
  EXPECT_EQ(stats.inserts, 100u);
  EXPECT_EQ(stats.evictions, 92u);
  // The newest 8 workloads survive; everything older was evicted.
  for (std::int64_t batch = 93; batch <= 100; ++batch) {
    EXPECT_NE(cache.Find(WorkloadKey::Of(TestConv(batch), t, CostMode::kAnalytic, true)),
              nullptr)
        << "batch " << batch;
  }
  EXPECT_EQ(cache.Find(WorkloadKey::Of(TestConv(92), t, CostMode::kAnalytic, true)),
            nullptr);
}

TEST(TuningCache, EvictionIsLeastRecentlyUsed) {
  TuningCache cache;
  const Target t = Target::SkylakeAvx512();
  cache.SetCapacity(2);
  const LocalSearchResult result = SearchFor(TestConv(1), t);
  const WorkloadKey a = WorkloadKey::Of(TestConv(1), t, CostMode::kAnalytic, true);
  const WorkloadKey b = WorkloadKey::Of(TestConv(2), t, CostMode::kAnalytic, true);
  const WorkloadKey c = WorkloadKey::Of(TestConv(3), t, CostMode::kAnalytic, true);
  cache.Insert(a, result);
  cache.Insert(b, result);
  EXPECT_NE(cache.Find(a), nullptr);  // touch: a becomes most-recent
  cache.Insert(c, result);            // evicts b, the least recently used
  EXPECT_NE(cache.Find(a), nullptr);
  EXPECT_NE(cache.Find(c), nullptr);
  EXPECT_EQ(cache.Find(b), nullptr);
  // A handed-out result stays valid after its entry is evicted.
  auto held = cache.Find(a);
  cache.SetCapacity(1);  // shrink evicts immediately
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_NE(held, nullptr);
  EXPECT_FALSE(held->ranked.empty());
}

TEST(TuningCache, MergeFromFoldsEntriesAndReplacesDuplicates) {
  const Target t = Target::SkylakeAvx512();
  TuningCache a;
  TuningCache b;
  const LocalSearchResult result = SearchFor(TestConv(1), t);
  a.Insert(WorkloadKey::Of(TestConv(1), t, CostMode::kAnalytic, true), result);
  b.Insert(WorkloadKey::Of(TestConv(1), t, CostMode::kAnalytic, true), result);
  b.Insert(WorkloadKey::Of(TestConv(2), t, CostMode::kAnalytic, true), result);
  a.MergeFrom(b);
  EXPECT_EQ(a.size(), 2u);
  a.MergeFrom(a);  // self-merge is a no-op, not a deadlock
  EXPECT_EQ(a.size(), 2u);
}

TEST(TuningCache, ConcurrentLookupsAndInsertsAreSafe) {
  TuningCache cache;
  const Target t = Target::SkylakeAvx512();
  constexpr int kThreads = 8;
  constexpr int kBatchesPerThread = 16;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&cache, &t, i] {
      for (int b = 1; b <= kBatchesPerThread; ++b) {
        const WorkloadKey key = WorkloadKey::Of(TestConv(b), t, CostMode::kAnalytic, true);
        if (auto hit = cache.Find(key)) {
          EXPECT_FALSE(hit->ranked.empty());
        } else {
          cache.Insert(key, SearchFor(TestConv(b), t));
        }
        (void)i;
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  EXPECT_EQ(cache.size(), static_cast<std::size_t>(kBatchesPerThread));
  for (int b = 1; b <= kBatchesPerThread; ++b) {
    EXPECT_NE(cache.Find(WorkloadKey::Of(TestConv(b), t, CostMode::kAnalytic, true)),
              nullptr);
  }
}

TEST(Compile, RecordsTunedBatchAndCacheTraffic) {
  auto cache = std::make_shared<TuningCache>();
  CompileOptions opts;
  opts.tuning_cache = cache;
  CompiledModel first = Compile(BuildTinyCnn(), opts);
  EXPECT_EQ(first.stats().tuned_batch, 1);
  EXPECT_FALSE(first.stats().retuned);
  EXPECT_GT(first.stats().tuning_cache_misses, 0u);
  EXPECT_TRUE(first.has_source());
  EXPECT_EQ(first.tuning().get(), cache.get());

  // Same model, same cache: every workload is already tuned.
  CompiledModel second = Compile(BuildTinyCnn(), opts);
  EXPECT_EQ(second.stats().tuning_cache_misses, 0u);
  EXPECT_GT(second.stats().tuning_cache_hits, 0u);
}

TEST(RetuneForBatch, ProducesBatchTunedModelFromSource) {
  CompiledModel base = Compile(BuildTinyCnn());
  ASSERT_TRUE(base.has_source());
  EXPECT_EQ(base.stats().tuned_batch, 1);

  CompiledModel tuned;
  ASSERT_TRUE(RetuneForBatch(base, 8, nullptr, &tuned));
  EXPECT_EQ(tuned.stats().tuned_batch, 8);
  EXPECT_TRUE(tuned.stats().retuned);
  EXPECT_EQ(tuned.graph().node(0).out_dims[0], 8);

  // The batch-8 workloads landed in the shared cache; a second re-tune of the same
  // batch is a pure table lookup.
  CompiledModel again;
  ASSERT_TRUE(RetuneForBatch(base, 8, nullptr, &again));
  EXPECT_EQ(again.stats().tuning_cache_misses, 0u);

  // Correctness: the batch-8-tuned model computes the same function as N serial runs.
  Rng rng(3);
  std::vector<Tensor> samples;
  std::vector<Tensor> expected;
  for (int i = 0; i < 8; ++i) {
    samples.push_back(Tensor::Random({1, 3, 32, 32}, rng, 0.0f, 1.0f, Layout::NCHW()));
    expected.push_back(base.Run(samples.back()));
  }
  std::vector<Tensor> stacked_out = {tuned.Run(StackBatch(samples))};
  std::vector<Tensor> parts = SplitBatch(stacked_out[0], 8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_LT(Tensor::MaxAbsDiff(parts[static_cast<std::size_t>(i)],
                                 expected[static_cast<std::size_t>(i)]),
              1e-4f)
        << "sample " << i;
  }
}

TEST(RetuneForBatch, FailsWithoutSourceGraph) {
  CompiledModel base = Compile(BuildTinyCnn());
  CompiledModel stripped(Graph(base.graph()), base.stats());  // source-less copy
  CompiledModel out;
  EXPECT_FALSE(RetuneForBatch(stripped, 4, nullptr, &out));
}

TEST(Serialization, ModuleRoundTripsTuningStateForAllBatches) {
  auto cache = std::make_shared<TuningCache>();
  CompileOptions opts;
  opts.tuning_cache = cache;
  CompiledModel model = Compile(BuildTinyCnn(), opts);

  // Populate the cache with two more batch variants before saving.
  CompiledModel tuned4;
  CompiledModel tuned8;
  ASSERT_TRUE(RetuneForBatch(model, 4, nullptr, &tuned4));
  ASSERT_TRUE(RetuneForBatch(model, 8, nullptr, &tuned8));
  const std::size_t entries_before = cache->size();
  EXPECT_GT(entries_before, 0u);

  const std::string path = ::testing::TempDir() + "/tiny_cnn_tuning_state.neoc";
  ASSERT_TRUE(SaveModule(model, path));

  CompiledModel loaded;
  ASSERT_TRUE(LoadModule(path, &loaded));
  ASSERT_TRUE(loaded.has_source());
  ASSERT_NE(loaded.tuning(), nullptr);
  EXPECT_EQ(loaded.tuning()->size(), entries_before);
  EXPECT_EQ(loaded.stats().tuned_batch, 1);
  EXPECT_EQ(loaded.config().layout_mode, model.config().layout_mode);
  EXPECT_EQ(loaded.config().target.name, model.config().target.name);
  EXPECT_EQ(loaded.config().quick_space, model.config().quick_space);

  // Warm start: re-tuning batch 8 out of the restored module re-searches nothing.
  CompiledModel warm8;
  ASSERT_TRUE(RetuneForBatch(loaded, 8, nullptr, &warm8));
  EXPECT_EQ(warm8.stats().tuning_cache_misses, 0u);
  EXPECT_GT(warm8.stats().tuning_cache_hits, 0u);
  EXPECT_EQ(warm8.stats().tuned_batch, 8);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace neocpu
