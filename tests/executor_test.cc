// Executor tests: end-to-end small graphs against hand computation, input validation,
// multiple outputs, and dispatch coverage.
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/core/executor.h"
#include "src/graph/builder.h"
#include "src/kernels/conv_ref.h"
#include "src/runtime/thread_pool.h"

namespace neocpu {
namespace {

TEST(Executor, SingleConvMatchesDirectKernelCall) {
  GraphBuilder b("one_conv");
  int in = b.Input({1, 4, 6, 6});
  int conv = b.Conv(in, 8, 3, 1, 1, /*bias=*/true, "c");
  Graph g = b.Finish({conv});

  Rng rng(3);
  Tensor x = Tensor::Random({1, 4, 6, 6}, rng, -1, 1, Layout::NCHW());
  Tensor out = Executor(&g).Run(x);

  const Node& node = g.node(conv);
  const Tensor& w = g.node(node.inputs[1]).payload;
  const Tensor& bias = g.node(node.inputs[2]).payload;
  ConvEpilogue epi;
  epi.bias = true;
  Tensor expected = ConvRefNCHW(node.attrs.conv, x, w, &bias, nullptr, epi);
  EXPECT_EQ(Tensor::MaxAbsDiff(expected, out), 0.0);
}

TEST(Executor, MultipleOutputs) {
  GraphBuilder b("two_out");
  int in = b.Input({1, 4, 4, 4});
  int r = b.Relu(in);
  int p = b.MaxPool(in, 2, 2, 0);
  Graph g = b.Finish({r, p});
  Rng rng(4);
  Tensor x = Tensor::Random({1, 4, 4, 4}, rng, -1, 1, Layout::NCHW());
  std::vector<Tensor> outs = Executor(&g).Run(std::vector<Tensor>{x});
  ASSERT_EQ(outs.size(), 2u);
  EXPECT_EQ(outs[0].dims(), (std::vector<std::int64_t>{1, 4, 4, 4}));
  EXPECT_EQ(outs[1].dims(), (std::vector<std::int64_t>{1, 4, 2, 2}));
}

TEST(Executor, RejectsWrongInputCount) {
  GraphBuilder b("one_in");
  int in = b.Input({1, 2, 2, 2});
  Graph g = b.Finish({b.Relu(in)});
  Executor ex(&g);
  EXPECT_DEATH(ex.Run(std::vector<Tensor>{}), "expects");
}

TEST(Executor, RejectsWrongInputShape) {
  GraphBuilder b("shape");
  int in = b.Input({1, 2, 4, 4});
  Graph g = b.Finish({b.Relu(in)});
  Rng rng(5);
  Tensor bad = Tensor::Random({1, 2, 3, 3}, rng, -1, 1, Layout::NCHW());
  Executor ex(&g);
  EXPECT_DEATH(ex.Run(bad), "mismatch");
}

TEST(Executor, RejectsTransposedInputOfEqualSize) {
  // Same element count, permuted axes: an element-count-only check would accept this
  // silently; the executor must name the first mismatching axis.
  GraphBuilder b("transposed");
  int in = b.Input({1, 4, 6, 6});
  Graph g = b.Finish({b.Relu(in)});
  Rng rng(9);
  Tensor transposed = Tensor::Random({1, 6, 4, 6}, rng, -1, 1, Layout::NCHW());
  Executor ex(&g);
  EXPECT_DEATH(ex.Run(transposed), "axis 1");
}

TEST(Executor, RejectsWrongRankInput) {
  GraphBuilder b("rank");
  int in = b.Input({1, 2, 4, 4});
  Graph g = b.Finish({b.Relu(in)});
  Rng rng(10);
  Tensor flat = Tensor::Random({1, 32}, rng, -1, 1);
  Executor ex(&g);
  EXPECT_DEATH(ex.Run(flat), "rank mismatch");
}

TEST(Executor, DropoutIsIdentity) {
  GraphBuilder b("drop");
  int in = b.Input({1, 2, 2, 2});
  Graph g = b.Finish({b.Dropout(in)});
  Rng rng(6);
  Tensor x = Tensor::Random({1, 2, 2, 2}, rng, -1, 1, Layout::NCHW());
  Tensor out = Executor(&g).Run(x);
  EXPECT_EQ(Tensor::MaxAbsDiff(x, out), 0.0);
}

TEST(Executor, ThreadedRunMatchesSerial) {
  GraphBuilder b("threaded");
  int x = b.Input({1, 16, 12, 12});
  x = b.ConvBnRelu(x, 32, 3, 1, 1, "c1");
  x = b.MaxPool(x, 2, 2, 0);
  x = b.ConvBnRelu(x, 32, 3, 1, 1, "c2");
  x = b.GlobalAvgPool(x);
  x = b.Flatten(x);
  x = b.Dense(x, 10);
  Graph g = b.Finish({x});
  Rng rng(7);
  Tensor in = Tensor::Random({1, 16, 12, 12}, rng, -1, 1, Layout::NCHW());
  Tensor serial = Executor(&g, nullptr).Run(in);
  NeoThreadPool pool(3, /*bind_threads=*/false);
  Tensor threaded = Executor(&g, &pool).Run(in);
  EXPECT_EQ(Tensor::MaxAbsDiff(serial, threaded), 0.0);
}

TEST(Executor, ReleasesIntermediatesButKeepsOutputs) {
  // The output of an interior node must not be returned; only requested outputs are.
  GraphBuilder b("release");
  int in = b.Input({1, 2, 4, 4});
  int r1 = b.Relu(in);
  int r2 = b.Relu(r1);
  Graph g = b.Finish({r2});
  Rng rng(8);
  Tensor x = Tensor::Random({1, 2, 4, 4}, rng, 0.f, 1.f, Layout::NCHW());
  Tensor out = Executor(&g).Run(x);
  EXPECT_EQ(Tensor::MaxAbsDiff(out, x), 0.0);  // relu of positive values is identity
}

}  // namespace
}  // namespace neocpu
