// Unit tests for GEMM, dense, pooling, batch-norm, elementwise and multibox kernels.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "src/base/rng.h"
#include "src/kernels/batchnorm.h"
#include "src/kernels/dense.h"
#include "src/kernels/elementwise.h"
#include "src/kernels/gemm.h"
#include "src/kernels/multibox.h"
#include "src/kernels/pooling.h"
#include "src/runtime/thread_pool.h"
#include "src/tensor/layout_transform.h"

namespace neocpu {
namespace {

void NaiveGemm(std::int64_t m, std::int64_t n, std::int64_t k, const float* a, const float* b,
               float* c) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        sum += static_cast<double>(a[i * k + kk]) * b[kk * n + j];
      }
      c[i * n + j] = static_cast<float>(sum);
    }
  }
}

class GemmShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, MatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(13);
  Tensor a = Tensor::Random({m, k}, rng, -1, 1);
  Tensor b = Tensor::Random({k, n}, rng, -1, 1);
  Tensor c = Tensor::Zeros({m, n});
  Tensor expected = Tensor::Zeros({m, n});
  Gemm(m, n, k, a.data(), b.data(), c.data());
  NaiveGemm(m, n, k, a.data(), b.data(), expected.data());
  EXPECT_LE(Tensor::AllCloseViolation(c, expected, 1e-4, 1e-4), 0.0)
      << m << "x" << n << "x" << k;
}

INSTANTIATE_TEST_SUITE_P(Sweep, GemmShapes,
                         ::testing::Values(std::tuple{1, 1, 1}, std::tuple{4, 32, 8},
                                           std::tuple{5, 33, 7},      // both tails
                                           std::tuple{8, 64, 64},     // clean tiles
                                           std::tuple{3, 31, 17},     // row+col tails only
                                           std::tuple{17, 100, 29})); // mixed

TEST(Gemm, AccumulateAddsToExisting) {
  Rng rng(14);
  Tensor a = Tensor::Random({4, 8}, rng, -1, 1);
  Tensor b = Tensor::Random({8, 32}, rng, -1, 1);
  Tensor c = Tensor::Full({4, 32}, 1.0f);
  Tensor expected = Tensor::Zeros({4, 32});
  NaiveGemm(4, 32, 8, a.data(), b.data(), expected.data());
  Gemm(4, 32, 8, a.data(), b.data(), c.data(), /*accumulate=*/true);
  for (std::int64_t i = 0; i < c.NumElements(); ++i) {
    EXPECT_NEAR(c.data()[i], expected.data()[i] + 1.0f, 1e-4);
  }
}

TEST(Dense, MatchesNaiveWithBiasAndRelu) {
  Rng rng(15);
  const std::int64_t in_dim = 70, out_dim = 19;
  Tensor x = Tensor::Random({1, in_dim}, rng, -1, 1);
  Tensor w = Tensor::Random({out_dim, in_dim}, rng, -1, 1);
  Tensor bias = Tensor::Random({out_dim}, rng, -1, 1);
  Tensor out = Dense(x, w, &bias, /*relu=*/true);
  for (std::int64_t o = 0; o < out_dim; ++o) {
    double sum = bias.data()[o];
    for (std::int64_t i = 0; i < in_dim; ++i) {
      sum += static_cast<double>(x.data()[i]) * w.data()[o * in_dim + i];
    }
    const float expected = static_cast<float>(std::max(sum, 0.0));
    EXPECT_NEAR(out.data()[o], expected, 1e-4) << o;
  }
}

TEST(Dense, BatchedRows) {
  Rng rng(16);
  Tensor x = Tensor::Random({3, 20}, rng, -1, 1);
  Tensor w = Tensor::Random({5, 20}, rng, -1, 1);
  Tensor out = Dense(x, w, nullptr, false);
  EXPECT_EQ(out.dims(), (std::vector<std::int64_t>{3, 5}));
  // Row 2 must equal an independent single-row dense.
  Tensor single = Tensor::Empty({1, 20});
  std::memcpy(single.data(), x.data() + 2 * 20, 20 * sizeof(float));
  Tensor out_single = Dense(single, w, nullptr, false);
  for (std::int64_t o = 0; o < 5; ++o) {
    EXPECT_FLOAT_EQ(out.data()[2 * 5 + o], out_single.data()[o]);
  }
}

TEST(Pooling, MaxKnownValues) {
  Pool2dParams p{PoolType::kMax, 2, 2, 2, 2, 0, 0, false, false};
  Tensor in = Tensor::Empty({1, 1, 4, 4}, Layout::NCHW());
  for (int i = 0; i < 16; ++i) {
    in.data()[i] = static_cast<float>(i);
  }
  Tensor out = PoolNCHW(p, in);
  EXPECT_EQ(out.dims(), (std::vector<std::int64_t>{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(out.data()[0], 5);
  EXPECT_FLOAT_EQ(out.data()[1], 7);
  EXPECT_FLOAT_EQ(out.data()[2], 13);
  EXPECT_FLOAT_EQ(out.data()[3], 15);
}

TEST(Pooling, AvgExcludesPaddingByDefault) {
  Pool2dParams p{PoolType::kAvg, 3, 3, 2, 2, 1, 1, false, false};
  Tensor in = Tensor::Full({1, 1, 4, 4}, 2.0f, Layout::NCHW());
  Tensor out = PoolNCHW(p, in);
  // Every window averages only valid elements of a constant image -> exactly 2.
  for (std::int64_t i = 0; i < out.NumElements(); ++i) {
    EXPECT_FLOAT_EQ(out.data()[i], 2.0f);
  }
}

TEST(Pooling, AvgIncludePadDividesByKernelArea) {
  Pool2dParams p{PoolType::kAvg, 2, 2, 2, 2, 1, 1, /*count_include_pad=*/true, false};
  Tensor in = Tensor::Full({1, 1, 2, 2}, 4.0f, Layout::NCHW());
  Tensor out = PoolNCHW(p, in);
  // Corner window sees one valid element (4.0) over a 2x2 kernel -> 1.0.
  EXPECT_FLOAT_EQ(out.data()[0], 1.0f);
}

TEST(Pooling, CeilModeAddsPartialWindow) {
  Pool2dParams floor_p{PoolType::kMax, 3, 3, 2, 2, 0, 0, false, /*ceil_mode=*/false};
  Pool2dParams ceil_p{PoolType::kMax, 3, 3, 2, 2, 0, 0, false, /*ceil_mode=*/true};
  EXPECT_EQ(floor_p.OutH(6), 2);
  EXPECT_EQ(ceil_p.OutH(6), 3);
}

class PoolLayoutEquiv : public ::testing::TestWithParam<std::tuple<PoolType, int, int, int>> {
};

TEST_P(PoolLayoutEquiv, NCHWcMatchesNCHW) {
  const auto [type, kernel, stride, pad] = GetParam();
  Pool2dParams p{type, kernel, kernel, stride, stride, pad, pad, false, false};
  Rng rng(17);
  Tensor in = Tensor::Random({1, 32, 13, 13}, rng, -2, 2, Layout::NCHW());
  Tensor expected = PoolNCHW(p, in);
  Tensor blocked = NCHWToNCHWc(in, 16);
  Tensor got = NCHWcToNCHW(PoolNCHWc(p, blocked));
  EXPECT_EQ(Tensor::MaxAbsDiff(expected, got), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PoolLayoutEquiv,
                         ::testing::Combine(::testing::Values(PoolType::kMax, PoolType::kAvg),
                                            ::testing::Values(2, 3),
                                            ::testing::Values(1, 2),
                                            ::testing::Values(0, 1)));

TEST(GlobalAvgPool, BothLayoutsAgree) {
  Rng rng(18);
  Tensor in = Tensor::Random({2, 32, 7, 7}, rng, -1, 1, Layout::NCHW());
  Tensor expected = GlobalAvgPoolNCHW(in);
  Tensor got = NCHWcToNCHW(GlobalAvgPoolNCHWc(NCHWToNCHWc(in, 8)));
  EXPECT_LE(Tensor::AllCloseViolation(got, expected, 1e-5, 1e-5), 0.0);
  EXPECT_EQ(expected.dims(), (std::vector<std::int64_t>{2, 32, 1, 1}));
}

TEST(BatchNorm, ScaleShiftFoldingFormula) {
  Rng rng(19);
  const std::int64_t c = 8;
  Tensor gamma = Tensor::Random({c}, rng, 0.5f, 1.5f);
  Tensor beta = Tensor::Random({c}, rng, -0.5f, 0.5f);
  Tensor mean = Tensor::Random({c}, rng, -0.5f, 0.5f);
  Tensor var = Tensor::Random({c}, rng, 0.5f, 1.5f);
  Tensor scale, shift;
  ComputeBnScaleShift(gamma, beta, mean, var, 1e-5f, &scale, &shift);
  Tensor x = Tensor::Random({1, c, 4, 4}, rng, -2, 2, Layout::NCHW());
  Tensor y = ScaleShiftNCHW(x, scale, shift, false);
  // Reference: classic BN formula.
  for (std::int64_t ch = 0; ch < c; ++ch) {
    for (std::int64_t i = 0; i < 16; ++i) {
      const float xin = x.data()[ch * 16 + i];
      const float expected = (xin - mean.data()[ch]) /
                                 std::sqrt(var.data()[ch] + 1e-5f) * gamma.data()[ch] +
                             beta.data()[ch];
      EXPECT_NEAR(y.data()[ch * 16 + i], expected, 1e-5) << ch << "," << i;
    }
  }
}

TEST(BatchNorm, NCHWcVariantMatchesAndFusesRelu) {
  Rng rng(20);
  const std::int64_t c = 32;
  Tensor scale = Tensor::Random({c}, rng, 0.5f, 1.5f);
  Tensor shift = Tensor::Random({c}, rng, -1.0f, 1.0f);
  Tensor x = Tensor::Random({1, c, 5, 5}, rng, -2, 2, Layout::NCHW());
  Tensor expected = ScaleShiftNCHW(x, scale, shift, /*relu=*/true);
  Tensor got = NCHWcToNCHW(ScaleShiftNCHWc(NCHWToNCHWc(x, 16), scale, shift, /*relu=*/true));
  EXPECT_EQ(Tensor::MaxAbsDiff(expected, got), 0.0);
  for (std::int64_t i = 0; i < expected.NumElements(); ++i) {
    EXPECT_GE(expected.data()[i], 0.0f);
  }
}

TEST(Elementwise, ReluClampsNegatives) {
  Tensor x = Tensor::Empty({4});
  x.data()[0] = -1.0f;
  x.data()[1] = 0.0f;
  x.data()[2] = 2.0f;
  x.data()[3] = -0.5f;
  Tensor y = Relu(x);
  EXPECT_FLOAT_EQ(y.data()[0], 0.0f);
  EXPECT_FLOAT_EQ(y.data()[1], 0.0f);
  EXPECT_FLOAT_EQ(y.data()[2], 2.0f);
  EXPECT_FLOAT_EQ(y.data()[3], 0.0f);
}

TEST(Elementwise, AddWithReluAndLayoutCheck) {
  Rng rng(22);
  Tensor a = Tensor::Random({1, 8, 3, 3}, rng, -1, 1, Layout::NCHW());
  Tensor b = Tensor::Random({1, 8, 3, 3}, rng, -1, 1, Layout::NCHW());
  Tensor y = AddElementwise(a, b, /*relu=*/true);
  for (std::int64_t i = 0; i < y.NumElements(); ++i) {
    EXPECT_FLOAT_EQ(y.data()[i], std::max(a.data()[i] + b.data()[i], 0.0f));
  }
  Tensor mismatched = b.Clone();
  mismatched.set_layout(Layout::NHWC());  // same dims, different layout tag
  EXPECT_DEATH(AddElementwise(a, mismatched, false), "identical layouts");
}

TEST(Elementwise, ConcatNCHWAndNCHWcAgree) {
  Rng rng(23);
  Tensor a = Tensor::Random({1, 16, 4, 4}, rng, -1, 1, Layout::NCHW());
  Tensor b = Tensor::Random({1, 32, 4, 4}, rng, -1, 1, Layout::NCHW());
  Tensor expected = ConcatChannels({a, b});
  EXPECT_EQ(expected.dim(1), 48);
  Tensor got = NCHWcToNCHW(ConcatChannels({NCHWToNCHWc(a, 16), NCHWToNCHWc(b, 16)}));
  EXPECT_EQ(Tensor::MaxAbsDiff(expected, got), 0.0);
}

TEST(Elementwise, SoftmaxRowsSumToOne) {
  Rng rng(24);
  Tensor x = Tensor::Random({3, 10}, rng, -5, 5);
  Tensor y = Softmax(x);
  for (std::int64_t r = 0; r < 3; ++r) {
    double sum = 0.0;
    for (std::int64_t c = 0; c < 10; ++c) {
      const float v = y.data()[r * 10 + c];
      EXPECT_GT(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Elementwise, SoftmaxIsShiftInvariant) {
  Tensor x = Tensor::Empty({1, 3});
  x.data()[0] = 1000.0f;  // would overflow exp() without the max-subtraction
  x.data()[1] = 1001.0f;
  x.data()[2] = 1002.0f;
  Tensor y = Softmax(x);
  EXPECT_FALSE(std::isnan(y.data()[0]));
  EXPECT_GT(y.data()[2], y.data()[1]);
}

TEST(Elementwise, FlattenRequiresNCHW) {
  Rng rng(25);
  Tensor x = Tensor::Random({1, 8, 2, 2}, rng, -1, 1, Layout::NCHW());
  Tensor flat = FlattenNCHW(x);
  EXPECT_EQ(flat.dims(), (std::vector<std::int64_t>{1, 32}));
  Tensor blocked = NCHWToNCHWc(x, 8);
  Tensor fake4d = blocked.Reshaped({1, 4, 2, 4}, Layout::NCHWc(8));  // 4-D, wrong layout
  EXPECT_DEATH(FlattenNCHW(fake4d), "layout-dependent");
}

TEST(Multibox, PriorCountsAndRanges) {
  MultiboxPriorParams p;
  p.feature_h = 4;
  p.feature_w = 4;
  p.sizes = {0.2f, 0.3f};
  p.ratios = {1.0f, 2.0f, 0.5f};
  EXPECT_EQ(PriorsPerLocation(p), 4);  // |sizes| + |ratios| - 1
  Tensor priors = MultiboxPrior(p);
  EXPECT_EQ(priors.dims(), (std::vector<std::int64_t>{4 * 4 * 4, 4}));
  for (std::int64_t i = 0; i < priors.dim(0); ++i) {
    EXPECT_GT(priors.data()[i * 4 + 2], 0.0f);  // width > 0
    EXPECT_GT(priors.data()[i * 4 + 3], 0.0f);  // height > 0
    EXPECT_GE(priors.data()[i * 4 + 0], 0.0f);
    EXPECT_LE(priors.data()[i * 4 + 0], 1.0f);
  }
}

TEST(Multibox, DetectionDecodesAndSuppresses) {
  // Two anchors at the same location: with zero loc deltas their decoded boxes coincide,
  // so NMS must keep only the higher-scoring one for the same class.
  MultiboxDetectionParams p;
  p.num_classes = 3;
  p.score_threshold = 0.1f;
  p.nms_threshold = 0.5f;
  Tensor cls = Tensor::Zeros({2, 3});
  cls.data()[0 * 3 + 1] = 0.9f;  // anchor 0, class 1
  cls.data()[1 * 3 + 1] = 0.8f;  // anchor 1, class 1 (suppressed: same box)
  Tensor loc = Tensor::Zeros({2 * 4});
  Tensor anchors = Tensor::Empty({2, 4});
  for (int a = 0; a < 2; ++a) {
    anchors.data()[a * 4 + 0] = 0.5f;
    anchors.data()[a * 4 + 1] = 0.5f;
    anchors.data()[a * 4 + 2] = 0.2f;
    anchors.data()[a * 4 + 3] = 0.2f;
  }
  Tensor out = MultiboxDetection(p, cls, loc, anchors);
  int kept = 0;
  for (std::int64_t i = 0; i < out.dim(0); ++i) {
    if (out.data()[i * 6] >= 0.0f) {
      ++kept;
    }
  }
  EXPECT_EQ(kept, 1);
  EXPECT_FLOAT_EQ(out.data()[0], 1.0f);   // class id
  EXPECT_FLOAT_EQ(out.data()[1], 0.9f);   // winning score
  EXPECT_NEAR(out.data()[2], 0.4f, 1e-5);  // x1 = cx - w/2
  EXPECT_NEAR(out.data()[5], 0.6f, 1e-5);  // y2 = cy + h/2
}

TEST(Multibox, DetectionRespectsScoreThreshold) {
  MultiboxDetectionParams p;
  p.num_classes = 2;
  p.score_threshold = 0.5f;
  Tensor cls = Tensor::Zeros({1, 2});
  cls.data()[1] = 0.4f;  // below threshold
  Tensor loc = Tensor::Zeros({4});
  Tensor anchors = Tensor::Full({1, 4}, 0.5f);
  Tensor out = MultiboxDetection(p, cls, loc, anchors);
  for (std::int64_t i = 0; i < out.dim(0); ++i) {
    EXPECT_FLOAT_EQ(out.data()[i * 6], -1.0f);
  }
}

}  // namespace
}  // namespace neocpu
