// Unit tests for the threading runtime: SPSC queue, the custom fork-join pool, the
// OpenMP-style baseline pool, and the ParallelFor facade.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "src/runtime/omp_pool.h"
#include "src/runtime/spsc_queue.h"
#include "src/runtime/thread_pool.h"

namespace neocpu {
namespace {

TEST(SpscQueue, PushPopOrdering) {
  SpscQueue<int> q(8);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(q.TryPush(i));
  }
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(q.TryPop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.TryPop(out));
}

TEST(SpscQueue, FullQueueRejectsPush) {
  SpscQueue<int> q(2);  // rounds up to capacity >= 2
  std::size_t pushed = 0;
  while (q.TryPush(static_cast<int>(pushed))) {
    ++pushed;
  }
  EXPECT_GE(pushed, 2u);
  int out;
  EXPECT_TRUE(q.TryPop(out));
  EXPECT_TRUE(q.TryPush(99));  // slot freed
}

TEST(SpscQueue, ConcurrentProducerConsumer) {
  SpscQueue<int> q(64);
  constexpr int kCount = 20000;
  std::atomic<long long> sum{0};
  std::thread consumer([&] {
    int received = 0;
    int value;
    while (received < kCount) {
      if (q.TryPop(value)) {
        sum += value;
        ++received;
      }
    }
  });
  for (int i = 0; i < kCount; ++i) {
    while (!q.TryPush(i)) {
    }
  }
  consumer.join();
  EXPECT_EQ(sum.load(), static_cast<long long>(kCount) * (kCount - 1) / 2);
}

template <typename Pool>
void CheckPoolRunsAllTasks(int workers, int tasks) {
  Pool pool(workers);
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(tasks));
  for (auto& h : hits) {
    h = 0;
  }
  pool.ParallelRun(tasks, [&](int task, int num_tasks) {
    EXPECT_EQ(num_tasks, tasks);
    hits[static_cast<std::size_t>(task)]++;
  });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(NeoThreadPool, RunsEveryTaskExactlyOnce) {
  CheckPoolRunsAllTasks<NeoThreadPool>(4, 4);
  CheckPoolRunsAllTasks<NeoThreadPool>(4, 11);  // more tasks than workers
  CheckPoolRunsAllTasks<NeoThreadPool>(1, 5);   // degenerate single worker
}

TEST(OmpStylePool, RunsEveryTaskExactlyOnce) {
  CheckPoolRunsAllTasks<OmpStylePool>(4, 4);
  CheckPoolRunsAllTasks<OmpStylePool>(4, 9);
  CheckPoolRunsAllTasks<OmpStylePool>(1, 3);
}

template <typename Pool>
void CheckRepeatedRegions(int workers) {
  Pool pool(workers);
  std::atomic<long long> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelRun(workers, [&](int task, int) { total += task + 1; });
  }
  const long long per_round = static_cast<long long>(workers) * (workers + 1) / 2;
  EXPECT_EQ(total.load(), 200 * per_round);
}

TEST(NeoThreadPool, ManyBackToBackRegions) { CheckRepeatedRegions<NeoThreadPool>(3); }

TEST(OmpStylePool, ManyBackToBackRegions) { CheckRepeatedRegions<OmpStylePool>(3); }

TEST(NeoThreadPool, ZeroAndOneTaskFastPaths) {
  NeoThreadPool pool(2);
  int calls = 0;
  pool.ParallelRun(0, [&](int, int) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelRun(1, [&](int task, int n) {
    EXPECT_EQ(task, 0);
    EXPECT_EQ(n, 1);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  NeoThreadPool pool(4);
  constexpr std::int64_t kTotal = 1000;
  std::vector<std::atomic<int>> hits(kTotal);
  for (auto& h : hits) {
    h = 0;
  }
  ParallelFor(pool, kTotal, [&](std::int64_t begin, std::int64_t end) {
    EXPECT_LT(begin, end);
    for (std::int64_t i = begin; i < end; ++i) {
      hits[static_cast<std::size_t>(i)]++;
    }
  });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, SmallRangeFewerChunksThanWorkers) {
  NeoThreadPool pool(8);
  std::atomic<int> count{0};
  ParallelFor(pool, 3, [&](std::int64_t begin, std::int64_t end) {
    count += static_cast<int>(end - begin);
  });
  EXPECT_EQ(count.load(), 3);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  SerialEngine serial;
  bool called = false;
  ParallelFor(serial, 0, [&](std::int64_t, std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(SerialEngine, RunsInline) {
  SerialEngine serial;
  std::vector<int> order;
  serial.ParallelRun(4, [&](int task, int) { order.push_back(task); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Pools, ReportWorkerCountAndName) {
  NeoThreadPool neo(3);
  OmpStylePool omp(3);
  EXPECT_EQ(neo.NumWorkers(), 3);
  EXPECT_EQ(omp.NumWorkers(), 3);
  EXPECT_STREQ(neo.Name(), "neocpu-threadpool");
  EXPECT_STREQ(omp.Name(), "omp-style");
}

// Both pools must compute identical results for a deterministic partitioned workload.
TEST(Pools, EquivalentPartitionedResults) {
  constexpr std::int64_t kN = 1 << 14;
  std::vector<float> data(kN);
  std::iota(data.begin(), data.end(), 0.0f);
  auto run_with = [&](ThreadEngine& eng) {
    std::vector<double> partial(static_cast<std::size_t>(eng.NumWorkers()), 0.0);
    eng.ParallelRun(eng.NumWorkers(), [&](int task, int num) {
      const std::int64_t begin = kN * task / num;
      const std::int64_t end = kN * (task + 1) / num;
      double s = 0.0;
      for (std::int64_t i = begin; i < end; ++i) {
        s += data[static_cast<std::size_t>(i)];
      }
      partial[static_cast<std::size_t>(task)] = s;
    });
    double total = 0.0;
    for (double p : partial) {
      total += p;
    }
    return total;
  };
  NeoThreadPool neo(4);
  OmpStylePool omp(4);
  EXPECT_DOUBLE_EQ(run_with(neo), run_with(omp));
}

}  // namespace
}  // namespace neocpu
