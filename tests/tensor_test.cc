// Unit tests for Tensor and Layout.
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/tensor/tensor.h"

namespace neocpu {
namespace {

TEST(Layout, ToStringMatchesPaperNotation) {
  EXPECT_EQ(Layout::NCHW().ToString(), "NCHW");
  EXPECT_EQ(Layout::NHWC().ToString(), "NHWC");
  EXPECT_EQ(Layout::NCHWc(16).ToString(), "NCHW16c");
  EXPECT_EQ(Layout::OIHW().ToString(), "OIHW");
  EXPECT_EQ(Layout::OIHWio(16, 8).ToString(), "OIHW16i8o");
  EXPECT_EQ(Layout::Flat().ToString(), "flat");
}

TEST(Layout, Equality) {
  EXPECT_EQ(Layout::NCHWc(16), Layout::NCHWc(16));
  EXPECT_NE(Layout::NCHWc(16), Layout::NCHWc(8));
  EXPECT_NE(Layout::NCHW(), Layout::NHWC());
}

TEST(Tensor, EmptyAndDims) {
  Tensor t = Tensor::Empty({2, 3, 4}, Layout::Flat());
  EXPECT_TRUE(t.defined());
  EXPECT_EQ(t.ndim(), 3);
  EXPECT_EQ(t.NumElements(), 24);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.SizeBytes(), 24 * sizeof(float));
}

TEST(Tensor, DefaultIsUndefined) {
  Tensor t;
  EXPECT_FALSE(t.defined());
}

TEST(Tensor, ZerosAndFull) {
  Tensor z = Tensor::Zeros({5});
  for (std::int64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(z.data()[i], 0.0f);
  }
  Tensor f = Tensor::Full({3}, 2.5f);
  for (std::int64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(f.data()[i], 2.5f);
  }
}

TEST(Tensor, RandomDeterministicAndInRange) {
  Rng a(5), b(5);
  Tensor ta = Tensor::Random({100}, a, -1.0f, 1.0f);
  Tensor tb = Tensor::Random({100}, b, -1.0f, 1.0f);
  EXPECT_EQ(Tensor::MaxAbsDiff(ta, tb), 0.0);
  for (std::int64_t i = 0; i < 100; ++i) {
    EXPECT_GE(ta.data()[i], -1.0f);
    EXPECT_LT(ta.data()[i], 1.0f);
  }
}

TEST(Tensor, CopyIsShallowCloneIsDeep) {
  Tensor a = Tensor::Zeros({4});
  Tensor shallow = a;
  Tensor deep = a.Clone();
  a.data()[0] = 7.0f;
  EXPECT_EQ(shallow.data()[0], 7.0f);
  EXPECT_EQ(deep.data()[0], 0.0f);
}

TEST(Tensor, ReshapePreservesBufferAndChecksCount) {
  Tensor a = Tensor::Zeros({2, 6});
  Tensor b = a.Reshaped({3, 4});
  b.data()[0] = 1.0f;
  EXPECT_EQ(a.data()[0], 1.0f);
  EXPECT_EQ(b.dim(0), 3);
  EXPECT_DEATH(a.Reshaped({5, 5}), "reshape");
}

TEST(Tensor, MaxAbsAndRelDiff) {
  Tensor a = Tensor::Zeros({3});
  Tensor b = Tensor::Zeros({3});
  b.data()[1] = 0.5f;
  EXPECT_DOUBLE_EQ(Tensor::MaxAbsDiff(a, b), 0.5);
  EXPECT_GT(Tensor::MaxRelDiff(a, b), 0.9);  // 0 vs 0.5 is a full relative error
  EXPECT_DOUBLE_EQ(Tensor::MaxAbsDiff(a, a), 0.0);
}

TEST(Tensor, DebugStringMentionsDimsLayoutAndDtype) {
  Tensor t = Tensor::Empty({1, 2, 3, 4, 16}, Layout::NCHWc(16));
  EXPECT_EQ(t.DebugString(), "Tensor<1x2x3x4x16,NCHW16c,f32>");
  Tensor q = Tensor::Empty({8}, Layout::Flat(), DType::kS8);
  EXPECT_EQ(q.DebugString(), "Tensor<8,flat,s8>");
  EXPECT_EQ(q.SizeBytes(), 8u);
  EXPECT_EQ(Tensor::Empty({8}, Layout::Flat(), DType::kS32).SizeBytes(), 32u);
}

}  // namespace
}  // namespace neocpu
