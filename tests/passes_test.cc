// Graph-pass tests: inference simplification, operator fusion, and the layout
// alteration / transform elimination pass (paper §3.2, Figure 2). Every structural
// assertion is paired with a numerical equivalence check through the executor.
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/core/executor.h"
#include "src/graph/builder.h"
#include "src/graph/passes/passes.h"

namespace neocpu {
namespace {

Tensor RandomInput(const Graph& g, std::uint64_t seed = 1) {
  Rng rng(seed);
  const Node* input = nullptr;
  for (int i = 0; i < g.num_nodes(); ++i) {
    if (g.node(i).type == OpType::kInput) {
      input = &g.node(i);
      break;
    }
  }
  return Tensor::Random(input->out_dims, rng, -1.0f, 1.0f, Layout::NCHW());
}

// AllClose violation (<= 0 means equivalent within fp32 reassociation tolerance).
double DiffAfter(const Graph& before, const Graph& after) {
  Tensor in = RandomInput(before);
  Tensor a = Executor(&before).Run(in);
  Tensor b = Executor(&after).Run(in);
  return Tensor::AllCloseViolation(b, a, 1e-3, 2e-3);
}

// A ResNet-style block: conv-bn-relu -> conv-bn -> add(shortcut) -> relu.
Graph ResidualBlockGraph() {
  GraphBuilder b("resblock");
  int x = b.Input({1, 16, 10, 10});
  int shortcut = x;
  x = b.ConvBnRelu(x, 16, 3, 1, 1, "c1");
  x = b.Conv(x, 16, 3, 1, 1, false, "c2");
  x = b.BatchNorm(x);
  x = b.Add(x, shortcut);
  x = b.Relu(x);
  return b.Finish({x});
}

// DenseNet-style pre-activation: bn-relu-conv (BN cannot fold into a producer conv).
Graph PreActivationGraph() {
  GraphBuilder b("preact");
  int x = b.Input({1, 16, 8, 8});
  x = b.Conv(x, 16, 3, 1, 1, false, "c0");
  x = b.MaxPool(x, 2, 2, 0);  // non-conv producer: the BN below cannot fold upstream
  int bn = b.BatchNorm(x);
  int r = b.Relu(bn);
  int c = b.Conv(r, 16, 3, 1, 1, false, "c1");
  return b.Finish({c});
}

TEST(SimplifyInference, RemovesDropout) {
  GraphBuilder b("d");
  int x = b.Input({1, 8, 4, 4});
  x = b.Conv(x, 8, 3, 1, 1);
  x = b.Dropout(x);
  x = b.Relu(x);
  Graph g = b.Finish({x});
  Graph simplified = SimplifyInference(g);
  EXPECT_EQ(simplified.CountNodes(OpType::kDropout), 0);
  EXPECT_LE(DiffAfter(g, simplified), 0.0);
}

TEST(SimplifyInference, FoldsBnIntoProducingConv) {
  Graph g = ResidualBlockGraph();
  EXPECT_EQ(g.CountNodes(OpType::kBatchNorm), 2);
  Graph simplified = SimplifyInference(g);
  // Both BNs sit directly after single-consumer convs: both fold away entirely.
  EXPECT_EQ(simplified.CountNodes(OpType::kBatchNorm), 0);
  EXPECT_EQ(simplified.CountNodes(OpType::kScaleShift), 0);
  // Folded convs gained a bias.
  for (int i = 0; i < simplified.num_nodes(); ++i) {
    if (simplified.node(i).IsConv()) {
      EXPECT_TRUE(simplified.node(i).attrs.epilogue.bias);
    }
  }
  EXPECT_LE(DiffAfter(g, simplified), 0.0);
}

TEST(SimplifyInference, PreActivationBnBecomesScaleShift) {
  Graph g = PreActivationGraph();
  Graph simplified = SimplifyInference(g);
  EXPECT_EQ(simplified.CountNodes(OpType::kBatchNorm), 0);
  EXPECT_EQ(simplified.CountNodes(OpType::kScaleShift), 1);
  EXPECT_LE(DiffAfter(g, simplified), 0.0);
}

TEST(FuseOps, ConvAddReluCollapse) {
  Graph g = SimplifyInference(ResidualBlockGraph());
  Graph fused = FuseOps(g);
  // conv1 absorbs its relu; conv2 absorbs the add and the final relu.
  EXPECT_EQ(fused.CountNodes(OpType::kRelu), 0);
  EXPECT_EQ(fused.CountNodes(OpType::kElemAdd), 0);
  int residual_convs = 0;
  for (int i = 0; i < fused.num_nodes(); ++i) {
    const Node& n = fused.node(i);
    if (n.IsConv() && n.attrs.epilogue.residual_add) {
      ++residual_convs;
      EXPECT_TRUE(n.attrs.epilogue.relu);
      // Residual operand arrives as the extra last input.
      EXPECT_EQ(n.inputs.size(), 4u);  // data, weight, bias(folded BN), residual
    }
  }
  EXPECT_EQ(residual_convs, 1);
  EXPECT_LE(DiffAfter(g, fused), 0.0);
}

TEST(FuseOps, ScaleShiftAbsorbsRelu) {
  Graph g = SimplifyInference(PreActivationGraph());
  Graph fused = FuseOps(g);
  EXPECT_EQ(fused.CountNodes(OpType::kRelu), 0);
  bool found = false;
  for (int i = 0; i < fused.num_nodes(); ++i) {
    if (fused.node(i).type == OpType::kScaleShift) {
      EXPECT_TRUE(fused.node(i).attrs.relu);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_LE(DiffAfter(g, fused), 0.0);
}

TEST(FuseOps, DoesNotFuseMultiConsumerConv) {
  GraphBuilder b("multi");
  int x = b.Input({1, 8, 6, 6});
  int c = b.Conv(x, 8, 3, 1, 1);
  int r = b.Relu(c);
  int r2 = b.Relu(c);  // second consumer: relu cannot be absorbed
  int add = b.Add(r, r2);
  Graph g = b.Finish({add});
  Graph fused = FuseOps(SimplifyInference(g));
  EXPECT_EQ(fused.CountNodes(OpType::kRelu), 2);
  EXPECT_LE(DiffAfter(g, fused), 0.0);
}

TEST(AlterConvLayout, PerOpInsertsTransformsAroundEveryConv) {
  // Two chained convs, per-op placement: NCHW->NCHWc before each conv and back after
  // each conv = 4 runtime transforms (Figure 2 left-hand side behaviour).
  GraphBuilder b("chain");
  int x = b.Input({1, 16, 10, 10});
  x = b.Conv(x, 16, 3, 1, 1, false, "c1");
  x = b.Conv(x, 16, 3, 1, 1, false, "c2");
  Graph g = b.Finish({x});
  Graph fused = FuseOps(SimplifyInference(g));
  std::map<int, ConvSchedule> schedules;
  for (int i = 0; i < fused.num_nodes(); ++i) {
    if (fused.node(i).IsConv()) {
      schedules[i] = ConvSchedule{16, 16, 8, true};
    }
  }
  Graph per_op = AlterConvLayout(fused, schedules, LayoutPlacement::kPerOp);
  EXPECT_EQ(per_op.CountNodes(OpType::kLayoutTransform), 4);
  Graph propagated = AlterConvLayout(fused, schedules, LayoutPlacement::kPropagate);
  // Right-hand side of Figure 2: one transform in, one transform out.
  EXPECT_EQ(propagated.CountNodes(OpType::kLayoutTransform), 2);
  EXPECT_LE(DiffAfter(g, per_op), 0.0);
  EXPECT_LE(DiffAfter(g, propagated), 0.0);
}

TEST(AlterConvLayout, MismatchedBlocksInsertReblockTransform) {
  GraphBuilder b("mismatch");
  int x = b.Input({1, 16, 10, 10});
  x = b.Conv(x, 32, 3, 1, 1, false, "c1");
  x = b.Conv(x, 32, 3, 1, 1, false, "c2");
  Graph g = b.Finish({x});
  Graph fused = FuseOps(SimplifyInference(g));
  std::map<int, ConvSchedule> schedules;
  bool first = true;
  for (int i = 0; i < fused.num_nodes(); ++i) {
    if (fused.node(i).IsConv()) {
      // c1 outputs blocks of 16 but c2 consumes blocks of 8: a re-block transform must
      // appear between them.
      schedules[i] = first ? ConvSchedule{16, 16, 8, true} : ConvSchedule{8, 8, 8, true};
      first = false;
    }
  }
  Graph out = AlterConvLayout(fused, schedules, LayoutPlacement::kPropagate);
  EXPECT_EQ(out.CountNodes(OpType::kLayoutTransform), 3);  // in, re-block, out
  EXPECT_LE(DiffAfter(g, out), 0.0);
}

TEST(AlterConvLayout, WeightsArePreTransformed) {
  GraphBuilder b("weights");
  int x = b.Input({1, 16, 8, 8});
  x = b.Conv(x, 32, 3, 1, 1, false, "c1");
  Graph g = b.Finish({x});
  Graph fused = FuseOps(SimplifyInference(g));
  std::map<int, ConvSchedule> schedules;
  for (int i = 0; i < fused.num_nodes(); ++i) {
    if (fused.node(i).IsConv()) {
      schedules[i] = ConvSchedule{16, 16, 4, true};
    }
  }
  Graph out = AlterConvLayout(fused, schedules, LayoutPlacement::kPropagate);
  for (int i = 0; i < out.num_nodes(); ++i) {
    const Node& n = out.node(i);
    if (n.IsConv()) {
      const Node& w = out.node(n.inputs[1]);
      // Figure 2: the kernel constant is already OIHW[x]i[y]o at compile time.
      EXPECT_EQ(w.payload.layout(), Layout::OIHWio(16, 16));
      EXPECT_EQ(w.payload.ndim(), 6);
    }
  }
}

TEST(AlterConvLayout, ResidualInputsAgreeOnLayout) {
  Graph g = FuseOps(SimplifyInference(ResidualBlockGraph()));
  std::map<int, ConvSchedule> schedules;
  for (int i = 0; i < g.num_nodes(); ++i) {
    if (g.node(i).IsConv()) {
      schedules[i] = ConvSchedule{16, 16, 8, true};
    }
  }
  Graph out = AlterConvLayout(g, schedules, LayoutPlacement::kPropagate);
  EXPECT_LE(DiffAfter(ResidualBlockGraph(), out), 0.0);
}

TEST(AlterConvLayout, ConcatFallsBackWhenBlockDoesNotDivide) {
  // 8-channel branch cannot carry NCHW16c: the concat group must fall back to NCHW.
  GraphBuilder b("concat");
  int x = b.Input({1, 16, 6, 6});
  int a = b.Conv(x, 16, 1, 1, 0, false, "a");
  int c = b.Conv(x, 8, 1, 1, 0, false, "c");
  int cat = b.Concat({a, c});
  Graph g = b.Finish({cat});
  Graph fused = FuseOps(SimplifyInference(g));
  std::map<int, ConvSchedule> schedules;
  for (int i = 0; i < fused.num_nodes(); ++i) {
    if (fused.node(i).IsConv()) {
      const auto& p = fused.node(i).attrs.conv;
      schedules[i] = ConvSchedule{16, p.out_c >= 16 ? 16 : 8, 4, true};
    }
  }
  Graph out = AlterConvLayout(fused, schedules, LayoutPlacement::kPropagate);
  EXPECT_LE(DiffAfter(g, out), 0.0);
  // Output of concat is NCHW (logical), equivalence is the main assertion.
}

TEST(BindNchwKernels, SetsKernelKind) {
  GraphBuilder b("bind");
  int x = b.Input({1, 8, 6, 6});
  x = b.Conv(x, 8, 3, 1, 1);
  Graph g = b.Finish({x});
  Graph bound = BindNchwKernels(g, ConvKernelKind::kIm2col);
  for (int i = 0; i < bound.num_nodes(); ++i) {
    if (bound.node(i).IsConv()) {
      EXPECT_EQ(bound.node(i).attrs.kernel, ConvKernelKind::kIm2col);
    }
  }
  EXPECT_LE(DiffAfter(g, bound), 0.0);
}

}  // namespace
}  // namespace neocpu
