// Static memory planning: plan invariants, planned-vs-allocating bitwise equivalence
// across the model zoo, the interval-overlap (aliasing) regression, and the
// zero-allocation guarantee of the steady-state execution path.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/core/compiler.h"
#include "src/core/memory_plan.h"
#include "src/core/op_dispatch.h"
#include "src/core/presets.h"
#include "src/core/serialization.h"
#include "src/graph/builder.h"
#include "src/models/model_zoo.h"
#include "src/runtime/arena_pool.h"
#include "src/runtime/thread_pool.h"

namespace neocpu {
namespace {

Tensor InputFor(const Graph& model, std::uint64_t seed = 17) {
  Rng rng(seed);
  for (int i = 0; i < model.num_nodes(); ++i) {
    if (model.node(i).type == OpType::kInput) {
      return Tensor::Random(model.node(i).out_dims, rng, -1.0f, 1.0f, Layout::NCHW());
    }
  }
  ADD_FAILURE() << "no input node";
  return {};
}

// Runs the same executable graph through the allocating executor and the planned one;
// identical kernels in identical order must agree bit for bit.
void ExpectPlannedMatchesAllocatingBitwise(const CompiledModel& compiled,
                                           const Tensor& input, const std::string& label) {
  ASSERT_NE(compiled.plan(), nullptr) << label;
  std::vector<std::string> errors;
  EXPECT_TRUE(ValidatePlan(compiled.graph(), *compiled.plan(), &errors))
      << label << ":\n"
      << (errors.empty() ? "" : errors.front()) << "\n"
      << compiled.plan()->ToString();

  const Executor allocating(&compiled.graph());
  const Executor planned(&compiled.graph(), nullptr, compiled.plan());
  const Tensor expected = allocating.Run(input);
  const Tensor got = planned.Run(input);
  EXPECT_EQ(Tensor::MaxAbsDiff(expected, got), 0.0) << label;
  // And again on the same pooled arena (a reused arena holds the previous run's
  // garbage: stale bytes must never leak into results).
  const Tensor again = planned.Run(input);
  EXPECT_EQ(Tensor::MaxAbsDiff(expected, again), 0.0) << label << " (arena reuse)";
}

struct ZooCase {
  std::string label;
  Graph (*build)();
};

Graph TinyResNet18() { return BuildResNet(18, 1, 64); }
Graph TinyResNet50() { return BuildResNet(50, 1, 64); }
Graph TinyVgg11() { return BuildVgg(11, 1, 64); }
Graph TinyDenseNet121() { return BuildDenseNet(121, 1, 64); }
Graph TinyInception() { return BuildInceptionV3(1, 139); }
Graph TinySsd() { return BuildSsdResNet50(1, 128, 5); }
Graph TinyCnn() { return BuildTinyCnn(1, 32); }

class ZooPlanEquivalence : public ::testing::TestWithParam<ZooCase> {};

// Every model-zoo model: planned-arena execution must be bitwise identical to the seed
// allocating executor, the plan must pass interval validation, and reuse must beat (or
// match) the naive sum-of-intermediates footprint.
TEST_P(ZooPlanEquivalence, PlannedExecutionIsBitwiseIdentical) {
  Graph model = GetParam().build();
  Tensor input = InputFor(model);
  CompiledModel compiled = Compile(model, NeoCpuOptions(Target::Host()));

  ASSERT_NE(compiled.plan(), nullptr);
  EXPECT_TRUE(compiled.stats().memory_planned) << GetParam().label;
  EXPECT_GT(compiled.plan()->arena_nodes, 0) << GetParam().label;
  EXPECT_GT(compiled.stats().arena_bytes, 0u) << GetParam().label;
  EXPECT_LE(compiled.stats().arena_bytes, compiled.stats().naive_arena_bytes)
      << GetParam().label;

  ExpectPlannedMatchesAllocatingBitwise(compiled, input, GetParam().label);
}

INSTANTIATE_TEST_SUITE_P(Zoo, ZooPlanEquivalence,
                         ::testing::Values(ZooCase{"tiny_cnn", &TinyCnn},
                                           ZooCase{"resnet18", &TinyResNet18},
                                           ZooCase{"resnet50", &TinyResNet50},
                                           ZooCase{"vgg11", &TinyVgg11},
                                           ZooCase{"densenet121", &TinyDenseNet121},
                                           ZooCase{"inception", &TinyInception},
                                           ZooCase{"ssd", &TinySsd}),
                         [](const ::testing::TestParamInfo<ZooCase>& info) {
                           return info.param.label;
                         });

// In-place elementwise: a ReLU (or ScaleShift/ElemAdd) whose input dies at that node
// writes over the input's arena slot instead of claiming a second buffer — the peak
// footprint regression this guards is "elementwise chains must not double-buffer".
TEST(MemoryPlan, InPlaceElementwiseShrinksPeak) {
  // conv1 -> relu -> conv2 built directly (FuseOps would absorb the relu; the planner
  // must handle standalone elementwise nodes, which survive fusion after ElemAdd and
  // in pre-activation stacks).
  GraphBuilder b("inplace");
  int x = b.Input({1, 8, 16, 16});
  int c1 = b.Conv(x, 8, 3, 1, 1, /*bias=*/false, "c1");
  int r = b.Relu(c1);
  int c2 = b.Conv(r, 8, 3, 1, 1, /*bias=*/false, "c2");
  Graph g = b.Finish({c2});

  ExecutionPlan plan = PlanMemory(g);
  std::vector<std::string> errors;
  ASSERT_TRUE(ValidatePlan(g, plan, &errors)) << (errors.empty() ? "" : errors.front());
  EXPECT_EQ(plan.in_place_nodes, 1) << plan.ToString();
  EXPECT_EQ(plan.nodes[static_cast<std::size_t>(r)].in_place_of, c1) << plan.ToString();
  EXPECT_EQ(plan.nodes[static_cast<std::size_t>(r)].offset,
            plan.nodes[static_cast<std::size_t>(c1)].offset);
  // Peak = two feature maps (conv1's output reused by the relu + conv2's... conv2 is
  // the escaping output, heap-placed), i.e. exactly ONE buffer beyond the relu chain:
  // the arena holds conv1/relu's shared slot while conv2 writes to the heap. Without
  // in-place reuse the peak would be two slots.
  const std::size_t one_map = plan.nodes[static_cast<std::size_t>(c1)].size_bytes;
  EXPECT_EQ(plan.arena_bytes, one_map) << plan.ToString();

  // Numerics are unchanged: planned (in-place) == allocating, bit for bit.
  Tensor input = InputFor(g);
  const Tensor expected = Executor(&g).Run(input);
  auto shared = std::make_shared<const ExecutionPlan>(plan);
  EXPECT_EQ(Tensor::MaxAbsDiff(expected, Executor(&g, nullptr, shared).Run(input)), 0.0);
}

// In-place is refused when the input outlives the elementwise node (a second consumer
// reads it later): correctness beats footprint.
TEST(MemoryPlan, InPlaceRefusedWhenInputOutlives) {
  GraphBuilder b("inplace-hazard");
  int x = b.Input({1, 8, 16, 16});
  int c1 = b.Conv(x, 8, 3, 1, 1, /*bias=*/false, "c1");
  int r = b.Relu(c1);
  int c2 = b.Conv(r, 8, 3, 1, 1, /*bias=*/false, "c2");
  int late = b.Add(c1, c2);  // c1 is read again AFTER the relu
  Graph g = b.Finish({late});

  ExecutionPlan plan = PlanMemory(g);
  std::vector<std::string> errors;
  ASSERT_TRUE(ValidatePlan(g, plan, &errors)) << (errors.empty() ? "" : errors.front());
  EXPECT_EQ(plan.nodes[static_cast<std::size_t>(r)].in_place_of, -1) << plan.ToString();

  Tensor input = InputFor(g);
  const Tensor expected = Executor(&g).Run(input);
  auto shared = std::make_shared<const ExecutionPlan>(plan);
  EXPECT_EQ(Tensor::MaxAbsDiff(expected, Executor(&g, nullptr, shared).Run(input)), 0.0);
}

// The im2col baseline exercises the planner's workspace placement (the column buffer
// coexists with the conv's inputs and output).
TEST(MemoryPlan, Im2colWorkspaceIsPlanned) {
  Graph model = BuildTinyCnn(1, 32);
  Tensor input = InputFor(model);
  CompileOptions opts;
  opts.layout_mode = LayoutMode::kNCHW;
  opts.nchw_kernel = ConvKernelKind::kIm2col;
  CompiledModel compiled = Compile(model, opts);

  ASSERT_NE(compiled.plan(), nullptr);
  bool saw_workspace = false;
  for (const NodePlan& np : compiled.plan()->nodes) {
    saw_workspace |= np.workspace_bytes > 0;
  }
  EXPECT_TRUE(saw_workspace) << "im2col convs should plan column-buffer workspaces";
  ExpectPlannedMatchesAllocatingBitwise(compiled, input, "im2col");
}

// Regression for interval-overlap bugs: `a` is consumed again long after intermediate
// buffers came and went. A planner that released `a` after its first consumer would
// hand its bytes to `b` or `c`, and the late add would read clobbered data.
TEST(MemoryPlan, LongLivedBufferSurvivesReuseChurn) {
  GraphBuilder b("alias-hazard");
  int x = b.Input({1, 8, 16, 16});
  int a = b.Relu(x);
  int c1 = b.Conv(a, 8, 3, 1, 1, /*bias=*/false, "c1");
  int c2 = b.Conv(c1, 8, 3, 1, 1, /*bias=*/false, "c2");
  int c3 = b.Conv(c2, 8, 3, 1, 1, /*bias=*/false, "c3");
  int d = b.Add(a, c3);  // `a` must still be intact here
  int out = b.Relu(d);
  Graph g = b.Finish({out});

  ExecutionPlan plan = PlanMemory(g);
  std::vector<std::string> errors;
  EXPECT_TRUE(ValidatePlan(g, plan, &errors)) << (errors.empty() ? "" : errors.front());

  Tensor input = InputFor(g);
  const Tensor expected = Executor(&g).Run(input);
  auto shared = std::make_shared<const ExecutionPlan>(plan);
  const Tensor got = Executor(&g, nullptr, shared).Run(input);
  EXPECT_EQ(Tensor::MaxAbsDiff(expected, got), 0.0);
}

// Same hazard through an alias: the reshape view of `a` keeps `a`'s bytes live even
// though `a` itself has no further direct consumers.
TEST(MemoryPlan, AliasExtendsRootLifetime) {
  GraphBuilder b("alias-chain");
  int x = b.Input({1, 4, 8, 8});
  int a = b.Relu(x);
  int flat = b.Reshape(a, {1, 4 * 8 * 8});  // view of a's buffer
  int c1 = b.Conv(x, 4, 3, 1, 1, /*bias=*/false, "c1");
  int c2 = b.Conv(c1, 4, 3, 1, 1, /*bias=*/false, "c2");
  int flat2 = b.Reshape(c2, {1, 4 * 8 * 8});
  int cat = b.Concat({flat, flat2});  // reads a's bytes through the view
  Graph g = b.Finish({cat});

  ExecutionPlan plan = PlanMemory(g);
  EXPECT_EQ(plan.nodes[static_cast<std::size_t>(flat)].placement, BufferPlacement::kAlias);
  std::vector<std::string> errors;
  EXPECT_TRUE(ValidatePlan(g, plan, &errors)) << (errors.empty() ? "" : errors.front());

  Tensor input = InputFor(g);
  const Tensor expected = Executor(&g).Run(input);
  auto shared = std::make_shared<const ExecutionPlan>(plan);
  EXPECT_EQ(Tensor::MaxAbsDiff(expected, Executor(&g, nullptr, shared).Run(input)), 0.0);
}

// The acceptance criterion: steady-state planned Run performs ZERO heap allocations for
// intermediates and workspaces. The only owning allocations left are the escaping graph
// outputs (one per heap-placed node).
TEST(MemoryPlan, SteadyStateRunAllocatesOnlyOutputs) {
  Graph model = BuildTinyCnn(1, 32);
  Tensor input = InputFor(model);
  CompiledModel compiled = Compile(model, NeoCpuOptions(Target::Host()));
  ASSERT_NE(compiled.plan(), nullptr);
  const Executor planned(&compiled.graph(), nullptr, compiled.plan());

  planned.Run(input);  // warm-up: faults the pooled arena, fills the pool
  const std::uint64_t before = TensorHeapAllocCount();
  constexpr std::uint64_t kRuns = 5;
  for (std::uint64_t i = 0; i < kRuns; ++i) {
    planned.Run(input);
  }
  // Exact total, so even one stray allocation across the window fails.
  EXPECT_EQ(TensorHeapAllocCount() - before,
            kRuns * static_cast<std::uint64_t>(compiled.plan()->heap_nodes))
      << "intermediates/workspaces must come from the arena, not the heap\n"
      << compiled.plan()->ToString();
  // For this single-output model that means exactly one owning allocation per Run.
  EXPECT_EQ(compiled.plan()->heap_nodes, 1);

  // The allocating path, for contrast, allocates every intermediate.
  const Executor allocating(&compiled.graph());
  const std::uint64_t alloc_before = TensorHeapAllocCount();
  allocating.Run(input);
  EXPECT_GT(TensorHeapAllocCount() - alloc_before, static_cast<std::uint64_t>(1));
}

// A caller-owned warm arena (the serving pool's per-partition mode) works identically
// and grows to the plan's footprint.
TEST(MemoryPlan, ExplicitArenaRunMatches) {
  Graph model = BuildTinyCnn(1, 32);
  Tensor input = InputFor(model);
  CompiledModel compiled = Compile(model, NeoCpuOptions(Target::Host()));
  ASSERT_NE(compiled.plan(), nullptr);
  const Executor planned(&compiled.graph(), nullptr, compiled.plan());
  const Tensor expected = Executor(&compiled.graph()).Run(input);

  Arena arena;
  const Tensor got = planned.Run(input, nullptr, &arena);
  EXPECT_EQ(Tensor::MaxAbsDiff(expected, got), 0.0);
  EXPECT_GE(arena.capacity_bytes(), compiled.plan()->arena_bytes);
  const Tensor again = planned.Run(input, nullptr, &arena);
  EXPECT_EQ(Tensor::MaxAbsDiff(expected, again), 0.0);
}

TEST(MemoryPlan, ArenaPoolReusesArenas) {
  ArenaPool pool;
  auto a = pool.Acquire(1024);
  float* base = a->data();
  pool.Release(std::move(a));
  auto b = pool.Acquire(512);  // smaller request reuses the pooled arena
  EXPECT_EQ(b->data(), base);
  pool.Release(std::move(b));
  const ArenaPoolStats stats = pool.Stats();
  EXPECT_EQ(stats.acquired, 2u);
  EXPECT_EQ(stats.created, 1u);
  EXPECT_EQ(stats.pooled, 1u);
}

// Batch variants re-plan: shapes changed, so the footprint scales and execution stays
// exact.
TEST(MemoryPlan, RebindBatchReplans) {
  Graph model = BuildTinyCnn(1, 32);
  CompiledModel compiled = Compile(model, NeoCpuOptions(Target::Host()));
  ASSERT_NE(compiled.plan(), nullptr);

  CompiledModel rebound;
  ASSERT_TRUE(RebindBatch(compiled, 4, &rebound));
  ASSERT_NE(rebound.plan(), nullptr);
  EXPECT_GT(rebound.plan()->arena_bytes, compiled.plan()->arena_bytes);
  std::vector<std::string> errors;
  EXPECT_TRUE(ValidatePlan(rebound.graph(), *rebound.plan(), &errors))
      << (errors.empty() ? "" : errors.front());

  Rng rng(23);
  Tensor input = Tensor::Random({4, 3, 32, 32}, rng, -1.0f, 1.0f, Layout::NCHW());
  const Tensor expected = Executor(&rebound.graph()).Run(input);
  EXPECT_EQ(Tensor::MaxAbsDiff(expected, rebound.Run(input)), 0.0);
}

// Module round trip: a v3 artifact records plan metadata and loads with a working
// (recomputed) plan of the same footprint.
TEST(MemoryPlan, SerializationRoundTripsPlan) {
  Graph model = BuildTinyCnn(1, 32);
  Tensor input = InputFor(model);
  CompiledModel compiled = Compile(model, NeoCpuOptions(Target::Host()));
  ASSERT_NE(compiled.plan(), nullptr);

  const std::string path = ::testing::TempDir() + "/memory_plan_module.neoc";
  ASSERT_TRUE(SaveModule(compiled, path));
  CompiledModel loaded;
  ASSERT_TRUE(LoadModule(path, &loaded));
  ASSERT_NE(loaded.plan(), nullptr);
  EXPECT_EQ(loaded.plan()->arena_bytes, compiled.plan()->arena_bytes);
  EXPECT_EQ(loaded.stats().arena_bytes, compiled.stats().arena_bytes);
  EXPECT_EQ(Tensor::MaxAbsDiff(compiled.Run(input), loaded.Run(input)), 0.0);
}

// Disabling planning falls back to the classic allocating executor.
TEST(MemoryPlan, PlanMemoryOffCompilesWithoutPlan) {
  Graph model = BuildTinyCnn(1, 32);
  CompileOptions opts = NeoCpuOptions(Target::Host());
  opts.plan_memory = false;
  CompiledModel compiled = Compile(model, opts);
  EXPECT_EQ(compiled.plan(), nullptr);
  EXPECT_FALSE(compiled.stats().memory_planned);
  Tensor input = InputFor(model);
  EXPECT_EQ(Tensor::MaxAbsDiff(Executor(&compiled.graph()).Run(input), compiled.Run(input)),
            0.0);
}

// Threaded planned execution matches serial planned execution exactly (kernels
// partition work identically regardless of where the output bytes live).
TEST(MemoryPlan, ThreadedPlannedMatchesSerial) {
  Graph model = BuildTinyCnn(1, 32);
  Tensor input = InputFor(model);
  CompiledModel compiled = Compile(model, NeoCpuOptions(Target::Host()));
  ASSERT_NE(compiled.plan(), nullptr);
  const Tensor serial = compiled.Run(input);
  NeoThreadPool pool(3, /*bind_threads=*/false);
  const Tensor threaded = compiled.Run(input, &pool);
  EXPECT_EQ(Tensor::MaxAbsDiff(serial, threaded), 0.0);
}

}  // namespace
}  // namespace neocpu
