// Calibration policies (min-max, percentile, entropy) at the observer level —
// synthetic activation distributions with known outlier structure — and end to end:
// zoo models must stay within the documented int8 tolerance under every policy. Also
// covers the rdtsc cycle clock the profiler uses for per-node timing.
#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "src/base/cycle_clock.h"
#include "src/base/rng.h"
#include "src/core/compiler.h"
#include "src/core/executor.h"
#include "src/core/presets.h"
#include "src/models/model_zoo.h"
#include "src/tensor/tensor.h"

namespace neocpu {
namespace {

Tensor InputFor(const Graph& model, std::uint64_t seed = 17) {
  Rng rng(seed);
  for (int i = 0; i < model.num_nodes(); ++i) {
    if (model.node(i).type == OpType::kInput) {
      return Tensor::Random(model.node(i).out_dims, rng, -1.0f, 1.0f, Layout::NCHW());
    }
  }
  ADD_FAILURE() << "no input node";
  return {};
}

// Bulk in [-1, 1] plus one +100 outlier: the distribution where min-max and the
// clipping policies must disagree.
Tensor OutlierTensor() {
  Tensor t = Tensor::Empty({10001}, Layout::Flat());
  Rng rng(3);
  for (std::int64_t i = 0; i < 10000; ++i) {
    t.data()[i] = static_cast<float>(rng.NextBounded(2001)) / 1000.0f - 1.0f;
  }
  t.data()[10000] = 100.0f;
  return t;
}

// Runs the two-phase protocol over `sample` for node 0 and returns the final range.
TensorRange CalibrateOne(const Tensor& sample, CalibrationPolicy policy) {
  CalibrationObserver observer;
  observer.Observe(0, sample);
  if (policy != CalibrationPolicy::kMinMax) {
    observer.BeginHistogramPhase();
    observer.Observe(0, sample);
  }
  CalibrationTable table = observer.Finalize(policy);
  EXPECT_EQ(table.size(), 1u);
  return table[0];
}

// ------------------------------------------------------------------ observer level

TEST(CalibrationObserver, MinMaxKeepsExactExtrema) {
  const Tensor sample = OutlierTensor();
  const TensorRange range = CalibrateOne(sample, CalibrationPolicy::kMinMax);
  float lo = sample.data()[0], hi = sample.data()[0];
  for (std::int64_t i = 0; i < sample.NumElements(); ++i) {
    lo = std::min(lo, sample.data()[i]);
    hi = std::max(hi, sample.data()[i]);
  }
  EXPECT_EQ(range.min, std::min(lo, 0.0f));  // ranges fold in 0 via default init
  EXPECT_EQ(range.max, 100.0f);
}

// Percentile keeps 99.9% of the |x| mass: one outlier in 10001 samples cannot
// dictate the scale, so the clip lands near the bulk's edge, far below 100.
TEST(CalibrationObserver, PercentileClipsTheOutlier) {
  const TensorRange range = CalibrateOne(OutlierTensor(), CalibrationPolicy::kPercentile);
  EXPECT_LE(range.max, 2.0f);
  EXPECT_GE(range.max, 0.5f);   // but never clips into the bulk itself
  EXPECT_GE(range.min, -2.0f);  // symmetric threshold applies to the negative side
  EXPECT_LE(range.min, -0.5f);
}

// Entropy picks the KL-minimizing clip: with all information in the bulk, the chosen
// threshold is strictly below the outlier.
TEST(CalibrationObserver, EntropyClipsBelowTheOutlier) {
  const TensorRange range = CalibrateOne(OutlierTensor(), CalibrationPolicy::kEntropy);
  EXPECT_LT(range.max, 99.0f);
  EXPECT_GE(range.max, 0.5f);
}

// A clipping policy without a histogram phase (or a node whose activations never hit
// the histogram) degrades to the min-max range instead of failing.
TEST(CalibrationObserver, ClippingPolicyWithoutHistogramKeepsMinMax) {
  CalibrationObserver observer;
  const Tensor sample = OutlierTensor();
  observer.Observe(0, sample);  // phase 1 only; no BeginHistogramPhase
  CalibrationTable table = observer.Finalize(CalibrationPolicy::kPercentile);
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table[0].max, 100.0f);
}

// Non-f32 tensors are ignored (quantized intermediates flow through the same
// executor during re-calibration runs).
TEST(CalibrationObserver, IgnoresNonF32Tensors) {
  CalibrationObserver observer;
  Tensor s8 = Tensor::Empty({16}, Layout::Flat(), DType::kS8);
  observer.Observe(0, s8);
  EXPECT_TRUE(observer.table().empty());
}

// ------------------------------------------------------------------ end to end

struct PolicyCase {
  std::string label;
  Graph (*build)();
  CalibrationPolicy policy;
};

Graph TinyCnn() { return BuildTinyCnn(1, 32); }
Graph TinyResNet18() { return BuildResNet(18, 1, 64); }

class ZooCalibrated : public ::testing::TestWithParam<PolicyCase> {};

// Forced-int8 compiles under every calibration policy stay within the documented
// 0.05 max-abs-error tolerance of fp32 (the clipping policies saturate rare
// outliers in exchange for finer resolution of the bulk — on these distributions
// that trade must not cost accuracy).
TEST_P(ZooCalibrated, TracksFp32WithinTolerance) {
  Graph model = GetParam().build();
  Tensor input = InputFor(model);
  const Tensor expected = Executor(&model).Run(input);

  CompileOptions opts = NeoCpuOptions(Target::SkylakeAvx512());
  opts.quantize = true;
  opts.force_quantize = true;
  opts.calibration_policy = GetParam().policy;
  CompiledModel compiled = Compile(model, opts);
  EXPECT_GT(compiled.stats().num_quantized_convs, 0) << GetParam().label;
  EXPECT_LE(Tensor::MaxAbsDiff(compiled.Run(input), expected), 0.05)
      << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ZooCalibrated,
    ::testing::Values(
        PolicyCase{"tiny_cnn_minmax", &TinyCnn, CalibrationPolicy::kMinMax},
        PolicyCase{"tiny_cnn_percentile", &TinyCnn, CalibrationPolicy::kPercentile},
        PolicyCase{"tiny_cnn_entropy", &TinyCnn, CalibrationPolicy::kEntropy},
        PolicyCase{"resnet18_percentile", &TinyResNet18, CalibrationPolicy::kPercentile},
        PolicyCase{"resnet18_entropy", &TinyResNet18, CalibrationPolicy::kEntropy}),
    [](const ::testing::TestParamInfo<PolicyCase>& info) { return info.param.label; });

// ------------------------------------------------------------------ cycle clock

TEST(CycleClock, ReportsConsistentSupport) {
  // Supported() is a stable property of the host; both answers are valid, but the
  // accessors must be coherent with it.
  if (!CycleClock::Supported()) {
    EXPECT_EQ(CycleClock::Now(), 0u);
    return;
  }
  EXPECT_GT(CycleClock::NanosPerCycle(), 0.0);
  EXPECT_LT(CycleClock::NanosPerCycle(), 100.0);  // no sub-10MHz TSCs
}

TEST(CycleClock, MonotonicAndCalibratedAgainstWallClock) {
  if (!CycleClock::Supported()) {
    GTEST_SKIP() << "no invariant TSC on this host";
  }
  const std::uint64_t t0 = CycleClock::Now();
  const auto wall0 = std::chrono::steady_clock::now();
  // Busy-wait ~20ms of wall time.
  while (std::chrono::steady_clock::now() - wall0 < std::chrono::milliseconds(20)) {
  }
  const std::uint64_t t1 = CycleClock::Now();
  const auto wall1 = std::chrono::steady_clock::now();
  ASSERT_GT(t1, t0);
  const double measured_ns = static_cast<double>(CycleClock::CyclesToNanos(t1 - t0));
  const double wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(wall1 - wall0).count());
  // Loose agreement: the conversion must be in the right ballpark (within 2x), not
  // cycle-exact — CI hosts throttle and migrate.
  EXPECT_GT(measured_ns, wall_ns * 0.5);
  EXPECT_LT(measured_ns, wall_ns * 2.0);
}

}  // namespace
}  // namespace neocpu
