// Tests for the global-search solvers: the exact variable-elimination DP and the PBQP
// reduction heuristic, including the paper's ">= 88% of the DP optimum" quality bound.
#include <gtest/gtest.h>

#include <limits>

#include "src/base/rng.h"
#include "src/tuning/pbqp.h"

namespace neocpu {
namespace {

// Brute-force minimum for small problems.
double BruteForce(const PbqpProblem& p, std::vector<int>* best_sel = nullptr) {
  const int n = p.num_nodes();
  std::vector<int> sel(static_cast<std::size_t>(n), 0);
  double best = std::numeric_limits<double>::infinity();
  while (true) {
    const double cost = p.Evaluate(sel);
    if (cost < best) {
      best = cost;
      if (best_sel != nullptr) {
        *best_sel = sel;
      }
    }
    int i = 0;
    while (i < n) {
      if (++sel[static_cast<std::size_t>(i)] <
          static_cast<int>(p.NumOptions(i))) {
        break;
      }
      sel[static_cast<std::size_t>(i)] = 0;
      ++i;
    }
    if (i == n) {
      break;
    }
  }
  return best;
}

PbqpProblem RandomProblem(Rng& rng, int nodes, int max_options, double edge_prob) {
  PbqpProblem p;
  p.node_costs.resize(static_cast<std::size_t>(nodes));
  for (auto& costs : p.node_costs) {
    const int options = 1 + static_cast<int>(rng.NextBounded(
                                static_cast<std::uint64_t>(max_options)));
    for (int i = 0; i < options; ++i) {
      costs.push_back(rng.NextFloat(0.1f, 10.0f));
    }
  }
  for (int u = 0; u < nodes; ++u) {
    for (int v = u + 1; v < nodes; ++v) {
      if (rng.NextDouble() < edge_prob) {
        PbqpProblem::Edge e;
        e.u = u;
        e.v = v;
        e.matrix.resize(p.NumOptions(u) * p.NumOptions(v));
        for (double& m : e.matrix) {
          m = rng.NextDouble() < 0.5 ? 0.0 : rng.NextFloat(0.0f, 5.0f);
        }
        p.edges.push_back(std::move(e));
      }
    }
  }
  return p;
}

TEST(ExactSolver, TrivialSingleNode) {
  PbqpProblem p;
  p.node_costs = {{3.0, 1.0, 2.0}};
  auto s = SolveExact(p);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->selection[0], 1);
  EXPECT_DOUBLE_EQ(s->cost, 1.0);
}

TEST(ExactSolver, ChainPrefersMatchingOptions) {
  // Two nodes, mismatched choices cost 10 on the edge: the solver must coordinate.
  PbqpProblem p;
  p.node_costs = {{1.0, 1.2}, {1.2, 1.0}};
  p.edges.push_back({0, 1, {0.0, 10.0, 10.0, 0.0}});
  auto s = SolveExact(p);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->selection[0], s->selection[1]);
  EXPECT_NEAR(s->cost, 2.2, 1e-12);
}

TEST(ExactSolver, MatchesBruteForceOnRandomProblems) {
  Rng rng(101);
  for (int trial = 0; trial < 25; ++trial) {
    PbqpProblem p = RandomProblem(rng, 2 + static_cast<int>(rng.NextBounded(5)), 3, 0.5);
    auto s = SolveExact(p);
    ASSERT_TRUE(s.has_value());
    const double brute = BruteForce(p);
    EXPECT_NEAR(s->cost, brute, 1e-9) << "trial " << trial;
    EXPECT_NEAR(p.Evaluate(s->selection), s->cost, 1e-9);
  }
}

TEST(ExactSolver, FailsCleanlyWhenTableTooLarge) {
  // A clique of 8 nodes x 8 options each: elimination needs 8^7 > 2M entries.
  Rng rng(102);
  PbqpProblem p;
  p.node_costs.assign(8, std::vector<double>(8, 1.0));
  for (int u = 0; u < 8; ++u) {
    for (int v = u + 1; v < 8; ++v) {
      PbqpProblem::Edge e;
      e.u = u;
      e.v = v;
      e.matrix.assign(64, 1.0);
      p.edges.push_back(std::move(e));
    }
  }
  EXPECT_FALSE(SolveExact(p, /*max_table_entries=*/1024).has_value());
  // The heuristic must still produce a valid answer.
  PbqpSolution h = SolvePbqp(p);
  EXPECT_EQ(h.selection.size(), 8u);
  EXPECT_GT(h.cost, 0.0);
}

TEST(PbqpHeuristic, OptimalOnTreeStructures) {
  // With only R0/RI/RII reductions applicable (tree graphs), the heuristic is exact.
  Rng rng(103);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 2 + static_cast<int>(rng.NextBounded(6));
    PbqpProblem p;
    p.node_costs.resize(static_cast<std::size_t>(n));
    for (auto& c : p.node_costs) {
      const int options = 2 + static_cast<int>(rng.NextBounded(3));
      for (int i = 0; i < options; ++i) {
        c.push_back(rng.NextFloat(0.0f, 5.0f));
      }
    }
    for (int v = 1; v < n; ++v) {
      const int parent = static_cast<int>(rng.NextBounded(static_cast<std::uint64_t>(v)));
      PbqpProblem::Edge e;
      e.u = parent;
      e.v = v;
      e.matrix.resize(p.NumOptions(parent) * p.NumOptions(v));
      for (double& m : e.matrix) {
        m = rng.NextFloat(0.0f, 3.0f);
      }
      p.edges.push_back(std::move(e));
    }
    const double brute = BruteForce(p);
    PbqpSolution h = SolvePbqp(p);
    EXPECT_NEAR(h.cost, brute, 1e-9) << "trial " << trial;
  }
}

// Random problem with layout-search structure: each option carries a "block" label and
// edges charge a fixed transform cost exactly when labels disagree — the same matrix
// shape the global layout search produces (global_search.cc).
PbqpProblem RandomLayoutProblem(Rng& rng, int nodes, double edge_prob) {
  const std::int64_t blocks[] = {4, 8, 16, 32};
  PbqpProblem p;
  std::vector<std::vector<std::int64_t>> labels(static_cast<std::size_t>(nodes));
  p.node_costs.resize(static_cast<std::size_t>(nodes));
  for (int v = 0; v < nodes; ++v) {
    const int options = 2 + static_cast<int>(rng.NextBounded(3));
    for (int i = 0; i < options; ++i) {
      labels[static_cast<std::size_t>(v)].push_back(
          blocks[rng.NextBounded(4)]);
      p.node_costs[static_cast<std::size_t>(v)].push_back(rng.NextFloat(1.0f, 4.0f));
    }
  }
  for (int u = 0; u < nodes; ++u) {
    for (int v = u + 1; v < nodes; ++v) {
      if (rng.NextDouble() >= edge_prob) {
        continue;
      }
      PbqpProblem::Edge e;
      e.u = u;
      e.v = v;
      const float transform = rng.NextFloat(0.5f, 3.0f);
      const auto& lu = labels[static_cast<std::size_t>(u)];
      const auto& lv = labels[static_cast<std::size_t>(v)];
      e.matrix.resize(lu.size() * lv.size());
      for (std::size_t i = 0; i < lu.size(); ++i) {
        for (std::size_t j = 0; j < lv.size(); ++j) {
          e.matrix[i * lv.size() + j] = lu[i] == lv[j] ? 0.0 : transform;
        }
      }
      p.edges.push_back(std::move(e));
    }
  }
  return p;
}

TEST(PbqpHeuristic, QualityBoundOnLayoutStructuredProblems) {
  // Paper §3.3.2: "the approximation algorithm gets at least 88% of the best available
  // result" — stated for layout-search problems, whose edge matrices are
  // match-or-pay-transform structured. Quality q = optimal/heuristic; require q >= 0.88.
  Rng rng(104);
  for (int trial = 0; trial < 25; ++trial) {
    PbqpProblem p = RandomLayoutProblem(rng, 7, 0.55);
    const double brute = BruteForce(p);
    PbqpSolution h = SolvePbqp(p);
    ASSERT_GT(h.cost, 0.0);
    EXPECT_GE(brute / h.cost, 0.88) << "trial " << trial << ": optimal " << brute
                                    << " vs heuristic " << h.cost;
  }
}

TEST(PbqpHeuristic, ReasonableOnArbitraryDenseProblems) {
  // Unstructured dense matrices are harder than layout problems; the RN heuristic must
  // still stay within 25% of optimal on average-sized instances.
  Rng rng(105);
  for (int trial = 0; trial < 15; ++trial) {
    PbqpProblem p = RandomProblem(rng, 7, 4, 0.6);
    const double brute = BruteForce(p);
    PbqpSolution h = SolvePbqp(p);
    ASSERT_GT(h.cost, 0.0);
    EXPECT_GE(brute / h.cost, 0.75) << "trial " << trial;
  }
}

TEST(PbqpHeuristic, HandlesParallelEdges) {
  PbqpProblem p;
  p.node_costs = {{1.0, 2.0}, {2.0, 1.0}};
  // Two parallel edges merge additively.
  p.edges.push_back({0, 1, {0.0, 3.0, 3.0, 0.0}});
  p.edges.push_back({1, 0, {0.0, 3.0, 3.0, 0.0}});
  PbqpSolution h = SolvePbqp(p);
  auto exact = SolveExact(p);
  ASSERT_TRUE(exact.has_value());
  EXPECT_NEAR(h.cost, exact->cost, 1e-9);
}

TEST(PbqpHeuristic, DegreeTwoSameNeighborFoldsDiagonal) {
  // Node 1 has two edges to node 0 (after normalization): the RII reduction must fold
  // onto node 0's diagonal, not create a self-edge.
  PbqpProblem p;
  p.node_costs = {{0.0, 0.0}, {5.0, 0.0}, {0.0, 5.0}};
  p.edges.push_back({0, 1, {0.0, 1.0, 1.0, 0.0}});
  p.edges.push_back({1, 2, {0.0, 1.0, 1.0, 0.0}});
  p.edges.push_back({0, 2, {0.0, 1.0, 1.0, 0.0}});
  auto exact = SolveExact(p);
  PbqpSolution h = SolvePbqp(p);
  ASSERT_TRUE(exact.has_value());
  EXPECT_NEAR(h.cost, exact->cost, 1e-9);  // triangle is within RII reach
}

TEST(Evaluate, SumsNodeAndEdgeCosts) {
  PbqpProblem p;
  p.node_costs = {{1.0, 2.0}, {3.0, 4.0}};
  p.edges.push_back({0, 1, {10.0, 20.0, 30.0, 40.0}});
  EXPECT_DOUBLE_EQ(p.Evaluate({0, 0}), 1.0 + 3.0 + 10.0);
  EXPECT_DOUBLE_EQ(p.Evaluate({1, 1}), 2.0 + 4.0 + 40.0);
  EXPECT_DOUBLE_EQ(p.Evaluate({0, 1}), 1.0 + 4.0 + 20.0);
}

}  // namespace
}  // namespace neocpu
