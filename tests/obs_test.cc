// Tests for the observability layer (src/obs): per-node profiler accounting and
// sampling, annotated DOT export structure, metrics registry semantics and thread
// safety, chrome-trace JSON shape, and the serving-tier integration (per-model stats,
// queue depth, profiler attach on live variants).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "src/base/rng.h"
#include "src/base/timer.h"
#include "src/core/compiler.h"
#include "src/core/executor.h"
#include "src/models/model_zoo.h"
#include "src/obs/graph_dot.h"
#include "src/obs/metrics.h"
#include "src/obs/node_profiler.h"
#include "src/obs/trace.h"
#include "src/serve/inference_server.h"

namespace neocpu {
namespace {

CompiledModel CompileTiny() { return Compile(BuildTinyCnn()); }

Tensor TinyInput(std::uint64_t seed = 11) {
  Rng rng(seed);
  return Tensor::Random({1, 3, 32, 32}, rng, 0.0f, 1.0f, Layout::NCHW());
}

// ---------------------------------------------------------------- NodeProfiler

TEST(NodeProfiler, TotalsApproximateWallTime) {
  CompiledModel model = CompileTiny();
  model.EnableProfiling(/*sample_rate=*/1);
  const Tensor input = TinyInput();
  model.Run(input);  // warm-up: fault weights/arena outside the timed window

  constexpr int kRuns = 20;
  Timer timer;
  for (int r = 0; r < kRuns; ++r) {
    model.Run(input);
  }
  const double wall_ms = timer.Seconds() * 1e3;
  const NodeProfileSnapshot snap = model.ProfileSnapshot();

  ASSERT_FALSE(snap.empty());
  EXPECT_EQ(snap.runs_total, static_cast<std::uint64_t>(kRuns) + 1);
  EXPECT_EQ(snap.runs_sampled, static_cast<std::uint64_t>(kRuns) + 1);
  // Sum of per-node time can't exceed wall time, and per-node clocks cover the bulk of
  // each Run (everything but scheduling glue). Generous bounds: CI machines are noisy.
  const double warm_ms = snap.total_ms * kRuns / (kRuns + 1.0);  // exclude warm-up's share
  EXPECT_LT(warm_ms, wall_ms * 1.10);
  EXPECT_GT(snap.total_ms, 0.0);
  EXPECT_GT(warm_ms, wall_ms * 0.25);

  // Per-kind totals tie out with the grand total.
  double kind_ms = 0.0;
  for (const OpKindProfile& kind : snap.by_kind) {
    kind_ms += kind.total_ms;
  }
  EXPECT_NEAR(kind_ms, snap.total_ms, snap.total_ms * 1e-6 + 1e-9);
  // Convs dominate a CNN.
  ASSERT_FALSE(snap.by_kind.empty());
  EXPECT_TRUE(snap.by_kind[0].kind.rfind("conv2d", 0) == 0)
      << "hottest kind: " << snap.by_kind[0].kind;
}

TEST(NodeProfiler, SamplingTimesOneRunInN) {
  CompiledModel model = CompileTiny();
  model.EnableProfiling(/*sample_rate=*/4);
  const Tensor input = TinyInput();
  for (int r = 0; r < 8; ++r) {
    model.Run(input);
  }
  const NodeProfileSnapshot snap = model.ProfileSnapshot();
  EXPECT_EQ(snap.runs_total, 8u);
  EXPECT_EQ(snap.runs_sampled, 2u);  // runs 0 and 4
  for (const NodeProfile& node : snap.nodes) {
    EXPECT_EQ(node.runs, 2u) << node.name;
  }
}

TEST(NodeProfiler, DisabledProfilerCostsNothingAndRecordsNothing) {
  CompiledModel model = CompileTiny();
  EXPECT_EQ(model.profiler(), nullptr);
  const Tensor input = TinyInput();
  model.Run(input);
  EXPECT_TRUE(model.ProfileSnapshot().empty());

  Executor executor(&model.graph(), nullptr, model.plan());
  EXPECT_FALSE(executor.profiling_enabled());
}

TEST(NodeProfiler, MergeUnionsVariantSnapshots) {
  CompiledModel model = CompileTiny();
  NodeProfiler a(1), b(1);
  a.RegisterGraph(model.graph());
  b.RegisterGraph(model.graph());
  const Tensor input = TinyInput();

  Executor ea(&model.graph(), nullptr, model.plan());
  ea.SetProfiler(&a);
  ea.Run(input);
  Executor eb(&model.graph(), nullptr, model.plan());
  eb.SetProfiler(&b);
  eb.Run(input);
  eb.Run(input);

  const NodeProfileSnapshot merged = MergeProfileSnapshots({a.Snapshot(), b.Snapshot()});
  EXPECT_EQ(merged.runs_total, 3u);
  EXPECT_EQ(merged.runs_sampled, 3u);
  for (const NodeProfile& node : merged.nodes) {
    EXPECT_EQ(node.runs, 3u) << node.name;
  }
  EXPECT_NEAR(merged.total_ms, a.Snapshot().total_ms + b.Snapshot().total_ms, 1e-9);
}

// ---------------------------------------------------------------- DOT export

// Structural validation mirroring what CI does without graphviz: declared node/edge
// counts in the header comment, one "nI [" line per declared node, balanced braces.
void ValidateDotStructure(const std::string& dot, int* nodes_out = nullptr) {
  int declared_nodes = 0, declared_edges = 0;
  ASSERT_EQ(std::sscanf(dot.c_str(), "/* neocpu-dot nodes=%d edges=%d */",
                        &declared_nodes, &declared_edges),
            2)
      << "missing machine-readable header: " << dot.substr(0, 80);
  int braces = 0, node_lines = 0, edge_lines = 0;
  std::size_t pos = 0;
  while (pos < dot.size()) {
    std::size_t eol = dot.find('\n', pos);
    if (eol == std::string::npos) {
      eol = dot.size();
    }
    const std::string line = dot.substr(pos, eol - pos);
    for (char c : line) {
      braces += c == '{' ? 1 : (c == '}' ? -1 : 0);
    }
    if (line.find(" [label=") != std::string::npos && line.rfind("  n", 0) == 0) {
      ++node_lines;
    }
    if (line.find(" -> ") != std::string::npos) {
      ++edge_lines;
    }
    pos = eol + 1;
  }
  EXPECT_EQ(braces, 0) << "unbalanced braces";
  EXPECT_EQ(node_lines, declared_nodes);
  EXPECT_EQ(edge_lines, declared_edges);
  if (nodes_out != nullptr) {
    *nodes_out = declared_nodes;
  }
}

TEST(GraphDot, ExportsEveryCompiledNodeWithAnnotations) {
  CompiledModel model = CompileTiny();
  const std::string dot = CompiledModelToDot(model);

  int declared_nodes = 0;
  ValidateDotStructure(dot, &declared_nodes);
  int expected = 0;
  for (int id = 0; id < model.graph().num_nodes(); ++id) {
    expected += model.graph().node(id).type != OpType::kConstant ? 1 : 0;
  }
  EXPECT_EQ(declared_nodes, expected);

  // Decision annotations: conv algorithm + schedule blocking, dtype, arena placement.
  EXPECT_NE(dot.find("algo="), std::string::npos);
  EXPECT_NE(dot.find("ic_bn="), std::string::npos);
  EXPECT_NE(dot.find("dtype="), std::string::npos);
  EXPECT_NE(dot.find("arena +"), std::string::npos);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

TEST(GraphDot, ProfileOverlayAddsTimeShares) {
  CompiledModel model = CompileTiny();
  model.EnableProfiling(1);
  const Tensor input = TinyInput();
  model.Run(input);
  const NodeProfileSnapshot profile = model.ProfileSnapshot();
  const std::string dot = CompiledModelToDot(model, &profile);
  ValidateDotStructure(dot);
  EXPECT_NE(dot.find("us/run"), std::string::npos);
  EXPECT_NE(dot.find("profiled:"), std::string::npos);
}

TEST(GraphDot, IncludeConstantsExportsFullGraph) {
  CompiledModel model = CompileTiny();
  GraphDotOptions options;
  options.include_constants = true;
  options.plan = model.plan().get();
  const std::string dot = GraphToDot(model.graph(), options);
  int declared_nodes = 0;
  ValidateDotStructure(dot, &declared_nodes);
  EXPECT_EQ(declared_nodes, model.graph().num_nodes());
}

// ---------------------------------------------------------------- metrics registry

TEST(Metrics, CountersAreExactUnderConcurrency) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test_concurrent_total", "concurrency test");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        counter->Increment();
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter->Value(), static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(Metrics, RegistrationIsIdempotentWithStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("test_idem_total", "first");
  Counter* b = registry.GetCounter("test_idem_total", "second registration ignored");
  EXPECT_EQ(a, b);
  Gauge* g1 = registry.GetGauge("test_gauge", "g");
  Gauge* g2 = registry.GetGauge("test_gauge", "g");
  EXPECT_EQ(g1, g2);
}

TEST(Metrics, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("test_gauge_value", "g");
  gauge->Set(10.0);
  gauge->Add(5.0);
  gauge->Add(-3.0);
  EXPECT_DOUBLE_EQ(gauge->Value(), 12.0);
}

TEST(Metrics, HistogramBucketsAreCumulativeInExport) {
  MetricsRegistry registry;
  Histogram* hist =
      registry.GetHistogram("test_hist", {1.0, 2.0, 4.0}, "bucket test");
  for (double v : {0.5, 1.5, 1.5, 3.0, 100.0}) {
    hist->Observe(v);
  }
  const HistogramSnapshot snap = hist->Snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 106.5);
  // Per-bucket (non-cumulative) internal counts: <=1: 1, <=2: 2, <=4: 1, +Inf: 1.
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 2u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);

  const std::string prom = registry.Export(MetricsFormat::kPrometheus);
  EXPECT_NE(prom.find("test_hist_bucket{le=\"2\"} 3"), std::string::npos) << prom;
  EXPECT_NE(prom.find("test_hist_bucket{le=\"+Inf\"} 5"), std::string::npos) << prom;
  EXPECT_NE(prom.find("test_hist_count 5"), std::string::npos) << prom;
}

TEST(Metrics, JsonExportIsWellFormedAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("test_json_total", "c")->Increment();
  registry.GetGauge("test_json_gauge", "g")->Set(2.5);
  registry.GetHistogram("test_json_hist", {1.0}, "h")->Observe(0.5);
  const std::string json = registry.Export(MetricsFormat::kJson);
  // Structural sanity: balanced braces/brackets, all three metrics present.
  int braces = 0, brackets = 0;
  for (char c : json) {
    braces += c == '{' ? 1 : (c == '}' ? -1 : 0);
    brackets += c == '[' ? 1 : (c == ']' ? -1 : 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_NE(json.find("\"test_json_total\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test_json_gauge\": 2.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test_json_hist\""), std::string::npos) << json;
}

TEST(Metrics, GlobalRegistryServesTheProcess) {
  Counter* counter =
      MetricsRegistry::Global().GetCounter("neocpu_obs_test_total", "obs test counter");
  const std::uint64_t before = counter->Value();
  counter->Increment();
  EXPECT_EQ(counter->Value(), before + 1);
  EXPECT_NE(MetricsExport(MetricsFormat::kJson).find("neocpu_obs_test_total"),
            std::string::npos);
}

// ---------------------------------------------------------------- chrome trace

TEST(Trace, SpansNestAndJsonIsValid) {
  CompiledModel model = CompileTiny();
  TraceRecorder tracer;
  Executor executor(&model.graph(), nullptr, model.plan());
  executor.SetTracer(&tracer);
  const Tensor input = TinyInput();

  const auto run_begin = TraceRecorder::Clock::now();
  executor.Run(input);
  const auto run_end = TraceRecorder::Clock::now();
  tracer.RecordSpan("serve", "run", run_begin, run_end, "\"batch\":1");

  int executed = 0;
  for (int id = 0; id < model.graph().num_nodes(); ++id) {
    const OpType type = model.graph().node(id).type;
    executed += (type != OpType::kInput && type != OpType::kConstant) ? 1 : 0;
  }
  EXPECT_EQ(tracer.size(), static_cast<std::size_t>(executed) + 1);
  EXPECT_EQ(tracer.dropped(), 0u);

  const std::string json = tracer.ToJson();
  // Balanced structure + required chrome-trace fields.
  int braces = 0, brackets = 0;
  for (char c : json) {
    braces += c == '{' ? 1 : (c == '}' ? -1 : 0);
    brackets += c == '[' ? 1 : (c == ']' ? -1 : 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\": "), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"batch\":1}"), std::string::npos);

  // Nesting: every node span lies inside the enclosing run span's [ts, ts+dur].
  const double run_ts =
      std::chrono::duration<double, std::micro>(run_begin - tracer.epoch()).count();
  const double run_dur =
      std::chrono::duration<double, std::micro>(run_end - run_begin).count();
  for (const TraceRecorder::Event& event : tracer.events()) {
    if (event.category == std::string("node")) {
      EXPECT_GE(event.ts_us, run_ts - 1e-3) << event.name;
      EXPECT_LE(event.ts_us + event.dur_us, run_ts + run_dur + 1e-3) << event.name;
    }
  }
}

TEST(Trace, BoundedBufferCountsDrops) {
  TraceRecorder tracer(/*max_events=*/4);
  const auto now = TraceRecorder::Clock::now();
  for (int i = 0; i < 10; ++i) {
    tracer.RecordSpan("t", "e", now, now);
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

// ---------------------------------------------------------------- serving integration

TEST(ServingObservability, PerModelStatsAndQueueDepth) {
  ServerOptions options;
  options.num_executors = 1;
  options.bind_threads = false;
  options.profile_sample_rate = 1;
  InferenceServer server(options);
  server.RegisterModel("tiny", CompileTiny());

  std::vector<std::future<Tensor>> futures;
  for (int r = 0; r < 6; ++r) {
    futures.push_back(server.Submit("tiny", TinyInput(static_cast<std::uint64_t>(r))));
  }
  for (std::future<Tensor>& f : futures) {
    f.wait();
  }
  server.WaitForRetunes();

  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.completed, 6u);
  EXPECT_EQ(stats.queue_depth_now, 0u);
  ASSERT_EQ(stats.per_model.size(), 1u);
  EXPECT_EQ(stats.per_model[0].name, "tiny");
  EXPECT_GT(stats.per_model[0].profiled_runs, 0u);
  EXPECT_GT(stats.per_model[0].profile_ms_per_run, 0.0);
  // The new fields render.
  const std::string text = stats.ToString();
  EXPECT_NE(text.find("queue_depth=0"), std::string::npos) << text;
  EXPECT_NE(text.find("model tiny:"), std::string::npos) << text;
  EXPECT_NE(text.find("profiled{"), std::string::npos) << text;

  // The profile covers the per-batch variants the batcher exercised.
  ModelEntry* entry = server.registry().Find("tiny");
  ASSERT_NE(entry, nullptr);
  const NodeProfileSnapshot profile = entry->ProfileSnapshot();
  EXPECT_FALSE(profile.empty());
  EXPECT_GE(profile.runs_sampled, 1u);
}

TEST(ServingObservability, ProfilingAttachesToLiveVariants) {
  ServerOptions options;
  options.num_executors = 1;
  options.bind_threads = false;  // profiling off at construction
  InferenceServer server(options);
  server.RegisterModel("tiny", CompileTiny());
  server.Submit("tiny", TinyInput()).wait();
  EXPECT_EQ(server.Stats().per_model[0].profiled_runs, 0u);

  // Enable on a registry whose variants are already serving.
  server.registry().ConfigureProfiling(1);
  server.Submit("tiny", TinyInput()).wait();
  server.WaitForRetunes();
  EXPECT_GT(server.Stats().per_model[0].profiled_runs, 0u);
}

}  // namespace
}  // namespace neocpu
