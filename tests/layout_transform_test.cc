// Unit and property tests for layout transformations: correctness against direct index
// arithmetic and round-trip identity across a parameter sweep.
#include <gtest/gtest.h>

#include <tuple>

#include "src/base/rng.h"
#include "src/runtime/thread_pool.h"
#include "src/tensor/layout_transform.h"

namespace neocpu {
namespace {

TEST(LayoutTransform, NCHWToNCHWcIndexing) {
  // 1x4x2x2 with block 2: channel c at (h,w) must land at [c/2][h][w][c%2].
  Tensor src = Tensor::Empty({1, 4, 2, 2}, Layout::NCHW());
  for (std::int64_t i = 0; i < src.NumElements(); ++i) {
    src.data()[i] = static_cast<float>(i);
  }
  Tensor dst = NCHWToNCHWc(src, 2);
  ASSERT_EQ(dst.ndim(), 5);
  EXPECT_EQ(dst.dims(), (std::vector<std::int64_t>{1, 2, 2, 2, 2}));
  for (std::int64_t c = 0; c < 4; ++c) {
    for (std::int64_t h = 0; h < 2; ++h) {
      for (std::int64_t w = 0; w < 2; ++w) {
        const float expected = src.data()[(c * 2 + h) * 2 + w];
        const float got = dst.data()[(((c / 2) * 2 + h) * 2 + w) * 2 + (c % 2)];
        EXPECT_EQ(got, expected) << "c=" << c << " h=" << h << " w=" << w;
      }
    }
  }
}

TEST(LayoutTransform, OIHWioIndexing) {
  Tensor src = Tensor::Empty({4, 4, 1, 1}, Layout::OIHW());
  for (std::int64_t i = 0; i < src.NumElements(); ++i) {
    src.data()[i] = static_cast<float>(i);
  }
  Tensor dst = OIHWToOIHWio(src, 2, 2);
  EXPECT_EQ(dst.dims(), (std::vector<std::int64_t>{2, 2, 1, 1, 2, 2}));
  for (std::int64_t o = 0; o < 4; ++o) {
    for (std::int64_t i = 0; i < 4; ++i) {
      const float expected = src.data()[o * 4 + i];
      const float got =
          dst.data()[((((o / 2) * 2 + i / 2) * 1 + 0) * 2 + (i % 2)) * 2 + (o % 2)];
      EXPECT_EQ(got, expected) << "o=" << o << " i=" << i;
    }
  }
}

TEST(LayoutTransform, RejectsIndivisibleChannels) {
  Rng rng(1);
  Tensor src = Tensor::Random({1, 6, 2, 2}, rng, -1, 1, Layout::NCHW());
  EXPECT_DEATH(NCHWToNCHWc(src, 4), "divisible");
}

TEST(LayoutTransform, NHWCRoundTrip) {
  Rng rng(2);
  Tensor src = Tensor::Random({2, 5, 3, 4}, rng, -1, 1, Layout::NCHW());
  Tensor nhwc = NCHWToNHWC(src);
  EXPECT_EQ(nhwc.dims(), (std::vector<std::int64_t>{2, 3, 4, 5}));
  Tensor back = NHWCToNCHW(nhwc);
  EXPECT_EQ(Tensor::MaxAbsDiff(src, back), 0.0);
}

TEST(LayoutTransform, ReblockIdentityWhenSameBlock) {
  Rng rng(3);
  Tensor src = Tensor::Random({1, 2, 3, 3, 8}, rng, -1, 1, Layout::NCHWc(8));
  Tensor same = NCHWcToNCHWc(src, 8);
  EXPECT_EQ(same.data(), src.data());  // no copy for the identity case
}

TEST(LayoutTransform, DispatcherIdentity) {
  Rng rng(4);
  Tensor src = Tensor::Random({1, 4, 2, 2}, rng, -1, 1, Layout::NCHW());
  Tensor same = TransformLayout(src, Layout::NCHW());
  EXPECT_EQ(same.data(), src.data());
}

TEST(LayoutTransform, TransformBytesCountsReadPlusWrite) {
  Tensor t = Tensor::Zeros({1, 8, 4, 4}, Layout::NCHW());
  EXPECT_EQ(TransformBytes(t), 2 * static_cast<std::int64_t>(t.SizeBytes()));
}

// Property: NCHW -> NCHW[x]c -> NCHW is the identity, for every valid block, serial and
// threaded.
class RoundTripTest
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t, bool>> {};

TEST_P(RoundTripTest, NCHWcRoundTripIsIdentity) {
  const auto [channels, block, threaded] = GetParam();
  if (channels % block != 0) {
    GTEST_SKIP();
  }
  Rng rng(77);
  Tensor src = Tensor::Random({2, channels, 5, 7}, rng, -10, 10, Layout::NCHW());
  NeoThreadPool pool(2, /*bind_threads=*/false);
  ThreadEngine* engine = threaded ? &pool : nullptr;
  Tensor blocked = NCHWToNCHWc(src, block, engine);
  Tensor back = NCHWcToNCHW(blocked, engine);
  EXPECT_EQ(Tensor::MaxAbsDiff(src, back), 0.0)
      << "channels=" << channels << " block=" << block;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RoundTripTest,
    ::testing::Combine(::testing::Values<std::int64_t>(4, 16, 24, 48, 64),
                       ::testing::Values<std::int64_t>(1, 2, 4, 8, 16),
                       ::testing::Bool()));

// Property: re-blocking NCHW[x]c -> NCHW[y]c equals the transform through NCHW.
class ReblockTest
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {};

TEST_P(ReblockTest, MatchesTransformViaNCHW) {
  const auto [from_block, to_block] = GetParam();
  const std::int64_t channels = 48;  // divisible by every tested block
  Rng rng(78);
  Tensor nchw = Tensor::Random({1, channels, 3, 5}, rng, -1, 1, Layout::NCHW());
  Tensor blocked = NCHWToNCHWc(nchw, from_block);
  Tensor direct = NCHWcToNCHWc(blocked, to_block);
  Tensor via_nchw = NCHWToNCHWc(nchw, to_block);
  EXPECT_EQ(Tensor::MaxAbsDiff(direct, via_nchw), 0.0);
  EXPECT_EQ(direct.layout(), Layout::NCHWc(to_block));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReblockTest,
                         ::testing::Combine(::testing::Values<std::int64_t>(2, 4, 8, 16),
                                            ::testing::Values<std::int64_t>(2, 4, 8, 16)));

// Property: OIHW -> OIHW[x]i[y]o preserves every element (checked via multiset sum) and
// the exact positional mapping spot-checked by reconstruction.
class WeightBlockTest
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {};

TEST_P(WeightBlockTest, PreservesAllElements) {
  const auto [x, y] = GetParam();
  Rng rng(79);
  Tensor w = Tensor::Random({16, 8, 3, 3}, rng, -1, 1, Layout::OIHW());
  if (8 % x != 0 || 16 % y != 0) {
    GTEST_SKIP();
  }
  Tensor blocked = OIHWToOIHWio(w, x, y);
  EXPECT_EQ(blocked.NumElements(), w.NumElements());
  // Reconstruct and compare.
  const std::int64_t ob = 16 / y, ib = 8 / x;
  double max_diff = 0.0;
  for (std::int64_t o = 0; o < 16; ++o) {
    for (std::int64_t i = 0; i < 8; ++i) {
      for (std::int64_t k = 0; k < 9; ++k) {
        const float orig = w.data()[(o * 8 + i) * 9 + k];
        const float got =
            blocked.data()[(((((o / y) * ib + i / x) * 9 + k) * x + i % x) * y + o % y)];
        max_diff = std::max(max_diff, static_cast<double>(std::abs(orig - got)));
      }
    }
  }
  EXPECT_EQ(max_diff, 0.0) << "x=" << x << " y=" << y << " ob=" << ob;
}

INSTANTIATE_TEST_SUITE_P(Sweep, WeightBlockTest,
                         ::testing::Combine(::testing::Values<std::int64_t>(1, 2, 4, 8),
                                            ::testing::Values<std::int64_t>(1, 2, 4, 8, 16)));

}  // namespace
}  // namespace neocpu
