// The transformer-encoder workload end to end: graph structure, compiled-vs-reference
// parity for the tuned GEMM path, int8 dense accuracy, zero-alloc planned serving,
// and dense-schedule round trips through both the TuningCache file format and the
// compiled-module format. Tuning-dependent tests pin explicit Target profiles.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/core/compiler.h"
#include "src/core/executor.h"
#include "src/core/memory_plan.h"
#include "src/core/presets.h"
#include "src/core/serialization.h"
#include "src/graph/builder.h"
#include "src/models/model_zoo.h"
#include "src/serve/inference_server.h"
#include "src/tuning/local_search.h"
#include "src/tuning/tuning_cache.h"

namespace neocpu {
namespace {

Tensor EncoderInput(std::int64_t batch = 1, std::uint64_t seed = 17) {
  Rng rng(seed);
  return Tensor::Random({batch, 8 * 64}, rng, -1.0f, 1.0f);
}

CompileOptions EncoderOptions(bool quantize = false) {
  CompileOptions opts = NeoCpuOptions(Target::SkylakeAvx512());
  if (quantize) {
    opts.quantize = true;
    opts.force_quantize = true;
    opts.quantize_dense = true;
  }
  return opts;
}

TEST(TransformerEncoder, StructureAndInputDims) {
  Graph g = BuildTransformerEncoder();
  // 6 dense per layer (q/k/v, attention proj, 2 FFN) x 2 layers + the head.
  EXPECT_EQ(g.CountNodes(OpType::kDense), 13);
  EXPECT_EQ(g.CountNodes(OpType::kMultiHeadAttention), 2);
  EXPECT_EQ(g.CountNodes(OpType::kLayerNorm), 4);
  EXPECT_EQ(g.CountNodes(OpType::kConv2d), 0);
  EXPECT_EQ(g.node(g.outputs()[0]).out_dims, (std::vector<std::int64_t>{1, 10}));
  EXPECT_EQ(ModelInputDims("transformer-encoder", 3),
            (std::vector<std::int64_t>{3, 512}));
  Graph by_name = BuildModel("transformer-encoder", 2);
  EXPECT_EQ(by_name.node(by_name.outputs()[0]).out_dims,
            (std::vector<std::int64_t>{2, 10}));
}

TEST(TransformerEncoder, CompiledMatchesReference) {
  Graph model = BuildTransformerEncoder();
  CompiledModel compiled = Compile(model, EncoderOptions());
  // Every dense must have been assigned a tuned GEMM schedule with a pre-packed B.
  EXPECT_EQ(compiled.stats().num_dense, 13);
  int packed = 0;
  for (int id = 0; id < compiled.graph().num_nodes(); ++id) {
    const Node& node = compiled.graph().node(id);
    if (node.type == OpType::kDense) {
      EXPECT_TRUE(node.attrs.has_gemm);
      packed += node.attrs.has_gemm ? 1 : 0;
    }
  }
  EXPECT_EQ(packed, 13);

  Tensor input = EncoderInput();
  Tensor expected = Executor(&model).Run(input);  // reference kernels, 2-D weights
  Tensor got = compiled.Run(input);
  EXPECT_LT(Tensor::MaxAbsDiff(expected, got), 1e-3)
      << "tuned GEMM encoder diverged from the reference executor";
}

TEST(TransformerEncoder, QuantizedEncoderStaysAccurate) {
  Graph model = BuildTransformerEncoder();
  CompiledModel f32 = Compile(model, EncoderOptions());
  CompiledModel int8 = Compile(model, EncoderOptions(/*quantize=*/true));
  EXPECT_GE(int8.stats().num_quantized_dense, 1);

  Tensor input = EncoderInput();
  Tensor expected = f32.Run(input);
  Tensor got = int8.Run(input);
  EXPECT_LE(Tensor::MaxAbsDiff(expected, got), 0.05)
      << "int8 encoder drifted beyond the accuracy budget";
}

TEST(TransformerEncoder, PlannedSteadyStateIsZeroAlloc) {
  CompiledModel compiled = Compile(BuildTransformerEncoder(), EncoderOptions());
  ASSERT_NE(compiled.plan(), nullptr);

  Tensor input = EncoderInput();
  const Executor planned(&compiled.graph(), nullptr, compiled.plan());
  const Tensor expected = Executor(&compiled.graph()).Run(input);
  planned.Run(input);  // warm-up: faults the pooled arena

  const std::uint64_t before = TensorHeapAllocCount();
  const Tensor got = planned.Run(input);
  EXPECT_EQ(TensorHeapAllocCount() - before,
            static_cast<std::uint64_t>(compiled.plan()->heap_nodes))
      << "attention/GEMM workspaces must come from the arena\n"
      << compiled.plan()->ToString();
  EXPECT_EQ(Tensor::MaxAbsDiff(expected, got), 0.0);
}

TEST(TransformerEncoder, ModuleRoundTripPreservesTunedDense) {
  CompiledModel compiled = Compile(BuildTransformerEncoder(), EncoderOptions());
  Tensor input = EncoderInput();
  Tensor expected = compiled.Run(input);

  const std::string path = "transformer_roundtrip.neoc";
  ASSERT_TRUE(SaveModule(compiled, path));
  CompiledModel loaded;
  ASSERT_TRUE(LoadModule(path, &loaded));
  std::remove(path.c_str());

  EXPECT_EQ(loaded.stats().num_dense, compiled.stats().num_dense);
  for (int id = 0; id < compiled.graph().num_nodes(); ++id) {
    const Node& a = compiled.graph().node(id);
    const Node& b = loaded.graph().node(id);
    EXPECT_EQ(a.attrs.has_gemm, b.attrs.has_gemm);
    if (a.attrs.has_gemm) {
      EXPECT_EQ(a.attrs.gemm, b.attrs.gemm);
      EXPECT_EQ(a.attrs.dense.m, b.attrs.dense.m);
      EXPECT_EQ(a.attrs.dense.n, b.attrs.dense.n);
      EXPECT_EQ(a.attrs.dense.k, b.attrs.dense.k);
    }
    EXPECT_EQ(a.attrs.heads, b.attrs.heads);
    EXPECT_EQ(a.attrs.seq, b.attrs.seq);
  }
  // Same graph, same packed weights, same schedules: bitwise-equal execution.
  EXPECT_EQ(Tensor::MaxAbsDiff(expected, loaded.Run(input)), 0.0);
}

TEST(TransformerEncoder, RebindBatchMatchesSerialRuns) {
  // Serving forms multi-request batches by rebinding: the {B, S*D} -> {B*S, D}
  // reshape scales proportionally and every tuned dense patches its GEMM M. The
  // pre-packed B panels are batch-invariant, so results must match per-sample runs.
  CompiledModel compiled = Compile(BuildTransformerEncoder(), EncoderOptions());
  CompiledModel rebound;
  ASSERT_TRUE(RebindBatch(compiled, 2, &rebound));
  for (int id = 0; id < rebound.graph().num_nodes(); ++id) {
    const Node& node = rebound.graph().node(id);
    if (node.type == OpType::kDense && node.attrs.has_gemm &&
        node.attrs.dense.k == 64 && node.attrs.dense.n == 64) {
      EXPECT_EQ(node.attrs.dense.m, 16);  // 2 * S rows after rebinding
    }
  }

  Tensor one_a = EncoderInput(1, 3);
  Tensor one_b = EncoderInput(1, 4);
  Tensor both = Tensor::Empty({2, 8 * 64}, Layout::Flat());
  std::copy_n(one_a.data(), one_a.NumElements(), both.data());
  std::copy_n(one_b.data(), one_b.NumElements(), both.data() + one_a.NumElements());
  Tensor batched = rebound.Run(both);
  Tensor ref_a = compiled.Run(one_a);
  Tensor ref_b = compiled.Run(one_b);
  for (std::int64_t i = 0; i < ref_a.NumElements(); ++i) {
    EXPECT_NEAR(batched.data()[i], ref_a.data()[i], 1e-5);
    EXPECT_NEAR(batched.data()[ref_a.NumElements() + i], ref_b.data()[i], 1e-5);
  }
}

TEST(TransformerEncoder, ServesWithZeroSteadyStateAllocs) {
  // The acceptance cut for the workload: the encoder behind InferenceServer, planned
  // path, steady-state per-request allocations collapsed to the escaping output.
  CompiledModel compiled = Compile(BuildTransformerEncoder(), EncoderOptions());
  ASSERT_NE(compiled.plan(), nullptr);
  const Tensor input = EncoderInput();
  const Tensor expected = compiled.Run(input);

  ServerOptions options;
  options.num_executors = 1;
  options.batching.max_batch_size = 1;
  options.bind_threads = false;
  options.background_retune = false;
  InferenceServer server(options);
  server.RegisterModel("encoder", std::move(compiled));
  EXPECT_EQ(Tensor::MaxAbsDiff(server.Submit("encoder", input).get(), expected), 0.0);

  const std::uint64_t before = TensorHeapAllocCount();
  constexpr std::uint64_t kRequests = 8;
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    server.Submit("encoder", input).get();
  }
  EXPECT_LE(TensorHeapAllocCount() - before, kRequests)
      << "per-request allocations beyond the escaping output";
}

TEST(DenseTuning, ScheduleRoundTripsThroughTuningCache) {
  const DenseParams params{16, 256, 64};
  const Target target = Target::SkylakeAvx512();
  TuningCache cache;
  auto result = LocalSearchDenseShared(params, target, CostMode::kAnalytic,
                                       /*quick_space=*/true, nullptr, &cache);
  ASSERT_FALSE(result->dense_ranked.empty());
  const GemmSchedule best = result->BestDense()->schedule;

  // File round trip.
  const std::string path = "dense_cache_roundtrip.txt";
  ASSERT_TRUE(cache.SaveToFile(path));
  TuningCache from_file;
  ASSERT_TRUE(from_file.LoadFromFile(path));
  std::remove(path.c_str());
  const WorkloadKey key =
      WorkloadKey::OfDense(params, target, CostMode::kAnalytic, /*quick_space=*/true);
  auto hit = from_file.Find(key);
  ASSERT_NE(hit, nullptr);
  ASSERT_NE(hit->BestDense(), nullptr);
  EXPECT_EQ(hit->BestDense()->schedule, best);
  EXPECT_EQ(hit->dense_ranked.size(), result->dense_ranked.size());

  // Stream (module-embedding) round trip.
  std::ostringstream text;
  cache.Serialize(text);
  std::istringstream in(text.str());
  TuningCache from_stream;
  ASSERT_TRUE(from_stream.Deserialize(in));
  auto hit2 = from_stream.Find(key);
  ASSERT_NE(hit2, nullptr);
  ASSERT_NE(hit2->BestDense(), nullptr);
  EXPECT_EQ(hit2->BestDense()->schedule, best);
}

}  // namespace
}  // namespace neocpu
