// Unit tests for src/base: stats, rng, strings, cpu detection, env knobs.
#include <gtest/gtest.h>

#include <cstdlib>

#include "src/base/align.h"
#include "src/base/cpu_info.h"
#include "src/base/rng.h"
#include "src/base/string_util.h"
#include "src/base/timer.h"

namespace neocpu {
namespace {

TEST(RunStats, EmptySamples) {
  RunStats s = RunStats::FromSamples({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(RunStats, SingleSample) {
  RunStats s = RunStats::FromSamples({4.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(RunStats, MeanAndStderr) {
  RunStats s = RunStats::FromSamples({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, 1.2909944, 1e-6);
  EXPECT_NEAR(s.stderr_, 1.2909944 / 2.0, 1e-6);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(MeasureMillis, RunsRequestedCount) {
  int calls = 0;
  RunStats s = MeasureMillis([&] { ++calls; }, /*runs=*/3, /*warmup=*/2);
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(s.count, 3u);
  EXPECT_GE(s.mean, 0.0);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) {
    sink += i;
  }
  EXPECT_GE(t.Seconds(), 0.0);
  EXPECT_GE(t.Millis(), t.Seconds());  // ms value >= s value numerically
}

TEST(Rng, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.NextU64(), b.NextU64());
}

TEST(Rng, FloatRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.NextFloat(-2.0f, 3.0f);
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 3.0f);
  }
}

TEST(Rng, BoundedRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
  EXPECT_EQ(rng.NextBounded(0), 0u);
}

TEST(StrFormat, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.1f", 3, "x", 2.5), "3-x-2.5");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(Join, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(CpuInfo, DetectsSomethingSane) {
  const CpuInfo& info = HostCpuInfo();
  EXPECT_GE(info.physical_cores, 1);
  EXPECT_GE(info.vector_bits, 128);
  EXPECT_EQ(info.vector_bits % 32, 0);
  EXPECT_GT(info.l1d_bytes, 0u);
  EXPECT_STRNE(SimdIsaName(info.isa), "unknown");
}

TEST(EnvSizeT, ParsesAndFallsBack) {
  ::setenv("NEOCPU_TEST_ENV_KNOB", "42", 1);
  EXPECT_EQ(EnvSizeT("NEOCPU_TEST_ENV_KNOB", 7), 42u);
  ::setenv("NEOCPU_TEST_ENV_KNOB", "junk", 1);
  EXPECT_EQ(EnvSizeT("NEOCPU_TEST_ENV_KNOB", 7), 7u);
  ::unsetenv("NEOCPU_TEST_ENV_KNOB");
  EXPECT_EQ(EnvSizeT("NEOCPU_TEST_ENV_KNOB", 9), 9u);
}

TEST(AlignedAlloc, ReturnsAlignedPointers) {
  for (std::size_t bytes : {1u, 63u, 64u, 100u, 4096u}) {
    void* p = AlignedAlloc(bytes);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % kSimdAlignBytes, 0u);
    AlignedFree(p);
  }
  EXPECT_EQ(AlignedAlloc(0), nullptr);
}

}  // namespace
}  // namespace neocpu
