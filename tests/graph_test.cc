// Unit tests for the graph IR, builder and shape inference.
#include <gtest/gtest.h>

#include "src/graph/builder.h"
#include "src/graph/graph.h"
#include "src/graph/shape_infer.h"

namespace neocpu {
namespace {

TEST(Graph, TopologicalOrderEnforced) {
  Graph g;
  const int a = g.AddInput({1, 3, 8, 8});
  EXPECT_EQ(a, 0);
  EXPECT_DEATH(g.AddNode(OpType::kRelu, {5}), "topological");
}

TEST(Graph, ConsumerIndex) {
  GraphBuilder b("t");
  const int in = b.Input({1, 8, 4, 4});
  const int r1 = b.Relu(in);
  const int r2 = b.Relu(in);
  const int add = b.Add(r1, r2);
  Graph g = b.Finish({add});
  const auto consumers = g.BuildConsumerIndex();
  EXPECT_EQ(consumers[static_cast<std::size_t>(in)].size(), 2u);
  EXPECT_EQ(consumers[static_cast<std::size_t>(r1)], (std::vector<int>{add}));
  EXPECT_TRUE(consumers[static_cast<std::size_t>(add)].empty());
}

TEST(Graph, CountNodesByType) {
  GraphBuilder b("t");
  int x = b.Input({1, 8, 8, 8});
  x = b.Conv(x, 16, 3, 1, 1);
  x = b.Relu(x);
  x = b.Conv(x, 16, 3, 1, 1);
  Graph g = b.Finish({x});
  EXPECT_EQ(g.CountNodes(OpType::kConv2d), 2);
  EXPECT_EQ(g.CountNodes(OpType::kRelu), 1);
  EXPECT_EQ(g.CountNodes(OpType::kConstant), 2);  // two conv weights, no bias
}

TEST(Builder, ConvShapesAndConstants) {
  GraphBuilder b("t");
  int x = b.Input({1, 3, 32, 32});
  const int conv = b.Conv(x, 16, 3, 2, 1, /*bias=*/true, "c1");
  Graph g = b.Finish({conv});
  const Node& node = g.node(conv);
  EXPECT_EQ(node.out_dims, (std::vector<std::int64_t>{1, 16, 16, 16}));
  EXPECT_EQ(node.inputs.size(), 3u);  // data, weight, bias
  const Node& weight = g.node(node.inputs[1]);
  EXPECT_EQ(weight.out_dims, (std::vector<std::int64_t>{16, 3, 3, 3}));
  EXPECT_TRUE(weight.payload.defined());
  EXPECT_TRUE(node.attrs.epilogue.bias);
}

TEST(Builder, RectConvShapes) {
  GraphBuilder b("t");
  int x = b.Input({1, 16, 9, 9});
  const int conv = b.ConvRect(x, 24, 1, 7, 1, 0, 3);
  Graph g = b.Finish({conv});
  EXPECT_EQ(g.node(conv).out_dims, (std::vector<std::int64_t>{1, 24, 9, 9}));
}

TEST(ShapeInfer, PoolFlattenDenseChain) {
  GraphBuilder b("t");
  int x = b.Input({1, 8, 8, 8});
  x = b.MaxPool(x, 2, 2, 0);
  const int pool = x;
  x = b.GlobalAvgPool(x);
  const int gap = x;
  x = b.Flatten(x);
  const int flat = x;
  x = b.Dense(x, 10);
  x = b.Softmax(x);
  Graph g = b.Finish({x});
  EXPECT_EQ(g.node(pool).out_dims, (std::vector<std::int64_t>{1, 8, 4, 4}));
  EXPECT_EQ(g.node(gap).out_dims, (std::vector<std::int64_t>{1, 8, 1, 1}));
  EXPECT_EQ(g.node(flat).out_dims, (std::vector<std::int64_t>{1, 8}));
  EXPECT_EQ(g.node(g.outputs()[0]).out_dims, (std::vector<std::int64_t>{1, 10}));
}

TEST(ShapeInfer, ConcatSumsChannels) {
  GraphBuilder b("t");
  int x = b.Input({1, 8, 4, 4});
  int a = b.Conv(x, 16, 1, 1, 0);
  int c = b.Conv(x, 24, 1, 1, 0);
  int cat = b.Concat({a, c});
  Graph g = b.Finish({cat});
  EXPECT_EQ(g.node(cat).out_dims, (std::vector<std::int64_t>{1, 40, 4, 4}));
}

TEST(ShapeInfer, AddRequiresMatchingDims) {
  GraphBuilder b("t");
  int x = b.Input({1, 8, 4, 4});
  int a = b.Conv(x, 16, 1, 1, 0);
  int c = b.Conv(x, 24, 1, 1, 0);
  EXPECT_DEATH(b.Add(a, c), "Check failed");
}

TEST(ShapeInfer, ReshapeValidatesElementCount) {
  GraphBuilder b("t");
  int x = b.Input({1, 8, 2, 2});
  int flat = b.Flatten(x);
  int ok = b.Reshape(flat, {16, 2});
  Graph g = b.Finish({ok});
  EXPECT_EQ(g.node(ok).out_dims, (std::vector<std::int64_t>{16, 2}));
}

TEST(Graph, ToStringListsAllNodes) {
  GraphBuilder b("pretty");
  int x = b.Input({1, 3, 8, 8});
  x = b.Conv(x, 8, 3, 1, 1);
  Graph g = b.Finish({x});
  const std::string s = g.ToString();
  EXPECT_NE(s.find("pretty"), std::string::npos);
  EXPECT_NE(s.find("conv2d"), std::string::npos);
  EXPECT_NE(s.find("input"), std::string::npos);
}

TEST(Graph, OpTypeNamesAreUnique) {
  EXPECT_STREQ(OpTypeName(OpType::kConv2d), "conv2d");
  EXPECT_STREQ(OpTypeName(OpType::kLayoutTransform), "layout_transform");
  EXPECT_STREQ(OpTypeName(OpType::kMultiboxDetection), "multibox_detection");
}

}  // namespace
}  // namespace neocpu
