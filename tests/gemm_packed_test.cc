// The packed GEMM kernel family: f32 tuned-vs-reference parity across shapes,
// blockings and epilogues; u8·s8 exactness against a naive integer reference;
// cross-ISA bitwise parity for the integer path via the dispatch override; and
// packed-operand layout invariants (padding contributes nothing).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/kernels/gemm.h"
#include "src/kernels/gemm_packed.h"
#include "src/kernels/gemm_packed_int8.h"
#include "src/runtime/thread_engine.h"
#include "src/runtime/thread_pool.h"

namespace neocpu {
namespace {

std::vector<float> RandomVec(std::int64_t count, std::uint64_t seed, float lo = -1.0f,
                             float hi = 1.0f) {
  Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(count));
  for (auto& x : v) {
    x = rng.NextFloat(lo, hi);
  }
  return v;
}

// Naive f32 reference with the fused epilogue.
std::vector<float> ReferenceF32(std::int64_t m, std::int64_t n, std::int64_t k,
                                const std::vector<float>& a,
                                const std::vector<float>& b, const float* bias,
                                bool relu) {
  std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += a[i * k + p] * b[p * n + j];
      }
      if (bias != nullptr) {
        acc += bias[j];
      }
      if (relu && acc < 0.0f) {
        acc = 0.0f;
      }
      c[i * n + j] = acc;
    }
  }
  return c;
}

void ExpectClose(const std::vector<float>& got, const std::vector<float>& want,
                 double tol, const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  double max_err = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    max_err = std::max(max_err, std::abs(static_cast<double>(got[i]) - want[i]));
  }
  EXPECT_LE(max_err, tol) << what;
}

struct F32Case {
  std::int64_t m, n, k;
  GemmSchedule s;
  bool bias, relu;
};

TEST(GemmPackedF32, MatchesReferenceAcrossShapesAndBlockings) {
  const std::vector<F32Case> cases = {
      // Transformer-ish shapes.
      {64, 256, 64, {64, 128, 64, 4, 16, DType::kF32}, true, true},
      {64, 64, 256, {32, 64, 128, 6, 16, DType::kF32}, true, false},
      {8, 10, 512, {64, 256, 256, 4, 8, DType::kF32}, false, false},
      // Tails everywhere: m % mr, n % nr, k % kc all nonzero.
      {13, 37, 71, {8, 32, 32, 4, 16, DType::kF32}, true, true},
      {5, 9, 3, {4, 8, 2, 2, 8, DType::kF32}, true, false},
      // Off-grid micro pair exercises the MicroEdge fallback.
      {17, 23, 29, {8, 16, 16, 3, 12, DType::kF32}, true, true},
      // mc/nc smaller than mr/nr rounding, multiple macro tiles.
      {33, 65, 17, {16, 32, 8, 8, 32, DType::kF32}, false, true},
  };
  for (const auto& c : cases) {
    const auto a = RandomVec(c.m * c.k, 7 * static_cast<std::uint64_t>(c.m + c.k));
    const auto b = RandomVec(c.k * c.n, 13 * static_cast<std::uint64_t>(c.n + c.k));
    const auto bias = RandomVec(c.n, 23);
    const auto want =
        ReferenceF32(c.m, c.n, c.k, a, b, c.bias ? bias.data() : nullptr, c.relu);

    std::vector<float> bp(PackedBF32Elems(c.n, c.k, c.s));
    PackBF32(b.data(), c.n, c.k, c.s, bp.data());
    std::vector<float> got(static_cast<std::size_t>(c.m * c.n), -1.0f);
    GemmPackedF32(c.m, c.n, c.k, a.data(), bp.data(),
                  c.bias ? bias.data() : nullptr, c.relu, got.data(), c.s);
    // K up to 512 at |a|,|b| <= 1: absolute error stays well under 1e-3.
    ExpectClose(got, want, 1e-3, "schedule " + c.s.ToString());
  }
}

TEST(GemmPackedF32, PackBFromTransposedMatchesPackB) {
  const std::int64_t n = 37, k = 29;
  GemmSchedule s;
  s.nr = 16;
  const auto w = RandomVec(n * k, 99);  // {n, k} a dense weight
  std::vector<float> b(static_cast<std::size_t>(k * n));
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t p = 0; p < k; ++p) {
      b[p * n + j] = w[j * k + p];
    }
  }
  std::vector<float> packed_a(PackedBF32Elems(n, k, s)), packed_b(packed_a.size());
  PackBF32(b.data(), n, k, s, packed_a.data());
  PackBF32FromTransposed(w.data(), n, k, s, packed_b.data());
  EXPECT_EQ(packed_a, packed_b);
}

// -------------------------------------------------------------------- integer path

struct S8Case {
  std::int64_t m, n, k;
  GemmSchedule s;
  bool bias, relu, requant, out_u8;
  std::int32_t out_zero;
};

std::vector<std::uint8_t> RandomU8(std::int64_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> v(static_cast<std::size_t>(count));
  for (auto& x : v) {
    x = static_cast<std::uint8_t>(static_cast<std::int64_t>(rng.NextFloat(0.0f, 256.0f)) & 0xFF);
  }
  return v;
}

std::vector<std::int8_t> RandomS8(std::int64_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int8_t> v(static_cast<std::size_t>(count));
  for (auto& x : v) {
    x = static_cast<std::int8_t>(static_cast<std::int64_t>(rng.NextFloat(-127.0f, 128.0f)));
  }
  return v;
}

// Naive u8·s8 reference with the integer epilogue, mirroring StoreTileS8.
void ReferenceU8S8(const S8Case& c, const std::vector<std::uint8_t>& a,
                   const std::vector<std::int8_t>& w,
                   const std::vector<std::int32_t>& bias,
                   const std::vector<float>& mult, void* out) {
  for (std::int64_t i = 0; i < c.m; ++i) {
    for (std::int64_t j = 0; j < c.n; ++j) {
      std::int32_t acc = 0;
      for (std::int64_t p = 0; p < c.k; ++p) {
        acc += static_cast<std::int32_t>(a[i * c.k + p]) *
               static_cast<std::int32_t>(w[j * c.k + p]);
      }
      if (c.bias) {
        acc += bias[j];
      }
      if (c.relu && acc < 0) {
        acc = 0;
      }
      const float scaled = static_cast<float>(acc) * mult[j];
      if (c.requant) {
        std::int32_t q = static_cast<std::int32_t>(std::lrintf(scaled));
        if (c.out_u8) {
          q += c.out_zero;
          q = q > 255 ? 255 : (q < 0 ? 0 : q);
          static_cast<std::uint8_t*>(out)[i * c.n + j] = static_cast<std::uint8_t>(q);
        } else {
          q = q > 127 ? 127 : (q < -127 ? -127 : q);
          static_cast<std::int8_t*>(out)[i * c.n + j] = static_cast<std::int8_t>(q);
        }
      } else {
        static_cast<float*>(out)[i * c.n + j] = scaled;
      }
    }
  }
}

TEST(GemmPackedU8S8, ExactAgainstReferenceAndBitwiseAcrossIsaTiers) {
  const std::vector<S8Case> cases = {
      {64, 256, 64, {64, 128, 64, 4, 16, DType::kU8}, true, true, false, false, 0},
      {8, 10, 512, {64, 256, 512, 4, 16, DType::kU8}, true, false, false, false, 0},
      // Requantizing stores, s8 and u8 outputs; k % 4 != 0 exercises quad padding.
      {13, 37, 70, {8, 32, 70, 4, 16, DType::kU8}, true, true, true, false, 0},
      {15, 33, 66, {8, 32, 66, 6, 32, DType::kU8}, true, false, true, true, 17},
      // Off-grid micro pair exercises the MicroEdgeU8 fallback.
      {9, 21, 35, {8, 16, 35, 3, 12, DType::kU8}, false, true, false, false, 0},
  };
  const std::vector<std::string> tiers = {"baseline", "avx2", "avx512", "avx512vnni"};
  for (const auto& c : cases) {
    const auto a = RandomU8(c.m * c.k, 5);
    const auto w = RandomS8(c.n * c.k, 11);
    std::vector<std::int32_t> bias(static_cast<std::size_t>(c.n));
    Rng rng(31);
    for (auto& b : bias) {
      b = static_cast<std::int32_t>(rng.NextFloat(-500.0f, 500.0f));
    }
    std::vector<float> mult(static_cast<std::size_t>(c.n));
    for (auto& mval : mult) {
      mval = rng.NextFloat(0.001f, 0.01f);
    }

    const std::size_t out_bytes = static_cast<std::size_t>(c.m * c.n) *
                                  (c.requant ? 1 : sizeof(float));
    std::vector<std::uint8_t> want(out_bytes);
    ReferenceU8S8(c, a, w, bias, mult, want.data());

    std::vector<std::int8_t> bp(PackedBS8Bytes(c.n, c.k, c.s));
    PackBS8FromTransposed(w.data(), c.n, c.k, c.s, bp.data());

    std::vector<std::uint8_t> first;
    for (const auto& tier : tiers) {
      if (!SetGemmPackedS8IsaOverride(tier.c_str())) {
        continue;  // tier not runnable on this CPU/build
      }
      std::vector<std::uint8_t> got(out_bytes, 0xAB);
      GemmPackedU8S8(c.m, c.n, c.k, a.data(), bp.data(),
                     c.bias ? bias.data() : nullptr, mult.data(), c.relu, c.requant,
                     c.out_u8, c.out_zero, got.data(), c.s);
      EXPECT_EQ(got, want) << "tier " << tier << " schedule " << c.s.ToString();
      if (first.empty()) {
        first = got;
      } else {
        EXPECT_EQ(got, first) << "tier " << tier << " diverges bitwise";
      }
    }
    SetGemmPackedS8IsaOverride(nullptr);
  }
}

TEST(GemmPackedIsa, OverrideHooksRejectUnknownNames) {
  EXPECT_FALSE(SetGemmPackedIsaOverride("not-an-isa"));
  EXPECT_FALSE(SetGemmPackedS8IsaOverride("not-an-isa"));
  EXPECT_TRUE(SetGemmPackedIsaOverride("baseline"));
  EXPECT_STREQ(GemmPackedIsaName(), "baseline");
  EXPECT_TRUE(SetGemmPackedIsaOverride(""));
  EXPECT_TRUE(SetGemmPackedS8IsaOverride("baseline"));
  EXPECT_STREQ(GemmPackedS8IsaName(), "baseline");
  EXPECT_TRUE(SetGemmPackedS8IsaOverride(nullptr));
}

TEST(GemmPackedF32, MultiThreadedMatchesSerial) {
  const std::int64_t m = 67, n = 130, k = 45;
  GemmSchedule s;
  s.mc = 16;
  s.nc = 32;
  s.kc = 16;
  const auto a = RandomVec(m * k, 3);
  const auto b = RandomVec(k * n, 4);
  std::vector<float> bp(PackedBF32Elems(n, k, s));
  PackBF32(b.data(), n, k, s, bp.data());

  std::vector<float> serial_out(static_cast<std::size_t>(m * n));
  GemmPackedF32(m, n, k, a.data(), bp.data(), nullptr, false, serial_out.data(), s);
  // The fork-join split only changes which worker runs a macro tile, never the
  // per-tile arithmetic, so threaded output is bitwise equal.
  NeoThreadPool pool(4, /*bind_threads=*/false);
  std::vector<float> pooled(static_cast<std::size_t>(m * n));
  GemmPackedF32(m, n, k, a.data(), bp.data(), nullptr, false, pooled.data(), s, nullptr,
                &pool);
  EXPECT_EQ(serial_out, pooled);
}

}  // namespace
}  // namespace neocpu
