// Winograd F(2x2, 3x3) correctness against the direct reference convolution (the
// paper's future-work extension; see conv_winograd.h).
#include <gtest/gtest.h>

#include <tuple>

#include "src/base/rng.h"
#include "src/kernels/conv_ref.h"
#include "src/kernels/conv_winograd.h"
#include "src/runtime/thread_pool.h"

namespace neocpu {
namespace {

TEST(Winograd, ApplicabilityPredicate) {
  EXPECT_TRUE(WinogradApplicable({1, 8, 8, 8, 8, 3, 3, 1, 1, 1, 1}));
  EXPECT_FALSE(WinogradApplicable({1, 8, 8, 8, 8, 3, 3, 2, 2, 1, 1}));  // stride 2
  EXPECT_FALSE(WinogradApplicable({1, 8, 8, 8, 8, 1, 1, 1, 1, 0, 0}));  // 1x1
  EXPECT_FALSE(WinogradApplicable({1, 8, 8, 8, 8, 5, 5, 1, 1, 2, 2}));  // 5x5
}

TEST(Winograd, WeightTransformShape) {
  Rng rng(1);
  Tensor w = Tensor::Random({8, 4, 3, 3}, rng, -1, 1, Layout::OIHW());
  Tensor u = WinogradTransformWeights(w);
  EXPECT_EQ(u.dims(), (std::vector<std::int64_t>{4, 4, 8, 4}));
}

TEST(Winograd, IdentityKernelTransform) {
  // A kernel that is 1 at the center and 0 elsewhere convolves to the identity; its
  // Winograd-domain product must reproduce the input tile values exactly.
  Tensor w = Tensor::Zeros({1, 1, 3, 3}, Layout::OIHW());
  w.data()[4] = 1.0f;  // center tap
  Conv2dParams p{1, 1, 6, 6, 1, 3, 3, 1, 1, 1, 1};
  Rng rng(2);
  Tensor in = Tensor::Random({1, 1, 6, 6}, rng, -1, 1, Layout::NCHW());
  Tensor u = WinogradTransformWeights(w);
  Tensor out = ConvWinograd(p, in, u, nullptr, {});
  EXPECT_LE(Tensor::AllCloseViolation(out, in, 1e-5, 1e-5), 0.0);
}

struct WinoCase {
  Conv2dParams p;
  const char* label;
};

class WinogradVsRef : public ::testing::TestWithParam<WinoCase> {};

TEST_P(WinogradVsRef, MatchesDirectConvolution) {
  const Conv2dParams& p = GetParam().p;
  Rng rng(3);
  Tensor in = Tensor::Random({p.batch, p.in_c, p.in_h, p.in_w}, rng, -1, 1, Layout::NCHW());
  Tensor w = Tensor::Random({p.out_c, p.in_c, 3, 3}, rng, -0.5f, 0.5f, Layout::OIHW());
  Tensor bias = Tensor::Random({p.out_c}, rng, -0.2f, 0.2f);
  ConvEpilogue epi;
  epi.bias = true;
  epi.relu = true;
  Tensor expected = ConvRefNCHW(p, in, w, &bias, nullptr, epi);
  Tensor u = WinogradTransformWeights(w);
  Tensor got = ConvWinograd(p, in, u, &bias, epi);
  // Winograd reassociates more aggressively than a direct sum: slightly wider tolerance.
  EXPECT_LE(Tensor::AllCloseViolation(got, expected, 2e-3, 2e-3), 0.0) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WinogradVsRef,
    ::testing::Values(
        WinoCase{{1, 8, 8, 8, 8, 3, 3, 1, 1, 1, 1}, "even_pad1"},
        WinoCase{{1, 8, 9, 9, 8, 3, 3, 1, 1, 1, 1}, "odd_output"},
        WinoCase{{1, 4, 10, 10, 12, 3, 3, 1, 1, 0, 0}, "no_pad"},
        WinoCase{{1, 16, 7, 13, 8, 3, 3, 1, 1, 1, 1}, "rectangular_image"},
        WinoCase{{2, 8, 8, 8, 8, 3, 3, 1, 1, 1, 1}, "batch2"},
        WinoCase{{1, 3, 12, 12, 16, 3, 3, 1, 1, 1, 1}, "ic3"},
        WinoCase{{1, 33, 8, 8, 7, 3, 3, 1, 1, 1, 1}, "odd_channels"}),
    [](const ::testing::TestParamInfo<WinoCase>& info) { return info.param.label; });

TEST(Winograd, ThreadedMatchesSerial) {
  Conv2dParams p{1, 16, 16, 16, 16, 3, 3, 1, 1, 1, 1};
  Rng rng(4);
  Tensor in = Tensor::Random({1, 16, 16, 16}, rng, -1, 1, Layout::NCHW());
  Tensor w = Tensor::Random({16, 16, 3, 3}, rng, -0.5f, 0.5f, Layout::OIHW());
  Tensor u = WinogradTransformWeights(w);
  Tensor serial = ConvWinograd(p, in, u, nullptr, {});
  NeoThreadPool pool(3, /*bind_threads=*/false);
  Tensor threaded = ConvWinograd(p, in, u, nullptr, {}, &pool);
  EXPECT_EQ(Tensor::MaxAbsDiff(serial, threaded), 0.0);
}

// The planner-facing workspace form: caller-provided V/M scratch sized by the query
// hook, serial and threaded, bitwise identical to the self-allocating form.
TEST(Winograd, CallerProvidedWorkspaceMatches) {
  Conv2dParams p{2, 16, 9, 9, 8, 3, 3, 1, 1, 1, 1};
  Rng rng(6);
  Tensor in = Tensor::Random({2, 16, 9, 9}, rng, -1, 1, Layout::NCHW());
  Tensor w = Tensor::Random({8, 16, 3, 3}, rng, -0.5f, 0.5f, Layout::OIHW());
  Tensor u = WinogradTransformWeights(w);
  const Tensor expected = ConvWinograd(p, in, u, nullptr, {});

  SerialEngine serial;
  NeoThreadPool pool(3, /*bind_threads=*/false);
  for (ThreadEngine* engine : {static_cast<ThreadEngine*>(&serial),
                               static_cast<ThreadEngine*>(&pool)}) {
    const std::size_t ws_bytes = WinogradWorkspaceBytes(p, engine->NumWorkers());
    EXPECT_EQ(ws_bytes,
              16u * (8u + 16u) * sizeof(float) * static_cast<std::size_t>(engine->NumWorkers()));
    Tensor workspace = Tensor::Empty({static_cast<std::int64_t>(ws_bytes / sizeof(float))});
    Tensor out = Tensor::Empty({p.batch, p.out_c, p.OutH(), p.OutW()}, Layout::NCHW());
    ConvWinograd(p, in, u, nullptr, {}, &out, engine, workspace.data());
    EXPECT_EQ(Tensor::MaxAbsDiff(expected, out), 0.0) << engine->Name();
  }
}

TEST(Winograd, RejectsNonApplicableWorkloads) {
  Conv2dParams p{1, 8, 8, 8, 8, 3, 3, 2, 2, 1, 1};
  Rng rng(5);
  Tensor in = Tensor::Random({1, 8, 8, 8}, rng, -1, 1, Layout::NCHW());
  Tensor w = Tensor::Random({8, 8, 3, 3}, rng, -1, 1, Layout::OIHW());
  Tensor u = WinogradTransformWeights(w);
  EXPECT_DEATH(ConvWinograd(p, in, u, nullptr, {}), "Check failed");
}

}  // namespace
}  // namespace neocpu
