// Tests for problem extraction from graphs and end-to-end global search behaviour
// (paper §3.3.2 / Figure 3).
#include <gtest/gtest.h>

#include "src/core/target.h"
#include "src/graph/builder.h"
#include "src/graph/passes/passes.h"
#include "src/tuning/global_search.h"

namespace neocpu {
namespace {

LocalSearchMap LocalsFor(const Graph& g, const Target& t) {
  LocalSearchMap locals;
  for (int i = 0; i < g.num_nodes(); ++i) {
    if (g.node(i).IsConv()) {
      locals[i] = LocalSearchConvShared(g.node(i).attrs.conv, t, CostMode::kAnalytic, false);
    }
  }
  return locals;
}

Graph ChainGraph(int convs) {
  GraphBuilder b("chain");
  int x = b.Input({1, 32, 28, 28});
  for (int i = 0; i < convs; ++i) {
    x = b.Conv(x, 32, 3, 1, 1);
    x = b.Relu(x);  // layout-tolerant op between convs
  }
  Graph g = b.Finish({x});
  return FuseOps(SimplifyInference(g));
}

Graph ResidualGraph() {
  GraphBuilder b("residual");
  int x = b.Input({1, 32, 14, 14});
  int shortcut = b.Conv(x, 32, 1, 1, 0, false, "proj");
  int main = b.Conv(x, 32, 3, 1, 1, false, "main");
  int add = b.Add(main, shortcut);
  Graph g = b.Finish({b.Relu(add)});
  return FuseOps(SimplifyInference(g));
}

TEST(ExtractGlobalProblem, ChainProducesChainEdges) {
  Graph g = ChainGraph(4);
  const Target t = Target::SkylakeAvx512();
  GlobalProblem p = ExtractGlobalProblem(g, LocalsFor(g, t));
  EXPECT_EQ(p.conv_ids.size(), 4u);
  // Chain of 4 convs: 3 producer-consumer edges (the first conv reads the graph input).
  EXPECT_EQ(p.edges.size(), 3u);
  for (const LayoutEdge& e : p.edges) {
    EXPECT_EQ(e.kind, LayoutEdgeKind::kProducerConsumer);
    EXPECT_GT(e.transform_ms, 0.0);
  }
  // Options are unique per (algo, ic_bn, oc_bn) combination.
  for (const auto& options : p.options) {
    for (std::size_t i = 0; i < options.size(); ++i) {
      for (std::size_t j = i + 1; j < options.size(); ++j) {
        EXPECT_FALSE(options[i].schedule.algo == options[j].schedule.algo &&
                     options[i].schedule.ic_bn == options[j].schedule.ic_bn &&
                     options[i].schedule.oc_bn == options[j].schedule.oc_bn);
      }
    }
  }
}

TEST(ExtractGlobalProblem, ResidualAddsSiblingEdge) {
  Graph g = ResidualGraph();
  const Target t = Target::SkylakeAvx512();
  GlobalProblem p = ExtractGlobalProblem(g, LocalsFor(g, t));
  EXPECT_EQ(p.conv_ids.size(), 2u);
  int sibling = 0, producer = 0;
  for (const LayoutEdge& e : p.edges) {
    if (e.kind == LayoutEdgeKind::kSibling) {
      ++sibling;
    } else {
      ++producer;
    }
  }
  // The fused residual conv constrains its residual producer: exactly one sibling edge.
  EXPECT_EQ(sibling, 1);
  EXPECT_EQ(producer, 0);  // both convs read the graph input directly
}

TEST(SolveGlobal, CoordinatesBlocksOnChains) {
  Graph g = ChainGraph(5);
  const Target t = Target::SkylakeAvx512();
  GlobalProblem p = ExtractGlobalProblem(g, LocalsFor(g, t));
  GlobalSolution s = SolveGlobal(p);
  EXPECT_TRUE(s.exact);
  ASSERT_EQ(s.assignment.size(), 5u);
  // Interior transforms are expensive relative to per-scheme deltas at this size: the
  // exact solution must avoid all interior mismatches.
  std::vector<ConvSchedule> in_order;
  for (const auto& [id, sched] : s.assignment) {
    in_order.push_back(sched);
  }
  for (std::size_t i = 1; i < in_order.size(); ++i) {
    EXPECT_EQ(in_order[i - 1].oc_bn, in_order[i].ic_bn)
        << "mismatch between conv " << i - 1 << " and " << i;
  }
}

TEST(SolveGlobal, ExactBeatsOrTiesPbqp) {
  Graph g = ResidualGraph();
  const Target t = Target::EpycAvx2();
  GlobalProblem p = ExtractGlobalProblem(g, LocalsFor(g, t));
  bool ok = false;
  GlobalSolution exact = SolveGlobalExactOnly(p, 1 << 22, &ok);
  ASSERT_TRUE(ok);
  GlobalSolution heuristic = SolveGlobalPbqpOnly(p);
  EXPECT_LE(exact.cost_ms, heuristic.cost_ms + 1e-9);
  // Paper quality bound.
  EXPECT_GE(exact.cost_ms / heuristic.cost_ms, 0.88);
}

TEST(SolveGlobal, FreeTransformsDecoupleChoices) {
  // If all edges cost zero, the global solution must degenerate to per-conv local best.
  Graph g = ChainGraph(3);
  const Target t = Target::SkylakeAvx512();
  auto locals = LocalsFor(g, t);
  GlobalProblem p = ExtractGlobalProblem(g, locals);
  for (LayoutEdge& e : p.edges) {
    e.transform_ms = 0.0;
  }
  GlobalSolution s = SolveGlobal(p);
  for (const auto& [conv_id, sched] : s.assignment) {
    const ConvSchedule& local_best = locals.at(conv_id)->best().schedule;
    EXPECT_EQ(sched.ic_bn, local_best.ic_bn);
    EXPECT_EQ(sched.oc_bn, local_best.oc_bn);
  }
}

TEST(SolveGlobal, SolveSecondsIsPopulated) {
  Graph g = ChainGraph(2);
  const Target t = Target::SkylakeAvx512();
  GlobalProblem p = ExtractGlobalProblem(g, LocalsFor(g, t));
  GlobalSolution s = SolveGlobal(p);
  EXPECT_GE(s.solve_seconds, 0.0);
  EXPECT_GT(s.cost_ms, 0.0);
}

}  // namespace
}  // namespace neocpu
