// Wall-clock timing plus the mean/standard-error statistics the paper reports
// ("each entry contains the mean value of 1000 runs and the corresponding standard
// error", Table 2).
#ifndef NEOCPU_SRC_BASE_TIMER_H_
#define NEOCPU_SRC_BASE_TIMER_H_

#include <chrono>
#include <cstddef>
#include <functional>
#include <vector>

namespace neocpu {

class Timer {
 public:
  Timer() { Reset(); }
  void Reset() { start_ = Clock::now(); }
  // Seconds elapsed since construction or last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Summary statistics over a set of per-run latencies.
struct RunStats {
  double mean = 0.0;    // arithmetic mean
  double stddev = 0.0;  // sample standard deviation (n-1)
  double stderr_ = 0.0;  // standard error of the mean
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;

  static RunStats FromSamples(const std::vector<double>& samples);
};

// Runs `fn` `warmup` times unmeasured, then `runs` times measured, returning latency
// statistics in milliseconds.
RunStats MeasureMillis(const std::function<void()>& fn, std::size_t runs,
                       std::size_t warmup = 1);

// Reads a positive integer from the environment, falling back to `fallback` when the
// variable is unset or unparsable. Used by the bench harnesses for run-count knobs.
std::size_t EnvSizeT(const char* name, std::size_t fallback);
double EnvDouble(const char* name, double fallback);

}  // namespace neocpu

#endif  // NEOCPU_SRC_BASE_TIMER_H_
