#include "src/base/cycle_clock.h"

#include <chrono>

#include "src/base/cpu_info.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define NEOCPU_HAVE_RDTSC 1
#endif

namespace neocpu {
namespace {

#if defined(NEOCPU_HAVE_RDTSC)
inline std::uint64_t ReadTsc() {
  _mm_lfence();  // retire preceding loads so the stamp brackets the measured region
  return __rdtsc();
}

// Calibrate the TSC rate against steady_clock over a ~2ms window: long enough that
// the two ~20ns endpoint reads contribute <0.01% error, short enough to not matter
// at first-profile time.
double Calibrate() {
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t c0 = ReadTsc();
  for (;;) {
    const auto t1 = std::chrono::steady_clock::now();
    const std::uint64_t c1 = ReadTsc();
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
    if (ns >= 2'000'000 && c1 > c0) {
      return static_cast<double>(ns) / static_cast<double>(c1 - c0);
    }
  }
}
#endif

}  // namespace

bool CycleClock::Supported() {
#if defined(NEOCPU_HAVE_RDTSC)
  static const bool supported = HostCpuInfo().has_invariant_tsc;
  return supported;
#else
  return false;
#endif
}

std::uint64_t CycleClock::Now() {
#if defined(NEOCPU_HAVE_RDTSC)
  return ReadTsc();
#else
  return 0;
#endif
}

double CycleClock::NanosPerCycle() {
#if defined(NEOCPU_HAVE_RDTSC)
  static const double nanos = Supported() ? Calibrate() : 0.0;
  return nanos;
#else
  return 0.0;
#endif
}

}  // namespace neocpu
