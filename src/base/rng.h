// Deterministic pseudo-random number generation. Model parameters and test inputs are
// generated from fixed seeds so every run (and every executor under test) sees the same
// values.
#ifndef NEOCPU_SRC_BASE_RNG_H_
#define NEOCPU_SRC_BASE_RNG_H_

#include <cstdint>

namespace neocpu {

// SplitMix64: tiny, fast, and statistically adequate for weight initialization.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  std::uint64_t NextU64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Uniform in [lo, hi).
  float NextFloat(float lo, float hi) {
    return lo + static_cast<float>(NextDouble()) * (hi - lo);
  }

  // Uniform integer in [0, bound).
  std::uint64_t NextBounded(std::uint64_t bound) { return bound ? NextU64() % bound : 0; }

 private:
  std::uint64_t state_;
};

}  // namespace neocpu

#endif  // NEOCPU_SRC_BASE_RNG_H_
