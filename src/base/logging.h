// Minimal logging / assertion facility used across the library.
//
// NEOCPU_CHECK* macros are always on (they guard invariants whose violation would
// corrupt memory or silently produce wrong numbers); NEOCPU_DCHECK* compile out in
// NDEBUG builds and guard hot paths.
#ifndef NEOCPU_SRC_BASE_LOGGING_H_
#define NEOCPU_SRC_BASE_LOGGING_H_

#include <sstream>
#include <string>

namespace neocpu {

enum class LogSeverity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

// Streams a single log record; flushes (and aborts for kFatal) on destruction.
class LogMessage {
 public:
  LogMessage(const char* file, int line, LogSeverity severity);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
  LogSeverity severity_;
};

// Global minimum severity printed to stderr (default kInfo). Thread-safe.
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

#define NEOCPU_LOG_INFO ::neocpu::LogMessage(__FILE__, __LINE__, ::neocpu::LogSeverity::kInfo)
#define NEOCPU_LOG_WARNING \
  ::neocpu::LogMessage(__FILE__, __LINE__, ::neocpu::LogSeverity::kWarning)
#define NEOCPU_LOG_ERROR ::neocpu::LogMessage(__FILE__, __LINE__, ::neocpu::LogSeverity::kError)
#define NEOCPU_LOG_FATAL ::neocpu::LogMessage(__FILE__, __LINE__, ::neocpu::LogSeverity::kFatal)
#define LOG(severity) NEOCPU_LOG_##severity.stream()

#define NEOCPU_CHECK(cond)                                          \
  if (!(cond))                                                      \
  NEOCPU_LOG_FATAL.stream() << "Check failed: " #cond " "

#define NEOCPU_CHECK_OP(op, a, b)                                                      \
  if (!((a)op(b)))                                                                     \
  NEOCPU_LOG_FATAL.stream() << "Check failed: " #a " " #op " " #b " (" << (a) << " vs " \
                            << (b) << ") "

#define NEOCPU_CHECK_EQ(a, b) NEOCPU_CHECK_OP(==, a, b)
#define NEOCPU_CHECK_NE(a, b) NEOCPU_CHECK_OP(!=, a, b)
#define NEOCPU_CHECK_LT(a, b) NEOCPU_CHECK_OP(<, a, b)
#define NEOCPU_CHECK_LE(a, b) NEOCPU_CHECK_OP(<=, a, b)
#define NEOCPU_CHECK_GT(a, b) NEOCPU_CHECK_OP(>, a, b)
#define NEOCPU_CHECK_GE(a, b) NEOCPU_CHECK_OP(>=, a, b)

#ifdef NDEBUG
#define NEOCPU_DCHECK(cond) \
  if (false) NEOCPU_LOG_FATAL.stream()
#else
#define NEOCPU_DCHECK(cond) NEOCPU_CHECK(cond)
#endif

}  // namespace neocpu

#endif  // NEOCPU_SRC_BASE_LOGGING_H_
