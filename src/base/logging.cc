#include "src/base/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace neocpu {
namespace {

std::atomic<int> g_min_severity{static_cast<int>(LogSeverity::kInfo)};
std::mutex g_log_mutex;

const char* SeverityTag(LogSeverity s) {
  switch (s) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  return base;
}

}  // namespace

LogMessage::LogMessage(const char* file, int line, LogSeverity severity) : severity_(severity) {
  stream_ << "[" << SeverityTag(severity) << " " << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(severity_) >= g_min_severity.load(std::memory_order_relaxed) ||
      severity_ == LogSeverity::kFatal) {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(static_cast<int>(severity), std::memory_order_relaxed);
}

LogSeverity MinLogSeverity() {
  return static_cast<LogSeverity>(g_min_severity.load(std::memory_order_relaxed));
}

}  // namespace neocpu
