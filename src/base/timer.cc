#include "src/base/timer.h"

#include <cmath>
#include <cstdlib>
#include <limits>

namespace neocpu {

RunStats RunStats::FromSamples(const std::vector<double>& samples) {
  RunStats stats;
  stats.count = samples.size();
  if (samples.empty()) {
    return stats;
  }
  stats.min = std::numeric_limits<double>::infinity();
  stats.max = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  for (double s : samples) {
    sum += s;
    stats.min = std::min(stats.min, s);
    stats.max = std::max(stats.max, s);
  }
  stats.mean = sum / static_cast<double>(samples.size());
  if (samples.size() > 1) {
    double sq = 0.0;
    for (double s : samples) {
      sq += (s - stats.mean) * (s - stats.mean);
    }
    stats.stddev = std::sqrt(sq / static_cast<double>(samples.size() - 1));
    stats.stderr_ = stats.stddev / std::sqrt(static_cast<double>(samples.size()));
  }
  return stats;
}

RunStats MeasureMillis(const std::function<void()>& fn, std::size_t runs, std::size_t warmup) {
  for (std::size_t i = 0; i < warmup; ++i) {
    fn();
  }
  std::vector<double> samples;
  samples.reserve(runs);
  for (std::size_t i = 0; i < runs; ++i) {
    Timer t;
    fn();
    samples.push_back(t.Millis());
  }
  return RunStats::FromSamples(samples);
}

std::size_t EnvSizeT(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) {
    return fallback;
  }
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value) {
    return fallback;
  }
  return static_cast<std::size_t>(parsed);
}

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) {
    return fallback;
  }
  char* end = nullptr;
  double parsed = std::strtod(value, &end);
  if (end == value) {
    return fallback;
  }
  return parsed;
}

}  // namespace neocpu
