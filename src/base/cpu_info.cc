#include "src/base/cpu_info.h"

#include <fstream>
#include <thread>

#ifdef __linux__
#include <unistd.h>
#endif

namespace neocpu {
namespace {

CpuInfo Detect() {
  CpuInfo info;
#if defined(__AVX512F__)
  info.isa = SimdIsa::kAvx512;
  info.vector_bits = 512;
  info.num_vector_registers = 32;
#elif defined(__AVX2__)
  info.isa = SimdIsa::kAvx2;
  info.vector_bits = 256;
  info.num_vector_registers = 16;
#elif defined(__ARM_NEON)
  info.isa = SimdIsa::kNeon;
  info.vector_bits = 128;
  info.num_vector_registers = 32;
#else
  info.isa = SimdIsa::kScalar;
  info.vector_bits = 128;
  info.num_vector_registers = 16;
#endif
#if defined(__FMA__) || defined(__ARM_FEATURE_FMA)
  info.has_fma = true;
#endif
#if defined(__x86_64__) || defined(__i386__)
  // Runtime (not compile-time) capability: the binary is built portable and picks the
  // int8 kernel tier via cpuid, so the Target profile must reflect the machine it is
  // running on, not the flags it was compiled with.
  info.has_vnni = __builtin_cpu_supports("avx512vnni") != 0;
#endif

  unsigned hw = std::thread::hardware_concurrency();
  info.physical_cores = hw == 0 ? 1 : static_cast<int>(hw);

#ifdef __linux__
  long l1 = sysconf(_SC_LEVEL1_DCACHE_SIZE);
  long l2 = sysconf(_SC_LEVEL2_CACHE_SIZE);
  long l3 = sysconf(_SC_LEVEL3_CACHE_SIZE);
  if (l1 > 0) {
    info.l1d_bytes = static_cast<std::size_t>(l1);
  }
  if (l2 > 0) {
    info.l2_bytes = static_cast<std::size_t>(l2);
  }
  if (l3 > 0) {
    info.l3_bytes = static_cast<std::size_t>(l3);
  }
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  bool constant_tsc = false, nonstop_tsc = false;
  while (std::getline(cpuinfo, line)) {
    if (info.brand.empty() && line.rfind("model name", 0) == 0) {
      std::size_t colon = line.find(':');
      if (colon != std::string::npos) {
        info.brand = line.substr(colon + 2);
      }
    } else if (line.rfind("flags", 0) == 0) {
      constant_tsc = line.find(" constant_tsc") != std::string::npos;
      nonstop_tsc = line.find(" nonstop_tsc") != std::string::npos;
      break;  // flags follow the model name; one logical CPU is representative
    }
  }
  info.has_invariant_tsc = constant_tsc && nonstop_tsc;
#endif
  return info;
}

}  // namespace

const CpuInfo& HostCpuInfo() {
  static const CpuInfo info = Detect();
  return info;
}

const char* SimdIsaName(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar:
      return "scalar";
    case SimdIsa::kNeon:
      return "neon";
    case SimdIsa::kAvx2:
      return "avx2";
    case SimdIsa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

}  // namespace neocpu
