// Cache-line and SIMD-friendly aligned allocation helpers.
#ifndef NEOCPU_SRC_BASE_ALIGN_H_
#define NEOCPU_SRC_BASE_ALIGN_H_

#include <cstddef>
#include <cstdlib>
#include <memory>

namespace neocpu {

inline constexpr std::size_t kCacheLineBytes = 64;
// Wide enough for AVX-512 loads/stores.
inline constexpr std::size_t kSimdAlignBytes = 64;

inline void* AlignedAlloc(std::size_t bytes, std::size_t alignment = kSimdAlignBytes) {
  if (bytes == 0) {
    return nullptr;
  }
  // std::aligned_alloc requires size to be a multiple of alignment.
  std::size_t rounded = (bytes + alignment - 1) / alignment * alignment;
  return std::aligned_alloc(alignment, rounded);
}

inline void AlignedFree(void* ptr) { std::free(ptr); }

struct AlignedDeleter {
  void operator()(void* p) const { AlignedFree(p); }
};

template <typename T>
using AlignedPtr = std::unique_ptr<T[], AlignedDeleter>;

template <typename T>
AlignedPtr<T> MakeAligned(std::size_t count) {
  return AlignedPtr<T>(static_cast<T*>(AlignedAlloc(count * sizeof(T))));
}

}  // namespace neocpu

#endif  // NEOCPU_SRC_BASE_ALIGN_H_
