// Host CPU introspection: SIMD capability, physical core count, cache sizes.
// These feed the default Target profile (src/core/target.h) and the analytic cost model.
#ifndef NEOCPU_SRC_BASE_CPU_INFO_H_
#define NEOCPU_SRC_BASE_CPU_INFO_H_

#include <cstddef>
#include <string>

namespace neocpu {

enum class SimdIsa {
  kScalar,   // no vector extension detected
  kNeon,     // 128-bit (4 fp32 lanes)
  kAvx2,     // 256-bit (8 fp32 lanes)
  kAvx512,   // 512-bit (16 fp32 lanes)
};

struct CpuInfo {
  SimdIsa isa = SimdIsa::kScalar;
  int vector_bits = 128;          // widest usable fp32 vector
  int num_vector_registers = 16;  // architectural SIMD register count
  int physical_cores = 1;
  std::size_t l1d_bytes = 32 * 1024;
  std::size_t l2_bytes = 1024 * 1024;
  std::size_t l3_bytes = 8 * 1024 * 1024;
  bool has_fma = false;
  bool has_vnni = false;          // AVX-512 VNNI (vpdpbusd), detected at runtime
  // Invariant TSC: rdtsc ticks at a constant rate across frequency scaling and sleep
  // states, so it can back cycle-accurate node timing (constant_tsc + nonstop_tsc).
  bool has_invariant_tsc = false;
  std::string brand;

  int VectorLanesF32() const { return vector_bits / 32; }
};

// Detects the host once; subsequent calls return the cached result.
const CpuInfo& HostCpuInfo();

const char* SimdIsaName(SimdIsa isa);

}  // namespace neocpu

#endif  // NEOCPU_SRC_BASE_CPU_INFO_H_
