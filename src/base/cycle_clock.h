// Serialized TSC reads for cycle-accurate node timing.
//
// steady_clock costs ~20ns per read through the vDSO; a serialized rdtsc is ~10ns and
// — more importantly — counts *cycles*, which is the unit kernel cost models reason
// in. The reads are serialized (lfence; rdtsc) so the timestamp cannot drift into the
// middle of the measured region on an out-of-order core.
//
// Only meaningful where the TSC is invariant (constant rate across P-states, keeps
// counting in deep C-states — the `constant_tsc nonstop_tsc` cpuid flags): on other
// hosts, or on non-x86 builds, Supported() is false and callers fall back to
// steady_clock. Cycles convert to nanos through a one-time calibration of the TSC
// frequency against steady_clock (the kernel does not export it portably).
#ifndef NEOCPU_SRC_BASE_CYCLE_CLOCK_H_
#define NEOCPU_SRC_BASE_CYCLE_CLOCK_H_

#include <cstdint>

namespace neocpu {

class CycleClock {
 public:
  // True when serialized TSC reads are available AND invariant on this host.
  // Constant after the first call.
  static bool Supported();

  // Serialized cycle counter read. Call only when Supported().
  static std::uint64_t Now();

  // Nanoseconds per TSC cycle, calibrated once against steady_clock (~2ms spin on
  // first use). 0.0 when !Supported().
  static double NanosPerCycle();

  // Convenience: elapsed nanos between two Now() reads.
  static std::uint64_t CyclesToNanos(std::uint64_t cycles) {
    return static_cast<std::uint64_t>(static_cast<double>(cycles) * NanosPerCycle());
  }
};

}  // namespace neocpu

#endif  // NEOCPU_SRC_BASE_CYCLE_CLOCK_H_
