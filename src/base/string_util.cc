#include "src/base/string_util.h"

#include <cstdio>

namespace neocpu {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts, const std::string& sep) {
  return JoinMapped(parts, sep, [](const std::string& s) { return s; });
}

}  // namespace neocpu
