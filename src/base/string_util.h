// printf-style formatting and joining helpers (gcc 12 lacks std::format).
#ifndef NEOCPU_SRC_BASE_STRING_UTIL_H_
#define NEOCPU_SRC_BASE_STRING_UTIL_H_

#include <cstdarg>
#include <string>
#include <vector>

namespace neocpu {

std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

std::string Join(const std::vector<std::string>& parts, const std::string& sep);

template <typename Container, typename Fn>
std::string JoinMapped(const Container& items, const std::string& sep, Fn&& fn) {
  std::string out;
  bool first = true;
  for (const auto& item : items) {
    if (!first) {
      out += sep;
    }
    first = false;
    out += fn(item);
  }
  return out;
}

}  // namespace neocpu

#endif  // NEOCPU_SRC_BASE_STRING_UTIL_H_
