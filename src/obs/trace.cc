#include "src/obs/trace.h"

#include <fstream>
#include <sstream>

namespace neocpu {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

TraceRecorder::TraceRecorder(std::size_t max_events)
    : epoch_(Clock::now()), max_events_(max_events) {}

int TraceRecorder::TidForLocked(std::thread::id id) {
  auto it = tids_.find(id);
  if (it != tids_.end()) {
    return it->second;
  }
  const int tid = static_cast<int>(tids_.size()) + 1;
  tids_.emplace(id, tid);
  return tid;
}

void TraceRecorder::RecordSpan(const char* category, std::string name,
                               Clock::time_point begin, Clock::time_point end,
                               std::string args_json) {
  Event event;
  event.name = std::move(name);
  event.category = category;
  event.ts_us = MicrosSinceEpoch(begin);
  event.dur_us = std::chrono::duration<double, std::micro>(end - begin).count();
  event.phase = 'X';
  event.args = std::move(args_json);
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  event.tid = TidForLocked(std::this_thread::get_id());
  events_.push_back(std::move(event));
}

void TraceRecorder::RecordInstant(const char* category, std::string name,
                                  std::string args_json) {
  Event event;
  event.name = std::move(name);
  event.category = category;
  event.ts_us = MicrosSinceEpoch(Clock::now());
  event.phase = 'i';
  event.args = std::move(args_json);
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  event.tid = TidForLocked(std::this_thread::get_id());
  events_.push_back(std::move(event));
}

std::size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  dropped_ = 0;
}

std::string TraceRecorder::ToJson() const {
  std::vector<Event> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    events = events_;
  }
  std::ostringstream out;
  out.precision(3);
  out << std::fixed;
  out << "{\"traceEvents\": [\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    out << "  {\"name\": \"" << JsonEscape(e.name) << "\", \"cat\": \"" << e.category
        << "\", \"ph\": \"" << e.phase << "\", \"pid\": 1, \"tid\": " << e.tid
        << ", \"ts\": " << e.ts_us;
    if (e.phase == 'X') {
      out << ", \"dur\": " << e.dur_us;
    } else if (e.phase == 'i') {
      out << ", \"s\": \"t\"";  // thread-scoped instant
    }
    if (!e.args.empty()) {
      out << ", \"args\": {" << e.args << "}";
    }
    out << "}" << (i + 1 < events.size() ? "," : "") << "\n";
  }
  out << "], \"displayTimeUnit\": \"ms\"}\n";
  return out.str();
}

bool TraceRecorder::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << ToJson();
  return static_cast<bool>(out);
}

}  // namespace neocpu
