// Opt-in chrome://tracing timeline recorder for the request lifecycle.
//
// A TraceRecorder collects complete-duration spans ("ph":"X") and instant events
// ("ph":"i") from every thread that touches a request — submit, queue wait, batch
// formation, executor dispatch, per-node execution — and serializes them as the Trace
// Event Format JSON that chrome://tracing / Perfetto load directly. Tail-latency
// anomalies (a straggler batch, a node suddenly 10x slower on one partition) become a
// picture instead of a guess.
//
// The buffer is bounded: once max_events is reached new events are counted as dropped
// rather than grown into unbounded memory — a recorder left attached to a production
// server degrades to a ring of the first N events, never to an OOM. All entry points
// are thread-safe.
#ifndef NEOCPU_SRC_OBS_TRACE_H_
#define NEOCPU_SRC_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace neocpu {

class TraceRecorder {
 public:
  using Clock = std::chrono::steady_clock;

  explicit TraceRecorder(std::size_t max_events = 1 << 20);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  struct Event {
    std::string name;
    const char* category = "";
    double ts_us = 0.0;   // relative to the recorder's epoch
    double dur_us = 0.0;  // 0 for instants
    int tid = 0;
    char phase = 'X';
    std::string args;  // preformatted JSON object body, may be empty
  };

  // Records a [begin, end) span on the calling thread's timeline. `args_json`, when
  // non-empty, is a preformatted JSON object body ("\"model\":\"x\",\"batch\":4")
  // attached as the event's args.
  void RecordSpan(const char* category, std::string name, Clock::time_point begin,
                  Clock::time_point end, std::string args_json = {});
  // As above but attributed to an explicit virtual thread lane (e.g. a request's
  // submitting thread observed from a worker).
  void RecordInstant(const char* category, std::string name, std::string args_json = {});

  std::size_t size() const;
  std::uint64_t dropped() const;
  void Clear();

  // The steady_clock origin all ts_us values are relative to.
  Clock::time_point epoch() const { return epoch_; }
  // Copy of the recorded events, in record order (tests and offline analysis).
  std::vector<Event> events() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
  }

  // Trace Event Format: {"traceEvents": [...], "displayTimeUnit": "ms"}.
  std::string ToJson() const;
  bool WriteFile(const std::string& path) const;

 private:
  // Small stable ids instead of raw std::thread::id hashes keep the timeline readable.
  int TidForLocked(std::thread::id id);
  double MicrosSinceEpoch(Clock::time_point t) const {
    return std::chrono::duration<double, std::micro>(t - epoch_).count();
  }

  const Clock::time_point epoch_;
  const std::size_t max_events_;
  mutable std::mutex mutex_;
  std::vector<Event> events_;
  std::map<std::thread::id, int> tids_;
  std::uint64_t dropped_ = 0;
};

// RAII span: records construction→destruction on `recorder` (null = no-op, so call
// sites stay unconditional).
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* recorder, const char* category, std::string name,
            std::string args_json = {})
      : recorder_(recorder),
        category_(category),
        name_(std::move(name)),
        args_(std::move(args_json)),
        begin_(recorder != nullptr ? TraceRecorder::Clock::now()
                                   : TraceRecorder::Clock::time_point()) {}
  ~TraceSpan() {
    if (recorder_ != nullptr) {
      recorder_->RecordSpan(category_, std::move(name_), begin_,
                            TraceRecorder::Clock::now(), std::move(args_));
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceRecorder* recorder_;
  const char* category_;
  std::string name_;
  std::string args_;
  TraceRecorder::Clock::time_point begin_;
};

}  // namespace neocpu

#endif  // NEOCPU_SRC_OBS_TRACE_H_
