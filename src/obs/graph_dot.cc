#include "src/obs/graph_dot.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "src/base/string_util.h"

namespace neocpu {

namespace {

// Escapes a string for use inside a double-quoted DOT label. Label line breaks are the
// two-character sequence \n in the DOT source, produced by the callers directly.
std::string DotEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

std::string DimsToString(const std::vector<std::int64_t>& dims) {
  return "{" +
         JoinMapped(dims, ",",
                    [](std::int64_t d) { return StrFormat("%lld", static_cast<long long>(d)); }) +
         "}";
}

// White → saturated red ramp for the profile heat overlay.
std::string HeatColor(double share) {
  share = std::clamp(share, 0.0, 1.0);
  const int cool = static_cast<int>(235.0 - 180.0 * share);
  return StrFormat("#ff%02x%02x", cool, cool);
}

// Baseline fill per op class when no profile drives the coloring.
const char* KindColor(OpType type) {
  switch (type) {
    case OpType::kInput:
      return "#d0e6f7";
    case OpType::kConstant:
      return "#f0f0f0";
    case OpType::kConv2d:
      return "#ffe0c0";
    case OpType::kDense:
      return "#ffecc0";
    case OpType::kLayoutTransform:
      return "#e0d0f0";
    case OpType::kQuantize:
    case OpType::kDequantize:
      return "#d0f0d8";
    case OpType::kMultiHeadAttention:
      return "#f7d9e6";
    case OpType::kLayerNorm:
    case OpType::kTranspose:
      return "#e6e0f7";
    default:
      return "#eaf2ea";
  }
}

const char* NodeShape(OpType type) {
  switch (type) {
    case OpType::kInput:
      return "ellipse";
    case OpType::kConstant:
      return "note";
    case OpType::kConv2d:
    case OpType::kDense:
      return "box";
    default:
      return "box";
  }
}

}  // namespace

std::string GraphToDot(const Graph& graph, const GraphDotOptions& options) {
  const bool has_profile = options.profile != nullptr && !options.profile->empty();
  // Per-node profile lookup and the hottest node (normalizer for the heat ramp).
  std::map<int, const NodeProfile*> profile_by_id;
  double max_node_ms = 0.0;
  if (has_profile) {
    for (const NodeProfile& node : options.profile->nodes) {
      profile_by_id[node.node_id] = &node;
      max_node_ms = std::max(max_node_ms, node.total_ms);
    }
  }

  std::vector<bool> exported(static_cast<std::size_t>(graph.num_nodes()), false);
  for (int id = 0; id < graph.num_nodes(); ++id) {
    const Node& node = graph.node(id);
    exported[static_cast<std::size_t>(id)] =
        options.include_constants || node.type != OpType::kConstant;
  }

  int num_nodes = 0;
  int num_edges = 0;
  std::ostringstream body;
  for (int id = 0; id < graph.num_nodes(); ++id) {
    if (!exported[static_cast<std::size_t>(id)]) {
      continue;
    }
    const Node& node = graph.node(id);
    ++num_nodes;

    std::string label = DotEscape(node.name.empty() ? StrFormat("node%d", id) : node.name);
    label += StrFormat("\\n%s", OpTypeName(node.type));
    if (node.IsConv()) {
      const ConvSchedule& sched = node.attrs.schedule;
      label += StrFormat("\\nalgo=%s dtype=%s", ConvAlgoName(sched.algo),
                         DTypeName(sched.dtype));
      if (sched.IsDirect()) {
        label += StrFormat("\\nic_bn=%lld oc_bn=%lld reg_n=%lld%s",
                           static_cast<long long>(sched.ic_bn),
                           static_cast<long long>(sched.oc_bn),
                           static_cast<long long>(sched.reg_n),
                           sched.unroll_ker ? " unroll" : "");
      }
    } else if (node.type == OpType::kDense && node.attrs.has_gemm) {
      const GemmSchedule& gemm = node.attrs.gemm;
      label += StrFormat("\\ngemm dtype=%s", DTypeName(gemm.dtype));
      label += StrFormat("\\nmc=%lld nc=%lld kc=%lld mr=%lld nr=%lld",
                         static_cast<long long>(gemm.mc),
                         static_cast<long long>(gemm.nc),
                         static_cast<long long>(gemm.kc),
                         static_cast<long long>(gemm.mr),
                         static_cast<long long>(gemm.nr));
    } else if (node.type == OpType::kMultiHeadAttention) {
      label += StrFormat("\\nheads=%lld seq=%lld dtype=%s",
                         static_cast<long long>(node.attrs.heads),
                         static_cast<long long>(node.attrs.seq),
                         DTypeName(node.out_dtype));
    } else if (node.type != OpType::kConstant) {
      label += StrFormat("\\ndtype=%s", DTypeName(node.out_dtype));
    }
    if (!node.out_dims.empty()) {
      label += StrFormat("\\n%s %s", DimsToString(node.out_dims).c_str(),
                         node.out_layout.ToString().c_str());
    }
    if (options.plan != nullptr &&
        id < static_cast<int>(options.plan->nodes.size())) {
      const NodePlan& np = options.plan->nodes[static_cast<std::size_t>(id)];
      switch (np.placement) {
        case BufferPlacement::kArena:
          if (np.in_place_of >= 0) {
            label += StrFormat("\\narena +%zu (%zu B, in-place over n%d)", np.offset,
                               np.size_bytes, np.in_place_of);
          } else {
            label += StrFormat("\\narena +%zu (%zu B)", np.offset, np.size_bytes);
          }
          if (np.workspace_bytes > 0) {
            label += StrFormat("\\nworkspace +%zu (%zu B)", np.workspace_offset,
                               np.workspace_bytes);
          }
          break;
        case BufferPlacement::kAlias:
          label += StrFormat("\\nalias of n%d", np.alias_of);
          break;
        case BufferPlacement::kHeap:
          if (node.type != OpType::kInput && node.type != OpType::kConstant) {
            label += "\\nheap";
          }
          break;
      }
    }

    std::string fill = KindColor(node.type);
    const NodeProfile* profile = nullptr;
    if (has_profile) {
      auto it = profile_by_id.find(id);
      if (it != profile_by_id.end()) {
        profile = it->second;
        const double share =
            options.profile->total_ms > 0 ? profile->total_ms / options.profile->total_ms
                                          : 0.0;
        label += StrFormat("\\n%.1f us/run  %.1f%%", profile->mean_us(), 100.0 * share);
        fill = HeatColor(max_node_ms > 0 ? profile->total_ms / max_node_ms : 0.0);
      }
    }

    body << "  n" << id << " [label=\"" << label << "\", shape=" << NodeShape(node.type)
         << ", style=filled, fillcolor=\"" << fill << "\"];\n";
    for (int input : node.inputs) {
      if (!exported[static_cast<std::size_t>(input)]) {
        continue;
      }
      body << "  n" << input << " -> n" << id << ";\n";
      ++num_edges;
    }
  }

  std::ostringstream out;
  out << "/* neocpu-dot nodes=" << num_nodes << " edges=" << num_edges << " */\n";
  out << "digraph \"" << DotEscape(options.graph_name) << "\" {\n";
  out << "  rankdir=TB;\n";
  out << "  node [fontsize=10, fontname=\"Helvetica\"];\n";
  std::string caption = DotEscape(options.graph_name);
  if (options.plan != nullptr && options.plan->UsesArena()) {
    caption += StrFormat("\\narena %zu B (naive %zu B), %d arena / %d alias / %d heap nodes",
                         options.plan->arena_bytes, options.plan->naive_bytes,
                         options.plan->arena_nodes, options.plan->alias_nodes,
                         options.plan->heap_nodes);
  }
  if (has_profile) {
    caption += StrFormat("\\nprofiled: %llu sampled runs, %.3f ms/run",
                         static_cast<unsigned long long>(options.profile->runs_sampled),
                         options.profile->PerRunMs());
  }
  out << "  label=\"" << caption << "\";\n  labelloc=t;\n";
  out << body.str();
  out << "}\n";
  return out.str();
}

std::string CompiledModelToDot(const CompiledModel& model,
                               const NodeProfileSnapshot* profile) {
  GraphDotOptions options;
  options.plan = model.plan().get();
  options.profile = profile;
  options.graph_name = model.graph().name.empty() ? "neocpu" : model.graph().name;
  return GraphToDot(model.graph(), options);
}

}  // namespace neocpu
