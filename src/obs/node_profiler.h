// Low-overhead per-node execution profiler for the graph executor.
//
// The paper's whole argument is that per-layer choices (blocking, algorithm, dtype)
// decide end-to-end latency; the profiler makes those per-layer costs visible at
// runtime. An Executor with a profiler attached times every node of a *sampled* Run
// with steady_clock (vDSO clock_gettime, ~20ns per read) and folds the result into
// per-node and per-op-kind aggregates.
//
// Overhead contract:
//   * detached (the default): the executor pays one relaxed atomic load per Run and
//     one predictable branch per node — no clock reads, no stores;
//   * attached with sample_rate N: only every Nth Run is timed, so steady-state cost
//     is (2 clock reads + 1 shared-lock + 2 relaxed adds) per node per N runs. The
//     serve_test overhead guard holds this under 5% of throughput on the tiny zoo
//     model at the default serving rate.
//
// Thread-safety: RecordNode/BeginRun are called concurrently by executor-pool workers
// (hot, shared lock + relaxed atomics); RegisterGraph takes the exclusive lock and is
// expected at attach time (compile, registration, variant materialization), not per
// request. Snapshot is safe anytime.
#ifndef NEOCPU_SRC_OBS_NODE_PROFILER_H_
#define NEOCPU_SRC_OBS_NODE_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/graph/graph.h"

namespace neocpu {

struct NodeProfile {
  int node_id = -1;
  OpType type = OpType::kInput;
  std::string name;
  std::uint64_t runs = 0;   // sampled executions of this node
  double total_ms = 0.0;    // summed over sampled executions
  double mean_us() const {
    return runs == 0 ? 0.0 : total_ms * 1e3 / static_cast<double>(runs);
  }
};

struct OpKindProfile {
  std::string kind;  // OpTypeName, with convs split by algorithm ("Conv2d/winograd")
  std::uint64_t calls = 0;
  double total_ms = 0.0;
};

struct NodeProfileSnapshot {
  std::uint64_t runs_total = 0;    // Run() calls observed (sampled or not)
  std::uint64_t runs_sampled = 0;  // Run() calls actually timed
  double total_ms = 0.0;           // sum of all node times across sampled runs
  std::vector<NodeProfile> nodes;  // nodes with at least one sample, by node id
  std::vector<OpKindProfile> by_kind;  // descending total_ms

  bool empty() const { return runs_sampled == 0; }
  // Mean timed cost of one full Run (the number to compare against wall time).
  double PerRunMs() const {
    return runs_sampled == 0 ? 0.0 : total_ms / static_cast<double>(runs_sampled);
  }
  // Human-readable table: per-kind rollup plus the top_n hottest nodes (0 = all).
  std::string ToString(std::size_t top_n = 16) const;
};

// Merges snapshots from several executors/variants of one model: run counts and kind
// totals add; nodes are unioned keyed by (id, type, name) so batch variants of the
// same graph fold together while structurally different re-tuned graphs stay distinct.
NodeProfileSnapshot MergeProfileSnapshots(const std::vector<NodeProfileSnapshot>& parts);

class NodeProfiler {
 public:
  // Times every sample_rate-th Run (1 = every run). Rate 0 is clamped to 1.
  explicit NodeProfiler(std::uint32_t sample_rate = 1);

  NodeProfiler(const NodeProfiler&) = delete;
  NodeProfiler& operator=(const NodeProfiler&) = delete;

  // Pre-registers every node of `graph` (id, type, name) so the record path never
  // allocates. Called at attach time; safe to call for several graphs — cells grow to
  // the largest node id seen.
  void RegisterGraph(const Graph& graph);

  // One call per Executor::Run; true when this run should be timed.
  bool BeginRun() {
    return runs_total_.fetch_add(1, std::memory_order_relaxed) % sample_rate_ == 0;
  }
  // Counts a timed run (called once per sampled Run, after its nodes recorded).
  void EndSampledRun() { runs_sampled_.fetch_add(1, std::memory_order_relaxed); }

  // Folds one timed node execution in. `node.id` must have been registered.
  void RecordNode(const Node& node, std::uint64_t nanos);

  NodeProfileSnapshot Snapshot() const;
  void Reset();

  std::uint32_t sample_rate() const { return sample_rate_; }

 private:
  struct Cell {
    std::atomic<std::uint64_t> nanos{0};
    std::atomic<std::uint64_t> runs{0};
    OpType type = OpType::kInput;
    std::string name;
    std::string kind;  // precomputed aggregation key
    bool registered = false;
  };

  const std::uint32_t sample_rate_;
  std::atomic<std::uint64_t> runs_total_{0};
  std::atomic<std::uint64_t> runs_sampled_{0};
  // Shared lock on the hot record path, exclusive only when RegisterGraph grows the
  // cell table (unique_ptr cells keep addresses stable across growth regardless).
  mutable std::shared_mutex mutex_;
  std::vector<std::unique_ptr<Cell>> cells_;  // indexed by node id
};

}  // namespace neocpu

#endif  // NEOCPU_SRC_OBS_NODE_PROFILER_H_
