#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/base/logging.h"
#include "src/base/string_util.h"

namespace neocpu {

namespace {

bool ValidMetricName(const std::string& name) {
  if (name.empty()) {
    return false;
  }
  auto head_ok = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
  };
  if (!head_ok(name[0])) {
    return false;
  }
  for (char c : name) {
    if (!head_ok(c) && !(c >= '0' && c <= '9')) {
      return false;
    }
  }
  return true;
}

// Renders a double without trailing noise: integers print as integers (JSON consumers
// of counters-as-gauges appreciate it), everything else with enough digits.
std::string NumberToString(double value) {
  if (std::isfinite(value) && value == std::floor(value) && std::abs(value) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(value));
  }
  return StrFormat("%.17g", value);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  NEOCPU_CHECK(!bounds_.empty()) << "histogram needs at least one bucket bound";
  NEOCPU_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be ascending";
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double value) {
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + value,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

MetricsRegistry::Metric* MetricsRegistry::FindOrCreate(const std::string& name, Kind kind,
                                                       const std::string& help) {
  NEOCPU_CHECK(ValidMetricName(name)) << "invalid metric name '" << name << "'";
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    NEOCPU_CHECK(it->second.kind == kind)
        << "metric '" << name << "' re-registered with a different kind";
    return &it->second;
  }
  Metric metric;
  metric.kind = kind;
  metric.help = help;
  return &metrics_.emplace(name, std::move(metric)).first->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name, const std::string& help) {
  Metric* metric = FindOrCreate(name, Kind::kCounter, help);
  std::lock_guard<std::mutex> lock(mutex_);
  if (metric->counter == nullptr) {
    metric->counter = std::make_unique<Counter>();
  }
  return metric->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, const std::string& help) {
  Metric* metric = FindOrCreate(name, Kind::kGauge, help);
  std::lock_guard<std::mutex> lock(mutex_);
  if (metric->gauge == nullptr) {
    metric->gauge = std::make_unique<Gauge>();
  }
  return metric->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds,
                                         const std::string& help) {
  Metric* metric = FindOrCreate(name, Kind::kHistogram, help);
  std::lock_guard<std::mutex> lock(mutex_);
  if (metric->histogram == nullptr) {
    metric->histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return metric->histogram.get();
}

std::string MetricsRegistry::Export(MetricsFormat format) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  if (format == MetricsFormat::kJson) {
    out << "{\n";
    bool first = true;
    for (const auto& [name, metric] : metrics_) {
      if (!first) {
        out << ",\n";
      }
      first = false;
      out << "  \"" << JsonEscape(name) << "\": ";
      switch (metric.kind) {
        case Kind::kCounter:
          out << metric.counter->Value();
          break;
        case Kind::kGauge:
          out << NumberToString(metric.gauge->Value());
          break;
        case Kind::kHistogram: {
          const HistogramSnapshot snap = metric.histogram->Snapshot();
          out << "{\"count\": " << snap.count << ", \"sum\": " << NumberToString(snap.sum)
              << ", \"buckets\": [";
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < snap.counts.size(); ++i) {
            cumulative += snap.counts[i];
            if (i > 0) {
              out << ", ";
            }
            out << "{\"le\": ";
            if (i < snap.bounds.size()) {
              out << NumberToString(snap.bounds[i]);
            } else {
              out << "\"+Inf\"";
            }
            out << ", \"count\": " << cumulative << "}";
          }
          out << "]}";
          break;
        }
      }
    }
    out << "\n}\n";
    return out.str();
  }

  // Prometheus text exposition format.
  for (const auto& [name, metric] : metrics_) {
    if (!metric.help.empty()) {
      out << "# HELP " << name << " " << metric.help << "\n";
    }
    switch (metric.kind) {
      case Kind::kCounter:
        out << "# TYPE " << name << " counter\n";
        out << name << " " << metric.counter->Value() << "\n";
        break;
      case Kind::kGauge:
        out << "# TYPE " << name << " gauge\n";
        out << name << " " << NumberToString(metric.gauge->Value()) << "\n";
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot snap = metric.histogram->Snapshot();
        out << "# TYPE " << name << " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < snap.counts.size(); ++i) {
          cumulative += snap.counts[i];
          out << name << "_bucket{le=\""
              << (i < snap.bounds.size() ? NumberToString(snap.bounds[i]) : "+Inf")
              << "\"} " << cumulative << "\n";
        }
        out << name << "_sum " << NumberToString(snap.sum) << "\n";
        out << name << "_count " << snap.count << "\n";
        break;
      }
    }
  }
  return out.str();
}

void MetricsRegistry::ResetValuesForTest() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, metric] : metrics_) {
    if (metric.counter != nullptr) {
      metric.counter->Reset();
    }
    if (metric.gauge != nullptr) {
      metric.gauge->Reset();
    }
    if (metric.histogram != nullptr) {
      metric.histogram->Reset();
    }
  }
}

std::string MetricsExport(MetricsFormat format) {
  return MetricsRegistry::Global().Export(format);
}

}  // namespace neocpu
