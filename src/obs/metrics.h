// Unified process-wide metrics registry (the ROADMAP's "metrics endpoint" item).
//
// One registry holds every counter, gauge and histogram the system exports: the
// dynamic batcher registers its queue depth and batch-size distribution, the tuning
// cache its hit/miss/insert/eviction traffic, the model registry its re-tune activity,
// and the arena allocator its reserved bytes. A future wire front end serves
// MetricsExport() verbatim; until then the serving bench, the demo and tools/dump_model
// print it.
//
// Design rules:
//   * Handles are stable for the process lifetime — Get* returns a pointer that never
//     moves or dies, so call sites fetch once (static local / member) and then update
//     through plain atomics. The hot-path cost of a counter bump is one relaxed
//     fetch_add.
//   * Registration is idempotent: Get* with an existing name returns the existing
//     metric (re-registering with a mismatched kind dies — that is a naming bug).
//   * Export renders the whole registry as JSON (machine-readable, stable key order)
//     or Prometheus text exposition format.
#ifndef NEOCPU_SRC_OBS_METRICS_H_
#define NEOCPU_SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace neocpu {

// Monotonically increasing event count.
class Counter {
 public:
  void Increment(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<std::uint64_t> value_{0};
};

// Point-in-time value that can move both ways (queue depth, reserved bytes).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  // CAS loop instead of atomic<double>::fetch_add: gcc only grew the latter late, and
  // gauge updates are far off any hot path.
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }
  std::atomic<double> value_{0.0};
};

struct HistogramSnapshot {
  std::vector<double> bounds;         // inclusive upper bounds; +inf bucket is implicit
  std::vector<std::uint64_t> counts;  // bounds.size() + 1 entries (last = overflow)
  std::uint64_t count = 0;
  double sum = 0.0;

  double Mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
};

// Fixed-bucket histogram (cumulative export, Prometheus-style). Observe is lock-free.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);
  HistogramSnapshot Snapshot() const;

 private:
  friend class MetricsRegistry;
  void Reset();
  const std::vector<double> bounds_;                    // ascending
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

enum class MetricsFormat { kJson, kPrometheus };

class MetricsRegistry {
 public:
  // The process-wide registry every subsystem reports into.
  static MetricsRegistry& Global();

  // Names must match the Prometheus identifier grammar [a-zA-Z_:][a-zA-Z0-9_:]*
  // (checked fatally — a bad name is a programming error). Idempotent per name; a kind
  // mismatch with a previous registration dies.
  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  // `bounds` must be ascending; ignored (the original buckets win) when the histogram
  // already exists.
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds,
                          const std::string& help = "");

  // Renders every registered metric. Keys are emitted in lexicographic name order, so
  // the output is stable across runs.
  std::string Export(MetricsFormat format) const;

  // Zeroes every metric's value (registrations and handles stay valid). Tests only —
  // the global registry outlives any one server/test.
  void ResetValuesForTest();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Metric {
    Kind kind = Kind::kCounter;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Metric* FindOrCreate(const std::string& name, Kind kind, const std::string& help);

  mutable std::mutex mutex_;
  std::map<std::string, Metric> metrics_;
};

// Export of the global registry — what the wire front end will eventually serve from
// /metrics (Prometheus) and /metrics.json.
std::string MetricsExport(MetricsFormat format = MetricsFormat::kJson);

}  // namespace neocpu

#endif  // NEOCPU_SRC_OBS_METRICS_H_
