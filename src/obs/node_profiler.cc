#include "src/obs/node_profiler.h"

#include <algorithm>
#include <mutex>
#include <map>
#include <tuple>

#include "src/base/logging.h"
#include "src/base/string_util.h"

namespace neocpu {

namespace {

// Aggregation key: op kind, with convolutions split by algorithm + dtype and dense
// layers split by kernel family + dtype — the axes the search actually decides per
// layer ("Conv2d/direct-nchwc-s8" vs "Conv2d/winograd", "dense/gemm-u8" vs the
// legacy "dense/ref" path).
std::string KindKey(const Node& node) {
  if (node.type == OpType::kDense) {
    std::string key = OpTypeName(node.type);
    key += '/';
    if (node.attrs.has_gemm) {
      key += node.attrs.gemm.IsQuantized() ? "gemm-u8" : "gemm-f32";
    } else {
      key += node.attrs.qconv.enabled ? "ref-s8" : "ref";
    }
    return key;
  }
  if (!node.IsConv()) {
    return OpTypeName(node.type);
  }
  std::string key = OpTypeName(node.type);
  key += '/';
  key += ConvAlgoName(node.attrs.schedule.algo);
  if (node.attrs.schedule.IsQuantized()) {
    key += "-s8";
  }
  return key;
}

}  // namespace

NodeProfiler::NodeProfiler(std::uint32_t sample_rate)
    : sample_rate_(sample_rate == 0 ? 1 : sample_rate) {}

void NodeProfiler::RegisterGraph(const Graph& graph) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (cells_.size() < static_cast<std::size_t>(graph.num_nodes())) {
    cells_.resize(static_cast<std::size_t>(graph.num_nodes()));
  }
  for (int id = 0; id < graph.num_nodes(); ++id) {
    const Node& node = graph.node(id);
    if (node.type == OpType::kInput || node.type == OpType::kConstant) {
      continue;  // never executed, never recorded
    }
    std::unique_ptr<Cell>& cell = cells_[static_cast<std::size_t>(id)];
    if (cell == nullptr) {
      cell = std::make_unique<Cell>();
    }
    // Re-registration of a different graph over the same ids (a re-tuned variant)
    // re-labels the cell; the timing aggregates keep accumulating, which is the
    // behavior the per-kind rollup wants (labels follow the currently served graph).
    cell->type = node.type;
    cell->name = node.name;
    cell->kind = KindKey(node);
    cell->registered = true;
  }
}

void NodeProfiler::RecordNode(const Node& node, std::uint64_t nanos) {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const std::size_t id = static_cast<std::size_t>(node.id);
  if (id >= cells_.size() || cells_[id] == nullptr) {
    return;  // node from an unregistered graph — drop rather than allocate on hot path
  }
  Cell& cell = *cells_[id];
  cell.nanos.fetch_add(nanos, std::memory_order_relaxed);
  cell.runs.fetch_add(1, std::memory_order_relaxed);
}

NodeProfileSnapshot NodeProfiler::Snapshot() const {
  NodeProfileSnapshot snap;
  snap.runs_total = runs_total_.load(std::memory_order_relaxed);
  snap.runs_sampled = runs_sampled_.load(std::memory_order_relaxed);
  std::map<std::string, OpKindProfile> by_kind;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    for (std::size_t id = 0; id < cells_.size(); ++id) {
      const std::unique_ptr<Cell>& cell = cells_[id];
      if (cell == nullptr || !cell->registered) {
        continue;
      }
      const std::uint64_t runs = cell->runs.load(std::memory_order_relaxed);
      if (runs == 0) {
        continue;
      }
      NodeProfile profile;
      profile.node_id = static_cast<int>(id);
      profile.type = cell->type;
      profile.name = cell->name;
      profile.runs = runs;
      profile.total_ms =
          static_cast<double>(cell->nanos.load(std::memory_order_relaxed)) * 1e-6;
      snap.total_ms += profile.total_ms;
      OpKindProfile& kind = by_kind[cell->kind];
      kind.kind = cell->kind;
      kind.calls += runs;
      kind.total_ms += profile.total_ms;
      snap.nodes.push_back(std::move(profile));
    }
  }
  snap.by_kind.reserve(by_kind.size());
  for (auto& [key, kind] : by_kind) {
    snap.by_kind.push_back(std::move(kind));
  }
  std::sort(snap.by_kind.begin(), snap.by_kind.end(),
            [](const OpKindProfile& a, const OpKindProfile& b) {
              return a.total_ms > b.total_ms;
            });
  return snap;
}

void NodeProfiler::Reset() {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  for (std::unique_ptr<Cell>& cell : cells_) {
    if (cell != nullptr) {
      cell->nanos.store(0, std::memory_order_relaxed);
      cell->runs.store(0, std::memory_order_relaxed);
    }
  }
  runs_total_.store(0, std::memory_order_relaxed);
  runs_sampled_.store(0, std::memory_order_relaxed);
}

std::string NodeProfileSnapshot::ToString(std::size_t top_n) const {
  if (empty()) {
    return "profile: no sampled runs\n";
  }
  std::string out = StrFormat(
      "profile: %llu/%llu runs sampled, %.3f ms/run timed\n",
      static_cast<unsigned long long>(runs_sampled),
      static_cast<unsigned long long>(runs_total), PerRunMs());
  out += "  by op kind:\n";
  for (const OpKindProfile& kind : by_kind) {
    out += StrFormat("    %-28s %8llu calls %10.3f ms  %5.1f%%\n", kind.kind.c_str(),
                     static_cast<unsigned long long>(kind.calls), kind.total_ms,
                     total_ms > 0 ? 100.0 * kind.total_ms / total_ms : 0.0);
  }
  std::vector<const NodeProfile*> hottest;
  hottest.reserve(nodes.size());
  for (const NodeProfile& node : nodes) {
    hottest.push_back(&node);
  }
  std::sort(hottest.begin(), hottest.end(), [](const NodeProfile* a, const NodeProfile* b) {
    return a->total_ms > b->total_ms;
  });
  if (top_n > 0 && hottest.size() > top_n) {
    hottest.resize(top_n);
  }
  out += StrFormat("  hottest nodes (top %zu of %zu):\n", hottest.size(), nodes.size());
  for (const NodeProfile* node : hottest) {
    out += StrFormat("    n%-4d %-32s %10.3f ms  %5.1f%%  (%.1f us/run)\n",
                     node->node_id, node->name.c_str(), node->total_ms,
                     total_ms > 0 ? 100.0 * node->total_ms / total_ms : 0.0,
                     node->mean_us());
  }
  return out;
}

NodeProfileSnapshot MergeProfileSnapshots(const std::vector<NodeProfileSnapshot>& parts) {
  NodeProfileSnapshot merged;
  std::map<std::tuple<int, OpType, std::string>, NodeProfile> nodes;
  std::map<std::string, OpKindProfile> kinds;
  for (const NodeProfileSnapshot& part : parts) {
    merged.runs_total += part.runs_total;
    merged.runs_sampled += part.runs_sampled;
    merged.total_ms += part.total_ms;
    for (const NodeProfile& node : part.nodes) {
      NodeProfile& into = nodes[{node.node_id, node.type, node.name}];
      into.node_id = node.node_id;
      into.type = node.type;
      into.name = node.name;
      into.runs += node.runs;
      into.total_ms += node.total_ms;
    }
    for (const OpKindProfile& kind : part.by_kind) {
      OpKindProfile& into = kinds[kind.kind];
      into.kind = kind.kind;
      into.calls += kind.calls;
      into.total_ms += kind.total_ms;
    }
  }
  merged.nodes.reserve(nodes.size());
  for (auto& [key, node] : nodes) {
    merged.nodes.push_back(std::move(node));
  }
  merged.by_kind.reserve(kinds.size());
  for (auto& [key, kind] : kinds) {
    merged.by_kind.push_back(std::move(kind));
  }
  std::sort(merged.by_kind.begin(), merged.by_kind.end(),
            [](const OpKindProfile& a, const OpKindProfile& b) {
              return a.total_ms > b.total_ms;
            });
  return merged;
}

}  // namespace neocpu
