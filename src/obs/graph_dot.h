// Annotated Graphviz DOT export of a compiled executable graph.
//
// The chainer computational_graph idiom (SNIPPETS.md) grown to carry everything this
// compiler decides per node: op kind, convolution algorithm + schedule blocking +
// execution dtype, logical dims + physical layout, the memory plan's arena placement
// (offset/bytes, alias, in-place), and — when a NodeProfileSnapshot is supplied — the
// node's measured time share rendered as heat-map coloring. `dot -Tsvg model.dot` then
// shows at a glance which layers run Winograd vs direct, where the int8 region starts
// and ends, how the arena is carved up, and where the milliseconds actually go.
//
// The first line of the output is a machine-readable summary comment
// (`/* neocpu-dot nodes=N edges=M */`) so CI can validate structural integrity (brace
// balance, one `nI [` line per exported node) without a graphviz install.
#ifndef NEOCPU_SRC_OBS_GRAPH_DOT_H_
#define NEOCPU_SRC_OBS_GRAPH_DOT_H_

#include <string>

#include "src/core/compiler.h"
#include "src/core/memory_plan.h"
#include "src/graph/graph.h"
#include "src/obs/node_profiler.h"

namespace neocpu {

struct GraphDotOptions {
  // Weight/BN constants triple the node count and say nothing about execution;
  // excluded by default (their consumers still list shapes).
  bool include_constants = false;
  // Arena annotations (offset/bytes/alias) come from here when non-null.
  const ExecutionPlan* plan = nullptr;
  // Per-node time + heat coloring come from here when non-null and non-empty.
  const NodeProfileSnapshot* profile = nullptr;
  std::string graph_name = "neocpu";
};

std::string GraphToDot(const Graph& graph, const GraphDotOptions& options = {});

// Convenience for a compiled model: executable graph + its memory plan, with optional
// profile overlay (pass the model's profiler snapshot, or null).
std::string CompiledModelToDot(const CompiledModel& model,
                               const NodeProfileSnapshot* profile = nullptr);

}  // namespace neocpu

#endif  // NEOCPU_SRC_OBS_GRAPH_DOT_H_
