#include "src/tuning/tuning_cache.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <utility>

#include "src/base/logging.h"
#include "src/obs/metrics.h"

namespace neocpu {

namespace {
constexpr char kFileTag[] = "neocpu-tuning-cache";

std::atomic<TuningCache::SaveKillPoint> g_save_kill_point{
    TuningCache::SaveKillPoint::kNone};

// Process-global cache traffic, aggregated across every TuningCache instance (the
// per-instance Stats() counters remain the per-cache view). Lazy function-local
// statics: the registry lookup happens once, the hot path is one relaxed fetch_add.
Counter* HitsMetric() {
  static Counter* counter = MetricsRegistry::Global().GetCounter(
      "neocpu_tuning_cache_hits_total", "Tuning-cache lookups served from the cache");
  return counter;
}

Counter* MissesMetric() {
  static Counter* counter = MetricsRegistry::Global().GetCounter(
      "neocpu_tuning_cache_misses_total", "Tuning-cache lookups that required a search");
  return counter;
}

Counter* InsertsMetric() {
  static Counter* counter = MetricsRegistry::Global().GetCounter(
      "neocpu_tuning_cache_inserts_total", "Tuning-cache entry inserts/replacements");
  return counter;
}

Counter* EvictionsMetric() {
  static Counter* counter = MetricsRegistry::Global().GetCounter(
      "neocpu_tuning_cache_evictions_total", "Tuning-cache LRU evictions");
  return counter;
}

}  // namespace

void TuningCache::TouchLocked(const Entry& entry) const {
  lru_.splice(lru_.begin(), lru_, entry.recency);
}

void TuningCache::EvictOverCapacityLocked() {
  while (capacity_ > 0 && entries_.size() > capacity_) {
    NEOCPU_CHECK(!lru_.empty());
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
    EvictionsMetric()->Increment();
  }
}

std::shared_ptr<const LocalSearchResult> TuningCache::Find(const WorkloadKey& key) const {
  const std::string text = key.ToString();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(text);
  if (it == entries_.end()) {
    ++misses_;
    MissesMetric()->Increment();
    return nullptr;
  }
  ++hits_;
  HitsMetric()->Increment();
  TouchLocked(it->second);
  return it->second.result;
}

void TuningCache::Insert(const WorkloadKey& key, LocalSearchResult result) {
  Insert(key, std::make_shared<const LocalSearchResult>(std::move(result)));
}

void TuningCache::Insert(const WorkloadKey& key,
                         std::shared_ptr<const LocalSearchResult> result) {
  NEOCPU_CHECK(result != nullptr &&
               (!result->ranked.empty() || !result->dense_ranked.empty()))
      << "inserting empty result for " << key.ToString();
  std::string text = key.ToString();
  std::lock_guard<std::mutex> lock(mutex_);
  InsertLocked(std::move(text), std::move(result));
}

void TuningCache::InsertLocked(std::string text,
                               std::shared_ptr<const LocalSearchResult> result) {
  auto it = entries_.find(text);
  if (it != entries_.end()) {
    it->second.result = std::move(result);
    TouchLocked(it->second);
  } else {
    lru_.push_front(text);
    entries_.emplace(std::move(text), Entry{std::move(result), lru_.begin()});
  }
  ++inserts_;
  InsertsMetric()->Increment();
  EvictOverCapacityLocked();
}

void TuningCache::SetCapacity(std::size_t max_entries) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = max_entries;
  EvictOverCapacityLocked();
}

std::size_t TuningCache::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

void TuningCache::MergeFrom(const TuningCache& other) {
  if (&other == this) {
    return;
  }
  // Snapshot under the source lock, insert under ours: no lock is ever held twice.
  std::vector<std::pair<std::string, std::shared_ptr<const LocalSearchResult>>> snapshot;
  {
    std::lock_guard<std::mutex> lock(other.mutex_);
    snapshot.reserve(other.entries_.size());
    for (const auto& [text, entry] : other.entries_) {
      snapshot.emplace_back(text, entry.result);
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [text, result] : snapshot) {
    InsertLocked(std::move(text), std::move(result));
  }
}

std::size_t TuningCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

TuningCacheStats TuningCache::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  TuningCacheStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.inserts = inserts_;
  stats.evictions = evictions_;
  stats.entries = entries_.size();
  stats.capacity = capacity_;
  return stats;
}

std::vector<WorkloadKey> TuningCache::Keys() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<WorkloadKey> keys;
  keys.reserve(entries_.size());
  for (const auto& [text, entry] : entries_) {
    WorkloadKey key;
    NEOCPU_CHECK(WorkloadKey::Parse(text, &key)) << "unparseable cache key " << text;
    keys.push_back(std::move(key));
  }
  return keys;
}

void TuningCache::Serialize(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  out << kFileTag << " " << kFormatVersion << " " << entries_.size() << "\n";
  out << std::setprecision(17);
  for (const auto& [text, entry] : entries_) {
    if (!entry.result->dense_ranked.empty()) {
      // Dense (tuned GEMM) entry: v5 record tag, one blocking tuple per line.
      out << "dense " << text << " " << entry.result->dense_ranked.size() << "\n";
      for (const DenseScheduleCost& sc : entry.result->dense_ranked) {
        out << sc.schedule.mc << " " << sc.schedule.nc << " " << sc.schedule.kc << " "
            << sc.schedule.mr << " " << sc.schedule.nr << " "
            << static_cast<unsigned>(sc.schedule.dtype) << " " << sc.ms << "\n";
      }
      continue;
    }
    out << "workload " << text << " " << entry.result->ranked.size() << "\n";
    for (const ScheduleCost& sc : entry.result->ranked) {
      out << sc.schedule.ic_bn << " " << sc.schedule.oc_bn << " " << sc.schedule.reg_n
          << " " << (sc.schedule.unroll_ker ? 1 : 0) << " "
          << static_cast<unsigned>(sc.schedule.algo) << " "
          << static_cast<unsigned>(sc.schedule.dtype) << " " << sc.ms << "\n";
    }
  }
}

bool TuningCache::ParseStream(std::istream& in, ParsedMap* entries) {
  std::string tag;
  std::uint32_t version = 0;
  std::size_t entry_count = 0;
  in >> tag >> version >> entry_count;
  if (!in || tag != kFileTag) {
    return false;
  }
  if (version < kMinFormatVersion || version > kFormatVersion) {
    LOG(ERROR) << "tuning cache version " << version << " unsupported (expected "
               << kMinFormatVersion << ".." << kFormatVersion << ")";
    return false;
  }
  for (std::size_t e = 0; e < entry_count; ++e) {
    std::string record_tag;
    std::string key_text;
    std::size_t count = 0;
    in >> record_tag >> key_text >> count;
    const bool dense_record = version >= 5 && record_tag == "dense";
    if (!in || (record_tag != "workload" && !dense_record) || count == 0) {
      return false;
    }
    WorkloadKey key;
    if (!WorkloadKey::Parse(key_text, &key)) {
      return false;
    }
    if (dense_record != key.is_dense) {
      return false;  // record tag and key spelling must agree
    }
    if (dense_record) {
      LocalSearchResult result;
      result.dense_ranked.resize(count);
      for (std::size_t i = 0; i < count; ++i) {
        unsigned dtype = static_cast<unsigned>(DType::kF32);
        DenseScheduleCost& sc = result.dense_ranked[i];
        in >> sc.schedule.mc >> sc.schedule.nc >> sc.schedule.kc >> sc.schedule.mr >>
            sc.schedule.nr >> dtype >> sc.ms;
        if (dtype > static_cast<unsigned>(DType::kS32)) {
          return false;
        }
        sc.schedule.dtype = static_cast<DType>(dtype);
      }
      if (!in) {
        return false;
      }
      (*entries)[key_text] =
          std::make_shared<const LocalSearchResult>(std::move(result));
      continue;
    }
    LocalSearchResult result;
    result.ranked.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      int unroll = 0;
      unsigned algo = static_cast<unsigned>(ConvAlgo::kDirectNCHWc);
      unsigned dtype = static_cast<unsigned>(DType::kF32);
      ScheduleCost& sc = result.ranked[i];
      in >> sc.schedule.ic_bn >> sc.schedule.oc_bn >> sc.schedule.reg_n >> unroll;
      if (version >= 3) {  // v2 lines predate the algorithm tag: direct NCHWc
        in >> algo;
        if (algo > static_cast<unsigned>(ConvAlgo::kReference)) {
          return false;
        }
      }
      if (version >= 4) {  // v3 lines predate the dtype column: fp32
        in >> dtype;
        if (dtype > static_cast<unsigned>(DType::kS32)) {
          return false;
        }
      }
      in >> sc.ms;
      sc.schedule.unroll_ker = unroll != 0;
      sc.schedule.algo = static_cast<ConvAlgo>(algo);
      sc.schedule.dtype = static_cast<DType>(dtype);
    }
    if (!in) {
      return false;
    }
    (*entries)[key_text] = std::make_shared<const LocalSearchResult>(std::move(result));
  }
  return true;
}

bool TuningCache::Deserialize(std::istream& in) {
  ParsedMap entries;
  if (!ParseStream(in, &entries)) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [text, result] : entries) {
    InsertLocked(text, std::move(result));
  }
  return true;
}

void TuningCache::SetSaveKillPointForTest(SaveKillPoint point) {
  g_save_kill_point.store(point, std::memory_order_relaxed);
}

bool TuningCache::SaveToFile(const std::string& path) const {
  // Crash-consistent write: serialize to <path>.tmp, fsync, then atomically rename(2)
  // over the destination. A crash at any point leaves either the complete old file or
  // the complete new file — never a truncated cache that a warm start would reject
  // (or worse, a prefix of that would half-load).
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return false;
    }
    Serialize(out);
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (g_save_kill_point.load(std::memory_order_relaxed) ==
      SaveKillPoint::kAfterTempWrite) {
    return false;  // simulated crash: temp written, destination untouched
  }
  // ofstream flush only reaches the page cache; fsync makes the temp file's contents
  // durable before the rename can commit the name to them.
  const int fd = ::open(tmp.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
  if (g_save_kill_point.load(std::memory_order_relaxed) == SaveKillPoint::kBeforeRename) {
    return false;  // simulated crash: durable temp, destination untouched
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool TuningCache::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  return Deserialize(in);
}

}  // namespace neocpu
