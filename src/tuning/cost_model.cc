#include "src/tuning/cost_model.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <mutex>

#include "src/base/align.h"
#include "src/base/rng.h"
#include "src/base/timer.h"
#include "src/kernels/conv_nchwc.h"
#include "src/tensor/tensor.h"

namespace neocpu {

const char* CostModeName(CostMode mode) {
  return mode == CostMode::kAnalytic ? "analytic" : "measured";
}

double AnalyticConvMs(const Conv2dParams& p, const ConvSchedule& s, const Target& t) {
  const double macs = p.Macs();
  const double lanes = static_cast<double>(t.vector_lanes);
  const double peak_macs_per_ns = t.freq_ghz * lanes * static_cast<double>(t.fma_per_cycle);
  double ms = macs / (peak_macs_per_ns * 1e6);

  // Vector-lane utilization: an oc block that is not a lane multiple wastes lanes.
  const double oc_vectors = std::ceil(static_cast<double>(s.oc_bn) / lanes);
  ms *= (oc_vectors * lanes) / static_cast<double>(s.oc_bn);

  // Only blocks with template instantiations hit the register-blocked fast path.
  const bool fast_ocb = s.oc_bn == 4 || s.oc_bn == 8 || s.oc_bn == 16 || s.oc_bn == 32;
  const bool fast_regn =
      s.reg_n == 2 || s.reg_n == 4 || s.reg_n == 8 || s.reg_n == 16 || s.reg_n == 32;
  if (!fast_ocb || !fast_regn) {
    ms *= 2.5;
  }

  // Register pressure: the register block needs reg_n * ceil(oc_bn/lanes) accumulators
  // plus a kernel vector and a broadcast; spilling is progressive, not a cliff.
  const double regs_used = static_cast<double>(s.reg_n) * oc_vectors + 2.0;
  const double regs_avail = static_cast<double>(t.num_vector_registers);
  if (regs_used > regs_avail) {
    ms *= 1.0 + 0.35 * (regs_used - regs_avail) / regs_avail;
  }

  // Weight-vector reuse: one kernel vector load is amortized over reg_n FMAs.
  ms *= 1.0 + 1.0 / static_cast<double>(s.reg_n);
  // Inner ici loop overhead for tiny input blocks.
  ms *= 1.0 + 0.8 / static_cast<double>(s.ic_bn);

  // Out-width tail: positions not covered by full interior reg_n blocks run the slow
  // guarded kernel (~3x).
  const std::int64_t ow = p.OutW();
  const std::int64_t ow_lo = p.pad_w == 0 ? 0 : (p.pad_w + p.stride_w - 1) / p.stride_w;
  const std::int64_t ow_hi =
      std::min<std::int64_t>(ow, (p.in_w + p.pad_w - p.kernel_w) / p.stride_w + 1);
  const std::int64_t interior = std::max<std::int64_t>(ow_hi - ow_lo, 0) / s.reg_n * s.reg_n;
  const double tail_frac =
      1.0 - static_cast<double>(interior) / static_cast<double>(std::max<std::int64_t>(ow, 1));
  ms *= 1.0 + 2.0 * tail_frac;

  // Cache footprint: weights streamed per output row block; if the whole reduction's
  // weights for one oc block overflow L2, they re-stream from L3/DRAM.
  const double weight_block_bytes =
      static_cast<double>(p.in_c * p.kernel_h * p.kernel_w * s.oc_bn) * 4.0;
  if (weight_block_bytes > static_cast<double>(t.l2_bytes)) {
    ms *= 1.15;
  }
  // Input row segment reused across kernel taps should stay in L1.
  const double input_rows_bytes =
      static_cast<double>((s.reg_n * p.stride_w + p.kernel_w) * p.kernel_h * s.ic_bn) * 4.0;
  if (input_rows_bytes > static_cast<double>(t.l1d_bytes)) {
    ms *= 1.1;
  }

  // unroll_ker: helps small kernel-entry counts, hurts instruction cache on big ones.
  const std::int64_t entries = p.kernel_h * p.kernel_w;
  if (s.unroll_ker) {
    ms *= entries <= 9 ? 0.97 : (entries > 25 ? 1.04 : 1.0);
  } else {
    ms *= entries <= 9 ? 1.02 : 1.0;
  }
  return ms;
}

double MeasureConvMs(const Conv2dParams& p, const ConvSchedule& s, ThreadEngine* engine,
                     int runs) {
  Rng rng(42);
  Tensor input = Tensor::Random({p.batch, p.in_c / s.ic_bn, p.in_h, p.in_w, s.ic_bn}, rng,
                                -1.0f, 1.0f, Layout::NCHWc(s.ic_bn));
  Tensor weight = Tensor::Random(
      {p.out_c / s.oc_bn, p.in_c / s.ic_bn, p.kernel_h, p.kernel_w, s.ic_bn, s.oc_bn}, rng,
      -0.5f, 0.5f, Layout::OIHWio(s.ic_bn, s.oc_bn));
  Tensor out = Tensor::Empty({p.batch, p.out_c / s.oc_bn, p.OutH(), p.OutW(), s.oc_bn},
                             Layout::NCHWc(s.oc_bn));
  ConvEpilogue epilogue;  // bare conv: the schedule choice is epilogue-independent
  double best = 1e30;
  for (int i = 0; i < runs + 1; ++i) {
    Timer timer;
    ConvNCHWc(p, s, input, weight, nullptr, nullptr, epilogue, &out, engine);
    const double ms = timer.Millis();
    if (i > 0 || runs == 1) {  // first run warms caches unless only one is requested
      best = std::min(best, ms);
    }
  }
  return best;
}

double CalibratedCopyBytesPerMs() {
  static std::once_flag flag;
  static double bytes_per_ms = 0.0;
  std::call_once(flag, [] {
    const std::size_t bytes = 32ull << 20;
    AlignedPtr<char> src = MakeAligned<char>(bytes);
    AlignedPtr<char> dst = MakeAligned<char>(bytes);
    std::memset(src.get(), 1, bytes);
    std::memset(dst.get(), 2, bytes);  // fault in
    double best_ms = 1e30;
    for (int i = 0; i < 3; ++i) {
      Timer t;
      std::memcpy(dst.get(), src.get(), bytes);
      best_ms = std::min(best_ms, t.Millis());
    }
    bytes_per_ms = static_cast<double>(2 * bytes) / best_ms;  // read + write traffic
  });
  return bytes_per_ms;
}

double TransformMs(std::int64_t tensor_bytes) {
  // A relayout reads and writes the tensor once, in a cache-unfriendly gather order:
  // charge 2x the streaming-copy cost.
  return 2.0 * static_cast<double>(2 * tensor_bytes) / CalibratedCopyBytesPerMs();
}

}  // namespace neocpu
