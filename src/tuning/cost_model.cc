#include "src/tuning/cost_model.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <mutex>
#include <vector>

#include "src/base/align.h"
#include "src/base/logging.h"
#include "src/base/rng.h"
#include "src/base/timer.h"
#include "src/kernels/conv_im2col.h"
#include "src/kernels/conv_nchwc.h"
#include "src/kernels/conv_nchwc_int8.h"
#include "src/kernels/conv_ref.h"
#include "src/kernels/conv_winograd.h"
#include "src/kernels/gemm_packed.h"
#include "src/kernels/gemm_packed_int8.h"
#include "src/tensor/tensor.h"

namespace neocpu {

const char* CostModeName(CostMode mode) {
  return mode == CostMode::kAnalytic ? "analytic" : "measured";
}

namespace {

// The §3.3.1 direct NCHW[x]c template (Algorithm 1): the original analytic model.
double AnalyticDirectNchwcMs(const Conv2dParams& p, const ConvSchedule& s, const Target& t) {
  const double macs = p.Macs();
  const double lanes = static_cast<double>(t.vector_lanes);
  const double peak_macs_per_ns = t.freq_ghz * lanes * static_cast<double>(t.fma_per_cycle);
  double ms = macs / (peak_macs_per_ns * 1e6);

  // Vector-lane utilization: an oc block that is not a lane multiple wastes lanes.
  const double oc_vectors = std::ceil(static_cast<double>(s.oc_bn) / lanes);
  ms *= (oc_vectors * lanes) / static_cast<double>(s.oc_bn);

  // Only blocks with template instantiations hit the register-blocked fast path.
  const bool fast_ocb = s.oc_bn == 4 || s.oc_bn == 8 || s.oc_bn == 16 || s.oc_bn == 32;
  const bool fast_regn =
      s.reg_n == 2 || s.reg_n == 4 || s.reg_n == 8 || s.reg_n == 16 || s.reg_n == 32;
  if (!fast_ocb || !fast_regn) {
    ms *= 2.5;
  }

  // Register pressure: the register block needs reg_n * ceil(oc_bn/lanes) accumulators
  // plus a kernel vector and a broadcast; spilling is progressive, not a cliff.
  const double regs_used = static_cast<double>(s.reg_n) * oc_vectors + 2.0;
  const double regs_avail = static_cast<double>(t.num_vector_registers);
  if (regs_used > regs_avail) {
    ms *= 1.0 + 0.35 * (regs_used - regs_avail) / regs_avail;
  }

  // Weight-vector reuse: one kernel vector load is amortized over reg_n FMAs.
  ms *= 1.0 + 1.0 / static_cast<double>(s.reg_n);
  // Inner ici loop overhead for tiny input blocks.
  ms *= 1.0 + 0.8 / static_cast<double>(s.ic_bn);

  // Out-width tail: positions not covered by full interior reg_n blocks run the slow
  // guarded kernel (~3x).
  const std::int64_t ow = p.OutW();
  const std::int64_t ow_lo = p.pad_w == 0 ? 0 : (p.pad_w + p.stride_w - 1) / p.stride_w;
  const std::int64_t ow_hi =
      std::min<std::int64_t>(ow, (p.in_w + p.pad_w - p.kernel_w) / p.stride_w + 1);
  const std::int64_t interior = std::max<std::int64_t>(ow_hi - ow_lo, 0) / s.reg_n * s.reg_n;
  const double tail_frac =
      1.0 - static_cast<double>(interior) / static_cast<double>(std::max<std::int64_t>(ow, 1));
  ms *= 1.0 + 2.0 * tail_frac;

  // Cache footprint: weights streamed per output row block; if the whole reduction's
  // weights for one oc block overflow L2, they re-stream from L3/DRAM.
  const double weight_block_bytes =
      static_cast<double>(p.in_c * p.kernel_h * p.kernel_w * s.oc_bn) * 4.0;
  if (weight_block_bytes > static_cast<double>(t.l2_bytes)) {
    ms *= 1.15;
  }
  // Input row segment reused across kernel taps should stay in L1.
  const double input_rows_bytes =
      static_cast<double>((s.reg_n * p.stride_w + p.kernel_w) * p.kernel_h * s.ic_bn) * 4.0;
  if (input_rows_bytes > static_cast<double>(t.l1d_bytes)) {
    ms *= 1.1;
  }

  // unroll_ker: helps small kernel-entry counts, hurts instruction cache on big ones.
  const std::int64_t entries = p.kernel_h * p.kernel_w;
  if (s.unroll_ker) {
    ms *= entries <= 9 ? 0.97 : (entries > 25 ? 1.04 : 1.0);
  } else {
    ms *= entries <= 9 ? 1.02 : 1.0;
  }
  return ms;
}

// im2col + fixed GEMM: the matrix multiply runs at a library-typical fraction of peak,
// and the column-buffer materialization pays one write + one re-read of the unfolded
// input at the host's streaming bandwidth (the traffic the direct template avoids).
double AnalyticIm2colMs(const Conv2dParams& p, const Target& t) {
  const double peak_macs_per_ms = t.freq_ghz * static_cast<double>(t.vector_lanes) *
                                  static_cast<double>(t.fma_per_cycle) * 1e6;
  double ms = p.Macs() / (peak_macs_per_ms * 0.55);
  const double col_bytes = static_cast<double>(p.batch) *
                           static_cast<double>(p.in_c * p.kernel_h * p.kernel_w) *
                           static_cast<double>(p.OutH() * p.OutW()) * 4.0;
  ms += 2.0 * col_bytes / CalibratedCopyBytesPerMs();
  return ms;
}

// Winograd F(2x2, 3x3), matching the shape of src/kernels/conv_winograd.cc:
//   * the M-stage (16 OCxIC GEMVs per tile) carries 4/9 of the direct MAC count but
//     runs 8-wide and load-bound rather than register-blocked — model it at a GEMV
//     efficiency on min(8, lanes) lanes, with a short-row startup penalty;
//   * the transformed weights U (16*OC*IC floats) are re-streamed every tile: falling
//     out of L2 costs a little, falling out of L3 costs DRAM bandwidth per tile;
//   * input/output tile transforms are scalar (~64 flops per tile-channel).
// The terms reproduce the flip the paper's follow-ups measure: Winograd wins on
// large-channel mid-spatial 3x3 layers, loses to the blocked template on small channels
// (transform-dominated) and on huge channel counts (U falls out of cache).
double AnalyticWinogradMs(const Conv2dParams& p, const Target& t) {
  const double tiles = static_cast<double>(p.batch) *
                       static_cast<double>((p.OutH() + 1) / 2) *
                       static_cast<double>((p.OutW() + 1) / 2);
  const double ic = static_cast<double>(p.in_c);
  const double oc = static_cast<double>(p.out_c);

  const double gemv_lanes = std::min(8.0, static_cast<double>(t.vector_lanes));
  const double gemv_peak_per_ms =
      t.freq_ghz * gemv_lanes * static_cast<double>(t.fma_per_cycle) * 1e6;
  double ms = tiles * 16.0 * oc * ic / (gemv_peak_per_ms * 0.65);
  ms *= (ic + 8.0) / ic;  // per-row startup: rows are IC long

  const double u_bytes = 16.0 * oc * ic * 4.0;
  if (u_bytes > static_cast<double>(t.l3_bytes)) {
    ms *= 4.0;  // U re-streams from DRAM for every tile
  } else if (u_bytes > static_cast<double>(t.l2_bytes)) {
    ms *= 1.3;
  }

  const double scalar_macs_per_ms =
      t.freq_ghz * static_cast<double>(t.fma_per_cycle) * 1e6;
  ms += tiles * 64.0 * (ic + oc) / scalar_macs_per_ms;
  return ms;
}

// Naive scalar loop nest: no register blocking, no reliable vectorization. Present so a
// forced-reference compile can still be costed; never competitive.
double AnalyticReferenceMs(const Conv2dParams& p, const Target& t) {
  const double scalar_macs_per_ms =
      t.freq_ghz * static_cast<double>(t.fma_per_cycle) * 1e6;
  return 2.0 * p.Macs() / scalar_macs_per_ms;
}

// The s8xs8->s32 NCHWc template (conv_nchwc_int8). The s16 pairwise multiply path
// sustains ~2x the fp32 FMA MAC rate *when the oc block fills a whole s8 vector*
// (4x the fp32 lanes); narrower blocks waste lanes in every vpmullw, so efficiency
// scales with the filled fraction — the dominant term bench/conv_micro's s8 sweep
// measures (oc_bn=64 ~2.3x fp32, 32 ~1.0x, 16 ~0.55x on an AVX-512 host). Secondary
// terms mirror the fp32 model where the loop structure is shared.
double AnalyticDirectNchwcS8Ms(const Conv2dParams& p, const ConvSchedule& s,
                               const Target& t) {
  const double macs = p.Macs();
  const double lanes_f32 = static_cast<double>(t.vector_lanes);
  const double s8_block = static_cast<double>(t.PreferredBlockS8());
  const double peak_macs_per_ns =
      2.0 * t.freq_ghz * lanes_f32 * static_cast<double>(t.fma_per_cycle);
  double ms = macs / (peak_macs_per_ns * 1e6);

  // Vector-fill efficiency: the s16 multiply path only pays off on wide oc blocks.
  const double fill = std::min(1.0, static_cast<double>(s.oc_bn) / s8_block);
  ms /= std::max(fill, 0.05);

  // Activation dtype. u8 on a VNNI target runs vpdpbusd — one instruction per
  // 4-channel group where the s16 pairwise path needs a multiply + two widening adds,
  // roughly doubling the sustained MAC rate. Without VNNI the portable u8 tiers
  // accumulate each quad straight into s32 (the s16-overflow guard), which is SLOWER
  // than s8's pairwise trick — the model must steer the search back to s8 there.
  if (s.dtype == DType::kU8) {
    ms *= t.vnni_dot ? 0.5 : 1.4;
  }

  // Only blocks with template instantiations hit the register-blocked fast path.
  const bool fast_ocb = s.oc_bn == 4 || s.oc_bn == 8 || s.oc_bn == 16 || s.oc_bn == 32 ||
                        s.oc_bn == 64;
  const bool fast_regn =
      s.reg_n == 2 || s.reg_n == 4 || s.reg_n == 8 || s.reg_n == 16 || s.reg_n == 32;
  if (!fast_ocb || !fast_regn) {
    ms *= 2.5;
  }

  // Accumulator pressure: reg_n x (oc_bn / s8 lanes-per-s32-vector) s32 registers.
  const double oc_vectors = std::ceil(static_cast<double>(s.oc_bn) / lanes_f32);
  const double regs_used = static_cast<double>(s.reg_n) * oc_vectors + 2.0;
  const double regs_avail = static_cast<double>(t.num_vector_registers);
  if (regs_used > regs_avail) {
    ms *= 1.0 + 0.25 * (regs_used - regs_avail) / regs_avail;
  }

  // Weight-vector reuse across reg_n, ici-pair loop overhead for tiny input blocks.
  ms *= 1.0 + 1.0 / static_cast<double>(std::max<std::int64_t>(s.reg_n, 1));
  ms *= 1.0 + 1.6 / static_cast<double>(std::max<std::int64_t>(s.ic_bn, 1));

  // Out-width tail fraction (guarded edge kernel, ~3x).
  const std::int64_t ow = p.OutW();
  const std::int64_t ow_lo = p.pad_w == 0 ? 0 : (p.pad_w + p.stride_w - 1) / p.stride_w;
  const std::int64_t ow_hi =
      std::min<std::int64_t>(ow, (p.in_w + p.pad_w - p.kernel_w) / p.stride_w + 1);
  const std::int64_t interior =
      std::max<std::int64_t>(ow_hi - ow_lo, 0) / s.reg_n * s.reg_n;
  const double tail_frac =
      1.0 - static_cast<double>(interior) / static_cast<double>(std::max<std::int64_t>(ow, 1));
  ms *= 1.0 + 2.0 * tail_frac;

  // Quantization epilogue: one scale-and-store pass over the output.
  const double out_elems = static_cast<double>(p.batch * p.out_c) *
                           static_cast<double>(p.OutH() * p.OutW());
  const double scalar_per_ms = t.freq_ghz * 1e6;
  ms += out_elems / (scalar_per_ms * 4.0);

  // Cache: s8 weights are 4x smaller than fp32, so the L2 overflow penalty arms later.
  const double weight_block_bytes =
      static_cast<double>(p.in_c * p.kernel_h * p.kernel_w * s.oc_bn) * 1.0;
  if (weight_block_bytes > static_cast<double>(t.l2_bytes)) {
    ms *= 1.15;
  }
  return ms;
}

}  // namespace

double AnalyticConvMs(const Conv2dParams& p, const ConvSchedule& s, const Target& t) {
  if (s.IsQuantized()) {
    NEOCPU_CHECK(s.IsDirect()) << "s8 schedules are direct-NCHWc only";
    return AnalyticDirectNchwcS8Ms(p, s, t);
  }
  switch (s.algo) {
    case ConvAlgo::kDirectNCHWc:
      return AnalyticDirectNchwcMs(p, s, t);
    case ConvAlgo::kIm2col:
      return AnalyticIm2colMs(p, t);
    case ConvAlgo::kWinograd:
      return AnalyticWinogradMs(p, t);
    case ConvAlgo::kReference:
      return AnalyticReferenceMs(p, t);
  }
  LOG(FATAL) << "unreachable";
  return 0.0;
}

namespace {

double MeasureDirectNchwcMs(const Conv2dParams& p, const ConvSchedule& s,
                            ThreadEngine* engine, int runs) {
  Rng rng(42);
  Tensor input = Tensor::Random({p.batch, p.in_c / s.ic_bn, p.in_h, p.in_w, s.ic_bn}, rng,
                                -1.0f, 1.0f, Layout::NCHWc(s.ic_bn));
  Tensor weight = Tensor::Random(
      {p.out_c / s.oc_bn, p.in_c / s.ic_bn, p.kernel_h, p.kernel_w, s.ic_bn, s.oc_bn}, rng,
      -0.5f, 0.5f, Layout::OIHWio(s.ic_bn, s.oc_bn));
  Tensor out = Tensor::Empty({p.batch, p.out_c / s.oc_bn, p.OutH(), p.OutW(), s.oc_bn},
                             Layout::NCHWc(s.oc_bn));
  ConvEpilogue epilogue;  // bare conv: the schedule choice is epilogue-independent
  double best = 1e30;
  for (int i = 0; i < runs + 1; ++i) {
    Timer timer;
    ConvNCHWc(p, s, input, weight, nullptr, nullptr, epilogue, &out, engine);
    const double ms = timer.Millis();
    if (i > 0 || runs == 1) {  // first run warms caches unless only one is requested
      best = std::min(best, ms);
    }
  }
  return best;
}

// Times one of the NCHW-layout algorithms on deterministic synthetic tensors.
double MeasureNchwAlgoMs(const Conv2dParams& p, ConvAlgo algo, ThreadEngine* engine,
                         int runs) {
  Rng rng(42);
  Tensor input = Tensor::Random({p.batch, p.in_c, p.in_h, p.in_w}, rng, -1.0f, 1.0f,
                                Layout::NCHW());
  Tensor weight = Tensor::Random({p.out_c, p.in_c, p.kernel_h, p.kernel_w}, rng, -0.5f,
                                 0.5f, Layout::OIHW());
  Tensor out = Tensor::Empty({p.batch, p.out_c, p.OutH(), p.OutW()}, Layout::NCHW());
  Tensor u;  // winograd-transformed weights, computed outside the timed region
  if (algo == ConvAlgo::kWinograd) {
    u = WinogradTransformWeights(weight);
  }
  ConvEpilogue epilogue;  // bare conv: the schedule choice is epilogue-independent
  double best = 1e30;
  for (int i = 0; i < runs + 1; ++i) {
    Timer timer;
    switch (algo) {
      case ConvAlgo::kIm2col:
        ConvIm2col(p, input, weight, nullptr, nullptr, epilogue, &out, engine);
        break;
      case ConvAlgo::kWinograd:
        ConvWinograd(p, input, u, nullptr, epilogue, &out, engine);
        break;
      case ConvAlgo::kReference:
        ConvRefNCHW(p, input, weight, nullptr, nullptr, epilogue, &out, engine);
        break;
      case ConvAlgo::kDirectNCHWc:
        LOG(FATAL) << "blocked template is measured by MeasureDirectNchwcMs";
    }
    const double ms = timer.Millis();
    if (i > 0 || runs == 1) {
      best = std::min(best, ms);
    }
  }
  return best;
}

}  // namespace

namespace {

// Times the quantized direct template on deterministic synthetic tensors. s.dtype
// picks the activation path: s8 symmetric, or u8 with a zero point (the weight bytes
// stand in for the VNNI-packed constant — packing permutes bytes, not the workload).
double MeasureDirectNchwcS8Ms(const Conv2dParams& p, const ConvSchedule& s,
                              ThreadEngine* engine, int runs) {
  const bool u8 = s.dtype == DType::kU8;
  Tensor input = Tensor::Empty({p.batch, p.in_c / s.ic_bn, p.in_h, p.in_w, s.ic_bn},
                               Layout::NCHWc(s.ic_bn), u8 ? DType::kU8 : DType::kS8);
  Tensor weight = Tensor::Empty(
      {p.out_c / s.oc_bn, p.in_c / s.ic_bn, p.kernel_h, p.kernel_w, s.ic_bn, s.oc_bn},
      Layout::OIHWio(s.ic_bn, s.oc_bn), DType::kS8);
  if (u8) {
    std::uint8_t* in = reinterpret_cast<std::uint8_t*>(input.data());
    for (std::int64_t i = 0; i < input.NumElements(); ++i) {
      in[i] = static_cast<std::uint8_t>(i % 256);
    }
  } else {
    std::int8_t* in = input.data_as<std::int8_t>();
    for (std::int64_t i = 0; i < input.NumElements(); ++i) {
      in[i] = static_cast<std::int8_t>(i % 251 - 125);
    }
  }
  std::int8_t* w = weight.data_as<std::int8_t>();
  for (std::int64_t i = 0; i < weight.NumElements(); ++i) {
    w[i] = static_cast<std::int8_t>(i % 241 - 120);
  }
  Tensor mult = Tensor::Full({p.out_c}, 1e-3f);
  Tensor out = Tensor::Empty({p.batch, p.out_c / s.oc_bn, p.OutH(), p.OutW(), s.oc_bn},
                             Layout::NCHWc(s.oc_bn), u8 ? DType::kU8 : DType::kS8);
  ConvEpilogue epilogue;  // bare conv: the schedule choice is epilogue-independent
  double best = 1e30;
  for (int i = 0; i < runs + 1; ++i) {
    Timer timer;
    ConvNCHWcS8(p, s, input, weight, nullptr, mult, epilogue, /*requant=*/true, &out,
                engine, /*out_zero=*/u8 ? 128 : 0, /*in_zero=*/u8 ? 128 : 0);
    const double ms = timer.Millis();
    if (i > 0 || runs == 1) {
      best = std::min(best, ms);
    }
  }
  return best;
}

}  // namespace

double MeasureConvMs(const Conv2dParams& p, const ConvSchedule& s, ThreadEngine* engine,
                     int runs) {
  if (s.IsQuantized()) {
    return MeasureDirectNchwcS8Ms(p, s, engine, runs);
  }
  if (s.algo != ConvAlgo::kDirectNCHWc) {
    return MeasureNchwAlgoMs(p, s.algo, engine, runs);
  }
  return MeasureDirectNchwcMs(p, s, engine, runs);
}

double AnalyticDenseMs(const DenseParams& p, const GemmSchedule& s, const Target& t) {
  const double macs = p.Macs();
  const double lanes = static_cast<double>(t.vector_lanes);
  const double peak_macs_per_ms =
      t.freq_ghz * lanes * static_cast<double>(t.fma_per_cycle) * 1e6;
  double ms = macs / peak_macs_per_ms;

  // Register-kernel vector fill: an nr that is not a lane multiple wastes lanes in
  // every FMA of the micro kernel.
  const double nr_vectors = std::ceil(static_cast<double>(s.nr) / lanes);
  ms *= (nr_vectors * lanes) / static_cast<double>(s.nr);

  // Dtype. On a VNNI target the u8*s8 kernel retires a 4-deep dot per lane per
  // vpdpbusd — well past the fp32 FMA rate; without VNNI the portable quad fallback
  // accumulates scalar s32 quads and loses to fp32 outright.
  if (s.dtype == DType::kU8) {
    ms *= t.vnni_dot ? 0.45 : 2.0;
  }

  // Off-grid register kernels fall back to the runtime-bounded edge micro kernel.
  const bool fast_mr = s.mr == 1 || s.mr == 2 || s.mr == 4 || s.mr == 6 || s.mr == 8;
  const bool fast_nr = s.nr == 8 || s.nr == 16 || s.nr == 32 || s.nr == 64;
  if (!fast_mr || !fast_nr) {
    ms *= 2.5;
  }

  // Accumulator pressure: mr x ceil(nr/lanes) accumulators + an A broadcast + a B load.
  const double regs_used = static_cast<double>(s.mr) * nr_vectors + 2.0;
  const double regs_avail = static_cast<double>(t.num_vector_registers);
  if (regs_used > regs_avail) {
    ms *= 1.0 + 0.35 * (regs_used - regs_avail) / regs_avail;
  }

  // Operand reuse in the inner loop: each k step issues mr broadcasts + nr_vectors
  // loads feeding mr*nr_vectors FMAs.
  ms *= 1.0 + (static_cast<double>(s.mr) + nr_vectors) /
                  (static_cast<double>(s.mr) * nr_vectors);

  // Tail fractions: rows/cols beyond the last full register tile run guarded stores
  // (and the pad rows of the packed panels are computed then discarded).
  const double m_pad = static_cast<double>((p.m + s.mr - 1) / s.mr * s.mr);
  const double n_pad = static_cast<double>((p.n + s.nr - 1) / s.nr * s.nr);
  ms *= (m_pad / static_cast<double>(p.m)) * (n_pad / static_cast<double>(p.n));

  // Cache residency: the nr x kc B panel should sit in L1 across the mc rows; the
  // mc x kc packed-A block should sit in L2 across the nc columns.
  const double elem_bytes = s.dtype == DType::kU8 ? 1.0 : 4.0;
  const double kc = static_cast<double>(std::min<std::int64_t>(s.kc, p.k));
  if (static_cast<double>(s.nr) * kc * elem_bytes > static_cast<double>(t.l1d_bytes)) {
    ms *= 1.2;
  }
  if (static_cast<double>(s.mc) * kc * elem_bytes > static_cast<double>(t.l2_bytes)) {
    ms *= 1.15;
  }

  // Per-call A packing: one streaming read + write of A per kc pass.
  const double a_bytes = static_cast<double>(p.m) * static_cast<double>(p.k) * elem_bytes;
  const double kc_passes = std::ceil(static_cast<double>(p.k) / kc);
  ms += kc_passes * 2.0 * a_bytes / CalibratedCopyBytesPerMs();
  return ms;
}

namespace {

double MeasureDenseF32Ms(const DenseParams& p, const GemmSchedule& s,
                         ThreadEngine* engine, int runs) {
  Rng rng(42);
  std::vector<float> a(static_cast<std::size_t>(p.m * p.k));
  std::vector<float> w(static_cast<std::size_t>(p.n * p.k));  // [n][k] dense weights
  for (float& v : a) v = rng.NextFloat(-1.0f, 1.0f);
  for (float& v : w) v = rng.NextFloat(-0.5f, 0.5f);
  std::vector<float> bp(PackedBF32Elems(p.n, p.k, s));
  PackBF32FromTransposed(w.data(), p.n, p.k, s, bp.data());
  std::vector<float> ws(PackedAF32Elems(p.m, p.k, s));
  std::vector<float> c(static_cast<std::size_t>(p.m * p.n));
  double best = 1e30;
  for (int i = 0; i < runs + 1; ++i) {
    Timer timer;
    GemmPackedF32(p.m, p.n, p.k, a.data(), bp.data(), /*bias=*/nullptr, /*relu=*/false,
                  c.data(), s, ws.data(), engine);
    const double ms = timer.Millis();
    if (i > 0 || runs == 1) {
      best = std::min(best, ms);
    }
  }
  return best;
}

double MeasureDenseU8Ms(const DenseParams& p, const GemmSchedule& s,
                        ThreadEngine* engine, int runs) {
  std::vector<std::uint8_t> a(static_cast<std::size_t>(p.m * p.k));
  std::vector<std::int8_t> w(static_cast<std::size_t>(p.n * p.k));
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = static_cast<std::uint8_t>(i % 256);
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = static_cast<std::int8_t>(i % 241 - 120);
  }
  std::vector<std::int8_t> bp(PackedBS8Bytes(p.n, p.k, s));
  PackBS8FromTransposed(w.data(), p.n, p.k, s, bp.data());
  std::vector<std::uint8_t> ws(PackedAU8Bytes(p.m, p.k, s));
  std::vector<float> mult(static_cast<std::size_t>(p.n), 1e-3f);
  std::vector<std::int8_t> c(static_cast<std::size_t>(p.m * p.n));
  double best = 1e30;
  for (int i = 0; i < runs + 1; ++i) {
    Timer timer;
    GemmPackedU8S8(p.m, p.n, p.k, a.data(), bp.data(), /*bias=*/nullptr, mult.data(),
                   /*relu=*/false, /*requant=*/true, /*out_u8=*/false, /*out_zero=*/0,
                   c.data(), s, ws.data(), engine);
    const double ms = timer.Millis();
    if (i > 0 || runs == 1) {
      best = std::min(best, ms);
    }
  }
  return best;
}

}  // namespace

double MeasureDenseMs(const DenseParams& p, const GemmSchedule& s, ThreadEngine* engine,
                      int runs) {
  return s.dtype == DType::kU8 ? MeasureDenseU8Ms(p, s, engine, runs)
                               : MeasureDenseF32Ms(p, s, engine, runs);
}

double CalibratedCopyBytesPerMs() {
  static std::once_flag flag;
  static double bytes_per_ms = 0.0;
  std::call_once(flag, [] {
    const std::size_t bytes = 32ull << 20;
    AlignedPtr<char> src = MakeAligned<char>(bytes);
    AlignedPtr<char> dst = MakeAligned<char>(bytes);
    std::memset(src.get(), 1, bytes);
    std::memset(dst.get(), 2, bytes);  // fault in
    double best_ms = 1e30;
    for (int i = 0; i < 3; ++i) {
      Timer t;
      std::memcpy(dst.get(), src.get(), bytes);
      best_ms = std::min(best_ms, t.Millis());
    }
    bytes_per_ms = static_cast<double>(2 * bytes) / best_ms;  // read + write traffic
  });
  return bytes_per_ms;
}

double TransformMs(std::int64_t tensor_bytes) {
  // A relayout reads and writes the tensor once, in a cache-unfriendly gather order:
  // charge 2x the streaming-copy cost.
  return 2.0 * static_cast<double>(2 * tensor_bytes) / CalibratedCopyBytesPerMs();
}

double QdqMs(std::int64_t f32_bytes) {
  // One sequential f32-side stream + a quarter-size s8-side stream; the convert itself
  // is cheap but not free (clamp + round), folded into a 1.5x factor.
  const double traffic = 1.25 * static_cast<double>(f32_bytes);
  return 1.5 * traffic / CalibratedCopyBytesPerMs();
}

}  // namespace neocpu
