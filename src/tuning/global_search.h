// Global optimization-scheme search (paper §3.3.2).
//
// Builds the layout-and-algorithm-choice problem from a (simplified + fused) graph: one
// variable per convolution whose options are the per-(algo, ic_bn, oc_bn) best schedules
// from local search (direct-NCHWc blocking tuples plus the im2col and — where legal —
// Winograd algorithm candidates), producer→consumer edges charging a layout transform
// when the producer's output block differs from the consumer's input block (NCHW-layout
// algorithms count as block 0), and sibling edges (from fused residual adds, standalone
// elementwise adds and concats) charging a transform when two producers that must agree
// pick different output blocks.
//
// SolveGlobal first attempts the exact DP (variable elimination); when the state space
// explodes (SSD's concatenation blocks) it falls back to the PBQP heuristic — exactly
// the policy the paper describes.
#ifndef NEOCPU_SRC_TUNING_GLOBAL_SEARCH_H_
#define NEOCPU_SRC_TUNING_GLOBAL_SEARCH_H_

#include <map>
#include <vector>

#include "src/graph/graph.h"
#include "src/tuning/local_search.h"
#include "src/tuning/pbqp.h"

namespace neocpu {

enum class LayoutEdgeKind {
  kProducerConsumer,  // cost when oc_bn(producer) != ic_bn(consumer)
  kSibling,           // cost when oc_bn(a) != oc_bn(b) (add/concat/residual agreement)
};

struct LayoutEdge {
  int var_a = 0;  // indices into GlobalProblem::conv_ids
  int var_b = 0;
  double transform_ms = 0.0;
  LayoutEdgeKind kind = LayoutEdgeKind::kProducerConsumer;
};

struct GlobalProblem {
  std::vector<int> conv_ids;                         // variable -> conv node id
  std::vector<std::vector<ScheduleCost>> options;    // per-variable candidate schemes
  std::vector<LayoutEdge> edges;

  PbqpProblem ToPbqp() const;
  double Evaluate(const std::vector<int>& selection) const;
};

// `locals` maps conv node id to its local-search result.
GlobalProblem ExtractGlobalProblem(const Graph& graph, const LocalSearchMap& locals);

struct GlobalSolution {
  std::map<int, ConvSchedule> assignment;  // conv node id -> schedule
  double cost_ms = 0.0;
  bool exact = false;       // solved by DP (true) or PBQP heuristic (false)
  double solve_seconds = 0.0;
};

GlobalSolution SolveGlobal(const GlobalProblem& problem,
                           std::size_t max_dp_table_entries = 1 << 22);

// Forces one solver (benchmarking / the DP-vs-PBQP quality comparison).
GlobalSolution SolveGlobalExactOnly(const GlobalProblem& problem,
                                    std::size_t max_dp_table_entries, bool* ok);
GlobalSolution SolveGlobalPbqpOnly(const GlobalProblem& problem);

}  // namespace neocpu

#endif  // NEOCPU_SRC_TUNING_GLOBAL_SEARCH_H_
