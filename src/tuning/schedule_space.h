// Schedule candidate enumeration (paper §3.3.1).
//
// The candidate lists follow the paper exactly:
//   * ic_bn / oc_bn: all factors of the channel counts (capped by the target ISA's
//     admissible block size);
//   * reg_n: [32, 16, 8, 4, 2];
//   * unroll_ker: [true, false].
#ifndef NEOCPU_SRC_TUNING_SCHEDULE_SPACE_H_
#define NEOCPU_SRC_TUNING_SCHEDULE_SPACE_H_

#include <cstdint>
#include <vector>

#include "src/core/target.h"
#include "src/kernels/conv_params.h"
#include "src/kernels/conv_schedule.h"
#include "src/kernels/dense_params.h"
#include "src/kernels/gemm_schedule.h"

namespace neocpu {

// All factors of n that are <= cap, ascending.
std::vector<std::int64_t> Factors(std::int64_t n, std::int64_t cap);

// The full §3.3.1 space for one workload on one target. With quick_space, the channel
// factors are pruned to the neighbourhood of the target's preferred block (half / one /
// two vectors), which keeps measured search affordable; the full space is what the
// paper's offline multi-hour search walks. Direct-NCHWc schedules only; the algorithm
// alternatives below ride along in the local search's candidate list.
std::vector<ConvSchedule> EnumerateSchedules(const Conv2dParams& params, const Target& target,
                                             bool quick_space = false);

// Algorithm alternatives for one workload: one im2col candidate always, one Winograd
// candidate when the workload is in Winograd's domain (3x3 stride-1). These join the
// direct schedules in the local search so the cost model ranks *algorithms* alongside
// blocking tuples; fused-epilogue legality (Winograd cannot absorb a residual add) is
// the selection layer's job — the cached ranked list is keyed by shape alone.
std::vector<ConvSchedule> EnumerateAlgoCandidates(const Conv2dParams& params);

// The quantized direct-NCHWc space for one workload: same tuple structure, but channel
// blocks run up to the target's full s8 vector (4x the fp32 lanes — the s8 kernel's
// throughput scales with the filled vector fraction) and quick_space prunes to the
// {full, half, quarter} s8-vector neighbourhood. `dtype` selects the activation dtype
// of the space (kS8 or kU8); the u8 space additionally drops ic_bn factors not
// divisible by 4 (the VNNI quad-packing constraint) and may be empty for odd channel
// counts. Empty when the target profile disables int8 (Target::int8_dot) — the "ISA
// gated by Target" switch. Cached under the dtype-tagged WorkloadKey, separate from the
// fp32 entries.
std::vector<ConvSchedule> EnumerateS8Schedules(const Conv2dParams& params,
                                               const Target& target,
                                               bool quick_space = false,
                                               DType dtype = DType::kS8);

// Blocking space for one tuned GEMM (Dense) workload: register kernel mr x nr crossed
// with mc/nc/kc cache tiles. quick_space keeps the register-kernel neighbourhood that
// wins on every shape we have measured (mr in {4,6,8}, nr in {16,32,64}) with one cache
// tiling; the full space adds the small register kernels and sweeps the cache tiles.
// The u8 space (dtype == kU8) pins kc = k — the quantized kernel accumulates the whole
// reduction in s32 registers in a single K pass so the requant epilogue can fuse — and
// is empty when the target profile disables int8 (Target::int8_dot).
std::vector<GemmSchedule> EnumerateDenseSchedules(const DenseParams& params,
                                                  const Target& target,
                                                  bool quick_space = false,
                                                  DType dtype = DType::kF32);

inline const std::vector<std::int64_t>& RegNCandidates() {
  static const std::vector<std::int64_t> kCandidates = {32, 16, 8, 4, 2};
  return kCandidates;
}

}  // namespace neocpu

#endif  // NEOCPU_SRC_TUNING_SCHEDULE_SPACE_H_
