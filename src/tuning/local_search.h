// Local search (paper §3.3.1): rank every candidate schedule of one convolution
// workload by (measured or modelled) execution time, ascending.
//
// Results are memoized in a TuningDatabase keyed by (target, workload, mode) — the
// paper: "we can maintain a database to store the results for every convolution
// workload on every CPU type to prevent repeating search for the same convolution in
// different models." The database serializes to a plain text file.
#ifndef NEOCPU_SRC_TUNING_LOCAL_SEARCH_H_
#define NEOCPU_SRC_TUNING_LOCAL_SEARCH_H_

#include <map>
#include <string>
#include <vector>

#include "src/tuning/cost_model.h"
#include "src/tuning/schedule_space.h"

namespace neocpu {

struct ScheduleCost {
  ConvSchedule schedule;
  double ms = 0.0;
};

struct LocalSearchResult {
  std::vector<ScheduleCost> ranked;  // ascending by ms; never empty after a search

  const ScheduleCost& best() const { return ranked.front(); }
  // Cheapest schedule for a given (ic_bn, oc_bn) pair; nullptr if the pair is absent.
  const ScheduleCost* BestForPair(std::int64_t ic_bn, std::int64_t oc_bn) const;
};

class TuningDatabase {
 public:
  static std::string Key(const Conv2dParams& params, const Target& target, CostMode mode,
                         bool quick_space);

  const LocalSearchResult* Find(const std::string& key) const;
  void Insert(const std::string& key, LocalSearchResult result);
  std::size_t size() const { return entries_.size(); }

  bool SaveToFile(const std::string& path) const;
  bool LoadFromFile(const std::string& path);

 private:
  std::map<std::string, LocalSearchResult> entries_;
};

// Walks the §3.3.1 candidate space for one workload. `db` (optional) is consulted first
// and updated with the result.
LocalSearchResult LocalSearchConv(const Conv2dParams& params, const Target& target,
                                  CostMode mode, bool quick_space,
                                  ThreadEngine* engine = nullptr,
                                  TuningDatabase* db = nullptr);

}  // namespace neocpu

#endif  // NEOCPU_SRC_TUNING_LOCAL_SEARCH_H_
