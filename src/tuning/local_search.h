// Local search (paper §3.3.1): rank every candidate schedule of one convolution
// workload by (measured or modelled) execution time, ascending.
//
// Results are memoized in the shared TuningCache (src/tuning/tuning_cache.h) keyed by
// WorkloadKey — the full workload identity including the batch size, target ISA, cost
// mode and space mode.
#ifndef NEOCPU_SRC_TUNING_LOCAL_SEARCH_H_
#define NEOCPU_SRC_TUNING_LOCAL_SEARCH_H_

#include <map>
#include <memory>
#include <vector>

#include "src/tuning/cost_model.h"
#include "src/tuning/schedule_space.h"

namespace neocpu {

class TuningCache;

struct ScheduleCost {
  ConvSchedule schedule;
  double ms = 0.0;
};

struct DenseScheduleCost {
  GemmSchedule schedule;
  double ms = 0.0;
};

struct LocalSearchResult {
  std::vector<ScheduleCost> ranked;  // ascending by ms; never empty after a conv search
  // Dense (tuned GEMM) workloads rank here instead; ascending by ms. Exactly one of
  // `ranked` / `dense_ranked` is populated per result — the WorkloadKey knows which.
  std::vector<DenseScheduleCost> dense_ranked;

  const ScheduleCost& best() const { return ranked.front(); }
  // Cheapest fp32 direct-NCHWc schedule for a given (ic_bn, oc_bn) pair; nullptr if the
  // pair is absent. Non-direct algorithm entries (zeroed blocks) and quantized entries
  // (merged candidate lists) never match.
  const ScheduleCost* BestForPair(std::int64_t ic_bn, std::int64_t oc_bn) const;
  // Cheapest fp32 entry computed with `algo`; nullptr if none was ranked (e.g. Winograd
  // for a non-3x3 workload).
  const ScheduleCost* BestForAlgo(ConvAlgo algo) const;
  // Cheapest s8 (quantized) entry; nullptr when the list carries none (pure fp32
  // searches, int8-disabled targets).
  const ScheduleCost* BestQuantized() const;
  // Cheapest dense entry of the given dtype; nullptr when none was ranked.
  const DenseScheduleCost* BestDense(DType dtype = DType::kF32) const;
};

// Conv node id -> its local-search result (the compiler's and global search's working
// set; shared_ptr so cache hits are pointer copies, never ranked-list copies).
using LocalSearchMap = std::map<int, std::shared_ptr<const LocalSearchResult>>;

// Walks the §3.3.1 candidate space for one workload. `dtype` selects the space: kF32
// ranks the fp32 blockings plus the NCHW algorithm alternatives; kS8 ranks the
// quantized direct-NCHWc space (EnumerateS8Schedules) and caches under the s8-tagged
// WorkloadKey. `cache` (optional) is consulted first and populated with the result on a
// miss. `cache_hit` (optional) reports whether this call was served from the cache —
// callers attribute cache traffic to themselves through it, since the cache's own
// counters are shared across concurrent searches. A hit hands back the cache's own
// immutable result; no copy is made.
std::shared_ptr<const LocalSearchResult> LocalSearchConvShared(
    const Conv2dParams& params, const Target& target, CostMode mode, bool quick_space,
    ThreadEngine* engine = nullptr, TuningCache* cache = nullptr,
    bool* cache_hit = nullptr, DType dtype = DType::kF32);

// Walks EnumerateDenseSchedules for one tuned-GEMM workload and ranks it into
// dense_ranked, caching under the dense-spelled WorkloadKey ("dense:M_N_K" shape
// token). `dtype` is kF32 or kU8; a u8 search on an int8-disabled target returns a
// result with an empty dense_ranked (and caches nothing) so callers can fall back.
std::shared_ptr<const LocalSearchResult> LocalSearchDenseShared(
    const DenseParams& params, const Target& target, CostMode mode, bool quick_space,
    ThreadEngine* engine = nullptr, TuningCache* cache = nullptr,
    bool* cache_hit = nullptr, DType dtype = DType::kF32);

// Convenience by-value form for standalone callers (examples, tests).
LocalSearchResult LocalSearchConv(const Conv2dParams& params, const Target& target,
                                  CostMode mode, bool quick_space,
                                  ThreadEngine* engine = nullptr,
                                  TuningCache* cache = nullptr,
                                  bool* cache_hit = nullptr, DType dtype = DType::kF32);

}  // namespace neocpu

#endif  // NEOCPU_SRC_TUNING_LOCAL_SEARCH_H_
