// The single source of schedule truth.
//
// The paper: "we can maintain a database to store the results for every convolution
// workload on every CPU type to prevent repeating search for the same convolution in
// different models." TuningCache is that database grown into a subsystem shared by the
// compiler and the serving tier:
//   * keyed by WorkloadKey, so batch-1 and batch-8 tunings of the same conv coexist;
//   * thread-safe — serving-side background re-tunes populate it while compile-time
//     lookups and other re-tunes read it concurrently;
//   * results are handed out as shared_ptr<const ...>, so a hit is a pointer copy and
//     stays valid regardless of later inserts;
//   * hit/miss/insert accounting for observability (serving stats surface it);
//   * persistable: a versioned text file (SaveToFile/LoadFromFile) for standalone use,
//     and a Serialize/Deserialize pair used by core/serialization to embed the cache
//     inside a compiled-module artifact so warm starts restore every batch variant's
//     tuning without re-searching.
#ifndef NEOCPU_SRC_TUNING_TUNING_CACHE_H_
#define NEOCPU_SRC_TUNING_TUNING_CACHE_H_

#include <cstdint>
#include <iosfwd>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/tuning/local_search.h"
#include "src/tuning/workload_key.h"

namespace neocpu {

struct TuningCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t capacity = 0;  // 0 = unbounded

  double HitRate() const {
    const std::uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

class TuningCache {
 public:
  // Bumped whenever the on-disk layout changes. v3 appends the convolution-algorithm
  // tag to every schedule line; v4 appends the execution dtype (s8 entries live under
  // s8-tagged workload keys); v5 adds `dense` records for tuned-GEMM workloads (keys
  // spelled with a "dense:" shape token, lines carrying mc/nc/kc/mr/nr blocking
  // tuples). v2..v4 files still load, their entries defaulting to the direct NCHW[x]c
  // algorithm / fp32. Older/unknown versions are rejected instead of misread.
  static constexpr std::uint32_t kFormatVersion = 5;
  static constexpr std::uint32_t kMinFormatVersion = 2;

  TuningCache() = default;
  TuningCache(const TuningCache&) = delete;
  TuningCache& operator=(const TuningCache&) = delete;

  // Nullptr on miss. Every call counts toward hit/miss accounting, and a hit marks the
  // entry most-recently-used for the eviction policy.
  std::shared_ptr<const LocalSearchResult> Find(const WorkloadKey& key) const;

  // Inserting an existing key replaces its result (a fresh re-measurement of the same
  // workload supersedes the stale timing, for example — note that analytic and
  // measured results live under different keys, since cost mode is part of the key).
  void Insert(const WorkloadKey& key, LocalSearchResult result);
  void Insert(const WorkloadKey& key, std::shared_ptr<const LocalSearchResult> result);

  // Size bound with LRU eviction for long-lived caches (the serving registry's shared
  // cache sees unbounded workload churn: many models x many batch sizes). 0 (the
  // default) = unbounded. Shrinking below the current size evicts immediately,
  // least-recently-used first. Handed-out shared_ptr results survive eviction.
  void SetCapacity(std::size_t max_entries);
  std::size_t capacity() const;

  // Merges every entry of `other` into this cache (replacing same-key entries), used to
  // fold a model's private cache into a registry-wide shared one. Counts as inserts and
  // respects the capacity bound.
  void MergeFrom(const TuningCache& other);

  std::size_t size() const;
  TuningCacheStats Stats() const;

  // All keys currently cached, in stable (text-key) order.
  std::vector<WorkloadKey> Keys() const;

  // Stream form used both by the file API and by module serialization. Deserialize
  // *merges* into the current contents and returns false on version mismatch or
  // malformed input (cache left with the entries parsed so far discarded — the cache is
  // untouched on any failure).
  void Serialize(std::ostream& out) const;
  bool Deserialize(std::istream& in);

  // Versioned text file:
  //   neocpu-tuning-cache <version> <entry-count>
  //   workload <key> <num-schedules>
  //   <ic_bn> <oc_bn> <reg_n> <unroll> <algo> <dtype> <ms>
  //   (v2 lines omit <algo> and <dtype>; v3 lines omit <dtype>)
  //   ...
  // Crash-consistent: the cache is serialized to `<path>.tmp`, fsynced, and rename(2)d
  // over `path`, so a reader never observes a torn file — a crash mid-save leaves the
  // previous file (plus at worst an orphaned .tmp the next save overwrites).
  bool SaveToFile(const std::string& path) const;
  // Merges the file's entries into the cache. False on I/O failure, version mismatch or
  // malformed content; the in-memory cache is unchanged on failure.
  bool LoadFromFile(const std::string& path);

  // Simulated-crash injection for SaveToFile (process-global; tests only). A save that
  // reaches the armed point returns false exactly as a killed process would leave the
  // filesystem: temp file written (possibly durable), destination untouched.
  enum class SaveKillPoint { kNone, kAfterTempWrite, kBeforeRename };
  static void SetSaveKillPointForTest(SaveKillPoint point);

 private:
  struct Entry {
    std::shared_ptr<const LocalSearchResult> result;
    // Position in lru_ (most-recent at the front); kept in sync on every touch.
    std::list<std::string>::iterator recency;
  };
  using EntryMap = std::map<std::string, Entry>;
  using ParsedMap = std::map<std::string, std::shared_ptr<const LocalSearchResult>>;

  static bool ParseStream(std::istream& in, ParsedMap* entries);

  // All private helpers below require mutex_ held.
  void InsertLocked(std::string text, std::shared_ptr<const LocalSearchResult> result);
  void TouchLocked(const Entry& entry) const;
  void EvictOverCapacityLocked();

  mutable std::mutex mutex_;
  // Keyed by WorkloadKey::ToString(); Keys() re-parses on demand (Parse is the exact
  // inverse, so there is no second map to keep in sync).
  EntryMap entries_;
  mutable std::list<std::string> lru_;  // front = most recently used
  std::size_t capacity_ = 0;            // 0 = unbounded
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
  std::uint64_t inserts_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace neocpu

#endif  // NEOCPU_SRC_TUNING_TUNING_CACHE_H_
