#include "src/tuning/local_search.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "src/base/logging.h"
#include "src/base/string_util.h"

namespace neocpu {

const ScheduleCost* LocalSearchResult::BestForPair(std::int64_t ic_bn,
                                                   std::int64_t oc_bn) const {
  for (const ScheduleCost& sc : ranked) {
    if (sc.schedule.ic_bn == ic_bn && sc.schedule.oc_bn == oc_bn) {
      return &sc;  // ranked ascending: first hit is the pair's best
    }
  }
  return nullptr;
}

std::string TuningDatabase::Key(const Conv2dParams& params, const Target& target,
                                CostMode mode, bool quick_space) {
  return StrFormat("%s|%s|%s|%s", target.name.c_str(), params.CacheKey().c_str(),
                   CostModeName(mode), quick_space ? "quick" : "full");
}

const LocalSearchResult* TuningDatabase::Find(const std::string& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

void TuningDatabase::Insert(const std::string& key, LocalSearchResult result) {
  entries_[key] = std::move(result);
}

bool TuningDatabase::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << std::setprecision(17);
  for (const auto& [key, result] : entries_) {
    out << "workload " << key << " " << result.ranked.size() << "\n";
    for (const ScheduleCost& sc : result.ranked) {
      out << sc.schedule.ic_bn << " " << sc.schedule.oc_bn << " " << sc.schedule.reg_n << " "
          << (sc.schedule.unroll_ker ? 1 : 0) << " " << sc.ms << "\n";
    }
  }
  return true;
}

bool TuningDatabase::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::string tag;
  while (in >> tag) {
    if (tag != "workload") {
      return false;
    }
    std::string key;
    std::size_t count = 0;
    in >> key >> count;
    LocalSearchResult result;
    result.ranked.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      int unroll = 0;
      ScheduleCost& sc = result.ranked[i];
      in >> sc.schedule.ic_bn >> sc.schedule.oc_bn >> sc.schedule.reg_n >> unroll >> sc.ms;
      sc.schedule.unroll_ker = unroll != 0;
    }
    if (!in) {
      return false;
    }
    entries_[key] = std::move(result);
  }
  return true;
}

LocalSearchResult LocalSearchConv(const Conv2dParams& params, const Target& target,
                                  CostMode mode, bool quick_space, ThreadEngine* engine,
                                  TuningDatabase* db) {
  const std::string key = TuningDatabase::Key(params, target, mode, quick_space);
  if (db != nullptr) {
    if (const LocalSearchResult* cached = db->Find(key)) {
      return *cached;
    }
  }
  LocalSearchResult result;
  for (const ConvSchedule& schedule : EnumerateSchedules(params, target, quick_space)) {
    const double ms = mode == CostMode::kAnalytic
                          ? AnalyticConvMs(params, schedule, target)
                          : MeasureConvMs(params, schedule, engine);
    result.ranked.push_back(ScheduleCost{schedule, ms});
  }
  NEOCPU_CHECK(!result.ranked.empty()) << "empty schedule space for " << params.ToString();
  std::stable_sort(result.ranked.begin(), result.ranked.end(),
                   [](const ScheduleCost& a, const ScheduleCost& b) { return a.ms < b.ms; });
  if (db != nullptr) {
    db->Insert(key, result);
  }
  return result;
}

}  // namespace neocpu
