#include "src/tuning/local_search.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/tuning/tuning_cache.h"

namespace neocpu {

const ScheduleCost* LocalSearchResult::BestForPair(std::int64_t ic_bn,
                                                   std::int64_t oc_bn) const {
  for (const ScheduleCost& sc : ranked) {
    if (sc.schedule.ic_bn == ic_bn && sc.schedule.oc_bn == oc_bn) {
      return &sc;  // ranked ascending: first hit is the pair's best
    }
  }
  return nullptr;
}

std::shared_ptr<const LocalSearchResult> LocalSearchConvShared(
    const Conv2dParams& params, const Target& target, CostMode mode, bool quick_space,
    ThreadEngine* engine, TuningCache* cache, bool* cache_hit) {
  const WorkloadKey key = WorkloadKey::Of(params, target, mode, quick_space);
  if (cache_hit != nullptr) {
    *cache_hit = false;
  }
  if (cache != nullptr) {
    if (std::shared_ptr<const LocalSearchResult> cached = cache->Find(key)) {
      if (cache_hit != nullptr) {
        *cache_hit = true;
      }
      return cached;
    }
  }
  LocalSearchResult result;
  for (const ConvSchedule& schedule : EnumerateSchedules(params, target, quick_space)) {
    const double ms = mode == CostMode::kAnalytic
                          ? AnalyticConvMs(params, schedule, target)
                          : MeasureConvMs(params, schedule, engine);
    result.ranked.push_back(ScheduleCost{schedule, ms});
  }
  NEOCPU_CHECK(!result.ranked.empty()) << "empty schedule space for " << params.ToString();
  std::stable_sort(result.ranked.begin(), result.ranked.end(),
                   [](const ScheduleCost& a, const ScheduleCost& b) { return a.ms < b.ms; });
  auto shared = std::make_shared<const LocalSearchResult>(std::move(result));
  if (cache != nullptr) {
    cache->Insert(key, shared);
  }
  return shared;
}

LocalSearchResult LocalSearchConv(const Conv2dParams& params, const Target& target,
                                  CostMode mode, bool quick_space, ThreadEngine* engine,
                                  TuningCache* cache, bool* cache_hit) {
  return *LocalSearchConvShared(params, target, mode, quick_space, engine, cache,
                                cache_hit);
}

}  // namespace neocpu
