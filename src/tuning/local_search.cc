#include "src/tuning/local_search.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/tuning/tuning_cache.h"

namespace neocpu {

const ScheduleCost* LocalSearchResult::BestForPair(std::int64_t ic_bn,
                                                   std::int64_t oc_bn) const {
  for (const ScheduleCost& sc : ranked) {
    if (!sc.schedule.IsQuantized() && sc.schedule.IsDirect() &&
        sc.schedule.ic_bn == ic_bn && sc.schedule.oc_bn == oc_bn) {
      return &sc;  // ranked ascending: first hit is the pair's best
    }
  }
  return nullptr;
}

const ScheduleCost* LocalSearchResult::BestForAlgo(ConvAlgo algo) const {
  for (const ScheduleCost& sc : ranked) {
    if (!sc.schedule.IsQuantized() && sc.schedule.algo == algo) {
      return &sc;
    }
  }
  return nullptr;
}

const ScheduleCost* LocalSearchResult::BestQuantized() const {
  for (const ScheduleCost& sc : ranked) {
    if (sc.schedule.IsQuantized()) {
      return &sc;
    }
  }
  return nullptr;
}

const DenseScheduleCost* LocalSearchResult::BestDense(DType dtype) const {
  for (const DenseScheduleCost& sc : dense_ranked) {
    if (sc.schedule.dtype == dtype) {
      return &sc;  // ranked ascending: first hit is the dtype's best
    }
  }
  return nullptr;
}

std::shared_ptr<const LocalSearchResult> LocalSearchDenseShared(
    const DenseParams& params, const Target& target, CostMode mode, bool quick_space,
    ThreadEngine* engine, TuningCache* cache, bool* cache_hit, DType dtype) {
  const WorkloadKey key = WorkloadKey::OfDense(params, target, mode, quick_space, dtype);
  if (cache_hit != nullptr) {
    *cache_hit = false;
  }
  if (cache != nullptr) {
    if (std::shared_ptr<const LocalSearchResult> cached = cache->Find(key)) {
      if (cache_hit != nullptr) {
        *cache_hit = true;
      }
      return cached;
    }
  }
  LocalSearchResult result;
  const std::vector<GemmSchedule> candidates =
      EnumerateDenseSchedules(params, target, quick_space, dtype);
  for (const GemmSchedule& schedule : candidates) {
    const double ms = mode == CostMode::kAnalytic
                          ? AnalyticDenseMs(params, schedule, target)
                          : MeasureDenseMs(params, schedule, engine);
    result.dense_ranked.push_back(DenseScheduleCost{schedule, ms});
  }
  std::stable_sort(result.dense_ranked.begin(), result.dense_ranked.end(),
                   [](const DenseScheduleCost& a, const DenseScheduleCost& b) {
                     return a.ms < b.ms;
                   });
  auto shared = std::make_shared<const LocalSearchResult>(std::move(result));
  if (cache != nullptr && !shared->dense_ranked.empty()) {
    cache->Insert(key, shared);
  }
  return shared;
}

std::shared_ptr<const LocalSearchResult> LocalSearchConvShared(
    const Conv2dParams& params, const Target& target, CostMode mode, bool quick_space,
    ThreadEngine* engine, TuningCache* cache, bool* cache_hit, DType dtype) {
  const WorkloadKey key = WorkloadKey::Of(params, target, mode, quick_space, dtype);
  if (cache_hit != nullptr) {
    *cache_hit = false;
  }
  if (cache != nullptr) {
    if (std::shared_ptr<const LocalSearchResult> cached = cache->Find(key)) {
      // Entries restored from pre-algorithm caches (format v2) rank only direct
      // blockings. Score the missing algorithm candidates now and re-insert the
      // widened result, so a warm start never silently forecloses the algorithm
      // choice for exactly the workloads it covers. (s8 spaces post-date the algorithm
      // tag, so only fp32 entries ever need widening.)
      std::vector<ConvSchedule> missing;
      if (dtype == DType::kF32) {
        for (const ConvSchedule& extra : EnumerateAlgoCandidates(params)) {
          if (cached->BestForAlgo(extra.algo) == nullptr) {
            missing.push_back(extra);
          }
        }
      }
      if (!missing.empty()) {
        LocalSearchResult widened = *cached;
        for (const ConvSchedule& schedule : missing) {
          const double ms = mode == CostMode::kAnalytic
                                ? AnalyticConvMs(params, schedule, target)
                                : MeasureConvMs(params, schedule, engine);
          widened.ranked.push_back(ScheduleCost{schedule, ms});
        }
        std::stable_sort(
            widened.ranked.begin(), widened.ranked.end(),
            [](const ScheduleCost& a, const ScheduleCost& b) { return a.ms < b.ms; });
        auto shared = std::make_shared<const LocalSearchResult>(std::move(widened));
        cache->Insert(key, shared);
        if (cache_hit != nullptr) {
          *cache_hit = true;
        }
        return shared;
      }
      if (cache_hit != nullptr) {
        *cache_hit = true;
      }
      return cached;
    }
  }
  LocalSearchResult result;
  std::vector<ConvSchedule> candidates;
  if (dtype == DType::kS8 || dtype == DType::kU8) {
    candidates = EnumerateS8Schedules(params, target, quick_space, dtype);
    NEOCPU_CHECK(!candidates.empty())
        << "int8 search found no candidates (disabled target or no legal u8 blocking) "
        << "for " << params.ToString();
  } else {
    candidates = EnumerateSchedules(params, target, quick_space);
    // Algorithm alternatives (im2col; Winograd where applicable) are ranked in the same
    // list: the local search scores *how to compute* the conv, not just how to block it.
    for (const ConvSchedule& extra : EnumerateAlgoCandidates(params)) {
      candidates.push_back(extra);
    }
  }
  for (const ConvSchedule& schedule : candidates) {
    const double ms = mode == CostMode::kAnalytic
                          ? AnalyticConvMs(params, schedule, target)
                          : MeasureConvMs(params, schedule, engine);
    result.ranked.push_back(ScheduleCost{schedule, ms});
  }
  NEOCPU_CHECK(!result.ranked.empty()) << "empty schedule space for " << params.ToString();
  std::stable_sort(result.ranked.begin(), result.ranked.end(),
                   [](const ScheduleCost& a, const ScheduleCost& b) { return a.ms < b.ms; });
  auto shared = std::make_shared<const LocalSearchResult>(std::move(result));
  if (cache != nullptr) {
    cache->Insert(key, shared);
  }
  return shared;
}

LocalSearchResult LocalSearchConv(const Conv2dParams& params, const Target& target,
                                  CostMode mode, bool quick_space, ThreadEngine* engine,
                                  TuningCache* cache, bool* cache_hit, DType dtype) {
  return *LocalSearchConvShared(params, target, mode, quick_space, engine, cache,
                                cache_hit, dtype);
}

}  // namespace neocpu
