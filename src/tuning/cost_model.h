// Convolution and layout-transform cost estimation.
//
// Two modes back the local search (§3.3.1):
//  * kMeasured — run the actual NCHWc template on synthetic tensors and time it. This is
//    what the paper does ("walk through the defined space to measure the execution time
//    of all combinations"); it is exact but slow (the paper quotes ~6 hours for
//    ResNet-50's 20 workloads on an 18-core machine).
//  * kAnalytic — a calibrated machine model over the same schedule space: peak-FMA
//    baseline adjusted for vector-lane utilization, register pressure, loop overheads,
//    out_width tail fractions and cache footprints. Orders of magnitude faster; used by
//    default so compiling all 15 zoo models stays CI-friendly. Benches and tests verify
//    the two modes agree on the ranking's head.
#ifndef NEOCPU_SRC_TUNING_COST_MODEL_H_
#define NEOCPU_SRC_TUNING_COST_MODEL_H_

#include "src/core/target.h"
#include "src/kernels/conv_params.h"
#include "src/kernels/conv_schedule.h"
#include "src/kernels/dense_params.h"
#include "src/kernels/gemm_schedule.h"
#include "src/runtime/thread_engine.h"

namespace neocpu {

enum class CostMode { kAnalytic, kMeasured };

const char* CostModeName(CostMode mode);

// Single-core execution-time estimate in milliseconds.
double AnalyticConvMs(const Conv2dParams& params, const ConvSchedule& schedule,
                      const Target& target);

// Times the real kernel on deterministic synthetic tensors (min of `runs`).
double MeasureConvMs(const Conv2dParams& params, const ConvSchedule& schedule,
                     ThreadEngine* engine = nullptr, int runs = 2);

// Single-core execution-time estimate for one tuned packed-GEMM (Dense) workload under
// `schedule`: peak-FMA baseline adjusted for register-kernel vector fill, accumulator
// pressure, m/n tail fractions and the L1/L2 residency of the packed panels — the GEMM
// analogue of AnalyticConvMs. schedule.dtype == kU8 models the u8*s8 kernel (VNNI fast
// path vs the slower portable quad fallback).
double AnalyticDenseMs(const DenseParams& params, const GemmSchedule& schedule,
                       const Target& target);

// Times the real packed GEMM on deterministic synthetic operands (min of `runs`).
// B is packed outside the timed region — it is a compile-time constant in the real
// flow — while the per-call A packing is timed, exactly as execution pays it.
double MeasureDenseMs(const DenseParams& params, const GemmSchedule& schedule,
                      ThreadEngine* engine = nullptr, int runs = 2);

// Estimated milliseconds to relayout a feature map of `bytes` bytes (read + write),
// using the host's measured copy bandwidth (calibrated once per process).
double TransformMs(std::int64_t tensor_bytes);

// Estimated milliseconds for a quantize or dequantize pass over a feature map whose
// fp32 representation is `f32_bytes`: one f32-side stream plus one quarter-size s8-side
// stream, with convert overhead folded in. These are the boundary costs the global
// search charges when adjacent convs disagree on dtype (the fp32<->int8 analogue of a
// layout transform).
double QdqMs(std::int64_t f32_bytes);

// Measured host bandwidth in bytes/ms (exposed for tests/benches).
double CalibratedCopyBytesPerMs();

}  // namespace neocpu

#endif  // NEOCPU_SRC_TUNING_COST_MODEL_H_
