#include "src/tuning/schedule_space.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/kernels/conv_winograd.h"

namespace neocpu {

std::vector<std::int64_t> Factors(std::int64_t n, std::int64_t cap) {
  NEOCPU_CHECK_GT(n, 0);
  std::vector<std::int64_t> out;
  for (std::int64_t f = 1; f <= n && f <= cap; ++f) {
    if (n % f == 0) {
      out.push_back(f);
    }
  }
  return out;
}

std::vector<ConvSchedule> EnumerateSchedules(const Conv2dParams& p, const Target& t,
                                             bool quick_space) {
  const std::int64_t cap = std::min<std::int64_t>(t.MaxBlock(), kMaxChannelBlock);
  std::vector<std::int64_t> ic = Factors(p.in_c, cap);
  std::vector<std::int64_t> oc = Factors(p.out_c, cap);
  if (quick_space) {
    auto prune = [&](std::vector<std::int64_t>& v) {
      const std::int64_t lanes = t.PreferredBlock();
      std::vector<std::int64_t> keep;
      for (std::int64_t f : v) {
        if (f == lanes || f == lanes / 2 || f == 2 * lanes || f == v.back()) {
          keep.push_back(f);
        }
      }
      if (keep.empty()) {
        keep.push_back(v.back());
      }
      v = std::move(keep);
    };
    prune(ic);
    prune(oc);
  }
  std::vector<ConvSchedule> out;
  out.reserve(ic.size() * oc.size() * RegNCandidates().size() * 2);
  for (std::int64_t i : ic) {
    for (std::int64_t o : oc) {
      for (std::int64_t r : RegNCandidates()) {
        for (bool u : {true, false}) {
          out.push_back(ConvSchedule{i, o, r, u});
        }
      }
    }
  }
  return out;
}

std::vector<ConvSchedule> EnumerateAlgoCandidates(const Conv2dParams& p) {
  std::vector<ConvSchedule> out;
  out.push_back(AlgoSchedule(ConvAlgo::kIm2col));
  if (WinogradApplicable(p)) {
    out.push_back(AlgoSchedule(ConvAlgo::kWinograd));
  }
  return out;
}

std::vector<ConvSchedule> EnumerateS8Schedules(const Conv2dParams& p, const Target& t,
                                               bool quick_space, DType dtype) {
  NEOCPU_CHECK(dtype == DType::kS8 || dtype == DType::kU8);
  if (!t.int8_dot) {
    return {};
  }
  // s8 blocks run up to a full s8 vector (4x the fp32 lanes): the quantized kernel's
  // MAC density scales with the filled fraction of the vector, so the space leans on
  // the widest admissible factors.
  const std::int64_t cap = std::min<std::int64_t>(t.MaxBlockS8(), kMaxChannelBlock);
  std::vector<std::int64_t> ic = Factors(p.in_c, cap);
  std::vector<std::int64_t> oc = Factors(p.out_c, cap);
  if (quick_space) {
    auto prune = [&](std::vector<std::int64_t>& v) {
      const std::int64_t full = t.PreferredBlockS8();
      std::vector<std::int64_t> keep;
      for (std::int64_t f : v) {
        if (f == full || f == full / 2 || f == full / 4 || f == v.back()) {
          keep.push_back(f);
        }
      }
      if (keep.empty()) {
        keep.push_back(v.back());
      }
      v = std::move(keep);
    };
    prune(ic);
    prune(oc);
  }
  if (dtype == DType::kU8) {
    // u8 activations pair 4 input channels per vpdpbusd lane (and the portable tiers
    // mirror that grouping), so only quad-divisible ic blocks are admissible.
    ic.erase(std::remove_if(ic.begin(), ic.end(),
                            [](std::int64_t f) { return f % 4 != 0; }),
             ic.end());
    if (ic.empty()) {
      return {};  // no legal u8 blocking for this channel count
    }
  }
  std::vector<ConvSchedule> out;
  out.reserve(ic.size() * oc.size() * RegNCandidates().size() * 2);
  for (std::int64_t i : ic) {
    for (std::int64_t o : oc) {
      for (std::int64_t r : RegNCandidates()) {
        for (bool u : {true, false}) {
          ConvSchedule s{i, o, r, u};
          s.dtype = dtype;
          out.push_back(s);
        }
      }
    }
  }
  return out;
}

std::vector<GemmSchedule> EnumerateDenseSchedules(const DenseParams& p, const Target& t,
                                                  bool quick_space, DType dtype) {
  NEOCPU_CHECK(dtype == DType::kF32 || dtype == DType::kU8);
  if (dtype == DType::kU8 && !t.int8_dot) {
    return {};
  }
  const std::vector<std::int64_t> mrs =
      quick_space ? std::vector<std::int64_t>{4, 6, 8} : std::vector<std::int64_t>{2, 4, 6, 8};
  const std::vector<std::int64_t> nrs =
      quick_space ? std::vector<std::int64_t>{16, 32, 64}
                  : std::vector<std::int64_t>{8, 16, 32, 64};
  const std::vector<std::int64_t> mcs =
      quick_space ? std::vector<std::int64_t>{64} : std::vector<std::int64_t>{32, 64, 128};
  const std::vector<std::int64_t> ncs =
      quick_space ? std::vector<std::int64_t>{256}
                  : std::vector<std::int64_t>{128, 256, 512};
  const std::vector<std::int64_t> kcs =
      dtype == DType::kU8 ? std::vector<std::int64_t>{p.k}
      : quick_space       ? std::vector<std::int64_t>{256}
                          : std::vector<std::int64_t>{128, 256};
  std::vector<GemmSchedule> out;
  out.reserve(mrs.size() * nrs.size() * mcs.size() * ncs.size() * kcs.size());
  for (std::int64_t mr : mrs) {
    for (std::int64_t nr : nrs) {
      // Register kernels wider than the (padded) problem just redo the narrowest
      // candidate's work with more tail masking — skip all but the narrowest such.
      if (nr / 2 >= p.n && nr != nrs.front()) continue;
      if (mr / 2 >= p.m && mr != mrs.front()) continue;
      for (std::int64_t mc : mcs) {
        for (std::int64_t nc : ncs) {
          for (std::int64_t kc : kcs) {
            GemmSchedule s;
            s.mc = mc;
            s.nc = nc;
            s.kc = kc;
            s.mr = mr;
            s.nr = nr;
            s.dtype = dtype;
            out.push_back(s);
          }
        }
      }
    }
  }
  return out;
}

}  // namespace neocpu
