#include "src/tuning/global_search.h"

#include <algorithm>
#include <functional>

#include "src/base/logging.h"
#include "src/base/timer.h"
#include "src/kernels/conv_winograd.h"
#include "src/tuning/cost_model.h"

namespace neocpu {
namespace {

std::int64_t FeatureMapBytes(const std::vector<std::int64_t>& dims) {
  std::int64_t n = 1;
  for (std::int64_t d : dims) {
    n *= d;
  }
  return n * static_cast<std::int64_t>(sizeof(float));
}

// Representative producer conv of a value: the conv whose output block (oc_bn)
// determines the layout the value carries, walking back through layout-oblivious /
// layout-tolerant ops and through the *first* input of joins (add/concat adopt their
// first input's layout). Returns -1 for graph inputs / layout-dependent producers.
int RepProducer(const Graph& g, int id) {
  while (true) {
    const Node& node = g.node(id);
    switch (node.type) {
      case OpType::kConv2d:
        return id;
      case OpType::kScaleShift:
      case OpType::kBatchNorm:
      case OpType::kRelu:
      case OpType::kMaxPool:
      case OpType::kAvgPool:
      case OpType::kGlobalAvgPool:
      case OpType::kDropout:
      case OpType::kElemAdd:
      case OpType::kConcat:
        id = node.inputs[0];
        break;
      default:
        return -1;
    }
  }
}

}  // namespace

PbqpProblem GlobalProblem::ToPbqp() const {
  PbqpProblem p;
  p.node_costs.resize(options.size());
  for (std::size_t v = 0; v < options.size(); ++v) {
    for (const ScheduleCost& sc : options[v]) {
      p.node_costs[v].push_back(sc.ms);
    }
  }
  for (const LayoutEdge& e : edges) {
    PbqpProblem::Edge pe;
    pe.u = e.var_a;
    pe.v = e.var_b;
    const auto& oa = options[static_cast<std::size_t>(e.var_a)];
    const auto& ob = options[static_cast<std::size_t>(e.var_b)];
    pe.matrix.resize(oa.size() * ob.size(), 0.0);
    for (std::size_t i = 0; i < oa.size(); ++i) {
      for (std::size_t j = 0; j < ob.size(); ++j) {
        // Interface signatures combine the channel block with the execution dtype
        // (ConvSchedule::In/OutSig): NCHW-layout algorithms (Winograd, im2col: block 0)
        // pay a transform against blocked neighbours but compose for free with each
        // other and with graph inputs/outputs, and an fp32/s8 boundary costs a
        // quantize/dequantize pass charged at the same per-edge rate as a relayout
        // (both are one gather pass over the feature map).
        const std::int64_t out_sig = oa[i].schedule.OutSig();
        const std::int64_t in_sig = e.kind == LayoutEdgeKind::kProducerConsumer
                                        ? ob[j].schedule.InSig()
                                        : ob[j].schedule.OutSig();
        if (out_sig != in_sig) {
          pe.matrix[i * ob.size() + j] = e.transform_ms;
        }
      }
    }
    p.edges.push_back(std::move(pe));
  }
  return p;
}

double GlobalProblem::Evaluate(const std::vector<int>& selection) const {
  return ToPbqp().Evaluate(selection);
}

GlobalProblem ExtractGlobalProblem(const Graph& graph, const LocalSearchMap& locals) {
  GlobalProblem problem;
  std::map<int, int> var_of_conv;
  const auto consumers = graph.BuildConsumerIndex();
  std::vector<char> escapes(static_cast<std::size_t>(graph.num_nodes()), 0);
  for (int out : graph.outputs()) {
    escapes[static_cast<std::size_t>(out)] = 1;
  }
  // QuantizeGraph executes pooling natively in the integer domain, so a value "stays
  // integer" when it neither escapes nor reaches a consumer outside {conv data reads,
  // pools that themselves stay integer}. Concat also has an integer form, but it
  // additionally needs its own calibrated range and one common input dtype — unknown
  // at costing time, so it stays a (conservative) boundary here.
  std::function<bool(int)> stays_int = [&](int v) -> bool {
    if (escapes[static_cast<std::size_t>(v)] != 0) {
      return false;
    }
    for (int c : consumers[static_cast<std::size_t>(v)]) {
      const Node& cn = graph.node(c);
      if (cn.IsConv() && cn.inputs[0] == v) {
        continue;
      }
      if ((cn.type == OpType::kMaxPool || cn.type == OpType::kAvgPool) &&
          stays_int(c)) {
        continue;
      }
      return false;
    }
    return true;
  };
  for (int id = 0; id < graph.num_nodes(); ++id) {
    const Node& node = graph.node(id);
    if (!node.IsConv()) {
      continue;
    }
    const auto it = locals.find(id);
    NEOCPU_CHECK(it != locals.end()) << "missing local search result for conv " << id;

    // Boundary costs an s8 option pays regardless of its neighbours' choices: a
    // quantize pass unless the data arrives from another conv — possibly through a
    // pooling chain, which QuantizeGraph keeps in the integer domain — and a
    // dequantize pass when the output reaches any consumer that cannot stay integer
    // (non-conv non-pool ops, residual/sibling reads, graph outputs). Direct
    // conv-to-conv boundaries are the edges' job.
    double s8_boundary_ms = 0.0;
    const int data = node.inputs[0];
    int p_walk = data;
    while (graph.node(p_walk).type == OpType::kMaxPool ||
           graph.node(p_walk).type == OpType::kAvgPool) {
      p_walk = graph.node(p_walk).inputs[0];
    }
    if (!graph.node(p_walk).IsConv()) {
      s8_boundary_ms += QdqMs(FeatureMapBytes(graph.node(data).out_dims));
    }
    if (!stays_int(id)) {
      s8_boundary_ms += QdqMs(FeatureMapBytes(node.out_dims));
    }

    // One option per (dtype, algo, ic_bn, oc_bn) combination: the combination's
    // cheapest schedule. Transform costs only see the combination, so cheaper
    // same-combination schedules dominate. Winograd options are dropped for convs
    // whose fused epilogue the kernel cannot execute (residual adds); quantized
    // options are likewise dropped where int8 is illegal.
    std::vector<ScheduleCost> options;
    for (const ScheduleCost& sc : it->second->ranked) {
      if (sc.schedule.algo == ConvAlgo::kWinograd &&
          !WinogradLegal(node.attrs.conv, node.attrs.epilogue)) {
        continue;
      }
      if (sc.schedule.IsQuantized() && node.attrs.epilogue.residual_add) {
        continue;
      }
      bool seen = false;
      for (const ScheduleCost& kept : options) {
        if (kept.schedule.algo == sc.schedule.algo &&
            kept.schedule.dtype == sc.schedule.dtype &&
            kept.schedule.ic_bn == sc.schedule.ic_bn &&
            kept.schedule.oc_bn == sc.schedule.oc_bn) {
          seen = true;
          break;
        }
      }
      if (!seen) {
        ScheduleCost option = sc;
        if (option.schedule.IsQuantized()) {
          option.ms += s8_boundary_ms;
        }
        options.push_back(option);
      }
    }
    var_of_conv[id] = static_cast<int>(problem.conv_ids.size());
    problem.conv_ids.push_back(id);
    problem.options.push_back(std::move(options));
  }

  auto add_edge = [&](int conv_a, int conv_b, double ms, LayoutEdgeKind kind) {
    if (conv_a < 0 || conv_b < 0 || conv_a == conv_b) {
      return;
    }
    problem.edges.push_back(
        LayoutEdge{var_of_conv.at(conv_a), var_of_conv.at(conv_b), ms, kind});
  };

  for (int id = 0; id < graph.num_nodes(); ++id) {
    const Node& node = graph.node(id);
    if (node.IsConv()) {
      const int data = node.inputs[0];
      add_edge(RepProducer(graph, data), id,
               TransformMs(FeatureMapBytes(graph.node(data).out_dims)),
               LayoutEdgeKind::kProducerConsumer);
      if (node.attrs.epilogue.residual_add) {
        const int res = node.inputs.back();
        add_edge(RepProducer(graph, res), id,
                 TransformMs(FeatureMapBytes(graph.node(res).out_dims)),
                 LayoutEdgeKind::kSibling);
      }
    } else if (node.type == OpType::kElemAdd || node.type == OpType::kConcat) {
      const int rep0 = RepProducer(graph, node.inputs[0]);
      for (std::size_t k = 1; k < node.inputs.size(); ++k) {
        const int input = node.inputs[k];
        add_edge(rep0, RepProducer(graph, input),
                 TransformMs(FeatureMapBytes(graph.node(input).out_dims)),
                 LayoutEdgeKind::kSibling);
      }
    }
  }
  return problem;
}

namespace {

GlobalSolution MakeSolution(const GlobalProblem& problem, const std::vector<int>& selection,
                            double cost, bool exact, double seconds) {
  GlobalSolution solution;
  for (std::size_t v = 0; v < problem.conv_ids.size(); ++v) {
    solution.assignment[problem.conv_ids[v]] =
        problem.options[v][static_cast<std::size_t>(selection[v])].schedule;
  }
  solution.cost_ms = cost;
  solution.exact = exact;
  solution.solve_seconds = seconds;
  return solution;
}

}  // namespace

GlobalSolution SolveGlobalExactOnly(const GlobalProblem& problem,
                                    std::size_t max_dp_table_entries, bool* ok) {
  Timer timer;
  auto result = SolveExact(problem.ToPbqp(), max_dp_table_entries);
  if (ok != nullptr) {
    *ok = result.has_value();
  }
  if (!result.has_value()) {
    return {};
  }
  return MakeSolution(problem, result->selection, result->cost, /*exact=*/true,
                      timer.Seconds());
}

GlobalSolution SolveGlobalPbqpOnly(const GlobalProblem& problem) {
  Timer timer;
  PbqpSolution result = SolvePbqp(problem.ToPbqp());
  return MakeSolution(problem, result.selection, result.cost, /*exact=*/false,
                      timer.Seconds());
}

GlobalSolution SolveGlobal(const GlobalProblem& problem, std::size_t max_dp_table_entries) {
  bool ok = false;
  GlobalSolution exact = SolveGlobalExactOnly(problem, max_dp_table_entries, &ok);
  if (ok) {
    return exact;
  }
  return SolveGlobalPbqpOnly(problem);
}

}  // namespace neocpu
