// First-class tuning-workload identity.
//
// The paper's §3.3 search picks a schedule for one concrete convolution workload; which
// schedule wins depends on more than the conv shape. A WorkloadKey captures the full
// identity a cached search result is valid for:
//   * the convolution parameters — *including the batch size*: batch changes the
//     parallelism grain and cache footprint, so batch-1 and batch-8 are distinct
//     workloads with distinct optima;
//   * the target ISA profile the schedule space was constrained to;
//   * the cost mode (analytic model vs real measurement);
//   * the space mode (quick pruned neighbourhood vs the full §3.3.1 enumeration).
//
// Keys have a stable, human-readable text form (ToString/Parse round-trip) that is the
// on-disk representation inside a persisted TuningCache.
//
// The convolution *algorithm* (direct NCHWc / im2col / Winograd / reference) is NOT part
// of the key: one workload's search ranks all algorithms together, so the cached result
// is algorithm-tagged per schedule entry (ConvSchedule::algo) while the key stays pure
// shape identity. Epilogue-dependent legality (Winograd can't absorb a residual add) is
// filtered at selection time, which keeps cache entries shareable across fusion shapes.
#ifndef NEOCPU_SRC_TUNING_WORKLOAD_KEY_H_
#define NEOCPU_SRC_TUNING_WORKLOAD_KEY_H_

#include <string>

#include "src/core/target.h"
#include "src/kernels/conv_params.h"
#include "src/kernels/dense_params.h"
#include "src/tensor/dtype.h"
#include "src/tuning/cost_model.h"

namespace neocpu {

struct WorkloadKey {
  Conv2dParams conv;    // full workload shape, batch included (conv workloads)
  DenseParams dense;    // GEMM workload shape (dense workloads; is_dense set)
  bool is_dense = false;
  std::string target = "host";
  CostMode cost_mode = CostMode::kAnalytic;
  bool quick_space = true;
  // Execution dtype the space was searched for: the s8 schedule space (different block
  // caps, different kernel) caches under its own key, so fp32 and quantized tunings of
  // one shape coexist — exactly like distinct batches. Dense workloads use kF32 or kU8.
  DType dtype = DType::kF32;

  static WorkloadKey Of(const Conv2dParams& params, const Target& target, CostMode mode,
                        bool quick_space, DType dtype = DType::kF32) {
    WorkloadKey key;
    key.conv = params;
    key.target = target.name;
    key.cost_mode = mode;
    key.quick_space = quick_space;
    key.dtype = dtype;
    return key;
  }

  static WorkloadKey OfDense(const DenseParams& params, const Target& target,
                             CostMode mode, bool quick_space,
                             DType dtype = DType::kF32) {
    WorkloadKey key;
    key.dense = params;
    key.is_dense = true;
    key.target = target.name;
    key.cost_mode = mode;
    key.quick_space = quick_space;
    key.dtype = dtype;
    return key;
  }

  bool operator==(const WorkloadKey&) const = default;

  // Stable single-token text form, e.g.
  //   "avx512|8_64_28x28_64_3x3_1x1_1x1|analytic|quick"       (fp32; the pre-dtype form)
  //   "avx512|8_64_28x28_64_3x3_1x1_1x1|analytic|quick|s8"    (quantized)
  //   "avx512|dense:64_256_64|analytic|quick|u8"              (dense GEMM workload)
  // fp32 keys keep the historical 4-token spelling so caches persisted before the
  // quantized path still hit; dense workloads reuse the same frame with a "dense:"
  // shape token (which pre-dense parsers reject cleanly).
  std::string ToString() const;

  // Inverse of ToString. Returns false (leaving *key untouched) on malformed input.
  static bool Parse(const std::string& text, WorkloadKey* key);
};

}  // namespace neocpu

#endif  // NEOCPU_SRC_TUNING_WORKLOAD_KEY_H_
