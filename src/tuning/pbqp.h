// Partitioned Boolean Quadratic Programming.
//
// The paper reduces global layout search to the PBQP formulation used for register
// allocation (§3.3.2): every convolution is a node with a cost vector over its candidate
// schemes, and every edge carries a cost matrix (layout-transform time between scheme
// choices). Two solvers operate on the same problem structure:
//
//  * SolveExact — bucket/variable elimination over the graph (the generalization of the
//    paper's Algorithm 2 DP to DAGs). Optimal; fails cleanly when an intermediate table
//    would exceed `max_table_entries` ("the number of states can reach the order of
//    trillions", as the paper observes for SSD).
//  * SolvePbqp — the classic reduction solver: R0 (degree-0), RI (degree-1 fold),
//    RII (degree-2 merge) are optimality-preserving; RN picks the locally cheapest
//    option of a maximum-degree node. Selections are recovered by back-propagation.
//    The paper reports this heuristic reaches >= 88% of the DP optimum; a test asserts
//    the same bound on every DP-tractable zoo model.
#ifndef NEOCPU_SRC_TUNING_PBQP_H_
#define NEOCPU_SRC_TUNING_PBQP_H_

#include <cstddef>
#include <optional>
#include <vector>

namespace neocpu {

struct PbqpProblem {
  // node_costs[v][i]: cost of choosing option i for node v.
  std::vector<std::vector<double>> node_costs;
  struct Edge {
    int u = 0;
    int v = 0;
    // matrix[i * nv + j]: extra cost when u picks i and v picks j.
    std::vector<double> matrix;
  };
  std::vector<Edge> edges;

  int num_nodes() const { return static_cast<int>(node_costs.size()); }
  std::size_t NumOptions(int v) const { return node_costs[static_cast<std::size_t>(v)].size(); }
  double Evaluate(const std::vector<int>& selection) const;
};

struct PbqpSolution {
  std::vector<int> selection;  // option index per node
  double cost = 0.0;
};

std::optional<PbqpSolution> SolveExact(const PbqpProblem& problem,
                                       std::size_t max_table_entries = 1 << 22);

PbqpSolution SolvePbqp(const PbqpProblem& problem);

}  // namespace neocpu

#endif  // NEOCPU_SRC_TUNING_PBQP_H_
