#include "src/tuning/pbqp.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

#include "src/base/logging.h"

namespace neocpu {

double PbqpProblem::Evaluate(const std::vector<int>& selection) const {
  NEOCPU_CHECK_EQ(static_cast<int>(selection.size()), num_nodes());
  double total = 0.0;
  for (int v = 0; v < num_nodes(); ++v) {
    total += node_costs[static_cast<std::size_t>(v)]
                       [static_cast<std::size_t>(selection[static_cast<std::size_t>(v)])];
  }
  for (const Edge& e : edges) {
    const std::size_t nv = node_costs[static_cast<std::size_t>(e.v)].size();
    total += e.matrix[static_cast<std::size_t>(selection[static_cast<std::size_t>(e.u)]) * nv +
                      static_cast<std::size_t>(selection[static_cast<std::size_t>(e.v)])];
  }
  return total;
}

// ---------------------------------------------------------------------------
// Exact solver: variable elimination with min-sum factor tables.
// ---------------------------------------------------------------------------
namespace {

struct FactorTable {
  std::vector<int> vars;    // ascending variable ids
  std::vector<double> values;  // row-major over vars (first var slowest)
};

// Saturating product: high-degree variables (DenseNet's concat representatives, SSD)
// would overflow a naive product; saturation keeps them valid "never pick this first"
// candidates for the elimination-order heuristic.
std::size_t TableSize(const std::vector<int>& vars, const std::vector<std::size_t>& domains) {
  constexpr std::size_t kSaturated = std::numeric_limits<std::size_t>::max();
  std::size_t size = 1;
  for (int v : vars) {
    const std::size_t d = domains[static_cast<std::size_t>(v)];
    if (d != 0 && size > kSaturated / d) {
      return kSaturated;
    }
    size *= d;
  }
  return size;
}

// Decodes flat index `idx` of a table over `vars` into per-variable assignments.
void Decode(std::size_t idx, const std::vector<int>& vars,
            const std::vector<std::size_t>& domains, std::vector<int>* assign) {
  for (std::size_t k = vars.size(); k-- > 0;) {
    const std::size_t d = domains[static_cast<std::size_t>(vars[k])];
    (*assign)[static_cast<std::size_t>(vars[k])] = static_cast<int>(idx % d);
    idx /= d;
  }
}

// Flat index of a table over `vars` given the per-variable assignment.
std::size_t Encode(const std::vector<int>& vars, const std::vector<std::size_t>& domains,
                   const std::vector<int>& assign) {
  std::size_t idx = 0;
  for (int v : vars) {
    idx = idx * domains[static_cast<std::size_t>(v)] +
          static_cast<std::size_t>(assign[static_cast<std::size_t>(v)]);
  }
  return idx;
}

}  // namespace

std::optional<PbqpSolution> SolveExact(const PbqpProblem& problem,
                                       std::size_t max_table_entries) {
  const int n = problem.num_nodes();
  if (n == 0) {
    return PbqpSolution{{}, 0.0};
  }
  std::vector<std::size_t> domains(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    NEOCPU_CHECK_GT(problem.NumOptions(v), 0u);
    domains[static_cast<std::size_t>(v)] = problem.NumOptions(v);
  }

  std::vector<FactorTable> factors;
  for (int v = 0; v < n; ++v) {
    factors.push_back(FactorTable{{v}, problem.node_costs[static_cast<std::size_t>(v)]});
  }
  for (const PbqpProblem::Edge& e : problem.edges) {
    NEOCPU_CHECK_NE(e.u, e.v);
    FactorTable t;
    const std::size_t du = domains[static_cast<std::size_t>(e.u)];
    const std::size_t dv = domains[static_cast<std::size_t>(e.v)];
    if (e.u < e.v) {
      t.vars = {e.u, e.v};
      t.values = e.matrix;
    } else {
      t.vars = {e.v, e.u};
      t.values.resize(du * dv);
      for (std::size_t i = 0; i < du; ++i) {
        for (std::size_t j = 0; j < dv; ++j) {
          t.values[j * du + i] = e.matrix[i * dv + j];
        }
      }
    }
    factors.push_back(std::move(t));
  }

  struct Elimination {
    int var;
    std::vector<int> remaining_vars;  // the joined table's vars minus `var`
    std::vector<int> argmin;          // indexed like a table over remaining_vars
  };
  std::vector<Elimination> stack;
  std::set<int> alive;
  for (int v = 0; v < n; ++v) {
    alive.insert(v);
  }

  std::vector<int> scratch(static_cast<std::size_t>(n), 0);
  while (!alive.empty()) {
    // Pick the variable whose elimination creates the smallest table.
    int best_var = -1;
    std::size_t best_size = std::numeric_limits<std::size_t>::max();
    for (int v : alive) {
      std::set<int> neighborhood;
      for (const FactorTable& f : factors) {
        if (std::find(f.vars.begin(), f.vars.end(), v) != f.vars.end()) {
          neighborhood.insert(f.vars.begin(), f.vars.end());
        }
      }
      std::vector<int> joined(neighborhood.begin(), neighborhood.end());
      const std::size_t size = TableSize(joined, domains);
      if (size < best_size) {
        best_size = size;
        best_var = v;
      }
    }
    if (best_size > max_table_entries) {
      return std::nullopt;  // state space too large: caller falls back to PBQP
    }

    // Join all factors mentioning best_var.
    std::vector<FactorTable> touching;
    std::vector<FactorTable> rest;
    for (FactorTable& f : factors) {
      if (std::find(f.vars.begin(), f.vars.end(), best_var) != f.vars.end()) {
        touching.push_back(std::move(f));
      } else {
        rest.push_back(std::move(f));
      }
    }
    std::set<int> joined_set;
    for (const FactorTable& f : touching) {
      joined_set.insert(f.vars.begin(), f.vars.end());
    }
    std::vector<int> joined(joined_set.begin(), joined_set.end());
    FactorTable big;
    big.vars = joined;
    big.values.assign(TableSize(joined, domains), 0.0);
    for (std::size_t idx = 0; idx < big.values.size(); ++idx) {
      Decode(idx, joined, domains, &scratch);
      double sum = 0.0;
      for (const FactorTable& f : touching) {
        sum += f.values[Encode(f.vars, domains, scratch)];
      }
      big.values[idx] = sum;
    }

    // Minimize over best_var.
    std::vector<int> remaining;
    for (int v : joined) {
      if (v != best_var) {
        remaining.push_back(v);
      }
    }
    FactorTable reduced;
    reduced.vars = remaining;
    const std::size_t reduced_size = TableSize(remaining, domains);
    reduced.values.assign(reduced_size, std::numeric_limits<double>::infinity());
    std::vector<int> argmin(reduced_size, 0);
    for (std::size_t idx = 0; idx < big.values.size(); ++idx) {
      Decode(idx, joined, domains, &scratch);
      const std::size_t ridx = Encode(remaining, domains, scratch);
      if (big.values[idx] < reduced.values[ridx]) {
        reduced.values[ridx] = big.values[idx];
        argmin[ridx] = scratch[static_cast<std::size_t>(best_var)];
      }
    }
    stack.push_back(Elimination{best_var, remaining, std::move(argmin)});
    factors = std::move(rest);
    if (!reduced.vars.empty() || factors.empty()) {
      factors.push_back(std::move(reduced));
    } else {
      // Scalar residue: keep it so the final cost is exact.
      factors.push_back(std::move(reduced));
    }
    alive.erase(best_var);
  }

  double total = 0.0;
  for (const FactorTable& f : factors) {
    NEOCPU_CHECK(f.vars.empty());
    total += f.values.empty() ? 0.0 : f.values[0];
  }

  // Back-substitute selections in reverse elimination order.
  PbqpSolution solution;
  solution.selection.assign(static_cast<std::size_t>(n), 0);
  for (std::size_t k = stack.size(); k-- > 0;) {
    const Elimination& e = stack[k];
    const std::size_t ridx = Encode(e.remaining_vars, domains, solution.selection);
    solution.selection[static_cast<std::size_t>(e.var)] = e.argmin[ridx];
  }
  solution.cost = total;
  return solution;
}

// ---------------------------------------------------------------------------
// Heuristic reduction solver (R0 / RI / RII / RN) with back-propagation.
// ---------------------------------------------------------------------------
namespace {

struct WorkEdge {
  int u, v;
  std::vector<double> matrix;  // [opt_u * dv + opt_v]
  bool alive = true;
};

struct Reduction {
  enum Kind { kFixed, kDegreeOne, kDegreeTwo } kind = kFixed;
  int var = -1;
  int fixed_choice = 0;                // kFixed
  int u = -1, u2 = -1;                 // neighbors for kDegreeOne / kDegreeTwo
  std::vector<int> choice_by_u;        // kDegreeOne: best var-option per u option
  std::vector<int> choice_by_u1u2;     // kDegreeTwo: [opt_u * d_u2 + opt_u2]
};

}  // namespace

PbqpSolution SolvePbqp(const PbqpProblem& problem) {
  const int n = problem.num_nodes();
  std::vector<std::vector<double>> costs = problem.node_costs;
  std::vector<WorkEdge> edges;
  // Merge parallel edges up front.
  std::map<std::pair<int, int>, int> edge_index;
  for (const PbqpProblem::Edge& e : problem.edges) {
    int u = e.u, v = e.v;
    std::vector<double> m = e.matrix;
    const std::size_t du = costs[static_cast<std::size_t>(e.u)].size();
    const std::size_t dv = costs[static_cast<std::size_t>(e.v)].size();
    if (u > v) {
      std::vector<double> t(m.size());
      for (std::size_t i = 0; i < du; ++i) {
        for (std::size_t j = 0; j < dv; ++j) {
          t[j * du + i] = m[i * dv + j];
        }
      }
      std::swap(u, v);
      m = std::move(t);
    }
    auto it = edge_index.find({u, v});
    if (it != edge_index.end()) {
      WorkEdge& we = edges[static_cast<std::size_t>(it->second)];
      for (std::size_t i = 0; i < m.size(); ++i) {
        we.matrix[i] += m[i];
      }
    } else {
      edge_index[{u, v}] = static_cast<int>(edges.size());
      edges.push_back(WorkEdge{u, v, std::move(m), true});
    }
  }

  std::vector<bool> node_alive(static_cast<std::size_t>(n), true);
  auto degree = [&](int v) {
    int d = 0;
    for (const WorkEdge& e : edges) {
      if (e.alive && (e.u == v || e.v == v)) {
        ++d;
      }
    }
    return d;
  };
  auto live_edges_of = [&](int v) {
    std::vector<int> out;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (edges[i].alive && (edges[i].u == v || edges[i].v == v)) {
        out.push_back(static_cast<int>(i));
      }
    }
    return out;
  };
  // Adds matrix m (indexed [opt_a * db + opt_b]) as an edge a-b, merging if present.
  auto add_edge = [&](int a, int b, std::vector<double> m) {
    const std::size_t da = costs[static_cast<std::size_t>(a)].size();
    const std::size_t db = costs[static_cast<std::size_t>(b)].size();
    if (a > b) {
      std::vector<double> t(m.size());
      for (std::size_t i = 0; i < da; ++i) {
        for (std::size_t j = 0; j < db; ++j) {
          t[j * da + i] = m[i * db + j];
        }
      }
      std::swap(a, b);
      m = std::move(t);
    }
    for (WorkEdge& e : edges) {
      if (e.alive && e.u == a && e.v == b) {
        for (std::size_t i = 0; i < m.size(); ++i) {
          e.matrix[i] += m[i];
        }
        return;
      }
    }
    edges.push_back(WorkEdge{a, b, std::move(m), true});
  };
  // Edge cost oriented so `v` is the queried variable.
  auto edge_cost = [&](const WorkEdge& e, int v, std::size_t opt_v, std::size_t opt_other) {
    const std::size_t dv = costs[static_cast<std::size_t>(e.v)].size();
    if (e.u == v) {
      return e.matrix[opt_v * dv + opt_other];
    }
    return e.matrix[opt_other * dv + opt_v];
  };

  std::vector<Reduction> stack;
  int remaining = n;
  while (remaining > 0) {
    // Prefer optimality-preserving reductions: degree 0, then 1, then 2.
    int pick = -1;
    int pick_degree = std::numeric_limits<int>::max();
    for (int v = 0; v < n; ++v) {
      if (!node_alive[static_cast<std::size_t>(v)]) {
        continue;
      }
      const int d = degree(v);
      if (d < pick_degree) {
        pick_degree = d;
        pick = v;
      }
    }
    NEOCPU_CHECK_GE(pick, 0);
    auto& cv = costs[static_cast<std::size_t>(pick)];

    if (pick_degree == 0) {
      Reduction r;
      r.kind = Reduction::kFixed;
      r.var = pick;
      r.fixed_choice = static_cast<int>(
          std::min_element(cv.begin(), cv.end()) - cv.begin());
      stack.push_back(r);
      node_alive[static_cast<std::size_t>(pick)] = false;
      --remaining;
      continue;
    }

    if (pick_degree == 1) {
      const int eid = live_edges_of(pick)[0];
      WorkEdge& e = edges[static_cast<std::size_t>(eid)];
      const int u = e.u == pick ? e.v : e.u;
      auto& cu = costs[static_cast<std::size_t>(u)];
      Reduction r;
      r.kind = Reduction::kDegreeOne;
      r.var = pick;
      r.u = u;
      r.choice_by_u.resize(cu.size());
      for (std::size_t j = 0; j < cu.size(); ++j) {
        double best = std::numeric_limits<double>::infinity();
        int best_i = 0;
        for (std::size_t i = 0; i < cv.size(); ++i) {
          const double c = cv[i] + edge_cost(e, pick, i, j);
          if (c < best) {
            best = c;
            best_i = static_cast<int>(i);
          }
        }
        cu[j] += best;
        r.choice_by_u[j] = best_i;
      }
      e.alive = false;
      stack.push_back(std::move(r));
      node_alive[static_cast<std::size_t>(pick)] = false;
      --remaining;
      continue;
    }

    if (pick_degree == 2) {
      const std::vector<int> eids = live_edges_of(pick);
      WorkEdge& e1 = edges[static_cast<std::size_t>(eids[0])];
      WorkEdge& e2 = edges[static_cast<std::size_t>(eids[1])];
      const int u1 = e1.u == pick ? e1.v : e1.u;
      const int u2 = e2.u == pick ? e2.v : e2.u;
      const std::size_t d1 = costs[static_cast<std::size_t>(u1)].size();
      const std::size_t d2 = costs[static_cast<std::size_t>(u2)].size();
      Reduction r;
      r.kind = Reduction::kDegreeTwo;
      r.var = pick;
      r.u = u1;
      r.u2 = u2;
      r.choice_by_u1u2.resize(d1 * d2);
      std::vector<double> m(d1 * d2, 0.0);
      for (std::size_t j = 0; j < d1; ++j) {
        for (std::size_t k = 0; k < d2; ++k) {
          double best = std::numeric_limits<double>::infinity();
          int best_i = 0;
          for (std::size_t i = 0; i < cv.size(); ++i) {
            const double c = cv[i] + edge_cost(e1, pick, i, j) + edge_cost(e2, pick, i, k);
            if (c < best) {
              best = c;
              best_i = static_cast<int>(i);
            }
          }
          m[j * d2 + k] = best;
          r.choice_by_u1u2[j * d2 + k] = best_i;
        }
      }
      e1.alive = false;
      e2.alive = false;
      if (u1 == u2) {
        // Both edges reach the same neighbor: folds into its cost vector diagonal.
        auto& cu = costs[static_cast<std::size_t>(u1)];
        for (std::size_t j = 0; j < d1; ++j) {
          cu[j] += m[j * d2 + j];
        }
      } else {
        add_edge(u1, u2, std::move(m));
      }
      stack.push_back(std::move(r));
      node_alive[static_cast<std::size_t>(pick)] = false;
      --remaining;
      continue;
    }

    // RN heuristic: fix the maximum-degree node to its locally cheapest option.
    int rn = -1;
    int rn_degree = -1;
    for (int v = 0; v < n; ++v) {
      if (node_alive[static_cast<std::size_t>(v)]) {
        const int d = degree(v);
        if (d > rn_degree) {
          rn_degree = d;
          rn = v;
        }
      }
    }
    auto& crn = costs[static_cast<std::size_t>(rn)];
    const std::vector<int> eids = live_edges_of(rn);
    double best = std::numeric_limits<double>::infinity();
    int best_i = 0;
    for (std::size_t i = 0; i < crn.size(); ++i) {
      double c = crn[i];
      for (int eid : eids) {
        const WorkEdge& e = edges[static_cast<std::size_t>(eid)];
        const int other = e.u == rn ? e.v : e.u;
        double mn = std::numeric_limits<double>::infinity();
        for (std::size_t j = 0; j < costs[static_cast<std::size_t>(other)].size(); ++j) {
          mn = std::min(mn, edge_cost(e, rn, i, j));
        }
        c += mn;
      }
      if (c < best) {
        best = c;
        best_i = static_cast<int>(i);
      }
    }
    for (int eid : eids) {
      WorkEdge& e = edges[static_cast<std::size_t>(eid)];
      const int other = e.u == rn ? e.v : e.u;
      auto& co = costs[static_cast<std::size_t>(other)];
      for (std::size_t j = 0; j < co.size(); ++j) {
        co[j] += edge_cost(e, rn, static_cast<std::size_t>(best_i), j);
      }
      e.alive = false;
    }
    Reduction r;
    r.kind = Reduction::kFixed;
    r.var = rn;
    r.fixed_choice = best_i;
    stack.push_back(r);
    node_alive[static_cast<std::size_t>(rn)] = false;
    --remaining;
  }

  PbqpSolution solution;
  solution.selection.assign(static_cast<std::size_t>(n), 0);
  for (std::size_t k = stack.size(); k-- > 0;) {
    const Reduction& r = stack[k];
    int& sel = solution.selection[static_cast<std::size_t>(r.var)];
    switch (r.kind) {
      case Reduction::kFixed:
        sel = r.fixed_choice;
        break;
      case Reduction::kDegreeOne:
        sel = r.choice_by_u[static_cast<std::size_t>(
            solution.selection[static_cast<std::size_t>(r.u)])];
        break;
      case Reduction::kDegreeTwo: {
        const std::size_t d2 = problem.node_costs[static_cast<std::size_t>(r.u2)].size();
        sel = r.choice_by_u1u2[static_cast<std::size_t>(
                                   solution.selection[static_cast<std::size_t>(r.u)]) *
                                   d2 +
                               static_cast<std::size_t>(
                                   solution.selection[static_cast<std::size_t>(r.u2)])];
        break;
      }
    }
  }
  solution.cost = problem.Evaluate(solution.selection);
  return solution;
}

}  // namespace neocpu
