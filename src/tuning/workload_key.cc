#include "src/tuning/workload_key.h"

#include "src/base/string_util.h"

namespace neocpu {

std::string WorkloadKey::ToString() const {
  const std::string shape = is_dense ? dense.CacheKey() : conv.CacheKey();
  std::string text = StrFormat("%s|%s|%s|%s", target.c_str(), shape.c_str(),
                               CostModeName(cost_mode), quick_space ? "quick" : "full");
  if (dtype != DType::kF32) {
    // fp32 keys keep the historical 4-token form (pre-dtype caches keep hitting); only
    // quantized keys carry the fifth token.
    text += StrFormat("|%s", DTypeName(dtype));
  }
  return text;
}

bool WorkloadKey::Parse(const std::string& text, WorkloadKey* key) {
  // target|conv-cache-key|mode|space[|dtype] — target names never contain '|'.
  const std::size_t a = text.find('|');
  const std::size_t b = a == std::string::npos ? a : text.find('|', a + 1);
  const std::size_t c = b == std::string::npos ? b : text.find('|', b + 1);
  if (c == std::string::npos) {
    return false;
  }
  const std::size_t d = text.find('|', c + 1);
  if (d != std::string::npos && text.find('|', d + 1) != std::string::npos) {
    return false;
  }
  WorkloadKey parsed;
  parsed.target = text.substr(0, a);
  const std::string conv_text = text.substr(a + 1, b - a - 1);
  const std::string mode_text = text.substr(b + 1, c - b - 1);
  const std::string space_text =
      d == std::string::npos ? text.substr(c + 1) : text.substr(c + 1, d - c - 1);
  if (d != std::string::npos) {
    const std::string dtype_text = text.substr(d + 1);
    if (dtype_text == "s8") {
      parsed.dtype = DType::kS8;
    } else if (dtype_text == "u8") {
      parsed.dtype = DType::kU8;
    } else {
      return false;  // f32 keys never spell the dtype token
    }
  }

  if (conv_text.rfind("dense:", 0) == 0) {
    if (!DenseParams::ParseCacheKey(conv_text, &parsed.dense)) {
      return false;
    }
    parsed.is_dense = true;
  } else if (!Conv2dParams::ParseCacheKey(conv_text, &parsed.conv)) {
    return false;
  }

  if (mode_text == "analytic") {
    parsed.cost_mode = CostMode::kAnalytic;
  } else if (mode_text == "measured") {
    parsed.cost_mode = CostMode::kMeasured;
  } else {
    return false;
  }
  if (space_text == "quick") {
    parsed.quick_space = true;
  } else if (space_text == "full") {
    parsed.quick_space = false;
  } else {
    return false;
  }
  if (parsed.target.empty()) {
    return false;
  }
  *key = std::move(parsed);
  return true;
}

}  // namespace neocpu
