#include "src/runtime/thread_engine.h"

#include <algorithm>

namespace neocpu {

void ParallelFor(ThreadEngine& engine, std::int64_t total,
                 const std::function<void(std::int64_t, std::int64_t)>& body) {
  if (total <= 0) {
    return;
  }
  const int workers = std::max(1, engine.NumWorkers());
  const std::int64_t chunks = std::min<std::int64_t>(workers, total);
  engine.ParallelRun(static_cast<int>(chunks), [&](int task, int num_tasks) {
    const std::int64_t begin = total * task / num_tasks;
    const std::int64_t end = total * (task + 1) / num_tasks;
    if (begin < end) {
      body(begin, end);
    }
  });
}

}  // namespace neocpu
