// Reusable, pre-faulted execution arenas.
//
// The memory planner (core/memory_plan) decides at compile time where every
// intermediate tensor and per-op workspace of a graph lives inside one contiguous
// block; this module supplies that block at runtime. An Arena is a SIMD-aligned,
// grow-only buffer whose pages are touched at allocation time, so steady-state
// inference never pays malloc, free, or first-touch page faults. Arenas are reused two
// ways:
//   * the serving executor pool keeps one warm arena per pool worker (one per core
//     partition), so the pages a partition's kernels write stay resident and local to
//     the cores that touch them across requests;
//   * everything else leases from the process-wide ArenaPool, a thread-safe free list
//     that grows to the peak concurrency of planned Executor::Run calls and then stops
//     allocating entirely.
#ifndef NEOCPU_SRC_RUNTIME_ARENA_POOL_H_
#define NEOCPU_SRC_RUNTIME_ARENA_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/base/align.h"

namespace neocpu {

// One aligned, grow-only scratch block. Not thread-safe: an arena serves one
// Executor::Run at a time (the pool and the per-worker ownership both guarantee this).
class Arena {
 public:
  Arena() = default;
  explicit Arena(std::size_t bytes) { Reserve(bytes); }
  ~Arena();  // returns its footprint to the process-wide arena-bytes gauge
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Ensures capacity for `bytes`; newly mapped pages are pre-faulted (written once) so
  // kernels never take a first-touch fault on the hot path. Contents are scratch and
  // are NOT preserved across a growing Reserve. When a home node is set, new pages are
  // mbind-ed to it (best effort) before the pre-fault, so the arena is node-local even
  // if a foreign thread happens to do the growing.
  void Reserve(std::size_t bytes);

  // Declares which NUMA node this arena's pages should live on. -1 (the default)
  // means unbound: placement falls to first-touch by whichever thread Reserves —
  // which for the serving pool's per-worker arenas is already the partition's own
  // pinned thread. Setting a node additionally feeds the per-node arena-bytes gauge
  // and arms the mbind in Reserve. Set before the first Reserve.
  void set_home_node(int node) { home_node_ = node; }
  int home_node() const { return home_node_; }

  float* data() { return reinterpret_cast<float*>(storage_.get()); }
  std::size_t capacity_bytes() const { return capacity_; }

 private:
  AlignedPtr<unsigned char> storage_;
  std::size_t capacity_ = 0;
  int home_node_ = -1;
  int accounted_node_ = -1;  // node whose gauge currently holds capacity_ bytes
};

struct ArenaPoolStats {
  std::uint64_t acquired = 0;  // total Acquire calls
  std::uint64_t created = 0;   // Acquires that had to build a fresh arena
  std::size_t pooled = 0;      // arenas currently idle in the free list
};

// Thread-safe LIFO free list of arenas. LIFO keeps the most-recently-used (hottest)
// arena cycling under steady load while extra arenas created during a concurrency burst
// go cold at the bottom.
class ArenaPool {
 public:
  ArenaPool() = default;
  ArenaPool(const ArenaPool&) = delete;
  ArenaPool& operator=(const ArenaPool&) = delete;

  // Never returns null: reuses a pooled arena (grown to `min_bytes` if needed) or
  // creates one.
  std::unique_ptr<Arena> Acquire(std::size_t min_bytes);
  void Release(std::unique_ptr<Arena> arena);

  ArenaPoolStats Stats() const;
  void Clear();  // drops all idle arenas (tests; memory-pressure response)

  // The process-wide pool used by planned Executor::Run calls that were not handed an
  // explicit arena.
  static ArenaPool& Global();

 private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Arena>> free_;
  std::uint64_t acquired_ = 0;
  std::uint64_t created_ = 0;
};

// RAII handle used by the executor: borrows a caller-supplied arena when one is given
// (the serving pool's per-partition warm arena), otherwise leases from a pool and
// returns the arena on destruction.
class ArenaLease {
 public:
  // Exactly one of `external` / `pool` is used: external wins when non-null.
  ArenaLease(Arena* external, ArenaPool* pool, std::size_t min_bytes);
  ~ArenaLease();
  ArenaLease(const ArenaLease&) = delete;
  ArenaLease& operator=(const ArenaLease&) = delete;

  float* data() { return arena_->data(); }

 private:
  Arena* arena_ = nullptr;            // whichever arena backs this lease
  ArenaPool* pool_ = nullptr;         // non-null only for pooled leases
  std::unique_ptr<Arena> owned_;      // the pooled arena, returned in ~ArenaLease
};

}  // namespace neocpu

#endif  // NEOCPU_SRC_RUNTIME_ARENA_POOL_H_
