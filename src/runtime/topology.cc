#include "src/runtime/topology.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <thread>

#ifdef __linux__
#include <dirent.h>
#include <pthread.h>
#include <sched.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "src/base/cpu_info.h"

namespace neocpu {
namespace {

// First line of a sysfs attribute file, without the trailing newline. Empty when the
// file is missing or unreadable — every caller treats that as "attribute absent".
std::string ReadSysfsFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return "";
  }
  std::string line;
  std::getline(in, line);
  return line;
}

bool ReadSysfsInt(const std::string& path, int* out) {
  const std::string text = ReadSysfsFile(path);
  if (text.empty()) {
    return false;
  }
  try {
    *out = std::stoi(text);
  } catch (...) {
    return false;
  }
  return true;
}

// Directory entries matching `prefix` + decimal suffix ("cpu17", "node1"), as the
// parsed suffixes, ascending. Empty when the directory is missing.
std::vector<int> ListNumberedEntries(const std::string& dir, const std::string& prefix) {
  std::vector<int> ids;
#ifdef __linux__
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) {
    return ids;
  }
  while (dirent* entry = readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    bool digits = true;
    for (std::size_t i = prefix.size(); i < name.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(name[i]))) {
        digits = false;
        break;
      }
    }
    if (digits) {
      ids.push_back(std::stoi(name.substr(prefix.size())));
    }
  }
  closedir(d);
  std::sort(ids.begin(), ids.end());
#else
  (void)dir;
  (void)prefix;
#endif
  return ids;
}

}  // namespace

std::vector<int> ParseCpuList(const std::string& text) {
  std::vector<int> cpus;
  std::stringstream stream(text);
  std::string chunk;
  while (std::getline(stream, chunk, ',')) {
    // Trim whitespace; sysfs lists are tight but fixture files may not be.
    const std::size_t begin = chunk.find_first_not_of(" \t\r\n");
    const std::size_t end = chunk.find_last_not_of(" \t\r\n");
    if (begin == std::string::npos) {
      continue;
    }
    chunk = chunk.substr(begin, end - begin + 1);
    const std::size_t dash = chunk.find('-');
    try {
      if (dash == std::string::npos) {
        cpus.push_back(std::stoi(chunk));
      } else {
        const int lo = std::stoi(chunk.substr(0, dash));
        const int hi = std::stoi(chunk.substr(dash + 1));
        for (int c = lo; c <= hi; ++c) {
          cpus.push_back(c);
        }
      }
    } catch (...) {
      // Malformed chunk: skip it, keep whatever else parses.
    }
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

CpuTopology CpuTopology::FromSysfs(const std::string& sysfs_root) {
  CpuTopology topo;
  const std::string cpu_dir = sysfs_root + "/devices/system/cpu";
  const std::vector<int> cpu_ids = ListNumberedEntries(cpu_dir, "cpu");
  if (cpu_ids.empty()) {
    return topo;
  }

  // Which cpus are online: the global mask when present, else every enumerated cpu
  // (kernels always expose the file, but fixture trees may omit it).
  std::set<int> online(cpu_ids.begin(), cpu_ids.end());
  const std::string online_text = ReadSysfsFile(cpu_dir + "/online");
  if (!online_text.empty()) {
    const std::vector<int> list = ParseCpuList(online_text);
    online = std::set<int>(list.begin(), list.end());
  }

  for (int id : cpu_ids) {
    const std::string base = cpu_dir + "/cpu" + std::to_string(id);
    LogicalCpu cpu;
    cpu.id = id;
    cpu.online = online.count(id) > 0;
    if (!ReadSysfsInt(base + "/topology/physical_package_id", &cpu.package)) {
      cpu.package = 0;
    }
    if (!ReadSysfsInt(base + "/topology/core_id", &cpu.core)) {
      cpu.core = id;  // no core info: every cpu is its own core (no HT detected)
    }
    // Hyperthread detection: the smallest ONLINE sibling of a core is the primary;
    // the rest are HT siblings the planner only uses once primaries run out.
    std::string siblings_text = ReadSysfsFile(base + "/topology/core_cpus_list");
    if (siblings_text.empty()) {
      siblings_text = ReadSysfsFile(base + "/topology/thread_siblings_list");
    }
    cpu.primary = true;
    if (!siblings_text.empty()) {
      for (int sibling : ParseCpuList(siblings_text)) {
        if (sibling < id && online.count(sibling) > 0) {
          cpu.primary = false;
          break;
        }
      }
    }
    // LLC domain: the smallest cpu sharing the last-level cache. index3 (L3) when
    // present, else index2 — matching how cpu_info sizes the caches.
    std::string llc_text = ReadSysfsFile(base + "/cache/index3/shared_cpu_list");
    if (llc_text.empty()) {
      llc_text = ReadSysfsFile(base + "/cache/index2/shared_cpu_list");
    }
    if (!llc_text.empty()) {
      const std::vector<int> shared = ParseCpuList(llc_text);
      cpu.llc = shared.empty() ? id : shared.front();
    } else {
      cpu.llc = cpu.package;  // no cache info: assume one LLC per socket
    }
    topo.cpus_.push_back(cpu);
  }

  // NUMA membership. A missing node directory (CONFIG_NUMA=n) means one node.
  const std::string node_dir = sysfs_root + "/devices/system/node";
  bool any_node = false;
  for (int node_id : ListNumberedEntries(node_dir, "node")) {
    const std::string cpulist =
        ReadSysfsFile(node_dir + "/node" + std::to_string(node_id) + "/cpulist");
    if (cpulist.empty()) {
      continue;  // memory-only node: no cpus to plan over
    }
    any_node = true;
    for (int cpu : ParseCpuList(cpulist)) {
      for (LogicalCpu& record : topo.cpus_) {
        if (record.id == cpu) {
          record.node = node_id;
        }
      }
    }
  }
  if (!any_node) {
    for (LogicalCpu& record : topo.cpus_) {
      record.node = 0;
    }
  }

  topo.RebuildNodes();
  return topo;
}

CpuTopology CpuTopology::SingleNode(int num_cpus) {
  CpuTopology topo;
  if (num_cpus < 1) {
    num_cpus = 1;
  }
  topo.cpus_.reserve(static_cast<std::size_t>(num_cpus));
  for (int id = 0; id < num_cpus; ++id) {
    LogicalCpu cpu;
    cpu.id = id;
    cpu.core = id;
    cpu.llc = 0;
    topo.cpus_.push_back(cpu);
  }
  topo.RebuildNodes();
  return topo;
}

void CpuTopology::RebuildNodes() {
  nodes_.clear();
  std::map<int, TopologyNode> by_id;
  for (const LogicalCpu& cpu : cpus_) {
    if (!cpu.online) {
      continue;
    }
    TopologyNode& node = by_id[cpu.node];
    node.id = cpu.node;
    node.cpus.push_back(cpu.id);
    if (cpu.primary) {
      node.primary_cpus.push_back(cpu.id);
    }
  }
  nodes_.reserve(by_id.size());
  for (auto& [id, node] : by_id) {
    std::sort(node.cpus.begin(), node.cpus.end());
    std::sort(node.primary_cpus.begin(), node.primary_cpus.end());
    nodes_.push_back(std::move(node));
  }
}

int CpuTopology::num_online_cpus() const {
  int count = 0;
  for (const LogicalCpu& cpu : cpus_) {
    count += cpu.online ? 1 : 0;
  }
  return count;
}

int CpuTopology::num_primary_cpus() const {
  int count = 0;
  for (const LogicalCpu& cpu : cpus_) {
    count += (cpu.online && cpu.primary) ? 1 : 0;
  }
  return count;
}

int CpuTopology::num_packages() const {
  std::set<int> packages;
  for (const LogicalCpu& cpu : cpus_) {
    if (cpu.online) {
      packages.insert(cpu.package);
    }
  }
  return static_cast<int>(packages.size());
}

int CpuTopology::NodeOfCpu(int cpu) const {
  for (const LogicalCpu& record : cpus_) {
    if (record.id == cpu) {
      return record.online ? record.node : -1;
    }
  }
  return -1;
}

int CpuTopology::FirstCpuOfNode(int node) const {
  for (const TopologyNode& record : nodes_) {
    if (record.id == node) {
      return record.cpus.empty() ? -1 : record.cpus.front();
    }
  }
  return -1;
}

CpuTopology CpuTopology::WithoutCpus(const std::vector<int>& removed) const {
  const std::set<int> gone(removed.begin(), removed.end());
  CpuTopology out;
  out.cpus_ = cpus_;
  for (LogicalCpu& cpu : out.cpus_) {
    if (gone.count(cpu.id) > 0) {
      cpu.online = false;
    }
  }
  // A primary whose cpu was removed promotes its smallest remaining sibling, so the
  // planner still sees one primary per surviving core.
  std::map<std::pair<int, int>, int> first_of_core;  // (package, core) -> smallest cpu
  for (const LogicalCpu& cpu : out.cpus_) {
    if (!cpu.online) {
      continue;
    }
    auto key = std::make_pair(cpu.package, cpu.core);
    auto it = first_of_core.find(key);
    if (it == first_of_core.end() || cpu.id < it->second) {
      first_of_core[key] = cpu.id;
    }
  }
  for (LogicalCpu& cpu : out.cpus_) {
    if (cpu.online) {
      cpu.primary = first_of_core[{cpu.package, cpu.core}] == cpu.id;
    }
  }
  out.RebuildNodes();
  return out;
}

const CpuTopology& HostTopology() {
  static const CpuTopology* topo = [] {
    CpuTopology parsed = CpuTopology::FromSysfs("/sys");
    if (parsed.cpus().empty() || parsed.num_online_cpus() < 1) {
      parsed = CpuTopology::SingleNode(HostCpuInfo().physical_cores);
    }
    return new CpuTopology(std::move(parsed));
  }();
  return *topo;
}

bool BindCurrentThreadToCpu(int cpu) {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % CPU_SETSIZE, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

bool TryBindMemoryToNode(void* addr, std::size_t len, int node) {
#if defined(__linux__) && defined(SYS_mbind)
  if (addr == nullptr || len == 0 || node < 0) {
    return false;
  }
  const long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) {
    return false;
  }
  // mbind wants a page-aligned range; widen to the enclosing pages.
  const std::uintptr_t raw = reinterpret_cast<std::uintptr_t>(addr);
  const std::uintptr_t begin = raw & ~static_cast<std::uintptr_t>(page - 1);
  const std::uintptr_t end =
      (raw + len + static_cast<std::uintptr_t>(page - 1)) &
      ~static_cast<std::uintptr_t>(page - 1);
  constexpr int kMpolPreferred = 1;  // numaif.h MPOL_PREFERRED, without libnuma
  constexpr std::size_t kMaskBits = 1024;
  unsigned long mask[kMaskBits / (8 * sizeof(unsigned long))] = {0};
  if (static_cast<std::size_t>(node) >= kMaskBits) {
    return false;
  }
  mask[static_cast<std::size_t>(node) / (8 * sizeof(unsigned long))] |=
      1ul << (static_cast<std::size_t>(node) % (8 * sizeof(unsigned long)));
  return syscall(SYS_mbind, reinterpret_cast<void*>(begin), end - begin, kMpolPreferred,
                 mask, kMaskBits + 1, 0u) == 0;
#else
  (void)addr;
  (void)len;
  (void)node;
  return false;
#endif
}

}  // namespace neocpu
