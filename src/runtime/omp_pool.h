// OpenMP-style fork-join pool used as the multi-threading baseline (Figure 4).
//
// Models the structure of a classic OpenMP runtime with a passive wait policy: a single
// shared mutex + condition variable pair through which every parallel region wakes the
// team and through which every worker reports completion. The per-region wake/park round
// trip is exactly the "overhead of OpenMP to launch and suppress threads before and
// after a region" the paper measures against its custom pool.
#ifndef NEOCPU_SRC_RUNTIME_OMP_POOL_H_
#define NEOCPU_SRC_RUNTIME_OMP_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/runtime/thread_engine.h"

namespace neocpu {

class OmpStylePool final : public ThreadEngine {
 public:
  explicit OmpStylePool(int num_workers = 0);
  ~OmpStylePool() override;

  OmpStylePool(const OmpStylePool&) = delete;
  OmpStylePool& operator=(const OmpStylePool&) = delete;

  void ParallelRun(int num_tasks, const std::function<void(int, int)>& fn) override;
  int NumWorkers() const override { return num_workers_; }
  const char* Name() const override { return "omp-style"; }

 private:
  void WorkerLoop(int worker_index);

  int num_workers_ = 1;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int, int)>* fn_ = nullptr;
  int region_num_tasks_ = 0;
  int next_task_ = 0;
  int outstanding_ = 0;
  std::uint64_t region_epoch_ = 0;
  bool shutdown_ = false;
};

}  // namespace neocpu

#endif  // NEOCPU_SRC_RUNTIME_OMP_POOL_H_
