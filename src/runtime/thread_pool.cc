#include "src/runtime/thread_pool.h"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "src/base/cpu_info.h"

namespace neocpu {
namespace {

// Best-effort pinning of the current thread to one core; failures are ignored (e.g.
// when the process is already restricted to a subset of cores).
void BindCurrentThreadToCore(int core) {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core % CPU_SETSIZE, &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)core;
#endif
}

}  // namespace

NeoThreadPool::NeoThreadPool(int num_workers, bool bind_threads, int core_offset,
                             std::vector<int> bind_cpus)
    : bind_threads_(bind_threads),
      core_offset_(core_offset),
      bind_cpus_(std::move(bind_cpus)) {
  num_workers_ = num_workers > 0 ? num_workers : HostCpuInfo().physical_cores;
  workers_.reserve(static_cast<std::size_t>(num_workers_));
  for (int i = 0; i < num_workers_; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  if (bind_threads_) {
    BindCurrentThreadToCore(BindCpuOf(0));
  }
  for (int i = 1; i < num_workers_; ++i) {
    workers_[static_cast<std::size_t>(i)]->thread = std::thread([this, i] { WorkerLoop(i); });
  }
}

NeoThreadPool::~NeoThreadPool() {
  shutdown_.store(true, std::memory_order_release);
  for (int i = 1; i < num_workers_; ++i) {
    auto& w = *workers_[static_cast<std::size_t>(i)];
    if (w.thread.joinable()) {
      w.thread.join();
    }
  }
}

void NeoThreadPool::RunTask(const Task& task) { (*task.fn)(task.task_index, task.num_tasks); }

int NeoThreadPool::BindCpuOf(int worker_index) const {
  if (worker_index < static_cast<int>(bind_cpus_.size())) {
    return bind_cpus_[static_cast<std::size_t>(worker_index)];
  }
  return core_offset_ + worker_index;
}

void NeoThreadPool::WorkerLoop(int worker_index) {
  if (bind_threads_) {
    BindCurrentThreadToCore(BindCpuOf(worker_index));
  }
  auto& queue = workers_[static_cast<std::size_t>(worker_index)]->queue;
  int idle_spins = 0;
  while (!shutdown_.load(std::memory_order_acquire)) {
    Task task;
    if (queue.TryPop(task)) {
      idle_spins = 0;
      RunTask(task);
      pending_.fetch_sub(1, std::memory_order_acq_rel);
    } else if (++idle_spins < 4096) {
      // Spin: the common case between two back-to-back parallel regions.
    } else {
      std::this_thread::yield();
    }
  }
}

void NeoThreadPool::ParallelRun(int num_tasks, const std::function<void(int, int)>& fn) {
  if (num_tasks <= 0) {
    return;
  }
  if (num_tasks == 1 || num_workers_ == 1) {
    for (int i = 0; i < num_tasks; ++i) {
      fn(i, num_tasks);
    }
    return;
  }

  // Fork: hand tasks 1..n-1 to workers round-robin; task 0 runs on this thread.
  int dispatched = 0;
  for (int t = 1; t < num_tasks; ++t) {
    Task task{&fn, t, num_tasks, 0};
    int target = 1 + (t - 1) % (num_workers_ - 1);
    if (workers_[static_cast<std::size_t>(target)]->queue.TryPush(task)) {
      ++dispatched;
    } else {
      // Queue full (more tasks than slots): run inline rather than block.
      fn(t, num_tasks);
    }
  }
  pending_.fetch_add(static_cast<std::uint64_t>(dispatched), std::memory_order_acq_rel);

  fn(0, num_tasks);

  // Join: spin briefly (regions are short and workers run on their own cores), then
  // yield so oversubscribed configurations cannot burn a scheduler quantum.
  int spins = 0;
  while (pending_.load(std::memory_order_acquire) != 0) {
    if (++spins >= 2048) {
      spins = 0;
      std::this_thread::yield();
    }
  }
}

}  // namespace neocpu
