// The paper's custom fork-join thread pool (§3.1.2).
//
// Design points reproduced from the paper:
//  * one persistent worker per physical core, bound to disjoint cores (best effort);
//  * a lock-free SPSC queue from the scheduler to every worker for task handoff;
//  * C++11 atomics for fork-join coordination (no mutex/cond-var on the fast path);
//  * cache-line padding on shared state to avoid false sharing;
//  * no hyper-threading: default worker count is the physical core count.
//
// Workers spin briefly waiting for work before yielding, which keeps the per-region
// launch overhead far below a wake-from-sleep pool (measured in bench/threadpool_micro).
#ifndef NEOCPU_SRC_RUNTIME_THREAD_POOL_H_
#define NEOCPU_SRC_RUNTIME_THREAD_POOL_H_

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/base/align.h"
#include "src/runtime/spsc_queue.h"
#include "src/runtime/thread_engine.h"

namespace neocpu {

class NeoThreadPool final : public ThreadEngine {
 public:
  // num_workers <= 0 selects the physical core count. Worker 0 is the calling thread
  // (the scheduler participates in the work), so only num_workers-1 threads are spawned.
  // `core_offset` shifts the cores workers bind to: worker i binds to core
  // core_offset + i, which lets several pools coexist on disjoint core partitions (the
  // serving executor pool; see src/runtime/partition.h). `bind_cpus`, when non-empty,
  // overrides the contiguous rule: worker i binds to bind_cpus[i] — how NUMA-aware
  // partitions hand a pool their exact (possibly non-contiguous) cpu set.
  explicit NeoThreadPool(int num_workers = 0, bool bind_threads = true, int core_offset = 0,
                         std::vector<int> bind_cpus = {});
  ~NeoThreadPool() override;

  NeoThreadPool(const NeoThreadPool&) = delete;
  NeoThreadPool& operator=(const NeoThreadPool&) = delete;

  void ParallelRun(int num_tasks, const std::function<void(int, int)>& fn) override;
  int NumWorkers() const override { return num_workers_; }
  const char* Name() const override { return "neocpu-threadpool"; }

 private:
  struct Task {
    const std::function<void(int, int)>* fn = nullptr;
    int task_index = 0;
    int num_tasks = 0;
    std::uint64_t epoch = 0;
  };

  // Per-worker state, padded so adjacent workers never share a cache line.
  struct alignas(kCacheLineBytes) Worker {
    SpscQueue<Task> queue{64};
    std::thread thread;
    char padding[kCacheLineBytes];
  };

  void WorkerLoop(int worker_index);
  void RunTask(const Task& task);

  // The cpu worker i binds to (core_offset_ + i unless bind_cpus overrode it).
  int BindCpuOf(int worker_index) const;

  int num_workers_ = 1;
  bool bind_threads_ = true;
  int core_offset_ = 0;
  std::vector<int> bind_cpus_;
  std::vector<std::unique_ptr<Worker>> workers_;
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> pending_{0};
  alignas(kCacheLineBytes) std::atomic<bool> shutdown_{false};
};

}  // namespace neocpu

#endif  // NEOCPU_SRC_RUNTIME_THREAD_POOL_H_
