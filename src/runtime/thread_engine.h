// Abstract parallel-execution engine.
//
// The executor and all kernels parallelize through this interface, so the same compiled
// module can run on the paper's custom thread pool, on the OpenMP-style baseline pool
// (Figure 4 comparison), or serially.
#ifndef NEOCPU_SRC_RUNTIME_THREAD_ENGINE_H_
#define NEOCPU_SRC_RUNTIME_THREAD_ENGINE_H_

#include <cstdint>
#include <functional>

namespace neocpu {

class ThreadEngine {
 public:
  virtual ~ThreadEngine() = default;

  // Invokes fn(task_index, num_tasks) for task_index in [0, num_tasks), potentially
  // concurrently, and returns after all invocations complete (fork-join semantics).
  // num_tasks is typically the worker count; each task processes a disjoint chunk.
  virtual void ParallelRun(int num_tasks,
                           const std::function<void(int task, int num_tasks)>& fn) = 0;

  virtual int NumWorkers() const = 0;
  virtual const char* Name() const = 0;
};

// Executes everything inline on the calling thread.
class SerialEngine final : public ThreadEngine {
 public:
  void ParallelRun(int num_tasks,
                   const std::function<void(int, int)>& fn) override {
    for (int i = 0; i < num_tasks; ++i) {
      fn(i, num_tasks);
    }
  }
  int NumWorkers() const override { return 1; }
  const char* Name() const override { return "serial"; }
};

// Splits the half-open range [0, total) into NumWorkers() even chunks and runs them as
// one fork-join region on `engine`.
void ParallelFor(ThreadEngine& engine, std::int64_t total,
                 const std::function<void(std::int64_t begin, std::int64_t end)>& body);

}  // namespace neocpu

#endif  // NEOCPU_SRC_RUNTIME_THREAD_ENGINE_H_
