// Disjoint core partitions over the custom thread pool.
//
// The paper's Figure 4 shows that thread-pool scalability flattens well before the full
// core count for small inputs: two model instances each on half the cores deliver more
// aggregate throughput than one instance spanning every core. This module carves the
// host's cores into N disjoint partitions and hands each one out as an independent
// ThreadEngine, so N executors can run concurrently without oversubscribing or
// cross-talking on shared cache lines. The serving executor pool (src/serve/) is the
// primary consumer.
#ifndef NEOCPU_SRC_RUNTIME_PARTITION_H_
#define NEOCPU_SRC_RUNTIME_PARTITION_H_

#include <memory>
#include <vector>

#include "src/runtime/thread_engine.h"

namespace neocpu {

// One contiguous slice [core_offset, core_offset + num_workers) of the host's cores.
struct CorePartition {
  int core_offset = 0;
  int num_workers = 1;
};

// Splits `total_workers` cores (<= 0 selects the physical core count) into
// `num_partitions` contiguous, disjoint slices. Earlier partitions absorb the remainder
// when the division is uneven. `num_partitions` is clamped to [1, total_workers] so
// every partition has at least one core.
std::vector<CorePartition> PlanCorePartitions(int num_partitions, int total_workers = 0);

// Materializes a plan as independent NeoThreadPool engines bound to disjoint cores
// (best effort; binding failures degrade to unpinned threads). With bind_threads=false
// the partitions still bound concurrency but float across cores — the right setting for
// tests and oversubscribed CI hosts.
std::vector<std::unique_ptr<ThreadEngine>> MakeEnginePartitions(int num_partitions,
                                                                int total_workers = 0,
                                                                bool bind_threads = true);

}  // namespace neocpu

#endif  // NEOCPU_SRC_RUNTIME_PARTITION_H_
