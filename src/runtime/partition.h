// Disjoint core partitions over the custom thread pool.
//
// The paper's Figure 4 shows that thread-pool scalability flattens well before the full
// core count for small inputs: two model instances each on half the cores deliver more
// aggregate throughput than one instance spanning every core. This module carves the
// host's cores into N disjoint partitions and hands each one out as an independent
// ThreadEngine, so N executors can run concurrently without oversubscribing or
// cross-talking on shared cache lines. The serving executor pool (src/serve/) is the
// primary consumer.
//
// Partitions are topology-aware (src/runtime/topology.h): on multi-node hosts a
// partition never straddles a NUMA boundary (unless a single partition must span the
// host), physical cores are preferred over hyperthread siblings, and every partition
// reports its home node so arenas and weight replicas can be bound to match. On
// single-node hosts the plan is bit-for-bit the legacy contiguous split — guarded by a
// regression test — so nothing changes where there is no topology to exploit.
#ifndef NEOCPU_SRC_RUNTIME_PARTITION_H_
#define NEOCPU_SRC_RUNTIME_PARTITION_H_

#include <memory>
#include <vector>

#include "src/runtime/thread_engine.h"
#include "src/runtime/topology.h"

namespace neocpu {

// One slice of the host's cores. `cpus` empty means the legacy contiguous slice
// [core_offset, core_offset + num_workers) — the single-node shape; multi-node plans
// list the slice's cpu ids explicitly (core_offset is then cpus.front()).
struct CorePartition {
  int core_offset = 0;
  int num_workers = 1;
  int home_node = 0;       // NUMA node every cpu of this slice lives on
  std::vector<int> cpus;   // explicit cpu ids; empty = contiguous from core_offset
};

// Splits `total_workers` cores (<= 0 selects the physical core count) into
// `num_partitions` disjoint slices, node-aligned on multi-node hosts (see the
// topology overload). `num_partitions` is clamped to [1, total_workers] so every
// partition has at least one core.
std::vector<CorePartition> PlanCorePartitions(int num_partitions, int total_workers = 0);

// Same, planned against an explicit topology (tests plan against fixture trees).
// Single-node topologies produce the legacy contiguous split: earlier partitions
// absorb the remainder, cpus stays empty. Multi-node topologies apportion partitions
// to nodes by capacity (largest remainder), fill each from the node's primary cpus
// before its HT siblings, and never let a slice cross nodes — except when
// num_partitions == 1 and the single partition needs more cpus than the largest node
// holds, in which case it spans the host.
std::vector<CorePartition> PlanCorePartitions(int num_partitions, int total_workers,
                                              const CpuTopology& topology);

// A serving plan with the measured-mode tuning slice carved out: `tuning` is the
// smallest slice the topology offers (the HT siblings of one core when the host has
// them — cycles serving never counted on — else the last single cpu), and `serving`
// is planned over everything that remains. On a host with one cpu there is nothing
// to carve; the tuning slice then shares cpu 0 with serving (has_dedicated_tuning
// reports the distinction).
struct ServingPlan {
  std::vector<CorePartition> serving;
  CorePartition tuning;
  bool has_dedicated_tuning = false;  // tuning cpus are disjoint from serving cpus
};

ServingPlan PlanServingAndTuning(int num_partitions, int total_workers,
                                 const CpuTopology& topology);

// Serial engine that pins its calling thread to one cpu before running (lazily, once
// per thread): single-core partitions honor their placement like pooled ones do
// instead of floating wherever the scheduler left the caller.
class PinnedSerialEngine final : public ThreadEngine {
 public:
  explicit PinnedSerialEngine(int cpu) : cpu_(cpu) {}

  void ParallelRun(int num_tasks, const std::function<void(int, int)>& fn) override;
  int NumWorkers() const override { return 1; }
  const char* Name() const override { return "pinned-serial"; }
  int cpu() const { return cpu_; }

 private:
  int cpu_;
};

// The engine for one partition: a NeoThreadPool bound to the slice's cpus, or a
// pinned (bind_threads) / plain serial engine for single-core slices.
std::unique_ptr<ThreadEngine> MakePartitionEngine(const CorePartition& partition,
                                                  bool bind_threads);

// Materializes a plan as independent engines bound to disjoint cores (best effort;
// binding failures degrade to unpinned threads). With bind_threads=false the
// partitions still bound concurrency but float across cores — the right setting for
// tests and oversubscribed CI hosts.
std::vector<std::unique_ptr<ThreadEngine>> MakeEnginePartitions(int num_partitions,
                                                                int total_workers = 0,
                                                                bool bind_threads = true);

}  // namespace neocpu

#endif  // NEOCPU_SRC_RUNTIME_PARTITION_H_
