#include "src/runtime/partition.h"

#include "src/base/cpu_info.h"
#include "src/base/logging.h"
#include "src/runtime/thread_pool.h"

namespace neocpu {

std::vector<CorePartition> PlanCorePartitions(int num_partitions, int total_workers) {
  int total = total_workers > 0 ? total_workers : HostCpuInfo().physical_cores;
  if (total < 1) {
    total = 1;
  }
  if (num_partitions < 1) {
    num_partitions = 1;
  }
  if (num_partitions > total) {
    num_partitions = total;
  }
  std::vector<CorePartition> plan;
  plan.reserve(static_cast<std::size_t>(num_partitions));
  const int base = total / num_partitions;
  const int remainder = total % num_partitions;
  int offset = 0;
  for (int p = 0; p < num_partitions; ++p) {
    const int width = base + (p < remainder ? 1 : 0);
    plan.push_back(CorePartition{offset, width});
    offset += width;
  }
  return plan;
}

std::vector<std::unique_ptr<ThreadEngine>> MakeEnginePartitions(int num_partitions,
                                                                int total_workers,
                                                                bool bind_threads) {
  std::vector<std::unique_ptr<ThreadEngine>> engines;
  for (const CorePartition& part : PlanCorePartitions(num_partitions, total_workers)) {
    if (part.num_workers == 1) {
      // A single-core slice gains nothing from a pool; run its executor inline.
      engines.push_back(std::make_unique<SerialEngine>());
    } else {
      engines.push_back(
          std::make_unique<NeoThreadPool>(part.num_workers, bind_threads, part.core_offset));
    }
  }
  return engines;
}

}  // namespace neocpu
