#include "src/runtime/partition.h"

#include <algorithm>
#include <utility>

#include "src/base/cpu_info.h"
#include "src/base/logging.h"
#include "src/runtime/thread_pool.h"

namespace neocpu {
namespace {

// The legacy contiguous split: total cores into num_partitions slices, earlier
// partitions absorbing the remainder. This is the single-node plan, unchanged since
// PR 1 — the single-socket regression test pins its output bit for bit.
std::vector<CorePartition> PlanContiguous(int num_partitions, int total, int home_node) {
  std::vector<CorePartition> plan;
  plan.reserve(static_cast<std::size_t>(num_partitions));
  const int base = total / num_partitions;
  const int remainder = total % num_partitions;
  int offset = 0;
  for (int p = 0; p < num_partitions; ++p) {
    const int width = base + (p < remainder ? 1 : 0);
    CorePartition part;
    part.core_offset = offset;
    part.num_workers = width;
    part.home_node = home_node;
    plan.push_back(std::move(part));
    offset += width;
  }
  return plan;
}

// Per-node cpu pool in planner preference order: primary cpus first, HT siblings
// after, both ascending — slices take a prefix, so siblings are only used once every
// physical core on the node is taken.
std::vector<int> NodePool(const TopologyNode& node) {
  std::vector<int> pool = node.primary_cpus;
  for (int cpu : node.cpus) {
    if (std::find(node.primary_cpus.begin(), node.primary_cpus.end(), cpu) ==
        node.primary_cpus.end()) {
      pool.push_back(cpu);
    }
  }
  return pool;
}

// Largest-remainder apportionment of `count` items across weights `sizes`, capped at
// cap[i] per bucket. Deterministic: remainder ties break toward the lower index.
std::vector<int> Apportion(int count, const std::vector<int>& sizes,
                           const std::vector<int>& caps) {
  const std::size_t n = sizes.size();
  int total_size = 0;
  for (int s : sizes) {
    total_size += s;
  }
  std::vector<int> out(n, 0);
  if (total_size <= 0) {
    return out;
  }
  int assigned = 0;
  std::vector<std::pair<double, std::size_t>> remainders;  // (-frac, index) for sorting
  for (std::size_t i = 0; i < n; ++i) {
    const double exact =
        static_cast<double>(count) * static_cast<double>(sizes[i]) / total_size;
    out[i] = std::min(static_cast<int>(exact), caps[i]);
    assigned += out[i];
    remainders.emplace_back(-(exact - static_cast<int>(exact)), i);
  }
  std::sort(remainders.begin(), remainders.end());
  // Hand out the rounding leftovers by remainder, then round-robin any still left
  // (possible when caps bit); stop when every bucket is at its cap.
  while (assigned < count) {
    bool progressed = false;
    for (const auto& [neg_frac, i] : remainders) {
      if (assigned >= count) {
        break;
      }
      if (out[i] < caps[i]) {
        ++out[i];
        ++assigned;
        progressed = true;
      }
    }
    if (!progressed) {
      break;  // every bucket capped: count was larger than total capacity
    }
  }
  return out;
}

std::vector<CorePartition> SliceNode(const TopologyNode& node,
                                     const std::vector<int>& pool, int num_partitions,
                                     int num_workers) {
  std::vector<CorePartition> slices;
  const int base = num_workers / num_partitions;
  const int remainder = num_workers % num_partitions;
  int offset = 0;
  for (int p = 0; p < num_partitions; ++p) {
    const int width = base + (p < remainder ? 1 : 0);
    CorePartition part;
    part.home_node = node.id;
    part.cpus.assign(pool.begin() + offset, pool.begin() + offset + width);
    part.core_offset = part.cpus.empty() ? 0 : part.cpus.front();
    part.num_workers = width;
    slices.push_back(std::move(part));
    offset += width;
  }
  return slices;
}

}  // namespace

std::vector<CorePartition> PlanCorePartitions(int num_partitions, int total_workers) {
  return PlanCorePartitions(num_partitions, total_workers, HostTopology());
}

std::vector<CorePartition> PlanCorePartitions(int num_partitions, int total_workers,
                                              const CpuTopology& topology) {
  if (num_partitions < 1) {
    num_partitions = 1;
  }

  if (!topology.multi_node()) {
    // Single node: the legacy contiguous plan, bit for bit. total defaults to the
    // physical core count exactly as it always has.
    int total = total_workers > 0 ? total_workers : HostCpuInfo().physical_cores;
    if (total < 1) {
      total = 1;
    }
    if (num_partitions > total) {
      num_partitions = total;
    }
    const int home = topology.nodes().empty() ? 0 : topology.nodes().front().id;
    return PlanContiguous(num_partitions, total, home);
  }

  // Multi-node: build per-node pools (primaries first), clamp the worker budget to
  // what the host actually has, and keep every slice inside one node.
  const std::vector<TopologyNode>& nodes = topology.nodes();
  std::vector<std::vector<int>> pools;
  int capacity = 0;
  for (const TopologyNode& node : nodes) {
    pools.push_back(NodePool(node));
    capacity += static_cast<int>(pools.back().size());
  }
  int total = total_workers > 0 ? total_workers : HostCpuInfo().physical_cores;
  total = std::max(1, std::min(total, capacity));
  num_partitions = std::min(num_partitions, total);

  if (num_partitions == 1) {
    // One partition: keep it on the biggest node when it fits, span the host only
    // when it cannot — the documented single-spanning-partition exception.
    std::size_t best = 0;
    for (std::size_t i = 1; i < pools.size(); ++i) {
      if (pools[i].size() > pools[best].size()) {
        best = i;
      }
    }
    CorePartition part;
    if (total <= static_cast<int>(pools[best].size())) {
      part.home_node = nodes[best].id;
      part.cpus.assign(pools[best].begin(), pools[best].begin() + total);
    } else {
      part.home_node = nodes.front().id;
      for (const std::vector<int>& pool : pools) {
        for (int cpu : pool) {
          if (static_cast<int>(part.cpus.size()) < total) {
            part.cpus.push_back(cpu);
          }
        }
      }
    }
    part.core_offset = part.cpus.front();
    part.num_workers = static_cast<int>(part.cpus.size());
    return {part};
  }

  std::vector<int> sizes;
  std::vector<int> caps;
  for (const std::vector<int>& pool : pools) {
    sizes.push_back(static_cast<int>(pool.size()));
    caps.push_back(static_cast<int>(pool.size()));
  }
  // Partitions per node, by capacity; then workers per node, at least one cpu per
  // partition, the rest by capacity.
  const std::vector<int> parts = Apportion(num_partitions, sizes, caps);
  std::vector<int> workers = parts;  // floor: every partition gets >= 1 cpu
  int assigned = 0;
  for (int w : workers) {
    assigned += w;
  }
  while (assigned < total) {
    // One worker at a time to the node with the most spare capacity relative to its
    // share — keeps the split proportional and deterministic.
    std::size_t best = pools.size();
    double best_deficit = 0.0;
    for (std::size_t i = 0; i < pools.size(); ++i) {
      if (parts[i] == 0 || workers[i] >= static_cast<int>(pools[i].size())) {
        continue;  // only nodes that host partitions get workers
      }
      const double share = static_cast<double>(total) * sizes[i] / capacity;
      const double deficit = share - workers[i];
      if (best == pools.size() || deficit > best_deficit) {
        best = i;
        best_deficit = deficit;
      }
    }
    if (best == pools.size()) {
      break;  // every partition-hosting node is full
    }
    ++workers[best];
    ++assigned;
  }

  std::vector<CorePartition> plan;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (parts[i] == 0) {
      continue;
    }
    std::vector<CorePartition> slices = SliceNode(nodes[i], pools[i], parts[i], workers[i]);
    for (CorePartition& slice : slices) {
      plan.push_back(std::move(slice));
    }
  }
  return plan;
}

ServingPlan PlanServingAndTuning(int num_partitions, int total_workers,
                                 const CpuTopology& topology) {
  ServingPlan out;

  // The tuning slice: HT siblings of the highest core that has any (cycles the
  // serving plan's primary-first fill would only reach under full subscription),
  // else the last cpu of the last node. Never more than two cpus — measured
  // re-tunes want representative timings, not throughput.
  std::vector<int> tuning_cpus;
  int tuning_node = 0;
  for (auto it = topology.nodes().rbegin(); it != topology.nodes().rend(); ++it) {
    for (auto cpu = it->cpus.rbegin(); cpu != it->cpus.rend(); ++cpu) {
      bool is_primary = false;
      for (int p : it->primary_cpus) {
        if (p == *cpu) {
          is_primary = true;
          break;
        }
      }
      if (!is_primary) {
        tuning_cpus.push_back(*cpu);
        tuning_node = it->id;
        if (tuning_cpus.size() == 2) {
          break;
        }
      }
    }
    if (!tuning_cpus.empty()) {
      break;
    }
  }
  if (tuning_cpus.empty() && topology.num_online_cpus() > 1) {
    // No hyperthreads: steal the last cpu outright.
    const TopologyNode& last = topology.nodes().back();
    tuning_cpus.push_back(last.cpus.back());
    tuning_node = last.id;
  }
  std::sort(tuning_cpus.begin(), tuning_cpus.end());

  if (tuning_cpus.empty()) {
    // One-cpu host: nothing to carve. The tuning slice shares cpu 0 with serving;
    // re-tunes timeshare exactly as they did before this feature existed.
    out.serving = PlanCorePartitions(num_partitions, total_workers, topology);
    out.tuning = out.serving.front();
    out.tuning.num_workers = 1;
    out.has_dedicated_tuning = false;
    return out;
  }

  const CpuTopology remaining = topology.WithoutCpus(tuning_cpus);
  int total = total_workers > 0 ? total_workers : HostCpuInfo().physical_cores;
  total = std::min(total, remaining.num_online_cpus());
  out.serving = PlanCorePartitions(num_partitions, total, remaining);
  out.tuning.home_node = tuning_node;
  out.tuning.cpus = tuning_cpus;
  out.tuning.core_offset = tuning_cpus.front();
  out.tuning.num_workers = static_cast<int>(tuning_cpus.size());
  out.has_dedicated_tuning = true;
  return out;
}

void PinnedSerialEngine::ParallelRun(int num_tasks,
                                     const std::function<void(int, int)>& fn) {
  // Bind lazily, once per (thread, engine): the engine is typically constructed on a
  // setup thread but run from the partition's own worker thread.
  static thread_local const PinnedSerialEngine* bound = nullptr;
  if (bound != this) {
    BindCurrentThreadToCpu(cpu_);
    bound = this;
  }
  for (int i = 0; i < num_tasks; ++i) {
    fn(i, num_tasks);
  }
}

std::unique_ptr<ThreadEngine> MakePartitionEngine(const CorePartition& partition,
                                                  bool bind_threads) {
  if (partition.num_workers <= 1) {
    // A single-core slice gains nothing from a pool, but it must still honor its
    // placement: pin the caller to the slice's cpu (the satellite fix — unpinned
    // SerialEngine let single-core partitions float off their cores).
    const int cpu = partition.cpus.empty() ? partition.core_offset : partition.cpus[0];
    if (bind_threads) {
      return std::make_unique<PinnedSerialEngine>(cpu);
    }
    return std::make_unique<SerialEngine>();
  }
  return std::make_unique<NeoThreadPool>(partition.num_workers, bind_threads,
                                         partition.core_offset, partition.cpus);
}

std::vector<std::unique_ptr<ThreadEngine>> MakeEnginePartitions(int num_partitions,
                                                                int total_workers,
                                                                bool bind_threads) {
  std::vector<std::unique_ptr<ThreadEngine>> engines;
  for (const CorePartition& part : PlanCorePartitions(num_partitions, total_workers)) {
    engines.push_back(MakePartitionEngine(part, bind_threads));
  }
  return engines;
}

}  // namespace neocpu
