#include "src/runtime/arena_pool.h"

#include <cstring>
#include <utility>

#include "src/base/logging.h"
#include "src/base/string_util.h"
#include "src/obs/metrics.h"
#include "src/runtime/topology.h"

namespace neocpu {

namespace {

// Total bytes currently committed to execution arenas, across the pool and every
// per-worker arena. Growth and destruction both pass through here, so the gauge tracks
// the live footprint, not a high-water mark.
Gauge* ArenaBytesMetric() {
  static Gauge* gauge = MetricsRegistry::Global().GetGauge(
      "neocpu_arena_bytes", "Bytes currently committed to execution arenas");
  return gauge;
}

// Per-NUMA-node slice of the same footprint, for arenas that declared a home node.
// Registry lookups are idempotent and cheap relative to an arena growth.
Gauge* NodeArenaBytesMetric(int node) {
  return MetricsRegistry::Global().GetGauge(
      StrFormat("neocpu_arena_bytes_node_%d", node),
      "Bytes committed to execution arenas homed on one NUMA node");
}

}  // namespace

Arena::~Arena() {
  if (capacity_ > 0) {
    ArenaBytesMetric()->Add(-static_cast<double>(capacity_));
    if (accounted_node_ >= 0) {
      NodeArenaBytesMetric(accounted_node_)->Add(-static_cast<double>(capacity_));
    }
  }
}

void Arena::Reserve(std::size_t bytes) {
  if (bytes <= capacity_) {
    return;
  }
  storage_ = AlignedPtr<unsigned char>(
      static_cast<unsigned char*>(AlignedAlloc(bytes, kSimdAlignBytes)));
  NEOCPU_CHECK(storage_ != nullptr) << "arena allocation of " << bytes << " bytes failed";
  // Node binding must land before the pre-fault: mbind sets the policy for the
  // untouched pages, then the memset below faults them in on the right node. Without
  // a policy, first-touch places them wherever this thread runs — which the serving
  // pool arranges to be the partition's own cpus anyway.
  if (home_node_ >= 0) {
    TryBindMemoryToNode(storage_.get(), bytes, home_node_);
  }
  // Pre-fault: writing the whole block maps every page now, off the inference hot path.
  std::memset(storage_.get(), 0, bytes);
  ArenaBytesMetric()->Add(static_cast<double>(bytes - capacity_));
  if (home_node_ != accounted_node_ && capacity_ > 0) {
    // The home node changed between Reserves: move the old footprint's accounting.
    if (accounted_node_ >= 0) {
      NodeArenaBytesMetric(accounted_node_)->Add(-static_cast<double>(capacity_));
    }
    if (home_node_ >= 0) {
      NodeArenaBytesMetric(home_node_)->Add(static_cast<double>(capacity_));
    }
  }
  if (home_node_ >= 0) {
    NodeArenaBytesMetric(home_node_)->Add(static_cast<double>(bytes - capacity_));
  }
  accounted_node_ = home_node_;
  capacity_ = bytes;
}

std::unique_ptr<Arena> ArenaPool::Acquire(std::size_t min_bytes) {
  std::unique_ptr<Arena> arena;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++acquired_;
    if (!free_.empty()) {
      arena = std::move(free_.back());
      free_.pop_back();
    } else {
      ++created_;
    }
  }
  if (arena == nullptr) {
    arena = std::make_unique<Arena>();
  }
  arena->Reserve(min_bytes);
  return arena;
}

void ArenaPool::Release(std::unique_ptr<Arena> arena) {
  if (arena == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  free_.push_back(std::move(arena));
}

ArenaPoolStats ArenaPool::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ArenaPoolStats stats;
  stats.acquired = acquired_;
  stats.created = created_;
  stats.pooled = free_.size();
  return stats;
}

void ArenaPool::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  free_.clear();
}

ArenaPool& ArenaPool::Global() {
  static ArenaPool* pool = new ArenaPool();  // leaked: outlives every static executor
  return *pool;
}

ArenaLease::ArenaLease(Arena* external, ArenaPool* pool, std::size_t min_bytes) {
  if (external != nullptr) {
    external->Reserve(min_bytes);
    arena_ = external;
  } else {
    NEOCPU_CHECK(pool != nullptr);
    pool_ = pool;
    owned_ = pool->Acquire(min_bytes);
    arena_ = owned_.get();
  }
}

ArenaLease::~ArenaLease() {
  if (pool_ != nullptr) {
    pool_->Release(std::move(owned_));
  }
}

}  // namespace neocpu
