// CPU / NUMA topology discovery.
//
// The partition planner (src/runtime/partition.h) needs to know which logical CPUs
// share a socket, a NUMA node, and a last-level cache, and which are hyperthread
// siblings of the same physical core — a partition that straddles a NUMA boundary
// pays a cross-interconnect hop on every weight and arena access (Proximu$ argues
// DNN inference scaling on multi-core CPUs is exactly this bandwidth/cache-topology
// bound). This module parses the kernel's sysfs description of the machine:
//
//   /sys/devices/system/cpu/online                         which cpus exist
//   /sys/devices/system/cpu/cpuN/topology/…                package / core / siblings
//   /sys/devices/system/cpu/cpuN/cache/index3/…            LLC sharing domains
//   /sys/devices/system/node/nodeN/cpulist                 NUMA node membership
//
// The sysfs root is injectable (FromSysfs takes any directory laid out like /sys),
// so the parser is unit-tested against committed fixture trees without needing
// multi-socket hardware. Hosts without a node directory (kernels built !CONFIG_NUMA,
// non-Linux) degrade to a single node holding every online cpu.
#ifndef NEOCPU_SRC_RUNTIME_TOPOLOGY_H_
#define NEOCPU_SRC_RUNTIME_TOPOLOGY_H_

#include <cstddef>
#include <string>
#include <vector>

namespace neocpu {

// One logical CPU as the kernel describes it.
struct LogicalCpu {
  int id = 0;
  int package = 0;  // physical_package_id (socket)
  int node = 0;     // NUMA node
  int core = 0;     // core_id within the package
  int llc = 0;      // last-level-cache domain (smallest cpu id sharing the LLC)
  bool online = true;
  // True for the smallest-id online sibling of its physical core — the "physical"
  // cpu the planner prefers; false for hyperthread siblings.
  bool primary = true;
};

// One NUMA node and its online cpus, ascending.
struct TopologyNode {
  int id = 0;
  std::vector<int> cpus;          // every online cpu on this node
  std::vector<int> primary_cpus;  // the primary (non-HT-sibling) subset
};

class CpuTopology {
 public:
  // Parses a sysfs-shaped tree rooted at `sysfs_root` (i.e. the directory holding
  // devices/system/cpu). Unknown or partial trees degrade: missing per-cpu topology
  // files default to package 0 / unique cores, a missing node directory collapses to
  // one node spanning every online cpu, and a tree with no cpus at all yields an
  // empty topology (callers fall back to SingleNode).
  static CpuTopology FromSysfs(const std::string& sysfs_root);

  // Synthetic single-node topology of `num_cpus` online cpus 0..num_cpus-1 — the
  // non-Linux / unreadable-sysfs fallback.
  static CpuTopology SingleNode(int num_cpus);

  // Every discovered cpu (including offline ones), ascending by id.
  const std::vector<LogicalCpu>& cpus() const { return cpus_; }
  // NUMA nodes with at least one online cpu, ascending by id.
  const std::vector<TopologyNode>& nodes() const { return nodes_; }

  int num_online_cpus() const;
  int num_primary_cpus() const;
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_packages() const;
  bool multi_node() const { return nodes_.size() > 1; }

  // NUMA node of an online cpu; -1 for offline or unknown ids.
  int NodeOfCpu(int cpu) const;
  // First online cpu of `node`; -1 when the node is unknown or empty. Threads that
  // want node-local first-touch bind here before touching pages.
  int FirstCpuOfNode(int node) const;

  // A copy of this topology with `removed` cpus taken offline — how the planner
  // carves the measured-mode tuning slice out before planning serving partitions.
  CpuTopology WithoutCpus(const std::vector<int>& removed) const;

 private:
  void RebuildNodes();

  std::vector<LogicalCpu> cpus_;
  std::vector<TopologyNode> nodes_;
};

// The host's topology, parsed from /sys once and cached for the process lifetime.
// Falls back to SingleNode(hardware concurrency) when /sys is unreadable.
const CpuTopology& HostTopology();

// Parses the kernel's cpulist format ("0-3,8-11,16") into ascending cpu ids.
// Malformed chunks are skipped; whitespace is tolerated.
std::vector<int> ParseCpuList(const std::string& text);

// Best-effort: pins the calling thread to one cpu. Returns false when the platform
// has no affinity API or the kernel refuses (cpuset-restricted process); failure
// leaves the thread floating, never errors.
bool BindCurrentThreadToCpu(int cpu);

// Best-effort: binds the pages of [addr, addr+len) to `node` with a preferred-node
// memory policy (raw mbind(2) — no libnuma dependency). Call before first touch.
// Returns false on non-Linux, kernels without NUMA, or policy failure; pages then
// fall back to default first-touch placement, which the arena's pre-fault already
// does on the right thread.
bool TryBindMemoryToNode(void* addr, std::size_t len, int node);

}  // namespace neocpu

#endif  // NEOCPU_SRC_RUNTIME_TOPOLOGY_H_
