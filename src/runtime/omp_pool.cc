#include "src/runtime/omp_pool.h"

#include "src/base/cpu_info.h"

namespace neocpu {

OmpStylePool::OmpStylePool(int num_workers) {
  num_workers_ = num_workers > 0 ? num_workers : HostCpuInfo().physical_cores;
  threads_.reserve(static_cast<std::size_t>(num_workers_ - 1));
  for (int i = 1; i < num_workers_; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

OmpStylePool::~OmpStylePool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
}

void OmpStylePool::WorkerLoop(int worker_index) {
  std::uint64_t seen_epoch = 0;
  while (true) {
    const std::function<void(int, int)>* fn = nullptr;
    int task = -1;
    int num_tasks = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (region_epoch_ != seen_epoch && next_task_ < region_num_tasks_);
      });
      if (shutdown_) {
        return;
      }
      fn = fn_;
      num_tasks = region_num_tasks_;
      task = next_task_++;
      if (next_task_ >= region_num_tasks_) {
        seen_epoch = region_epoch_;
      }
    }
    (*fn)(task, num_tasks);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--outstanding_ == 0) {
        done_cv_.notify_one();
      }
    }
  }
}

void OmpStylePool::ParallelRun(int num_tasks, const std::function<void(int, int)>& fn) {
  if (num_tasks <= 0) {
    return;
  }
  if (num_tasks == 1 || num_workers_ == 1) {
    for (int i = 0; i < num_tasks; ++i) {
      fn(i, num_tasks);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    region_num_tasks_ = num_tasks;
    next_task_ = 1;  // task 0 runs on the master thread, as OpenMP does.
    outstanding_ = num_tasks - 1;
    ++region_epoch_;
  }
  work_cv_.notify_all();
  fn(0, num_tasks);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return outstanding_ == 0; });
    fn_ = nullptr;
  }
}

}  // namespace neocpu
