// Bounded lock-free single-producer single-consumer queue.
//
// This is the scheduler→worker channel of the custom thread pool (paper §3.1.2: "a
// single-producer-single-consumer lock-free queue between the scheduler and every
// working thread"). Head and tail indices live on separate cache lines to avoid false
// sharing between the producing and consuming threads.
#ifndef NEOCPU_SRC_RUNTIME_SPSC_QUEUE_H_
#define NEOCPU_SRC_RUNTIME_SPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <vector>

#include "src/base/align.h"
#include "src/base/logging.h"

namespace neocpu {

template <typename T>
class SpscQueue {
 public:
  // Capacity is rounded up to a power of two; one slot is sacrificed to distinguish
  // full from empty.
  explicit SpscQueue(std::size_t capacity = 256) {
    std::size_t cap = 2;
    while (cap < capacity + 1) {
      cap <<= 1;
    }
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  // Producer side. Returns false when the queue is full.
  bool TryPush(T value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t next = (tail + 1) & mask_;
    if (next == head_.load(std::memory_order_acquire)) {
      return false;
    }
    slots_[tail] = std::move(value);
    tail_.store(next, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns false when the queue is empty.
  bool TryPop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) {
      return false;
    }
    out = std::move(slots_[head]);
    head_.store((head + 1) & mask_, std::memory_order_release);
    return true;
  }

  bool Empty() const {
    return head_.load(std::memory_order_acquire) == tail_.load(std::memory_order_acquire);
  }

  std::size_t Capacity() const { return mask_; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(kCacheLineBytes) std::atomic<std::size_t> head_{0};
  alignas(kCacheLineBytes) std::atomic<std::size_t> tail_{0};
};

}  // namespace neocpu

#endif  // NEOCPU_SRC_RUNTIME_SPSC_QUEUE_H_
