// Dense tensor with shared, SIMD-aligned storage, a layout tag and an element dtype.
//
// Copies are shallow (reference the same buffer); use Clone() for a deep copy. The
// dimensions stored are the *physical* dimensions: an NCHW16c tensor of 64 channels has
// dims {N, 4, H, W, 16}. Elements default to fp32; the quantized inference path stores
// s8/u8 activations and weights and s32 bias constants in the same container (allocation
// and SizeBytes are elem-size-aware).
#ifndef NEOCPU_SRC_TENSOR_TENSOR_H_
#define NEOCPU_SRC_TENSOR_TENSOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/logging.h"
#include "src/base/rng.h"
#include "src/tensor/dtype.h"
#include "src/tensor/layout.h"

namespace neocpu {

// Process-wide count of owning tensor-buffer heap allocations (Tensor::Empty and its
// derivatives). Non-owning views (Tensor::FromExternal) do not count. The memory-planner
// tests use the delta across an Executor::Run to prove the steady state allocates
// nothing for intermediates or workspaces.
std::uint64_t TensorHeapAllocCount();

// Immutable, shareable dimension storage. Tensors hold their dims through this handle:
// copying a tensor (or building a view from a precomputed SharedDims — the memory
// planner caches one per node) bumps a refcount instead of allocating a vector, which
// keeps the planned execution path free of per-node dims mallocs.
using SharedDims = std::shared_ptr<const std::vector<std::int64_t>>;
SharedDims MakeSharedDims(std::vector<std::int64_t> dims);

class Tensor {
 public:
  Tensor() = default;

  static Tensor Empty(std::vector<std::int64_t> dims, Layout layout = Layout::Flat(),
                      DType dtype = DType::kF32);

  // Non-owning view over externally managed storage (an arena slice): the tensor reads
  // and writes `data` but never frees it. The caller guarantees `data` holds at least
  // product(dims) elements of `dtype`, SIMD-aligned, and outlives every copy of the view.
  static Tensor FromExternal(float* data, std::vector<std::int64_t> dims,
                             Layout layout = Layout::Flat(), DType dtype = DType::kF32);
  // Allocation-free variant: adopts caller-shared immutable dims (the planned executor
  // passes each node's precomputed SharedDims on every Run).
  static Tensor FromExternal(float* data, SharedDims dims, Layout layout = Layout::Flat(),
                             DType dtype = DType::kF32);
  static Tensor Zeros(std::vector<std::int64_t> dims, Layout layout = Layout::Flat(),
                      DType dtype = DType::kF32);
  static Tensor Full(std::vector<std::int64_t> dims, float value,
                     Layout layout = Layout::Flat());
  // Uniform values in [lo, hi), deterministic given the Rng state.
  static Tensor Random(std::vector<std::int64_t> dims, Rng& rng, float lo = -1.0f,
                       float hi = 1.0f, Layout layout = Layout::Flat());

  bool defined() const { return data_ != nullptr; }
  // Raw fp32 view of the storage. Kept un-checked for the byte-level callers
  // (serialization, arena-offset arithmetic); numeric code on non-f32 tensors should go
  // through the typed accessors below.
  float* data() { return data_.get(); }
  const float* data() const { return data_.get(); }

  DType dtype() const { return dtype_; }
  // Typed element access; dies when T does not match the tensor's dtype.
  template <typename T>
  T* data_as() {
    NEOCPU_CHECK(DTypeOf<T>() == dtype_)
        << "tensor holds " << DTypeName(dtype_) << " elements";
    return reinterpret_cast<T*>(data_.get());
  }
  template <typename T>
  const T* data_as() const {
    NEOCPU_CHECK(DTypeOf<T>() == dtype_)
        << "tensor holds " << DTypeName(dtype_) << " elements";
    return reinterpret_cast<const T*>(data_.get());
  }

  const std::vector<std::int64_t>& dims() const {
    static const std::vector<std::int64_t> kEmptyDims;
    return dims_ != nullptr ? *dims_ : kEmptyDims;
  }
  std::int64_t dim(int i) const { return dims()[static_cast<std::size_t>(i)]; }
  int ndim() const { return static_cast<int>(dims().size()); }
  std::int64_t NumElements() const;
  std::size_t SizeBytes() const {
    return static_cast<std::size_t>(NumElements()) * ElemSizeBytes(dtype_);
  }

  const Layout& layout() const { return layout_; }
  void set_layout(Layout layout) { layout_ = layout; }

  Tensor Clone() const;
  // Same buffer, different logical dims (element count must match).
  Tensor Reshaped(std::vector<std::int64_t> dims, Layout layout = Layout::Flat()) const;

  void FillZero();
  void Fill(float value);

  // Largest |a-b| across elements; both tensors must have equal element counts.
  static double MaxAbsDiff(const Tensor& a, const Tensor& b);
  // Largest |a-b| / (|a|+|b|+eps): scale-independent comparison for deep nets.
  static double MaxRelDiff(const Tensor& a, const Tensor& b, double eps = 1e-5);
  // Maximum "allclose" violation: max_i(|a_i - b_i| - (atol + rtol * |b_i|)). A value
  // <= 0 means every element is within tolerance (numpy.allclose semantics). This is
  // the right comparison for floating-point kernels whose summation order differs.
  static double AllCloseViolation(const Tensor& a, const Tensor& b, double rtol = 1e-3,
                                  double atol = 1e-3);

  std::string DebugString() const;

 private:
  // The DType a C++ element type maps to (compile-time; unknown types fail to link).
  template <typename T>
  static DType DTypeOf();

  std::shared_ptr<float[]> data_;
  SharedDims dims_;  // null means rank 0 (default-constructed tensor)
  Layout layout_;
  DType dtype_ = DType::kF32;
};

template <>
inline DType Tensor::DTypeOf<float>() {
  return DType::kF32;
}
template <>
inline DType Tensor::DTypeOf<std::int8_t>() {
  return DType::kS8;
}
template <>
inline DType Tensor::DTypeOf<std::uint8_t>() {
  return DType::kU8;
}
template <>
inline DType Tensor::DTypeOf<std::int32_t>() {
  return DType::kS32;
}

}  // namespace neocpu

#endif  // NEOCPU_SRC_TENSOR_TENSOR_H_
