#include "src/tensor/layout.h"

#include "src/base/string_util.h"

namespace neocpu {

std::string Layout::ToString() const {
  switch (kind) {
    case LayoutKind::kNCHW:
      return "NCHW";
    case LayoutKind::kNHWC:
      return "NHWC";
    case LayoutKind::kNCHWc:
      return StrFormat("NCHW%lldc", static_cast<long long>(c_block));
    case LayoutKind::kOIHW:
      return "OIHW";
    case LayoutKind::kOIHWio:
      return StrFormat("OIHW%lldi%lldo", static_cast<long long>(i_block),
                       static_cast<long long>(o_block));
    case LayoutKind::kFlat:
      return "flat";
  }
  return "?";
}

}  // namespace neocpu
