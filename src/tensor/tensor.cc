#include "src/tensor/tensor.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>

#include "src/base/align.h"
#include "src/base/logging.h"
#include "src/base/string_util.h"

namespace neocpu {
namespace {

std::int64_t Product(const std::vector<std::int64_t>& dims) {
  std::int64_t n = 1;
  for (std::int64_t d : dims) {
    NEOCPU_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

std::atomic<std::uint64_t> g_heap_allocs{0};

}  // namespace

std::uint64_t TensorHeapAllocCount() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

SharedDims MakeSharedDims(std::vector<std::int64_t> dims) {
  return std::make_shared<const std::vector<std::int64_t>>(std::move(dims));
}

Tensor Tensor::Empty(std::vector<std::int64_t> dims, Layout layout, DType dtype) {
  Tensor t;
  std::int64_t count = Product(dims);
  t.data_ = std::shared_ptr<float[]>(
      static_cast<float*>(
          AlignedAlloc(static_cast<std::size_t>(count) * ElemSizeBytes(dtype))),
      AlignedDeleter());
  NEOCPU_CHECK(count == 0 || t.data_ != nullptr)
      << "allocation of " << count << " " << DTypeName(dtype) << " elements failed";
  if (count > 0) {
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  t.dims_ = MakeSharedDims(std::move(dims));
  t.layout_ = layout;
  t.dtype_ = dtype;
  return t;
}

Tensor Tensor::FromExternal(float* data, std::vector<std::int64_t> dims, Layout layout,
                            DType dtype) {
  return FromExternal(data, MakeSharedDims(std::move(dims)), layout, dtype);
}

Tensor Tensor::FromExternal(float* data, SharedDims dims, Layout layout, DType dtype) {
  NEOCPU_CHECK(data != nullptr || dims == nullptr || Product(*dims) == 0);
  Tensor t;
  // Aliasing constructor with an empty owner: the view shares no lifetime with the
  // underlying storage and its destruction frees nothing.
  t.data_ = std::shared_ptr<float[]>(std::shared_ptr<void>(), data);
  t.dims_ = std::move(dims);
  t.layout_ = layout;
  t.dtype_ = dtype;
  return t;
}

Tensor Tensor::Zeros(std::vector<std::int64_t> dims, Layout layout, DType dtype) {
  Tensor t = Empty(std::move(dims), layout, dtype);
  t.FillZero();
  return t;
}

Tensor Tensor::Full(std::vector<std::int64_t> dims, float value, Layout layout) {
  Tensor t = Empty(std::move(dims), layout);
  t.Fill(value);
  return t;
}

Tensor Tensor::Random(std::vector<std::int64_t> dims, Rng& rng, float lo, float hi,
                      Layout layout) {
  Tensor t = Empty(std::move(dims), layout);
  float* p = t.data();
  const std::int64_t n = t.NumElements();
  for (std::int64_t i = 0; i < n; ++i) {
    p[i] = rng.NextFloat(lo, hi);
  }
  return t;
}

std::int64_t Tensor::NumElements() const { return Product(dims()); }

Tensor Tensor::Clone() const {
  Tensor t = Empty(dims(), layout_, dtype_);
  std::memcpy(t.data(), data(), SizeBytes());
  return t;
}

Tensor Tensor::Reshaped(std::vector<std::int64_t> dims, Layout layout) const {
  NEOCPU_CHECK_EQ(Product(dims), NumElements()) << "reshape must preserve element count";
  Tensor t = *this;
  t.dims_ = MakeSharedDims(std::move(dims));
  t.layout_ = layout;
  return t;
}

void Tensor::FillZero() { std::memset(data(), 0, SizeBytes()); }

void Tensor::Fill(float value) {
  float* p = data_as<float>();
  const std::int64_t n = NumElements();
  std::fill(p, p + n, value);
}

double Tensor::MaxAbsDiff(const Tensor& a, const Tensor& b) {
  NEOCPU_CHECK_EQ(a.NumElements(), b.NumElements());
  NEOCPU_CHECK(a.dtype() == DType::kF32 && b.dtype() == DType::kF32)
      << "element comparisons are fp32-only";
  double worst = 0.0;
  const float* pa = a.data();
  const float* pb = b.data();
  const std::int64_t n = a.NumElements();
  for (std::int64_t i = 0; i < n; ++i) {
    worst = std::max(worst, static_cast<double>(std::fabs(pa[i] - pb[i])));
  }
  return worst;
}

double Tensor::MaxRelDiff(const Tensor& a, const Tensor& b, double eps) {
  NEOCPU_CHECK_EQ(a.NumElements(), b.NumElements());
  double worst = 0.0;
  const float* pa = a.data();
  const float* pb = b.data();
  const std::int64_t n = a.NumElements();
  for (std::int64_t i = 0; i < n; ++i) {
    double da = pa[i];
    double db = pb[i];
    double rel = std::fabs(da - db) / (std::fabs(da) + std::fabs(db) + eps);
    worst = std::max(worst, rel);
  }
  return worst;
}

double Tensor::AllCloseViolation(const Tensor& a, const Tensor& b, double rtol, double atol) {
  NEOCPU_CHECK_EQ(a.NumElements(), b.NumElements());
  double worst = -std::numeric_limits<double>::infinity();
  const float* pa = a.data();
  const float* pb = b.data();
  const std::int64_t n = a.NumElements();
  for (std::int64_t i = 0; i < n; ++i) {
    const double diff = std::fabs(static_cast<double>(pa[i]) - pb[i]);
    worst = std::max(worst, diff - (atol + rtol * std::fabs(static_cast<double>(pb[i]))));
  }
  return n == 0 ? 0.0 : worst;
}

std::string Tensor::DebugString() const {
  std::string dims = JoinMapped(this->dims(), "x", [](std::int64_t d) {
    return StrFormat("%lld", static_cast<long long>(d));
  });
  return StrFormat("Tensor<%s,%s,%s>", dims.c_str(), layout_.ToString().c_str(),
                   DTypeName(dtype_));
}

const char* DTypeName(DType dtype) {
  switch (dtype) {
    case DType::kF32:
      return "f32";
    case DType::kS8:
      return "s8";
    case DType::kU8:
      return "u8";
    case DType::kS32:
      return "s32";
  }
  return "?";
}

}  // namespace neocpu
