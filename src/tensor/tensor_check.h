// Shared precondition check for kernel execute-into forms: the caller-provided output
// (often a non-owning arena view placed by core/memory_plan) must be defined and carry
// exactly the physical dims and layout the kernel is about to write. One helper, one
// strictness level — a planner bug that produces a right-sized but wrong-layout view
// fails identically in every kernel.
#ifndef NEOCPU_SRC_TENSOR_TENSOR_CHECK_H_
#define NEOCPU_SRC_TENSOR_TENSOR_CHECK_H_

#include <cstdint>
#include <vector>

#include "src/base/logging.h"
#include "src/tensor/tensor.h"

namespace neocpu {

inline void CheckKernelOutput(const Tensor* out, const std::vector<std::int64_t>& dims,
                              const Layout& layout, const char* op) {
  NEOCPU_CHECK(out != nullptr && out->defined()) << op << ": undefined output tensor";
  NEOCPU_CHECK(out->dims() == dims)
      << op << ": output dims mismatch, got " << out->DebugString();
  NEOCPU_CHECK(out->layout() == layout)
      << op << ": output layout mismatch, got " << out->layout().ToString() << " want "
      << layout.ToString();
}

}  // namespace neocpu

#endif  // NEOCPU_SRC_TENSOR_TENSOR_CHECK_H_
