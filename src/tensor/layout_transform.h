// Data-layout transformation kernels.
//
// These are the runtime cost the graph-level optimization (paper §3.2/§3.3) minimizes:
// every transform the global search fails to eliminate executes one of these functions.
// Weight transforms (OIHW → OIHW[x]i[y]o) run once at compile time instead
// ("pre-transformed kernel" in Figure 2).
#ifndef NEOCPU_SRC_TENSOR_LAYOUT_TRANSFORM_H_
#define NEOCPU_SRC_TENSOR_LAYOUT_TRANSFORM_H_

#include "src/runtime/thread_engine.h"
#include "src/tensor/tensor.h"

namespace neocpu {

// Each feature-map transform has an allocating form and an execute-into form writing a
// caller-provided destination (arena view on the memory-planned path: the transform
// "temporary" the planner sizes); into-forms check dims fatally.

// NCHW (4-D) → NCHW[x]c (5-D). Channel count must be divisible by x.
Tensor NCHWToNCHWc(const Tensor& src, std::int64_t x, ThreadEngine* engine = nullptr);
void NCHWToNCHWc(const Tensor& src, std::int64_t x, Tensor* dst,
                 ThreadEngine* engine = nullptr);

// NCHW[x]c (5-D) → NCHW (4-D).
Tensor NCHWcToNCHW(const Tensor& src, ThreadEngine* engine = nullptr);
void NCHWcToNCHW(const Tensor& src, Tensor* dst, ThreadEngine* engine = nullptr);

// Re-block a feature map to a different split factor: NCHW[x]c → NCHW[y]c. The
// into-form requires new_x != current x (the identity case is a view, not a copy).
Tensor NCHWcToNCHWc(const Tensor& src, std::int64_t new_x, ThreadEngine* engine = nullptr);
void NCHWcToNCHWc(const Tensor& src, std::int64_t new_x, Tensor* dst,
                  ThreadEngine* engine = nullptr);

// NCHW ↔ NHWC (framework default interchange; used by tests and the NHWC entry path).
Tensor NCHWToNHWC(const Tensor& src, ThreadEngine* engine = nullptr);
void NCHWToNHWC(const Tensor& src, Tensor* dst, ThreadEngine* engine = nullptr);
Tensor NHWCToNCHW(const Tensor& src, ThreadEngine* engine = nullptr);
void NHWCToNCHW(const Tensor& src, Tensor* dst, ThreadEngine* engine = nullptr);

// Convolution weights OIHW (4-D) → OIHW[x]i[y]o (6-D). I % x == 0 and O % y == 0.
Tensor OIHWToOIHWio(const Tensor& src, std::int64_t x, std::int64_t y);

// Dispatcher used by the executor's LayoutTransform node: converts `src` to `dst_layout`
// (must be one of the conversions above).
Tensor TransformLayout(const Tensor& src, const Layout& dst_layout,
                       ThreadEngine* engine = nullptr);
// Into-dispatcher for the planned executor; requires an actual data movement (the
// planner classifies identity transforms as aliases and never routes them here).
void TransformLayout(const Tensor& src, const Layout& dst_layout, Tensor* dst,
                     ThreadEngine* engine = nullptr);

// Bytes moved by a feature-map transform; the global search's cost model multiplies this
// by calibrated bandwidth (read + write once each).
std::int64_t TransformBytes(const Tensor& src);

}  // namespace neocpu

#endif  // NEOCPU_SRC_TENSOR_LAYOUT_TRANSFORM_H_
