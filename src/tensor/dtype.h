// Element data types for tensors.
//
// The fp32 pipeline is the paper's; the integer types carry the post-training-quantized
// inference path (IntelCaffe-style s8/u8 activations and weights with s32 accumulation,
// see PAPERS.md "Highly Efficient 8-bit Low Precision Inference of CNNs"). Enumerator
// values appear in serialized modules and tuning caches — append only.
#ifndef NEOCPU_SRC_TENSOR_DTYPE_H_
#define NEOCPU_SRC_TENSOR_DTYPE_H_

#include <cstddef>
#include <cstdint>

namespace neocpu {

enum class DType : std::uint8_t {
  kF32 = 0,  // IEEE single precision (the default everywhere)
  kS8 = 1,   // signed 8-bit: quantized activations and weights (symmetric, zp 0)
  kU8 = 2,   // unsigned 8-bit: asymmetric quantization (zero point), Q/DQ only today
  kS32 = 3,  // signed 32-bit: int8-conv accumulators and quantized bias constants
};

inline constexpr std::size_t ElemSizeBytes(DType dtype) {
  switch (dtype) {
    case DType::kF32:
    case DType::kS32:
      return 4;
    case DType::kS8:
    case DType::kU8:
      return 1;
  }
  return 4;
}

const char* DTypeName(DType dtype);

}  // namespace neocpu

#endif  // NEOCPU_SRC_TENSOR_DTYPE_H_
