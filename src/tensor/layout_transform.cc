#include "src/tensor/layout_transform.h"

#include <cstring>

#include "src/base/logging.h"
#include "src/tensor/tensor_check.h"

namespace neocpu {
namespace {

SerialEngine g_serial;

ThreadEngine& Engine(ThreadEngine* engine) { return engine ? *engine : g_serial; }

// The NCHW<->NCHW[x]c family is dtype-generic (pure index permutation): the fp32
// pipeline moves floats, the quantized path moves s8 activations between differently
// blocked convolutions. Each public entry dispatches on the source dtype.
template <typename T>
void NCHWToNCHWcT(const Tensor& src, std::int64_t x, Tensor* dst, ThreadEngine* engine) {
  const std::int64_t n = src.dim(0), c = src.dim(1), h = src.dim(2), w = src.dim(3);
  const std::int64_t cb = c / x;
  const T* s = src.data_as<T>();
  T* d = dst->data_as<T>();
  const std::int64_t hw = h * w;
  ParallelFor(Engine(engine), n * cb, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t ncb = begin; ncb < end; ++ncb) {
      const std::int64_t ni = ncb / cb;
      const std::int64_t co = ncb % cb;
      T* dp = d + ncb * hw * x;
      const T* sp = s + (ni * c + co * x) * hw;
      for (std::int64_t p = 0; p < hw; ++p) {
        for (std::int64_t ci = 0; ci < x; ++ci) {
          dp[p * x + ci] = sp[ci * hw + p];
        }
      }
    }
  });
}

template <typename T>
void NCHWcToNCHWT(const Tensor& src, Tensor* dst, ThreadEngine* engine) {
  const std::int64_t n = src.dim(0), cb = src.dim(1), h = src.dim(2), w = src.dim(3),
                     x = src.dim(4);
  const T* s = src.data_as<T>();
  T* d = dst->data_as<T>();
  const std::int64_t hw = h * w;
  ParallelFor(Engine(engine), n * cb, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t ncb = begin; ncb < end; ++ncb) {
      const std::int64_t ni = ncb / cb;
      const std::int64_t co = ncb % cb;
      const T* sp = s + ncb * hw * x;
      T* dp = d + (ni * cb * x + co * x) * hw;
      for (std::int64_t p = 0; p < hw; ++p) {
        for (std::int64_t ci = 0; ci < x; ++ci) {
          dp[ci * hw + p] = sp[p * x + ci];
        }
      }
    }
  });
}

template <typename T>
void NCHWcToNCHWcT(const Tensor& src, std::int64_t new_x, Tensor* dst,
                   ThreadEngine* engine) {
  const std::int64_t n = src.dim(0), cb = src.dim(1), h = src.dim(2), w = src.dim(3),
                     x = src.dim(4);
  const std::int64_t c = cb * x;
  const std::int64_t new_cb = c / new_x;
  const T* s = src.data_as<T>();
  T* d = dst->data_as<T>();
  const std::int64_t hw = h * w;
  ParallelFor(Engine(engine), n * new_cb, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t ncb = begin; ncb < end; ++ncb) {
      const std::int64_t ni = ncb / new_cb;
      const std::int64_t co = ncb % new_cb;
      T* dp = d + ncb * hw * new_x;
      for (std::int64_t ci = 0; ci < new_x; ++ci) {
        const std::int64_t ch = co * new_x + ci;  // global channel index
        const T* sp = s + ((ni * cb + ch / x) * hw) * x + (ch % x);
        for (std::int64_t p = 0; p < hw; ++p) {
          dp[p * new_x + ci] = sp[p * x];
        }
      }
    }
  });
}

void CheckSameDtype(const Tensor& src, const Tensor* dst) {
  NEOCPU_CHECK(dst->dtype() == src.dtype())
      << "layout transform cannot change dtype: " << src.DebugString() << " -> "
      << dst->DebugString();
  NEOCPU_CHECK(src.dtype() == DType::kF32 || src.dtype() == DType::kS8 ||
               src.dtype() == DType::kU8)
      << "layout transforms support f32/s8/u8 feature maps, got " << src.DebugString();
}

}  // namespace

void NCHWToNCHWc(const Tensor& src, std::int64_t x, Tensor* dst, ThreadEngine* engine) {
  NEOCPU_CHECK_EQ(src.ndim(), 4);
  const std::int64_t n = src.dim(0), c = src.dim(1), h = src.dim(2), w = src.dim(3);
  NEOCPU_CHECK_GT(x, 0);
  NEOCPU_CHECK_EQ(c % x, 0) << "channels " << c << " not divisible by block " << x;
  CheckKernelOutput(dst, {n, c / x, h, w, x}, Layout::NCHWc(x), "layout_transform");
  CheckSameDtype(src, dst);
  if (src.dtype() == DType::kS8) {
    NCHWToNCHWcT<std::int8_t>(src, x, dst, engine);
  } else if (src.dtype() == DType::kU8) {
    NCHWToNCHWcT<std::uint8_t>(src, x, dst, engine);
  } else {
    NCHWToNCHWcT<float>(src, x, dst, engine);
  }
}

Tensor NCHWToNCHWc(const Tensor& src, std::int64_t x, ThreadEngine* engine) {
  NEOCPU_CHECK_EQ(src.ndim(), 4);
  NEOCPU_CHECK_GT(x, 0);
  NEOCPU_CHECK_EQ(src.dim(1) % x, 0)
      << "channels " << src.dim(1) << " not divisible by block " << x;
  Tensor dst = Tensor::Empty({src.dim(0), src.dim(1) / x, src.dim(2), src.dim(3), x},
                             Layout::NCHWc(x), src.dtype());
  NCHWToNCHWc(src, x, &dst, engine);
  return dst;
}

void NCHWcToNCHW(const Tensor& src, Tensor* dst, ThreadEngine* engine) {
  NEOCPU_CHECK_EQ(src.ndim(), 5);
  const std::int64_t n = src.dim(0), cb = src.dim(1), h = src.dim(2), w = src.dim(3),
                     x = src.dim(4);
  CheckKernelOutput(dst, {n, cb * x, h, w}, Layout::NCHW(), "layout_transform");
  CheckSameDtype(src, dst);
  if (src.dtype() == DType::kS8) {
    NCHWcToNCHWT<std::int8_t>(src, dst, engine);
  } else if (src.dtype() == DType::kU8) {
    NCHWcToNCHWT<std::uint8_t>(src, dst, engine);
  } else {
    NCHWcToNCHWT<float>(src, dst, engine);
  }
}

Tensor NCHWcToNCHW(const Tensor& src, ThreadEngine* engine) {
  NEOCPU_CHECK_EQ(src.ndim(), 5);
  Tensor dst = Tensor::Empty({src.dim(0), src.dim(1) * src.dim(4), src.dim(2), src.dim(3)},
                             Layout::NCHW(), src.dtype());
  NCHWcToNCHW(src, &dst, engine);
  return dst;
}

void NCHWcToNCHWc(const Tensor& src, std::int64_t new_x, Tensor* dst,
                  ThreadEngine* engine) {
  NEOCPU_CHECK_EQ(src.ndim(), 5);
  const std::int64_t n = src.dim(0), cb = src.dim(1), h = src.dim(2), w = src.dim(3),
                     x = src.dim(4);
  const std::int64_t c = cb * x;
  NEOCPU_CHECK(new_x != x) << "identity re-block is a view, not a copy";
  NEOCPU_CHECK_EQ(c % new_x, 0);
  CheckKernelOutput(dst, {n, c / new_x, h, w, new_x}, Layout::NCHWc(new_x),
                    "layout_transform");
  CheckSameDtype(src, dst);
  if (src.dtype() == DType::kS8) {
    NCHWcToNCHWcT<std::int8_t>(src, new_x, dst, engine);
  } else if (src.dtype() == DType::kU8) {
    NCHWcToNCHWcT<std::uint8_t>(src, new_x, dst, engine);
  } else {
    NCHWcToNCHWcT<float>(src, new_x, dst, engine);
  }
}

Tensor NCHWcToNCHWc(const Tensor& src, std::int64_t new_x, ThreadEngine* engine) {
  NEOCPU_CHECK_EQ(src.ndim(), 5);
  if (new_x == src.dim(4)) {
    return src;
  }
  const std::int64_t c = src.dim(1) * src.dim(4);
  NEOCPU_CHECK_EQ(c % new_x, 0);
  Tensor dst = Tensor::Empty({src.dim(0), c / new_x, src.dim(2), src.dim(3), new_x},
                             Layout::NCHWc(new_x), src.dtype());
  NCHWcToNCHWc(src, new_x, &dst, engine);
  return dst;
}

void NCHWToNHWC(const Tensor& src, Tensor* dst, ThreadEngine* engine) {
  NEOCPU_CHECK_EQ(src.ndim(), 4);
  const std::int64_t n = src.dim(0), c = src.dim(1), h = src.dim(2), w = src.dim(3);
  CheckKernelOutput(dst, {n, h, w, c}, Layout::NHWC(), "layout_transform");
  const float* s = src.data();
  float* d = dst->data();
  const std::int64_t hw = h * w;
  ParallelFor(Engine(engine), n, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t ni = begin; ni < end; ++ni) {
      const float* sp = s + ni * c * hw;
      float* dp = d + ni * hw * c;
      for (std::int64_t p = 0; p < hw; ++p) {
        for (std::int64_t ci = 0; ci < c; ++ci) {
          dp[p * c + ci] = sp[ci * hw + p];
        }
      }
    }
  });
}

Tensor NCHWToNHWC(const Tensor& src, ThreadEngine* engine) {
  NEOCPU_CHECK_EQ(src.ndim(), 4);
  Tensor dst = Tensor::Empty({src.dim(0), src.dim(2), src.dim(3), src.dim(1)},
                             Layout::NHWC());
  NCHWToNHWC(src, &dst, engine);
  return dst;
}

void NHWCToNCHW(const Tensor& src, Tensor* dst, ThreadEngine* engine) {
  NEOCPU_CHECK_EQ(src.ndim(), 4);
  const std::int64_t n = src.dim(0), h = src.dim(1), w = src.dim(2), c = src.dim(3);
  CheckKernelOutput(dst, {n, c, h, w}, Layout::NCHW(), "layout_transform");
  const float* s = src.data();
  float* d = dst->data();
  const std::int64_t hw = h * w;
  ParallelFor(Engine(engine), n, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t ni = begin; ni < end; ++ni) {
      const float* sp = s + ni * hw * c;
      float* dp = d + ni * c * hw;
      for (std::int64_t ci = 0; ci < c; ++ci) {
        for (std::int64_t p = 0; p < hw; ++p) {
          dp[ci * hw + p] = sp[p * c + ci];
        }
      }
    }
  });
}

Tensor NHWCToNCHW(const Tensor& src, ThreadEngine* engine) {
  NEOCPU_CHECK_EQ(src.ndim(), 4);
  Tensor dst = Tensor::Empty({src.dim(0), src.dim(3), src.dim(1), src.dim(2)},
                             Layout::NCHW());
  NHWCToNCHW(src, &dst, engine);
  return dst;
}

namespace {

template <typename T>
void OIHWToOIHWioT(const Tensor& src, std::int64_t x, std::int64_t y, Tensor* dst) {
  const std::int64_t o = src.dim(0), i = src.dim(1), kh = src.dim(2), kw = src.dim(3);
  const std::int64_t ob = o / y;
  const std::int64_t ib = i / x;
  const T* s = src.data_as<T>();
  T* d = dst->data_as<T>();
  const std::int64_t khw = kh * kw;
  for (std::int64_t oo = 0; oo < ob; ++oo) {
    for (std::int64_t ii = 0; ii < ib; ++ii) {
      for (std::int64_t k = 0; k < khw; ++k) {
        for (std::int64_t xi = 0; xi < x; ++xi) {
          for (std::int64_t yi = 0; yi < y; ++yi) {
            const std::int64_t src_idx = ((oo * y + yi) * i + (ii * x + xi)) * khw + k;
            T* dp = d + ((((oo * ib + ii) * khw + k) * x + xi) * y + yi);
            *dp = s[src_idx];
          }
        }
      }
    }
  }
}

}  // namespace

Tensor OIHWToOIHWio(const Tensor& src, std::int64_t x, std::int64_t y) {
  NEOCPU_CHECK_EQ(src.ndim(), 4);
  const std::int64_t o = src.dim(0), i = src.dim(1), kh = src.dim(2), kw = src.dim(3);
  NEOCPU_CHECK_EQ(i % x, 0);
  NEOCPU_CHECK_EQ(o % y, 0);
  Tensor dst = Tensor::Empty({o / y, i / x, kh, kw, x, y}, Layout::OIHWio(x, y),
                             src.dtype());
  if (src.dtype() == DType::kS8) {
    OIHWToOIHWioT<std::int8_t>(src, x, y, &dst);
  } else if (src.dtype() == DType::kU8) {
    OIHWToOIHWioT<std::uint8_t>(src, x, y, &dst);
  } else {
    NEOCPU_CHECK(src.dtype() == DType::kF32) << src.DebugString();
    OIHWToOIHWioT<float>(src, x, y, &dst);
  }
  return dst;
}

Tensor TransformLayout(const Tensor& src, const Layout& dst_layout, ThreadEngine* engine) {
  const Layout& from = src.layout();
  if (from == dst_layout) {
    return src;
  }
  if (from.kind == LayoutKind::kNCHW && dst_layout.kind == LayoutKind::kNCHWc) {
    return NCHWToNCHWc(src, dst_layout.c_block, engine);
  }
  if (from.kind == LayoutKind::kNCHWc && dst_layout.kind == LayoutKind::kNCHW) {
    return NCHWcToNCHW(src, engine);
  }
  if (from.kind == LayoutKind::kNCHWc && dst_layout.kind == LayoutKind::kNCHWc) {
    return NCHWcToNCHWc(src, dst_layout.c_block, engine);
  }
  if (from.kind == LayoutKind::kNCHW && dst_layout.kind == LayoutKind::kNHWC) {
    return NCHWToNHWC(src, engine);
  }
  if (from.kind == LayoutKind::kNHWC && dst_layout.kind == LayoutKind::kNCHW) {
    return NHWCToNCHW(src, engine);
  }
  if (from.kind == LayoutKind::kOIHW && dst_layout.kind == LayoutKind::kOIHWio) {
    return OIHWToOIHWio(src, dst_layout.i_block, dst_layout.o_block);
  }
  LOG(FATAL) << "unsupported layout transform " << from.ToString() << " -> "
             << dst_layout.ToString();
  return {};
}

void TransformLayout(const Tensor& src, const Layout& dst_layout, Tensor* dst,
                     ThreadEngine* engine) {
  const Layout& from = src.layout();
  NEOCPU_CHECK(!(from == dst_layout))
      << "identity transform reached the into-path; the planner aliases these";
  if (from.kind == LayoutKind::kNCHW && dst_layout.kind == LayoutKind::kNCHWc) {
    NCHWToNCHWc(src, dst_layout.c_block, dst, engine);
    return;
  }
  if (from.kind == LayoutKind::kNCHWc && dst_layout.kind == LayoutKind::kNCHW) {
    NCHWcToNCHW(src, dst, engine);
    return;
  }
  if (from.kind == LayoutKind::kNCHWc && dst_layout.kind == LayoutKind::kNCHWc) {
    NCHWcToNCHWc(src, dst_layout.c_block, dst, engine);
    return;
  }
  if (from.kind == LayoutKind::kNCHW && dst_layout.kind == LayoutKind::kNHWC) {
    NCHWToNHWC(src, dst, engine);
    return;
  }
  if (from.kind == LayoutKind::kNHWC && dst_layout.kind == LayoutKind::kNCHW) {
    NHWCToNCHW(src, dst, engine);
    return;
  }
  LOG(FATAL) << "unsupported layout transform " << from.ToString() << " -> "
             << dst_layout.ToString();
}

std::int64_t TransformBytes(const Tensor& src) {
  return 2 * static_cast<std::int64_t>(src.SizeBytes());
}

}  // namespace neocpu
