// Data-layout descriptors.
//
// The paper's central object: feature maps flow through the graph either in a framework
// default layout (NCHW / NHWC) or in the blocked NCHW[x]c layout that the convolution
// template consumes; convolution kernels are stored as OIHW or pre-transformed
// OIHW[x]i[y]o (the paper writes KCRS / KCRS[x]c[y]k for the same thing).
#ifndef NEOCPU_SRC_TENSOR_LAYOUT_H_
#define NEOCPU_SRC_TENSOR_LAYOUT_H_

#include <cstdint>
#include <string>

namespace neocpu {

enum class LayoutKind {
  kNCHW,    // 4-D feature map, channels outermost-but-one
  kNHWC,    // 4-D feature map, channels innermost
  kNCHWc,   // 5-D blocked feature map: N, C/x, H, W, x
  kOIHW,    // 4-D convolution weight (paper: KCRS)
  kOIHWio,  // 6-D blocked weight: O/y, I/x, H, W, x, y (paper: KCRS[x]c[y]k)
  kFlat,    // 1-D / 2-D tensors (dense layers, detection outputs); blocking-free
};

struct Layout {
  LayoutKind kind = LayoutKind::kFlat;
  // Block (split) sizes; meaning depends on kind:
  //   kNCHWc:  c_block = x
  //   kOIHWio: i_block = x (input-channel block), o_block = y (output-channel block)
  std::int64_t c_block = 0;
  std::int64_t i_block = 0;
  std::int64_t o_block = 0;

  static Layout NCHW() { return {LayoutKind::kNCHW, 0, 0, 0}; }
  static Layout NHWC() { return {LayoutKind::kNHWC, 0, 0, 0}; }
  static Layout NCHWc(std::int64_t x) { return {LayoutKind::kNCHWc, x, 0, 0}; }
  static Layout OIHW() { return {LayoutKind::kOIHW, 0, 0, 0}; }
  static Layout OIHWio(std::int64_t x, std::int64_t y) { return {LayoutKind::kOIHWio, 0, x, y}; }
  static Layout Flat() { return {LayoutKind::kFlat, 0, 0, 0}; }

  bool operator==(const Layout& other) const = default;

  bool IsBlockedFeatureMap() const { return kind == LayoutKind::kNCHWc; }

  // Human-readable form matching the paper's notation, e.g. "NCHW16c", "OIHW16i16o".
  std::string ToString() const;
};

}  // namespace neocpu

#endif  // NEOCPU_SRC_TENSOR_LAYOUT_H_
