// NeoCPU-Repro public umbrella header.
//
// Quickstart:
//   #include "src/neocpu.h"
//   neocpu::Graph model = neocpu::BuildModel("resnet50");
//   neocpu::CompiledModel compiled =
//       neocpu::Compile(model, neocpu::NeoCpuOptions(neocpu::Target::Host()));
//   neocpu::NeoThreadPool pool;
//   neocpu::Rng rng(1);
//   neocpu::Tensor image = neocpu::Tensor::Random({1, 3, 224, 224}, rng, 0.f, 1.f,
//                                                 neocpu::Layout::NCHW());
//   neocpu::Tensor probs = compiled.Run(image, &pool);
#ifndef NEOCPU_SRC_NEOCPU_H_
#define NEOCPU_SRC_NEOCPU_H_

#include "src/base/cpu_info.h"
#include "src/base/logging.h"
#include "src/base/rng.h"
#include "src/base/string_util.h"
#include "src/base/timer.h"
#include "src/core/compiler.h"
#include "src/core/executor.h"
#include "src/core/memory_plan.h"
#include "src/core/presets.h"
#include "src/core/target.h"
#include "src/graph/builder.h"
#include "src/graph/graph.h"
#include "src/models/model_zoo.h"
#include "src/obs/graph_dot.h"
#include "src/obs/metrics.h"
#include "src/obs/node_profiler.h"
#include "src/obs/trace.h"
#include "src/runtime/arena_pool.h"
#include "src/runtime/omp_pool.h"
#include "src/runtime/partition.h"
#include "src/runtime/thread_pool.h"
#include "src/serve/batch_util.h"
#include "src/serve/dynamic_batcher.h"
#include "src/serve/inference_server.h"
#include "src/serve/model_registry.h"
#include "src/serve/serving_stats.h"
#include "src/tensor/layout_transform.h"
#include "src/tensor/tensor.h"
#include "src/tuning/global_search.h"
#include "src/tuning/local_search.h"
#include "src/tuning/tuning_cache.h"
#include "src/tuning/workload_key.h"

#endif  // NEOCPU_SRC_NEOCPU_H_
