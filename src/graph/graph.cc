#include "src/graph/graph.h"

#include "src/base/logging.h"
#include "src/base/string_util.h"

namespace neocpu {

const char* OpTypeName(OpType type) {
  switch (type) {
    case OpType::kInput:
      return "input";
    case OpType::kConstant:
      return "const";
    case OpType::kConv2d:
      return "conv2d";
    case OpType::kBatchNorm:
      return "batch_norm";
    case OpType::kScaleShift:
      return "scale_shift";
    case OpType::kRelu:
      return "relu";
    case OpType::kMaxPool:
      return "max_pool";
    case OpType::kAvgPool:
      return "avg_pool";
    case OpType::kGlobalAvgPool:
      return "global_avg_pool";
    case OpType::kDense:
      return "dense";
    case OpType::kSoftmax:
      return "softmax";
    case OpType::kElemAdd:
      return "elemwise_add";
    case OpType::kConcat:
      return "concat";
    case OpType::kFlatten:
      return "flatten";
    case OpType::kFlattenNHWC:
      return "flatten_nhwc";
    case OpType::kReshape:
      return "reshape";
    case OpType::kDropout:
      return "dropout";
    case OpType::kLayoutTransform:
      return "layout_transform";
    case OpType::kMultiboxDetection:
      return "multibox_detection";
    case OpType::kQuantize:
      return "quantize";
    case OpType::kDequantize:
      return "dequantize";
    case OpType::kLayerNorm:
      return "layer_norm";
    case OpType::kTranspose:
      return "transpose";
    case OpType::kMultiHeadAttention:
      return "multi_head_attention";
  }
  return "?";
}

int Graph::AddNode(OpType type, std::vector<int> inputs, NodeAttrs attrs, std::string name) {
  const int id = static_cast<int>(nodes_.size());
  for (int input : inputs) {
    NEOCPU_CHECK_GE(input, 0);
    NEOCPU_CHECK_LT(input, id) << "graph must be constructed in topological order";
  }
  Node node;
  node.id = id;
  node.type = type;
  node.inputs = std::move(inputs);
  node.attrs = std::move(attrs);
  node.name = name.empty() ? StrFormat("%s_%d", OpTypeName(type), id) : std::move(name);
  nodes_.push_back(std::move(node));
  return id;
}

int Graph::AddInput(std::vector<std::int64_t> dims, std::string name) {
  const int id = AddNode(OpType::kInput, {}, {}, std::move(name));
  nodes_[static_cast<std::size_t>(id)].out_dims = std::move(dims);
  return id;
}

int Graph::AddConstant(Tensor value, std::string name) {
  const int id = AddNode(OpType::kConstant, {}, {}, std::move(name));
  Node& n = nodes_[static_cast<std::size_t>(id)];
  n.out_dims = value.dims();
  n.out_layout = value.layout();
  n.payload = std::move(value);
  return id;
}

std::vector<std::vector<int>> Graph::BuildConsumerIndex() const {
  std::vector<std::vector<int>> consumers(nodes_.size());
  for (const Node& node : nodes_) {
    for (int input : node.inputs) {
      consumers[static_cast<std::size_t>(input)].push_back(node.id);
    }
  }
  return consumers;
}

int Graph::CountNodes(OpType type) const {
  int count = 0;
  for (const Node& node : nodes_) {
    if (node.type == type) {
      ++count;
    }
  }
  return count;
}

std::string Graph::ToString() const {
  std::string out = StrFormat("graph %s (%d nodes)\n", name.c_str(), num_nodes());
  for (const Node& node : nodes_) {
    std::string inputs = JoinMapped(node.inputs, ",", [](int i) { return StrFormat("%d", i); });
    std::string dims = JoinMapped(node.out_dims, "x", [](std::int64_t d) {
      return StrFormat("%lld", static_cast<long long>(d));
    });
    out += StrFormat("  %4d %-18s %-28s in=[%s] out=%s %s\n", node.id, OpTypeName(node.type),
                     node.name.c_str(), inputs.c_str(), dims.c_str(),
                     node.out_layout.ToString().c_str());
  }
  return out;
}

}  // namespace neocpu
