// Convenience layer-by-layer graph construction with deterministic random parameters.
//
// Parameters are drawn from fan-in-scaled uniform distributions (He-style) and BN
// statistics from distributions centered on identity, so activations stay numerically
// stable through arbitrarily deep networks — a requirement for the bit-level
// equivalence testing that replaces the paper's accuracy sanity check.
#ifndef NEOCPU_SRC_GRAPH_BUILDER_H_
#define NEOCPU_SRC_GRAPH_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/graph/graph.h"

namespace neocpu {

class GraphBuilder {
 public:
  explicit GraphBuilder(std::string model_name, std::uint64_t seed = 7);

  Graph& graph() { return graph_; }

  // Finalizes the graph: sets outputs and runs shape inference. Returns the graph.
  Graph Finish(std::vector<int> outputs);

  int Input(std::vector<std::int64_t> dims, std::string name = "data");

  // Convolution; creates the weight (and optional bias) constants. `in_id` must produce
  // a 4-D NCHW value.
  int Conv(int in_id, std::int64_t out_c, std::int64_t kernel, std::int64_t stride,
           std::int64_t pad, bool bias = false, const std::string& name = {});
  // Non-square kernel variant (Inception-v3's 1x7 / 7x1 factorized convolutions).
  int ConvRect(int in_id, std::int64_t out_c, std::int64_t kernel_h, std::int64_t kernel_w,
               std::int64_t stride, std::int64_t pad_h, std::int64_t pad_w, bool bias = false,
               const std::string& name = {});

  int BatchNorm(int in_id, const std::string& name = {});
  int Relu(int in_id);
  int MaxPool(int in_id, std::int64_t kernel, std::int64_t stride, std::int64_t pad,
              bool ceil_mode = false);
  int AvgPool(int in_id, std::int64_t kernel, std::int64_t stride, std::int64_t pad,
              bool ceil_mode = false);
  int GlobalAvgPool(int in_id);
  int Flatten(int in_id);
  int FlattenNHWC(int in_id);
  int Dense(int in_id, std::int64_t units, bool relu = false, const std::string& name = {});
  int Softmax(int in_id);
  int Add(int a, int b);
  int Concat(std::vector<int> inputs);
  int Dropout(int in_id);
  int Reshape(int in_id, std::vector<std::int64_t> dims);
  // Row-wise layer norm over a {M, D} value; creates the gamma/beta {D} constants.
  int LayerNorm(int in_id, float epsilon = 1e-5f, const std::string& name = {});
  // 2-D {M, N} -> {N, M} transpose.
  int Transpose(int in_id, const std::string& name = {});
  // Multi-head attention over already-projected {batch*seq, dim} q/k/v values.
  int MultiHeadAttention(int q, int k, int v, std::int64_t heads, std::int64_t seq,
                         const std::string& name = {});
  int Constant(Tensor value, const std::string& name = {});
  int MultiboxDetect(int cls_prob, int loc_pred, int anchors, MultiboxDetectionParams params);

  // Composite helpers shared across zoo models.
  int ConvBnRelu(int in_id, std::int64_t out_c, std::int64_t kernel, std::int64_t stride,
                 std::int64_t pad, const std::string& name = {});

  Rng& rng() { return rng_; }

 private:
  int AddOp(OpType type, std::vector<int> inputs, NodeAttrs attrs = {}, std::string name = {});
  std::vector<std::int64_t> OutDimsOf(int id) const { return graph_.node(id).out_dims; }

  Graph graph_;
  Rng rng_;
};

}  // namespace neocpu

#endif  // NEOCPU_SRC_GRAPH_BUILDER_H_
