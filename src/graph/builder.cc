#include "src/graph/builder.h"

#include <cmath>

#include "src/base/logging.h"
#include "src/base/string_util.h"
#include "src/graph/shape_infer.h"

namespace neocpu {

GraphBuilder::GraphBuilder(std::string model_name, std::uint64_t seed) : rng_(seed) {
  graph_.name = std::move(model_name);
}

Graph GraphBuilder::Finish(std::vector<int> outputs) {
  graph_.SetOutputs(std::move(outputs));
  InferShapes(&graph_);
  return std::move(graph_);
}

int GraphBuilder::AddOp(OpType type, std::vector<int> inputs, NodeAttrs attrs,
                        std::string name) {
  const int id = graph_.AddNode(type, std::move(inputs), std::move(attrs), std::move(name));
  InferNodeShape(&graph_, id);
  return id;
}

int GraphBuilder::Input(std::vector<std::int64_t> dims, std::string name) {
  return graph_.AddInput(std::move(dims), std::move(name));
}

int GraphBuilder::ConvRect(int in_id, std::int64_t out_c, std::int64_t kernel_h,
                           std::int64_t kernel_w, std::int64_t stride, std::int64_t pad_h,
                           std::int64_t pad_w, bool bias, const std::string& name) {
  const std::vector<std::int64_t> d = OutDimsOf(in_id);
  NEOCPU_CHECK_EQ(static_cast<int>(d.size()), 4);
  NodeAttrs attrs;
  attrs.conv = Conv2dParams{d[0],     d[1],   d[2],   d[3],  out_c, kernel_h,
                            kernel_w, stride, stride, pad_h, pad_w};
  attrs.epilogue.bias = bias;
  const float bound = std::sqrt(2.0f / static_cast<float>(d[1] * kernel_h * kernel_w));
  Tensor weight =
      Tensor::Random({out_c, d[1], kernel_h, kernel_w}, rng_, -bound, bound, Layout::OIHW());
  std::vector<int> inputs = {in_id, graph_.AddConstant(std::move(weight))};
  if (bias) {
    inputs.push_back(graph_.AddConstant(Tensor::Random({out_c}, rng_, -0.1f, 0.1f)));
  }
  return AddOp(OpType::kConv2d, std::move(inputs), std::move(attrs), name);
}

int GraphBuilder::Conv(int in_id, std::int64_t out_c, std::int64_t kernel, std::int64_t stride,
                       std::int64_t pad, bool bias, const std::string& name) {
  return ConvRect(in_id, out_c, kernel, kernel, stride, pad, pad, bias, name);
}

int GraphBuilder::BatchNorm(int in_id, const std::string& name) {
  const std::vector<std::int64_t> d = OutDimsOf(in_id);
  NEOCPU_CHECK_EQ(static_cast<int>(d.size()), 4);
  const std::int64_t c = d[1];
  std::vector<int> inputs = {
      in_id,
      graph_.AddConstant(Tensor::Random({c}, rng_, 0.5f, 1.5f)),   // gamma
      graph_.AddConstant(Tensor::Random({c}, rng_, -0.1f, 0.1f)),  // beta
      graph_.AddConstant(Tensor::Random({c}, rng_, -0.1f, 0.1f)),  // moving mean
      graph_.AddConstant(Tensor::Random({c}, rng_, 0.5f, 1.5f)),   // moving variance
  };
  NodeAttrs attrs;
  attrs.epsilon = 1e-5f;
  return AddOp(OpType::kBatchNorm, std::move(inputs), std::move(attrs), name);
}

int GraphBuilder::Relu(int in_id) { return AddOp(OpType::kRelu, {in_id}); }

int GraphBuilder::MaxPool(int in_id, std::int64_t kernel, std::int64_t stride, std::int64_t pad,
                          bool ceil_mode) {
  NodeAttrs attrs;
  attrs.pool =
      Pool2dParams{PoolType::kMax, kernel, kernel, stride, stride, pad, pad, false, ceil_mode};
  return AddOp(OpType::kMaxPool, {in_id}, std::move(attrs));
}

int GraphBuilder::AvgPool(int in_id, std::int64_t kernel, std::int64_t stride, std::int64_t pad,
                          bool ceil_mode) {
  NodeAttrs attrs;
  attrs.pool =
      Pool2dParams{PoolType::kAvg, kernel, kernel, stride, stride, pad, pad, false, ceil_mode};
  return AddOp(OpType::kAvgPool, {in_id}, std::move(attrs));
}

int GraphBuilder::GlobalAvgPool(int in_id) { return AddOp(OpType::kGlobalAvgPool, {in_id}); }

int GraphBuilder::Flatten(int in_id) { return AddOp(OpType::kFlatten, {in_id}); }

int GraphBuilder::FlattenNHWC(int in_id) { return AddOp(OpType::kFlattenNHWC, {in_id}); }

int GraphBuilder::Dense(int in_id, std::int64_t units, bool relu, const std::string& name) {
  const std::vector<std::int64_t> d = OutDimsOf(in_id);
  NEOCPU_CHECK_EQ(static_cast<int>(d.size()), 2);
  const float bound = std::sqrt(2.0f / static_cast<float>(d[1]));
  std::vector<int> inputs = {
      in_id, graph_.AddConstant(Tensor::Random({units, d[1]}, rng_, -bound, bound)),
      graph_.AddConstant(Tensor::Random({units}, rng_, -0.1f, 0.1f))};
  NodeAttrs attrs;
  attrs.relu = relu;
  return AddOp(OpType::kDense, std::move(inputs), std::move(attrs), name);
}

int GraphBuilder::Softmax(int in_id) { return AddOp(OpType::kSoftmax, {in_id}); }

int GraphBuilder::Add(int a, int b) { return AddOp(OpType::kElemAdd, {a, b}); }

int GraphBuilder::Concat(std::vector<int> inputs) {
  return AddOp(OpType::kConcat, std::move(inputs));
}

int GraphBuilder::Dropout(int in_id) { return AddOp(OpType::kDropout, {in_id}); }

int GraphBuilder::Reshape(int in_id, std::vector<std::int64_t> dims) {
  NodeAttrs attrs;
  attrs.reshape_dims = std::move(dims);
  return AddOp(OpType::kReshape, {in_id}, std::move(attrs));
}

int GraphBuilder::LayerNorm(int in_id, float epsilon, const std::string& name) {
  const std::vector<std::int64_t> d = OutDimsOf(in_id);
  NEOCPU_CHECK(!d.empty());
  const std::int64_t cols = d.back();
  std::vector<int> inputs = {
      in_id, graph_.AddConstant(Tensor::Random({cols}, rng_, 0.5f, 1.5f)),   // gamma
      graph_.AddConstant(Tensor::Random({cols}, rng_, -0.1f, 0.1f))};        // beta
  NodeAttrs attrs;
  attrs.epsilon = epsilon;
  return AddOp(OpType::kLayerNorm, std::move(inputs), std::move(attrs), name);
}

int GraphBuilder::Transpose(int in_id, const std::string& name) {
  return AddOp(OpType::kTranspose, {in_id}, {}, name);
}

int GraphBuilder::MultiHeadAttention(int q, int k, int v, std::int64_t heads,
                                     std::int64_t seq, const std::string& name) {
  NodeAttrs attrs;
  attrs.heads = heads;
  attrs.seq = seq;
  return AddOp(OpType::kMultiHeadAttention, {q, k, v}, std::move(attrs), name);
}

int GraphBuilder::Constant(Tensor value, const std::string& name) {
  return graph_.AddConstant(std::move(value), name);
}

int GraphBuilder::MultiboxDetect(int cls_prob, int loc_pred, int anchors,
                                 MultiboxDetectionParams params) {
  NodeAttrs attrs;
  attrs.det = params;
  return AddOp(OpType::kMultiboxDetection, {cls_prob, loc_pred, anchors}, std::move(attrs));
}

int GraphBuilder::ConvBnRelu(int in_id, std::int64_t out_c, std::int64_t kernel,
                             std::int64_t stride, std::int64_t pad, const std::string& name) {
  int conv = Conv(in_id, out_c, kernel, stride, pad, /*bias=*/false, name);
  int bn = BatchNorm(conv);
  return Relu(bn);
}

}  // namespace neocpu
