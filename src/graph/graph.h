// Computation-graph intermediate representation.
//
// A CNN model is a DAG of operation nodes (paper §2.2). Nodes are stored in topological
// order by construction (every input id is smaller than the node's own id), which is the
// order the executor and all passes walk. Constants (weights, BN statistics, anchors)
// carry their tensor payload; the compiler mutates payloads (folding, pre-transforming)
// without touching the runtime.
#ifndef NEOCPU_SRC_GRAPH_GRAPH_H_
#define NEOCPU_SRC_GRAPH_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/kernels/conv_params.h"
#include "src/kernels/conv_schedule.h"
#include "src/kernels/dense_params.h"
#include "src/kernels/gemm_schedule.h"
#include "src/kernels/multibox.h"
#include "src/kernels/pooling.h"
#include "src/tensor/tensor.h"

namespace neocpu {

enum class OpType {
  kInput,
  kConstant,
  kConv2d,
  kBatchNorm,    // unfolded BN (reference executor); compiler lowers to kScaleShift
  kScaleShift,   // per-channel affine (folded BN), optional fused ReLU
  kRelu,
  kMaxPool,
  kAvgPool,
  kGlobalAvgPool,
  kDense,
  kSoftmax,
  kElemAdd,      // optional fused ReLU
  kConcat,       // channel axis for 4-D/5-D inputs; last axis for flat inputs
  kFlatten,      // NCHW -> {N, CHW}; layout-dependent
  kFlattenNHWC,  // permute NCHW->NHWC then flatten; layout-dependent (SSD heads)
  kReshape,
  kDropout,      // identity at inference; removed by simplification
  kLayoutTransform,
  kMultiboxDetection,
  kQuantize,     // f32 -> s8/u8 with a per-tensor scale (+ zero point for u8)
  kDequantize,   // s8/u8 -> f32
  kLayerNorm,    // row-wise layer normalization with gamma/beta (transformer blocks)
  kTranspose,    // 2-D {M, N} -> {N, M} transpose on flat tensors
  kMultiHeadAttention,  // softmax(QK^T/sqrt(dh))V over {batch*seq, dim} Q/K/V inputs
};

const char* OpTypeName(OpType type);

// How a convolution node executes (bound by the compiler, not the model author).
// Enumerator values appear in serialized modules — append only.
enum class ConvKernelKind {
  kDirectNCHW,  // reference/baseline direct convolution in NCHW
  kIm2col,      // im2col + GEMM in NCHW (framework-default baseline)
  kNCHWc,       // Algorithm 1 template in NCHW[x]c
  kWinograd,    // F(2x2, 3x3) in NCHW; weights pre-transformed to {4, 4, OC, IC}
  kNCHWcS8,     // quantized s8xs8->s32 template in NCHW[x]c with fused (re/de)quant
};

// Quantization annotation of a conv (or dense) node (set by the QuantizeGraph pass;
// consumed by AlterConvLayout's weight pre-quantization and the runtime dispatch).
// Scales follow kernels/quantize.h: symmetric for s8 (zero point 0), affine for u8
// (q = clamp(round(x/scale) + zp, 0, 255)). The input zero point never reaches the
// kernel's inner loop — AlterConvLayout folds the correction term
// (bias'[oc] -= in_zero * sum(w_s8[oc,...])) into the s32 bias constant.
struct ConvQuant {
  bool enabled = false;
  float in_scale = 1.0f;   // scale of the integer data input
  float out_scale = 1.0f;  // requantization scale of the integer output (iff requant)
  // true: the conv re-quantizes to an integer output (an integer consumer chain
  // follows); false: the epilogue dequantizes straight to f32 (no separate
  // kDequantize node needed).
  bool requant = true;
  DType adtype = DType::kS8;       // activation (data-input) dtype: kS8 or kU8
  std::int32_t in_zero = 0;        // input zero point (0 for s8 activations)
  DType out_dtype = DType::kS8;    // requantized output dtype (iff requant)
  std::int32_t out_zero = 0;       // output zero point (0 for s8 outputs)

  bool operator==(const ConvQuant&) const = default;
};

// One attribute bag serves all op types; only the fields relevant to a node's OpType are
// meaningful. (A few hundred nodes per model make the footprint irrelevant, and this
// keeps pass code free of variant plumbing.)
struct NodeAttrs {
  Conv2dParams conv;
  ConvEpilogue epilogue;
  ConvSchedule schedule;
  ConvKernelKind kernel = ConvKernelKind::kDirectNCHW;
  ConvQuant qconv;          // kConv2d / kDense under the quantized path
  float qscale = 1.0f;      // kQuantize / kDequantize per-tensor scale; for integer
                            // pooling/concat, the scale of the integer OUTPUT
  std::int32_t qzero = 0;   // zero point (0 for s8; meaningful for u8)
  DType qdtype = DType::kS8;  // kQuantize target dtype
  // Integer concat only: per-input (scale, zero point) of the incoming integer
  // tensors; the concat kernel rescales each input to (qscale, qzero) while copying.
  std::vector<float> qin_scales;
  std::vector<std::int32_t> qin_zeros;
  Pool2dParams pool;
  float epsilon = 1e-5f;
  bool relu = false;  // fused ReLU for kScaleShift / kElemAdd / kDense
  Layout dst_layout;  // kLayoutTransform target
  std::vector<std::int64_t> reshape_dims;
  MultiboxDetectionParams det;
  // kDense under the tuned packed-GEMM path (set by AlterConvLayout when the search
  // assigned a schedule): the blocking tuple, the workload shape (workspace sizing,
  // profiling), and the flag that routes dispatch to the packed kernels. Weights are
  // pre-packed into the panel layout at compile time when has_gemm is set.
  GemmSchedule gemm;
  DenseParams dense;
  bool has_gemm = false;
  // kMultiHeadAttention: head count and sequence length (rows = batch * seq).
  std::int64_t heads = 0;
  std::int64_t seq = 0;
};

struct Node {
  int id = -1;
  OpType type = OpType::kInput;
  std::string name;
  std::vector<int> inputs;
  NodeAttrs attrs;
  Tensor payload;  // kConstant only

  // Filled by shape/layout inference. out_dims are logical dims (NCHW semantics for
  // feature maps); out_layout describes the physical arrangement at runtime; out_dtype
  // the element type flowing out (s8 inside quantized conv chains, f32 elsewhere).
  std::vector<std::int64_t> out_dims;
  Layout out_layout = Layout::NCHW();
  DType out_dtype = DType::kF32;

  bool IsConv() const { return type == OpType::kConv2d; }
};

class Graph {
 public:
  int AddNode(OpType type, std::vector<int> inputs, NodeAttrs attrs = {},
              std::string name = {});
  int AddInput(std::vector<std::int64_t> dims, std::string name = "data");
  int AddConstant(Tensor value, std::string name = {});

  Node& node(int id) { return nodes_[static_cast<std::size_t>(id)]; }
  const Node& node(int id) const { return nodes_[static_cast<std::size_t>(id)]; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  void SetOutputs(std::vector<int> outputs) { outputs_ = std::move(outputs); }
  const std::vector<int>& outputs() const { return outputs_; }

  // consumers()[i] lists the node ids that read node i's output.
  std::vector<std::vector<int>> BuildConsumerIndex() const;

  // Count of nodes by type (used by tests and reporting).
  int CountNodes(OpType type) const;

  std::string ToString() const;

  std::string name;

 private:
  std::vector<Node> nodes_;
  std::vector<int> outputs_;
};

}  // namespace neocpu

#endif  // NEOCPU_SRC_GRAPH_GRAPH_H_
