#include "src/graph/shape_infer.h"

#include "src/base/logging.h"

namespace neocpu {

void InferNodeShape(Graph* graph, int id) {
  {
    Node& node = graph->node(id);
    auto in_dims = [&](int i) -> const std::vector<std::int64_t>& {
      return graph->node(node.inputs[static_cast<std::size_t>(i)]).out_dims;
    };
    switch (node.type) {
      case OpType::kInput:
      case OpType::kConstant:
        NEOCPU_CHECK(!node.out_dims.empty()) << node.name << ": missing dims";
        break;
      case OpType::kConv2d: {
        const Conv2dParams& p = node.attrs.conv;
        const auto& d = in_dims(0);
        NEOCPU_CHECK_EQ(static_cast<int>(d.size()), 4) << node.name;
        NEOCPU_CHECK_EQ(d[1], p.in_c) << node.name;
        NEOCPU_CHECK_EQ(d[2], p.in_h) << node.name;
        NEOCPU_CHECK_EQ(d[3], p.in_w) << node.name;
        node.out_dims = {d[0], p.out_c, p.OutH(), p.OutW()};
        break;
      }
      case OpType::kBatchNorm:
      case OpType::kScaleShift:
      case OpType::kRelu:
      case OpType::kDropout:
        node.out_dims = in_dims(0);
        break;
      case OpType::kMaxPool:
      case OpType::kAvgPool: {
        const Pool2dParams& p = node.attrs.pool;
        const auto& d = in_dims(0);
        NEOCPU_CHECK_EQ(static_cast<int>(d.size()), 4) << node.name;
        node.out_dims = {d[0], d[1], p.OutH(d[2]), p.OutW(d[3])};
        break;
      }
      case OpType::kGlobalAvgPool: {
        const auto& d = in_dims(0);
        node.out_dims = {d[0], d[1], 1, 1};
        break;
      }
      case OpType::kDense: {
        const auto& d = in_dims(0);
        NEOCPU_CHECK_EQ(static_cast<int>(d.size()), 2) << node.name;
        if (node.attrs.has_gemm) {
          // Tuned packed-GEMM dense: the weight constant is a flat pre-packed panel
          // buffer, so the logical {N, K} shape lives in attrs.dense instead.
          NEOCPU_CHECK_EQ(d[1], node.attrs.dense.k) << node.name;
          node.out_dims = {d[0], node.attrs.dense.n};
          break;
        }
        const auto& w = in_dims(1);
        NEOCPU_CHECK_EQ(d[1], w[1]) << node.name;
        node.out_dims = {d[0], w[0]};
        break;
      }
      case OpType::kSoftmax:
        node.out_dims = in_dims(0);
        break;
      case OpType::kElemAdd:
        NEOCPU_CHECK(in_dims(0) == in_dims(1)) << node.name;
        node.out_dims = in_dims(0);
        break;
      case OpType::kConcat: {
        const auto& first = in_dims(0);
        node.out_dims = first;
        const std::size_t axis = first.size() == 4 ? 1 : first.size() - 1;
        std::int64_t total = 0;
        for (std::size_t i = 0; i < node.inputs.size(); ++i) {
          const auto& d = in_dims(static_cast<int>(i));
          NEOCPU_CHECK_EQ(d.size(), first.size()) << node.name;
          total += d[axis];
        }
        node.out_dims[axis] = total;
        break;
      }
      case OpType::kFlatten:
      case OpType::kFlattenNHWC: {
        const auto& d = in_dims(0);
        NEOCPU_CHECK_EQ(static_cast<int>(d.size()), 4) << node.name;
        node.out_dims = {d[0], d[1] * d[2] * d[3]};
        break;
      }
      case OpType::kReshape: {
        std::int64_t total = 1;
        for (std::int64_t v : in_dims(0)) {
          total *= v;
        }
        std::int64_t given = 1;
        for (std::int64_t v : node.attrs.reshape_dims) {
          given *= v;
        }
        NEOCPU_CHECK_EQ(total, given) << node.name;
        node.out_dims = node.attrs.reshape_dims;
        break;
      }
      case OpType::kLayoutTransform:
        node.out_dims = in_dims(0);
        break;
      case OpType::kMultiboxDetection:
        node.out_dims = {node.attrs.det.keep_top_k, 6};
        break;
      case OpType::kQuantize:
      case OpType::kDequantize:
        node.out_dims = in_dims(0);
        break;
      case OpType::kLayerNorm:
      case OpType::kMultiHeadAttention:
        node.out_dims = in_dims(0);
        break;
      case OpType::kTranspose: {
        const auto& d = in_dims(0);
        NEOCPU_CHECK_EQ(static_cast<int>(d.size()), 2) << node.name;
        node.out_dims = {d[1], d[0]};
        break;
      }
    }
  }
  // Dtype inference: s8/u8 enters at kQuantize (or a quantized conv's requantizing
  // epilogue), leaves at kDequantize (or a dequantizing epilogue), and flows through
  // layout transforms and the integer-native structural ops (pooling, concat — the
  // QuantizeGraph pass only routes integer tensors into them when it rewrote them to
  // execute in the integer domain); every other op produces f32.
  {
    Node& node = graph->node(id);
    auto in_dtype = [&](int i) {
      return graph->node(node.inputs[static_cast<std::size_t>(i)]).out_dtype;
    };
    switch (node.type) {
      case OpType::kInput:
        node.out_dtype = DType::kF32;
        break;
      case OpType::kConstant:
        node.out_dtype = node.payload.dtype();
        break;
      case OpType::kQuantize:
        node.out_dtype = node.attrs.qdtype;
        break;
      case OpType::kDequantize:
        node.out_dtype = DType::kF32;
        break;
      case OpType::kConv2d:
      case OpType::kDense:
        node.out_dtype = node.attrs.qconv.enabled && node.attrs.qconv.requant
                             ? node.attrs.qconv.out_dtype
                             : DType::kF32;
        break;
      case OpType::kLayoutTransform:
      case OpType::kMaxPool:
      case OpType::kAvgPool:
      case OpType::kConcat:
        node.out_dtype = in_dtype(0);
        break;
      default:
        node.out_dtype = DType::kF32;
        break;
    }
  }
}

void InferShapes(Graph* graph) {
  for (int id = 0; id < graph->num_nodes(); ++id) {
    InferNodeShape(graph, id);
  }
}

bool RebindBatchDim(Graph* graph, std::int64_t batch) {
  if (batch < 1) {
    return false;
  }
  std::int64_t old_batch = -1;
  for (int id = 0; id < graph->num_nodes(); ++id) {
    const Node& node = graph->node(id);
    switch (node.type) {
      case OpType::kInput:
        if (node.out_dims.empty()) {
          return false;
        }
        if (old_batch < 0) {
          old_batch = node.out_dims[0];
        } else if (node.out_dims[0] != old_batch) {
          return false;
        }
        break;
      case OpType::kMultiboxDetection:
        return false;  // emits {keep_top_k, 6} regardless of N; cannot batch
      case OpType::kReshape:
        // Rebinding scales every tensor's leading dim, so a reshape is only
        // batch-preserving when its leading target dim carries the batch — i.e. is a
        // multiple of it (then scaling it proportionally keeps per-sample rows intact;
        // transformer graphs reshape {B, S*D} <-> {B*S, D} and both directions pass).
        // Anything else would trip shape inference's element-count check fatally
        // mid-serve; refuse up front instead. Inputs precede their consumers in
        // topological order, so old_batch is known here.
        if (node.attrs.reshape_dims.empty() ||
            node.attrs.reshape_dims[0] % old_batch != 0) {
          return false;
        }
        break;
      default:
        break;
    }
  }
  if (old_batch < 0) {
    return false;
  }
  if (old_batch == batch) {
    return true;
  }
  for (int id = 0; id < graph->num_nodes(); ++id) {
    Node& node = graph->node(id);
    if (node.type == OpType::kInput) {
      node.out_dims[0] = batch;
    } else if (node.type == OpType::kConv2d) {
      // The conv kernels size their output and outer loop from the workload descriptor,
      // not the incoming tensor, so the baked batch must follow the graph's.
      node.attrs.conv.batch = batch;
    } else if (node.type == OpType::kReshape && !node.attrs.reshape_dims.empty() &&
               node.attrs.reshape_dims[0] % old_batch == 0) {
      node.attrs.reshape_dims[0] = node.attrs.reshape_dims[0] / old_batch * batch;
    } else if (node.type == OpType::kDense && node.attrs.has_gemm) {
      // Packed-dense row count follows the leading dim (rows are batch-proportional:
      // either the batch itself or batch*seq inside a transformer block).
      node.attrs.dense.m = node.attrs.dense.m / old_batch * batch;
    }
  }
  InferShapes(graph);
  return true;
}

}  // namespace neocpu
