// Shape inference: fills Node::out_dims (logical NCHW-semantics dims) for every node.
// Runs after construction and after every structural pass; the builder runs it
// incrementally so layer helpers can read their input dims during construction.
#ifndef NEOCPU_SRC_GRAPH_SHAPE_INFER_H_
#define NEOCPU_SRC_GRAPH_SHAPE_INFER_H_

#include "src/graph/graph.h"

namespace neocpu {

// Infers logical output dims for node `id` from its inputs' (already inferred) dims.
void InferNodeShape(Graph* graph, int id);

// Infers logical output dims for all nodes. Inputs and constants must already have dims.
void InferShapes(Graph* graph);

// Rewrites the graph's batch dimension: sets every kInput node's leading dim to `batch`,
// patches conv workload descriptors and kReshape attributes whose leading dim is the
// batch, and re-runs shape inference. The transformation is schedule- and
// layout-preserving — schedules never depend on the batch size — so a compiled graph
// stays compiled; only the logical dims change. Returns false (graph untouched) when
// the graph cannot be batch-rebound: no inputs, inconsistent input batch dims, a
// kReshape whose leading target dim is not the batch, or ops whose semantics bake in
// the batch size (kMultiboxDetection emits one detection set regardless of N).
bool RebindBatchDim(Graph* graph, std::int64_t batch);

}  // namespace neocpu

#endif  // NEOCPU_SRC_GRAPH_SHAPE_INFER_H_
