// Shape inference: fills Node::out_dims (logical NCHW-semantics dims) for every node.
// Runs after construction and after every structural pass; the builder runs it
// incrementally so layer helpers can read their input dims during construction.
#ifndef NEOCPU_SRC_GRAPH_SHAPE_INFER_H_
#define NEOCPU_SRC_GRAPH_SHAPE_INFER_H_

#include "src/graph/graph.h"

namespace neocpu {

// Infers logical output dims for node `id` from its inputs' (already inferred) dims.
void InferNodeShape(Graph* graph, int id);

// Infers logical output dims for all nodes. Inputs and constants must already have dims.
void InferShapes(Graph* graph);

}  // namespace neocpu

#endif  // NEOCPU_SRC_GRAPH_SHAPE_INFER_H_
