// Helper for passes that rebuild a graph in topological order with id remapping.
#ifndef NEOCPU_SRC_GRAPH_PASSES_REWRITER_H_
#define NEOCPU_SRC_GRAPH_PASSES_REWRITER_H_

#include <vector>

#include "src/base/logging.h"
#include "src/graph/graph.h"

namespace neocpu {

class GraphRewriter {
 public:
  explicit GraphRewriter(const Graph& src) : src_(src), map_(src.num_nodes(), -1) {
    dst_.name = src.name;
  }

  const Graph& src() const { return src_; }
  Graph& dst() { return dst_; }

  // New id for an already-processed source node.
  int Lookup(int orig_id) const {
    const int mapped = map_[static_cast<std::size_t>(orig_id)];
    NEOCPU_CHECK_GE(mapped, 0) << "source node " << orig_id << " not yet rewritten";
    return mapped;
  }

  void MapTo(int orig_id, int new_id) { map_[static_cast<std::size_t>(orig_id)] = new_id; }

  // Copies `node` verbatim (inputs remapped); maps it and returns the new id.
  int CopyNode(const Node& node) {
    std::vector<int> inputs;
    inputs.reserve(node.inputs.size());
    for (int input : node.inputs) {
      inputs.push_back(Lookup(input));
    }
    int id;
    if (node.type == OpType::kConstant) {
      id = dst_.AddConstant(node.payload, node.name);
    } else if (node.type == OpType::kInput) {
      id = dst_.AddInput(node.out_dims, node.name);
    } else {
      id = dst_.AddNode(node.type, std::move(inputs), node.attrs, node.name);
    }
    dst_.node(id).out_layout = node.out_layout;
    MapTo(node.id, id);
    return id;
  }

  // Remaps the source outputs and finalizes.
  Graph Finish() {
    std::vector<int> outputs;
    outputs.reserve(src_.outputs().size());
    for (int out : src_.outputs()) {
      outputs.push_back(Lookup(out));
    }
    dst_.SetOutputs(std::move(outputs));
    return std::move(dst_);
  }

 private:
  const Graph& src_;
  Graph dst_;
  std::vector<int> map_;
};

}  // namespace neocpu

#endif  // NEOCPU_SRC_GRAPH_PASSES_REWRITER_H_
