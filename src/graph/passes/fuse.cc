#include "src/base/logging.h"
#include "src/graph/passes/passes.h"
#include "src/graph/passes/rewriter.h"
#include "src/graph/shape_infer.h"

namespace neocpu {
namespace {

// Returns the unique consumer of `id`, or -1 when it has zero or multiple consumers or
// is a graph output (whose value must stay materialized).
int UniqueConsumer(const Graph& g, const std::vector<std::vector<int>>& consumers, int id) {
  const auto& list = consumers[static_cast<std::size_t>(id)];
  if (list.size() != 1) {
    return -1;
  }
  for (int out : g.outputs()) {
    if (out == id) {
      return -1;
    }
  }
  return list[0];
}

}  // namespace

Graph FuseOps(const Graph& graph) {
  const auto consumers = graph.BuildConsumerIndex();
  const int n = graph.num_nodes();

  // absorbed_into[i] = conv/ScaleShift/Add node that absorbs node i's computation.
  std::vector<int> absorbed_into(static_cast<std::size_t>(n), -1);
  // Fusion decisions keyed by the absorbing node.
  std::vector<ConvEpilogue> conv_epilogue(static_cast<std::size_t>(n));
  std::vector<int> conv_residual(static_cast<std::size_t>(n), -1);
  std::vector<bool> fuse_relu(static_cast<std::size_t>(n), false);

  for (int id = 0; id < n; ++id) {
    const Node& node = graph.node(id);
    if (node.IsConv()) {
      conv_epilogue[static_cast<std::size_t>(id)] = node.attrs.epilogue;
      int cur = id;
      // conv -> elemwise_add: absorb the add as a residual epilogue when this conv is
      // the add's later operand (the other operand is then already computed).
      int next = UniqueConsumer(graph, consumers, cur);
      if (next >= 0 && graph.node(next).type == OpType::kElemAdd &&
          !conv_epilogue[static_cast<std::size_t>(id)].residual_add) {
        const Node& add = graph.node(next);
        const int other = add.inputs[0] == cur ? add.inputs[1] : add.inputs[0];
        if (other != cur && other < id) {
          conv_epilogue[static_cast<std::size_t>(id)].residual_add = true;
          conv_residual[static_cast<std::size_t>(id)] = other;
          absorbed_into[static_cast<std::size_t>(next)] = id;
          cur = next;
        }
      }
      // (conv | conv+add) -> relu: absorb the activation.
      next = UniqueConsumer(graph, consumers, cur);
      if (next >= 0 && graph.node(next).type == OpType::kRelu) {
        conv_epilogue[static_cast<std::size_t>(id)].relu = true;
        absorbed_into[static_cast<std::size_t>(next)] = id;
      }
    } else if (node.type == OpType::kScaleShift && !node.attrs.relu) {
      const int next = UniqueConsumer(graph, consumers, id);
      if (next >= 0 && graph.node(next).type == OpType::kRelu) {
        fuse_relu[static_cast<std::size_t>(id)] = true;
        absorbed_into[static_cast<std::size_t>(next)] = id;
      }
    } else if (node.type == OpType::kElemAdd && !node.attrs.relu &&
               absorbed_into[static_cast<std::size_t>(id)] < 0) {
      // Standalone add (not fused into a conv): still fuse a trailing ReLU.
      const int next = UniqueConsumer(graph, consumers, id);
      if (next >= 0 && graph.node(next).type == OpType::kRelu) {
        fuse_relu[static_cast<std::size_t>(id)] = true;
        absorbed_into[static_cast<std::size_t>(next)] = id;
      }
    }
  }

  GraphRewriter rw(graph);
  for (int id = 0; id < n; ++id) {
    const Node& node = graph.node(id);
    if (absorbed_into[static_cast<std::size_t>(id)] >= 0) {
      rw.MapTo(id, rw.Lookup(absorbed_into[static_cast<std::size_t>(id)]));
      continue;
    }
    if (node.IsConv()) {
      NodeAttrs attrs = node.attrs;
      attrs.epilogue = conv_epilogue[static_cast<std::size_t>(id)];
      std::vector<int> inputs;
      for (int input : node.inputs) {
        inputs.push_back(rw.Lookup(input));
      }
      if (conv_residual[static_cast<std::size_t>(id)] >= 0) {
        inputs.push_back(rw.Lookup(conv_residual[static_cast<std::size_t>(id)]));
      }
      const int new_id =
          rw.dst().AddNode(OpType::kConv2d, std::move(inputs), std::move(attrs), node.name);
      rw.MapTo(id, new_id);
      continue;
    }
    const int new_id = rw.CopyNode(node);
    if (fuse_relu[static_cast<std::size_t>(id)]) {
      rw.dst().node(new_id).attrs.relu = true;
    }
  }
  Graph out = rw.Finish();
  InferShapes(&out);
  return out;
}

}  // namespace neocpu
