// Graph-level optimization passes.
//
// Pipeline (paper §3 + Figure 2):
//   1. SimplifyInference — drop Dropout, lower BatchNorm to per-channel ScaleShift with
//      compile-time-folded constants, then fold ScaleShift into the producing
//      convolution when the convolution has no other consumer.
//   2. FuseOps — fuse ReLU / residual-add(+ReLU) epilogues into convolutions and ReLU
//      into remaining ScaleShift nodes, raising arithmetic intensity (§2.2).
//   3. AlterConvLayout — rewrite convolutions to the NCHW[x]c template with the
//      schedules chosen by the search, pre-transform weight constants to
//      OIHW[x]i[y]o at compile time, propagate layouts through layout-oblivious /
//      layout-tolerant operations, and insert LayoutTransform nodes only where layouts
//      genuinely change (§3.2).
//
// Every pass returns a new Graph (nodes are rebuilt in topological order); shape
// inference is re-run internally.
#ifndef NEOCPU_SRC_GRAPH_PASSES_PASSES_H_
#define NEOCPU_SRC_GRAPH_PASSES_PASSES_H_

#include <map>

#include "src/graph/graph.h"
#include "src/kernels/conv_schedule.h"
#include "src/kernels/gemm_schedule.h"

namespace neocpu {

Graph SimplifyInference(const Graph& graph);

Graph FuseOps(const Graph& graph);

// Observed activation range of one tensor (node output), recorded by the executor's
// CalibrationObserver on sample inputs and consumed by QuantizeGraph.
struct TensorRange {
  float min = 0.0f;
  float max = 0.0f;

  void Merge(const TensorRange& other) {
    min = other.min < min ? other.min : min;
    max = other.max > max ? other.max : max;
  }
};

// Node id (in the fused pre-layout source graph) -> observed output range.
using CalibrationTable = std::map<int, TensorRange>;

// How the calibration observer reduces observed activations to a quantization range.
// Enumerator values appear in serialized modules — append only.
enum class CalibrationPolicy {
  kMinMax = 0,      // exact observed min/max (one pass; outlier-sensitive)
  kPercentile = 1,  // clip to the central 99.9% of observed mass (histogram pass)
  kEntropy = 2,     // KL-divergence-minimizing clip (TensorRT-style; histogram pass)
};

const char* CalibrationPolicyName(CalibrationPolicy policy);

// True when `node` (a conv in the fused source graph) can execute the quantized s8
// kernel: constant weight, no fused residual add (int8's legality window, like
// Winograd's), and calibrated ranges for both its data input and its output.
bool QuantizeLegal(const Graph& graph, int id, const CalibrationTable& calibration);

struct QuantizeGraphOptions {
  // Quantize kDense nodes with constant weights. Dense nodes carrying a u8 tuned-GEMM
  // schedule (in `dense_schedules`) take the packed u8*s8 kernel with requantization,
  // so Dense->Dense chains (transformer FFNs) stay integer end to end; dense nodes
  // without one fall back to the legacy s8-in/f32-out DenseS8 epilogue. Off by
  // default: dense layers end the network where the fp32 tolerance of the pre-existing
  // zoo contracts is tightest.
  bool quantize_dense = false;
};

// Post-training quantization rewrite. `schedules` maps conv node id -> chosen schedule
// (keyed against `graph`); convs whose schedule carries an integer dtype (s8 or u8) are
// rewritten to the quantized form:
//   * a kQuantize node (symmetric s8 / affine u8, range from the calibrated input)
//     feeds the conv unless the producer already yields an integer tensor — chains of
//     quantized convs stay integer with no Q/DQ pair between them (the DQ->Q
//     cancellation, done constructively);
//   * pooling and concat between quantized convs execute natively in the integer
//     domain (max pool compares raw codes — quantization is monotonic; avg pool
//     accumulates in s32; concat rescales each input to the concat's own calibrated range
//     while copying), so chains survive structural ops instead of bouncing through
//     DQ->Q pairs. An integer pool/concat is emitted only when an integer consumer
//     actually follows — otherwise the producing conv keeps its free fused-dequantize
//     epilogue;
//   * the conv keeps its fp32 weight constant but gains ConvQuant attrs (in/out
//     scale/zero-point/dtype); AlterConvLayout later pre-quantizes the weights per
//     output channel, VNNI-packs them for u8 activations, and folds the bias (and the
//     u8 zero-point correction) to s32;
//   * consumers that need fp32 read a kDequantize of the conv's integer output; when
//     NO consumer stays integer the dequantization fuses into the conv epilogue
//     instead (ConvQuant::requant = false) and no kDequantize node is emitted.
// A conv's requantized OUTPUT dtype follows what its integer consumers demand (falling
// back to s8 on disagreement), independent of its own activation dtype — so an s8 stem
// conv can feed a u8 chain and vice versa.
// On return *schedules is re-keyed to the rewritten graph's conv ids, and
// *dense_schedules (optional; dense node id -> tuned GEMM schedule) likewise.
Graph QuantizeGraph(const Graph& graph, const CalibrationTable& calibration,
                    std::map<int, ConvSchedule>* schedules,
                    const QuantizeGraphOptions& options = {},
                    std::map<int, GemmSchedule>* dense_schedules = nullptr);

// Layout placement strategy for AlterConvLayout.
enum class LayoutPlacement {
  kPerOp,       // every conv transforms NCHW -> NCHW[x]c -> NCHW around itself
                // (framework + fixed-library behaviour; Table 3 row "Layout Opt.")
  kPropagate,   // keep the blocked layout flowing between convs; insert transforms only
                // on mismatch (Table 3 rows "Transform Elim." and "Global Search")
};

// `schedules` maps conv node id (in `graph`) to its chosen schedule. Convs not in the
// map keep their NCHW kernel. Weight constants are pre-transformed in the result.
// `dense_schedules` (optional) maps dense node id to its tuned GEMM schedule: those
// dense nodes get their weight constant pre-packed into the kernel's panel layout
// (f32, or per-row-quantized s8 with the bias folded to s32 for u8 schedules) and
// execute through the packed GEMM family.
Graph AlterConvLayout(const Graph& graph, const std::map<int, ConvSchedule>& schedules,
                      LayoutPlacement placement,
                      const std::map<int, GemmSchedule>* dense_schedules = nullptr);

// Assigns ConvKernelKind for NCHW execution (baseline paths; no layout change).
Graph BindNchwKernels(const Graph& graph, ConvKernelKind kind);

}  // namespace neocpu

#endif  // NEOCPU_SRC_GRAPH_PASSES_PASSES_H_
