// Graph-level optimization passes.
//
// Pipeline (paper §3 + Figure 2):
//   1. SimplifyInference — drop Dropout, lower BatchNorm to per-channel ScaleShift with
//      compile-time-folded constants, then fold ScaleShift into the producing
//      convolution when the convolution has no other consumer.
//   2. FuseOps — fuse ReLU / residual-add(+ReLU) epilogues into convolutions and ReLU
//      into remaining ScaleShift nodes, raising arithmetic intensity (§2.2).
//   3. AlterConvLayout — rewrite convolutions to the NCHW[x]c template with the
//      schedules chosen by the search, pre-transform weight constants to
//      OIHW[x]i[y]o at compile time, propagate layouts through layout-oblivious /
//      layout-tolerant operations, and insert LayoutTransform nodes only where layouts
//      genuinely change (§3.2).
//
// Every pass returns a new Graph (nodes are rebuilt in topological order); shape
// inference is re-run internally.
#ifndef NEOCPU_SRC_GRAPH_PASSES_PASSES_H_
#define NEOCPU_SRC_GRAPH_PASSES_PASSES_H_

#include <map>

#include "src/graph/graph.h"

namespace neocpu {

Graph SimplifyInference(const Graph& graph);

Graph FuseOps(const Graph& graph);

// Layout placement strategy for AlterConvLayout.
enum class LayoutPlacement {
  kPerOp,       // every conv transforms NCHW -> NCHW[x]c -> NCHW around itself
                // (framework + fixed-library behaviour; Table 3 row "Layout Opt.")
  kPropagate,   // keep the blocked layout flowing between convs; insert transforms only
                // on mismatch (Table 3 rows "Transform Elim." and "Global Search")
};

// `schedules` maps conv node id (in `graph`) to its chosen schedule. Convs not in the
// map keep their NCHW kernel. Weight constants are pre-transformed in the result.
Graph AlterConvLayout(const Graph& graph, const std::map<int, ConvSchedule>& schedules,
                      LayoutPlacement placement);

// Assigns ConvKernelKind for NCHW execution (baseline paths; no layout change).
Graph BindNchwKernels(const Graph& graph, ConvKernelKind kind);

}  // namespace neocpu

#endif  // NEOCPU_SRC_GRAPH_PASSES_PASSES_H_
