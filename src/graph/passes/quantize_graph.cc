// Post-training quantization pass (see passes.h for the contract).
//
// The pass runs AFTER schedule selection: the local search ranked an s8 space next to
// the fp32 spaces, and the global DP/PBQP weighed per-conv s8 gains against quantize/
// dequantize boundary costs — so by the time we are here, "which convs run int8" is
// simply "whose chosen schedule says dtype s8". The rewrite inserts the minimal Q/DQ
// boundary ops: Q only where fp32 actually enters a quantized conv, DQ only where s8
// actually leaves one (fused into the conv's epilogue when nothing downstream stays
// s8). Adjacent quantized convs connect directly in s8 — the DQ->Q cancellation of
// IntelCaffe's pipeline, performed constructively instead of as a peephole.
#include "src/base/logging.h"
#include "src/graph/passes/passes.h"
#include "src/graph/passes/rewriter.h"
#include "src/graph/shape_infer.h"
#include "src/kernels/quantize.h"

namespace neocpu {

bool QuantizeLegal(const Graph& graph, int id, const CalibrationTable& calibration) {
  const Node& node = graph.node(id);
  if (!node.IsConv() || node.attrs.epilogue.residual_add) {
    return false;
  }
  const Node& weight = graph.node(node.inputs[1]);
  if (!weight.payload.defined() || weight.payload.dtype() != DType::kF32) {
    return false;
  }
  return calibration.count(node.inputs[0]) > 0 && calibration.count(id) > 0;
}

Graph QuantizeGraph(const Graph& graph, const CalibrationTable& calibration,
                    std::map<int, ConvSchedule>* schedules) {
  NEOCPU_CHECK(schedules != nullptr);
  const auto consumers = graph.BuildConsumerIndex();
  std::vector<char> escapes(static_cast<std::size_t>(graph.num_nodes()), 0);
  for (int out : graph.outputs()) {
    escapes[static_cast<std::size_t>(out)] = 1;
  }

  // The quantized set: convs whose chosen schedule is s8 AND that are legal (the
  // selection layers only offer s8 options to legal convs; re-check defensively).
  auto quantized = [&](int id) {
    const auto it = schedules->find(id);
    return it != schedules->end() && it->second.IsQuantized() &&
           QuantizeLegal(graph, id, calibration);
  };

  GraphRewriter rw(graph);
  std::map<int, ConvSchedule> remapped;
  // One kQuantize per (fp32 source, scale): quantized convs sharing a producer (and
  // therefore a calibrated scale) share the quantize pass and its s8 buffer instead of
  // re-converting the feature map per branch (inception-style fan-out).
  std::map<std::pair<int, float>, int> quantize_nodes;
  for (int id = 0; id < graph.num_nodes(); ++id) {
    const Node& node = graph.node(id);
    if (!node.IsConv() || !quantized(id)) {
      const int new_id = rw.CopyNode(node);
      const auto it = schedules->find(id);
      if (it != schedules->end()) {
        remapped[new_id] = it->second;
      }
      continue;
    }

    const float in_scale = SymmetricScale(calibration.at(node.inputs[0]).min,
                                          calibration.at(node.inputs[0]).max);
    const float out_scale =
        SymmetricScale(calibration.at(id).min, calibration.at(id).max);

    // Data input: reuse an s8 producer at the same scale (the producing quantized
    // conv's requantized output — both scales derive from the calibration range of the
    // same tensor, so they agree by construction), unwrapping the producer's
    // dequantize when it has mixed consumers; only genuinely-fp32 sources get a
    // kQuantize inserted.
    int data = rw.Lookup(node.inputs[0]);
    {
      auto s8_producer = [&](int candidate) {
        const Node& m = rw.dst().node(candidate);
        return m.type == OpType::kConv2d && m.attrs.qconv.enabled &&
               m.attrs.qconv.requant && m.attrs.qconv.out_scale == in_scale;
      };
      const Node& mapped = rw.dst().node(data);
      if (s8_producer(data)) {
        // direct s8 chain: nothing to insert
      } else if (mapped.type == OpType::kDequantize && s8_producer(mapped.inputs[0])) {
        data = mapped.inputs[0];  // bypass the DQ: the DQ->Q pair cancels
      } else if (auto it = quantize_nodes.find({data, in_scale});
                 it != quantize_nodes.end()) {
        data = it->second;  // a sibling quantized conv already quantized this tensor
      } else {
        const Layout src_layout = mapped.out_layout;
        NodeAttrs qattrs;
        qattrs.qscale = in_scale;
        qattrs.qzero = 0;
        qattrs.qdtype = DType::kS8;
        const int q = rw.dst().AddNode(OpType::kQuantize, {data}, std::move(qattrs),
                                       node.name + ".q");
        rw.dst().node(q).out_layout = src_layout;
        quantize_nodes.emplace(std::make_pair(data, in_scale), q);
        data = q;
      }
    }

    // Does anything downstream stay s8? Only a quantized conv reading this value as
    // its data input does; everything else (other ops, residual reads, graph outputs)
    // needs fp32.
    bool has_s8_consumer = false;
    bool needs_f32 = escapes[static_cast<std::size_t>(id)] != 0;
    for (int c : consumers[static_cast<std::size_t>(id)]) {
      const Node& cn = graph.node(c);
      if (cn.IsConv() && cn.inputs[0] == id && quantized(c)) {
        has_s8_consumer = true;
      } else {
        needs_f32 = true;
      }
    }

    NodeAttrs attrs = node.attrs;
    attrs.qconv.enabled = true;
    attrs.qconv.in_scale = in_scale;
    attrs.qconv.out_scale = out_scale;
    attrs.qconv.requant = has_s8_consumer;  // no s8 reader: dequant fuses into the conv
    std::vector<int> inputs = {data};
    for (std::size_t i = 1; i < node.inputs.size(); ++i) {
      inputs.push_back(rw.Lookup(node.inputs[static_cast<int>(i)]));
    }
    const int conv_id =
        rw.dst().AddNode(OpType::kConv2d, std::move(inputs), std::move(attrs), node.name);
    rw.dst().node(conv_id).out_layout = node.out_layout;
    remapped[conv_id] = schedules->at(id);

    if (has_s8_consumer && needs_f32) {
      // Mixed consumers: s8 readers take the conv directly (the already_s8 peephole
      // above), fp32 readers go through an explicit dequantize.
      NodeAttrs dqattrs;
      dqattrs.qscale = out_scale;
      dqattrs.qzero = 0;
      const int dq = rw.dst().AddNode(OpType::kDequantize, {conv_id}, std::move(dqattrs),
                                      node.name + ".dq");
      rw.dst().node(dq).out_layout = node.out_layout;
      rw.MapTo(id, dq);
    } else {
      rw.MapTo(id, conv_id);
    }
  }

  Graph out = rw.Finish();
  InferShapes(&out);
  *schedules = std::move(remapped);
  return out;
}

}  // namespace neocpu
