// Post-training quantization pass (see passes.h for the contract).
//
// The pass runs AFTER schedule selection: the local search ranked s8/u8 spaces next to
// the fp32 spaces, and the global DP/PBQP weighed per-conv integer gains against
// quantize/dequantize boundary costs — so by the time we are here, "which convs run
// int8" is simply "whose chosen schedule says an integer dtype". The rewrite inserts the
// minimal Q/DQ boundary ops in three sweeps:
//
//   1. forward `can_int`: which non-conv nodes COULD execute in the integer domain were
//      their inputs integer (pooling always; concat when its own output range was
//      calibrated, since rescaling inputs to a common code needs the output range);
//   2. backward `demand`: which integer dtype the consumers of a tensor want.
//      A quantized conv demands its schedule's activation dtype; an integer-capable
//      pool/concat forwards its own demand to its inputs. Disagreeing demands merge to
//      s8 — every quantized conv accepts s8 activations, only ic_bn%4 convs accept u8.
//      Demand is what makes a conv requantize (produce integer) instead of fusing the
//      free dequantize into its epilogue: an integer tensor is only ever materialized
//      when something downstream consumes it as integer;
//   3. topological rewrite tracking the ACTUAL (dtype, scale, zero point) of every
//      rewritten tensor. Integer consumers read the producer's integer output directly
//      with the producer's tracked parameters (which, through a pooling chain, are the
//      parameters of the conv BEFORE the pool — not this tensor's own calibration
//      entry); f32 consumers trigger a lazily created kDequantize. Q nodes are shared
//      per (source, dtype) so inception-style fan-outs convert a feature map once.
//
// Adjacent quantized convs — now also across pooling and concat — connect directly in
// the integer domain: the DQ->Q cancellation of IntelCaffe's pipeline, performed
// constructively instead of as a peephole.
#include <utility>
#include <vector>

#include "src/base/logging.h"
#include "src/graph/passes/passes.h"
#include "src/graph/passes/rewriter.h"
#include "src/graph/shape_infer.h"
#include "src/kernels/quantize.h"

namespace neocpu {

const char* CalibrationPolicyName(CalibrationPolicy policy) {
  switch (policy) {
    case CalibrationPolicy::kMinMax:
      return "minmax";
    case CalibrationPolicy::kPercentile:
      return "percentile";
    case CalibrationPolicy::kEntropy:
      return "entropy";
  }
  return "unknown";
}

bool QuantizeLegal(const Graph& graph, int id, const CalibrationTable& calibration) {
  const Node& node = graph.node(id);
  if (!node.IsConv() || node.attrs.epilogue.residual_add) {
    return false;
  }
  const Node& weight = graph.node(node.inputs[1]);
  if (!weight.payload.defined() || weight.payload.dtype() != DType::kF32) {
    return false;
  }
  return calibration.count(node.inputs[0]) > 0 && calibration.count(id) > 0;
}

namespace {

// Quantization parameters for one node's calibrated range under `dtype`.
void RangeParams(const TensorRange& range, DType dtype, float* scale,
                 std::int32_t* zero) {
  if (dtype == DType::kU8) {
    AffineScaleZeroPoint(range.min, range.max, scale, zero);
  } else {
    *scale = SymmetricScale(range.min, range.max);
    *zero = 0;
  }
}

}  // namespace

Graph QuantizeGraph(const Graph& graph, const CalibrationTable& calibration,
                    std::map<int, ConvSchedule>* schedules,
                    const QuantizeGraphOptions& options,
                    std::map<int, GemmSchedule>* dense_schedules) {
  NEOCPU_CHECK(schedules != nullptr);
  const int n = graph.num_nodes();

  // Tuned-GEMM schedule of a dense node, if the search assigned one.
  auto tuned_dense = [&](int id) -> const GemmSchedule* {
    if (dense_schedules == nullptr) {
      return nullptr;
    }
    const auto it = dense_schedules->find(id);
    return it == dense_schedules->end() ? nullptr : &it->second;
  };

  // The quantized set: convs whose chosen schedule is integer AND that are legal (the
  // selection layers only offer integer options to legal convs; re-check defensively).
  auto quantized = [&](int id) {
    const auto it = schedules->find(id);
    return it != schedules->end() && it->second.IsQuantized() &&
           QuantizeLegal(graph, id, calibration);
  };
  auto dense_quantized = [&](int id) {
    if (!options.quantize_dense) {
      return false;
    }
    const Node& node = graph.node(id);
    if (node.type != OpType::kDense || node.inputs.size() < 2) {
      return false;
    }
    const Node& weight = graph.node(node.inputs[1]);
    return weight.payload.defined() && weight.payload.dtype() == DType::kF32 &&
           calibration.count(node.inputs[0]) > 0;
  };

  // Sweep 1 (forward): structural integer feasibility.
  std::vector<char> can_int(static_cast<std::size_t>(n), 0);
  for (int id = 0; id < n; ++id) {
    const Node& node = graph.node(id);
    switch (node.type) {
      case OpType::kConv2d:
        can_int[static_cast<std::size_t>(id)] = quantized(id) ? 1 : 0;
        break;
      case OpType::kMaxPool:
      case OpType::kAvgPool:
        can_int[static_cast<std::size_t>(id)] =
            can_int[static_cast<std::size_t>(node.inputs[0])];
        break;
      case OpType::kConcat: {
        bool all = calibration.count(id) > 0;
        for (int in : node.inputs) {
          all = all && can_int[static_cast<std::size_t>(in)] != 0;
        }
        can_int[static_cast<std::size_t>(id)] = all ? 1 : 0;
        break;
      }
      default:
        break;
    }
  }

  // Sweep 2 (backward): integer demand per tensor. kF32 encodes "no integer demand".
  std::vector<DType> demand(static_cast<std::size_t>(n), DType::kF32);
  auto contribute = [&](int id, DType dtype) {
    DType& cur = demand[static_cast<std::size_t>(id)];
    if (cur == DType::kF32) {
      cur = dtype;
    } else if (cur != dtype) {
      cur = DType::kS8;  // disagreeing consumers: s8 is universally consumable
    }
  };
  for (int id = n - 1; id >= 0; --id) {
    const Node& node = graph.node(id);
    if (node.IsConv() && quantized(id)) {
      contribute(node.inputs[0], schedules->at(id).dtype);
    } else if (const GemmSchedule* gs = tuned_dense(id); gs != nullptr) {
      // A u8 tuned dense consumes u8 activations; an f32 one demands nothing.
      if (gs->dtype == DType::kU8 && dense_quantized(id)) {
        contribute(node.inputs[0], DType::kU8);
      }
    } else if (dense_quantized(id)) {
      contribute(node.inputs[0], DType::kS8);
    } else if ((node.type == OpType::kMaxPool || node.type == OpType::kAvgPool ||
                node.type == OpType::kConcat) &&
               can_int[static_cast<std::size_t>(id)] != 0 &&
               demand[static_cast<std::size_t>(id)] != DType::kF32) {
      for (int in : node.inputs) {
        contribute(in, demand[static_cast<std::size_t>(id)]);
      }
    }
  }

  // Sweep 3: the rewrite. `qinfo` tracks the actual integer identity of every rewritten
  // source node's output — integer consumers read `int_id`, f32 consumers go through a
  // lazily shared kDequantize (created only when a f32 reader exists; `MapTo` then
  // points at the DQ so plain CopyNode consumers pick it up).
  struct QInfo {
    DType dtype = DType::kF32;  // kF32: plain f32 tensor, remaining fields unused
    float scale = 1.0f;
    std::int32_t zero = 0;
    int int_id = -1;  // rewritten-graph id of the integer tensor
    int dq_id = -1;   // rewritten-graph id of its dequantize, once demanded
  };
  std::vector<QInfo> qinfo(static_cast<std::size_t>(n));

  GraphRewriter rw(graph);
  std::map<int, ConvSchedule> remapped;
  std::map<int, GemmSchedule> remapped_dense;
  // One kQuantize per (f32 source, target dtype): quantized convs sharing a producer
  // (and therefore a calibrated range) share the quantize pass and its integer buffer
  // instead of re-converting the feature map per branch (inception-style fan-out).
  std::map<std::pair<int, int>, int> quantize_nodes;

  auto ensure_f32 = [&](int orig) {
    QInfo& qi = qinfo[static_cast<std::size_t>(orig)];
    if (qi.dtype == DType::kF32) {
      return;  // Lookup already points at an f32 node
    }
    if (qi.dq_id < 0) {
      NodeAttrs dqattrs;
      dqattrs.qscale = qi.scale;
      dqattrs.qzero = qi.zero;
      dqattrs.qdtype = qi.dtype;
      const Node& producer = rw.dst().node(qi.int_id);
      const Layout layout = producer.out_layout;
      qi.dq_id = rw.dst().AddNode(OpType::kDequantize, {qi.int_id}, std::move(dqattrs),
                                  producer.name + ".dq");
      rw.dst().node(qi.dq_id).out_layout = layout;
    }
    rw.MapTo(orig, qi.dq_id);
  };

  for (int id = 0; id < n; ++id) {
    const Node& node = graph.node(id);
    const std::size_t sid = static_cast<std::size_t>(id);

    if (node.IsConv() && quantized(id)) {
      ConvSchedule sched = schedules->at(id);

      // Data input: adopt the producer's integer tensor when there is one; otherwise
      // quantize the f32 source to the schedule's activation dtype.
      const int src = node.inputs[0];
      const QInfo& in_q = qinfo[static_cast<std::size_t>(src)];
      DType adtype;
      float in_scale;
      std::int32_t in_zero;
      int data;
      if (in_q.dtype != DType::kF32) {
        adtype = in_q.dtype;
        in_scale = in_q.scale;
        in_zero = in_q.zero;
        data = in_q.int_id;
        // The demand merge only yields u8 when EVERY consuming conv demanded u8, and
        // only ic_bn%4 convs get u8 schedules — so adoption cannot violate the packing
        // constraint. Check the invariant rather than silently mis-executing.
        NEOCPU_CHECK(adtype != DType::kU8 || sched.ic_bn % 4 == 0)
            << node.name << ": u8 producer feeds conv with ic_bn " << sched.ic_bn;
      } else {
        adtype = sched.dtype;
        RangeParams(calibration.at(src), adtype, &in_scale, &in_zero);
        const int fsrc = rw.Lookup(src);
        const auto key = std::make_pair(fsrc, static_cast<int>(adtype));
        if (const auto it = quantize_nodes.find(key); it != quantize_nodes.end()) {
          data = it->second;  // a sibling quantized conv already converted this tensor
        } else {
          const Layout src_layout = rw.dst().node(fsrc).out_layout;
          NodeAttrs qattrs;
          qattrs.qscale = in_scale;
          qattrs.qzero = in_zero;
          qattrs.qdtype = adtype;
          data = rw.dst().AddNode(OpType::kQuantize, {fsrc}, std::move(qattrs),
                                  node.name + ".q");
          rw.dst().node(data).out_layout = src_layout;
          quantize_nodes.emplace(key, data);
        }
      }
      // Keep the recorded schedule coherent with what actually flows in (the s8
      // fallback can override a u8 schedule's dtype; the blocking stays valid).
      sched.dtype = adtype;

      // Output: requantize iff something downstream demanded integer; its dtype is the
      // merged demand, independent of this conv's own activation dtype.
      const DType dem = demand[sid];
      const bool requant = dem != DType::kF32;

      NodeAttrs attrs = node.attrs;
      attrs.qconv.enabled = true;
      attrs.qconv.in_scale = in_scale;
      attrs.qconv.adtype = adtype;
      attrs.qconv.in_zero = in_zero;
      attrs.qconv.requant = requant;
      float out_scale = 1.0f;
      std::int32_t out_zero = 0;
      if (requant) {
        RangeParams(calibration.at(id), dem, &out_scale, &out_zero);
        attrs.qconv.out_scale = out_scale;
        attrs.qconv.out_dtype = dem;
        attrs.qconv.out_zero = out_zero;
      }
      std::vector<int> inputs = {data};
      for (std::size_t i = 1; i < node.inputs.size(); ++i) {
        inputs.push_back(rw.Lookup(node.inputs[i]));
      }
      const int conv_id = rw.dst().AddNode(OpType::kConv2d, std::move(inputs),
                                           std::move(attrs), node.name);
      rw.dst().node(conv_id).out_layout = node.out_layout;
      remapped[conv_id] = sched;
      rw.MapTo(id, conv_id);
      if (requant) {
        qinfo[sid] = {dem, out_scale, out_zero, conv_id, -1};
      }
      continue;
    }

    if ((node.type == OpType::kMaxPool || node.type == OpType::kAvgPool) &&
        can_int[sid] != 0 && demand[sid] != DType::kF32 &&
        qinfo[static_cast<std::size_t>(node.inputs[0])].dtype != DType::kF32) {
      // Integer pooling: the codes pass through (max is order-preserving; avg
      // accumulates in s32 around the zero point), so the output keeps the input's
      // quantization parameters — recorded on the node for the runtime and for
      // observability.
      const QInfo& in_q = qinfo[static_cast<std::size_t>(node.inputs[0])];
      NodeAttrs attrs = node.attrs;
      attrs.qscale = in_q.scale;
      attrs.qzero = in_q.zero;
      attrs.qdtype = in_q.dtype;
      const int new_id =
          rw.dst().AddNode(node.type, {in_q.int_id}, std::move(attrs), node.name);
      rw.dst().node(new_id).out_layout = node.out_layout;
      rw.MapTo(id, new_id);
      qinfo[sid] = {in_q.dtype, in_q.scale, in_q.zero, new_id, -1};
      continue;
    }

    if (node.type == OpType::kConcat && can_int[sid] != 0 &&
        demand[sid] != DType::kF32) {
      // Integer concat needs every input actually integer AND of one common dtype
      // (the kernel copies one code type); otherwise fall through to the f32 copy.
      DType common = qinfo[static_cast<std::size_t>(node.inputs[0])].dtype;
      bool ok = common != DType::kF32;
      for (int in : node.inputs) {
        ok = ok && qinfo[static_cast<std::size_t>(in)].dtype == common;
      }
      if (ok) {
        float out_scale;
        std::int32_t out_zero;
        RangeParams(calibration.at(id), common, &out_scale, &out_zero);
        NodeAttrs attrs = node.attrs;
        attrs.qscale = out_scale;
        attrs.qzero = out_zero;
        attrs.qdtype = common;
        std::vector<int> inputs;
        inputs.reserve(node.inputs.size());
        for (int in : node.inputs) {
          const QInfo& in_q = qinfo[static_cast<std::size_t>(in)];
          attrs.qin_scales.push_back(in_q.scale);
          attrs.qin_zeros.push_back(in_q.zero);
          inputs.push_back(in_q.int_id);
        }
        const int new_id =
            rw.dst().AddNode(node.type, std::move(inputs), std::move(attrs), node.name);
        rw.dst().node(new_id).out_layout = node.out_layout;
        rw.MapTo(id, new_id);
        qinfo[sid] = {common, out_scale, out_zero, new_id, -1};
        continue;
      }
    }

    if (const GemmSchedule* gs = tuned_dense(id);
        gs != nullptr && gs->dtype == DType::kF32) {
      // Tuned f32 dense: executes in f32 (dequantize any integer inputs), but the
      // schedule must follow the node to its rewritten id for AlterConvLayout.
      for (int in : node.inputs) {
        ensure_f32(in);
      }
      const int new_id = rw.CopyNode(node);
      remapped_dense[new_id] = *gs;
      continue;
    }

    if (const GemmSchedule* gs = tuned_dense(id);
        gs != nullptr && gs->dtype == DType::kU8 && dense_quantized(id) &&
        (qinfo[static_cast<std::size_t>(node.inputs[0])].dtype == DType::kF32 ||
         qinfo[static_cast<std::size_t>(node.inputs[0])].dtype == DType::kU8)) {
      // Tuned u8 dense (packed u8*s8 GEMM): u8 activations with an affine zero point,
      // and — unlike the legacy s8 epilogue — a REQUANTIZING output when downstream
      // demand is integer, so Dense->Dense chains (transformer FFNs, stacked QKV
      // projections) stay in the integer domain end to end. An s8 integer producer
      // falls through to the legacy path below instead (the kernel is u8-only).
      const int src = node.inputs[0];
      const QInfo& in_q = qinfo[static_cast<std::size_t>(src)];
      float in_scale;
      std::int32_t in_zero;
      int data;
      if (in_q.dtype == DType::kU8) {
        in_scale = in_q.scale;
        in_zero = in_q.zero;
        data = in_q.int_id;
      } else {
        RangeParams(calibration.at(src), DType::kU8, &in_scale, &in_zero);
        const int fsrc = rw.Lookup(src);
        const auto key = std::make_pair(fsrc, static_cast<int>(DType::kU8));
        if (const auto it = quantize_nodes.find(key); it != quantize_nodes.end()) {
          data = it->second;
        } else {
          const Layout src_layout = rw.dst().node(fsrc).out_layout;
          NodeAttrs qattrs;
          qattrs.qscale = in_scale;
          qattrs.qzero = in_zero;
          qattrs.qdtype = DType::kU8;
          data = rw.dst().AddNode(OpType::kQuantize, {fsrc}, std::move(qattrs),
                                  node.name + ".q");
          rw.dst().node(data).out_layout = src_layout;
          quantize_nodes.emplace(key, data);
        }
      }
      const DType dem = demand[sid];
      const bool requant = dem != DType::kF32 && calibration.count(id) > 0;
      NodeAttrs attrs = node.attrs;
      attrs.qconv.enabled = true;
      attrs.qconv.in_scale = in_scale;
      attrs.qconv.adtype = DType::kU8;
      attrs.qconv.in_zero = in_zero;
      attrs.qconv.requant = requant;
      float out_scale = 1.0f;
      std::int32_t out_zero = 0;
      if (requant) {
        RangeParams(calibration.at(id), dem, &out_scale, &out_zero);
        attrs.qconv.out_scale = out_scale;
        attrs.qconv.out_dtype = dem;
        attrs.qconv.out_zero = out_zero;
      }
      std::vector<int> inputs = {data};
      for (std::size_t i = 1; i < node.inputs.size(); ++i) {
        inputs.push_back(rw.Lookup(node.inputs[i]));
      }
      const int new_id = rw.dst().AddNode(OpType::kDense, std::move(inputs),
                                          std::move(attrs), node.name);
      rw.dst().node(new_id).out_layout = node.out_layout;
      remapped_dense[new_id] = *gs;
      rw.MapTo(id, new_id);
      if (requant) {
        qinfo[sid] = {dem, out_scale, out_zero, new_id, -1};
      }
      continue;
    }

    if (dense_quantized(id)) {
      // Quantized dense via the s8 GEMM epilogue: s8 in, f32 out (requant = false:
      // without a tuned u8 schedule, dense ends the integer region).
      const int src = node.inputs[0];
      const QInfo& in_q = qinfo[static_cast<std::size_t>(src)];
      float in_scale;
      int data;
      if (in_q.dtype == DType::kS8) {
        in_scale = in_q.scale;
        data = in_q.int_id;
      } else {
        ensure_f32(src);
        const int fsrc = rw.Lookup(src);
        std::int32_t zero;
        RangeParams(calibration.at(src), DType::kS8, &in_scale, &zero);
        const auto key = std::make_pair(fsrc, static_cast<int>(DType::kS8));
        if (const auto it = quantize_nodes.find(key); it != quantize_nodes.end()) {
          data = it->second;
        } else {
          const Layout src_layout = rw.dst().node(fsrc).out_layout;
          NodeAttrs qattrs;
          qattrs.qscale = in_scale;
          qattrs.qzero = 0;
          qattrs.qdtype = DType::kS8;
          data = rw.dst().AddNode(OpType::kQuantize, {fsrc}, std::move(qattrs),
                                  node.name + ".q");
          rw.dst().node(data).out_layout = src_layout;
          quantize_nodes.emplace(key, data);
        }
      }
      NodeAttrs attrs = node.attrs;
      attrs.qconv.enabled = true;
      attrs.qconv.in_scale = in_scale;
      attrs.qconv.adtype = DType::kS8;
      attrs.qconv.in_zero = 0;
      attrs.qconv.requant = false;
      std::vector<int> inputs = {data};
      for (std::size_t i = 1; i < node.inputs.size(); ++i) {
        inputs.push_back(rw.Lookup(node.inputs[i]));
      }
      const int new_id = rw.dst().AddNode(OpType::kDense, std::move(inputs),
                                          std::move(attrs), node.name);
      rw.dst().node(new_id).out_layout = node.out_layout;
      rw.MapTo(id, new_id);
      continue;
    }

    if (node.IsConv() && node.attrs.epilogue.residual_add && node.inputs.size() >= 2 &&
        qinfo[static_cast<std::size_t>(node.inputs.back())].dtype != DType::kF32) {
      // IntelCaffe's "sum fusion": an fp32 conv with a fused residual add reads an
      // INTEGER residual directly and dequantizes it inside the epilogue (the rescale
      // params ride on qin_scales/qin_zeros). This deletes the standalone kDequantize
      // that the residual read of a pooled integer tensor would otherwise force — on
      // resnet-style stems, the only f32 reader the integer maxpool output has left.
      const QInfo& res_q = qinfo[static_cast<std::size_t>(node.inputs.back())];
      NodeAttrs attrs = node.attrs;
      attrs.qin_scales = {res_q.scale};
      attrs.qin_zeros = {res_q.zero};
      std::vector<int> inputs;
      inputs.reserve(node.inputs.size());
      for (std::size_t i = 0; i + 1 < node.inputs.size(); ++i) {
        ensure_f32(node.inputs[i]);
        inputs.push_back(rw.Lookup(node.inputs[i]));
      }
      inputs.push_back(res_q.int_id);
      const int new_id = rw.dst().AddNode(OpType::kConv2d, std::move(inputs),
                                          std::move(attrs), node.name);
      rw.dst().node(new_id).out_layout = node.out_layout;
      rw.MapTo(id, new_id);
      if (const auto it = schedules->find(id); it != schedules->end()) {
        remapped[new_id] = it->second;
      }
      continue;
    }

    // Everything else executes in f32: dequantize any integer inputs first (shared,
    // created on first demand), then copy verbatim.
    for (int in : node.inputs) {
      ensure_f32(in);
    }
    const int new_id = rw.CopyNode(node);
    if (const auto it = schedules->find(id); it != schedules->end()) {
      remapped[new_id] = it->second;
    }
  }

  // Graph outputs are an f32 contract regardless of internal dtype choices.
  for (int out : graph.outputs()) {
    ensure_f32(out);
  }

  Graph out = rw.Finish();
  InferShapes(&out);
  *schedules = std::move(remapped);
  if (dense_schedules != nullptr) {
    *dense_schedules = std::move(remapped_dense);
  }
  return out;
}

}  // namespace neocpu
