// AlterOpLayout + LayoutTransform insertion/elimination (paper §3.2, Figure 2).
//
// Convolutions with an assigned schedule are rewritten to the NCHW[x]c template; their
// weight constants are pre-transformed to OIHW[x]i[y]o at compile time. The blocked
// layout then propagates through layout-oblivious and layout-tolerant operations;
// LayoutTransform nodes are inserted only where the incoming layout differs from what a
// node requires:
//   * conv data input         -> NCHW[ic_bn]c
//   * conv residual input     -> NCHW[oc_bn]c (must match the conv's own output)
//   * elemwise add / concat   -> all inputs follow the first input's layout
//   * layout-dependent ops    -> back to NCHW (Flatten, FlattenNHWC, ...)
// Under LayoutPlacement::kPerOp the propagation is disabled: each conv converts its
// input from NCHW and converts its output back, which is what a framework delegating to
// a fixed kernel library does (Table 3 "Layout Opt." row).
#include "src/base/logging.h"
#include "src/graph/passes/passes.h"
#include "src/graph/passes/rewriter.h"
#include "src/graph/shape_infer.h"
#include "src/kernels/conv_winograd.h"
#include "src/kernels/gemm_packed.h"
#include "src/kernels/gemm_packed_int8.h"
#include "src/kernels/quantize.h"
#include "src/tensor/layout_transform.h"

namespace neocpu {
namespace {

bool IsLayoutTolerant(OpType type) {
  switch (type) {
    case OpType::kScaleShift:
    case OpType::kBatchNorm:
    case OpType::kRelu:
    case OpType::kMaxPool:
    case OpType::kAvgPool:
    case OpType::kGlobalAvgPool:
    case OpType::kDropout:
    case OpType::kQuantize:    // elementwise: the blocked layout flows through
    case OpType::kDequantize:
      return true;
    default:
      return false;
  }
}

bool IsLayoutDependent(OpType type) {
  switch (type) {
    case OpType::kFlatten:
    case OpType::kFlattenNHWC:
    case OpType::kDense:
    case OpType::kReshape:
    case OpType::kSoftmax:
    case OpType::kMultiboxDetection:
    case OpType::kLayerNorm:
    case OpType::kTranspose:
    case OpType::kMultiHeadAttention:
      return true;
    default:
      return false;
  }
}

}  // namespace

Graph AlterConvLayout(const Graph& graph, const std::map<int, ConvSchedule>& schedules,
                      LayoutPlacement placement,
                      const std::map<int, GemmSchedule>* dense_schedules) {
  GraphRewriter rw(graph);

  // Inserts a LayoutTransform in the rewritten graph unless `mapped` already produces
  // `want`.
  auto ensure_layout = [&rw](int mapped, const Layout& want) -> int {
    const Layout& have = rw.dst().node(mapped).out_layout;
    if (have == want) {
      return mapped;
    }
    NodeAttrs attrs;
    attrs.dst_layout = want;
    const int id = rw.dst().AddNode(OpType::kLayoutTransform, {mapped}, std::move(attrs));
    rw.dst().node(id).out_layout = want;
    return id;
  };

  for (int id = 0; id < graph.num_nodes(); ++id) {
    const Node& node = graph.node(id);
    switch (node.type) {
      case OpType::kConv2d: {
        const auto it = schedules.find(id);
        if (it == schedules.end()) {
          // Stays in NCHW: make sure the input actually is NCHW.
          const int data = ensure_layout(rw.Lookup(node.inputs[0]), Layout::NCHW());
          std::vector<int> inputs = {data};
          for (std::size_t i = 1; i < node.inputs.size(); ++i) {
            inputs.push_back(rw.Lookup(node.inputs[static_cast<int>(i)]));
          }
          if (node.attrs.epilogue.residual_add) {
            inputs.back() = ensure_layout(inputs.back(), Layout::NCHW());
          }
          const int new_id =
              rw.dst().AddNode(OpType::kConv2d, std::move(inputs), node.attrs, node.name);
          rw.dst().node(new_id).out_layout = Layout::NCHW();
          rw.MapTo(id, new_id);
          break;
        }
        const ConvSchedule& sched = it->second;
        if (!sched.IsDirect()) {
          // An NCHW-layout algorithm won the search for this conv: the data (and any
          // residual) must arrive in NCHW, the output stays NCHW, and the kernel kind
          // dispatches the chosen algorithm. Winograd additionally pre-transforms the
          // weight constant to the {4, 4, OC, IC} Winograd domain at compile time.
          const int data = ensure_layout(rw.Lookup(node.inputs[0]), Layout::NCHW());
          std::vector<int> inputs = {data};
          if (sched.algo == ConvAlgo::kWinograd) {
            NEOCPU_CHECK(WinogradLegal(node.attrs.conv, node.attrs.epilogue))
                << node.name << ": winograd assigned to an illegal conv";
            const Tensor& w = graph.node(node.inputs[1]).payload;
            NEOCPU_CHECK(w.defined()) << node.name << ": conv weight must be constant";
            inputs.push_back(
                rw.dst().AddConstant(WinogradTransformWeights(w), node.name + ".wino"));
          } else {
            inputs.push_back(rw.Lookup(node.inputs[1]));
          }
          std::size_t next_input = 2;
          if (node.attrs.epilogue.bias) {
            inputs.push_back(rw.Lookup(node.inputs[static_cast<int>(next_input)]));
            ++next_input;
          }
          if (node.attrs.epilogue.residual_add) {
            inputs.push_back(ensure_layout(rw.Lookup(node.inputs.back()), Layout::NCHW()));
          }
          NodeAttrs attrs = node.attrs;
          attrs.kernel = sched.algo == ConvAlgo::kWinograd ? ConvKernelKind::kWinograd
                         : sched.algo == ConvAlgo::kIm2col ? ConvKernelKind::kIm2col
                                                           : ConvKernelKind::kDirectNCHW;
          attrs.schedule = sched;
          const int new_id = rw.dst().AddNode(OpType::kConv2d, std::move(inputs),
                                              std::move(attrs), node.name);
          rw.dst().node(new_id).out_layout = Layout::NCHW();
          rw.MapTo(id, new_id);
          break;
        }
        if (sched.IsQuantized()) {
          // Quantized direct template: the s8/u8 data input blocks like the fp32 one;
          // the fp32 weight constant is per-output-channel quantized and blocked at
          // compile time, the bias folds to s32 in the accumulation domain (plus the
          // u8 zero-point correction -in_zero * sum(w)), and the epilogue's
          // per-channel multiplier becomes a constant input. u8 activations
          // additionally VNNI-pack the blocked weight tiles (AFTER the bias fold,
          // which walks the standard tile order).
          NEOCPU_CHECK(node.attrs.qconv.enabled)
              << node.name << ": s8 schedule on an unquantized conv";
          const bool u8 = node.attrs.qconv.adtype == DType::kU8;
          const std::int32_t in_zero = u8 ? node.attrs.qconv.in_zero : 0;
          const int data =
              ensure_layout(rw.Lookup(node.inputs[0]), Layout::NCHWc(sched.ic_bn));
          const Tensor& w = graph.node(node.inputs[1]).payload;
          NEOCPU_CHECK(w.defined()) << node.name << ": conv weight must be constant";
          Tensor w_s8;
          std::vector<float> w_scales;
          QuantizeConvWeightsPerOC(w, &w_s8, &w_scales);
          Tensor w_blocked = OIHWToOIHWio(w_s8, sched.ic_bn, sched.oc_bn);
          NodeAttrs attrs = node.attrs;
          Tensor bias_s32;
          if (node.attrs.epilogue.bias) {
            const Tensor& bias = graph.node(node.inputs[2]).payload;
            NEOCPU_CHECK(bias.defined()) << node.name << ": conv bias must be constant";
            bias_s32 = QuantizeBiasS32(bias, node.attrs.qconv.in_scale, w_scales);
          } else if (in_zero != 0) {
            // The zero-point correction needs a bias to live in: synthesize zeros.
            bias_s32 = Tensor::Zeros({node.attrs.conv.out_c}, Layout::Flat(),
                                     DType::kS32);
            attrs.epilogue.bias = true;
          }
          if (in_zero != 0) {
            FoldZeroPointIntoBias(w_blocked, in_zero, &bias_s32);
          }
          if (u8) {
            w_blocked = PackWeightsVnni(w_blocked);
          }
          std::vector<int> inputs = {
              data, rw.dst().AddConstant(std::move(w_blocked), node.name + ".w8")};
          if (bias_s32.defined()) {
            inputs.push_back(
                rw.dst().AddConstant(std::move(bias_s32), node.name + ".b32"));
          }
          Tensor mult = Tensor::Empty({node.attrs.conv.out_c}, Layout::Flat());
          const float denom =
              node.attrs.qconv.requant ? node.attrs.qconv.out_scale : 1.0f;
          for (std::size_t o = 0; o < w_scales.size(); ++o) {
            mult.data()[o] = node.attrs.qconv.in_scale * w_scales[o] / denom;
          }
          inputs.push_back(rw.dst().AddConstant(std::move(mult), node.name + ".m"));
          attrs.kernel = ConvKernelKind::kNCHWcS8;
          attrs.schedule = sched;
          const int new_id = rw.dst().AddNode(OpType::kConv2d, std::move(inputs),
                                              std::move(attrs), node.name);
          rw.dst().node(new_id).out_layout = Layout::NCHWc(sched.oc_bn);
          rw.MapTo(id, new_id);
          break;
        }
        const int data =
            ensure_layout(rw.Lookup(node.inputs[0]), Layout::NCHWc(sched.ic_bn));
        // Pre-transform the weight constant at compile time (Figure 2's
        // "Pre-transformed Kernel").
        const Tensor& w = graph.node(node.inputs[1]).payload;
        NEOCPU_CHECK(w.defined()) << node.name << ": conv weight must be constant";
        Tensor w_blocked = OIHWToOIHWio(w, sched.ic_bn, sched.oc_bn);
        std::vector<int> inputs = {data,
                                   rw.dst().AddConstant(std::move(w_blocked), node.name + ".w")};
        std::size_t next_input = 2;
        if (node.attrs.epilogue.bias) {
          inputs.push_back(rw.Lookup(node.inputs[static_cast<int>(next_input)]));
          ++next_input;
        }
        if (node.attrs.epilogue.residual_add) {
          inputs.push_back(ensure_layout(rw.Lookup(node.inputs.back()),
                                         Layout::NCHWc(sched.oc_bn)));
        }
        NodeAttrs attrs = node.attrs;
        attrs.kernel = ConvKernelKind::kNCHWc;
        attrs.schedule = sched;
        int new_id =
            rw.dst().AddNode(OpType::kConv2d, std::move(inputs), std::move(attrs), node.name);
        rw.dst().node(new_id).out_layout = Layout::NCHWc(sched.oc_bn);
        if (placement == LayoutPlacement::kPerOp) {
          new_id = ensure_layout(new_id, Layout::NCHW());
        }
        rw.MapTo(id, new_id);
        break;
      }
      case OpType::kDense: {
        const auto dit = dense_schedules != nullptr ? dense_schedules->find(id)
                                                    : std::map<int, GemmSchedule>::
                                                          const_iterator{};
        if (dense_schedules != nullptr && dit != dense_schedules->end()) {
          // Tuned packed-GEMM dense: the {Out, In} weight constant is pre-packed into
          // the kernel's [ceil(n/nr)][k][nr] panel layout at compile time (Figure 2's
          // pre-transformed-kernel idea applied to GEMM), and the node carries the
          // blocking schedule so dispatch needs no search.
          const GemmSchedule& sched = dit->second;
          const Tensor& w = graph.node(node.inputs[1]).payload;
          NEOCPU_CHECK(w.defined()) << node.name << ": dense weight must be constant";
          NEOCPU_CHECK_EQ(static_cast<int>(w.dims().size()), 2) << node.name;
          const std::int64_t n = w.dim(0);
          const std::int64_t kk = w.dim(1);
          const std::int64_t m = graph.node(node.inputs[0]).out_dims[0];
          NodeAttrs attrs = node.attrs;
          attrs.gemm = sched;
          attrs.dense = DenseParams{m, n, kk};
          attrs.has_gemm = true;
          int data = rw.Lookup(node.inputs[0]);
          if (graph.node(node.inputs[0]).out_dims.size() == 4) {
            data = ensure_layout(data, Layout::NCHW());
          }
          if (sched.dtype == DType::kU8) {
            // u8 activations x s8 pre-packed weight, s32 accumulate. The conv
            // convention with a 2-D weight: per-row quantization, bias folded to s32
            // with the activation zero-point correction, per-column multiplier
            // constant appended last.
            NEOCPU_CHECK(attrs.qconv.enabled && attrs.qconv.adtype == DType::kU8)
                << node.name << ": u8 gemm schedule on an unquantized dense";
            Tensor w_s8;
            std::vector<float> w_scales;
            QuantizeConvWeightsPerOC(w, &w_s8, &w_scales);
            Tensor bias_s32;
            if (node.inputs.size() > 2) {
              const Tensor& bias = graph.node(node.inputs[2]).payload;
              NEOCPU_CHECK(bias.defined()) << node.name << ": dense bias must be constant";
              bias_s32 = QuantizeBiasS32(bias, attrs.qconv.in_scale, w_scales);
            } else if (attrs.qconv.in_zero != 0) {
              bias_s32 = Tensor::Zeros({n}, Layout::Flat(), DType::kS32);
            }
            if (attrs.qconv.in_zero != 0) {
              // bias'[o] -= in_zero * sum_k w_s8[o, k] (the u8 zero-point correction;
              // the 2-D analogue of FoldZeroPointIntoBias's blocked-conv walk).
              const std::int8_t* ws = w_s8.data_as<std::int8_t>();
              std::int32_t* bs = bias_s32.data_as<std::int32_t>();
              for (std::int64_t o = 0; o < n; ++o) {
                std::int32_t sum = 0;
                for (std::int64_t x = 0; x < kk; ++x) {
                  sum += ws[o * kk + x];
                }
                bs[o] -= attrs.qconv.in_zero * sum;
              }
            }
            Tensor packed = Tensor::Empty(
                {static_cast<std::int64_t>(PackedBS8Bytes(n, kk, sched))},
                Layout::Flat(), DType::kS8);
            PackBS8FromTransposed(w_s8.data_as<std::int8_t>(), n, kk, sched,
                                  packed.data_as<std::int8_t>());
            std::vector<int> inputs = {
                data, rw.dst().AddConstant(std::move(packed), node.name + ".w8p")};
            if (bias_s32.defined()) {
              inputs.push_back(
                  rw.dst().AddConstant(std::move(bias_s32), node.name + ".b32"));
            }
            Tensor mult = Tensor::Empty({n}, Layout::Flat());
            const float denom = attrs.qconv.requant ? attrs.qconv.out_scale : 1.0f;
            for (std::size_t o = 0; o < w_scales.size(); ++o) {
              mult.data()[o] = attrs.qconv.in_scale * w_scales[o] / denom;
            }
            inputs.push_back(rw.dst().AddConstant(std::move(mult), node.name + ".m"));
            const int new_id = rw.dst().AddNode(OpType::kDense, std::move(inputs),
                                                std::move(attrs), node.name);
            rw.dst().node(new_id).out_layout = Layout::Flat();
            rw.MapTo(id, new_id);
            break;
          }
          NEOCPU_CHECK(sched.dtype == DType::kF32)
              << node.name << ": unsupported gemm schedule dtype";
          Tensor packed = Tensor::Empty(
              {static_cast<std::int64_t>(PackedBF32Elems(n, kk, sched))}, Layout::Flat());
          PackBF32FromTransposed(w.data(), n, kk, sched, packed.data());
          std::vector<int> inputs = {
              data, rw.dst().AddConstant(std::move(packed), node.name + ".wp")};
          if (node.inputs.size() > 2) {
            inputs.push_back(rw.Lookup(node.inputs[2]));
          }
          const int new_id = rw.dst().AddNode(OpType::kDense, std::move(inputs),
                                              std::move(attrs), node.name);
          rw.dst().node(new_id).out_layout = Layout::Flat();
          rw.MapTo(id, new_id);
          break;
        }
        if (!node.attrs.qconv.enabled) {
          // Plain dense: ordinary layout-dependent handling (data back to NCHW-order
          // flat; dense inputs are 2-D so no transform is needed in practice).
          std::vector<int> inputs;
          for (std::size_t i = 0; i < node.inputs.size(); ++i) {
            int mapped = rw.Lookup(node.inputs[i]);
            if (i == 0 && graph.node(node.inputs[0]).out_dims.size() == 4) {
              mapped = ensure_layout(mapped, Layout::NCHW());
            }
            inputs.push_back(mapped);
          }
          const int new_id = rw.dst().AddNode(OpType::kDense, std::move(inputs),
                                              node.attrs, node.name);
          rw.dst().node(new_id).out_layout = Layout::Flat();
          rw.MapTo(id, new_id);
          break;
        }
        // Quantized dense (s8 GEMM): the {Out, In} weight is per-row quantized, the
        // bias folds to s32, and the dequantizing per-row multiplier becomes a
        // constant input — the conv convention with a 2-D weight.
        const Tensor& w = graph.node(node.inputs[1]).payload;
        NEOCPU_CHECK(w.defined()) << node.name << ": dense weight must be constant";
        Tensor w_s8;
        std::vector<float> w_scales;
        QuantizeConvWeightsPerOC(w, &w_s8, &w_scales);
        std::vector<int> inputs = {
            rw.Lookup(node.inputs[0]),
            rw.dst().AddConstant(std::move(w_s8), node.name + ".w8")};
        if (node.inputs.size() > 2) {
          const Tensor& bias = graph.node(node.inputs[2]).payload;
          NEOCPU_CHECK(bias.defined()) << node.name << ": dense bias must be constant";
          inputs.push_back(rw.dst().AddConstant(
              QuantizeBiasS32(bias, node.attrs.qconv.in_scale, w_scales),
              node.name + ".b32"));
        }
        Tensor mult = Tensor::Empty({w.dim(0)}, Layout::Flat());
        for (std::size_t o = 0; o < w_scales.size(); ++o) {
          mult.data()[o] = node.attrs.qconv.in_scale * w_scales[o];
        }
        inputs.push_back(rw.dst().AddConstant(std::move(mult), node.name + ".m"));
        const int new_id =
            rw.dst().AddNode(OpType::kDense, std::move(inputs), node.attrs, node.name);
        rw.dst().node(new_id).out_layout = Layout::Flat();
        rw.MapTo(id, new_id);
        break;
      }
      case OpType::kElemAdd:
      case OpType::kConcat: {
        // All inputs adopt the first input's layout (paper §3.3.2). If the first input
        // is blocked but some input's channel count is not divisible by the block, fall
        // back to NCHW for the whole group.
        Layout want = rw.dst().node(rw.Lookup(node.inputs[0])).out_layout;
        if (want.kind == LayoutKind::kNCHWc) {
          for (int input : node.inputs) {
            if (graph.node(input).out_dims.size() != 4 ||
                graph.node(input).out_dims[1] % want.c_block != 0) {
              want = Layout::NCHW();
              break;
            }
          }
        }
        std::vector<int> inputs;
        for (int input : node.inputs) {
          int mapped = rw.Lookup(input);
          if (graph.node(input).out_dims.size() == 4) {
            mapped = ensure_layout(mapped, want);
          }
          inputs.push_back(mapped);
        }
        const int new_id =
            rw.dst().AddNode(node.type, std::move(inputs), node.attrs, node.name);
        rw.dst().node(new_id).out_layout =
            graph.node(node.inputs[0]).out_dims.size() == 4 ? want : Layout::Flat();
        rw.MapTo(id, new_id);
        break;
      }
      default: {
        if (IsLayoutTolerant(node.type)) {
          const int new_id = rw.CopyNode(node);
          rw.dst().node(new_id).out_layout =
              rw.dst().node(rw.dst().node(new_id).inputs[0]).out_layout;
          break;
        }
        if (IsLayoutDependent(node.type)) {
          std::vector<int> inputs;
          for (std::size_t i = 0; i < node.inputs.size(); ++i) {
            int mapped = rw.Lookup(node.inputs[i]);
            if (i == 0 && graph.node(node.inputs[0]).out_dims.size() == 4) {
              mapped = ensure_layout(mapped, Layout::NCHW());
            }
            inputs.push_back(mapped);
          }
          const int new_id =
              rw.dst().AddNode(node.type, std::move(inputs), node.attrs, node.name);
          rw.dst().node(new_id).out_layout = Layout::Flat();
          rw.MapTo(id, new_id);
          break;
        }
        // Inputs, constants, pre-existing layout transforms.
        rw.CopyNode(node);
        break;
      }
    }
  }

  // Graph outputs are produced in NCHW (or flat): undo any trailing blocked layout.
  Graph out = rw.Finish();
  {
    std::vector<int> outputs = out.outputs();
    bool changed = false;
    for (int& o : outputs) {
      if (out.node(o).out_layout.kind == LayoutKind::kNCHWc) {
        NodeAttrs attrs;
        attrs.dst_layout = Layout::NCHW();
        const int t = out.AddNode(OpType::kLayoutTransform, {o}, std::move(attrs));
        out.node(t).out_layout = Layout::NCHW();
        o = t;
        changed = true;
      }
    }
    if (changed) {
      out.SetOutputs(std::move(outputs));
    }
  }
  InferShapes(&out);
  return out;
}

}  // namespace neocpu
