#include "src/base/logging.h"
#include "src/graph/passes/passes.h"
#include "src/graph/passes/rewriter.h"
#include "src/graph/shape_infer.h"
#include "src/kernels/batchnorm.h"

namespace neocpu {
namespace {

// Computes the inference-time (scale, shift) constants of a BatchNorm node from its
// constant statistics inputs (compile-time "pre-compute").
void BnConstants(const Graph& g, const Node& bn, Tensor* scale, Tensor* shift) {
  NEOCPU_CHECK_EQ(static_cast<int>(bn.inputs.size()), 5);
  const Tensor& gamma = g.node(bn.inputs[1]).payload;
  const Tensor& beta = g.node(bn.inputs[2]).payload;
  const Tensor& mean = g.node(bn.inputs[3]).payload;
  const Tensor& var = g.node(bn.inputs[4]).payload;
  NEOCPU_CHECK(gamma.defined()) << "BatchNorm statistics must be constants";
  ComputeBnScaleShift(gamma, beta, mean, var, bn.attrs.epsilon, scale, shift);
}

}  // namespace

Graph SimplifyInference(const Graph& graph) {
  const auto consumers = graph.BuildConsumerIndex();

  // Decide which BatchNorm nodes fold into their producing convolution: the BN's data
  // input must be a conv whose only consumer is that BN.
  std::vector<int> fold_bn_into_conv(static_cast<std::size_t>(graph.num_nodes()), -1);
  for (int id = 0; id < graph.num_nodes(); ++id) {
    const Node& node = graph.node(id);
    if (node.type != OpType::kBatchNorm) {
      continue;
    }
    const int producer = node.inputs[0];
    if (graph.node(producer).IsConv() &&
        consumers[static_cast<std::size_t>(producer)].size() == 1) {
      fold_bn_into_conv[static_cast<std::size_t>(id)] = producer;
    }
  }

  GraphRewriter rw(graph);
  for (int id = 0; id < graph.num_nodes(); ++id) {
    const Node& node = graph.node(id);
    switch (node.type) {
      case OpType::kDropout:
        // Identity at inference: consumers read the producer directly.
        rw.MapTo(id, rw.Lookup(node.inputs[0]));
        break;
      case OpType::kConv2d: {
        // Look ahead: if this conv's unique consumer is a foldable BatchNorm, scale the
        // weights and synthesize the bias now so the BN disappears entirely.
        int bn_id = -1;
        for (int c : consumers[static_cast<std::size_t>(id)]) {
          if (fold_bn_into_conv[static_cast<std::size_t>(c)] == id) {
            bn_id = c;
          }
        }
        if (bn_id < 0) {
          rw.CopyNode(node);
          break;
        }
        Tensor scale, shift;
        BnConstants(graph, graph.node(bn_id), &scale, &shift);
        const Tensor& w = graph.node(node.inputs[1]).payload;
        Tensor w_folded = w.Clone();
        const std::int64_t oc = w.dim(0);
        const std::int64_t per_oc = w.NumElements() / oc;
        for (std::int64_t o = 0; o < oc; ++o) {
          const float s = scale.data()[o];
          float* row = w_folded.data() + o * per_oc;
          for (std::int64_t i = 0; i < per_oc; ++i) {
            row[i] *= s;
          }
        }
        Tensor bias_folded = shift.Clone();
        if (node.attrs.epilogue.bias) {
          const Tensor& old_bias = graph.node(node.inputs[2]).payload;
          for (std::int64_t o = 0; o < oc; ++o) {
            bias_folded.data()[o] += old_bias.data()[o] * scale.data()[o];
          }
        }
        NodeAttrs attrs = node.attrs;
        attrs.epilogue.bias = true;
        std::vector<int> inputs = {rw.Lookup(node.inputs[0]),
                                   rw.dst().AddConstant(std::move(w_folded), node.name + ".wf"),
                                   rw.dst().AddConstant(std::move(bias_folded),
                                                        node.name + ".bf")};
        if (attrs.epilogue.residual_add) {
          inputs.push_back(rw.Lookup(node.inputs.back()));
        }
        const int new_id =
            rw.dst().AddNode(OpType::kConv2d, std::move(inputs), std::move(attrs), node.name);
        rw.MapTo(id, new_id);
        break;
      }
      case OpType::kBatchNorm: {
        if (fold_bn_into_conv[static_cast<std::size_t>(id)] >= 0) {
          // Folded into the conv above; consumers read the conv's output.
          rw.MapTo(id, rw.Lookup(node.inputs[0]));
          break;
        }
        // Standalone BN (e.g. DenseNet pre-activation): lower to ScaleShift with
        // pre-computed constants.
        Tensor scale, shift;
        BnConstants(graph, node, &scale, &shift);
        std::vector<int> inputs = {
            rw.Lookup(node.inputs[0]),
            rw.dst().AddConstant(std::move(scale), node.name + ".scale"),
            rw.dst().AddConstant(std::move(shift), node.name + ".shift")};
        NodeAttrs attrs;
        attrs.relu = false;
        const int new_id = rw.dst().AddNode(OpType::kScaleShift, std::move(inputs),
                                            std::move(attrs), node.name);
        rw.MapTo(id, new_id);
        break;
      }
      default:
        rw.CopyNode(node);
        break;
    }
  }
  Graph out = rw.Finish();
  InferShapes(&out);
  return out;
}

Graph BindNchwKernels(const Graph& graph, ConvKernelKind kind) {
  GraphRewriter rw(graph);
  for (int id = 0; id < graph.num_nodes(); ++id) {
    const Node& node = graph.node(id);
    const int new_id = rw.CopyNode(node);
    if (node.IsConv()) {
      rw.dst().node(new_id).attrs.kernel = kind;
    }
  }
  Graph out = rw.Finish();
  InferShapes(&out);
  return out;
}

}  // namespace neocpu
