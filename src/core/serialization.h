// Standalone module serialization.
//
// The paper emphasizes that NeoCPU "produces a standalone module with minimal size that
// does not depend on either the frameworks or the high-performance kernel libraries,
// which enables easy deployment to multiple platforms" (this is how it ships in
// SageMaker Neo). This module implements that artifact: a compiled model — optimized
// graph, chosen schedules, pre-transformed weights — serializes to a single binary file
// that the executor can run without re-compiling or re-tuning.
//
// Format (little-endian, versioned):
//   magic "NEOC", u32 version, graph name, outputs, node records
//   (type, name, inputs, POD attribute block, dims, layout, optional payload).
#ifndef NEOCPU_SRC_CORE_SERIALIZATION_H_
#define NEOCPU_SRC_CORE_SERIALIZATION_H_

#include <string>

#include "src/core/compiler.h"

namespace neocpu {

// Writes the compiled model's executable graph (including constant payloads) to `path`.
// Returns false on I/O failure.
bool SaveModule(const CompiledModel& model, const std::string& path);

// Reads a module previously written by SaveModule. Dies on malformed input with a
// descriptive message; returns false only for I/O-level failure.
bool LoadModule(const std::string& path, CompiledModel* model);

}  // namespace neocpu

#endif  // NEOCPU_SRC_CORE_SERIALIZATION_H_
