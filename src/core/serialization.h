// Standalone module serialization.
//
// The paper emphasizes that NeoCPU "produces a standalone module with minimal size that
// does not depend on either the frameworks or the high-performance kernel libraries,
// which enables easy deployment to multiple platforms" (this is how it ships in
// SageMaker Neo). This module implements that artifact: a compiled model — optimized
// graph, chosen schedules, pre-transformed weights — serializes to a single binary file
// that the executor can run without re-compiling or re-tuning.
//
// Since format version 2 the artifact also round-trips the model's tuning state: the
// fused pre-layout source graph, the CompileConfig it was compiled under, and its
// TuningCache (every batch variant's search results). A warm-started server can
// therefore not only run the model immediately but also re-tune it for new batch sizes
// — and when the cache already holds a batch's tuning, that re-tune is a pure table
// lookup, no search.
//
// Format (little-endian, versioned):
//   magic "NEOC", u32 version,
//   executable graph (name, outputs, node records: type, name, inputs, POD attribute
//   block, dims, layout, optional payload),
//   v2+: u32 has_source [+ source graph], config block (layout mode, NCHW kernel,
//   target profile, cost mode, space mode, DP budget; v3 adds the plan_memory flag),
//   i64 tuned_batch, u32 has_cache [+ length-prefixed TuningCache text serialization],
//   v3+: u32 has_plan [+ u64 arena_bytes, u64 naive_arena_bytes] — the memory plan's
//   summary metadata. The plan itself (per-node offsets) is a pure function of the
//   executable graph, so LoadModule recomputes it instead of trusting file offsets;
//   the stored summary is a cross-check that warns on planner drift.
// Version-1 files (executable graph only) and version-2 files (no plan metadata; plans
// are computed at load) still load; v1 yields a model without source/config/cache,
// which serves but cannot re-tune.
#ifndef NEOCPU_SRC_CORE_SERIALIZATION_H_
#define NEOCPU_SRC_CORE_SERIALIZATION_H_

#include <string>

#include "src/core/compiler.h"

namespace neocpu {

// Writes the compiled model's executable graph (including constant payloads) plus its
// tuning state (source graph, config, tuning cache) to `path`. Returns false on I/O
// failure.
bool SaveModule(const CompiledModel& model, const std::string& path);

// Reads a module previously written by SaveModule. Dies on malformed input with a
// descriptive message; returns false only for I/O-level failure.
bool LoadModule(const std::string& path, CompiledModel* model);

}  // namespace neocpu

#endif  // NEOCPU_SRC_CORE_SERIALIZATION_H_
