#include "src/core/memory_plan.h"

#include <algorithm>
#include <map>

#include "src/base/align.h"
#include "src/base/logging.h"
#include "src/base/string_util.h"
#include "src/core/op_dispatch.h"

namespace neocpu {
namespace {

std::size_t AlignUp(std::size_t bytes) {
  return (bytes + kSimdAlignBytes - 1) / kSimdAlignBytes * kSimdAlignBytes;
}

// Offset allocator over one conceptual arena: best-fit on freed intervals (smallest
// sufficient hole, lowest offset on ties), growing the arena end only when no hole
// fits. Freed neighbors coalesce, and a freed tail shrinks the end, so the peak tracks
// the true simultaneous footprint.
class IntervalAllocator {
 public:
  std::size_t Alloc(std::size_t bytes) {
    auto best = free_.end();
    for (auto it = free_.begin(); it != free_.end(); ++it) {
      if (it->second >= bytes && (best == free_.end() || it->second < best->second)) {
        best = it;
      }
    }
    if (best != free_.end()) {
      const std::size_t offset = best->first;
      const std::size_t hole = best->second;
      free_.erase(best);
      if (hole > bytes) {
        free_.emplace(offset + bytes, hole - bytes);
      }
      return offset;
    }
    const std::size_t offset = end_;
    end_ += bytes;
    peak_ = std::max(peak_, end_);
    return offset;
  }

  void Free(std::size_t offset, std::size_t bytes) {
    if (bytes == 0) {
      return;
    }
    auto [it, inserted] = free_.emplace(offset, bytes);
    NEOCPU_CHECK(inserted) << "double free at arena offset " << offset;
    // Coalesce with the successor, then the predecessor.
    auto next = std::next(it);
    if (next != free_.end() && it->first + it->second == next->first) {
      it->second += next->second;
      free_.erase(next);
    }
    if (it != free_.begin()) {
      auto prev = std::prev(it);
      if (prev->first + prev->second == it->first) {
        prev->second += it->second;
        free_.erase(it);
        it = prev;
      }
    }
    if (it->first + it->second == end_) {
      end_ = it->first;
      free_.erase(it);
    }
  }

  std::size_t peak() const { return peak_; }

 private:
  std::map<std::size_t, std::size_t> free_;  // offset -> hole size
  std::size_t end_ = 0;
  std::size_t peak_ = 0;
};

std::size_t OutputBytes(const std::vector<std::int64_t>& dims, DType dtype) {
  std::int64_t count = 1;
  for (std::int64_t d : dims) {
    count *= d;
  }
  return static_cast<std::size_t>(count) * ElemSizeBytes(dtype);
}

// Elementwise ops that may write their output over their (dying, same-size) first
// input: same-index reads and writes, no reordering, no __restrict in the kernels.
bool SupportsInPlace(const Node& node) {
  switch (node.type) {
    case OpType::kRelu:
    case OpType::kScaleShift:
    case OpType::kElemAdd:
      return true;
    default:
      return false;
  }
}

struct Liveness {
  std::vector<int> root;      // alias-resolved buffer owner per node
  std::vector<int> last_use;  // per root: id of the last node reading the buffer
  std::vector<bool> escapes;  // per root: referenced by the graph's outputs
};

Liveness AnalyzeLiveness(const Graph& g) {
  const int n = g.num_nodes();
  Liveness live;
  live.root.resize(static_cast<std::size_t>(n));
  live.last_use.assign(static_cast<std::size_t>(n), -1);
  live.escapes.assign(static_cast<std::size_t>(n), false);

  for (int id = 0; id < n; ++id) {
    const Node& node = g.node(id);
    const int alias = AliasedInput(node, g);
    live.root[static_cast<std::size_t>(id)] =
        alias >= 0 ? live.root[static_cast<std::size_t>(node.inputs[static_cast<std::size_t>(alias)])]
                   : id;
    // A node reads every one of its inputs' buffers while it executes.
    for (int input : node.inputs) {
      const int r = live.root[static_cast<std::size_t>(input)];
      live.last_use[static_cast<std::size_t>(r)] =
          std::max(live.last_use[static_cast<std::size_t>(r)], id);
    }
  }
  for (int out : g.outputs()) {
    live.escapes[static_cast<std::size_t>(live.root[static_cast<std::size_t>(out)])] = true;
  }
  return live;
}

}  // namespace

ExecutionPlan PlanMemory(const Graph& g) {
  const int n = g.num_nodes();
  ExecutionPlan plan;
  plan.nodes.resize(static_cast<std::size_t>(n));
  const Liveness live = AnalyzeLiveness(g);

  // Classify every node first (an alias consumer never changes its root's class).
  for (int id = 0; id < n; ++id) {
    const Node& node = g.node(id);
    NodePlan& np = plan.nodes[static_cast<std::size_t>(id)];
    const int root = live.root[static_cast<std::size_t>(id)];
    if (root != id) {
      np.placement = BufferPlacement::kAlias;
      np.alias_of = root;
      ++plan.alias_nodes;
      continue;
    }
    const bool external = node.type == OpType::kInput || node.type == OpType::kConstant;
    if (external || live.escapes[static_cast<std::size_t>(id)] ||
        !SupportsExecuteInto(node, g)) {
      np.placement = BufferPlacement::kHeap;  // owns its storage (or is externally owned)
      if (!external) {
        ++plan.heap_nodes;
      }
      continue;
    }
    np.placement = BufferPlacement::kArena;
    np.dims = MakeSharedDims(PlannedOutputDims(node));
    np.layout = PlannedOutputLayout(node);
    np.dtype = node.out_dtype;
    np.size_bytes = AlignUp(OutputBytes(*np.dims, np.dtype));
    np.workspace_bytes = AlignUp(NodeWorkspaceBytes(node));
    if (np.size_bytes == 0) {  // degenerate zero-element output; keep it owning
      np.placement = BufferPlacement::kHeap;
      np.dims.reset();
      np.workspace_bytes = 0;
      ++plan.heap_nodes;
      continue;
    }
    ++plan.arena_nodes;
  }

  // Greedy offset assignment in execution (topological id) order. Within one node's
  // timestep the output, the workspace, and every input buffer coexist; inputs whose
  // last consumer is this node are released only after it runs.
  //
  // In-place elementwise: a ReLU/ScaleShift/ElemAdd whose first input is an
  // arena-placed buffer of identical size that DIES at this node writes straight over
  // it — the input's interval transfers to the output instead of being freed, which
  // shaves one live buffer off the peak exactly where elementwise chains would
  // otherwise double-buffer.
  IntervalAllocator alloc;
  std::vector<char> transferred(static_cast<std::size_t>(n), 0);
  for (int id = 0; id < n; ++id) {
    const Node& node = g.node(id);
    NodePlan& np = plan.nodes[static_cast<std::size_t>(id)];
    if (np.placement == BufferPlacement::kArena) {
      int reuse = -1;
      if (SupportsInPlace(node)) {
        const int r = live.root[static_cast<std::size_t>(node.inputs[0])];
        const NodePlan& rp = plan.nodes[static_cast<std::size_t>(r)];
        if (rp.placement == BufferPlacement::kArena &&
            !transferred[static_cast<std::size_t>(r)] &&
            live.last_use[static_cast<std::size_t>(r)] == id &&
            rp.size_bytes == np.size_bytes) {
          reuse = r;
        }
      }
      if (reuse >= 0) {
        np.offset = plan.nodes[static_cast<std::size_t>(reuse)].offset;
        np.in_place_of = reuse;
        transferred[static_cast<std::size_t>(reuse)] = 1;
        ++plan.in_place_nodes;
      } else {
        np.offset = alloc.Alloc(np.size_bytes);
      }
      plan.naive_bytes += np.size_bytes;
      if (np.workspace_bytes > 0) {
        np.workspace_offset = alloc.Alloc(np.workspace_bytes);
        plan.naive_bytes += np.workspace_bytes;
      }
    }
    // The workspace dies with the node; the output dies when its last consumer ran.
    // Buffers whose interval was transferred to an in-place successor are freed by
    // that successor's own release, not here.
    if (np.placement == BufferPlacement::kArena && np.workspace_bytes > 0) {
      alloc.Free(np.workspace_offset, np.workspace_bytes);
    }
    // A transferred buffer is never freed directly: its bytes free when the in-place
    // chain's final owner dies (same offset and size along the whole chain).
    for (int r = 0; r <= id; ++r) {
      const NodePlan& rp = plan.nodes[static_cast<std::size_t>(r)];
      if (rp.placement == BufferPlacement::kArena &&
          !transferred[static_cast<std::size_t>(r)] &&
          std::max(live.last_use[static_cast<std::size_t>(r)], r) == id) {
        alloc.Free(rp.offset, rp.size_bytes);
      }
    }
  }
  plan.arena_bytes = alloc.peak();
  return plan;
}

bool ValidatePlan(const Graph& g, const ExecutionPlan& plan,
                  std::vector<std::string>* errors) {
  bool ok = true;
  auto fail = [&](std::string msg) {
    ok = false;
    if (errors != nullptr) {
      errors->push_back(std::move(msg));
    }
  };
  const int n = g.num_nodes();
  if (static_cast<int>(plan.nodes.size()) != n) {
    fail("plan size mismatch");
    return false;
  }
  const Liveness live = AnalyzeLiveness(g);

  // Collect every arena interval with its live range [def, release].
  struct LiveInterval {
    int def, release;
    std::size_t offset, bytes;
    int node;
  };
  std::vector<LiveInterval> intervals;
  for (int id = 0; id < n; ++id) {
    const Node& node = g.node(id);
    const NodePlan& np = plan.nodes[static_cast<std::size_t>(id)];
    switch (np.placement) {
      case BufferPlacement::kArena: {
        if (!SupportsExecuteInto(node, g)) {
          fail(StrFormat("node %d (%s) is arena-placed but has no into-form", id,
                         node.name.c_str()));
        }
        if (live.escapes[static_cast<std::size_t>(id)]) {
          fail(StrFormat("node %d (%s) escapes via graph outputs but is arena-placed", id,
                         node.name.c_str()));
        }
        if (np.offset + np.size_bytes > plan.arena_bytes) {
          fail(StrFormat("node %d output [%zu, %zu) exceeds arena of %zu bytes", id,
                         np.offset, np.offset + np.size_bytes, plan.arena_bytes));
        }
        if (np.in_place_of >= 0) {
          // In-place reuse is only sound when the op tolerates output==input, the
          // reused buffer dies exactly here, and the byte ranges coincide.
          const NodePlan& rp = plan.nodes[static_cast<std::size_t>(np.in_place_of)];
          if (!SupportsInPlace(node)) {
            fail(StrFormat("node %d (%s) claims in-place but op cannot alias its input",
                           id, node.name.c_str()));
          }
          if (live.root[static_cast<std::size_t>(node.inputs[0])] != np.in_place_of) {
            fail(StrFormat("node %d in-place target %d is not its first input's buffer",
                           id, np.in_place_of));
          }
          if (live.last_use[static_cast<std::size_t>(np.in_place_of)] != id) {
            fail(StrFormat("node %d overwrites buffer %d which outlives it", id,
                           np.in_place_of));
          }
          if (rp.offset != np.offset || rp.size_bytes != np.size_bytes) {
            fail(StrFormat("node %d in-place bytes differ from buffer %d's", id,
                           np.in_place_of));
          }
        }
        const int release = std::max(live.last_use[static_cast<std::size_t>(id)], id);
        intervals.push_back({id, release, np.offset, np.size_bytes, id});
        if (np.workspace_bytes > 0) {
          if (np.workspace_offset + np.workspace_bytes > plan.arena_bytes) {
            fail(StrFormat("node %d workspace exceeds arena", id));
          }
          intervals.push_back({id, id, np.workspace_offset, np.workspace_bytes, id});
        }
        break;
      }
      case BufferPlacement::kAlias: {
        if (np.alias_of < 0 || np.alias_of >= n) {
          fail(StrFormat("node %d alias target %d out of range", id, np.alias_of));
        } else if (np.alias_of != live.root[static_cast<std::size_t>(id)]) {
          fail(StrFormat("node %d aliases %d but liveness says root %d", id, np.alias_of,
                         live.root[static_cast<std::size_t>(id)]));
        }
        break;
      }
      case BufferPlacement::kHeap:
        break;
    }
  }

  // Concurrently-live intervals must not overlap in bytes. Two intervals are
  // simultaneously live when their [def, release] ranges intersect — a buffer released
  // at timestep t and one defined at t DO coexist (the consumer reads the former while
  // the latter is its output), which is exactly the aliasing hazard this guards.
  auto in_place_pair = [&](int a, int b) {
    return plan.nodes[static_cast<std::size_t>(a)].in_place_of == b ||
           plan.nodes[static_cast<std::size_t>(b)].in_place_of == a;
  };
  for (std::size_t a = 0; a < intervals.size(); ++a) {
    for (std::size_t b = a + 1; b < intervals.size(); ++b) {
      const LiveInterval& x = intervals[a];
      const LiveInterval& y = intervals[b];
      const bool time_overlap = x.def <= y.release && y.def <= x.release;
      const bool byte_overlap = x.offset < y.offset + y.bytes && y.offset < x.offset + x.bytes;
      if (time_overlap && byte_overlap && !in_place_pair(x.node, y.node)) {
        fail(StrFormat("nodes %d and %d: live intervals overlap in the arena", x.node,
                       y.node));
      }
    }
  }
  return ok;
}

std::string ExecutionPlan::ToString() const {
  std::string out = StrFormat(
      "ExecutionPlan: arena=%zu naive=%zu (%d arena [%d in-place], %d alias, %d heap)\n",
      arena_bytes, naive_bytes, arena_nodes, in_place_nodes, alias_nodes, heap_nodes);
  for (std::size_t id = 0; id < nodes.size(); ++id) {
    const NodePlan& np = nodes[id];
    switch (np.placement) {
      case BufferPlacement::kArena:
        out += StrFormat("  %3zu arena [%zu, %zu)", id, np.offset, np.offset + np.size_bytes);
        if (np.in_place_of >= 0) {
          out += StrFormat(" in-place of %d", np.in_place_of);
        }
        if (np.workspace_bytes > 0) {
          out += StrFormat(" ws [%zu, %zu)", np.workspace_offset,
                           np.workspace_offset + np.workspace_bytes);
        }
        out += "\n";
        break;
      case BufferPlacement::kAlias:
        out += StrFormat("  %3zu alias -> %d\n", id, np.alias_of);
        break;
      case BufferPlacement::kHeap:
        break;
    }
  }
  return out;
}

}  // namespace neocpu
