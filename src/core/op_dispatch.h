// Single-node execution dispatch: maps a graph node (plus resolved input tensors) to the
// kernel library. Layout-tolerant operations pick their NCHW / NCHW[x]c variant from the
// incoming tensor's rank, so the same dispatch serves the reference executor and every
// optimized configuration.
//
// Two execution forms:
//   * ExecuteNode — allocating: the kernel materializes a fresh output tensor (and any
//     scratch it needs). The reference path, and the fallback for graphs without a
//     memory plan.
//   * ExecuteNodeInto — zero-allocation: output and workspace are caller-provided (arena
//     slices placed by core/memory_plan). Only valid for nodes where
//     SupportsExecuteInto() is true; the planner and the executor agree on that set.
// The planner-facing queries below are the single source of truth for which nodes
// materialize, which alias an input's buffer, and how much scratch each kernel needs.
#ifndef NEOCPU_SRC_CORE_OP_DISPATCH_H_
#define NEOCPU_SRC_CORE_OP_DISPATCH_H_

#include <cstddef>
#include <vector>

#include "src/graph/graph.h"
#include "src/runtime/thread_engine.h"
#include "src/tensor/tensor.h"

namespace neocpu {

Tensor ExecuteNode(const Node& node, const std::vector<Tensor>& inputs,
                   ThreadEngine* engine);

// Executes `node` writing its result into `*out` (a preallocated tensor whose physical
// dims/layout match PlannedOutputDims/node.out_layout) using `workspace` for kernel
// scratch (null iff NodeWorkspaceBytes(node) == 0). `workspace_bytes` is the workspace's
// capacity — kernels whose scratch scales with parallelism (Winograd's per-worker tile
// buffers) clamp their fan-out to what the workspace backs. Dies if the node does not
// support the into-form.
void ExecuteNodeInto(const Node& node, const std::vector<Tensor>& inputs, Tensor* out,
                     float* workspace, std::size_t workspace_bytes, ThreadEngine* engine);

// True when ExecuteNodeInto can run this node. False for ops whose output is a view of
// an input (see AliasedInput), for inputs/constants, and for the few ops that keep the
// allocating path (unfolded BatchNorm, multibox detection).
bool SupportsExecuteInto(const Node& node, const Graph& graph);

// If the node's output shares its input's buffer (reshape, flatten, dropout, identity
// layout transforms), the index into node.inputs of the aliased producer; -1 otherwise.
int AliasedInput(const Node& node, const Graph& graph);

// Bytes of kernel scratch one execution of `node` needs: im2col column buffer, Winograd
// per-worker V/M tile scratch (sized for MaxPlannedWorkers so the plan stays valid under
// any engine); 0 for everything else on the dispatch path.
std::size_t NodeWorkspaceBytes(const Node& node);

// Worker count the planner sizes parallelism-scaled workspaces for: the host's hardware
// concurrency. Engines wider than this are clamped by the kernels at execute time.
int MaxPlannedWorkers();

// Physical dims of the node's output tensor: node.out_dims reinterpreted under
// node.out_layout (NCHW[x]c feature maps materialize as 5-D {N, C/x, H, W, x}).
std::vector<std::int64_t> PlannedOutputDims(const Node& node);

// Layout tag the node's kernel actually produces. node.out_layout is authoritative for
// feature maps (4-D+), but flat outputs (dense, softmax rows, flattened heads) keep the
// Node-default NCHW tag — the kernels label those Flat, and the planner's views must
// match what the kernels check.
Layout PlannedOutputLayout(const Node& node);

}  // namespace neocpu

#endif  // NEOCPU_SRC_CORE_OP_DISPATCH_H_
