// Single-node execution dispatch: maps a graph node (plus resolved input tensors) to the
// kernel library. Layout-tolerant operations pick their NCHW / NCHW[x]c variant from the
// incoming tensor's rank, so the same dispatch serves the reference executor and every
// optimized configuration.
#ifndef NEOCPU_SRC_CORE_OP_DISPATCH_H_
#define NEOCPU_SRC_CORE_OP_DISPATCH_H_

#include <vector>

#include "src/graph/graph.h"
#include "src/runtime/thread_engine.h"
#include "src/tensor/tensor.h"

namespace neocpu {

Tensor ExecuteNode(const Node& node, const std::vector<Tensor>& inputs,
                   ThreadEngine* engine);

}  // namespace neocpu

#endif  // NEOCPU_SRC_CORE_OP_DISPATCH_H_
