// Ahead-of-time static memory planning (the compile-time side of the paper's §3.3
// "graph-level optimization decides data placement ahead of execution").
//
// PlanMemory runs liveness analysis over an executable graph — generalizing the
// executor's use-count logic to full def/last-use intervals with alias tracking — sizes
// every intermediate tensor and per-op kernel workspace (im2col column buffers), and
// greedily assigns byte offsets into ONE contiguous arena, reusing the space of buffers
// whose last consumer has already run (best-fit over freed intervals, with coalescing).
// The executor then runs the whole graph inside a single pooled, pre-faulted arena
// (runtime/arena_pool): steady-state inference performs zero heap allocations for
// intermediates and workspaces.
//
// Placement classes:
//   kArena — materializing op the dispatcher can execute-into; offset/size are final.
//   kAlias — the output is a view of an input's buffer (reshape/flatten/dropout,
//            identity layout transforms); shares the producer's placement and extends
//            its live interval.
//   kHeap  — buffers that must own their storage: graph outputs (and anything they
//            alias — they escape the Run and outlive the arena lease) plus the few ops
//            without an into-form (unfolded BatchNorm, multibox detection).
//
// The plan is a pure function of the graph: every batch variant gets its own plan, and
// module loading recomputes plans rather than trusting serialized offsets (the artifact
// carries only summary metadata as a cross-check).
#ifndef NEOCPU_SRC_CORE_MEMORY_PLAN_H_
#define NEOCPU_SRC_CORE_MEMORY_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/tensor/layout.h"
#include "src/tensor/tensor.h"

namespace neocpu {

enum class BufferPlacement : std::uint8_t { kHeap, kArena, kAlias };

struct NodePlan {
  BufferPlacement placement = BufferPlacement::kHeap;
  int alias_of = -1;                 // kAlias: node id whose buffer this output shares
  // kArena: node id whose arena bytes this output REUSES in place (an elementwise op
  // writing over its dying input: ReLU/ScaleShift/ElemAdd with a last-use first input
  // of identical size). -1 for ordinary arena placements. Unlike kAlias the node still
  // executes; it just writes where it read.
  int in_place_of = -1;
  std::size_t offset = 0;            // kArena: byte offset of the output in the arena
  std::size_t size_bytes = 0;        // kArena: aligned output size
  std::size_t workspace_offset = 0;  // kArena with workspace_bytes > 0
  std::size_t workspace_bytes = 0;
  // Physical dims/layout/dtype of the output view (kArena), precomputed and
  // immutable-shared so every Run builds its view without re-deriving shapes OR
  // allocating a dims vector (Tensor::FromExternal adopts the SharedDims by refcount).
  SharedDims dims;
  Layout layout;
  DType dtype = DType::kF32;
};

struct ExecutionPlan {
  std::vector<NodePlan> nodes;    // indexed by node id
  std::size_t arena_bytes = 0;    // peak arena footprint (what the executor reserves)
  std::size_t naive_bytes = 0;    // sum of all planned buffers + workspaces: the bytes
                                  // the allocating path mallocs per Run for the same set
  int arena_nodes = 0;            // outputs placed in the arena
  int alias_nodes = 0;
  int heap_nodes = 0;             // materializing nodes left on the allocating path
  int in_place_nodes = 0;         // arena nodes that overwrite their dying input

  bool UsesArena() const { return arena_nodes > 0; }
  std::string ToString() const;  // human-readable placement table (debugging)
};

// Plans `graph`. Always succeeds; a graph with nothing plannable yields a plan with
// arena_nodes == 0 which the executor treats as "no plan".
ExecutionPlan PlanMemory(const Graph& graph);

// Validation used by tests: true iff no two concurrently-live arena intervals overlap,
// every interval fits in arena_bytes, and alias/heap classification matches the
// dispatcher's capabilities. Appends human-readable problems to `errors` if non-null.
bool ValidatePlan(const Graph& graph, const ExecutionPlan& plan,
                  std::vector<std::string>* errors = nullptr);

}  // namespace neocpu

#endif  // NEOCPU_SRC_CORE_MEMORY_PLAN_H_
