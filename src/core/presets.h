// Named compiler configurations for the paper's comparisons.
//
// The paper's baselines are closed or third-party stacks (MXNet+MKL-DNN, TensorFlow+
// Eigen/ngraph, OpenVINO). This repository reproduces their *structure* on identical
// kernels (see DESIGN.md §1):
//
//   NeoCpuOptions          — the full system: global search, transform elimination,
//                            custom thread pool at run time.
//   FrameworkLibOptions    — "framework + vendor library": each conv runs the blocked
//                            template at the ISA's fixed block, but pays NCHW→NCHW[x]c→
//                            NCHW transforms around every call (MXNet+MKL-DNN-like).
//   FrameworkDefaultOptions— "framework default": im2col+GEMM in NCHW (TensorFlow/
//                            Eigen-like), no layout optimization.
//
// Run-time thread engines are chosen by the caller: NeoThreadPool for NeoCPU,
// OmpStylePool for the framework baselines (Figure 4).
#ifndef NEOCPU_SRC_CORE_PRESETS_H_
#define NEOCPU_SRC_CORE_PRESETS_H_

#include "src/core/compiler.h"

namespace neocpu {

inline CompileOptions NeoCpuOptions(const Target& target) {
  CompileOptions opts;
  opts.layout_mode = LayoutMode::kNCHWcGlobal;
  opts.target = target;
  return opts;
}

inline CompileOptions FrameworkLibOptions(const Target& target) {
  CompileOptions opts;
  opts.layout_mode = LayoutMode::kNCHWcPerOp;
  opts.target = target;
  return opts;
}

inline CompileOptions FrameworkDefaultOptions(const Target& target) {
  CompileOptions opts;
  opts.layout_mode = LayoutMode::kNCHW;
  opts.nchw_kernel = ConvKernelKind::kIm2col;
  opts.target = target;
  return opts;
}

// Table 3 ablation rows (cumulative, top to bottom).
inline CompileOptions AblationBaselineNchw(const Target& target) {
  CompileOptions opts;
  opts.layout_mode = LayoutMode::kNCHW;
  opts.nchw_kernel = ConvKernelKind::kDirectNCHW;
  opts.target = target;
  return opts;
}

inline CompileOptions AblationLayoutOpt(const Target& target) {
  return FrameworkLibOptions(target);
}

inline CompileOptions AblationTransformElim(const Target& target) {
  CompileOptions opts;
  opts.layout_mode = LayoutMode::kNCHWcFixed;
  opts.target = target;
  return opts;
}

inline CompileOptions AblationGlobalSearch(const Target& target) {
  return NeoCpuOptions(target);
}

}  // namespace neocpu

#endif  // NEOCPU_SRC_CORE_PRESETS_H_
