#include "src/core/executor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <optional>

#include "src/base/cycle_clock.h"
#include "src/base/logging.h"
#include "src/base/string_util.h"
#include "src/core/op_dispatch.h"
#include "src/obs/node_profiler.h"
#include "src/obs/trace.h"

namespace neocpu {

namespace {

// Clip threshold keeping 99.9% of the |x| mass: the smallest histogram prefix whose
// cumulative count reaches that fraction. Activation outliers (a handful of extreme
// values in millions) otherwise dictate the s8 scale and waste most of the 256 codes.
float PercentileThreshold(const std::vector<std::uint64_t>& hist, float absmax) {
  std::uint64_t total = 0;
  for (std::uint64_t c : hist) {
    total += c;
  }
  if (total == 0) {
    return absmax;
  }
  const double keep = 0.999 * static_cast<double>(total);
  std::uint64_t cum = 0;
  const int bins = static_cast<int>(hist.size());
  for (int b = 0; b < bins; ++b) {
    cum += hist[b];
    if (static_cast<double>(cum) >= keep) {
      return absmax * static_cast<float>(b + 1) / static_cast<float>(bins);
    }
  }
  return absmax;
}

// Simplified KL-divergence scan (the TVM/TensorRT calibration recipe): for each clip
// candidate i, the reference P is the clipped histogram (outlier mass folded into the
// last kept bin) and Q is P squeezed through 256 quantization levels and expanded
// back; the candidate minimizing KL(P||Q) wastes the least information. We distribute
// each level's mass uniformly over its source bins (skipping TVM's nonzero-bin
// refinement) — calibration picks a scale, not exact entropy.
float EntropyThreshold(const std::vector<std::uint64_t>& hist, float absmax) {
  const int bins = static_cast<int>(hist.size());
  const int levels = 256;
  if (bins <= levels) {
    return absmax;
  }
  double best_kl = std::numeric_limits<double>::infinity();
  int best_i = bins;
  for (int i = levels; i <= bins; i += 8) {
    std::vector<double> p(hist.begin(), hist.begin() + i);
    for (int j = i; j < bins; ++j) {
      p[static_cast<std::size_t>(i - 1)] += static_cast<double>(hist[j]);
    }
    double p_total = 0.0;
    for (double v : p) {
      p_total += v;
    }
    if (p_total <= 0.0) {
      continue;
    }
    std::vector<double> q(static_cast<std::size_t>(i), 0.0);
    const double step = static_cast<double>(i) / levels;
    for (int l = 0; l < levels; ++l) {
      const int lo = static_cast<int>(l * step);
      int hi = static_cast<int>((l + 1) * step);
      hi = hi > i ? i : (hi <= lo ? lo + 1 : hi);
      double mass = 0.0;
      for (int j = lo; j < hi; ++j) {
        mass += p[static_cast<std::size_t>(j)];
      }
      const double share = mass / static_cast<double>(hi - lo);
      for (int j = lo; j < hi; ++j) {
        q[static_cast<std::size_t>(j)] = share;
      }
    }
    double kl = 0.0;
    for (int j = 0; j < i; ++j) {
      const double pj = p[static_cast<std::size_t>(j)] / p_total;
      const double qj = q[static_cast<std::size_t>(j)] / p_total;
      if (pj > 0.0 && qj > 0.0) {
        kl += pj * std::log(pj / qj);
      }
    }
    if (kl < best_kl) {
      best_kl = kl;
      best_i = i;
    }
  }
  return absmax * static_cast<float>(best_i) / static_cast<float>(bins);
}

}  // namespace

void CalibrationObserver::Observe(int id, const Tensor& value) {
  if (value.dtype() != DType::kF32 || value.NumElements() == 0) {
    return;
  }
  const float* p = value.data();
  const std::int64_t n = value.NumElements();
  if (histogram_phase_) {
    const auto rit = table_.find(id);
    if (rit == table_.end()) {
      return;
    }
    const float absmax = std::max(std::fabs(rit->second.min), std::fabs(rit->second.max));
    if (absmax <= 0.0f) {
      return;
    }
    std::vector<std::uint64_t>& h = hist_[id];
    if (h.empty()) {
      h.assign(kHistogramBins, 0);
    }
    const float inv = static_cast<float>(kHistogramBins) / absmax;
    for (std::int64_t i = 0; i < n; ++i) {
      int b = static_cast<int>(std::fabs(p[i]) * inv);
      b = b >= kHistogramBins ? kHistogramBins - 1 : b;
      ++h[static_cast<std::size_t>(b)];
    }
    return;
  }
  float lo = p[0];
  float hi = p[0];
  for (std::int64_t i = 1; i < n; ++i) {
    lo = p[i] < lo ? p[i] : lo;
    hi = p[i] > hi ? p[i] : hi;
  }
  auto [it, inserted] = table_.emplace(id, TensorRange{lo, hi});
  if (!inserted) {
    it->second.Merge(TensorRange{lo, hi});
  }
}

CalibrationTable CalibrationObserver::Finalize(CalibrationPolicy policy) {
  if (policy != CalibrationPolicy::kMinMax) {
    for (auto& [id, range] : table_) {
      const auto hit = hist_.find(id);
      if (hit == hist_.end()) {
        continue;  // no histogram (all-zero activations): keep the min/max range
      }
      const float absmax = std::max(std::fabs(range.min), std::fabs(range.max));
      const float t = policy == CalibrationPolicy::kPercentile
                          ? PercentileThreshold(hit->second, absmax)
                          : EntropyThreshold(hit->second, absmax);
      if (t > 0.0f) {
        range.min = std::max(range.min, -t);
        range.max = std::min(range.max, t);
      }
    }
  }
  hist_.clear();
  histogram_phase_ = false;
  return std::move(table_);
}

Executor::Executor(const Graph* graph, ThreadEngine* engine,
                   std::shared_ptr<const ExecutionPlan> plan)
    : graph_(graph), engine_(engine), plan_(std::move(plan)) {
  use_counts_.assign(static_cast<std::size_t>(graph->num_nodes()), 0);
  for (int id = 0; id < graph->num_nodes(); ++id) {
    const Node& node = graph->node(id);
    if (node.type == OpType::kInput) {
      input_nodes_.push_back(id);
    }
    for (int input : node.inputs) {
      ++use_counts_[static_cast<std::size_t>(input)];
    }
  }
  for (int out : graph->outputs()) {
    ++use_counts_[static_cast<std::size_t>(out)];
  }
  if (plan_ != nullptr) {
    NEOCPU_CHECK_EQ(static_cast<int>(plan_->nodes.size()), graph->num_nodes())
        << "execution plan does not match the graph";
    planned_ = plan_->UsesArena();
  }
}

std::vector<Tensor> Executor::Run(const std::vector<Tensor>& inputs) const {
  return Run(inputs, engine_, nullptr);
}

std::vector<Tensor> Executor::Run(const std::vector<Tensor>& inputs,
                                  ThreadEngine* engine) const {
  return Run(inputs, engine, nullptr);
}

std::vector<Tensor> Executor::Run(const std::vector<Tensor>& inputs, ThreadEngine* engine,
                                  Arena* arena) const {
  NEOCPU_CHECK_EQ(inputs.size(), input_nodes_.size())
      << "graph expects " << input_nodes_.size() << " inputs";
  std::vector<Tensor> values(static_cast<std::size_t>(graph_->num_nodes()));
  std::vector<int> remaining = use_counts_;

  for (std::size_t i = 0; i < input_nodes_.size(); ++i) {
    const Node& node = graph_->node(input_nodes_[i]);
    // Full per-axis shape validation: an element-count check alone would accept a
    // transposed input of equal size and silently produce wrong numbers.
    NEOCPU_CHECK_EQ(inputs[i].ndim(), static_cast<int>(node.out_dims.size()))
        << "input rank mismatch for " << node.name << ": got " << inputs[i].DebugString()
        << ", graph expects " << node.out_dims.size() << " dims";
    for (int axis = 0; axis < inputs[i].ndim(); ++axis) {
      NEOCPU_CHECK_EQ(inputs[i].dim(axis), node.out_dims[static_cast<std::size_t>(axis)])
          << "input shape mismatch for " << node.name << " at axis " << axis << ": got "
          << inputs[i].DebugString();
    }
    values[static_cast<std::size_t>(input_nodes_[i])] = inputs[i];
    if (observer_ != nullptr) {
      observer_->Observe(input_nodes_[i], inputs[i]);
    }
  }

  // One lease per Run: a warm per-partition arena when the caller owns one (serving
  // pool), else the process-wide pool. Stack-held (the lease handle itself must not
  // malloc on the path whose point is zero allocations) and lazy, so unplanned graphs
  // never touch the pool.
  std::optional<ArenaLease> lease;
  float* arena_base = nullptr;
  if (planned_) {
    lease.emplace(arena, &ArenaPool::Global(), plan_->arena_bytes);
    arena_base = lease->data();
  }

  // Observability: with neither hook attached this whole feature costs two relaxed
  // loads per Run and one always-false branch per node — no clocks, no stores.
  NodeProfiler* profiler = profiler_.load(std::memory_order_acquire);
  const bool sampled = profiler != nullptr && profiler->BeginRun();
  TraceRecorder* tracer = tracer_.load(std::memory_order_acquire);
  const bool timed = sampled || tracer != nullptr;
  // Profiler-only sampling reads the serialized TSC where it is invariant: cheaper
  // than the vDSO clock and cycle-exact. Tracing keeps steady_clock — chrome-trace
  // spans need wall-clock-comparable timestamps.
  const bool use_tsc = sampled && tracer == nullptr && CycleClock::Supported();

  std::vector<Tensor> node_inputs;
  for (int id = 0; id < graph_->num_nodes(); ++id) {
    const Node& node = graph_->node(id);
    if (node.type == OpType::kInput) {
      continue;
    }
    if (node.type == OpType::kConstant) {
      values[static_cast<std::size_t>(id)] = node.payload;  // shallow: shares the buffer
      continue;
    }
    node_inputs.clear();
    for (int input : node.inputs) {
      NEOCPU_CHECK(values[static_cast<std::size_t>(input)].defined())
          << node.name << ": input " << input << " not materialized";
      node_inputs.push_back(values[static_cast<std::size_t>(input)]);
    }
    std::chrono::steady_clock::time_point node_begin;
    std::uint64_t cycle_begin = 0;
    if (timed) {
      if (use_tsc) {
        cycle_begin = CycleClock::Now();
      } else {
        node_begin = std::chrono::steady_clock::now();
      }
    }
    const NodePlan* np =
        planned_ ? &plan_->nodes[static_cast<std::size_t>(id)] : nullptr;
    if (np != nullptr && np->placement == BufferPlacement::kArena) {
      // Zero-allocation path: output and workspace are views at the planned offsets
      // (offsets are SIMD-aligned, so the float-granular pointer arithmetic is exact
      // for every element size).
      Tensor out = Tensor::FromExternal(
          arena_base + np->offset / sizeof(float), np->dims, np->layout, np->dtype);
      float* workspace = np->workspace_bytes > 0
                             ? arena_base + np->workspace_offset / sizeof(float)
                             : nullptr;
      ExecuteNodeInto(node, node_inputs, &out, workspace, np->workspace_bytes, engine);
      values[static_cast<std::size_t>(id)] = std::move(out);
    } else {
      values[static_cast<std::size_t>(id)] = ExecuteNode(node, node_inputs, engine);
    }
    if (use_tsc) {
      profiler->RecordNode(node,
                           CycleClock::CyclesToNanos(CycleClock::Now() - cycle_begin));
    } else if (timed) {
      const auto node_end = std::chrono::steady_clock::now();
      if (sampled) {
        profiler->RecordNode(
            node, static_cast<std::uint64_t>(
                      std::chrono::duration_cast<std::chrono::nanoseconds>(node_end -
                                                                           node_begin)
                          .count()));
      }
      if (tracer != nullptr) {
        tracer->RecordSpan("node", node.name.empty() ? StrFormat("node%d", id) : node.name,
                           node_begin, node_end);
      }
    }
    if (observer_ != nullptr) {
      observer_->Observe(id, values[static_cast<std::size_t>(id)]);
    }
    // Liveness: release inputs whose last consumer just ran.
    for (int input : node.inputs) {
      if (--remaining[static_cast<std::size_t>(input)] == 0) {
        values[static_cast<std::size_t>(input)] = Tensor();
      }
    }
  }

  if (sampled) {
    profiler->EndSampledRun();
  }

  std::vector<Tensor> outputs;
  outputs.reserve(graph_->outputs().size());
  for (int out : graph_->outputs()) {
    // Planned graphs place escaping buffers on the heap, so outputs own their storage
    // and stay valid after the arena lease is returned.
    outputs.push_back(values[static_cast<std::size_t>(out)]);
  }
  return outputs;
}

Tensor Executor::Run(const Tensor& input) const { return Run(input, engine_, nullptr); }

Tensor Executor::Run(const Tensor& input, ThreadEngine* engine) const {
  return Run(input, engine, nullptr);
}

Tensor Executor::Run(const Tensor& input, ThreadEngine* engine, Arena* arena) const {
  std::vector<Tensor> outputs = Run(std::vector<Tensor>{input}, engine, arena);
  NEOCPU_CHECK_EQ(outputs.size(), 1u);
  return outputs[0];
}

}  // namespace neocpu
