#include "src/core/compiler.h"

#include <algorithm>
#include <limits>

#include "src/base/logging.h"
#include "src/base/timer.h"
#include "src/graph/passes/passes.h"
#include "src/graph/shape_infer.h"
#include "src/tuning/global_search.h"
#include "src/tuning/schedule_space.h"

namespace neocpu {

const char* LayoutModeName(LayoutMode mode) {
  switch (mode) {
    case LayoutMode::kNCHW:
      return "nchw";
    case LayoutMode::kNCHWcPerOp:
      return "nchwc-per-op";
    case LayoutMode::kNCHWcFixed:
      return "nchwc-fixed";
    case LayoutMode::kNCHWcLocal:
      return "nchwc-local";
    case LayoutMode::kNCHWcGlobal:
      return "nchwc-global";
  }
  return "?";
}

namespace {

// The "fixed x" of §3.2, restricted to blocks the local search actually enumerated:
// the largest candidate not exceeding the target's preferred block, falling back to the
// smallest candidate (covers channel counts like 28 or the 3-channel image input, whose
// factors skip the preferred block entirely).
std::int64_t PickFixedBlock(const LocalSearchResult& result, bool input_side,
                            std::int64_t prefer) {
  std::int64_t best_leq = 0;
  std::int64_t smallest = std::numeric_limits<std::int64_t>::max();
  for (const ScheduleCost& sc : result.ranked) {
    const std::int64_t block = input_side ? sc.schedule.ic_bn : sc.schedule.oc_bn;
    smallest = std::min(smallest, block);
    if (block <= prefer) {
      best_leq = std::max(best_leq, block);
    }
  }
  return best_leq > 0 ? best_leq : smallest;
}

}  // namespace

CompiledModel Compile(const Graph& model, const CompileOptions& opts) {
  Timer total_timer;
  CompileStats stats;

  Graph g = SimplifyInference(model);
  g = FuseOps(g);

  if (opts.layout_mode == LayoutMode::kNCHW) {
    g = BindNchwKernels(g, opts.nchw_kernel);
    stats.num_convs = g.CountNodes(OpType::kConv2d);
    stats.compile_seconds = total_timer.Seconds();
    return CompiledModel(std::move(g), stats);
  }

  // Local search per convolution workload (memoized through the tuning database).
  Timer tuning_timer;
  std::map<int, LocalSearchResult> locals;
  for (int id = 0; id < g.num_nodes(); ++id) {
    const Node& node = g.node(id);
    if (node.IsConv()) {
      locals[id] = LocalSearchConv(node.attrs.conv, opts.target, opts.cost_mode,
                                   opts.quick_space, opts.engine, opts.tuning_db);
    }
  }
  stats.tuning_seconds = tuning_timer.Seconds();
  stats.num_convs = static_cast<int>(locals.size());

  std::map<int, ConvSchedule> schedules;
  switch (opts.layout_mode) {
    case LayoutMode::kNCHWcPerOp:
    case LayoutMode::kNCHWcFixed: {
      // One global split factor (§3.2): the target's vector width, degraded per conv to
      // the largest factor of its channel counts.
      const std::int64_t x = opts.target.PreferredBlock();
      for (auto& [id, result] : locals) {
        const std::int64_t ic_bn = PickFixedBlock(result, /*input_side=*/true, x);
        const std::int64_t oc_bn = PickFixedBlock(result, /*input_side=*/false, x);
        const ScheduleCost* best = result.BestForPair(ic_bn, oc_bn);
        NEOCPU_CHECK(best != nullptr) << "pair (" << ic_bn << "," << oc_bn
                                      << ") missing for " << g.node(id).attrs.conv.ToString();
        schedules[id] = best->schedule;
      }
      break;
    }
    case LayoutMode::kNCHWcLocal: {
      for (auto& [id, result] : locals) {
        schedules[id] = result.best().schedule;
      }
      break;
    }
    case LayoutMode::kNCHWcGlobal: {
      Timer search_timer;
      GlobalProblem problem = ExtractGlobalProblem(g, locals);
      GlobalSolution solution = SolveGlobal(problem, opts.max_dp_table_entries);
      stats.search_seconds = search_timer.Seconds();
      stats.used_global_search = true;
      stats.used_exact_dp = solution.exact;
      stats.predicted_cost_ms = solution.cost_ms;
      schedules = std::move(solution.assignment);
      break;
    }
    default:
      LOG(FATAL) << "unreachable";
  }

  const LayoutPlacement placement = opts.layout_mode == LayoutMode::kNCHWcPerOp
                                        ? LayoutPlacement::kPerOp
                                        : LayoutPlacement::kPropagate;
  g = AlterConvLayout(g, schedules, placement);
  stats.num_layout_transforms = g.CountNodes(OpType::kLayoutTransform);
  stats.compile_seconds = total_timer.Seconds();
  if (opts.verbose) {
    LOG(INFO) << "compiled " << g.name << " [" << LayoutModeName(opts.layout_mode) << "/"
              << opts.target.name << "]: " << stats.num_convs << " convs, "
              << stats.num_layout_transforms << " runtime layout transforms, tuning "
              << stats.tuning_seconds << "s, search " << stats.search_seconds << "s";
  }
  return CompiledModel(std::move(g), stats);
}

bool RebindBatch(const CompiledModel& model, std::int64_t batch, CompiledModel* out) {
  Graph g = model.graph();  // node headers copy; constant payloads share their buffers
  if (!RebindBatchDim(&g, batch)) {
    return false;
  }
  *out = CompiledModel(std::move(g), model.stats());
  return true;
}

}  // namespace neocpu
