#include "src/core/compiler.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/base/logging.h"
#include "src/base/rng.h"
#include "src/base/timer.h"
#include "src/core/memory_plan.h"
#include "src/graph/passes/passes.h"
#include "src/graph/shape_infer.h"
#include "src/kernels/conv_winograd.h"
#include "src/tuning/global_search.h"
#include "src/tuning/schedule_space.h"

namespace neocpu {

const char* LayoutModeName(LayoutMode mode) {
  switch (mode) {
    case LayoutMode::kNCHW:
      return "nchw";
    case LayoutMode::kNCHWcPerOp:
      return "nchwc-per-op";
    case LayoutMode::kNCHWcFixed:
      return "nchwc-fixed";
    case LayoutMode::kNCHWcLocal:
      return "nchwc-local";
    case LayoutMode::kNCHWcGlobal:
      return "nchwc-global";
  }
  return "?";
}

namespace {

// The "fixed x" of §3.2, restricted to blocks the local search actually enumerated:
// the largest candidate not exceeding the target's preferred block, falling back to the
// smallest candidate (covers channel counts like 28 or the 3-channel image input, whose
// factors skip the preferred block entirely).
std::int64_t PickFixedBlock(const LocalSearchResult& result, bool input_side,
                            std::int64_t prefer) {
  std::int64_t best_leq = 0;
  std::int64_t smallest = std::numeric_limits<std::int64_t>::max();
  for (const ScheduleCost& sc : result.ranked) {
    if (!sc.schedule.IsDirect()) {
      continue;  // algorithm candidates carry no blocking; the fixed-x modes are
                 // layout ablations and only pick among blocked schedules
    }
    const std::int64_t block = input_side ? sc.schedule.ic_bn : sc.schedule.oc_bn;
    smallest = std::min(smallest, block);
    if (block <= prefer) {
      best_leq = std::max(best_leq, block);
    }
  }
  return best_leq > 0 ? best_leq : smallest;
}

// True when `algo` can execute `node`'s convolution including its fused epilogue.
bool AlgoLegalFor(ConvAlgo algo, const Node& node) {
  if (algo == ConvAlgo::kWinograd) {
    return WinogradLegal(node.attrs.conv, node.attrs.epilogue);
  }
  return true;
}

// Schedule-level legality: algorithm legality plus the int8 window (quantized entries
// only appear in merged lists of quantize-legal convs, but re-check the epilogue).
bool ScheduleLegalFor(const ConvSchedule& s, const Node& node) {
  if (s.IsQuantized() && node.attrs.epilogue.residual_add) {
    return false;
  }
  return AlgoLegalFor(s.algo, node);
}

// Cheapest ranked schedule that is legal for `node` (the greedy per-conv optimum of
// LayoutMode::kNCHWcLocal); on merged fp32+s8 lists this IS the greedy fp32-vs-int8
// choice, boundary costs ignored — the pitfall §3.3.1 warns about, kept as the
// ablation.
const ConvSchedule& BestLegalSchedule(const LocalSearchResult& result, const Node& node) {
  for (const ScheduleCost& sc : result.ranked) {
    if (ScheduleLegalFor(sc.schedule, node)) {
      return sc.schedule;
    }
  }
  LOG(FATAL) << "no legal schedule for " << node.attrs.conv.ToString();
  return result.best().schedule;
}

// Leading dim of the graph's (first) input: the batch size its conv workloads carry.
std::int64_t GraphBatch(const Graph& g) {
  for (int id = 0; id < g.num_nodes(); ++id) {
    if (g.node(id).type == OpType::kInput && !g.node(id).out_dims.empty()) {
      return g.node(id).out_dims[0];
    }
  }
  return 0;
}

// Schedule selection + layout lowering for an already simplified+fused graph. Every
// per-conv decision is keyed by the conv's WorkloadKey (its params carry the graph's
// batch), memoized through opts.tuning_cache. `calibration` (null = no quantization)
// gates the int8 side: quantize-legal convs get the s8 space ranked into their
// candidate list and the selection decides fp32-vs-int8 per conv. Fills the
// tuning/search fields of *stats.
Graph LowerFusedGraph(const Graph& source, const CompileOptions& opts,
                      const CalibrationTable* calibration, CompileStats* stats) {
  if (opts.layout_mode == LayoutMode::kNCHW) {
    Graph g = BindNchwKernels(source, opts.nchw_kernel);
    stats->num_convs = g.CountNodes(OpType::kConv2d);
    return g;
  }

  TuningCache* cache = opts.tuning_cache.get();
  NEOCPU_CHECK(cache != nullptr);

  // int8 only plays under the searched modes: the fixed-block modes are fp32 paper
  // ablations.
  const bool quantizing = opts.quantize && calibration != nullptr &&
                          opts.target.int8_dot &&
                          (opts.layout_mode == LayoutMode::kNCHWcGlobal ||
                           opts.layout_mode == LayoutMode::kNCHWcLocal);

  // Local search per convolution workload, memoized through the shared cache. Hit/miss
  // attribution is counted per call (not via cache-counter deltas): concurrent compiles
  // and re-tunes share one cache, so global deltas would mix their traffic. Under
  // quantization, int8-legal convs additionally search the s8 space (its own cache key)
  // and the two ranked lists merge into one candidate list.
  Timer tuning_timer;
  LocalSearchMap locals;
  for (int id = 0; id < source.num_nodes(); ++id) {
    const Node& node = source.node(id);
    if (!node.IsConv()) {
      continue;
    }
    bool cache_hit = false;
    std::shared_ptr<const LocalSearchResult> result =
        LocalSearchConvShared(node.attrs.conv, opts.target, opts.cost_mode,
                              opts.quick_space, opts.engine, cache, &cache_hit);
    ++(cache_hit ? stats->tuning_cache_hits : stats->tuning_cache_misses);
    if (quantizing && QuantizeLegal(source, id, *calibration)) {
      // The u8 space exists only for quad-divisible channel blockings (VNNI packs 4
      // input channels per lane); pre-check so the search never CHECK-fails on an
      // empty candidate list. A forced dtype narrows which spaces join the merge —
      // forced u8 still falls back to s8 where no legal u8 blocking exists.
      const bool u8_possible =
          opts.force_quant_dtype != DType::kS8 &&
          !EnumerateS8Schedules(node.attrs.conv, opts.target, opts.quick_space,
                                DType::kU8)
               .empty();
      const bool s8_wanted = opts.force_quant_dtype != DType::kU8 || !u8_possible;
      LocalSearchResult merged = *result;
      auto merge_space = [&](DType dtype) {
        bool hit = false;
        std::shared_ptr<const LocalSearchResult> q = LocalSearchConvShared(
            node.attrs.conv, opts.target, opts.cost_mode, opts.quick_space, opts.engine,
            cache, &hit, dtype);
        ++(hit ? stats->tuning_cache_hits : stats->tuning_cache_misses);
        merged.ranked.insert(merged.ranked.end(), q->ranked.begin(), q->ranked.end());
      };
      if (s8_wanted) {
        merge_space(DType::kS8);
      }
      if (u8_possible) {
        merge_space(DType::kU8);
      }
      std::stable_sort(
          merged.ranked.begin(), merged.ranked.end(),
          [](const ScheduleCost& a, const ScheduleCost& b) { return a.ms < b.ms; });
      result = std::make_shared<const LocalSearchResult>(std::move(merged));
    }
    locals[id] = std::move(result);
  }

  // Dense (tuned packed-GEMM) schedule selection rides the same local-search +
  // cache machinery under the searched modes. Dense nodes carry no layout edges
  // (their inputs/outputs are flat), so in the global formulation each is an
  // isolated variable: its per-layer f32-vs-u8 choice decomposes out of the DP
  // objective exactly, and comparing best-f32 against best-u8 plus the Q/DQ
  // boundary cost IS the global optimum for that variable.
  std::map<int, GemmSchedule> dense_schedules;
  if (opts.layout_mode == LayoutMode::kNCHWcLocal ||
      opts.layout_mode == LayoutMode::kNCHWcGlobal) {
    for (int id = 0; id < source.num_nodes(); ++id) {
      const Node& node = source.node(id);
      if (node.type != OpType::kDense || node.inputs.size() < 2) {
        continue;
      }
      const Node& weight = source.node(node.inputs[1]);
      if (!weight.payload.defined() || weight.payload.dtype() != DType::kF32 ||
          weight.payload.dims().size() != 2) {
        continue;
      }
      const auto& d = source.node(node.inputs[0]).out_dims;
      if (d.size() != 2) {
        continue;
      }
      const DenseParams p{d[0], weight.payload.dim(0), weight.payload.dim(1)};
      bool hit = false;
      std::shared_ptr<const LocalSearchResult> f32 =
          LocalSearchDenseShared(p, opts.target, opts.cost_mode, opts.quick_space,
                                 opts.engine, cache, &hit);
      ++(hit ? stats->tuning_cache_hits : stats->tuning_cache_misses);
      const DenseScheduleCost* best_f32 = f32->BestDense(DType::kF32);
      if (best_f32 == nullptr) {
        continue;
      }
      GemmSchedule chosen = best_f32->schedule;
      if (quantizing && opts.quantize_dense &&
          opts.force_quant_dtype != DType::kS8 &&
          calibration->count(node.inputs[0]) > 0) {
        bool qhit = false;
        std::shared_ptr<const LocalSearchResult> u8 =
            LocalSearchDenseShared(p, opts.target, opts.cost_mode, opts.quick_space,
                                   opts.engine, cache, &qhit, DType::kU8);
        ++(qhit ? stats->tuning_cache_hits : stats->tuning_cache_misses);
        const DenseScheduleCost* best_u8 = u8->BestDense(DType::kU8);
        if (best_u8 != nullptr) {
          // Boundary cost: worst case both the input quantize and the output
          // dequantize materialize (chained integer denses amortize them away).
          const double boundary_ms =
              QdqMs((p.m * p.k + p.m * p.n) *
                    static_cast<std::int64_t>(sizeof(float)));
          if (opts.force_quantize || best_u8->ms + boundary_ms < best_f32->ms) {
            chosen = best_u8->schedule;
          }
        }
      }
      dense_schedules[id] = chosen;
      ++stats->num_dense;
      if (chosen.dtype == DType::kU8) {
        ++stats->num_quantized_dense;
      }
    }
  }
  stats->tuning_seconds = tuning_timer.Seconds();
  stats->num_convs = static_cast<int>(locals.size());

  std::map<int, ConvSchedule> schedules;
  switch (opts.layout_mode) {
    case LayoutMode::kNCHWcPerOp:
    case LayoutMode::kNCHWcFixed: {
      // One global split factor (§3.2): the target's vector width, degraded per conv to
      // the largest factor of its channel counts.
      const std::int64_t x = opts.target.PreferredBlock();
      for (auto& [id, result] : locals) {
        const std::int64_t ic_bn = PickFixedBlock(*result, /*input_side=*/true, x);
        const std::int64_t oc_bn = PickFixedBlock(*result, /*input_side=*/false, x);
        const ScheduleCost* best = result->BestForPair(ic_bn, oc_bn);
        NEOCPU_CHECK(best != nullptr)
            << "pair (" << ic_bn << "," << oc_bn << ") missing for "
            << source.node(id).attrs.conv.ToString();
        schedules[id] = best->schedule;
      }
      break;
    }
    case LayoutMode::kNCHWcLocal: {
      for (auto& [id, result] : locals) {
        schedules[id] = BestLegalSchedule(*result, source.node(id));
      }
      break;
    }
    case LayoutMode::kNCHWcGlobal: {
      Timer search_timer;
      GlobalProblem problem = ExtractGlobalProblem(source, locals);
      GlobalSolution solution = SolveGlobal(problem, opts.max_dp_table_entries);
      stats->search_seconds = search_timer.Seconds();
      stats->used_global_search = true;
      stats->used_exact_dp = solution.exact;
      stats->predicted_cost_ms = solution.cost_ms;
      schedules = std::move(solution.assignment);
      break;
    }
    default:
      LOG(FATAL) << "unreachable";
  }

  if (opts.force_algo) {
    // Override the searched choice wherever the forced algorithm is legal; illegal
    // convs keep what the search picked so the graph always compiles.
    for (auto& [id, sched] : schedules) {
      const Node& node = source.node(id);
      if (!AlgoLegalFor(opts.forced_algo, node)) {
        continue;
      }
      if (opts.forced_algo == ConvAlgo::kDirectNCHWc) {
        const ScheduleCost* best = locals.at(id)->BestForAlgo(ConvAlgo::kDirectNCHWc);
        NEOCPU_CHECK(best != nullptr);
        sched = best->schedule;
      } else {
        sched = AlgoSchedule(opts.forced_algo);
      }
    }
  }
  if (quantizing && opts.force_quantize) {
    // Accuracy/CI mode: every int8-legal conv takes its best s8 schedule regardless of
    // the cost comparison (applied last, so it also overrides force_algo).
    for (auto& [id, sched] : schedules) {
      const ScheduleCost* best = locals.at(id)->BestQuantized();
      if (best != nullptr) {
        sched = best->schedule;
      }
    }
  }

  if (quantizing) {
    for (const auto& [id, sched] : schedules) {
      if (sched.IsQuantized()) {
        ++stats->num_quantized_convs;
      }
    }
  }

  const LayoutPlacement placement = opts.layout_mode == LayoutMode::kNCHWcPerOp
                                        ? LayoutPlacement::kPerOp
                                        : LayoutPlacement::kPropagate;
  Graph lowered_source = source;
  if (quantizing &&
      (stats->num_quantized_convs > 0 || stats->num_quantized_dense > 0 ||
       (opts.quantize_dense && !dense_schedules.empty()))) {
    QuantizeGraphOptions qopts;
    qopts.quantize_dense = opts.quantize_dense;
    lowered_source =
        QuantizeGraph(source, *calibration, &schedules, qopts, &dense_schedules);
  }
  Graph g = AlterConvLayout(lowered_source, schedules, placement, &dense_schedules);
  stats->num_layout_transforms = g.CountNodes(OpType::kLayoutTransform);
  return g;
}

// Runs the fp32 source graph over the calibration inputs (or one deterministic
// synthetic batch) with a range observer attached — the "sample inputs recorded by a
// CalibrationObserver on the executor" side of post-training quantization. The
// clipping policies (percentile, entropy) replay the identical samples a second time
// to fill the observer's histograms before Finalize reduces them (the synthetic batch
// re-seeds its Rng, so both passes see the same data).
CalibrationTable CalibrateGraph(const Graph& source, const CompileOptions& opts) {
  CalibrationObserver observer;
  Executor executor(&source, opts.engine);
  executor.SetObserver(&observer);
  auto run_samples = [&]() {
    if (!opts.calibration_inputs.empty()) {
      // Each entry is one sample batch for the graph's (single) input; ranges across
      // batches merge in the observer.
      for (const Tensor& sample : opts.calibration_inputs) {
        executor.Run(std::vector<Tensor>{sample});
      }
    } else {
      Rng rng(0xC0DE);
      std::vector<Tensor> inputs;
      for (int id = 0; id < source.num_nodes(); ++id) {
        if (source.node(id).type == OpType::kInput) {
          inputs.push_back(
              Tensor::Random(source.node(id).out_dims, rng, -1.0f, 1.0f, Layout::NCHW()));
        }
      }
      executor.Run(inputs);
    }
  };
  run_samples();
  if (opts.calibration_policy != CalibrationPolicy::kMinMax) {
    observer.BeginHistogramPhase();
    run_samples();
  }
  return observer.Finalize(opts.calibration_policy);
}

}  // namespace

CompiledModel Compile(const Graph& model, const CompileOptions& options) {
  Timer total_timer;
  CompileOptions opts = options;
  if (opts.tuning_cache == nullptr) {
    opts.tuning_cache = std::make_shared<TuningCache>();
  }

  Graph source = FuseOps(SimplifyInference(model));
  CompileStats stats;
  stats.tuned_batch = GraphBatch(source);
  CalibrationTable calibration;
  if (opts.quantize) {
    calibration = CalibrateGraph(source, opts);
  }
  Graph g = LowerFusedGraph(source, opts, opts.quantize ? &calibration : nullptr, &stats);
  std::shared_ptr<const ExecutionPlan> plan;
  if (opts.plan_memory) {
    plan = std::make_shared<const ExecutionPlan>(PlanMemory(g));
  }
  stats.compile_seconds = total_timer.Seconds();
  CompiledModel compiled(std::move(g), stats, std::move(source),
                         static_cast<const CompileConfig&>(opts), opts.tuning_cache);
  compiled.AttachPlan(std::move(plan));
  compiled.SetCalibration(std::move(calibration));
  if (opts.verbose) {
    LOG(INFO) << "compiled " << compiled.graph().name << " ["
              << LayoutModeName(opts.layout_mode) << "/" << opts.target.name << "] batch "
              << stats.tuned_batch << ": " << stats.num_convs << " convs ("
              << stats.num_quantized_convs << " int8), "
              << stats.num_layout_transforms << " runtime layout transforms, tuning "
              << stats.tuning_seconds << "s (cache " << stats.tuning_cache_hits
              << " hits / " << stats.tuning_cache_misses << " misses), search "
              << stats.search_seconds << "s, arena "
              << compiled.stats().arena_bytes << "B (naive "
              << compiled.stats().naive_arena_bytes << "B)";
  }
  return compiled;
}

bool RebindBatch(const CompiledModel& model, std::int64_t batch, CompiledModel* out) {
  Graph g = model.graph();  // node headers copy; constant payloads share their buffers
  if (!RebindBatchDim(&g, batch)) {
    return false;
  }
  // Every batch variant needs its own plan: shapes changed, so offsets and the arena
  // footprint change with them. Re-planning is pure graph analysis (microseconds).
  const bool replan = model.plan() != nullptr;
  if (model.has_source()) {
    Graph source = model.source_graph();
    if (RebindBatchDim(&source, batch)) {
      *out = CompiledModel(std::move(g), model.stats(), std::move(source), model.config(),
                           model.tuning());
      out->SetCalibration(model.calibration());
      if (replan) {
        out->AttachPlan(std::make_shared<const ExecutionPlan>(PlanMemory(out->graph())));
      }
      return true;
    }
    // The executable graph rebinds but the source does not (should not happen — they
    // describe the same computation); degrade to a source-less, non-retunable model.
  }
  *out = CompiledModel(std::move(g), model.stats());
  if (replan) {
    out->AttachPlan(std::make_shared<const ExecutionPlan>(PlanMemory(out->graph())));
  }
  return true;
}

bool RetuneForBatch(const CompiledModel& model, std::int64_t batch, ThreadEngine* engine,
                    CompiledModel* out, const CompileConfig* config_override) {
  NEOCPU_CHECK(out != nullptr);
  if (!model.has_source() || batch < 1) {
    return false;
  }
  Graph source = model.source_graph();
  if (!RebindBatchDim(&source, batch)) {
    return false;
  }

  const CompileConfig& config =
      config_override != nullptr ? *config_override : model.config();
  Timer total_timer;
  CompileOptions opts;
  static_cast<CompileConfig&>(opts) = config;
  opts.tuning_cache =
      model.tuning() != nullptr ? model.tuning() : std::make_shared<TuningCache>();
  opts.engine = engine;

  CompileStats stats;
  stats.tuned_batch = batch;
  stats.retuned = true;
  // Re-tunes reuse the compile-time calibration: per-tensor activation ranges are a
  // property of the data distribution, not the batch size, and the source graph's node
  // ids (the table's keys) survive batch rebinding unchanged.
  const CalibrationTable& calibration = model.calibration();
  const bool quantize = config.quantize && !calibration.empty();
  Graph g = LowerFusedGraph(source, opts, quantize ? &calibration : nullptr, &stats);
  stats.compile_seconds = total_timer.Seconds();
  *out = CompiledModel(std::move(g), stats, std::move(source), config,
                       opts.tuning_cache);
  out->SetCalibration(calibration);
  if (config.plan_memory) {
    out->AttachPlan(std::make_shared<const ExecutionPlan>(PlanMemory(out->graph())));
  }
  return true;
}

}  // namespace neocpu
