#include "src/core/compiler.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/base/logging.h"
#include "src/base/timer.h"
#include "src/core/memory_plan.h"
#include "src/graph/passes/passes.h"
#include "src/graph/shape_infer.h"
#include "src/kernels/conv_winograd.h"
#include "src/tuning/global_search.h"
#include "src/tuning/schedule_space.h"

namespace neocpu {

const char* LayoutModeName(LayoutMode mode) {
  switch (mode) {
    case LayoutMode::kNCHW:
      return "nchw";
    case LayoutMode::kNCHWcPerOp:
      return "nchwc-per-op";
    case LayoutMode::kNCHWcFixed:
      return "nchwc-fixed";
    case LayoutMode::kNCHWcLocal:
      return "nchwc-local";
    case LayoutMode::kNCHWcGlobal:
      return "nchwc-global";
  }
  return "?";
}

namespace {

// The "fixed x" of §3.2, restricted to blocks the local search actually enumerated:
// the largest candidate not exceeding the target's preferred block, falling back to the
// smallest candidate (covers channel counts like 28 or the 3-channel image input, whose
// factors skip the preferred block entirely).
std::int64_t PickFixedBlock(const LocalSearchResult& result, bool input_side,
                            std::int64_t prefer) {
  std::int64_t best_leq = 0;
  std::int64_t smallest = std::numeric_limits<std::int64_t>::max();
  for (const ScheduleCost& sc : result.ranked) {
    if (!sc.schedule.IsDirect()) {
      continue;  // algorithm candidates carry no blocking; the fixed-x modes are
                 // layout ablations and only pick among blocked schedules
    }
    const std::int64_t block = input_side ? sc.schedule.ic_bn : sc.schedule.oc_bn;
    smallest = std::min(smallest, block);
    if (block <= prefer) {
      best_leq = std::max(best_leq, block);
    }
  }
  return best_leq > 0 ? best_leq : smallest;
}

// True when `algo` can execute `node`'s convolution including its fused epilogue.
bool AlgoLegalFor(ConvAlgo algo, const Node& node) {
  if (algo == ConvAlgo::kWinograd) {
    return WinogradLegal(node.attrs.conv, node.attrs.epilogue);
  }
  return true;
}

// Cheapest ranked schedule whose algorithm is legal for `node` (the greedy per-conv
// optimum of LayoutMode::kNCHWcLocal).
const ConvSchedule& BestLegalSchedule(const LocalSearchResult& result, const Node& node) {
  for (const ScheduleCost& sc : result.ranked) {
    if (AlgoLegalFor(sc.schedule.algo, node)) {
      return sc.schedule;
    }
  }
  LOG(FATAL) << "no legal schedule for " << node.attrs.conv.ToString();
  return result.best().schedule;
}

// Leading dim of the graph's (first) input: the batch size its conv workloads carry.
std::int64_t GraphBatch(const Graph& g) {
  for (int id = 0; id < g.num_nodes(); ++id) {
    if (g.node(id).type == OpType::kInput && !g.node(id).out_dims.empty()) {
      return g.node(id).out_dims[0];
    }
  }
  return 0;
}

// Schedule selection + layout lowering for an already simplified+fused graph. Every
// per-conv decision is keyed by the conv's WorkloadKey (its params carry the graph's
// batch), memoized through opts.tuning_cache. Fills the tuning/search fields of *stats.
Graph LowerFusedGraph(const Graph& source, const CompileOptions& opts,
                      CompileStats* stats) {
  if (opts.layout_mode == LayoutMode::kNCHW) {
    Graph g = BindNchwKernels(source, opts.nchw_kernel);
    stats->num_convs = g.CountNodes(OpType::kConv2d);
    return g;
  }

  TuningCache* cache = opts.tuning_cache.get();
  NEOCPU_CHECK(cache != nullptr);

  // Local search per convolution workload, memoized through the shared cache. Hit/miss
  // attribution is counted per call (not via cache-counter deltas): concurrent compiles
  // and re-tunes share one cache, so global deltas would mix their traffic.
  Timer tuning_timer;
  LocalSearchMap locals;
  for (int id = 0; id < source.num_nodes(); ++id) {
    const Node& node = source.node(id);
    if (node.IsConv()) {
      bool cache_hit = false;
      locals[id] = LocalSearchConvShared(node.attrs.conv, opts.target, opts.cost_mode,
                                         opts.quick_space, opts.engine, cache, &cache_hit);
      ++(cache_hit ? stats->tuning_cache_hits : stats->tuning_cache_misses);
    }
  }
  stats->tuning_seconds = tuning_timer.Seconds();
  stats->num_convs = static_cast<int>(locals.size());

  std::map<int, ConvSchedule> schedules;
  switch (opts.layout_mode) {
    case LayoutMode::kNCHWcPerOp:
    case LayoutMode::kNCHWcFixed: {
      // One global split factor (§3.2): the target's vector width, degraded per conv to
      // the largest factor of its channel counts.
      const std::int64_t x = opts.target.PreferredBlock();
      for (auto& [id, result] : locals) {
        const std::int64_t ic_bn = PickFixedBlock(*result, /*input_side=*/true, x);
        const std::int64_t oc_bn = PickFixedBlock(*result, /*input_side=*/false, x);
        const ScheduleCost* best = result->BestForPair(ic_bn, oc_bn);
        NEOCPU_CHECK(best != nullptr)
            << "pair (" << ic_bn << "," << oc_bn << ") missing for "
            << source.node(id).attrs.conv.ToString();
        schedules[id] = best->schedule;
      }
      break;
    }
    case LayoutMode::kNCHWcLocal: {
      for (auto& [id, result] : locals) {
        schedules[id] = BestLegalSchedule(*result, source.node(id));
      }
      break;
    }
    case LayoutMode::kNCHWcGlobal: {
      Timer search_timer;
      GlobalProblem problem = ExtractGlobalProblem(source, locals);
      GlobalSolution solution = SolveGlobal(problem, opts.max_dp_table_entries);
      stats->search_seconds = search_timer.Seconds();
      stats->used_global_search = true;
      stats->used_exact_dp = solution.exact;
      stats->predicted_cost_ms = solution.cost_ms;
      schedules = std::move(solution.assignment);
      break;
    }
    default:
      LOG(FATAL) << "unreachable";
  }

  if (opts.force_algo) {
    // Override the searched choice wherever the forced algorithm is legal; illegal
    // convs keep what the search picked so the graph always compiles.
    for (auto& [id, sched] : schedules) {
      const Node& node = source.node(id);
      if (!AlgoLegalFor(opts.forced_algo, node)) {
        continue;
      }
      if (opts.forced_algo == ConvAlgo::kDirectNCHWc) {
        const ScheduleCost* best = locals.at(id)->BestForAlgo(ConvAlgo::kDirectNCHWc);
        NEOCPU_CHECK(best != nullptr);
        sched = best->schedule;
      } else {
        sched = AlgoSchedule(opts.forced_algo);
      }
    }
  }

  const LayoutPlacement placement = opts.layout_mode == LayoutMode::kNCHWcPerOp
                                        ? LayoutPlacement::kPerOp
                                        : LayoutPlacement::kPropagate;
  Graph g = AlterConvLayout(source, schedules, placement);
  stats->num_layout_transforms = g.CountNodes(OpType::kLayoutTransform);
  return g;
}

}  // namespace

CompiledModel Compile(const Graph& model, const CompileOptions& options) {
  Timer total_timer;
  CompileOptions opts = options;
  if (opts.tuning_cache == nullptr) {
    opts.tuning_cache = std::make_shared<TuningCache>();
  }

  Graph source = FuseOps(SimplifyInference(model));
  CompileStats stats;
  stats.tuned_batch = GraphBatch(source);
  Graph g = LowerFusedGraph(source, opts, &stats);
  std::shared_ptr<const ExecutionPlan> plan;
  if (opts.plan_memory) {
    plan = std::make_shared<const ExecutionPlan>(PlanMemory(g));
  }
  stats.compile_seconds = total_timer.Seconds();
  CompiledModel compiled(std::move(g), stats, std::move(source),
                         static_cast<const CompileConfig&>(opts), opts.tuning_cache);
  compiled.AttachPlan(std::move(plan));
  if (opts.verbose) {
    LOG(INFO) << "compiled " << compiled.graph().name << " ["
              << LayoutModeName(opts.layout_mode) << "/" << opts.target.name << "] batch "
              << stats.tuned_batch << ": " << stats.num_convs << " convs, "
              << stats.num_layout_transforms << " runtime layout transforms, tuning "
              << stats.tuning_seconds << "s (cache " << stats.tuning_cache_hits
              << " hits / " << stats.tuning_cache_misses << " misses), search "
              << stats.search_seconds << "s, arena "
              << compiled.stats().arena_bytes << "B (naive "
              << compiled.stats().naive_arena_bytes << "B)";
  }
  return compiled;
}

bool RebindBatch(const CompiledModel& model, std::int64_t batch, CompiledModel* out) {
  Graph g = model.graph();  // node headers copy; constant payloads share their buffers
  if (!RebindBatchDim(&g, batch)) {
    return false;
  }
  // Every batch variant needs its own plan: shapes changed, so offsets and the arena
  // footprint change with them. Re-planning is pure graph analysis (microseconds).
  const bool replan = model.plan() != nullptr;
  if (model.has_source()) {
    Graph source = model.source_graph();
    if (RebindBatchDim(&source, batch)) {
      *out = CompiledModel(std::move(g), model.stats(), std::move(source), model.config(),
                           model.tuning());
      if (replan) {
        out->AttachPlan(std::make_shared<const ExecutionPlan>(PlanMemory(out->graph())));
      }
      return true;
    }
    // The executable graph rebinds but the source does not (should not happen — they
    // describe the same computation); degrade to a source-less, non-retunable model.
  }
  *out = CompiledModel(std::move(g), model.stats());
  if (replan) {
    out->AttachPlan(std::make_shared<const ExecutionPlan>(PlanMemory(out->graph())));
  }
  return true;
}

bool RetuneForBatch(const CompiledModel& model, std::int64_t batch, ThreadEngine* engine,
                    CompiledModel* out) {
  NEOCPU_CHECK(out != nullptr);
  if (!model.has_source() || batch < 1) {
    return false;
  }
  Graph source = model.source_graph();
  if (!RebindBatchDim(&source, batch)) {
    return false;
  }

  Timer total_timer;
  CompileOptions opts;
  static_cast<CompileConfig&>(opts) = model.config();
  opts.tuning_cache =
      model.tuning() != nullptr ? model.tuning() : std::make_shared<TuningCache>();
  opts.engine = engine;

  CompileStats stats;
  stats.tuned_batch = batch;
  stats.retuned = true;
  Graph g = LowerFusedGraph(source, opts, &stats);
  stats.compile_seconds = total_timer.Seconds();
  *out = CompiledModel(std::move(g), stats, std::move(source), model.config(),
                       opts.tuning_cache);
  if (model.config().plan_memory) {
    out->AttachPlan(std::make_shared<const ExecutionPlan>(PlanMemory(out->graph())));
  }
  return true;
}

}  // namespace neocpu
