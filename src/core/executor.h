// Graph executor: runs a graph's nodes in topological order on a ThreadEngine.
//
// Memory management: a node's output tensor is released as soon as its last consumer has
// executed (liveness-based buffer release), which bounds peak activation memory — the
// property that lets VGG-class models (hundreds of MB of weights) run on small hosts.
#ifndef NEOCPU_SRC_CORE_EXECUTOR_H_
#define NEOCPU_SRC_CORE_EXECUTOR_H_

#include <vector>

#include "src/graph/graph.h"
#include "src/runtime/thread_engine.h"
#include "src/tensor/tensor.h"

namespace neocpu {

class Executor {
 public:
  // `graph` and `engine` are borrowed and must outlive the executor. A null engine runs
  // serially.
  explicit Executor(const Graph* graph, ThreadEngine* engine = nullptr);

  // `inputs` are bound to the graph's kInput nodes in node-id order. Returns the tensors
  // of the graph's output nodes. Run is stateless and const: one executor instance can
  // serve concurrent Run calls from many threads (the serving executor pool relies on
  // this to reuse a single executor per compiled model across the whole pool).
  std::vector<Tensor> Run(const std::vector<Tensor>& inputs) const;

  // As above, but runs on `engine` instead of the engine bound at construction. A null
  // engine runs serially.
  std::vector<Tensor> Run(const std::vector<Tensor>& inputs, ThreadEngine* engine) const;

  // Convenience for single-input single-output graphs.
  Tensor Run(const Tensor& input) const;
  Tensor Run(const Tensor& input, ThreadEngine* engine) const;

 private:
  const Graph* graph_;
  ThreadEngine* engine_;
  std::vector<int> input_nodes_;
  std::vector<int> use_counts_;  // consumer count + output multiplicity per node
};

}  // namespace neocpu

#endif  // NEOCPU_SRC_CORE_EXECUTOR_H_
