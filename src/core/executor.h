// Graph executor: runs a graph's nodes in topological order on a ThreadEngine.
//
// Memory management has two modes:
//   * Planned (an ExecutionPlan from core/memory_plan is attached): every intermediate
//     tensor and kernel workspace is a view into one pre-faulted arena at the offsets
//     the compile-time planner chose; steady-state Run performs zero heap allocations
//     for intermediates/workspaces (graph outputs still own their storage — they
//     escape the call). The arena comes from a caller-supplied warm Arena (the serving
//     pool passes one per executor-pool partition so pages stay local to the cores
//     that touch them) or, by default, from the process-wide ArenaPool.
//   * Allocating (no plan): a node's output tensor is freshly allocated and released as
//     soon as its last consumer has executed (liveness-based buffer release), which
//     bounds peak activation memory — the property that lets VGG-class models run on
//     small hosts. This remains the reference path and the fallback.
#ifndef NEOCPU_SRC_CORE_EXECUTOR_H_
#define NEOCPU_SRC_CORE_EXECUTOR_H_

#include <atomic>
#include <memory>
#include <vector>

#include "src/core/memory_plan.h"
#include "src/graph/graph.h"
#include "src/graph/passes/passes.h"
#include "src/runtime/arena_pool.h"
#include "src/runtime/thread_engine.h"
#include "src/tensor/tensor.h"

namespace neocpu {

class NodeProfiler;
class TraceRecorder;

// Records per-node output ranges while a graph executes — the calibration side of
// post-training quantization: the compiler runs the fp32 source graph over sample
// inputs with an observer attached, and QuantizeGraph turns the resulting ranges into
// s8/u8 scales. Min/max calibration needs a single pass; the clipping policies
// (percentile, entropy) need a second pass over the SAME samples that bins |x| into a
// per-node histogram whose support [0, absmax] comes from the first pass' ranges —
// call BeginHistogramPhase() between the passes and Finalize(policy) at the end. Not
// thread-safe; attach to a dedicated executor and run calibration batches
// sequentially.
class CalibrationObserver {
 public:
  static constexpr int kHistogramBins = 512;

  // Phase 1: folds `value`'s min/max into the running range of node `id`. Phase 2
  // (after BeginHistogramPhase): bins |value| into node `id`'s histogram instead.
  // fp32 tensors only; non-f32 values are ignored.
  void Observe(int id, const Tensor& value);

  void BeginHistogramPhase() { histogram_phase_ = true; }

  // Reduces the observations under `policy` and returns (moves out) the table:
  //   * kMinMax      — the phase-1 ranges verbatim;
  //   * kPercentile  — clips each range to the threshold retaining 99.9% of the
  //                    observed |x| mass (outlier spikes stop dictating the scale);
  //   * kEntropy     — scans clip candidates and keeps the one whose 256-level
  //                    quantization of the clipped distribution loses the least
  //                    information (smallest KL divergence), TVM-style.
  // Nodes without a histogram (policy kMinMax, or all-zero activations) keep their
  // min/max range.
  CalibrationTable Finalize(CalibrationPolicy policy);

  const CalibrationTable& table() const { return table_; }
  CalibrationTable TakeTable() { return std::move(table_); }

 private:
  CalibrationTable table_;
  bool histogram_phase_ = false;
  std::map<int, std::vector<std::uint64_t>> hist_;  // |x| histogram over [0, absmax]
};

class Executor {
 public:
  // `graph` and `engine` are borrowed and must outlive the executor. A null engine runs
  // serially. `plan` (shared, may be null) must have been computed for exactly `graph`;
  // a null plan or one with no arena placements selects the allocating path.
  explicit Executor(const Graph* graph, ThreadEngine* engine = nullptr,
                    std::shared_ptr<const ExecutionPlan> plan = nullptr);

  // `inputs` are bound to the graph's kInput nodes in node-id order. Returns the tensors
  // of the graph's output nodes. Run is stateless and const: one executor instance can
  // serve concurrent Run calls from many threads (the serving executor pool relies on
  // this to reuse a single executor per compiled model across the whole pool); each
  // planned Run leases its own arena.
  std::vector<Tensor> Run(const std::vector<Tensor>& inputs) const;

  // As above, but runs on `engine` instead of the engine bound at construction. A null
  // engine runs serially. A non-null `arena` backs the planned execution instead of the
  // global pool (it is grown to the plan's footprint and must not be used by another
  // Run concurrently).
  std::vector<Tensor> Run(const std::vector<Tensor>& inputs, ThreadEngine* engine) const;
  std::vector<Tensor> Run(const std::vector<Tensor>& inputs, ThreadEngine* engine,
                          Arena* arena) const;

  // Convenience for single-input single-output graphs.
  Tensor Run(const Tensor& input) const;
  Tensor Run(const Tensor& input, ThreadEngine* engine) const;
  Tensor Run(const Tensor& input, ThreadEngine* engine, Arena* arena) const;

  // The attached plan; null when executing on the allocating path.
  const ExecutionPlan* plan() const { return planned_ ? plan_.get() : nullptr; }

  // Attaches a calibration observer: every subsequent Run reports each input and
  // materialized node output to it. Calibration runs are offline (compile time), so
  // the observer is not synchronized — do not share an observed executor across
  // threads.
  void SetObserver(CalibrationObserver* observer) { observer_ = observer; }

  // Observability hooks (src/obs). Both are atomics so they can be attached to an
  // executor that concurrent Run calls are already flowing through (the serving
  // registry enables profiling on live variants); the caller keeps ownership and must
  // outlive the executor. Detached (the default) the hot path pays one relaxed load
  // per Run and no clock reads.
  //   * profiler: every sample_rate-th Run is timed per node (obs/node_profiler).
  //     The profiler must have RegisterGraph()-ed this executor's graph.
  //   * tracer: every Run emits one chrome-trace span per node (obs/trace) — heavier;
  //     meant for bounded capture windows, not steady state.
  void SetProfiler(NodeProfiler* profiler) {
    profiler_.store(profiler, std::memory_order_release);
  }
  void SetTracer(TraceRecorder* tracer) {
    tracer_.store(tracer, std::memory_order_release);
  }
  bool profiling_enabled() const {
    return profiler_.load(std::memory_order_acquire) != nullptr;
  }

 private:
  const Graph* graph_;
  ThreadEngine* engine_;
  std::shared_ptr<const ExecutionPlan> plan_;
  bool planned_ = false;  // plan_ is non-null AND places at least one buffer
  CalibrationObserver* observer_ = nullptr;
  std::atomic<NodeProfiler*> profiler_{nullptr};
  std::atomic<TraceRecorder*> tracer_{nullptr};
  std::vector<int> input_nodes_;
  std::vector<int> use_counts_;  // consumer count + output multiplicity per node
};

}  // namespace neocpu

#endif  // NEOCPU_SRC_CORE_EXECUTOR_H_
