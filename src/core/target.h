// Target architecture profiles.
//
// The paper evaluates on three CPUs (18-core Intel Skylake AVX-512, 24-core AMD EPYC
// AVX2, 16-core ARM Cortex-A72 NEON). This repository runs on a single host, so a
// Target captures the *schedule-space* properties of each architecture — fp32 vector
// lanes, SIMD register count, core count, cache sizes — and the search is constrained
// to schedules that ISA could execute. See DESIGN.md §1 for why this substitution
// preserves the experiments' shape.
#ifndef NEOCPU_SRC_CORE_TARGET_H_
#define NEOCPU_SRC_CORE_TARGET_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace neocpu {

struct Target {
  std::string name = "host";
  int vector_lanes = 16;          // fp32 lanes per SIMD vector
  int num_vector_registers = 32;  // architectural SIMD registers
  int num_cores = 1;
  double freq_ghz = 2.1;
  int fma_per_cycle = 2;  // vector FMA issue width
  std::size_t l1d_bytes = 32 * 1024;
  std::size_t l2_bytes = 1024 * 1024;
  std::size_t l3_bytes = 24ull * 1024 * 1024;

  // Whether the schedule space admits s8 (quantized) convolution schedules on this
  // ISA profile. All built-in profiles support it (the s8 kernel is portable); tests
  // flip it off to verify the gating.
  bool int8_dot = true;

  // Whether this profile has a fused u8·s8 dot-product instruction (AVX-512 VNNI
  // vpdpbusd). The u8 cost model credits the fused MAC chain only when this is set;
  // without it the u8 path pays the overflow-safe s32 accumulation (the IntelCaffe
  // s16-overflow workaround) and rarely beats s8. Host() detects it via cpuid; the
  // CascadeLakeVnni profile pins it for tests.
  bool vnni_dot = false;

  // Natural channel block: one vector register of fp32 lanes.
  std::int64_t PreferredBlock() const { return vector_lanes; }
  // Largest channel block the schedule space admits for this ISA.
  std::int64_t MaxBlock() const { return 2ll * vector_lanes; }
  // s8 elements per vector register: 4x the fp32 lane count. The s8 kernel's MAC
  // density scales with how much of a full s8 vector the oc block fills, so the s8
  // schedule space prefers (and admits up to) these wider blocks.
  std::int64_t PreferredBlockS8() const {
    const std::int64_t b = 4ll * vector_lanes;
    return b < kMaxS8Block ? b : kMaxS8Block;
  }
  std::int64_t MaxBlockS8() const { return PreferredBlockS8(); }

  static constexpr std::int64_t kMaxS8Block = 64;  // == kMaxChannelBlock

  // The host this binary was compiled for.
  static Target Host();
  // The paper's three evaluation platforms (§4).
  static Target SkylakeAvx512();
  static Target EpycAvx2();
  static Target ArmA72Neon();
  // Skylake's server successor with AVX-512 VNNI (the IntelCaffe evaluation class).
  static Target CascadeLakeVnni();
  // "host", "avx512", "avx2", "neon", "vnni".
  static Target ByName(const std::string& name);
};

}  // namespace neocpu

#endif  // NEOCPU_SRC_CORE_TARGET_H_
