// The NeoCPU compiler: turns a model graph into an optimized, executable module.
//
// Pipeline: SimplifyInference → FuseOps → schedule selection (per LayoutMode) →
// AlterConvLayout (+ compile-time weight pre-transformation) → executable graph.
//
// LayoutMode is the ablation axis of the paper's Table 3:
//   kNCHW          — row 1 "Baseline": default layout, vectorized direct (or im2col)
//                    kernels, fusion and inference simplification still applied.
//   kNCHWcPerOp    — row 2 "Layout Opt.": every conv uses the NCHW[x]c template but
//                    transforms its input/output from/to NCHW (what a framework
//                    delegating to a fixed kernel library does).
//   kNCHWcFixed    — row 3 "Transform Elim.": one global split factor; the blocked
//                    layout flows through the graph; transforms only at the boundaries.
//   kNCHWcGlobal   — row 4 "Global Search": per-conv schemes chosen by the DP/PBQP
//                    global search over local-search candidates (§3.3).
//   kNCHWcLocal    — extra ablation: greedy per-conv local optimum, ignoring transform
//                    costs (the pitfall §3.3.1 warns about).
//
// Every per-conv decision is keyed by WorkloadKey — the conv shape *including the batch
// size* plus target/cost/space mode — and memoized in a shared TuningCache, so schedules
// tuned for one batch size never masquerade as schedules for another. A CompiledModel
// carries its fused pre-layout source graph, its compile configuration and its tuning
// cache, which is what lets RetuneForBatch re-run schedule selection for a different
// batch size at runtime (the serving tier's background per-batch re-tuning).
#ifndef NEOCPU_SRC_CORE_COMPILER_H_
#define NEOCPU_SRC_CORE_COMPILER_H_

#include <memory>
#include <string>

#include "src/base/logging.h"
#include "src/core/executor.h"
#include "src/core/memory_plan.h"
#include "src/core/target.h"
#include "src/graph/graph.h"
#include "src/obs/node_profiler.h"
#include "src/tuning/tuning_cache.h"

namespace neocpu {

enum class LayoutMode { kNCHW, kNCHWcPerOp, kNCHWcFixed, kNCHWcLocal, kNCHWcGlobal };

const char* LayoutModeName(LayoutMode mode);

// The schedule-selection configuration a compiled model was produced under. Persisted
// with the module (core/serialization) so a warm-started model can re-tune new batch
// sizes under the exact same policy it was originally compiled with.
struct CompileConfig {
  LayoutMode layout_mode = LayoutMode::kNCHWcGlobal;
  // Convolution implementation for kNCHW mode (baselines).
  ConvKernelKind nchw_kernel = ConvKernelKind::kDirectNCHW;
  Target target = Target::Host();
  CostMode cost_mode = CostMode::kAnalytic;
  bool quick_space = true;  // prune channel-factor candidates (see schedule_space.h)
  std::size_t max_dp_table_entries = 1 << 22;
  // Static memory planning (core/memory_plan): place intermediates and workspaces in
  // one reusable arena so steady-state Run allocates nothing. Off = the classic
  // allocate-and-release executor path.
  bool plan_memory = true;
  // Forced convolution algorithm (ablation / testing): under the NCHWc layout modes,
  // every conv that can legally execute `forced_algo` uses it instead of the searched
  // choice; convs where it is illegal (Winograd on non-3x3-s1 shapes or fused residual
  // adds) keep their searched schedule. kNCHW mode keeps `nchw_kernel`.
  bool force_algo = false;
  ConvAlgo forced_algo = ConvAlgo::kDirectNCHWc;
  // Post-training int8 quantization. With `quantize`, compilation calibrates the fused
  // source graph on sample inputs (CompileOptions::calibration_inputs, or a
  // deterministic synthetic batch), ranks the s8 schedule space next to fp32 in every
  // local search, and lets the global/local selection choose fp32-vs-int8 per conv
  // under quantize/dequantize boundary costs. Only the kNCHWcGlobal and kNCHWcLocal
  // modes quantize (the fixed-block modes are fp32 paper ablations). `force_quantize`
  // overrides the cost comparison: every int8-legal conv takes its best s8 schedule
  // (accuracy testing, int8 CI zoo). Serving re-tunes inherit both flags through the
  // persisted config, so per-batch re-tunes re-select quantized schedules.
  bool quantize = false;
  bool force_quantize = false;
  // How activation ranges observed during calibration become quantization ranges:
  // straight min/max, a percentile clip (drops the extreme 0.1% tail mass), or an
  // entropy (KL) scan that picks the clip threshold losing the least information.
  CalibrationPolicy calibration_policy = CalibrationPolicy::kMinMax;
  // Also quantize dense (fully-connected) layers: dense nodes whose u8 packed-GEMM
  // search beats their f32 one (plus the Q/DQ boundary cost) take the u8*s8 kernel
  // with requantization; dense nodes without a tuned schedule fall back to the legacy
  // s8 GEMM epilogue. Off by default: the classifier head is small and
  // accuracy-sensitive.
  bool quantize_dense = false;
  // Pins the activation dtype of quantized convs. kF32 (the default) lets the search
  // rank s8 and u8 spaces side by side; kS8 searches only the s8 space; kU8 prefers
  // u8-with-zero-point wherever a legal quad-divisible blocking exists (falling back
  // to s8 for channel counts with none, e.g. the 3-channel image stem).
  DType force_quant_dtype = DType::kF32;
};

struct CompileOptions : CompileConfig {
  // Single source of schedule truth, shared across models, batch sizes and the serving
  // tier's background re-tunes. Compile creates a private cache when none is given.
  std::shared_ptr<TuningCache> tuning_cache;
  ThreadEngine* engine = nullptr;  // used for measured tuning during compilation
  bool verbose = false;
  // Sample inputs for quantization calibration (ignored unless `quantize`): each is run
  // through the fp32 source graph with a range observer. Empty = one deterministic
  // synthetic batch per graph input.
  std::vector<Tensor> calibration_inputs;
};

struct CompileStats {
  double compile_seconds = 0.0;
  double tuning_seconds = 0.0;   // local search
  double search_seconds = 0.0;   // global DP / PBQP
  bool used_global_search = false;
  bool used_exact_dp = false;    // false + used_global_search => PBQP approximation
  int num_convs = 0;
  int num_layout_transforms = 0;  // runtime transform nodes left in the final graph
  int num_quantized_convs = 0;    // convs the selection assigned an s8 schedule
  int num_dense = 0;              // dense nodes assigned a tuned GEMM schedule
  int num_quantized_dense = 0;    // of those, how many chose the u8 kernel
  double predicted_cost_ms = 0.0;  // global-search objective value (model units)

  // Per-batch tuning record: the batch size the chosen schedules were actually searched
  // at. A RebindBatch derivative keeps the original tuned_batch (its schedules still
  // come from the old batch); only Compile/RetuneForBatch set it to the executing batch.
  std::int64_t tuned_batch = 0;
  bool retuned = false;  // produced by RetuneForBatch rather than an initial Compile
  // TuningCache traffic attributable to this compilation's local searches.
  std::uint64_t tuning_cache_hits = 0;
  std::uint64_t tuning_cache_misses = 0;

  // Static memory planning (core/memory_plan). arena_bytes is the planned peak arena
  // footprint; naive_arena_bytes is what the allocating executor would malloc per Run
  // for the same buffers (sum of intermediates + workspaces, no reuse). arena_bytes <=
  // naive_arena_bytes always; the gap is the planner's buffer-reuse win.
  bool memory_planned = false;
  std::size_t arena_bytes = 0;
  std::size_t naive_arena_bytes = 0;
};

class CompiledModel {
 public:
  CompiledModel() = default;
  // Executable graph only — no source/config/cache, so the model cannot be re-tuned
  // (legacy modules; tests that hand-build graphs).
  CompiledModel(Graph graph, CompileStats stats)
      : graph_(std::move(graph)), stats_(stats) {}
  // Full form produced by Compile/RetuneForBatch/LoadModule: `source` is the fused
  // pre-layout graph (original NCHW weights; payload buffers shared, not copied).
  CompiledModel(Graph graph, CompileStats stats, Graph source, CompileConfig config,
                std::shared_ptr<TuningCache> tuning)
      : graph_(std::move(graph)),
        stats_(stats),
        source_(std::move(source)),
        has_source_(true),
        config_(std::move(config)),
        tuning_(std::move(tuning)) {}

  // Runs inference. `engine` is borrowed; null runs serially.
  Tensor Run(const Tensor& input, ThreadEngine* engine = nullptr) const {
    Executor exec(&graph_, engine, plan_);
    exec.SetProfiler(profiler_.get());
    return exec.Run(input);
  }
  std::vector<Tensor> RunAll(const std::vector<Tensor>& inputs,
                             ThreadEngine* engine = nullptr) const {
    Executor exec(&graph_, engine, plan_);
    exec.SetProfiler(profiler_.get());
    return exec.Run(inputs);
  }

  // Per-node profiling for the convenience Run paths above (serving builds its own
  // per-variant profilers against long-lived executors instead). Every sample_rate-th
  // Run is timed node by node; Snapshot() aggregates. The profiler is shared, so
  // RebindBatch-style copies of the model keep feeding the same aggregate.
  void EnableProfiling(std::uint32_t sample_rate = 1) {
    auto profiler = std::make_shared<NodeProfiler>(sample_rate);
    profiler->RegisterGraph(graph_);
    profiler_ = std::move(profiler);
  }
  void DisableProfiling() { profiler_.reset(); }
  NodeProfiler* profiler() const { return profiler_.get(); }
  // Empty snapshot when profiling was never enabled.
  NodeProfileSnapshot ProfileSnapshot() const {
    return profiler_ != nullptr ? profiler_->Snapshot() : NodeProfileSnapshot{};
  }

  const Graph& graph() const { return graph_; }
  const CompileStats& stats() const { return stats_; }

  // The fused pre-layout graph schedule re-selection starts from. Valid only when
  // has_source(); models loaded from legacy artifacts have none.
  bool has_source() const { return has_source_; }
  const Graph& source_graph() const { return source_; }
  const CompileConfig& config() const { return config_; }
  // Null only for source-less models.
  const std::shared_ptr<TuningCache>& tuning() const { return tuning_; }

  // Static memory plan for this model's executable graph (one per batch variant; see
  // core/memory_plan). Null when compiled with plan_memory=false or for hand-built
  // legacy models. Attach recomputes stats' footprint fields.
  const std::shared_ptr<const ExecutionPlan>& plan() const { return plan_; }
  void AttachPlan(std::shared_ptr<const ExecutionPlan> plan) {
    plan_ = std::move(plan);
    stats_.memory_planned = plan_ != nullptr && plan_->UsesArena();
    stats_.arena_bytes = plan_ != nullptr ? plan_->arena_bytes : 0;
    stats_.naive_arena_bytes = plan_ != nullptr ? plan_->naive_bytes : 0;
  }

  // Re-points the model at a different schedule cache (the serving registry's shared
  // per-registry cache). Only meaningful for models that carry tuning state.
  void ReplaceTuningCache(std::shared_ptr<TuningCache> cache) {
    NEOCPU_CHECK(has_source_) << "source-less models carry no tuning state";
    tuning_ = std::move(cache);
  }

  // Calibration ranges recorded at compile time, keyed by source-graph node id. Carried
  // (and serialized, module format v5) so RetuneForBatch can re-run the fp32-vs-int8
  // selection for a new batch size without re-observing activations; empty for models
  // compiled without quantization.
  const CalibrationTable& calibration() const { return calibration_; }
  void SetCalibration(CalibrationTable table) { calibration_ = std::move(table); }

 private:
  Graph graph_;
  CompileStats stats_;
  Graph source_;
  bool has_source_ = false;
  CompileConfig config_;
  std::shared_ptr<TuningCache> tuning_;
  std::shared_ptr<const ExecutionPlan> plan_;
  CalibrationTable calibration_;
  std::shared_ptr<NodeProfiler> profiler_;
};

CompiledModel Compile(const Graph& model, const CompileOptions& options = {});

// Derives a compiled model running at a different batch size without re-compiling or
// re-tuning: the optimized structure, chosen schedules, and pre-transformed weights are
// reused (weight payloads are shared, not copied — the copy is a few hundred node
// headers), and only the logical shapes are re-inferred. The result keeps the original
// stats().tuned_batch: it executes schedules searched for the old batch size, which is
// why the serving tier treats it as a stopgap and re-tunes in the background. Returns
// false and leaves `out` untouched when the graph cannot be batch-rebound (see
// RebindBatchDim).
bool RebindBatch(const CompiledModel& model, std::int64_t batch, CompiledModel* out);

// Re-runs schedule selection for `batch` from the model's fused source graph, under the
// model's original CompileConfig and against its shared TuningCache: per-conv local
// searches are keyed by the batch-`batch` WorkloadKey (pure cache lookups when the cache
// already holds that batch's tuning — the warm-start path), followed by the configured
// global selection and layout lowering. `engine` backs measured-mode tuning; null is
// fine for analytic mode. `config_override`, when non-null, replaces the model's
// CompileConfig for this re-tune AND for the produced model — the measured-mode tuning
// partition uses it to flip cost_mode to kMeasured, so the re-tune times real kernels
// and its winners land under kMeasured workload keys in the shared cache. Returns false
// when the model carries no source graph or the source cannot be rebound to `batch`.
bool RetuneForBatch(const CompiledModel& model, std::int64_t batch, ThreadEngine* engine,
                    CompiledModel* out, const CompileConfig* config_override = nullptr);

}  // namespace neocpu

#endif  // NEOCPU_SRC_CORE_COMPILER_H_
