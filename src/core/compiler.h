// The NeoCPU compiler: turns a model graph into an optimized, executable module.
//
// Pipeline: SimplifyInference → FuseOps → schedule selection (per LayoutMode) →
// AlterConvLayout (+ compile-time weight pre-transformation) → executable graph.
//
// LayoutMode is the ablation axis of the paper's Table 3:
//   kNCHW          — row 1 "Baseline": default layout, vectorized direct (or im2col)
//                    kernels, fusion and inference simplification still applied.
//   kNCHWcPerOp    — row 2 "Layout Opt.": every conv uses the NCHW[x]c template but
//                    transforms its input/output from/to NCHW (what a framework
//                    delegating to a fixed kernel library does).
//   kNCHWcFixed    — row 3 "Transform Elim.": one global split factor; the blocked
//                    layout flows through the graph; transforms only at the boundaries.
//   kNCHWcGlobal   — row 4 "Global Search": per-conv schemes chosen by the DP/PBQP
//                    global search over local-search candidates (§3.3).
//   kNCHWcLocal    — extra ablation: greedy per-conv local optimum, ignoring transform
//                    costs (the pitfall §3.3.1 warns about).
#ifndef NEOCPU_SRC_CORE_COMPILER_H_
#define NEOCPU_SRC_CORE_COMPILER_H_

#include <string>

#include "src/core/executor.h"
#include "src/core/target.h"
#include "src/graph/graph.h"
#include "src/tuning/local_search.h"

namespace neocpu {

enum class LayoutMode { kNCHW, kNCHWcPerOp, kNCHWcFixed, kNCHWcLocal, kNCHWcGlobal };

const char* LayoutModeName(LayoutMode mode);

struct CompileOptions {
  LayoutMode layout_mode = LayoutMode::kNCHWcGlobal;
  // Convolution implementation for kNCHW mode (baselines).
  ConvKernelKind nchw_kernel = ConvKernelKind::kDirectNCHW;
  Target target = Target::Host();
  CostMode cost_mode = CostMode::kAnalytic;
  bool quick_space = true;  // prune channel-factor candidates (see schedule_space.h)
  std::size_t max_dp_table_entries = 1 << 22;
  TuningDatabase* tuning_db = nullptr;  // optional cross-model memoization
  ThreadEngine* engine = nullptr;       // used for measured tuning during compilation
  bool verbose = false;
};

struct CompileStats {
  double compile_seconds = 0.0;
  double tuning_seconds = 0.0;   // local search
  double search_seconds = 0.0;   // global DP / PBQP
  bool used_global_search = false;
  bool used_exact_dp = false;    // false + used_global_search => PBQP approximation
  int num_convs = 0;
  int num_layout_transforms = 0;  // runtime transform nodes left in the final graph
  double predicted_cost_ms = 0.0;  // global-search objective value (model units)
};

class CompiledModel {
 public:
  CompiledModel() = default;
  CompiledModel(Graph graph, CompileStats stats)
      : graph_(std::move(graph)), stats_(stats) {}

  // Runs inference. `engine` is borrowed; null runs serially.
  Tensor Run(const Tensor& input, ThreadEngine* engine = nullptr) const {
    return Executor(&graph_, engine).Run(input);
  }
  std::vector<Tensor> RunAll(const std::vector<Tensor>& inputs,
                             ThreadEngine* engine = nullptr) const {
    return Executor(&graph_, engine).Run(inputs);
  }

  const Graph& graph() const { return graph_; }
  const CompileStats& stats() const { return stats_; }

 private:
  Graph graph_;
  CompileStats stats_;
};

CompiledModel Compile(const Graph& model, const CompileOptions& options = {});

// Derives a compiled model running at a different batch size without re-compiling or
// re-tuning: the optimized structure, chosen schedules, and pre-transformed weights are
// reused (weight payloads are shared, not copied — the copy is a few hundred node
// headers), and only the logical shapes are re-inferred. This is what lets the serving
// layer materialize batch variants lazily per traffic pattern. Returns false and leaves
// `out` untouched when the graph cannot be batch-rebound (see RebindBatchDim).
bool RebindBatch(const CompiledModel& model, std::int64_t batch, CompiledModel* out);

}  // namespace neocpu

#endif  // NEOCPU_SRC_CORE_COMPILER_H_
