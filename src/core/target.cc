#include "src/core/target.h"

#include "src/base/cpu_info.h"
#include "src/base/logging.h"

namespace neocpu {

Target Target::Host() {
  const CpuInfo& info = HostCpuInfo();
  Target t;
  t.name = "host";
  t.vector_lanes = info.VectorLanesF32();
  t.num_vector_registers = info.num_vector_registers;
  t.num_cores = info.physical_cores;
  t.l1d_bytes = info.l1d_bytes;
  t.l2_bytes = info.l2_bytes;
  t.l3_bytes = info.l3_bytes;
  t.fma_per_cycle = info.has_fma ? 2 : 1;
  t.vnni_dot = info.has_vnni;
  return t;
}

Target Target::SkylakeAvx512() {
  Target t;
  t.name = "avx512";
  t.vector_lanes = 16;
  t.num_vector_registers = 32;
  t.num_cores = 18;
  t.freq_ghz = 3.0;
  t.fma_per_cycle = 2;
  t.l1d_bytes = 32 * 1024;
  t.l2_bytes = 1024 * 1024;
  t.l3_bytes = 24ull * 1024 * 1024;
  return t;
}

Target Target::EpycAvx2() {
  Target t;
  t.name = "avx2";
  t.vector_lanes = 8;
  t.num_vector_registers = 16;
  t.num_cores = 24;
  t.freq_ghz = 2.5;
  t.fma_per_cycle = 2;
  t.l1d_bytes = 32 * 1024;
  t.l2_bytes = 512 * 1024;
  t.l3_bytes = 8ull * 1024 * 1024;
  return t;
}

Target Target::ArmA72Neon() {
  Target t;
  t.name = "neon";
  t.vector_lanes = 4;
  t.num_vector_registers = 32;
  t.num_cores = 16;
  t.freq_ghz = 2.3;
  t.fma_per_cycle = 1;
  t.l1d_bytes = 32 * 1024;
  t.l2_bytes = 1024 * 1024;
  t.l3_bytes = 2ull * 1024 * 1024;
  return t;
}

Target Target::CascadeLakeVnni() {
  // Same core/cache shape as the Skylake profile (Cascade Lake is its refresh); the
  // schedule-space difference is the fused u8·s8 dot product.
  Target t = SkylakeAvx512();
  t.name = "vnni";
  t.vnni_dot = true;
  return t;
}

Target Target::ByName(const std::string& name) {
  if (name == "host") {
    return Host();
  }
  if (name == "avx512" || name == "skylake") {
    return SkylakeAvx512();
  }
  if (name == "vnni" || name == "cascadelake") {
    return CascadeLakeVnni();
  }
  if (name == "avx2" || name == "epyc") {
    return EpycAvx2();
  }
  if (name == "neon" || name == "a72" || name == "arm") {
    return ArmA72Neon();
  }
  LOG(FATAL) << "unknown target '" << name << "'";
  return {};
}

}  // namespace neocpu
