#include "src/core/serialization.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/base/logging.h"
#include "src/graph/shape_infer.h"

namespace neocpu {
namespace {

constexpr char kMagic[4] = {'N', 'E', 'O', 'C'};
// v1: executable graph only. v2: + source graph, CompileConfig, tuned_batch, TuningCache.
// v3: + plan_memory config flag and memory-plan summary metadata.
// v4: + per-conv algorithm tag in the schedule block and forced-algo config fields;
//     embedded tuning caches carry algorithm-tagged entries (cache format v3).
// v5: quantized path — per-node quant block (ConvQuant + Q/DQ attrs + schedule dtype)
//     and output dtype, dtyped constant payloads (s8 weights, s32 biases), quantize
//     config flags + Target::int8_dot, and the calibration table; embedded tuning
//     caches carry dtype-tagged entries (cache format v4).
// v6: u8 activations — per-node quant extension block (activation/output dtype with
//     zero points, integer concat per-input rescale params), calibration-policy /
//     quantize-dense / forced-dtype config fields, and Target::vnni_dot.
// v7: tuned dense / transformer ops — per-node GEMM extension block (GemmSchedule
//     tiles + dtype, DenseParams, attention heads/seq); embedded tuning caches carry
//     dense records (cache format v5).
// docs/module_format.md is the authoritative spec.
constexpr std::uint32_t kVersion = 7;
constexpr std::uint32_t kMinVersion = 1;

void WriteU32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteU64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteI64(std::ostream& out, std::int64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteF64(std::ostream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteF32(std::ostream& out, float v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteString(std::ostream& out, const std::string& s) {
  WriteU32(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void WriteI64Vec(std::ostream& out, const std::vector<std::int64_t>& v) {
  WriteU32(out, static_cast<std::uint32_t>(v.size()));
  for (std::int64_t x : v) {
    WriteI64(out, x);
  }
}

void WriteLayout(std::ostream& out, const Layout& layout) {
  WriteU32(out, static_cast<std::uint32_t>(layout.kind));
  WriteI64(out, layout.c_block);
  WriteI64(out, layout.i_block);
  WriteI64(out, layout.o_block);
}

std::uint32_t ReadU32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

std::uint64_t ReadU64(std::istream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

std::int64_t ReadI64(std::istream& in) {
  std::int64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

double ReadF64(std::istream& in) {
  double v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

float ReadF32(std::istream& in) {
  float v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

std::string ReadString(std::istream& in) {
  std::string s(ReadU32(in), '\0');
  in.read(s.data(), static_cast<std::streamsize>(s.size()));
  return s;
}

std::vector<std::int64_t> ReadI64Vec(std::istream& in) {
  std::vector<std::int64_t> v(ReadU32(in));
  for (std::int64_t& x : v) {
    x = ReadI64(in);
  }
  return v;
}

Layout ReadLayout(std::istream& in) {
  Layout layout;
  layout.kind = static_cast<LayoutKind>(ReadU32(in));
  layout.c_block = ReadI64(in);
  layout.i_block = ReadI64(in);
  layout.o_block = ReadI64(in);
  return layout;
}

// Explicit POD mirror of ConvSchedule. Byte-compatible with the pre-v4 layout (three
// int64 blocks + a bool padded to 32 bytes): `algo` occupies what used to be struct
// padding, so one AttrBlock shape reads every version — pre-v4 files just carry
// meaningless bytes there, which the loader overwrites with kDirectNCHWc.
struct ScheduleBlock {
  std::int64_t ic_bn;
  std::int64_t oc_bn;
  std::int64_t reg_n;
  std::uint8_t unroll_ker;
  std::uint8_t pad[3];
  std::uint32_t algo;  // v4+
};
static_assert(sizeof(ScheduleBlock) == 32, "on-disk schedule block layout drifted");

// The fixed-size portion of NodeAttrs, mirrored as an explicit POD so the on-disk
// format stays stable regardless of struct layout changes.
struct AttrBlock {
  Conv2dParams conv;
  ConvEpilogue epilogue;
  ScheduleBlock schedule;
  std::uint32_t kernel;
  Pool2dParams pool;
  float epsilon;
  std::uint8_t relu;
  MultiboxDetectionParams det;
};

// v5 extension, written as a second POD after every AttrBlock: the quantization
// attributes plus the schedule's execution dtype (which predates no padding slot in
// ScheduleBlock that v1-v4 readers would tolerate).
struct QuantBlock {
  std::uint8_t q_enabled;
  std::uint8_t q_requant;
  std::uint8_t qdtype;
  std::uint8_t schedule_dtype;
  float in_scale;
  float out_scale;
  float qscale;
  std::int32_t qzero;
};
static_assert(sizeof(QuantBlock) == 20, "on-disk quant block layout drifted");

// v6 extension, written after every QuantBlock: the u8-activation state — which dtype
// the conv reads/writes and the zero points that go with it. The integer-concat
// per-input rescale vectors follow as explicit length-prefixed arrays (variable size,
// so not part of the POD).
struct QuantExtBlock {
  std::uint8_t adtype;
  std::uint8_t out_dtype;
  std::uint8_t pad[2];
  std::int32_t in_zero;
  std::int32_t out_zero;
};
static_assert(sizeof(QuantExtBlock) == 12, "on-disk quant ext block layout drifted");

// v7 extension, written after the QuantExtBlock arrays: the tuned-GEMM state for
// dense nodes (schedule tiles + execution dtype + the frozen M/N/K the schedule was
// searched for) and the attention geometry for multi_head_attention nodes.
struct GemmExtBlock {
  std::uint8_t has_gemm;
  std::uint8_t gemm_dtype;
  std::uint8_t pad[6];
  std::int64_t mc;
  std::int64_t nc;
  std::int64_t kc;
  std::int64_t mr;
  std::int64_t nr;
  std::int64_t dense_m;
  std::int64_t dense_n;
  std::int64_t dense_k;
  std::int64_t heads;
  std::int64_t seq;
};
static_assert(sizeof(GemmExtBlock) == 88, "on-disk gemm ext block layout drifted");

void WriteGraph(std::ostream& out, const Graph& g) {
  WriteString(out, g.name);
  {
    std::vector<std::int64_t> outputs(g.outputs().begin(), g.outputs().end());
    WriteI64Vec(out, outputs);
  }
  WriteU32(out, static_cast<std::uint32_t>(g.num_nodes()));
  for (int id = 0; id < g.num_nodes(); ++id) {
    const Node& node = g.node(id);
    WriteU32(out, static_cast<std::uint32_t>(node.type));
    WriteString(out, node.name);
    {
      std::vector<std::int64_t> inputs(node.inputs.begin(), node.inputs.end());
      WriteI64Vec(out, inputs);
    }
    AttrBlock block{};
    block.conv = node.attrs.conv;
    block.epilogue = node.attrs.epilogue;
    block.schedule.ic_bn = node.attrs.schedule.ic_bn;
    block.schedule.oc_bn = node.attrs.schedule.oc_bn;
    block.schedule.reg_n = node.attrs.schedule.reg_n;
    block.schedule.unroll_ker = node.attrs.schedule.unroll_ker ? 1 : 0;
    block.schedule.algo = static_cast<std::uint32_t>(node.attrs.schedule.algo);
    block.kernel = static_cast<std::uint32_t>(node.attrs.kernel);
    block.pool = node.attrs.pool;
    block.epsilon = node.attrs.epsilon;
    block.relu = node.attrs.relu ? 1 : 0;
    block.det = node.attrs.det;
    out.write(reinterpret_cast<const char*>(&block), sizeof(block));
    QuantBlock quant{};
    quant.q_enabled = node.attrs.qconv.enabled ? 1 : 0;
    quant.q_requant = node.attrs.qconv.requant ? 1 : 0;
    quant.qdtype = static_cast<std::uint8_t>(node.attrs.qdtype);
    quant.schedule_dtype = static_cast<std::uint8_t>(node.attrs.schedule.dtype);
    quant.in_scale = node.attrs.qconv.in_scale;
    quant.out_scale = node.attrs.qconv.out_scale;
    quant.qscale = node.attrs.qscale;
    quant.qzero = node.attrs.qzero;
    out.write(reinterpret_cast<const char*>(&quant), sizeof(quant));
    QuantExtBlock ext{};
    ext.adtype = static_cast<std::uint8_t>(node.attrs.qconv.adtype);
    ext.out_dtype = static_cast<std::uint8_t>(node.attrs.qconv.out_dtype);
    ext.in_zero = node.attrs.qconv.in_zero;
    ext.out_zero = node.attrs.qconv.out_zero;
    out.write(reinterpret_cast<const char*>(&ext), sizeof(ext));
    WriteU32(out, static_cast<std::uint32_t>(node.attrs.qin_scales.size()));
    for (float s : node.attrs.qin_scales) {
      WriteF32(out, s);
    }
    WriteU32(out, static_cast<std::uint32_t>(node.attrs.qin_zeros.size()));
    for (std::int32_t z : node.attrs.qin_zeros) {
      WriteU32(out, static_cast<std::uint32_t>(z));
    }
    GemmExtBlock gemm{};
    gemm.has_gemm = node.attrs.has_gemm ? 1 : 0;
    gemm.gemm_dtype = static_cast<std::uint8_t>(node.attrs.gemm.dtype);
    gemm.mc = node.attrs.gemm.mc;
    gemm.nc = node.attrs.gemm.nc;
    gemm.kc = node.attrs.gemm.kc;
    gemm.mr = node.attrs.gemm.mr;
    gemm.nr = node.attrs.gemm.nr;
    gemm.dense_m = node.attrs.dense.m;
    gemm.dense_n = node.attrs.dense.n;
    gemm.dense_k = node.attrs.dense.k;
    gemm.heads = node.attrs.heads;
    gemm.seq = node.attrs.seq;
    out.write(reinterpret_cast<const char*>(&gemm), sizeof(gemm));
    WriteLayout(out, node.attrs.dst_layout);
    WriteI64Vec(out, node.attrs.reshape_dims);
    WriteI64Vec(out, node.out_dims);
    WriteLayout(out, node.out_layout);
    WriteU32(out, static_cast<std::uint32_t>(node.out_dtype));
    const bool has_payload = node.payload.defined();
    WriteU32(out, has_payload ? 1 : 0);
    if (has_payload) {
      WriteU32(out, static_cast<std::uint32_t>(node.payload.dtype()));
      WriteI64Vec(out, node.payload.dims());
      WriteLayout(out, node.payload.layout());
      out.write(reinterpret_cast<const char*>(node.payload.data()),
                static_cast<std::streamsize>(node.payload.SizeBytes()));
    }
  }
}

Graph ReadGraph(std::istream& in, const std::string& path, std::uint32_t version) {
  Graph g;
  g.name = ReadString(in);
  std::vector<int> outputs;
  for (std::int64_t o : ReadI64Vec(in)) {
    outputs.push_back(static_cast<int>(o));
  }
  const std::uint32_t num_nodes = ReadU32(in);
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    const OpType type = static_cast<OpType>(ReadU32(in));
    const std::string name = ReadString(in);
    std::vector<int> inputs;
    for (std::int64_t x : ReadI64Vec(in)) {
      inputs.push_back(static_cast<int>(x));
    }
    AttrBlock block{};
    in.read(reinterpret_cast<char*>(&block), sizeof(block));
    NodeAttrs attrs;
    attrs.conv = block.conv;
    attrs.epilogue = block.epilogue;
    attrs.schedule.ic_bn = block.schedule.ic_bn;
    attrs.schedule.oc_bn = block.schedule.oc_bn;
    attrs.schedule.reg_n = block.schedule.reg_n;
    attrs.schedule.unroll_ker = block.schedule.unroll_ker != 0;
    // Pre-v4 modules predate the algorithm tag; those bytes were struct padding.
    attrs.schedule.algo =
        version >= 4 ? static_cast<ConvAlgo>(block.schedule.algo) : ConvAlgo::kDirectNCHWc;
    attrs.kernel = static_cast<ConvKernelKind>(block.kernel);
    attrs.pool = block.pool;
    attrs.epsilon = block.epsilon;
    attrs.relu = block.relu != 0;
    attrs.det = block.det;
    if (version >= 5) {
      QuantBlock quant{};
      in.read(reinterpret_cast<char*>(&quant), sizeof(quant));
      attrs.qconv.enabled = quant.q_enabled != 0;
      attrs.qconv.requant = quant.q_requant != 0;
      attrs.qconv.in_scale = quant.in_scale;
      attrs.qconv.out_scale = quant.out_scale;
      attrs.qdtype = static_cast<DType>(quant.qdtype);
      attrs.qscale = quant.qscale;
      attrs.qzero = quant.qzero;
      attrs.schedule.dtype = static_cast<DType>(quant.schedule_dtype);
    }
    if (version >= 6) {
      QuantExtBlock ext{};
      in.read(reinterpret_cast<char*>(&ext), sizeof(ext));
      attrs.qconv.adtype = static_cast<DType>(ext.adtype);
      attrs.qconv.out_dtype = static_cast<DType>(ext.out_dtype);
      attrs.qconv.in_zero = ext.in_zero;
      attrs.qconv.out_zero = ext.out_zero;
      attrs.qin_scales.resize(ReadU32(in));
      for (float& s : attrs.qin_scales) {
        s = ReadF32(in);
      }
      attrs.qin_zeros.resize(ReadU32(in));
      for (std::int32_t& z : attrs.qin_zeros) {
        z = static_cast<std::int32_t>(ReadU32(in));
      }
    }
    // v5 modules predate u8 activations: every quantized conv there is s8-in/s8-out
    // with zero zero-points, which is exactly ConvQuant's default state.
    if (version >= 7) {
      GemmExtBlock gemm{};
      in.read(reinterpret_cast<char*>(&gemm), sizeof(gemm));
      attrs.has_gemm = gemm.has_gemm != 0;
      attrs.gemm.dtype = static_cast<DType>(gemm.gemm_dtype);
      attrs.gemm.mc = gemm.mc;
      attrs.gemm.nc = gemm.nc;
      attrs.gemm.kc = gemm.kc;
      attrs.gemm.mr = gemm.mr;
      attrs.gemm.nr = gemm.nr;
      attrs.dense.m = gemm.dense_m;
      attrs.dense.n = gemm.dense_n;
      attrs.dense.k = gemm.dense_k;
      attrs.heads = gemm.heads;
      attrs.seq = gemm.seq;
    }
    // Pre-v7 modules predate tuned dense: every dense there carries a 2-D weight that
    // the legacy executor reads directly, which is exactly NodeAttrs' default state.
    attrs.dst_layout = ReadLayout(in);
    attrs.reshape_dims = ReadI64Vec(in);
    const std::vector<std::int64_t> out_dims = ReadI64Vec(in);
    const Layout out_layout = ReadLayout(in);
    const DType out_dtype =
        version >= 5 ? static_cast<DType>(ReadU32(in)) : DType::kF32;
    const bool has_payload = ReadU32(in) != 0;

    int id;
    if (type == OpType::kInput) {
      id = g.AddInput(out_dims, name);
    } else if (type == OpType::kConstant) {
      NEOCPU_CHECK(has_payload) << "constant node without payload";
      const DType payload_dtype =
          version >= 5 ? static_cast<DType>(ReadU32(in)) : DType::kF32;
      std::vector<std::int64_t> dims = ReadI64Vec(in);
      Layout layout = ReadLayout(in);
      Tensor payload = Tensor::Empty(std::move(dims), layout, payload_dtype);
      in.read(reinterpret_cast<char*>(payload.data()),
              static_cast<std::streamsize>(payload.SizeBytes()));
      id = g.AddConstant(std::move(payload), name);
    } else {
      NEOCPU_CHECK(!has_payload);
      id = g.AddNode(type, std::move(inputs), std::move(attrs), name);
    }
    g.node(id).out_dims = out_dims;
    g.node(id).out_layout = out_layout;
    g.node(id).out_dtype = out_dtype;
    NEOCPU_CHECK_EQ(id, static_cast<int>(i)) << "node ids must be dense in " << path;
  }
  g.SetOutputs(std::move(outputs));
  return g;
}

void WriteConfig(std::ostream& out, const CompileConfig& config) {
  WriteU32(out, static_cast<std::uint32_t>(config.layout_mode));
  WriteU32(out, static_cast<std::uint32_t>(config.nchw_kernel));
  const Target& t = config.target;
  WriteString(out, t.name);
  WriteU32(out, static_cast<std::uint32_t>(t.vector_lanes));
  WriteU32(out, static_cast<std::uint32_t>(t.num_vector_registers));
  WriteU32(out, static_cast<std::uint32_t>(t.num_cores));
  WriteF64(out, t.freq_ghz);
  WriteU32(out, static_cast<std::uint32_t>(t.fma_per_cycle));
  WriteU64(out, t.l1d_bytes);
  WriteU64(out, t.l2_bytes);
  WriteU64(out, t.l3_bytes);
  WriteU32(out, static_cast<std::uint32_t>(config.cost_mode));
  WriteU32(out, config.quick_space ? 1 : 0);
  WriteU64(out, config.max_dp_table_entries);
  WriteU32(out, config.plan_memory ? 1 : 0);        // v3+
  WriteU32(out, config.force_algo ? 1 : 0);         // v4+
  WriteU32(out, static_cast<std::uint32_t>(config.forced_algo));
  WriteU32(out, config.quantize ? 1 : 0);           // v5+
  WriteU32(out, config.force_quantize ? 1 : 0);
  WriteU32(out, config.target.int8_dot ? 1 : 0);
  WriteU32(out, static_cast<std::uint32_t>(config.calibration_policy));  // v6+
  WriteU32(out, config.quantize_dense ? 1 : 0);
  WriteU32(out, static_cast<std::uint32_t>(config.force_quant_dtype));
  WriteU32(out, config.target.vnni_dot ? 1 : 0);
}

CompileConfig ReadConfig(std::istream& in, std::uint32_t version) {
  CompileConfig config;
  config.layout_mode = static_cast<LayoutMode>(ReadU32(in));
  config.nchw_kernel = static_cast<ConvKernelKind>(ReadU32(in));
  Target t;
  t.name = ReadString(in);
  t.vector_lanes = static_cast<int>(ReadU32(in));
  t.num_vector_registers = static_cast<int>(ReadU32(in));
  t.num_cores = static_cast<int>(ReadU32(in));
  t.freq_ghz = ReadF64(in);
  t.fma_per_cycle = static_cast<int>(ReadU32(in));
  t.l1d_bytes = ReadU64(in);
  t.l2_bytes = ReadU64(in);
  t.l3_bytes = ReadU64(in);
  config.target = std::move(t);
  config.cost_mode = static_cast<CostMode>(ReadU32(in));
  config.quick_space = ReadU32(in) != 0;
  config.max_dp_table_entries = static_cast<std::size_t>(ReadU64(in));
  if (version >= 3) {
    config.plan_memory = ReadU32(in) != 0;
  }
  if (version >= 4) {
    config.force_algo = ReadU32(in) != 0;
    config.forced_algo = static_cast<ConvAlgo>(ReadU32(in));
  }
  if (version >= 5) {
    config.quantize = ReadU32(in) != 0;
    config.force_quantize = ReadU32(in) != 0;
    config.target.int8_dot = ReadU32(in) != 0;
  }
  if (version >= 6) {
    config.calibration_policy = static_cast<CalibrationPolicy>(ReadU32(in));
    config.quantize_dense = ReadU32(in) != 0;
    config.force_quant_dtype = static_cast<DType>(ReadU32(in));
    config.target.vnni_dot = ReadU32(in) != 0;
  }
  return config;
}

}  // namespace

bool SaveModule(const CompiledModel& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return false;
  }
  out.write(kMagic, sizeof(kMagic));
  WriteU32(out, kVersion);
  WriteGraph(out, model.graph());

  WriteU32(out, model.has_source() ? 1 : 0);
  if (model.has_source()) {
    WriteGraph(out, model.source_graph());
  }
  WriteConfig(out, model.config());
  WriteI64(out, model.stats().tuned_batch);
  const bool has_cache = model.tuning() != nullptr;
  WriteU32(out, has_cache ? 1 : 0);
  if (has_cache) {
    std::ostringstream cache_text;
    model.tuning()->Serialize(cache_text);
    WriteString(out, cache_text.str());
  }
  // v3: memory-plan summary metadata (the per-node plan is recomputed at load).
  const bool has_plan = model.plan() != nullptr;
  WriteU32(out, has_plan ? 1 : 0);
  if (has_plan) {
    WriteU64(out, model.plan()->arena_bytes);
    WriteU64(out, model.plan()->naive_bytes);
  }
  // v5: calibration table (source-graph node id -> observed activation range), so a
  // warm-started server can re-run fp32-vs-int8 selection for new batch sizes.
  const CalibrationTable& calibration = model.calibration();
  WriteU32(out, static_cast<std::uint32_t>(calibration.size()));
  for (const auto& [id, range] : calibration) {
    WriteI64(out, id);
    WriteF32(out, range.min);
    WriteF32(out, range.max);
  }
  return static_cast<bool>(out);
}

bool LoadModule(const std::string& path, CompiledModel* model) {
  NEOCPU_CHECK(model != nullptr);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  NEOCPU_CHECK_EQ(std::memcmp(magic, kMagic, sizeof(kMagic)), 0)
      << path << " is not a NeoCPU module";
  const std::uint32_t version = ReadU32(in);
  NEOCPU_CHECK(version >= kMinVersion && version <= kVersion)
      << "unsupported module version " << version;

  Graph g = ReadGraph(in, path, version);
  CompileStats stats;
  stats.num_convs = g.CountNodes(OpType::kConv2d);
  stats.num_layout_transforms = g.CountNodes(OpType::kLayoutTransform);
  for (int id = 0; id < g.num_nodes(); ++id) {
    if (g.node(id).IsConv() && g.node(id).attrs.schedule.IsQuantized()) {
      ++stats.num_quantized_convs;
    }
    if (g.node(id).type == OpType::kDense && g.node(id).attrs.has_gemm) {
      ++stats.num_dense;
      if (g.node(id).attrs.gemm.IsQuantized()) {
        ++stats.num_quantized_dense;
      }
    }
  }

  if (version < 2) {
    NEOCPU_CHECK(static_cast<bool>(in)) << "truncated module file " << path;
    *model = CompiledModel(std::move(g), stats);
    return true;
  }

  const bool has_source = ReadU32(in) != 0;
  Graph source;
  if (has_source) {
    source = ReadGraph(in, path, version);
  }
  CompileConfig config = ReadConfig(in, version);
  stats.tuned_batch = ReadI64(in);
  const bool has_cache = ReadU32(in) != 0;
  auto cache = std::make_shared<TuningCache>();
  if (has_cache) {
    std::istringstream cache_text(ReadString(in));
    NEOCPU_CHECK(cache->Deserialize(cache_text))
        << "corrupt tuning cache in module file " << path;
  }
  bool has_plan = config.plan_memory;  // v2 modules: plan per today's default config
  std::uint64_t stored_arena_bytes = 0;
  bool check_stored_plan = false;
  if (version >= 3) {
    has_plan = ReadU32(in) != 0;
    if (has_plan) {
      stored_arena_bytes = ReadU64(in);
      ReadU64(in);  // naive_arena_bytes: informational, recomputed below
      check_stored_plan = true;
    }
  }
  CalibrationTable calibration;
  if (version >= 5) {
    const std::uint32_t entries = ReadU32(in);
    for (std::uint32_t i = 0; i < entries; ++i) {
      const int id = static_cast<int>(ReadI64(in));
      TensorRange range;
      range.min = ReadF32(in);
      range.max = ReadF32(in);
      calibration.emplace(id, range);
    }
  }
  NEOCPU_CHECK(static_cast<bool>(in)) << "truncated module file " << path;

  const bool plan_memory = config.plan_memory;
  if (has_source) {
    *model = CompiledModel(std::move(g), stats, std::move(source), std::move(config),
                           std::move(cache));
    model->SetCalibration(std::move(calibration));
  } else {
    *model = CompiledModel(std::move(g), stats);
  }
  if (has_plan && plan_memory) {
    // Plans are derived artifacts: recompute from the loaded graph rather than trusting
    // file offsets (defense against artifact corruption AND planner-version drift).
    auto plan = std::make_shared<const ExecutionPlan>(PlanMemory(model->graph()));
    if (check_stored_plan && plan->arena_bytes != stored_arena_bytes) {
      LOG(WARNING) << path << ": stored arena footprint " << stored_arena_bytes
                   << "B differs from recomputed " << plan->arena_bytes
                   << "B (planner changed since the module was saved)";
    }
    model->AttachPlan(std::move(plan));
  }
  return true;
}

}  // namespace neocpu
